module Q = Numeric.Q
module Polytope = Geometry.Polytope
module Transport = Runtime.Transport
module Loopback = Runtime.Loopback
module Crash = Runtime.Crash
module Config = Chc.Config
module Instance = Chc.Instance
module Recovery = Chc.Recovery
module Sink = Obs.Sink

type job = {
  id : int;
  config : Config.t;
  inputs : Geometry.Vec.t array;
  crash : Crash.plan array;
  round0 : Instance.round0_mode;
}

type outcome = {
  job : job;
  outputs : (Transport.pid * Polytope.t) list;
  t_end : int;
  steps : int;
  latency_s : float;
  recovered : Transport.pid list;
  resumed : bool;
}

(* --- metrics ----------------------------------------------------------- *)

let submitted_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~help:"Lifecycle transitions of served instances, by status."
    ~labels:[ ("status", "submitted") ]

let decided_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~labels:[ ("status", "decided") ]

let resumed_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~labels:[ ("status", "resumed") ]

let inflight_gauge =
  Obs.Metrics.gauge "chc_serve_inflight"
    ~help:"Instances currently live across all shards."

let throughput_gauge =
  Obs.Metrics.gauge "chc_serve_throughput_ips"
    ~help:"Decided instances per second over the last pump window."

let latency_hist =
  Obs.Metrics.histogram "chc_serve_decision_latency_seconds"
    ~help:"Submit-to-decision wall-clock latency."

let violations_total =
  Obs.Metrics.counter "chc_serve_violations_total"
    ~help:"Graded outcomes that violated a Theorem-2 property."

let wal_bytes_total =
  Obs.Metrics.counter "chc_serve_wal_bytes_total"
    ~help:"Bytes appended to per-process write-ahead logs."

let wal_errors_total =
  Obs.Metrics.counter "chc_serve_wal_errors_total"
    ~help:"WAL append/sync failures; the process degrades to non-durable."

let engine_reuse_total =
  Obs.Metrics.counter "chc_serve_engine_reuse_total"
    ~help:"Polytope-engine structure reuse on shard handles: arena hits \
           plus warm-started hull builds, across rounds and across \
           same-spec instances of one shard."

(* --- jobs -------------------------------------------------------------- *)

let job_of_request (Frame.Submit { id; n; f; d; eps; lo; hi; inputs }) =
  match Config.make ~n ~f ~d ~eps ~lo ~hi with
  | exception Invalid_argument msg -> Error msg
  | config ->
    if Array.length inputs <> n then
      Error
        (Printf.sprintf "need %d inputs, got %d" n (Array.length inputs))
    else begin
      match Array.iter (Config.validate_input config) inputs with
      | () ->
        Ok
          { id; config; inputs; crash = Array.make n Crash.Never;
            round0 = `Stable_vector }
      | exception Invalid_argument msg -> Error msg
    end

let is_recover_plan = function
  | Crash.Crash_recover _ -> true
  | Crash.Never | Crash.After_sends _ | Crash.After_receives _ -> false

let graded_set job recovered =
  let faulty = Chc.Cc.fault_set job.crash in
  let n = job.config.Config.n in
  List.init n Fun.id
  |> List.filter (fun i -> (not (List.mem i faulty)) || List.mem i recovered)

let response_of_outcome o =
  match o.outputs with
  | (_, output) :: _ ->
    Frame.Decision { id = o.job.id; t_end = o.t_end; output }
  | [] -> Frame.Rejected { id = o.job.id; reason = "no graded process decided" }

let grade o =
  let config = o.job.config in
  let graded = graded_set o.job o.recovered in
  if List.length o.outputs < List.length graded then
    Error
      (Printf.sprintf "termination: %d of %d graded processes decided"
         (List.length o.outputs) (List.length graded))
  else begin
    let hull =
      Polytope.of_points ~dim:config.Config.d
        (List.map (fun i -> o.job.inputs.(i)) graded)
    in
    match
      List.find_opt (fun (_, h) -> not (Polytope.subset h hull)) o.outputs
    with
    | Some (i, _) ->
      Error
        (Printf.sprintf "validity: process %d decided outside the correct hull"
           i)
    | None ->
      let rec pairs acc = function
        | [] -> acc
        | (_, h) :: rest ->
          let acc =
            List.fold_left
              (fun acc (_, h') -> Q.max acc (Polytope.hausdorff2 h h'))
              acc rest
          in
          pairs acc rest
      in
      let a2 = pairs Q.zero o.outputs in
      if Q.lt a2 (Q.square config.Config.eps) || List.length o.outputs < 2
      then Ok ()
      else Error "agreement: pairwise Hausdorff distance at or above eps"
  end

(* --- the sharded multiplexer ------------------------------------------- *)

type running = {
  rjob : job;
  insts : Instance.t array;
  lb : Instance.msg Loopback.t;
  wal : Sink.appender array option;
  wal_ok : bool array;  (* per-process durability; cleared on I/O error *)
  trace : Obs.Trace.t option;  (* armed when causal_k > 0 *)
  inst_dir : string option;
  submitted_at : float;
  submitted_ns : int64;
  mutable first_pump_ns : int64 option;
  was_resumed : bool;
}

type shard = {
  mutable live : running list;     (** submission order *)
  mutable incoming : running list; (** newest first; merged at pump *)
  mutable starved : int;  (* fuel debt: live jobs that ate a full budget
                             last pump and still did not finish *)
  engine : Geometry.Poly_engine.handle;
      (* shared by every instance on this shard, so same-spec instances
         reuse round-0 subset-hull structure across jobs *)
  mutable reuse_mark : int;  (* handle_reuse at the last pump, for the
                                per-pump counter delta *)
}

(* WAL telemetry shared with worker domains (appends run inside
   pump_shard), hence atomics. [appends_at_sync] snapshots the append
   count at the most recent sync anywhere: the difference to [appends]
   is the daemon's append lag — lines written past the last barrier. *)
type wal_stats = {
  ws_bytes : int Atomic.t;
  ws_appends : int Atomic.t;
  ws_syncs : int Atomic.t;
  ws_appends_at_sync : int Atomic.t;
  ws_errors : int Atomic.t;
  ws_last_error : string option Atomic.t;
}

type t = {
  shard_count : int;
  fuel : int;
  slow_s : float;
  causal_k : int;
  wal_dir : string option;
  shards_arr : shard array;
  live_ids : (int, unit) Hashtbl.t;
  created_at : float;
  ws : wal_stats;
  mutable violations : int;
  mutable slowest : (float * int * int * Obs.Trace.t) list;
      (* (latency_s, id, n, trace), slowest first, length <= causal_k *)
  mutable last_pump_at : float;
  mutable decided_count : int;
  mutable mark_at : float;
  mutable mark_decided : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    match Unix.mkdir path 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      raise
        (Sink.Write_error
           { path;
             message = Printf.sprintf "%s: %s" fn (Unix.error_message err) })
  end

let create ?shards ?(fuel = 64) ?(slow_s = 1.0) ?(causal_k = 0) ?wal_dir ()
  =
  let shard_count =
    match shards with Some s -> s | None -> Parallel.Pool.global_size ()
  in
  if shard_count < 1 then invalid_arg "Server.create: shards < 1";
  if fuel < 1 then invalid_arg "Server.create: fuel < 1";
  if causal_k < 0 then invalid_arg "Server.create: causal_k < 0";
  Option.iter mkdir_p wal_dir;
  { shard_count;
    fuel;
    slow_s;
    causal_k;
    wal_dir;
    shards_arr =
      Array.init shard_count (fun _ ->
          { live = []; incoming = []; starved = 0;
            engine = Geometry.Poly_engine.create_handle ();
            reuse_mark = 0 });
    live_ids = Hashtbl.create 256;
    created_at = Unix.gettimeofday ();
    ws =
      { ws_bytes = Atomic.make 0;
        ws_appends = Atomic.make 0;
        ws_syncs = Atomic.make 0;
        ws_appends_at_sync = Atomic.make 0;
        ws_errors = Atomic.make 0;
        ws_last_error = Atomic.make None };
    violations = 0;
    slowest = [];
    last_pump_at = Unix.gettimeofday ();
    decided_count = 0;
    mark_at = Unix.gettimeofday ();
    mark_decided = 0 }

let shards t = t.shard_count
let inflight t = Hashtbl.length t.live_ids
let completed t = t.decided_count
let violations t = t.violations
let wal_error t = Atomic.get t.ws.ws_last_error

let grade_count t o =
  match grade o with
  | Ok () -> Ok ()
  | Error reason ->
    t.violations <- t.violations + 1;
    Obs.Metrics.incr violations_total;
    Obs.Log.error "violation"
      [ ("id", Obs.Log.I o.job.id); ("reason", Obs.Log.S reason) ];
    Error reason

let submit t ?resume job =
  if Hashtbl.mem t.live_ids job.id then
    invalid_arg
      (Printf.sprintf "Server.submit: instance %d already live" job.id);
  let n = job.config.Config.n in
  if Array.length job.crash <> n then
    invalid_arg "Server.submit: need n crash plans";
  (* Same arming rule as {!Chc.Cc.execute}, plus: a wal_dir or a resume
     always arms durability (the whole point of the daemon's WAL). *)
  let recovery_on =
    t.wal_dir <> None || resume <> None
    || Array.exists is_recover_plan job.crash
  in
  let wal_spec = if recovery_on then Some Runtime.Wal.default_config else None in
  let spec = Instance.spec ~round0:job.round0 ?wal:wal_spec job.config in
  let shard_ix =
    ((job.id mod t.shard_count) + t.shard_count) mod t.shard_count
  in
  let shard = t.shards_arr.(shard_ix) in
  let insts =
    Array.init n (fun i ->
        Instance.create ~engine:shard.engine spec ~me:i
          ~input:job.inputs.(i))
  in
  let inst_dir, wal =
    match t.wal_dir with
    | None -> (None, None)
    | Some root ->
      let dir = Filename.concat root (Printf.sprintf "inst-%d" job.id) in
      mkdir_p dir;
      (* The daemon's loopback is Sim under the fifo schedule, so the
         persisted scenario replays (and re-grades) this execution. *)
      let scen =
        Chc.Scenario.make ~config:job.config ~inputs:job.inputs
          ~crash:job.crash ~scheduler:Runtime.Scheduler.fifo ~seed:0
          ~round0:job.round0 ?wal:wal_spec ()
      in
      Chc.Scenario.save ~path:(Filename.concat dir "meta.json") scen;
      let aps =
        Array.init n (fun pid ->
            Sink.append_open
              ~path:(Filename.concat dir (Printf.sprintf "wal-%d.jsonl" pid)))
      in
      (Some dir, Some aps)
  in
  let wal_ok = Array.make n true in
  let trace =
    if t.causal_k > 0 then Some (Obs.Trace.create ()) else None
  in
  (* A WAL write error degrades this process to non-durable (no
     further appends, error recorded for /healthz and the counter)
     instead of killing the pump round: serving availability over
     durability of one instance. *)
  let wal_degrade pid exn =
    wal_ok.(pid) <- false;
    let msg =
      match exn with
      | Sink.Write_error { path; message } -> path ^ ": " ^ message
      | e -> Printexc.to_string e
    in
    Atomic.incr t.ws.ws_errors;
    Atomic.set t.ws.ws_last_error (Some msg);
    Obs.Metrics.incr wal_errors_total;
    Obs.Log.error "wal_error"
      [ ("id", Obs.Log.I job.id); ("pid", Obs.Log.I pid);
        ("error", Obs.Log.S msg) ]
  in
  let run_effects (ep : Instance.msg Transport.ep) effs =
    let pid = ep.Transport.me in
    let io =
      Instance.io ~send:ep.Transport.send
        ~broadcast:(fun m -> ep.Transport.broadcast m)
        ~sends:ep.Transport.sends
        ?on_wal:
          (Option.map
             (fun aps e ->
                if wal_ok.(pid) then begin
                  let line = Recovery.event_to_string e in
                  match Sink.append_line aps.(pid) line with
                  | () ->
                    Atomic.incr t.ws.ws_appends;
                    ignore
                      (Atomic.fetch_and_add t.ws.ws_bytes
                         (String.length line + 1));
                    Obs.Metrics.add wal_bytes_total (String.length line + 1)
                  | exception exn -> wal_degrade pid exn
                end)
             wal)
        ?on_sync:
          (Option.map
             (fun aps () ->
                if wal_ok.(pid) then begin
                  match Sink.append_sync aps.(pid) with
                  | () ->
                    Atomic.incr t.ws.ws_syncs;
                    Atomic.set t.ws.ws_appends_at_sync
                      (Atomic.get t.ws.ws_appends)
                  | exception exn -> wal_degrade pid exn
                end)
             wal)
        ?emit:(Option.map Obs.Trace.emit trace)
        ()
    in
    Instance.interpret insts.(pid) io effs
  in
  let make i =
    let inst = insts.(i) in
    let kickoff () =
      match resume with
      | None -> Instance.start inst
      | Some entries -> Instance.restore inst ~entries:entries.(i)
    in
    { Transport.on_start = (fun ep -> run_effects ep (kickoff ()));
      on_receive =
        (fun ep ~src msg -> run_effects ep (Instance.handle inst ~src msg)) }
  in
  let on_crash i ~keep = Instance.crash insts.(i) ~keep in
  let on_recover (ep : Instance.msg Transport.ep) =
    run_effects ep (Instance.recover insts.(ep.Transport.me))
  in
  let lb =
    Loopback.create ?trace ~on_crash ~on_recover ~crash:job.crash ~n ~make
      ()
  in
  let r =
    { rjob = job; insts; lb; wal; wal_ok; trace; inst_dir;
      submitted_at = Unix.gettimeofday ();
      submitted_ns = Obs.Prof.now_ns ();
      first_pump_ns = None;
      was_resumed = resume <> None }
  in
  shard.incoming <- r :: shard.incoming;
  Hashtbl.replace t.live_ids job.id ();
  Obs.Metrics.incr submitted_total;
  if r.was_resumed then Obs.Metrics.incr resumed_total;
  Obs.Metrics.set inflight_gauge (float_of_int (inflight t));
  if Obs.Log.enabled Obs.Log.Debug then
    Obs.Log.debug "submit"
      [ ("id", Obs.Log.I job.id);
        ("n", Obs.Log.I n);
        ("f", Obs.Log.I job.config.Config.f);
        ("d", Obs.Log.I job.config.Config.d);
        ("shard", Obs.Log.I shard_ix);
        ("resumed", Obs.Log.B r.was_resumed) ]

let finalize t r =
  let recovered =
    List.filter (Loopback.recovered_of r.lb)
      (List.init (Loopback.n r.lb) Fun.id)
  in
  let outputs =
    graded_set r.rjob recovered
    |> List.filter_map (fun i ->
        Option.map (fun h -> (i, h)) (Instance.poll_decision r.insts.(i)))
  in
  let m = Loopback.metrics r.lb in
  (match r.wal with Some aps -> Array.iter Sink.append_close aps | None -> ());
  (match r.inst_dir with
   | None -> ()
   | Some dir ->
     let marker =
       Printf.sprintf "{\"id\":%d,\"t_end\":%d,\"decided\":%d}" r.rjob.id
         (Instance.t_end r.insts.(0))
         (List.length outputs)
     in
     (* A lost marker only means a redundant (idempotent) resume. *)
     (match
        Sink.write_string ~path:(Filename.concat dir "decided.json") marker
      with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "chc_serve: %s\n%!" msg));
  let latency_s = Unix.gettimeofday () -. r.submitted_at in
  Obs.Metrics.observe latency_hist latency_s;
  Obs.Metrics.incr decided_total;
  let t_end = Instance.t_end r.insts.(0) in
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info "decide"
      [ ("id", Obs.Log.I r.rjob.id);
        ("t_end", Obs.Log.I t_end);
        ("steps", Obs.Log.I m.Transport.steps);
        ("decided", Obs.Log.I (List.length outputs));
        ("recovered", Obs.Log.I (List.length recovered));
        ("latency_s", Obs.Log.F latency_s) ];
  if latency_s > t.slow_s then
    Obs.Log.warn "slow_request"
      [ ("id", Obs.Log.I r.rjob.id);
        ("latency_s", Obs.Log.F latency_s);
        ("threshold_s", Obs.Log.F t.slow_s);
        ("steps", Obs.Log.I m.Transport.steps);
        ("t_end", Obs.Log.I t_end) ];
  if Obs.Prof.enabled () then begin
    (* envelope slice for the whole job on its own track *)
    let now = Obs.Prof.now_ns () in
    Obs.Prof.slice ~track:r.rjob.id ~ts_ns:r.submitted_ns
      ~dur_ns:(Int64.sub now r.submitted_ns)
      ~attrs:
        [ ("t_end", string_of_int t_end);
          ("steps", string_of_int m.Transport.steps) ]
      "job"
  end;
  { job = r.rjob;
    outputs;
    t_end;
    steps = m.Transport.steps;
    latency_s;
    recovered;
    resumed = r.was_resumed }

let pump_shard t shard =
  shard.live <- shard.live @ List.rev shard.incoming;
  shard.incoming <- [];
  let completed = ref [] in
  let starved = ref 0 in
  let still =
    List.filter
      (fun r ->
         let profiling = Obs.Prof.enabled () in
         let t0 = if profiling then Obs.Prof.now_ns () else 0L in
         if profiling && r.first_pump_ns = None then begin
           r.first_pump_ns <- Some t0;
           (* time spent queued before any shard attention *)
           Obs.Prof.slice ~track:r.rjob.id ~ts_ns:r.submitted_ns
             ~dur_ns:(Int64.sub t0 r.submitted_ns) "queued"
         end;
         let budget = ref t.fuel in
         while !budget > 0 && Loopback.step r.lb do
           decr budget
         done;
         let consumed = t.fuel - !budget in
         if profiling && consumed > 0 then
           Obs.Prof.slice ~track:r.rjob.id ~ts_ns:t0
             ~dur_ns:(Int64.sub (Obs.Prof.now_ns ()) t0)
             ~attrs:[ ("steps", string_of_int consumed) ]
             "pump";
         if Loopback.quiescent r.lb then begin
           completed := (finalize t r, r) :: !completed;
           false
         end
         else begin
           if !budget = 0 then incr starved;
           true
         end)
      shard.live
  in
  shard.live <- still;
  shard.starved <- !starved;
  List.rev !completed

(* Keep the [causal_k] slowest completed jobs' traces (latency
   descending). Runs on the pumping thread, after the parallel map. *)
let note_slowest t (o, r) =
  match r.trace with
  | None -> ()
  | Some tr ->
    let entry = (o.latency_s, o.job.id, o.job.config.Config.n, tr) in
    let merged =
      List.sort (fun (a, _, _, _) (b, _, _, _) -> compare b a)
        (entry :: t.slowest)
    in
    t.slowest <- List.filteri (fun i _ -> i < t.causal_k) merged

let pump t =
  let completed =
    Parallel.Pool.parallel_map
      (Parallel.Pool.global ())
      (pump_shard t)
      (Array.to_list t.shards_arr)
    |> List.concat
  in
  List.iter (note_slowest t) completed;
  (* Engine reuse accrues on worker domains during pump_shard; fold
     the per-shard handle deltas into the counter after the join. *)
  Array.iter
    (fun s ->
       let r = Geometry.Poly_engine.handle_reuse s.engine in
       if r > s.reuse_mark then begin
         Obs.Metrics.add engine_reuse_total (r - s.reuse_mark);
         s.reuse_mark <- r
       end)
    t.shards_arr;
  let outcomes = List.map fst completed in
  List.iter (fun o -> Hashtbl.remove t.live_ids o.job.id) outcomes;
  t.decided_count <- t.decided_count + List.length outcomes;
  t.last_pump_at <- Unix.gettimeofday ();
  Obs.Metrics.set inflight_gauge (float_of_int (inflight t));
  let now = Unix.gettimeofday () in
  let dt = now -. t.mark_at in
  if dt >= 1.0 then begin
    Obs.Metrics.set throughput_gauge
      (float_of_int (t.decided_count - t.mark_decided) /. dt);
    t.mark_at <- now;
    t.mark_decided <- t.decided_count
  end;
  outcomes

let slowest t =
  List.map
    (fun (latency_s, id, n, tr) ->
       (id, latency_s, Obs.Causal.analyze ~n tr))
    t.slowest

let drain ?(max_rounds = 100_000) t =
  let rec go rounds acc =
    if inflight t = 0 then List.rev acc
    else if rounds >= max_rounds then raise Transport.Step_limit_exceeded
    else go (rounds + 1) (List.rev_append (pump t) acc)
  in
  go 0 []

(* --- admin plane -------------------------------------------------------- *)

(* Floats render as strings: Codec.Json is exact (ints/strings only),
   and keeping the admin pages inside its vocabulary lets the tests
   parse every response with the in-repo decoder. *)
let json_ms s = Codec.Json.Str (Printf.sprintf "%.3f" (s *. 1000.))
let json_s s = Codec.Json.Str (Printf.sprintf "%.3f" s)

let healthz t () =
  let wal_err = wal_error t in
  let healthy = t.violations = 0 && wal_err = None in
  let now = Unix.gettimeofday () in
  ( healthy,
    Codec.Json.Obj
      [ ("status", Codec.Json.Str (if healthy then "ok" else "degraded"));
        ("shards", Codec.Json.Int t.shard_count);
        ("inflight", Codec.Json.Int (inflight t));
        ("violations", Codec.Json.Int t.violations);
        ( "wal_error",
          match wal_err with
          | None -> Codec.Json.Null
          | Some m -> Codec.Json.Str m );
        ("uptime_s", json_s (now -. t.created_at));
        ("since_last_pump_s", json_s (now -. t.last_pump_at)) ] )

let statusz t () =
  let open Codec.Json in
  let now = Unix.gettimeofday () in
  let uptime = now -. t.created_at in
  let latency =
    match
      List.find_map
        (fun s ->
           match s.Obs.Metrics.value with
           | Obs.Metrics.Histogram h
             when s.Obs.Metrics.metric = "chc_serve_decision_latency_seconds"
             ->
             Some h
           | _ -> None)
        (Obs.Metrics.snapshot_all ())
    with
    | None -> Obj [ ("count", Int 0) ]
    | Some h ->
      Obj
        [ ("count", Int h.Obs.Metrics.count);
          ("p50_ms", json_ms h.Obs.Metrics.p50);
          ("p90_ms", json_ms h.Obs.Metrics.p90);
          ("p99_ms", json_ms h.Obs.Metrics.p99);
          ("max_ms", json_ms h.Obs.Metrics.max_seen) ]
  in
  let shard_rows =
    Array.to_list t.shards_arr
    |> List.map (fun s ->
        Obj
          ([ ("live", Int (List.length s.live));
             ("queued", Int (List.length s.incoming));
             ("fuel_starved", Int s.starved) ]
           @ List.map
               (fun (k, v) -> ("engine_" ^ k, Int v))
               (Geometry.Poly_engine.handle_stats s.engine)))
  in
  let wal =
    match t.wal_dir with
    | None -> Null
    | Some dir ->
      Obj
        [ ("dir", Str dir);
          ("bytes", Int (Atomic.get t.ws.ws_bytes));
          ("appends", Int (Atomic.get t.ws.ws_appends));
          ("syncs", Int (Atomic.get t.ws.ws_syncs));
          ( "append_lag",
            Int
              (Atomic.get t.ws.ws_appends
               - Atomic.get t.ws.ws_appends_at_sync) );
          ("errors", Int (Atomic.get t.ws.ws_errors));
          ( "last_error",
            match Atomic.get t.ws.ws_last_error with
            | None -> Null
            | Some m -> Str m ) ]
  in
  let memo =
    List
      (Parallel.Memo.all_stats ()
       |> Stdlib.List.map (fun (name, st) ->
           let total = st.Parallel.Memo.hits + st.Parallel.Memo.misses in
           Obj
             [ ("table", Str name);
               ("hits", Int st.Parallel.Memo.hits);
               ("misses", Int st.Parallel.Memo.misses);
               ( "hit_rate",
                 Str
                   (if total = 0 then "0.000"
                    else
                      Printf.sprintf "%.3f"
                        (float_of_int st.Parallel.Memo.hits
                         /. float_of_int total)) ) ]))
  in
  Obj
    [ ("uptime_s", json_s uptime);
      ("shards", Int t.shard_count);
      ("fuel", Int t.fuel);
      ("inflight", Int (inflight t));
      ("completed", Int t.decided_count);
      ("violations", Int t.violations);
      ( "throughput_avg_ips",
        json_s
          (if uptime > 0. then float_of_int t.decided_count /. uptime
           else 0.) );
      ("decision_latency", latency);
      ("shard", List shard_rows);
      ("wal", wal);
      ("memo", memo);
      ( "log",
        Obj
          [ ("dropped", Int (Obs.Log.dropped ()));
            ("pending", Int (Obs.Log.pending ())) ] );
      ("slow_threshold_ms", json_ms t.slow_s) ]

let admin_source t =
  { Admin.metrics = (fun () -> Obs.Metrics.exposition_all ());
    healthz = healthz t;
    statusz = statusz t }

(* --- restart discovery ------------------------------------------------- *)

let read_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in_noerr ic;
    lines

(* Decode the longest well-formed prefix: a torn final line is the
   expected shape of a crash mid-append, and everything after a torn
   line is untrusted anyway (the disk-prefix model). *)
let decode_prefix ~dim ~path lines =
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest -> go acc rest
    | line :: rest -> (
        match Recovery.event_of_string ~dim line with
        | Ok e -> go (e :: acc) rest
        | Error msg ->
          Printf.eprintf "chc_serve: %s: truncating at undecodable entry: %s\n%!"
            path msg;
          List.rev acc)
  in
  go [] lines

let scan_wal ~wal_dir =
  let dirs =
    match Sys.readdir wal_dir with
    | exception Sys_error _ -> [||]
    | names -> names
  in
  Array.to_list dirs
  |> List.filter_map (fun name ->
      match
        if String.length name > 5 && String.sub name 0 5 = "inst-" then
          int_of_string_opt
            (String.sub name 5 (String.length name - 5))
        else None
      with
      | None -> None
      | Some id ->
        let dir = Filename.concat wal_dir name in
        if
          (not (Sys.is_directory dir))
          || Sys.file_exists (Filename.concat dir "decided.json")
        then None
        else begin
          match Chc.Scenario.load (Filename.concat dir "meta.json") with
          | Error e ->
            Printf.eprintf "chc_serve: %s: skipping: %s\n%!" dir
              (Chc.Scenario.error_to_string e);
            None
          | Ok scen ->
            let config = scen.Chc.Scenario.config in
            let n = config.Config.n in
            let dim = config.Config.d in
            let entries =
              Array.init n (fun pid ->
                  let path =
                    Filename.concat dir (Printf.sprintf "wal-%d.jsonl" pid)
                  in
                  decode_prefix ~dim ~path (read_lines path))
            in
            (* A resumed run restarts every process from its log; the
               original crash plans already played out (or died with
               the daemon), so they do not re-arm. *)
            let job =
              { id; config; inputs = scen.Chc.Scenario.inputs;
                crash = Array.make n Crash.Never;
                round0 = scen.Chc.Scenario.round0 }
            in
            Some (job, entries)
        end)
  |> List.sort (fun (a, _) (b, _) -> compare a.id b.id)
