module Q = Numeric.Q
module Polytope = Geometry.Polytope
module Transport = Runtime.Transport
module Loopback = Runtime.Loopback
module Crash = Runtime.Crash
module Config = Chc.Config
module Instance = Chc.Instance
module Recovery = Chc.Recovery
module Sink = Obs.Sink

type job = {
  id : int;
  config : Config.t;
  inputs : Geometry.Vec.t array;
  crash : Crash.plan array;
  round0 : Instance.round0_mode;
}

type outcome = {
  job : job;
  outputs : (Transport.pid * Polytope.t) list;
  t_end : int;
  steps : int;
  latency_s : float;
  recovered : Transport.pid list;
  resumed : bool;
}

(* --- metrics ----------------------------------------------------------- *)

let submitted_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~labels:[ ("status", "submitted") ]

let decided_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~labels:[ ("status", "decided") ]

let resumed_total =
  Obs.Metrics.counter "chc_serve_instances_total"
    ~labels:[ ("status", "resumed") ]

let inflight_gauge = Obs.Metrics.gauge "chc_serve_inflight"
let throughput_gauge = Obs.Metrics.gauge "chc_serve_throughput_ips"

let latency_hist =
  Obs.Metrics.histogram "chc_serve_decision_latency_seconds"

(* --- jobs -------------------------------------------------------------- *)

let job_of_request (Frame.Submit { id; n; f; d; eps; lo; hi; inputs }) =
  match Config.make ~n ~f ~d ~eps ~lo ~hi with
  | exception Invalid_argument msg -> Error msg
  | config ->
    if Array.length inputs <> n then
      Error
        (Printf.sprintf "need %d inputs, got %d" n (Array.length inputs))
    else begin
      match Array.iter (Config.validate_input config) inputs with
      | () ->
        Ok
          { id; config; inputs; crash = Array.make n Crash.Never;
            round0 = `Stable_vector }
      | exception Invalid_argument msg -> Error msg
    end

let is_recover_plan = function
  | Crash.Crash_recover _ -> true
  | Crash.Never | Crash.After_sends _ | Crash.After_receives _ -> false

let graded_set job recovered =
  let faulty = Chc.Cc.fault_set job.crash in
  let n = job.config.Config.n in
  List.init n Fun.id
  |> List.filter (fun i -> (not (List.mem i faulty)) || List.mem i recovered)

let response_of_outcome o =
  match o.outputs with
  | (_, output) :: _ ->
    Frame.Decision { id = o.job.id; t_end = o.t_end; output }
  | [] -> Frame.Rejected { id = o.job.id; reason = "no graded process decided" }

let grade o =
  let config = o.job.config in
  let graded = graded_set o.job o.recovered in
  if List.length o.outputs < List.length graded then
    Error
      (Printf.sprintf "termination: %d of %d graded processes decided"
         (List.length o.outputs) (List.length graded))
  else begin
    let hull =
      Polytope.of_points ~dim:config.Config.d
        (List.map (fun i -> o.job.inputs.(i)) graded)
    in
    match
      List.find_opt (fun (_, h) -> not (Polytope.subset h hull)) o.outputs
    with
    | Some (i, _) ->
      Error
        (Printf.sprintf "validity: process %d decided outside the correct hull"
           i)
    | None ->
      let rec pairs acc = function
        | [] -> acc
        | (_, h) :: rest ->
          let acc =
            List.fold_left
              (fun acc (_, h') -> Q.max acc (Polytope.hausdorff2 h h'))
              acc rest
          in
          pairs acc rest
      in
      let a2 = pairs Q.zero o.outputs in
      if Q.lt a2 (Q.square config.Config.eps) || List.length o.outputs < 2
      then Ok ()
      else Error "agreement: pairwise Hausdorff distance at or above eps"
  end

(* --- the sharded multiplexer ------------------------------------------- *)

type running = {
  rjob : job;
  insts : Instance.t array;
  lb : Instance.msg Loopback.t;
  wal : Sink.appender array option;
  inst_dir : string option;
  submitted_at : float;
  was_resumed : bool;
}

type shard = {
  mutable live : running list;     (** submission order *)
  mutable incoming : running list; (** newest first; merged at pump *)
}

type t = {
  shard_count : int;
  fuel : int;
  wal_dir : string option;
  shards_arr : shard array;
  live_ids : (int, unit) Hashtbl.t;
  mutable decided_count : int;
  mutable mark_at : float;
  mutable mark_decided : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    match Unix.mkdir path 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      raise
        (Sink.Write_error
           { path;
             message = Printf.sprintf "%s: %s" fn (Unix.error_message err) })
  end

let create ?shards ?(fuel = 64) ?wal_dir () =
  let shard_count =
    match shards with Some s -> s | None -> Parallel.Pool.global_size ()
  in
  if shard_count < 1 then invalid_arg "Server.create: shards < 1";
  if fuel < 1 then invalid_arg "Server.create: fuel < 1";
  Option.iter mkdir_p wal_dir;
  { shard_count;
    fuel;
    wal_dir;
    shards_arr =
      Array.init shard_count (fun _ -> { live = []; incoming = [] });
    live_ids = Hashtbl.create 256;
    decided_count = 0;
    mark_at = Unix.gettimeofday ();
    mark_decided = 0 }

let shards t = t.shard_count
let inflight t = Hashtbl.length t.live_ids
let completed t = t.decided_count

let submit t ?resume job =
  if Hashtbl.mem t.live_ids job.id then
    invalid_arg
      (Printf.sprintf "Server.submit: instance %d already live" job.id);
  let n = job.config.Config.n in
  if Array.length job.crash <> n then
    invalid_arg "Server.submit: need n crash plans";
  (* Same arming rule as {!Chc.Cc.execute}, plus: a wal_dir or a resume
     always arms durability (the whole point of the daemon's WAL). *)
  let recovery_on =
    t.wal_dir <> None || resume <> None
    || Array.exists is_recover_plan job.crash
  in
  let wal_spec = if recovery_on then Some Runtime.Wal.default_config else None in
  let spec = Instance.spec ~round0:job.round0 ?wal:wal_spec job.config in
  let insts =
    Array.init n (fun i -> Instance.create spec ~me:i ~input:job.inputs.(i))
  in
  let inst_dir, wal =
    match t.wal_dir with
    | None -> (None, None)
    | Some root ->
      let dir = Filename.concat root (Printf.sprintf "inst-%d" job.id) in
      mkdir_p dir;
      (* The daemon's loopback is Sim under the fifo schedule, so the
         persisted scenario replays (and re-grades) this execution. *)
      let scen =
        Chc.Scenario.make ~config:job.config ~inputs:job.inputs
          ~crash:job.crash ~scheduler:Runtime.Scheduler.fifo ~seed:0
          ~round0:job.round0 ?wal:wal_spec ()
      in
      Chc.Scenario.save ~path:(Filename.concat dir "meta.json") scen;
      let aps =
        Array.init n (fun pid ->
            Sink.append_open
              ~path:(Filename.concat dir (Printf.sprintf "wal-%d.jsonl" pid)))
      in
      (Some dir, Some aps)
  in
  let run_effects (ep : Instance.msg Transport.ep) effs =
    let pid = ep.Transport.me in
    let io =
      Instance.io ~send:ep.Transport.send
        ~broadcast:(fun m -> ep.Transport.broadcast m)
        ~sends:ep.Transport.sends
        ?on_wal:
          (Option.map
             (fun aps e ->
                Sink.append_line aps.(pid) (Recovery.event_to_string e))
             wal)
        ?on_sync:(Option.map (fun aps () -> Sink.append_sync aps.(pid)) wal)
        ()
    in
    Instance.interpret insts.(pid) io effs
  in
  let make i =
    let inst = insts.(i) in
    let kickoff () =
      match resume with
      | None -> Instance.start inst
      | Some entries -> Instance.restore inst ~entries:entries.(i)
    in
    { Transport.on_start = (fun ep -> run_effects ep (kickoff ()));
      on_receive =
        (fun ep ~src msg -> run_effects ep (Instance.handle inst ~src msg)) }
  in
  let on_crash i ~keep = Instance.crash insts.(i) ~keep in
  let on_recover (ep : Instance.msg Transport.ep) =
    run_effects ep (Instance.recover insts.(ep.Transport.me))
  in
  let lb =
    Loopback.create ~on_crash ~on_recover ~crash:job.crash ~n ~make ()
  in
  let r =
    { rjob = job; insts; lb; wal; inst_dir;
      submitted_at = Unix.gettimeofday (); was_resumed = resume <> None }
  in
  let shard = t.shards_arr.(((job.id mod t.shard_count) + t.shard_count)
                            mod t.shard_count) in
  shard.incoming <- r :: shard.incoming;
  Hashtbl.replace t.live_ids job.id ();
  Obs.Metrics.incr submitted_total;
  if r.was_resumed then Obs.Metrics.incr resumed_total;
  Obs.Metrics.set inflight_gauge (float_of_int (inflight t))

let finalize r =
  let recovered =
    List.filter (Loopback.recovered_of r.lb)
      (List.init (Loopback.n r.lb) Fun.id)
  in
  let outputs =
    graded_set r.rjob recovered
    |> List.filter_map (fun i ->
        Option.map (fun h -> (i, h)) (Instance.poll_decision r.insts.(i)))
  in
  let m = Loopback.metrics r.lb in
  (match r.wal with Some aps -> Array.iter Sink.append_close aps | None -> ());
  (match r.inst_dir with
   | None -> ()
   | Some dir ->
     let marker =
       Printf.sprintf "{\"id\":%d,\"t_end\":%d,\"decided\":%d}" r.rjob.id
         (Instance.t_end r.insts.(0))
         (List.length outputs)
     in
     (* A lost marker only means a redundant (idempotent) resume. *)
     (match
        Sink.write_string ~path:(Filename.concat dir "decided.json") marker
      with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "chc_serve: %s\n%!" msg));
  let latency_s = Unix.gettimeofday () -. r.submitted_at in
  Obs.Metrics.observe latency_hist latency_s;
  Obs.Metrics.incr decided_total;
  { job = r.rjob;
    outputs;
    t_end = Instance.t_end r.insts.(0);
    steps = m.Transport.steps;
    latency_s;
    recovered;
    resumed = r.was_resumed }

let pump_shard fuel shard =
  shard.live <- shard.live @ List.rev shard.incoming;
  shard.incoming <- [];
  let completed = ref [] in
  let still =
    List.filter
      (fun r ->
         let budget = ref fuel in
         while !budget > 0 && Loopback.step r.lb do
           decr budget
         done;
         if Loopback.quiescent r.lb then begin
           completed := finalize r :: !completed;
           false
         end
         else true)
      shard.live
  in
  shard.live <- still;
  List.rev !completed

let pump t =
  let outcomes =
    Parallel.Pool.parallel_map
      (Parallel.Pool.global ())
      (pump_shard t.fuel)
      (Array.to_list t.shards_arr)
    |> List.concat
  in
  List.iter (fun o -> Hashtbl.remove t.live_ids o.job.id) outcomes;
  t.decided_count <- t.decided_count + List.length outcomes;
  Obs.Metrics.set inflight_gauge (float_of_int (inflight t));
  let now = Unix.gettimeofday () in
  let dt = now -. t.mark_at in
  if dt >= 1.0 then begin
    Obs.Metrics.set throughput_gauge
      (float_of_int (t.decided_count - t.mark_decided) /. dt);
    t.mark_at <- now;
    t.mark_decided <- t.decided_count
  end;
  outcomes

let drain ?(max_rounds = 100_000) t =
  let rec go rounds acc =
    if inflight t = 0 then List.rev acc
    else if rounds >= max_rounds then raise Transport.Step_limit_exceeded
    else go (rounds + 1) (List.rev_append (pump t) acc)
  in
  go 0 []

(* --- restart discovery ------------------------------------------------- *)

let read_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in_noerr ic;
    lines

(* Decode the longest well-formed prefix: a torn final line is the
   expected shape of a crash mid-append, and everything after a torn
   line is untrusted anyway (the disk-prefix model). *)
let decode_prefix ~dim ~path lines =
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest -> go acc rest
    | line :: rest -> (
        match Recovery.event_of_string ~dim line with
        | Ok e -> go (e :: acc) rest
        | Error msg ->
          Printf.eprintf "chc_serve: %s: truncating at undecodable entry: %s\n%!"
            path msg;
          List.rev acc)
  in
  go [] lines

let scan_wal ~wal_dir =
  let dirs =
    match Sys.readdir wal_dir with
    | exception Sys_error _ -> [||]
    | names -> names
  in
  Array.to_list dirs
  |> List.filter_map (fun name ->
      match
        if String.length name > 5 && String.sub name 0 5 = "inst-" then
          int_of_string_opt
            (String.sub name 5 (String.length name - 5))
        else None
      with
      | None -> None
      | Some id ->
        let dir = Filename.concat wal_dir name in
        if
          (not (Sys.is_directory dir))
          || Sys.file_exists (Filename.concat dir "decided.json")
        then None
        else begin
          match Chc.Scenario.load (Filename.concat dir "meta.json") with
          | Error e ->
            Printf.eprintf "chc_serve: %s: skipping: %s\n%!" dir
              (Chc.Scenario.error_to_string e);
            None
          | Ok scen ->
            let config = scen.Chc.Scenario.config in
            let n = config.Config.n in
            let dim = config.Config.d in
            let entries =
              Array.init n (fun pid ->
                  let path =
                    Filename.concat dir (Printf.sprintf "wal-%d.jsonl" pid)
                  in
                  decode_prefix ~dim ~path (read_lines path))
            in
            (* A resumed run restarts every process from its log; the
               original crash plans already played out (or died with
               the daemon), so they do not re-arm. *)
            let job =
              { id; config; inputs = scen.Chc.Scenario.inputs;
                crash = Array.make n Crash.Never;
                round0 = scen.Chc.Scenario.round0 }
            in
            Some (job, entries)
        end)
  |> List.sort (fun (a, _) (b, _) -> compare a.id b.id)
