(** Length-prefixed binary framing for the serving daemon.

    Everything [chc_serve] puts on a byte stream — protocol messages
    between daemon-hosted processes, and the client request/response
    vocabulary — is one {e frame}: an unsigned LEB128 varint byte
    length followed by that many payload bytes, payload encoded with
    {!Codec.Wire}. Frames are self-delimiting, so a TCP connection, a
    Unix socketpair and an in-memory loopback buffer all carry the
    same bytes; the {!decoder} reassembles frames from arbitrary chunk
    boundaries.

    Framing is observable: every encoded/decoded frame bumps the
    [chc_serve_frames_total{dir}] and [chc_serve_frame_bytes_total{dir}]
    counter families. *)

exception Malformed of string
(** A structurally invalid payload (bad tag, truncated fields,
    trailing bytes). Alias-free: distinct from {!Codec.Wire.Malformed}
    so transport code can tell "short read, wait for more bytes" from
    "this peer speaks garbage". *)

(** {1 Protocol-message codec}

    {!Chc.Instance.msg} on the wire — what daemon-hosted processes of
    one consensus instance exchange. Stable-vector views travel as
    their transparent (origin, value) entry form
    ({!Protocol.Stable_vector.msg_entries}). *)

val write_msg : Buffer.t -> Chc.Instance.msg -> unit
val read_msg : Codec.Wire.reader -> Chc.Instance.msg
(** @raise Malformed on an unknown tag;
    @raise Codec.Wire.Malformed on truncated numeric fields. *)

val msg_to_string : Chc.Instance.msg -> string
val msg_of_string : string -> (Chc.Instance.msg, string) result
(** Whole-payload forms; [msg_of_string] also rejects trailing bytes. *)

(** {1 Client vocabulary} *)

type request =
  | Submit of {
      id : int;                        (** client-chosen instance id *)
      n : int;
      f : int;
      d : int;
      eps : Numeric.Q.t;
      lo : Numeric.Q.t;
      hi : Numeric.Q.t;
      inputs : Geometry.Vec.t array;   (** length [n] *)
    }  (** start one consensus instance over the given inputs *)

type response =
  | Decision of {
      id : int;
      t_end : int;
      output : Geometry.Polytope.t;
          (** the decided polytope of the lowest-numbered deciding
              process — by ε-agreement any process's decision is
              within ε of it *)
    }
  | Rejected of { id : int; reason : string }

val write_request : Buffer.t -> request -> unit
val read_request : Codec.Wire.reader -> request
val write_response : Buffer.t -> response -> unit
val read_response : Codec.Wire.reader -> response

(** {1 Frames} *)

val encode_frame : string -> string
(** Prefix a payload with its varint length (and count it as an
    outbound frame). *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> ?off:int -> ?len:int -> string -> unit
(** Append raw bytes (a chunk of any size, including a partial or
    multi-frame read) to the decoder. *)

val next : decoder -> string option
(** The next complete frame payload, if one has fully arrived (counted
    as an inbound frame); [None] means feed more bytes.
    @raise Malformed if the stream is not a valid frame sequence
    (e.g. an absurd length prefix). *)

val pending : decoder -> int
(** Bytes buffered but not yet returned by {!next}. *)
