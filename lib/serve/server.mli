(** The serving daemon's core: many concurrent Algorithm CC instances,
    each running over its own {!Runtime.Loopback} transport, sharded
    across domains via {!Parallel.Pool}.

    One {!job} is one consensus instance — [n] sans-IO
    {!Chc.Instance}s wired to a private FIFO loopback. Jobs are
    assigned to a shard by [id mod shards]; {!pump} advances every
    shard in parallel (one pool task per shard, each delivering up to
    [fuel] messages per live instance), so throughput scales with
    domains while each instance's execution stays single-threaded and
    deterministic. Completed instances come back as {!outcome}s, which
    {!grade} checks against the paper's Theorem 2 properties.

    With a [wal_dir], every instance writes per-process WALs through
    {!Obs.Sink} appenders during execution (the {!Chc.Instance}
    [Wal_append]/[Wal_sync] mirror effects), plus a [meta.json]
    scenario and a [decided.json] completion marker — so a daemon
    killed mid-flight can {!scan_wal} on restart and resubmit the
    unfinished instances via the {!Chc.Instance.restore} rejoin path.

    Metrics: [chc_serve_instances_total{status}] counters,
    [chc_serve_inflight] gauge, [chc_serve_throughput_ips] gauge
    (decided instances per second over the last pump window), the
    [chc_serve_decision_latency_seconds] histogram, plus
    [chc_serve_violations_total] (see {!grade_count}),
    [chc_serve_wal_bytes_total] and [chc_serve_wal_errors_total].

    Telemetry rides along without touching execution:
    {!Obs.Log} lines for submit / decide / slow-request / WAL-error
    (no-ops unless a level is set), per-job {!Obs.Prof} slices
    ([queued] / [pump] / [job] on track = instance id) when profiling
    is enabled, and — with [causal_k > 0] — retained {!Obs.Trace}s of
    the slowest jobs for {!slowest}'s critical-path analysis.
    {!admin_source} packages the live view for {!Admin}. *)

type job = {
  id : int;  (** unique per daemon run; names the WAL directory *)
  config : Chc.Config.t;
  inputs : Geometry.Vec.t array;
  crash : Runtime.Crash.plan array;
  round0 : Chc.Instance.round0_mode;
}

val job_of_request : Frame.request -> (job, string) result
(** Validate a client [Submit] into a crash-free job; [Error] carries
    the {!Frame.Rejected} reason (resilience bound violated, wrong
    input count, out-of-range coordinates). *)

type outcome = {
  job : job;
  outputs : (Runtime.Transport.pid * Geometry.Polytope.t) list;
      (** decisions of the graded (fault-free or recovered) processes,
          by pid ascending *)
  t_end : int;
  steps : int;         (** loopback deliveries consumed *)
  latency_s : float;   (** submit-to-decision wall clock *)
  recovered : Runtime.Transport.pid list;
  resumed : bool;      (** went through the WAL restore path *)
}

val response_of_outcome : outcome -> Frame.response
(** [Decision] carrying the lowest-pid output, or [Rejected] if no
    graded process decided (cannot happen for jobs within the
    resilience bound). *)

val grade : outcome -> (unit, string) result
(** Theorem 2 over the outcome: termination (every graded process
    decided), validity (each output inside the hull of the graded
    processes' inputs) and ε-agreement (max pairwise squared Hausdorff
    distance [< ε²], exact). [Error] names the first violated
    property. *)

type t

val create :
  ?shards:int ->
  ?fuel:int ->
  ?slow_s:float ->
  ?causal_k:int ->
  ?wal_dir:string ->
  unit ->
  t
(** [shards] defaults to the global pool size; [fuel] (messages
    delivered per instance per pump, default 64) trades per-instance
    latency against cross-instance fairness. [wal_dir] arms per-job
    durability (created if missing). [slow_s] (default 1.0) is the
    submit-to-decision latency above which an instance earns a
    [slow_request] log line. [causal_k] (default 0) arms per-job event
    traces and retains the [k] slowest jobs' traces for {!slowest} —
    tracing costs memory per live instance, so it is opt-in.
    @raise Invalid_argument if [shards < 1], [fuel < 1] or
    [causal_k < 0];
    @raise Obs.Sink.Write_error if [wal_dir] cannot be created. *)

val shards : t -> int
val inflight : t -> int
val completed : t -> int
(** Lifetime decided-instance count. *)

val violations : t -> int
(** Gradings (via {!grade_count}) that failed so far — non-zero
    degrades [/healthz]. *)

val wal_error : t -> string option
(** Most recent WAL write failure, if any ("path: message"). A failed
    process keeps running but stops writing its log; the daemon serves
    on, degraded. *)

val grade_count : t -> outcome -> (unit, string) result
(** {!grade}, plus the telemetry side effects on [Error]: bump
    {!violations} and [chc_serve_violations_total], and emit an
    error-level [violation] log line. The serving paths use this;
    {!grade} stays pure for tests and offline re-grading. *)

val submit : t -> ?resume:Chc.Recovery.event list array -> job -> unit
(** Enqueue a job on its shard. With [resume], each process restores
    from the given WAL entries (the restart path) instead of starting
    fresh. @raise Invalid_argument on a duplicate live [id]. *)

val pump : t -> outcome list
(** One parallel pump round: every shard advances its live instances
    by up to [fuel] deliveries each. Returns instances that reached
    quiescence during this round (decided, or dead-ended by
    unrecovered crashes), oldest-submission first within a shard. *)

val drain : ?max_rounds:int -> t -> outcome list
(** Pump until nothing is in flight (default [max_rounds = 100_000]).
    @raise Runtime.Transport.Step_limit_exceeded if instances are
    still live after [max_rounds] pumps. *)

val slowest : t -> (int * float * Obs.Causal.t) list
(** With [causal_k > 0]: the slowest completed jobs so far as
    [(id, latency_s, critical-path analysis)], latency descending, at
    most [causal_k] entries. Analysis runs on demand from the retained
    traces. Empty when tracing is off. *)

val admin_source : t -> Admin.source
(** The live telemetry view for the admin endpoint: [/metrics] is the
    process-wide {!Obs.Metrics.exposition_all}; [/healthz] is healthy
    iff no Theorem-2 violation has been counted and no WAL write has
    failed; [/statusz] is the full JSON status page (uptime, per-shard
    live/queued/fuel-starved, decision-latency percentiles, WAL byte
    and append-lag counters, memo hit rates, log drop counts — floats
    rendered as strings to stay within {!Codec.Json}). The thunks read
    mutable daemon state, so call them from the thread that pumps —
    the daemon's select loop does exactly that. *)

val scan_wal : wal_dir:string -> (job * Chc.Recovery.event list array) list
(** Restart discovery: every [inst-<id>] subdirectory with a readable
    [meta.json] and no [decided.json] marker, as a job plus its
    per-process surviving WAL entries — ready for
    [submit ~resume]. Unreadable directories are skipped with a note
    on stderr, and each WAL is decoded up to its first undecodable
    line (a half-written tail is the expected crash shape, not an
    error — the disk-prefix model). Sorted by id. *)
