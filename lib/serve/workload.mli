(** Synthetic workloads for the serving daemon — the generator behind
    experiment E15 and the serve smoke test.

    A workload is a {!mix} of problem shapes sampled round-robin, with
    inputs drawn deterministically from a seeded {!Runtime.Rng}, driven
    through a {!Server.t} in one of two classic load patterns:

    - {!closed_loop} holds a fixed number of instances in flight
      (decide one, submit the next) — the throughput measurement;
    - {!open_loop} submits at a fixed number of instances per pump
      regardless of completions — the latency-under-arrival-pressure
      measurement.

    Every completed instance is graded on the spot
    ({!Server.grade_count}, so violations also reach the metrics
    registry and the health page); a phase reports Theorem 2
    violations rather than hiding them in a throughput number.

    [on_pump] (both loops) runs after every pump round on the driving
    thread — the hook behind [--metrics-every] periodic exposition and
    the admin poller in [chc_serve drive]. *)

type mix_item = {
  n : int;
  f : int;
  d : int;
  recover : bool;
      (** arm a crash-recovery plan on process 0 (crash at its third
          delivery, revive 8 steps later, WAL intact) *)
}

val default_mix : mix_item list
(** Four shapes spanning the cheap-to-moderate range, one with
    recovery: (4,1,1), (5,1,2), (6,1,2), (6,1,2)+recover. *)

val job : rng:Runtime.Rng.t -> id:int -> mix_item -> Server.job
(** One job of the given shape: ε = 1/100 over the unit box, inputs
    from {!Chc.Scenario.random_inputs}. Deterministic in the rng
    state. *)

type phase = {
  label : string;
  instances : int;       (** completed during the phase *)
  wall_s : float;
  throughput_ips : float;  (** instances / wall_s *)
  latency_p50_s : float;
  latency_p99_s : float;
  latency_max_s : float;
  max_inflight : int;
  grade_failures : string list;
      (** one entry per instance that violated a Theorem 2 property —
          must be empty *)
}

val closed_loop :
  ?on_pump:(unit -> unit) ->
  server:Server.t ->
  rng:Runtime.Rng.t ->
  mix:mix_item list ->
  label:string ->
  first_id:int ->
  concurrency:int ->
  total:int ->
  unit ->
  phase
(** Keep [concurrency] instances in flight until [total] have
    completed. Ids are [first_id ..] (pass a fresh range per phase —
    ids must not collide with live instances). *)

val open_loop :
  ?on_pump:(unit -> unit) ->
  server:Server.t ->
  rng:Runtime.Rng.t ->
  mix:mix_item list ->
  label:string ->
  first_id:int ->
  per_pump:int ->
  pumps:int ->
  unit ->
  phase
(** Submit [per_pump] new instances before each of [pumps] pump
    rounds, then drain. *)

val percentile : float list -> float -> float
(** [percentile samples p] with [p] a fraction in [0, 1]: exact
    nearest-rank percentile on the sorted list; [0.] on an empty
    list. Exposed for the bench's JSON writer and tests. *)
