(** The daemon's live telemetry endpoint: a deliberately minimal
    HTTP/1.0 responder for [GET /metrics], [GET /healthz] and
    [GET /statusz].

    Two integration shapes, both non-blocking and select-friendly:

    - a dedicated listener ({!create} / {!fds} / {!handle_ready}),
      multiplexed into the daemon's existing select loop on its own
      [--admin-port];
    - protocol hijack on the main frame port: a connection whose first
      bytes {!looks_like_http} is handed to a {!conn} and answered
      in-line, so every running [chc_serve listen] is scrapable with
      no extra configuration.

    One request per connection ([Connection: close]), no keep-alive,
    no chunked encoding, GET only — a scrape target, not a web server.
    Responses are produced by the {!source} thunks, which run on the
    select-loop thread between pump rounds (the decision record in
    DESIGN §2 explains why there is deliberately no admin thread). *)

type source = {
  metrics : unit -> string;
      (** Prometheus text exposition ([text/plain; version=0.0.4]) *)
  healthz : unit -> bool * Codec.Json.t;
      (** liveness: [(healthy, detail)] — unhealthy renders as 503 so
          orchestrators can act on status alone *)
  statusz : unit -> Codec.Json.t;
      (** the full JSON status page *)
}

val handle_request : source -> string -> string
(** [handle_request source text] maps one raw request (everything up
    to the header-terminating blank line) to a complete HTTP/1.0
    response: 200 on the three known paths, 404 on other paths, 405 on
    non-GET methods, 400 on requests that do not parse, 500 (with the
    exception text) if a source thunk raises. *)

(** {1 Connection state machine} *)

type conn

val conn : unit -> conn

val feed :
  source -> conn -> string -> [ `More | `Respond of string | `Bad of string ]
(** Buffer request bytes. [`More]: headers incomplete, keep reading.
    [`Respond r]: write [r] and close. [`Bad r]: same, but the request
    was oversized (> 8 KiB) or garbled — [r] is a 400. *)

val looks_like_http : string -> bool
(** Do these first bytes of a fresh connection start an HTTP request
    (["GET "] / ["HEAD "] / ["POST "] / ["PUT "])? Distinguishes
    scrapers from frame clients on the shared port. Never true of a
    length-prefixed {!Frame} stream shorter than 2^28 bytes: an
    ASCII-uppercase first byte implies a length >= 0x47 with
    continuation bits spelling the rest of the method name. *)

(** {1 Dedicated listener} *)

type t

val create : ?port:int -> source -> t
(** Bind and listen on [127.0.0.1:port] (default 0: ephemeral — read
    back with {!port}). *)

val port : t -> int

val fds : t -> Unix.file_descr list
(** The listener plus every open admin connection — add these to the
    daemon's select read set. *)

val owns : t -> Unix.file_descr -> bool

val handle_ready : t -> Unix.file_descr -> unit
(** Advance one fd select reported ready: accept on the listener, or
    read-and-maybe-respond on a connection. Connections close after
    one response; I/O errors just drop the peer. *)

val poll : ?timeout:float -> t -> unit
(** Self-contained pump: select over {!fds} with [timeout] (default 0)
    and {!handle_ready} everything ready — for drivers without their
    own select loop (tests, [chc_serve drive]). *)

val close : t -> unit
(** Close the listener and every connection. *)
