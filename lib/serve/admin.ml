(* Minimal HTTP/1.0 admin responder. The parsing surface is one
   request line plus headers we ignore; the serving surface is three
   GET paths. Everything else is a 4xx. *)

type source = {
  metrics : unit -> string;
  healthz : unit -> bool * Codec.Json.t;
  statusz : unit -> Codec.Json.t;
}

let () =
  Obs.Metrics.set_help "chc_serve_admin_requests_total"
    "Admin-plane HTTP requests, by endpoint (or error class)."

let scrape_counter endpoint =
  Obs.Metrics.counter "chc_serve_admin_requests_total"
    ~labels:[ ("endpoint", endpoint) ]

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status content_type (String.length body) body

let json_response ~status j =
  response ~status ~content_type:"application/json"
    (Codec.Json.to_string j ^ "\n")

let bad_request reason =
  Obs.Metrics.incr (scrape_counter "bad");
  response ~status:"400 Bad Request" ~content_type:"text/plain"
    (reason ^ "\n")

let handle_request source text =
  let line =
    match String.index_opt text '\n' with
    | None -> text
    | Some i -> String.sub text 0 i
  in
  let line = String.trim line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ meth; path; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    if meth <> "GET" then begin
      Obs.Metrics.incr (scrape_counter "bad");
      response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "only GET is served here\n"
    end
    else begin
      (* strip any query string: /metrics?x=y scrapes /metrics *)
      let path =
        match String.index_opt path '?' with
        | None -> path
        | Some i -> String.sub path 0 i
      in
      let serve endpoint f =
        Obs.Metrics.incr (scrape_counter endpoint);
        match f () with
        | resp -> resp
        | exception e ->
          response ~status:"500 Internal Server Error"
            ~content_type:"text/plain"
            (Printexc.to_string e ^ "\n")
      in
      match path with
      | "/metrics" ->
        serve "metrics" (fun () ->
            response ~status:"200 OK"
              ~content_type:"text/plain; version=0.0.4"
              (source.metrics ()))
      | "/healthz" ->
        serve "healthz" (fun () ->
            let healthy, detail = source.healthz () in
            json_response
              ~status:(if healthy then "200 OK" else "503 Service Unavailable")
              detail)
      | "/statusz" ->
        serve "statusz" (fun () ->
            json_response ~status:"200 OK" (source.statusz ()))
      | _ ->
        Obs.Metrics.incr (scrape_counter "not_found");
        response ~status:"404 Not Found" ~content_type:"text/plain"
          "known endpoints: /metrics /healthz /statusz\n"
    end
  | _ -> bad_request (Printf.sprintf "cannot parse request line %S" line)

(* --- connection state machine ------------------------------------------ *)

let max_request_bytes = 8192

type conn = { buf : Buffer.t }

let conn () = { buf = Buffer.create 256 }

let headers_complete s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i + 2)
    else if
      i + 3 < n
      && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
      && s.[i + 3] = '\n'
    then Some (i + 4)
    else go (i + 1)
  in
  go 0

let feed source c data =
  Buffer.add_string c.buf data;
  if Buffer.length c.buf > max_request_bytes then
    `Bad (bad_request "request too large")
  else begin
    let s = Buffer.contents c.buf in
    match headers_complete s with
    | Some _ -> `Respond (handle_request source s)
    | None -> `More
  end

let looks_like_http data =
  let starts p =
    String.length data >= String.length p
    && String.sub data 0 (String.length p) = p
  in
  starts "GET " || starts "HEAD " || starts "POST " || starts "PUT "

(* --- dedicated listener ------------------------------------------------ *)

type t = {
  source : source;
  sock : Unix.file_descr;
  a_port : int;
  conns : (Unix.file_descr, conn) Hashtbl.t;
}

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let create ?(port = 0) source =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  let a_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { source; sock; a_port; conns = Hashtbl.create 8 }

let port t = t.a_port

let fds t = t.sock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns []

let owns t fd = fd == t.sock || Hashtbl.mem t.conns fd

let drop t fd =
  Hashtbl.remove t.conns fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle_ready t fd =
  if fd == t.sock then begin
    match Unix.accept t.sock with
    | cfd, _ -> Hashtbl.replace t.conns cfd (conn ())
    | exception Unix.Unix_error _ -> ()
  end
  else
    match Hashtbl.find_opt t.conns fd with
    | None -> ()
    | Some c ->
      let buf = Bytes.create 4096 in
      (match Unix.read fd buf 0 (Bytes.length buf) with
       | 0 -> drop t fd
       | k ->
         (match feed t.source c (Bytes.sub_string buf 0 k) with
          | `More -> ()
          | `Respond resp | `Bad resp ->
            write_all fd resp;
            drop t fd)
       | exception
           Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
       | exception Unix.Unix_error _ -> drop t fd)

let poll ?(timeout = 0.) t =
  match Unix.select (fds t) [] [] timeout with
  | ready, _, _ -> List.iter (handle_ready t) ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let close t =
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  try Unix.close t.sock with Unix.Unix_error _ -> ()
