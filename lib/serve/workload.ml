module Q = Numeric.Q
module Crash = Runtime.Crash
module Config = Chc.Config

type mix_item = { n : int; f : int; d : int; recover : bool }

let default_mix =
  [ { n = 4; f = 1; d = 1; recover = false };
    { n = 5; f = 1; d = 2; recover = false };
    { n = 6; f = 1; d = 2; recover = false };
    (* 3-d instances exercise the incremental polytope engine; the
       shared per-shard handle makes their round-over-round hulls (and
       same-shape siblings) warm-start each other. *)
    { n = 6; f = 1; d = 3; recover = false };
    { n = 6; f = 1; d = 2; recover = true } ]

let job ~rng ~id { n; f; d; recover } =
  let config =
    Config.make ~n ~f ~d ~eps:(Q.of_ints 1 100) ~lo:Q.zero ~hi:Q.one
  in
  let inputs = Chc.Scenario.random_inputs ~config ~rng () in
  let crash = Array.make n Crash.Never in
  if recover then
    crash.(0) <-
      Crash.Crash_recover { trigger = Crash.Receives 2; delay = 8; keep = 0 };
  { Server.id; config; inputs; crash; round0 = `Stable_vector }

type phase = {
  label : string;
  instances : int;
  wall_s : float;
  throughput_ips : float;
  latency_p50_s : float;
  latency_p99_s : float;
  latency_max_s : float;
  max_inflight : int;
  grade_failures : string list;
}

let percentile samples p =
  match List.sort compare samples with
  | [] -> 0.
  | sorted ->
    let len = List.length sorted in
    let rank =
      (* nearest-rank: smallest index whose cumulative share >= p *)
      Stdlib.min (len - 1)
        (Stdlib.max 0 (int_of_float (ceil (p *. float_of_int len)) - 1))
    in
    List.nth sorted rank

(* Shared phase skeleton: [refill] decides what to submit before each
   pump, given (submitted so far, completed so far); the loop runs
   until [total] outcomes have arrived. *)
let run_phase ?on_pump ~server ~label ~total ~refill () =
  let started = Unix.gettimeofday () in
  let latencies = ref [] in
  let failures = ref [] in
  let max_inflight = ref 0 in
  let submitted = ref 0 in
  let completed = ref 0 in
  while !completed < total do
    refill ~submitted ~completed:!completed;
    max_inflight := Stdlib.max !max_inflight (Server.inflight server);
    let outcomes = Server.pump server in
    List.iter
      (fun (o : Server.outcome) ->
         latencies := o.Server.latency_s :: !latencies;
         match Server.grade_count server o with
         | Ok () -> ()
         | Error msg ->
           failures :=
             Printf.sprintf "instance %d: %s" o.Server.job.Server.id msg
             :: !failures)
      outcomes;
    completed := !completed + List.length outcomes;
    (match on_pump with None -> () | Some f -> f ())
  done;
  let wall_s = Unix.gettimeofday () -. started in
  { label;
    instances = !completed;
    wall_s;
    throughput_ips =
      (if wall_s > 0. then float_of_int !completed /. wall_s else 0.);
    latency_p50_s = percentile !latencies 0.50;
    latency_p99_s = percentile !latencies 0.99;
    latency_max_s = List.fold_left Stdlib.max 0. !latencies;
    max_inflight = !max_inflight;
    grade_failures = List.rev !failures }

let closed_loop ?on_pump ~server ~rng ~mix ~label ~first_id ~concurrency
    ~total () =
  let mix = Array.of_list mix in
  let refill ~submitted ~completed:_ =
    while
      !submitted < total && Server.inflight server < concurrency
    do
      let id = first_id + !submitted in
      Server.submit server
        (job ~rng ~id mix.(!submitted mod Array.length mix));
      incr submitted
    done
  in
  run_phase ?on_pump ~server ~label ~total ~refill ()

let open_loop ?on_pump ~server ~rng ~mix ~label ~first_id ~per_pump ~pumps
    () =
  let mix = Array.of_list mix in
  let total = per_pump * pumps in
  let refill ~submitted ~completed:_ =
    (* [pumps] arrival bursts, then pure draining *)
    let burst = Stdlib.min per_pump (total - !submitted) in
    for k = 0 to burst - 1 do
      let id = first_id + !submitted + k in
      Server.submit server
        (job ~rng ~id mix.((!submitted + k) mod Array.length mix))
    done;
    submitted := !submitted + burst
  in
  run_phase ?on_pump ~server ~label ~total ~refill ()
