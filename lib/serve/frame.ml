module Wire = Codec.Wire
module SV = Protocol.Stable_vector
module Instance = Chc.Instance

exception Malformed of string

(* --- framing telemetry ------------------------------------------------- *)

let frames_out = Obs.Metrics.counter "chc_serve_frames_total"
    ~labels:[ ("dir", "out") ]
let frames_in = Obs.Metrics.counter "chc_serve_frames_total"
    ~labels:[ ("dir", "in") ]
let bytes_out = Obs.Metrics.counter "chc_serve_frame_bytes_total"
    ~labels:[ ("dir", "out") ]
let bytes_in = Obs.Metrics.counter "chc_serve_frame_bytes_total"
    ~labels:[ ("dir", "in") ]

(* --- protocol-message codec -------------------------------------------- *)

let write_entries buf entries =
  Wire.write_varint buf (List.length entries);
  List.iter
    (fun (origin, v) ->
       Wire.write_varint buf origin;
       Wire.write_vec buf v)
    entries

let read_entries r =
  let count = Wire.read_varint r in
  List.init count (fun _ ->
      let origin = Wire.read_varint r in
      let v = Wire.read_vec r in
      (origin, v))

let tag_sv = 0
let tag_input0 = 1
let tag_round = 2
let tag_rejoin = 3

let write_msg buf (msg : Instance.msg) =
  match msg with
  | Instance.Sv m ->
    Wire.write_varint buf tag_sv;
    write_entries buf (SV.msg_entries m)
  | Instance.Input0 x ->
    Wire.write_varint buf tag_input0;
    Wire.write_vec buf x
  | Instance.Round (t, h) ->
    Wire.write_varint buf tag_round;
    Wire.write_varint buf t;
    Wire.write_polytope buf h
  | Instance.Rejoin r ->
    Wire.write_varint buf tag_rejoin;
    Wire.write_varint buf r

let rec strictly_sorted = function
  | (a, _) :: ((b, _) :: _ as rest) -> a < b && strictly_sorted rest
  | _ -> true

let read_msg r : Instance.msg =
  let tag = Wire.read_varint r in
  if tag = tag_sv then begin
    (* msg_of_entries requires origin-sorted pairs (the form msg_entries
       yields); a hostile peer breaking the order is caught here *)
    let entries = read_entries r in
    if not (strictly_sorted entries) then
      raise (Malformed "sv view entries not strictly sorted by origin");
    Instance.Sv (SV.msg_of_entries entries)
  end
  else if tag = tag_input0 then Instance.Input0 (Wire.read_vec r)
  else if tag = tag_round then
    let t = Wire.read_varint r in
    let h = Wire.read_polytope r in
    Instance.Round (t, h)
  else if tag = tag_rejoin then Instance.Rejoin (Wire.read_varint r)
  else raise (Malformed (Printf.sprintf "unknown message tag %d" tag))

let msg_to_string msg =
  let buf = Buffer.create 64 in
  write_msg buf msg;
  Buffer.contents buf

let msg_of_string s =
  match
    let r = Wire.reader_of_string s in
    let m = read_msg r in
    if not (Wire.reader_done r) then raise (Malformed "trailing bytes");
    m
  with
  | m -> Ok m
  | exception Malformed msg -> Error msg
  | exception Wire.Malformed msg -> Error msg

(* --- client vocabulary ------------------------------------------------- *)

type request =
  | Submit of {
      id : int;
      n : int;
      f : int;
      d : int;
      eps : Numeric.Q.t;
      lo : Numeric.Q.t;
      hi : Numeric.Q.t;
      inputs : Geometry.Vec.t array;
    }

type response =
  | Decision of { id : int; t_end : int; output : Geometry.Polytope.t }
  | Rejected of { id : int; reason : string }

(* Raw byte strings are not part of Wire's vocabulary; spell them as a
   varint length plus per-byte varints (reasons are short). *)
let write_reason buf s =
  Wire.write_varint buf (String.length s);
  String.iter (fun c -> Wire.write_varint buf (Char.code c)) s

let read_reason r =
  let len = Wire.read_varint r in
  String.init len (fun _ -> Char.chr (Wire.read_varint r land 0xff))

let tag_submit = 0
let tag_decision = 0
let tag_rejected = 1

let write_request buf = function
  | Submit { id; n; f; d; eps; lo; hi; inputs } ->
    Wire.write_varint buf tag_submit;
    Wire.write_varint buf id;
    Wire.write_varint buf n;
    Wire.write_varint buf f;
    Wire.write_varint buf d;
    Wire.write_q buf eps;
    Wire.write_q buf lo;
    Wire.write_q buf hi;
    Wire.write_varint buf (Array.length inputs);
    Array.iter (Wire.write_vec buf) inputs

let read_request r =
  let tag = Wire.read_varint r in
  if tag = tag_submit then begin
    let id = Wire.read_varint r in
    let n = Wire.read_varint r in
    let f = Wire.read_varint r in
    let d = Wire.read_varint r in
    let eps = Wire.read_q r in
    let lo = Wire.read_q r in
    let hi = Wire.read_q r in
    let count = Wire.read_varint r in
    let inputs = Array.init count (fun _ -> Wire.read_vec r) in
    Submit { id; n; f; d; eps; lo; hi; inputs }
  end
  else raise (Malformed (Printf.sprintf "unknown request tag %d" tag))

let write_response buf = function
  | Decision { id; t_end; output } ->
    Wire.write_varint buf tag_decision;
    Wire.write_varint buf id;
    Wire.write_varint buf t_end;
    Wire.write_polytope buf output
  | Rejected { id; reason } ->
    Wire.write_varint buf tag_rejected;
    Wire.write_varint buf id;
    write_reason buf reason

let read_response r =
  let tag = Wire.read_varint r in
  if tag = tag_decision then begin
    let id = Wire.read_varint r in
    let t_end = Wire.read_varint r in
    let output = Wire.read_polytope r in
    Decision { id; t_end; output }
  end
  else if tag = tag_rejected then begin
    let id = Wire.read_varint r in
    let reason = read_reason r in
    Rejected { id; reason }
  end
  else raise (Malformed (Printf.sprintf "unknown response tag %d" tag))

(* --- frames ------------------------------------------------------------ *)

let encode_frame payload =
  let buf = Buffer.create (String.length payload + 5) in
  Wire.write_varint buf (String.length payload);
  Buffer.add_string buf payload;
  Obs.Metrics.incr frames_out;
  Obs.Metrics.add bytes_out (Buffer.length buf);
  Buffer.contents buf

(* An incremental reassembler. [buf] holds unconsumed bytes starting
   at [pos]; the buffer is compacted whenever the consumed prefix
   dominates, so long-lived connections do not grow it unboundedly. *)
type decoder = {
  mutable dbuf : Buffer.t;
  mutable pos : int;
}

let max_frame = 64 * 1024 * 1024
(* A length prefix beyond this is a protocol error, not a frame worth
   waiting for — it would let a hostile peer park gigabytes in our
   reassembly buffer. *)

let decoder () = { dbuf = Buffer.create 256; pos = 0 }

let feed t ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  Buffer.add_substring t.dbuf s off len

let pending t = Buffer.length t.dbuf - t.pos

let compact t =
  if t.pos > 4096 && t.pos * 2 > Buffer.length t.dbuf then begin
    let rest = Buffer.sub t.dbuf t.pos (Buffer.length t.dbuf - t.pos) in
    let fresh = Buffer.create (String.length rest + 256) in
    Buffer.add_string fresh rest;
    t.dbuf <- fresh;
    t.pos <- 0
  end

(* Try to read a varint at [pos] without committing: returns
   (value, bytes consumed) or None if more bytes are needed. *)
let peek_varint t =
  let len = Buffer.length t.dbuf in
  let rec go acc shift i =
    if t.pos + i >= len then None
    else begin
      let b = Char.code (Buffer.nth t.dbuf (t.pos + i)) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some (acc, i + 1)
      else if shift >= 56 then raise (Malformed "frame length varint too long")
      else go acc (shift + 7) (i + 1)
    end
  in
  go 0 0 0

let next t =
  match peek_varint t with
  | None -> None
  | Some (flen, hdr) ->
    if flen < 0 || flen > max_frame then
      raise (Malformed (Printf.sprintf "frame length %d out of bounds" flen));
    if pending t < hdr + flen then None
    else begin
      let payload = Buffer.sub t.dbuf (t.pos + hdr) flen in
      t.pos <- t.pos + hdr + flen;
      compact t;
      Obs.Metrics.incr frames_in;
      Obs.Metrics.add bytes_in (hdr + flen);
      Some payload
    end
