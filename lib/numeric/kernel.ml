(* Arithmetic-kernel selection and filter telemetry.

   Three kernels compute the same exact results: [Exact] always runs
   the arbitrary-precision rational path; [Filtered] first tries a
   certified float-interval filter and falls back to exact arithmetic
   when the filter is inconclusive; [Staged] adds a scaled-integer
   second stage between the two — exact machine-int/double-word
   evaluation within statically checked width bounds, an
   extended-exponent mantissa interval past float range, and a
   modular-residue zero certificate (see Grid) — so true zeros and
   overflowing magnitudes no longer force the rational fallback.
   Every stage is conservative (it answers only when its result is
   certified), so the kernels are observationally identical; the exact
   kernel stays available as the oracle for differential testing (see
   lib/fuzz).

   Mode resolution: a per-domain override (installed by [with_mode])
   wins, otherwise the process-wide default, which is initialized from
   [CHC_KERNEL] and adjustable via [set_default] (CLI --kernel). The
   override is domain-local state: nested [Parallel.Pool] combinators
   run sequentially in the submitting domain, so an override installed
   around an execution covers all its geometry when the caller itself
   runs inside a pool worker (the fuzz-campaign case). Work fanned out
   to *other* pool domains from outside any worker falls back to the
   process default — still correct, since kernels agree. *)

type mode = Exact | Filtered | Staged

let to_string = function
  | Exact -> "exact"
  | Filtered -> "filtered"
  | Staged -> "staged"

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "exact" -> Ok Exact
  | "filtered" -> Ok Filtered
  | "staged" -> Ok Staged
  | other ->
    Error
      (Printf.sprintf
         "unknown kernel %S (expected \"exact\", \"filtered\" or \"staged\")"
         other)

(* Same warn-and-clamp discipline as CHC_DOMAINS: a bad value gets an
   explicit warning naming the accepted modes, then the default. *)
let env_default () =
  match Sys.getenv_opt "CHC_KERNEL" with
  | None | Some "" -> Filtered
  | Some s ->
    (match parse s with
     | Ok m -> m
     | Error msg ->
       Printf.eprintf
         "chc: ignoring CHC_KERNEL: %s; using \"filtered\"\n%!" msg;
       Filtered)

let default = Atomic.make (env_default ())

let set_default m = Atomic.set default m
let get_default () = Atomic.get default

let override_key : mode option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let mode () =
  match !(Domain.DLS.get override_key) with
  | Some m -> m
  | None -> Atomic.get default

(* Stage-1 (float interval) filtering is active under both non-exact
   kernels; the integer second stage only under [Staged]. *)
let filtered () = mode () <> Exact
let staged () = mode () = Staged

let with_mode m f =
  let slot = Domain.DLS.get override_key in
  let saved = !slot in
  slot := Some m;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* ------------------------------------------------------------------ *)
(* Filter telemetry. The predicates are far too hot for a mutex or
   even an atomic per call, so each domain owns a plain-field counter
   cell (registered once, under a mutex, at first use); [stats] sums
   the cells. Reads of a cell being bumped concurrently are benign:
   the fields are word-sized, so a snapshot is merely slightly stale,
   never torn. *)

type pred = Sign | Compare | Dot | Cross

let pred_name = function
  | Sign -> "sign"
  | Compare -> "compare"
  | Dot -> "dot"
  | Cross -> "cross"

let all_preds = [ Sign; Compare; Dot; Cross ]

type cell = {
  mutable sign_hit : int;
  mutable sign_int : int;
  mutable sign_fb : int;
  mutable cmp_hit : int;
  mutable cmp_int : int;
  mutable cmp_fb : int;
  mutable dot_hit : int;
  mutable dot_int : int;
  mutable dot_fb : int;
  mutable cross_hit : int;
  mutable cross_int : int;
  mutable cross_fb : int;
}

let cells_m = Mutex.create ()
let cells : cell list ref = ref []

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c =
        { sign_hit = 0; sign_int = 0; sign_fb = 0;
          cmp_hit = 0; cmp_int = 0; cmp_fb = 0;
          dot_hit = 0; dot_int = 0; dot_fb = 0;
          cross_hit = 0; cross_int = 0; cross_fb = 0 }
      in
      Mutex.lock cells_m;
      cells := c :: !cells;
      Mutex.unlock cells_m;
      c)

let hit p =
  let c = Domain.DLS.get cell_key in
  match p with
  | Sign -> c.sign_hit <- c.sign_hit + 1
  | Compare -> c.cmp_hit <- c.cmp_hit + 1
  | Dot -> c.dot_hit <- c.dot_hit + 1
  | Cross -> c.cross_hit <- c.cross_hit + 1

let int_hit p =
  let c = Domain.DLS.get cell_key in
  match p with
  | Sign -> c.sign_int <- c.sign_int + 1
  | Compare -> c.cmp_int <- c.cmp_int + 1
  | Dot -> c.dot_int <- c.dot_int + 1
  | Cross -> c.cross_int <- c.cross_int + 1

let fallback p =
  let c = Domain.DLS.get cell_key in
  match p with
  | Sign -> c.sign_fb <- c.sign_fb + 1
  | Compare -> c.cmp_fb <- c.cmp_fb + 1
  | Dot -> c.dot_fb <- c.dot_fb + 1
  | Cross -> c.cross_fb <- c.cross_fb + 1

type stat = { hits : int; int_hits : int; fallbacks : int }

let stats_of p =
  Mutex.lock cells_m;
  let cs = !cells in
  Mutex.unlock cells_m;
  List.fold_left
    (fun acc c ->
       let h, i, f =
         match p with
         | Sign -> (c.sign_hit, c.sign_int, c.sign_fb)
         | Compare -> (c.cmp_hit, c.cmp_int, c.cmp_fb)
         | Dot -> (c.dot_hit, c.dot_int, c.dot_fb)
         | Cross -> (c.cross_hit, c.cross_int, c.cross_fb)
       in
       { hits = acc.hits + h; int_hits = acc.int_hits + i;
         fallbacks = acc.fallbacks + f })
    { hits = 0; int_hits = 0; fallbacks = 0 } cs

let stats () = List.map (fun p -> (pred_name p, stats_of p)) all_preds

let totals () =
  List.fold_left
    (fun acc (_, s) ->
       { hits = acc.hits + s.hits; int_hits = acc.int_hits + s.int_hits;
         fallbacks = acc.fallbacks + s.fallbacks })
    { hits = 0; int_hits = 0; fallbacks = 0 } (stats ())

let reset_stats () =
  Mutex.lock cells_m;
  let cs = !cells in
  Mutex.unlock cells_m;
  List.iter
    (fun c ->
       c.sign_hit <- 0; c.sign_int <- 0; c.sign_fb <- 0;
       c.cmp_hit <- 0; c.cmp_int <- 0; c.cmp_fb <- 0;
       c.dot_hit <- 0; c.dot_int <- 0; c.dot_fb <- 0;
       c.cross_hit <- 0; c.cross_int <- 0; c.cross_fb <- 0)
    cs
