(* Certified fast-path predicates (the "filtered kernel" front end).

   Each predicate first evaluates a float-interval enclosure of the
   exact expression ({!Interval}); when the enclosure excludes zero the
   sign is certified and no exact arithmetic runs. Otherwise we fall
   back to the exact rational computation — so every answer is exact,
   and the exact kernel ([CHC_KERNEL=exact]) remains a drop-in oracle.

   Under [CHC_KERNEL=staged] an interval miss first tries {!Grid}'s
   scaled-integer second stage (exact machine-int / double-word
   evaluation, extended-exponent intervals, modular-residue zero
   certificates — each gated by static width bounds); only calls that
   stage also declines reach the exact rational fallback. Second-stage
   certifications are counted separately ([int_hits]) so E13 can report
   the per-stage breakdown.

   The fused predicates ([sign_of_dot_minus], the cross-product signs)
   are the point of this module: they enclose the whole expression
   without materializing intermediate [Q] values, which is where the
   exact path burns its time (cross-multiplied denominators grow with
   every add). Fallbacks are counted per predicate class ({!Kernel})
   and, when the profiler is on, wrapped in a "filter.fallback" span so
   E12 shows exactly where exact arithmetic still fires. *)

module I = Interval

let fallback_span = "filter.fallback"


(* Count the fallback and run the exact path, under a span when the
   profiler is recording (the off path stays a branch). *)
let[@inline] slow pred f =
  Kernel.fallback pred;
  if Obs.Prof.enabled () then Obs.Prof.with_span fallback_span f else f ()

let sign q =
  if not (Kernel.filtered ()) then Q.sign q
  else
    match I.sign (Q.enclosure q) with
    | Some s -> Kernel.hit Kernel.Sign; s
    | None -> slow Kernel.Sign (fun () -> Q.sign q)

(* [Q.compare] already carries the filtered big-operand fast path (and
   its telemetry); re-exported here so call sites can name the filtered
   kernel explicitly. *)
let compare = Q.compare

let exact_dot_minus a p b =
  let acc = ref (Q.neg b) in
  for i = 0 to Array.length a - 1 do
    acc := Q.add !acc (Q.mul a.(i) p.(i))
  done;
  Q.sign !acc

(* sign(a . p - b) without building the intermediate rationals.

   Under the staged kernel the interval stage is skipped outright: the
   {!Grid} ladder subsumes it (its extended-exponent mantissa stage
   carries the same 53-bit precision without the float-range blind
   spot, and narrow operands take the exact machine-int stages), so an
   interval pass would only ever duplicate work. On the d = 3 hot path
   term products exceed float range anyway and the interval dot is a
   guaranteed miss. *)
let sign_of_dot_minus a p b =
  if Kernel.staged () then begin
    match Grid.dot_minus_sign a p b with
    | Some s -> Kernel.int_hit Kernel.Dot; s
    | None -> slow Kernel.Dot (fun () -> exact_dot_minus a p b)
  end
  else if not (Kernel.filtered ()) then exact_dot_minus a p b
  else begin
    let acc = ref (I.neg (Q.enclosure b)) in
    for i = 0 to Array.length a - 1 do
      acc := I.add !acc (I.mul (Q.enclosure a.(i)) (Q.enclosure p.(i)))
    done;
    match I.sign !acc with
    | Some s -> Kernel.hit Kernel.Dot; s
    | None -> slow Kernel.Dot (fun () -> exact_dot_minus a p b)
  end

let exact_cross2 o a b =
  Q.sign
    (Q.sub
       (Q.mul (Q.sub a.(0) o.(0)) (Q.sub b.(1) o.(1)))
       (Q.mul (Q.sub a.(1) o.(1)) (Q.sub b.(0) o.(0))))

(* sign((a - o) x (b - o)) — the 2-d orientation test. Staged mode
   skips the interval stage for the same subsumption reason as
   [sign_of_dot_minus]. *)
let sign_cross2 o a b =
  if Kernel.staged () then begin
    match Grid.cross2_sign o a b with
    | Some s -> Kernel.int_hit Kernel.Cross; s
    | None -> slow Kernel.Cross (fun () -> exact_cross2 o a b)
  end
  else if not (Kernel.filtered ()) then exact_cross2 o a b
  else begin
    let o0 = Q.enclosure o.(0) and o1 = Q.enclosure o.(1) in
    let iv =
      I.sub
        (I.mul (I.sub (Q.enclosure a.(0)) o0) (I.sub (Q.enclosure b.(1)) o1))
        (I.mul (I.sub (Q.enclosure a.(1)) o1) (I.sub (Q.enclosure b.(0)) o0))
    in
    match I.sign iv with
    | Some s -> Kernel.hit Kernel.Cross; s
    | None -> slow Kernel.Cross (fun () -> exact_cross2 o a b)
  end

let exact_cross2o u v =
  Q.sign (Q.sub (Q.mul u.(0) v.(1)) (Q.mul u.(1) v.(0)))

(* sign(u x v) for edge vectors already based at the origin. *)
let sign_cross2o u v =
  if Kernel.staged () then begin
    match Grid.cross2o_sign u v with
    | Some s -> Kernel.int_hit Kernel.Cross; s
    | None -> slow Kernel.Cross (fun () -> exact_cross2o u v)
  end
  else if not (Kernel.filtered ()) then exact_cross2o u v
  else begin
    let iv =
      I.sub
        (I.mul (Q.enclosure u.(0)) (Q.enclosure v.(1)))
        (I.mul (Q.enclosure u.(1)) (Q.enclosure v.(0)))
    in
    match I.sign iv with
    | Some s -> Kernel.hit Kernel.Cross; s
    | None -> slow Kernel.Cross (fun () -> exact_cross2o u v)
  end

(* Pivot desirability for exact Gaussian elimination: fewer bits in the
   pivot means smaller intermediate growth. Deterministic and cheap;
   used by Linsys only to *choose* among exactly-nonzero candidates, so
   the (unique) reduced echelon form is unchanged. *)
let pivot_cost q = Bigint.num_bits q.Q.num + Bigint.num_bits q.Q.den

(* Expose hit/fallback telemetry through the metrics registry. *)
let () =
  Obs.Metrics.register_collector (fun () ->
      List.concat_map
        (fun (pred, s) ->
           [ { Obs.Metrics.metric = "chc_filter_hits_total";
               labels = [ ("pred", pred) ];
               value = Obs.Metrics.Counter s.Kernel.hits };
             { Obs.Metrics.metric = "chc_filter_int_hits_total";
               labels = [ ("pred", pred) ];
               value = Obs.Metrics.Counter s.Kernel.int_hits };
             { Obs.Metrics.metric = "chc_filter_fallbacks_total";
               labels = [ ("pred", pred) ];
               value = Obs.Metrics.Counter s.Kernel.fallbacks } ])
        (Kernel.stats ()))
