(* Sign-magnitude bignums over base-2^30 limbs, little-endian, with a
   small-integer fast path: values whose magnitude fits in 62 bits are
   carried as a native [int], which keeps the exact-rational geometry
   kernels allocation-free on typical data. Invariants: [Big] is used
   only for magnitudes of more than 62 bits; [mag] has no trailing
   (most-significant) zero limbs. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t =
  | Small of int
  | Big of { sign : int; mag : int array }

let zero = Small 0

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (little-endian limb arrays without trailing
   zeros; the empty array is 0). *)

let mag_trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_is_zero a = Array.length a = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else
      if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1)
    in
    go (la - 1)

let mag_of_int n =
  (* n >= 0 *)
  if n = 0 then [||]
  else begin
    let rec count k acc = if k = 0 then acc else count (k lsr base_bits) (acc + 1) in
    let len = count n 0 in
    let a = Array.make len 0 in
    let rec fill i k =
      if k <> 0 then begin a.(i) <- k land mask; fill (i + 1) (k lsr base_bits) end
    in
    fill 0 n;
    a
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  mag_trim r

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let s = a.(i) - bi - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_trim r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    mag_trim r
  end

let mag_mul_small a m =
  (* 0 <= m < base *)
  if m = 0 || mag_is_zero a then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * m) + !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    mag_trim r
  end

let mag_add_small a m = mag_add a (mag_of_int m)

(* Divide magnitude by a single limb 0 < d < base. Returns (q, r). *)
let mag_divmod_small a d =
  assert (0 < d && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let t = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- t / d;
    rem := t mod d
  done;
  (mag_trim q, !rem)

let mag_shift_left a k =
  if mag_is_zero a || k = 0 then Array.copy a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then
      for i = 0 to la - 1 do r.(i + limb_shift) <- a.(i) done
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    mag_trim r
  end

let mag_shift_right a k =
  if mag_is_zero a || k = 0 then Array.copy a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then [||]
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      if bit_shift = 0 then
        for i = 0 to lr - 1 do r.(i) <- a.(i + limb_shift) done
      else
        for i = 0 to lr - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la
            then (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done;
      mag_trim r
    end
  end

let mag_num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    (la - 1) * base_bits + bits top 0
  end

let mag_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

(* Knuth Algorithm D. Preconditions: |v| >= 2 limbs, u >= v. *)
let mag_divmod_knuth u v =
  let lv = Array.length v in
  assert (lv >= 2);
  let shift =
    let top = v.(lv - 1) in
    let rec go t acc = if t land (base lsr 1) <> 0 then acc else go (t lsl 1) (acc + 1) in
    go top 0
  in
  let vn = mag_shift_left v shift in
  let un0 = mag_shift_left u shift in
  let lu = Array.length un0 in
  let un = Array.make (lu + 1) 0 in
  Array.blit un0 0 un 0 lu;
  let n = Array.length vn in
  assert (n = lv);
  let m = lu - n in
  if m < 0 then ([||], Array.copy u)
  else begin
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and vsecond = vn.(n - 2) in
    for j = m downto 0 do
      let ujn = un.(j + n) and ujn1 = un.(j + n - 1) in
      let num = (ujn lsl base_bits) lor ujn1 in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        let excess = !qhat - (base - 1) in
        qhat := base - 1;
        rhat := !rhat + (excess * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * vsecond > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end else continue := false
      done;
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let s = un.(i + j) - (p land mask) - !borrow in
        if s < 0 then begin un.(i + j) <- s + base; borrow := 1 end
        else begin un.(i + j) <- s; borrow := 0 end
      done;
      let s = un.(j + n) - !carry - !borrow in
      if s < 0 then begin
        un.(j + n) <- s + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let t = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- t land mask;
          c := t lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land mask
      end else
        un.(j + n) <- s;
      q.(j) <- !qhat
    done;
    let r = mag_shift_right (mag_trim (Array.sub un 0 n)) shift in
    (mag_trim q, r)
  end

let mag_divmod u v =
  if mag_is_zero v then raise Division_by_zero
  else if mag_compare u v < 0 then ([||], Array.copy u)
  else if Array.length v = 1 then begin
    let q, r = mag_divmod_small u v.(0) in
    (q, mag_of_int r)
  end else
    mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed layer with the small-int fast path. A [Small n] always has
   |n| representable (any native int except [min_int], which we box to
   keep negation total). *)

let small_limit_bits = 62

(* Build a canonical value from sign and magnitude. *)
let make sign mag =
  let mag = mag_trim mag in
  if mag_is_zero mag then zero
  else if mag_num_bits mag <= small_limit_bits then begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) mag 0 in
    Small (if sign < 0 then -v else v)
  end
  else Big { sign; mag }

let of_int n =
  if n = min_int then
    (* |min_int| overflows native negation; box it. *)
    Big { sign = -1; mag = mag_add (mag_of_int max_int) (mag_of_int 1) }
  else Small n

let one = Small 1
let two = Small 2
let minus_one = Small (-1)

let sign = function
  | Small n -> compare n 0
  | Big b -> b.sign

let is_zero = function Small 0 -> true | Small _ | Big _ -> false

let mag_of = function
  | Small n -> mag_of_int (abs n)
  | Big b -> b.mag

let neg = function
  | Small n -> Small (-n) (* |n| <= 2^62 - 1, negation is safe *)
  | Big b -> Big { b with sign = -b.sign }

let abs x = if sign x < 0 then neg x else x

let compare a b =
  match a, b with
  | Small x, Small y -> compare x y
  | _ ->
    let sa = sign a and sb = sign b in
    if sa <> sb then compare sa sb
    else if sa >= 0 then mag_compare (mag_of a) (mag_of b)
    else mag_compare (mag_of b) (mag_of a)

let equal a b = compare a b = 0

(* Hash of the canonical (sign, base-2^30 limbs) decomposition, so the
   value alone determines the hash regardless of which representation
   arm carries it. [make] already guarantees Small/Big canonicality;
   computing Small hashes through the same limb fold as Big makes the
   hash robust even if a non-canonical value ever slipped through, and
   keeps [Q.hash] dependent only on the normalized rational. *)
let hash = function
  | Small 0 -> 1 (* sign 0 + 1, no limbs *)
  | Small n ->
    let s = if n < 0 then -1 else 1 in
    let acc = ref (s + 1) in
    let m = ref (Stdlib.abs n) in
    while !m <> 0 do
      acc := ((!acc * 31) + (!m land mask)) land max_int;
      m := !m lsr base_bits
    done;
    !acc
  | Big b ->
    Array.fold_left (fun acc limb -> ((acc * 31) + limb) land max_int)
      (b.sign + 1) b.mag

let is_small = function Small _ -> true | Big _ -> false

(* Do |x| + |y| or x * y fit comfortably in a native int? Both
   operands bounded by 2^61 guarantees the sum does; for products we
   bound the bit sizes. *)
let fits_add x y = Stdlib.abs x < (1 lsl 61) && Stdlib.abs y < (1 lsl 61)

let int_bits n =
  let n = Stdlib.abs n in
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let add a b =
  match a, b with
  | Small x, Small y when fits_add x y -> Small (x + y)
  | _ ->
    let sa = sign a and sb = sign b in
    if sa = 0 then b
    else if sb = 0 then a
    else begin
      let ma = mag_of a and mb = mag_of b in
      if sa = sb then make sa (mag_add ma mb)
      else begin
        let c = mag_compare ma mb in
        if c = 0 then zero
        else if c > 0 then make sa (mag_sub ma mb)
        else make sb (mag_sub mb ma)
      end
    end

let sub a b = add a (neg b)

let mul a b =
  match a, b with
  | Small x, Small y when int_bits x + int_bits y <= 62 -> Small (x * y)
  | _ ->
    let s = sign a * sign b in
    if s = 0 then zero
    else make s (mag_mul (mag_of a) (mag_of b))

let mul_int a n = mul a (of_int n)

let succ x = add x one
let pred x = sub x one

let divmod a b =
  match a, b with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y -> (Small (x / y), Small (x mod y))
  | _ ->
    if is_zero b then raise Division_by_zero
    else if is_zero a then (zero, zero)
    else begin
      let qm, rm = mag_divmod (mag_of a) (mag_of b) in
      (make (sign a * sign b) qm, make (sign a) rm)
    end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let divmod_shift_subtract a b =
  if is_zero b then raise Division_by_zero
  else begin
    let ua = mag_of a and ub = mag_of b in
    if mag_compare ua ub < 0 then (zero, a)
    else begin
      let bits_a = mag_num_bits ua in
      let q = Array.make (Array.length ua) 0 in
      let r = ref [||] in
      for i = bits_a - 1 downto 0 do
        r := mag_shift_left !r 1;
        if mag_bit ua i = 1 then r := mag_add_small !r 1;
        if mag_compare !r ub >= 0 then begin
          r := mag_sub !r ub;
          q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
        end
      done;
      (make (sign a * sign b) q, make (sign a) !r)
    end
  end

let rec int_gcd x y = if y = 0 then x else int_gcd y (x mod y)

(* Lehmer's accelerated GCD. Each outer iteration simulates a batch of
   Euclid quotient steps on the top 62 bits of both operands using
   single-word cofactor arithmetic, then applies the resulting 2x2
   matrix to the full magnitudes in one linear pass. Versus
   bit-at-a-time binary GCD (one full-magnitude subtract per bit) this
   cuts the number of full-precision passes by roughly the cofactor
   width (~29 bits of quotient progress per pass). *)

let mag_to_int m =
  (* magnitude of at most 62 bits *)
  let r = ref 0 in
  for i = Array.length m - 1 downto 0 do
    r := (!r lsl base_bits) lor m.(i)
  done;
  !r

let mag_bits_from m shift =
  (* (m >> shift) truncated to 62 bits, as a nonnegative native int *)
  let la = Array.length m in
  let get i = if i < la then m.(i) else 0 in
  let i = ref (shift / base_bits) in
  let off = shift mod base_bits in
  let r = ref ((get !i) lsr off) in
  let k = ref (base_bits - off) in
  while !k < 62 do
    incr i;
    let take = if 62 - !k < base_bits then 62 - !k else base_bits in
    r := !r lor (((get !i) land ((1 lsl take) - 1)) lsl !k);
    k := !k + base_bits
  done;
  !r

(* u*x - v*y for magnitudes [x], [y] and cofactors 0 <= u, v < 2^29,
   with the result known nonnegative. Signed per-limb accumulation:
   |carry + u*limb - v*limb| < 2^61, well inside the native range. *)
let mag_addmul_sub u x v y =
  let lx = Array.length x and ly = Array.length y in
  let lr = (if lx > ly then lx else ly) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let xi = if i < lx then x.(i) else 0 in
    let yi = if i < ly then y.(i) else 0 in
    let t = !carry + (u * xi) - (v * yi) in
    let limb = t land mask in
    r.(i) <- limb;
    carry := (t - limb) asr base_bits
  done;
  mag_trim r

let max_cofactor = 1 lsl 29

let mag_gcd ua ub =
  let a = ref ua and b = ref ub in
  if mag_compare !a !b < 0 then begin let t = !a in a := !b; b := t end;
  while not (mag_is_zero !b) && mag_num_bits !a > small_limit_bits do
    let shift = mag_num_bits !a - 62 in
    let x = ref (mag_bits_from !a shift) in
    let y = ref (mag_bits_from !b shift) in
    (* Simulated Euclid with cofactors: x' = va*x0 + vb*y0,
       y' = vc*x0 + vd*y0. The double-quotient test (Knuth 4.5.2
       Algorithm L) certifies each simulated quotient against the
       truncation error; the cap keeps every cofactor product inside
       [mag_addmul_sub]'s headroom. *)
    let va = ref 1 and vb = ref 0 and vc = ref 0 and vd = ref 1 in
    (try
       while true do
         let yc = !y + !vc and yd = !y + !vd in
         if yc <= 0 || yd <= 0 then raise_notrace Exit;
         let q = (!x + !va) / yc in
         if q <> (!x + !vb) / yd then raise_notrace Exit;
         if q >= max_cofactor then raise_notrace Exit;
         let ta = !va - (q * !vc) and tb = !vb - (q * !vd) in
         if Stdlib.abs ta >= max_cofactor || Stdlib.abs tb >= max_cofactor
         then raise_notrace Exit;
         va := !vc; vc := ta;
         vb := !vd; vd := tb;
         let t = !x - (q * !y) in
         x := !y; y := t
       done
     with Exit -> ());
    if !vb = 0 then begin
      (* No certified single-word step (quotient too large or b's top
         bits vanish at a's scale): one full division step. *)
      let _, r = mag_divmod !a !b in
      let t = !b in
      a := t; b := r
    end
    else begin
      (* (a', b') = (va*a + vb*b, vc*a + vd*b). Within each cofactor
         row the signs alternate, so each row is a nonnegative
         difference of magnitude products. *)
      let combine u v =
        if u >= 0 && v <= 0 then mag_addmul_sub u !a (-v) !b
        else mag_addmul_sub v !b (-u) !a
      in
      let na = combine !va !vb and nb = combine !vc !vd in
      a := na; b := nb
    end;
    if mag_compare !a !b < 0 then begin let t = !a in a := !b; b := t end
  done;
  if mag_is_zero !b then !a
  else mag_of_int (int_gcd (mag_to_int !a) (mag_to_int !b))

let gcd a b =
  match a, b with
  | Small x, Small y -> Small (int_gcd (Stdlib.abs x) (Stdlib.abs y))
  | _ -> make 1 (mag_gcd (mag_of a) (mag_of b))

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift"
  else if is_zero x then zero
  else make (sign x) (mag_shift_left (mag_of x) k)

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift"
  else if is_zero x then zero
  else make (sign x) (mag_shift_right (mag_of x) k)

let num_bits = function
  | Small n -> int_bits n
  | Big b -> mag_num_bits b.mag

(* Remainder modulo a single machine-word modulus 0 < m < 2^31:
   Horner over the base-2^30 limbs, most significant first. The
   running remainder stays below [m] < 2^31, so [(r lsl 30) lor limb]
   stays below 2^61 — no native overflow. The result carries the sign
   of [x] (OCaml [mod] semantics), magnitude in [0, m). *)
let rem_int x m =
  if m <= 0 || m >= 1 lsl 31 then
    invalid_arg "Bigint.rem_int: modulus out of range"
  else
    match x with
    | Small n -> n mod m
    | Big b ->
      let r = ref 0 in
      for i = Array.length b.mag - 1 downto 0 do
        r := ((!r lsl base_bits) lor b.mag.(i)) mod m
      done;
      if b.sign < 0 then - !r else !r

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (k lsr 1)
      end
    in
    go one x k
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int_opt = function
  | Small n -> Some n
  | Big _ -> None (* Big is only used beyond 62 bits *)

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: does not fit"

let to_float = function
  | Small n -> float_of_int n
  | Big b ->
    let m =
      Array.fold_right
        (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
        b.mag 0.0
    in
    if b.sign < 0 then -.m else m

(* A certified float enclosure of the exact value. Small values of at
   most 53 bits convert exactly; larger Smalls widen the rounded
   conversion one ulp each way. Big values take the [to_float] limb
   fold — k limbs accumulate a relative error below [2k] ulp — and are
   padded by [4(k+1)] ulp relative plus one absolute ulp, a ~2x margin
   over the worst case. A fold that overflows to infinity still yields
   a sign-definite (if loose) enclosure. *)
let to_float_enclosure = function
  | Small n ->
    let f = float_of_int n in
    if int_bits n <= 53 then { Interval.lo = f; hi = f }
    else { Interval.lo = Float.pred f; hi = Float.succ f }
  | Big b as x ->
    let f = to_float x in
    if f = infinity then { Interval.lo = 0.5 *. max_float; hi = infinity }
    else if f = neg_infinity then
      { Interval.lo = neg_infinity; hi = -0.5 *. max_float }
    else begin
      let k = float_of_int (4 * (Array.length b.mag + 1)) in
      let pad = Float.abs f *. k *. epsilon_float in
      { Interval.lo = Float.pred (f -. pad); hi = Float.succ (f +. pad) }
    end

(* Overflow-proof companion to [to_float_enclosure]: a certified
   enclosure of [x / 2^e] for a suitable [e >= 0], returned as
   [(interval, e)]. The mantissa interval is built from the top two
   limbs only — the truncated tail contributes at most one mantissa
   unit — so it is always finite and sign-definite, even for values
   whose float conversion saturates past DBL_MAX (~1024 bits). The
   staged filter uses this to keep interval arithmetic meaningful on
   the wide integers the lcm-scaled hull predicates produce. *)
let to_scaled_enclosure = function
  | Small n ->
    let f = float_of_int n in
    if int_bits n <= 53 then ({ Interval.lo = f; hi = f }, 0)
    else ({ Interval.lo = Float.pred f; hi = Float.succ f }, 0)
  | Big b as x ->
    let k = Array.length b.mag in
    if k < 3 then (to_float_enclosure x, 0)
    else begin
      (* x = sign * (t * 2^e + tail), 0 <= tail < 2^e, with t the top
         60 bits exactly — t ∈ [2^59, 2^60), so the enclosure's
         relative width is uniformly below 2^-58 regardless of how the
         magnitude straddles limb boundaries. *)
      let e = mag_num_bits b.mag - 60 in
      let t = mag_bits_from b.mag e in
      let lo = Float.pred (float_of_int t)
      and hi = Float.succ (float_of_int (t + 1)) in
      if b.sign >= 0 then ({ Interval.lo; hi }, e)
      else ({ Interval.lo = -.hi; hi = -.lo }, e)
    end

let to_string x =
  match x with
  | Small n -> string_of_int n
  | Big _ ->
    let buf = Buffer.create 32 in
    let chunks = ref [] in
    let m = ref (mag_of x) in
    (* Peel 9 decimal digits at a time; 10^9 < 2^30 is a valid limb. *)
    let d = 1_000_000_000 in
    while not (mag_is_zero !m) do
      let q, r = mag_divmod_small !m d in
      chunks := r :: !chunks;
      m := q
    done;
    if sign x < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string"
  else begin
    let negative = s.[0] = '-' in
    let start = if negative || s.[0] = '+' then 1 else 0 in
    if start >= n then invalid_arg "Bigint.of_string: no digits"
    else begin
      let acc = ref [||] in
      for i = start to n - 1 do
        let c = s.[i] in
        if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit"
        else acc := mag_add_small (mag_mul_small !acc 10) (Char.code c - Char.code '0')
      done;
      make (if negative then -1 else 1) !acc
    end
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)
