(** Arbitrary-precision signed integers.

    Hand-rolled because the build environment has no [zarith]. The
    representation is sign-magnitude with little-endian limbs in base
    [2^30], so limb products fit comfortably in OCaml's 63-bit native
    integers. Division uses Knuth's Algorithm D; [gcd] uses the binary
    GCD on magnitudes.

    All values are immutable. Functions never mutate their arguments. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] iff [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_float : t -> float
(** Nearest-ish float; large values lose precision as usual. *)

val to_float_enclosure : t -> Interval.t
(** Certified interval enclosure of the exact value: exact for small
    magnitudes (≤ 53 bits), outward-padded by the conversion's static
    error bound otherwise. Never excludes the true value. *)

val to_scaled_enclosure : t -> Interval.t * int
(** [(iv, e)] with the exact value inside [iv] scaled by [2^e].
    Unlike {!to_float_enclosure} the mantissa interval is always
    finite and a few ulp wide, whatever the bit-width of the value —
    the enclosure of choice past float range. *)

val rem_int : t -> int -> int
(** [rem_int x m] for [0 < m < 2^31] is [x mod m] (sign of [x],
    magnitude below [m]) computed limb-wise without allocation.
    @raise Invalid_argument if [m] is out of range. *)

val of_string : string -> t
(** Parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation, ['-']-prefixed when negative. *)

val pp : Format.formatter -> t -> unit

(** {1 Queries} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Hash of the canonical (sign, limb) decomposition: equal values hash
    equally regardless of internal representation arm. *)

val is_small : t -> bool
(** True when the value is carried on the native-int fast path (|x|
    below 62 bits) — cheap size probe for filter gating. *)

val num_bits : t -> int
(** Number of significant bits of the magnitude; [num_bits zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], quotient truncated
    toward zero and [r] carrying the sign of [a] (OCaml [(/)] and
    [(mod)] semantics). @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_shift_subtract : t -> t -> t * t
(** Reference implementation of [divmod] by binary long division.
    Slower; exposed as a cross-checking oracle for the test suite. *)

val gcd : t -> t -> t
(** Non-negative gcd of magnitudes; [gcd zero zero = zero]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (sign preserved); shifting right
    truncates toward zero on the magnitude. *)

val pow : t -> int -> t
(** [pow x k] for [k >= 0]. @raise Invalid_argument on negative [k]. *)

val min : t -> t -> t
val max : t -> t -> t
