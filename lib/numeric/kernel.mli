(** Arithmetic-kernel selection: exact, filtered or staged.

    All kernels produce identical results. [Filtered] answers
    sign/comparison predicates from a certified float-interval filter
    when possible and falls back to exact rationals otherwise;
    [Staged] interposes a scaled-integer second stage (exact
    machine-int/double-word evaluation under static width bounds, an
    extended-exponent mantissa interval, and a modular-residue zero
    certificate — see {!Grid}) before the rational fallback; [Exact]
    always runs the rational path. The process default comes from
    [CHC_KERNEL=exact|filtered|staged] (default [filtered]; an
    unrecognized value warns and clamps) and can be overridden per
    call-tree with {!with_mode} (domain-local, so concurrent fuzz
    trials on pool workers don't race). *)

type mode = Exact | Filtered | Staged

val to_string : mode -> string
val parse : string -> (mode, string) result

val set_default : mode -> unit
(** Set the process-wide default (e.g. from [chc_sim --kernel]). *)

val get_default : unit -> mode

val mode : unit -> mode
(** Effective mode in the current domain: the innermost {!with_mode}
    override if any, otherwise the process default. *)

val filtered : unit -> bool
(** [mode () <> Exact] — the stage-1 interval filter runs under both
    the filtered and staged kernels; the hot-path guard in {!Filter}. *)

val staged : unit -> bool
(** [mode () = Staged] — whether the integer second stage engages. *)

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run a thunk under a domain-local mode override. Nested uses
    restore the previous override on exit (also on exceptions). *)

(** {1 Filter telemetry}

    Per-domain hit/fallback counters with racy-but-benign snapshots;
    exposed through [Obs.Metrics] by {!Filter}. *)

type pred = Sign | Compare | Dot | Cross

val pred_name : pred -> string

val hit : pred -> unit
(** The interval filter answered the predicate. *)

val int_hit : pred -> unit
(** The staged integer stage answered after the interval filter could
    not (exact int/double-word result, extended-exponent interval, or
    residue zero certificate). *)

val fallback : pred -> unit
(** Every filter stage was inconclusive; exact arithmetic ran. *)

type stat = { hits : int; int_hits : int; fallbacks : int }

val stats : unit -> (string * stat) list
(** One entry per predicate class, summed over all domains. *)

val totals : unit -> stat
val reset_stats : unit -> unit
