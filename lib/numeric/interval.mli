(** Outward-rounded float interval arithmetic.

    The certified-filter substrate: every operation returns an interval
    guaranteed to enclose the exact real result, by widening each
    IEEE round-to-nearest endpoint one ulp outward. A predicate whose
    interval excludes zero is decided without exact arithmetic; an
    inconclusive interval triggers the exact fallback (see {!Filter}). *)

type t = { lo : float; hi : float }

val unset : t
(** Sentinel for "enclosure not yet computed" cache slots. Compare with
    physical equality ([==]); never use it as an operand. *)

val whole : t
(** The whole real line [[-inf, +inf]] — the trivially correct enclosure. *)

val exact : float -> t
(** [exact v] is the degenerate interval [[v, v]]. Only sound when [v]
    represents the value exactly (e.g. small integers). *)

val make : lo:float -> hi:float -> t
(** NaN endpoints degrade to {!whole}. *)

val up : float -> float
(** Round an upper bound one ulp up; NaN becomes [+inf]. *)

val down : float -> float
(** Round a lower bound one ulp down; NaN becomes [-inf]. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div_pos : t -> t -> t
(** [div_pos a b] encloses [a / b] assuming every real in [b] is
    positive (the denominator enclosure of a normalized rational). *)

val sign : t -> int option
(** [Some s] when every real in the interval has sign [s] (the interval
    excludes zero, or is exactly [[0, 0]]); [None] when inconclusive. *)

val contains_zero : t -> bool

val mag_lower : t -> float
(** Certified lower bound on the magnitude of any enclosed real; [0.0]
    when the interval touches or straddles zero. *)

val pp : Format.formatter -> t -> unit
