(** Certified fast-path predicates with exact rational fallback.

    Every function returns the {e exact} answer: under the filtered
    kernel ({!Kernel.filtered}) it is computed from a float-interval
    enclosure whenever the interval excludes zero, and by exact [Q]
    arithmetic otherwise; under the exact kernel the interval path is
    bypassed entirely. Fallbacks are counted per predicate class and
    surfaced as [chc_filter_*_total] metrics and a ["filter.fallback"]
    profiler span. *)

val sign : Q.t -> int

val compare : Q.t -> Q.t -> int
(** Alias of {!Q.compare} (which carries the filtered fast path). *)

val sign_of_dot_minus : Q.t array -> Q.t array -> Q.t -> int
(** [sign_of_dot_minus a p b] is [sign (a . p - b)], fused: no
    intermediate rationals are materialized on the filtered path. The
    arrays must have equal length. *)

val sign_cross2 : Q.t array -> Q.t array -> Q.t array -> int
(** [sign_cross2 o a b] is [sign ((a - o) x (b - o))] in 2-d — the
    orientation of the triangle [o, a, b]. *)

val sign_cross2o : Q.t array -> Q.t array -> int
(** [sign_cross2o u v] is [sign (u x v)] in 2-d for origin-based edge
    vectors (the Minkowski edge-merge angle test). *)

val pivot_cost : Q.t -> int
(** Bit-size of the rational ([num] plus [den]) — the pivot-selection
    key for exact elimination. Choosing among nonzero candidates by
    this cost cannot change any {!Linsys} result (the reduced echelon
    form is unique); it only bounds intermediate coefficient growth. *)
