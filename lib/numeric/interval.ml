(* Outward-rounded float intervals.

   The host does not expose directed rounding, so every arithmetic
   result is widened by one ulp on each side ([Float.pred] / [Float.succ]).
   Under IEEE-754 round-to-nearest the computed endpoint is within half
   an ulp of the true endpoint, so the widened interval always encloses
   the exact real result. NaN endpoints (e.g. from [inf - inf] or
   [0 * inf]) are widened to the corresponding infinity, degrading to a
   correct but useless enclosure rather than an incorrect one. *)

type t = { lo : float; hi : float }

(* Distinguished "not yet computed" sentinel, recognized by physical
   equality ([==]) so a genuine whole-line enclosure is never confused
   with an unset cache slot. *)
let unset = { lo = nan; hi = nan }

let whole = { lo = neg_infinity; hi = infinity }

let exact v = { lo = v; hi = v }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then whole else { lo; hi }

(* Round an upper bound up / a lower bound down by one ulp. [x <> x]
   is the allocation-free NaN test. *)
let up x = if x <> x then infinity else if x = infinity then x else Float.succ x

let down x =
  if x <> x then neg_infinity
  else if x = neg_infinity then x
  else Float.pred x

let neg a = { lo = -.a.hi; hi = -.a.lo }

let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }

let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  (* Float.min/max propagate NaN, and [down]/[up] then widen it to the
     infinities, so 0 * inf corner cases stay conservative. *)
  let lo = Float.min (Float.min p1 p2) (Float.min p3 p4) in
  let hi = Float.max (Float.max p1 p2) (Float.max p3 p4) in
  { lo = down lo; hi = up hi }

(* Division by an interval known to contain only positive reals
   (rational enclosures normalize denominators to be positive). A lower
   endpoint widened down to 0 makes the quotient bound infinite, which
   is conservative. *)
let div_pos a b =
  let lo = if a.lo >= 0.0 then a.lo /. b.hi else a.lo /. b.lo in
  let hi = if a.hi >= 0.0 then a.hi /. b.lo else a.hi /. b.hi in
  { lo = down lo; hi = up hi }

let sign a =
  if a.lo > 0.0 then Some 1
  else if a.hi < 0.0 then Some (-1)
  else if a.lo = 0.0 && a.hi = 0.0 then Some 0
  else None

let contains_zero a = a.lo <= 0.0 && a.hi >= 0.0

(* Certified lower bound on the magnitude of any real in the interval;
   0 when the interval straddles (or touches) zero. *)
let mag_lower a =
  if a.lo > 0.0 then a.lo else if a.hi < 0.0 then -.a.hi else 0.0

let pp fmt a = Format.fprintf fmt "[%h, %h]" a.lo a.hi
