(** Exact rational numbers over {!Bigint}.

    Values are always normalized: the denominator is positive and
    coprime with the numerator; zero is [0/1]. All polytope state in
    this project is held in rationals so that set-level facts
    (validity, containment, polytope equality) can be decided exactly. *)

type t = private {
  num : Bigint.t;
  den : Bigint.t;
  mutable iv : Interval.t;
      (** Lazily cached certified float enclosure; [Interval.unset]
          until first demanded. Read it through {!enclosure}. *)
  mutable rs : int array;
      (** Modular-residue cache slot owned by {!Grid}: [[||]] until the
          staged kernel's residue stage touches the value, then slot 0
          holds the filled count and slot [i+1] the value's residue
          modulo [Grid.primes.(i)] ([-1] when that prime divides the
          denominator). Mutate it through {!set_residues} only. *)
  mutable sc : Interval.t;
      (** Extended-exponent enclosure cache owned by {!Grid}: the exact
          value lies in [sc] scaled by [2^sce]. [Interval.unset] until
          the staged kernel's mantissa stage first touches the value.
          Mutate through {!set_scaled_enclosure} only. *)
  mutable sce : int;
}

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes. @raise Division_by_zero if [den] is 0. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero if [b = 0]. *)

val of_bigint : Bigint.t -> t

val of_string : string -> t
(** Accepts ["a"], ["a/b"], and decimal notation ["-12.75"].
    @raise Invalid_argument on malformed input. *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Queries} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Exact three-way comparison. Under the filtered kernel
    ({!Kernel.filtered}), big operands are first compared through their
    certified float enclosures; the exact cross-product comparison runs
    only when the enclosures overlap, so the result is always exact.
    The staged kernel additionally decides exact ties by structural
    equality of the normalized forms before falling back. *)

val enclosure : t -> Interval.t
(** Certified float enclosure of the exact value (cached after the
    first call). The true rational always lies inside the interval.
    Cached enclosures of live rationals are bounded by a domain-local
    eviction ring (see {!set_enclosure_cache_capacity}); an evicted
    enclosure is transparently recomputed on the next demand. *)

val set_enclosure_cache_capacity : int -> unit
(** Resize the calling domain's enclosure-cache ring (clamped to at
    least 1; default 65536). Intended for tests and tuning; resizing
    resets the ring but not already-cached enclosures. *)

val enclosure_cache_stats : unit -> int * int
(** [(inserts, evictions)] across all domains since startup. *)

val set_residues : t -> int array -> unit
(** Install or reset (with [[||]]) the {!Grid} residue slot [rs].
    Exposed because the record is private; only {!Grid} should call
    this. *)

val set_scaled_enclosure : t -> Interval.t -> int -> unit
(** Install the {!Grid} extended-exponent enclosure cache [sc]/[sce].
    Exposed because the record is private; only {!Grid} should call
    this. *)

val hash : t -> int
(** Hash of the canonical normalized form: [equal x y] implies
    [hash x = hash y] whatever arithmetic path produced each value. *)

val leq : t -> t -> bool
val lt : t -> t -> bool
val geq : t -> t -> bool
val gt : t -> t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero argument. *)

val min : t -> t -> t
val max : t -> t -> t

val pow : t -> int -> t
(** Integer powers; negative exponents invert.
    @raise Division_by_zero on [pow zero k] with [k < 0]. *)

val square : t -> t

val sum : t list -> t
val average : t list -> t
(** @raise Invalid_argument on the empty list. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

(** {1 Conversions} *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Infix operators}

    Conventional [zarith]-style operators for rational expressions. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
