(* Scaled-integer grids and the staged filter's second stage.

   The interval filter (stage 1, {!Filter}) certifies a predicate only
   when its float enclosure excludes zero. On the d = 3 hot path that
   fails structurally: hull predicates run on lcm-scaled integer
   points whose plane normals reach ~700 bits, so term products
   overflow float range (enclosures hit ±inf), and a large share of
   the calls are *true zeros* (tight facets, coplanar configurations)
   that no enclosure can ever certify. This module supplies the
   escalation ladder that answers those calls without exact rational
   arithmetic:

   - exact native-int evaluation when a static width bound shows every
     intermediate fits one machine word (certifies signs and zeros);
   - exact double-word evaluation (128-bit via base-2^30 limb pairs)
     when the bound fits two words;
   - an extended-exponent mantissa interval — a float enclosure with a
     separate integer exponent — immune to float range overflow
     (certifies nonzero signs up to ~45 bits of cancellation);
   - a modular-residue zero certificate: the value is evaluated modulo
     a fixed vector of 25-bit primes; if enough residues vanish that
     the primes' product exceeds the static magnitude bound, the value
     is exactly zero (certifies precisely the true zeros the interval
     stages cannot).

   Width bounds follow the keelung-style [widthOfInteger] /
   [calculateBounds] discipline: operand bit-widths are O(1) reads,
   and per-predicate bounds are simple sums computed before any stage
   runs, so escalation is decided statically — a stage either cannot
   overflow or is not attempted.

   The module also owns the common-denominator grids themselves: a
   hull construction scales its points onto the integer grid through
   {!scale_points}, and the protocol executor installs a per-round
   grid ({!with_round}) so every construction inside one round shares
   a single lcm scan and gcd-free scaling factors. *)

module B = Bigint
module I = Interval

(* ------------------------------------------------------------------ *)
(* Prime vector for the residue stage: the 64 largest primes below
   2^25. Keeping residues below 2^25 lets the zero-certificate loops
   use LAZY reduction — a residue product is under 2^50, so many
   product terms accumulate between [mod] operations, and the variable
   integer division (the expensive instruction on this path) runs once
   per prime instead of once per term. Each prime exceeds 2^24, so it
   certifies at least [prime_bits] = 24 bits of the magnitude bound;
   64 primes cover bounds up to 1536 bits ([capacity_bits]) — wider
   expressions simply decline the stage and take the exact fallback. *)

let primes = [|
  33554393; 33554383; 33554371; 33554347;
  33554341; 33554317; 33554291; 33554273;
  33554267; 33554249; 33554239; 33554221;
  33554201; 33554167; 33554159; 33554137;
  33554123; 33554093; 33554083; 33554077;
  33554051; 33554021; 33554011; 33554009;
  33553999; 33553991; 33553969; 33553967;
  33553909; 33553901; 33553879; 33553837;
  33553799; 33553787; 33553771; 33553769;
  33553759; 33553747; 33553739; 33553727;
  33553697; 33553693; 33553679; 33553661;
  33553657; 33553651; 33553649; 33553633;
  33553613; 33553607; 33553577; 33553549;
  33553547; 33553537; 33553519; 33553517;
  33553511; 33553489; 33553463; 33553451;
  33553417; 33553379; 33553369; 33553363;
|]

let nprimes = Array.length primes
let prime_bits = 24
let capacity_bits = nprimes * prime_bits

let[@inline] mulmod a b p = a * b mod p

(* Inverse of [a] modulo a prime [p], 0 < a < p: extended Euclid on
   native ints. *)
let modinv a p =
  let rec go old_r r old_s s =
    if r = 0 then old_s else go r (old_r mod r) s (old_s - (old_r / r) * s)
  in
  let inv = go a p 1 0 in
  if inv < 0 then inv + p else inv

(* ------------------------------------------------------------------ *)
(* Per-rational value residues, cached on the Q itself (see Q.rs).
   Slot 0 holds the filled count; slot [i+1] the residue of the value
   modulo [primes.(i)], or [-1] when that prime divides the
   denominator (unusable for this operand). Fills are deterministic,
   so cross-domain races at worst redo work — same benign-race
   argument as the enclosure cache. *)

type ring = { slots : Q.t Weak.t; mutable pos : int; cap : int }

let residue_cache_cap = ref 4096

type rstat = { mutable inserts : int; mutable evictions : int }

let rstats_m = Mutex.create ()
let rstats : rstat list ref = ref []

let ring_make () =
  let cap = Stdlib.max 1 !residue_cache_cap in
  let st = { inserts = 0; evictions = 0 } in
  Mutex.lock rstats_m;
  rstats := st :: !rstats;
  Mutex.unlock rstats_m;
  ({ slots = Weak.create cap; pos = 0; cap }, st)

let ring_key : (ring * rstat) Domain.DLS.key = Domain.DLS.new_key ring_make

let set_residue_cache_capacity n =
  residue_cache_cap := Stdlib.max 1 n;
  Domain.DLS.set ring_key (ring_make ())

let residue_cache_stats () =
  Mutex.lock rstats_m;
  let ss = !rstats in
  Mutex.unlock rstats_m;
  List.fold_left
    (fun (i, e) s -> (i + s.inserts, e + s.evictions))
    (0, 0) ss

(* Track a Q whose residue slot was just populated; evicting the
   oldest entry resets its slot so long campaigns hold a bounded
   number of residue arrays alive. Weak slots drop dead rationals for
   free. *)
let ring_track q =
  let ring, st = Domain.DLS.get ring_key in
  (match Weak.get ring.slots ring.pos with
   | Some old -> Q.set_residues old [||]; st.evictions <- st.evictions + 1
   | None -> ());
  Weak.set ring.slots ring.pos (Some q);
  ring.pos <- (ring.pos + 1) mod ring.cap;
  st.inserts <- st.inserts + 1

(* Ensure the first [k] residues of [q] are filled; returns the cache
   array. [k <= nprimes]. *)
let residues (q : Q.t) k =
  let rs = q.Q.rs in
  let rs =
    if Array.length rs <> 0 then rs
    else begin
      let a = Array.make (nprimes + 1) 0 in
      Q.set_residues q a;
      ring_track q;
      a
    end
  in
  let filled = rs.(0) in
  if filled < k then begin
    let den1 = B.equal q.Q.den B.one in
    for i = filled to k - 1 do
      let p = primes.(i) in
      let rn = B.rem_int q.Q.num p in
      let rn = if rn < 0 then rn + p else rn in
      rs.(i + 1) <-
        (if den1 then rn
         else begin
           let rd = B.rem_int q.Q.den p in
           if rd = 0 then -1 else mulmod rn (modinv rd p) p
         end)
    done;
    rs.(0) <- k
  end;
  rs

(* ------------------------------------------------------------------ *)
(* Width bounds (the widthOfInteger / calculateBounds idiom). All
   widths are O(1) bit-length reads; bounds are conservative sums:
   bits(x*y) <= bits x + bits y and bits(sum of n terms) <= max + ceil
   log2 n. A stage runs only when its bound proves it cannot overflow,
   so escalation — never wrapping — is decided before any arithmetic. *)

let[@inline] width (q : Q.t) = B.num_bits q.Q.num
let[@inline] den_width (q : Q.t) =
  if B.equal q.Q.den B.one then 0 else B.num_bits q.Q.den

let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2)

(* Static stage selection for a grid of coordinate width [w] in
   dimension [d]: hull visibility dots multiply a plane normal (a
   cross product, <= 2w + 2 bits) by a coordinate and sum d + 1 terms.
   Exposed for scale-time reporting and for the boundary tests; the
   per-call gates in the evaluators below recompute the same sums from
   the actual operands, so a non-conforming operand can never borrow a
   grid's budget. *)
type bounds = {
  dot_bound : int;      (* magnitude bound (bits) of a visibility dot *)
  int1 : bool;          (* single-word exact evaluation cannot overflow *)
  dword : bool;         (* double-word exact evaluation cannot overflow *)
  residue_primes : int; (* residues needed to certify a zero *)
}

(* Single-word partial sums must stay below 2^62 (OCaml native ints
   carry 63 bits); the 6-limb double-word accumulator covers 150 bits
   but its factors must fit one word, bounding products at 124 bits.
   A one-bit guard keeps both gates strict. *)
let int1_max_bits = 61
let dword_max_bits = 123

let primes_for bound = (bound + prime_bits) / prime_bits

let bounds_for ~dim:d ~width:w =
  let dot_bound = w + (2 * w + 2) + log2_ceil (d + 1) in
  { dot_bound;
    int1 = dot_bound <= int1_max_bits;
    dword = dot_bound <= dword_max_bits;
    residue_primes = primes_for dot_bound }

(* ------------------------------------------------------------------ *)
(* Exact double-word accumulator: Σ ±x·y over native factors
   |x|, |y| < 2^62, kept in six base-2^30 limbs (180 bits of headroom
   for a 124-bit product bound). Factors split into three 30-bit
   digits; the nine digit products stay below 2^60, and a cell
   receives at most three of them between carry normalizations, so no
   intermediate exceeds 62 bits. *)

let acc_make () = Array.make 6 0

let acc_add_prod acc s x y =
  let sx = if x < 0 then -s else s in
  let x = abs x in
  let s = if y < 0 then -sx else sx in
  let y = abs y in
  let m = (1 lsl 30) - 1 in
  let x0 = x land m and x1 = (x lsr 30) land m and x2 = x lsr 60 in
  let y0 = y land m and y1 = (y lsr 30) land m and y2 = y lsr 60 in
  if s > 0 then begin
    acc.(0) <- acc.(0) + (x0 * y0);
    acc.(1) <- acc.(1) + (x0 * y1) + (x1 * y0);
    acc.(2) <- acc.(2) + (x0 * y2) + (x1 * y1) + (x2 * y0);
    acc.(3) <- acc.(3) + (x1 * y2) + (x2 * y1);
    acc.(4) <- acc.(4) + (x2 * y2)
  end
  else begin
    acc.(0) <- acc.(0) - (x0 * y0);
    acc.(1) <- acc.(1) - (x0 * y1) - (x1 * y0);
    acc.(2) <- acc.(2) - (x0 * y2) - (x1 * y1) - (x2 * y0);
    acc.(3) <- acc.(3) - (x1 * y2) - (x2 * y1);
    acc.(4) <- acc.(4) - (x2 * y2)
  end;
  (* Carry-normalize: limbs 0..4 end in [0, 2^30), limb 5 signed. *)
  let carry = ref 0 in
  for i = 0 to 4 do
    let c = acc.(i) + !carry in
    acc.(i) <- c land m;
    carry := c asr 30
  done;
  acc.(5) <- acc.(5) + !carry

let acc_sign acc =
  if acc.(5) > 0 then 1
  else if acc.(5) < 0 then -1
  else if acc.(0) lor acc.(1) lor acc.(2) lor acc.(3) lor acc.(4) <> 0 then 1
  else 0

(* ------------------------------------------------------------------ *)
(* Extended-exponent intervals: a float enclosure [xlo, xhi] carrying
   a separate integer power-of-two exponent, so products of wide
   integers never saturate to ±inf. Endpoint arithmetic reuses the
   1-ulp outward rounding of {!Interval}; exponent alignment widens by
   one ulp per shift, which is conservative. *)

type xiv = { xlo : float; xhi : float; xe : int }

(* Mantissas are kept small (below ~2^62): every operand past the
   native range is normalized through [to_scaled_enclosure], never
   through its raw float enclosure — a finite-but-huge enclosure
   (say 2^800) would make downstream *products* overflow exactly the
   way the stage-1 intervals do.

   The (mantissa enclosure, exponent) pair is cached on the rational
   itself (Q.sc / Q.sce): hull tight-tests evaluate every point
   against every facet, so each coordinate's enclosure is demanded
   tens of times per construction. The fill is deterministic and the
   exponent is published before the enclosure, mirroring the
   count-then-slots ordering of the residue cache, so a cross-domain
   race at worst redoes the computation. *)
let compute_sc (q : Q.t) =
  let den1 = B.equal q.Q.den B.one in
  let iv, e =
    if den1 && B.is_small q.Q.num then (Q.enclosure q, 0)
    else begin
      let mn, en = B.to_scaled_enclosure q.Q.num in
      if den1 then (mn, en)
      else begin
        let md, ed = B.to_scaled_enclosure q.Q.den in
        (I.div_pos mn md, en - ed)
      end
    end
  in
  Q.set_scaled_enclosure q iv e;
  iv

let[@inline] sc_of (q : Q.t) =
  let s = q.Q.sc in
  if s != I.unset then s else compute_sc q

let xiv_of_q (q : Q.t) =
  let s = sc_of q in
  { xlo = s.I.lo; xhi = s.I.hi; xe = q.Q.sce }

let xmul a b =
  let m = I.mul { I.lo = a.xlo; hi = a.xhi } { I.lo = b.xlo; hi = b.xhi } in
  { xlo = m.I.lo; xhi = m.I.hi; xe = a.xe + b.xe }

(* Align [a] up to exponent [e >= a.xe] by shifting its mantissa
   DOWN: a large shift underflows toward zero, and the outward ulp
   keeps the enclosure sound. (Aligning toward the smaller exponent
   would shift mantissas up, which can overflow to [inf] — and an
   overflowing *lower* bound is unsound.) *)
let xalign a e =
  if a.xe = e then a
  else begin
    let k = a.xe - e in
    { xlo = I.down (Float.ldexp a.xlo k);
      xhi = I.up (Float.ldexp a.xhi k);
      xe = e }
  end

let xadd a b =
  let e = Stdlib.max a.xe b.xe in
  let a = xalign a e and b = xalign b e in
  { xlo = I.down (a.xlo +. b.xlo); xhi = I.up (a.xhi +. b.xhi); xe = e }

let xneg a = { xlo = -.a.xhi; xhi = -.a.xlo; xe = a.xe }

let xsub a b = xadd a (xneg b)

let xsign a =
  if a.xlo > 0.0 then Some 1 else if a.xhi < 0.0 then Some (-1) else None

(* ------------------------------------------------------------------ *)
(* Predicate evaluators: each returns [Some sign] only when a stage
   certifies the result, [None] to defer to the exact fallback. *)

(* Residue zero certificate for a fused expression: [eval rs_of i p]
   must return the expression's value residue modulo [p = primes.(i)],
   given per-operand residue arrays, or [-1] when some operand is
   unusable at that prime. Certifies zero once enough residues vanish
   to cover [bound] bits; bails to the fallback on the first nonzero
   residue (the value is then provably nonzero, but its sign is
   unknown at this stage). *)
let residue_zero ~bound eval =
  if bound > capacity_bits then None
  else begin
    let needed = primes_for bound in
    let rec go i good =
      if good >= needed then Some 0
      else if i >= nprimes then None
      else begin
        match eval i primes.(i) with
        | -1 -> go (i + 1) good    (* prime divides a denominator *)
        | 0 -> go (i + 1) (good + 1)
        | _ -> None                (* provably nonzero, sign unknown *)
      end
    in
    go 0 0
  end

(* Residue zero certificate for dots, specialized: every operand's
   residue array is filled once up front, then the prime loop reads
   raw int slots — the generic per-prime closure pays a function call
   and a fill check per (prime, operand) pair, which dominated the
   true-zero path at n = 7, d = 3 (~36 primes x 9 operands per call).
   An unusable operand (a denominator divisible by one of the 25-bit
   primes — essentially impossible on protocol grids) falls back to
   the generic scan, which can skip individual primes. *)
exception Unusable

let residue_zero_dot ~bound (a : Q.t array) (p : Q.t array) (b : Q.t) =
  if bound > capacity_bits then None
  else begin
    let d = Array.length a in
    let needed = primes_for bound in
    let rsb = residues b needed in
    let rsa = Array.init d (fun j -> residues a.(j) needed) in
    let rsp = Array.init d (fun j -> residues p.(j) needed) in
    match
      let rec go i =
        if i >= needed then Some 0
        else begin
          let pr = primes.(i) in
          let rb = rsb.(i + 1) in
          if rb = -1 then raise_notrace Unusable;
          (* Lazy reduction: residues are below 2^25, so products stay
             under 2^50 and sums of them fit comfortably in a word;
             the division runs once per prime (plus a guard reduction
             every ~2^9 terms, unreachable at protocol dimensions). *)
          let acc = ref (pr - rb) in
          for j = 0 to d - 1 do
            let ra = rsa.(j).(i + 1) and rp = rsp.(j).(i + 1) in
            if ra = -1 || rp = -1 then raise_notrace Unusable;
            let s = !acc + (ra * rp) in
            acc := if s >= 1 lsl 59 then s mod pr else s
          done;
          if !acc mod pr = 0 then go (i + 1) else None
        end
      in
      go 0
    with
    | r -> r
    | exception Unusable ->
      residue_zero ~bound (fun i pr ->
          let rb = (residues b (i + 1)).(i + 1) in
          if rb = -1 then -1
          else begin
            let acc = ref (pr - rb) in
            (try
               for j = 0 to d - 1 do
                 let ra = (residues a.(j) (i + 1)).(i + 1) in
                 let rp = (residues p.(j) (i + 1)).(i + 1) in
                 if ra = -1 || rp = -1 then raise Exit;
                 acc := (!acc + mulmod ra rp pr) mod pr
               done;
               !acc
             with Exit -> -1)
          end)
  end

(* sign(a . p - b). *)
let dot_minus_sign a p b : int option =
  let d = Array.length a in
  (* Per-call width scan: all O(1) field reads. *)
  let all_int = ref true and all_small = ref true in
  let dsum = ref 0 and max_term = ref 0 in
  for i = 0 to d - 1 do
    let ai = a.(i) and pi = p.(i) in
    let dwa = den_width ai and dwp = den_width pi in
    if dwa > 0 || dwp > 0 then all_int := false;
    if not (B.is_small ai.Q.num && B.is_small pi.Q.num) then all_small := false;
    dsum := !dsum + dwa + dwp;
    let t = width ai + dwa + width pi + dwp in
    if t > !max_term then max_term := t
  done;
  let dwb = den_width b in
  if dwb > 0 then all_int := false;
  if not (B.is_small b.Q.num) then all_small := false;
  dsum := !dsum + dwb;
  max_term := Stdlib.max !max_term (width b + dwb);
  (* Denominator products of the *other* operands clear each term's
     denominator; [dsum] over-counts by the term's own denominators,
     which only loosens the bound. *)
  let bound = !max_term + !dsum + log2_ceil (d + 1) in
  if !all_int && !all_small && bound <= int1_max_bits then begin
    (* Single-word exact: certifies sign and zero alike. *)
    let acc = ref (- (B.to_int_exn b.Q.num)) in
    for i = 0 to d - 1 do
      acc := !acc + (B.to_int_exn a.(i).Q.num * B.to_int_exn p.(i).Q.num)
    done;
    Some (Stdlib.compare !acc 0)
  end
  else if !all_int && !all_small && bound <= dword_max_bits then begin
    let acc = acc_make () in
    acc_add_prod acc (-1) (B.to_int_exn b.Q.num) 1;
    for i = 0 to d - 1 do
      acc_add_prod acc 1 (B.to_int_exn a.(i).Q.num) (B.to_int_exn p.(i).Q.num)
    done;
    Some (acc_sign acc)
  end
  else begin
    (* Extended-exponent interval: certifies nonzero signs past float
       range (the interval stage's overflow blind spot). The unrolled
       accumulator lives in local floats — cached mantissa enclosures,
       no interval records — because this loop runs a couple hundred
       thousand times per n = 7 execution. Every rounding step is
       covered by one outward ulp, exactly as in [xmul]/[xadd]. *)
    let sb = sc_of b in
    let alo = ref (-.sb.I.hi) and ahi = ref (-.sb.I.lo) in
    let ae = ref b.Q.sce in
    for i = 0 to d - 1 do
      let qa = a.(i) and qp = p.(i) in
      let sa = sc_of qa in
      let ea = qa.Q.sce in
      let sp = sc_of qp in
      let ep = qp.Q.sce in
      let p1 = sa.I.lo *. sp.I.lo and p2 = sa.I.lo *. sp.I.hi in
      let p3 = sa.I.hi *. sp.I.lo and p4 = sa.I.hi *. sp.I.hi in
      (* Mantissa products are finite (factors < ~2^62), so plain
         comparisons pick the enclosing endpoints. *)
      let mn = if p1 < p2 then p1 else p2 in
      let mn = if p3 < mn then p3 else mn in
      let mn = if p4 < mn then p4 else mn in
      let mx = if p1 > p2 then p1 else p2 in
      let mx = if p3 > mx then p3 else mx in
      let mx = if p4 > mx then p4 else mx in
      let plo = I.down mn and phi = I.up mx in
      let pe = ea + ep in
      (* Align to the larger exponent, shifting the other mantissa
         DOWN (underflow is sound after the outward ulp; an upward
         shift could overflow). *)
      if pe >= !ae then begin
        let k = !ae - pe in
        let slo = I.down (Float.ldexp !alo k) in
        let shi = I.up (Float.ldexp !ahi k) in
        alo := I.down (slo +. plo);
        ahi := I.up (shi +. phi);
        ae := pe
      end
      else begin
        let k = pe - !ae in
        let slo = I.down (Float.ldexp plo k) in
        let shi = I.up (Float.ldexp phi k) in
        alo := I.down (!alo +. slo);
        ahi := I.up (!ahi +. shi)
      end
    done;
    if !alo > 0.0 then Some 1
    else if !ahi < 0.0 then Some (-1)
    else residue_zero_dot ~bound a p b
  end

(* sign(u0 v1 - u1 v0) for origin-based 2-d edge vectors. *)
let cross2o_sign u v : int option =
  let u0 = u.(0) and u1 = u.(1) and v0 = v.(0) and v1 = v.(1) in
  let dw = den_width u0 + den_width u1 + den_width v0 + den_width v1 in
  let w1 = width u0 + width v1 and w2 = width u1 + width v0 in
  let bound = Stdlib.max w1 w2 + dw + 1 in
  let all_int = dw = 0 in
  let all_small =
    B.is_small u0.Q.num && B.is_small u1.Q.num && B.is_small v0.Q.num
    && B.is_small v1.Q.num
  in
  if all_int && all_small && bound <= int1_max_bits then
    Some
      (Stdlib.compare
         ((B.to_int_exn u0.Q.num * B.to_int_exn v1.Q.num)
          - (B.to_int_exn u1.Q.num * B.to_int_exn v0.Q.num))
         0)
  else if all_int && all_small && bound <= dword_max_bits then begin
    let acc = acc_make () in
    acc_add_prod acc 1 (B.to_int_exn u0.Q.num) (B.to_int_exn v1.Q.num);
    acc_add_prod acc (-1) (B.to_int_exn u1.Q.num) (B.to_int_exn v0.Q.num);
    Some (acc_sign acc)
  end
  else begin
    match
      xsign
        (xsub (xmul (xiv_of_q u0) (xiv_of_q v1))
           (xmul (xiv_of_q u1) (xiv_of_q v0)))
    with
    | Some s -> Some s
    | None ->
      residue_zero ~bound (fun i pr ->
          let r q = (residues q (i + 1)).(i + 1) in
          let ru0 = r u0 and ru1 = r u1 and rv0 = r v0 and rv1 = r v1 in
          if ru0 = -1 || ru1 = -1 || rv0 = -1 || rv1 = -1 then -1
          else
            (mulmod ru0 rv1 pr - mulmod ru1 rv0 pr + pr) mod pr)
  end

(* sign((a - o) x (b - o)) — the 2-d orientation test. *)
let cross2_sign o a b : int option =
  let o0 = o.(0) and o1 = o.(1) in
  let a0 = a.(0) and a1 = a.(1) in
  let b0 = b.(0) and b1 = b.(1) in
  let dw =
    den_width o0 + den_width o1 + den_width a0 + den_width a1 + den_width b0
    + den_width b1
  in
  let wmax =
    List.fold_left Stdlib.max 0
      [ width o0; width o1; width a0; width a1; width b0; width b1 ]
  in
  (* Differences add a bit; two difference products and their sum add
     three more. *)
  let bound = (2 * (wmax + 1)) + dw + 2 in
  let all_int = dw = 0 in
  let all_small =
    B.is_small o0.Q.num && B.is_small o1.Q.num && B.is_small a0.Q.num
    && B.is_small a1.Q.num && B.is_small b0.Q.num && B.is_small b1.Q.num
  in
  if all_int && all_small && bound <= int1_max_bits then begin
    let d00 = B.to_int_exn a0.Q.num - B.to_int_exn o0.Q.num in
    let d01 = B.to_int_exn a1.Q.num - B.to_int_exn o1.Q.num in
    let d10 = B.to_int_exn b0.Q.num - B.to_int_exn o0.Q.num in
    let d11 = B.to_int_exn b1.Q.num - B.to_int_exn o1.Q.num in
    Some (Stdlib.compare ((d00 * d11) - (d01 * d10)) 0)
  end
  else if all_int && all_small && bound <= dword_max_bits then begin
    let d00 = B.to_int_exn a0.Q.num - B.to_int_exn o0.Q.num in
    let d01 = B.to_int_exn a1.Q.num - B.to_int_exn o1.Q.num in
    let d10 = B.to_int_exn b0.Q.num - B.to_int_exn o0.Q.num in
    let d11 = B.to_int_exn b1.Q.num - B.to_int_exn o1.Q.num in
    let acc = acc_make () in
    acc_add_prod acc 1 d00 d11;
    acc_add_prod acc (-1) d01 d10;
    Some (acc_sign acc)
  end
  else begin
    let xo0 = xiv_of_q o0 and xo1 = xiv_of_q o1 in
    match
      xsign
        (xsub
           (xmul (xsub (xiv_of_q a0) xo0) (xsub (xiv_of_q b1) xo1))
           (xmul (xsub (xiv_of_q a1) xo1) (xsub (xiv_of_q b0) xo0)))
    with
    | Some s -> Some s
    | None ->
      residue_zero ~bound (fun i pr ->
          let r q = (residues q (i + 1)).(i + 1) in
          let ro0 = r o0 and ro1 = r o1 in
          let ra0 = r a0 and ra1 = r a1 in
          let rb0 = r b0 and rb1 = r b1 in
          if ro0 = -1 || ro1 = -1 || ra0 = -1 || ra1 = -1 || rb0 = -1
             || rb1 = -1
          then -1
          else begin
            let d00 = (ra0 - ro0 + pr) mod pr in
            let d01 = (ra1 - ro1 + pr) mod pr in
            let d10 = (rb0 - ro0 + pr) mod pr in
            let d11 = (rb1 - ro1 + pr) mod pr in
            (mulmod d00 d11 pr - mulmod d01 d10 pr + pr) mod pr
          end)
  end

(* ------------------------------------------------------------------ *)
(* Common-denominator grids: the lcm scaling that hull constructions
   apply to their points, shared per protocol round. *)

type t = {
  den : B.t;                          (* common multiple of all point dens *)
  mutable factors : (B.t * B.t) list; (* den |-> grid den / den *)
  mutable gwidth : int;               (* widest scaled coordinate seen *)
}

(* den |-> cofactor cache; point sets carry a handful of distinct
   denominators, so an assoc list beats any hashing. Raises [Exit]
   when [d] does not divide the grid denominator (the caller falls
   back to a construction-local grid). *)
let factor_of g d =
  if B.equal d B.one then g.den
  else begin
    let rec find = function
      | [] ->
        let q, r = B.divmod g.den d in
        if not (B.is_zero r) then raise_notrace Exit;
        g.factors <- (d, q) :: g.factors;
        q
      | (d', f) :: rest -> if B.equal d d' then f else find rest
    in
    find g.factors
  end

(* lcm of the coordinate denominators, deduplicating first: rounds
   funnel every vertex through the same averaging arithmetic, so a
   900-point set typically carries under a dozen distinct
   denominators and the gcd chain runs on those alone. *)
let distinct_dens pts acc0 =
  List.fold_left
    (fun acc (p : Q.t array) ->
       Array.fold_left
         (fun acc (q : Q.t) ->
            let d = q.Q.den in
            if B.equal d B.one then acc
            else if List.exists (B.equal d) acc then acc
            else d :: acc)
         acc p)
    acc0 pts

let lcm_of dens =
  List.fold_left
    (fun acc d -> B.mul (B.div acc (B.gcd acc d)) d)
    B.one dens

let make_of_dens dens = { den = lcm_of dens; factors = []; gwidth = 0 }

let make pts =
  let g = make_of_dens (distinct_dens pts []) in
  g

(* Grid for points about to be scaled by a 1/mult-weighted combination
   (the round average): mult * lcm is a common multiple of every
   resulting denominator, since (Σ v_i)/mult has a denominator
   dividing mult times the lcm of the v_i's. *)
let make_scaled ~mult pts =
  let g = make pts in
  if mult <= 1 then g else { g with den = B.mul_int g.den mult }

(* ------------------------------------------------------------------ *)
(* Per-round lifecycle. The executor installs a *pending* grid around
   each round's geometry: the denominator scan is deferred until the
   first construction actually scales points (rounds fully served by
   the memo tables never pay for it), then every later construction in
   the round reuses the same grid. Domain-local, like the kernel-mode
   override, so concurrent fuzz trials don't share grids. *)

type slot = Idle | Pending of (unit -> t) | Ready of t

let slot_key : slot ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref Idle)

type gstat = {
  mutable scans : int;       (* construction-local lcm scans *)
  mutable round_hits : int;  (* constructions served by the round grid *)
}

let gstats_m = Mutex.create ()
let gstats : gstat list ref = ref []

let gstat_key : gstat Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { scans = 0; round_hits = 0 } in
      Mutex.lock gstats_m;
      gstats := s :: !gstats;
      Mutex.unlock gstats_m;
      s)

let grid_stats () =
  Mutex.lock gstats_m;
  let ss = !gstats in
  Mutex.unlock gstats_m;
  List.fold_left
    (fun (sc, rh) s -> (sc + s.scans, rh + s.round_hits))
    (0, 0) ss

let with_round build f =
  let slot = Domain.DLS.get slot_key in
  let saved = !slot in
  slot := Pending build;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* Install only when no round grid is active: construction-level entry
   points (Polytope.linear_combination, intersect) use this so they
   share a grid when called standalone yet never shadow the executor's
   per-round grid. *)
let ensure_round build f =
  let slot = Domain.DLS.get slot_key in
  match !slot with Idle -> with_round build f | _ -> f ()

let current () =
  let slot = Domain.DLS.get slot_key in
  match !slot with
  | Idle -> None
  | Ready g -> Some g
  | Pending build ->
    let g = build () in
    slot := Ready g;
    Some g

(* ------------------------------------------------------------------ *)
(* Point scaling. [scale_points pts] returns the points scaled onto an
   integer grid together with the grid denominator [l] (so facet
   offsets map back as b/l): the ambient round grid when every
   denominator divides it, otherwise a construction-local grid. Either
   way the per-coordinate work is one multiplication — the cofactor
   cache replaces the gcd-pair reduction [Q.mul] would run per
   coordinate. *)

let scale_with g pts =
  let w = ref g.gwidth in
  let scaled =
    List.map
      (fun (p : Q.t array) ->
         Array.map
           (fun (q : Q.t) ->
              if B.equal q.Q.den B.one && B.equal g.den B.one then q
              else begin
                let n = B.mul q.Q.num (factor_of g q.Q.den) in
                w := Stdlib.max !w (B.num_bits n);
                Q.of_bigint n
              end)
           p)
      pts
  in
  g.gwidth <- !w;
  scaled

let scale_points pts =
  let st = Domain.DLS.get gstat_key in
  match current () with
  | Some g ->
    (match scale_with g pts with
     | scaled ->
       st.round_hits <- st.round_hits + 1;
       (scaled, g.den)
     | exception Exit ->
       (* A denominator outside the round grid: scan locally. *)
       st.scans <- st.scans + 1;
       let g' = make pts in
       (scale_with g' pts, g'.den))
  | None ->
    st.scans <- st.scans + 1;
    let g = make pts in
    (scale_with g pts, g.den)

let width_of g = g.gwidth
let den_of g = g.den

(* ------------------------------------------------------------------ *)
(* Telemetry: residue-cache size/evictions (the named-cache treatment
   Memo tables get) and grid reuse counters. *)

let () =
  Obs.Metrics.register_collector (fun () ->
      let inserts, evictions = residue_cache_stats () in
      let e_inserts, e_evictions = Q.enclosure_cache_stats () in
      let scans, round_hits = grid_stats () in
      [ { Obs.Metrics.metric = "chc_cache_inserts_total";
          labels = [ ("cache", "enclosure") ];
          value = Obs.Metrics.Counter e_inserts };
        { Obs.Metrics.metric = "chc_cache_evictions_total";
          labels = [ ("cache", "enclosure") ];
          value = Obs.Metrics.Counter e_evictions };
        { Obs.Metrics.metric = "chc_cache_inserts_total";
          labels = [ ("cache", "residue") ];
          value = Obs.Metrics.Counter inserts };
        { Obs.Metrics.metric = "chc_cache_evictions_total";
          labels = [ ("cache", "residue") ];
          value = Obs.Metrics.Counter evictions };
        { Obs.Metrics.metric = "chc_grid_local_scans_total";
          labels = [];
          value = Obs.Metrics.Counter scans };
        { Obs.Metrics.metric = "chc_grid_round_hits_total";
          labels = [];
          value = Obs.Metrics.Counter round_hits } ])
