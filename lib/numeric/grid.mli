(** Scaled-integer grids and the staged filter's second stage.

    This module backs [CHC_KERNEL=staged] (see {!Kernel}): when the
    float-interval filter ({!Filter}) misses — typically because
    lcm-scaled hull coordinates push term products past float range,
    or because the predicate value is exactly zero — the evaluators
    here decide the sign through an escalation ladder of
    machine-precision stages before any exact rational arithmetic:

    + exact single-word integer evaluation;
    + exact double-word (128-bit) evaluation via base-[2^30] limbs;
    + extended-exponent mantissa intervals (float enclosures with an
      out-of-band power-of-two exponent, immune to range overflow);
    + modular-residue zero certificates against a fixed vector of
      25-bit primes.

    Every stage is gated by a static width bound computed from O(1)
    operand bit-lengths before the stage runs, so a stage either
    cannot overflow or is not attempted — escalation, never wrapping.
    All certified answers equal the exact rational result; callers
    fall back to exact arithmetic on [None].

    The module also owns common-denominator point scaling for hull
    constructions, shared per protocol round (see {!with_round} /
    {!scale_points}). *)

(** {1 Staged predicate evaluators}

    Each returns [Some s] only when a machine-precision stage certifies
    the sign [s] of the exact value, [None] to defer to the caller's
    exact fallback. *)

val dot_minus_sign : Q.t array -> Q.t array -> Q.t -> int option
(** [dot_minus_sign a p b] stages [sign (a . p - b)]. *)

val cross2_sign : Q.t array -> Q.t array -> Q.t array -> int option
(** [cross2_sign o a b] stages [sign ((a - o) x (b - o))]. *)

val cross2o_sign : Q.t array -> Q.t array -> int option
(** [cross2o_sign u v] stages [sign (u0*v1 - u1*v0)]. *)

(** {1 Static width bounds}

    The scale-time bound analysis: given a grid's coordinate
    bit-width, decide once which stages a construction's visibility
    dots can use and how many residues certify a zero. The evaluators
    recompute the same sums per call from the actual operands, so
    these are planning/reporting values, never a soundness shortcut. *)

type bounds = {
  dot_bound : int;      (** magnitude bound (bits) of a visibility dot *)
  int1 : bool;          (** single-word exact evaluation cannot overflow *)
  dword : bool;         (** double-word exact evaluation cannot overflow *)
  residue_primes : int; (** residues needed to certify a zero *)
}

val bounds_for : dim:int -> width:int -> bounds

val int1_max_bits : int
(** Largest magnitude bound (61) the single-word stage accepts: signed
    partial sums must stay below OCaml's 63-bit native range. *)

val dword_max_bits : int
(** Largest magnitude bound (123) the double-word stage accepts: its
    factors must fit one word, bounding products at 124 bits. *)

(** {1 Residue stage} *)

val primes : int array
(** The 64 largest primes below [2^25], largest first. The narrow
    primes keep residue dot products lazily reducible: products of two
    residues stay below [2^50], so partial sums tolerate hundreds of
    terms between [mod] normalizations. *)

val prime_bits : int
(** Guaranteed certified bits per prime (24). *)

val capacity_bits : int
(** Total zero-certificate capacity, [Array.length primes * prime_bits]. *)

val primes_for : int -> int
(** Residues needed to certify a zero of the given magnitude bound. *)

val modinv : int -> int -> int
(** [modinv a p] for prime [p] and [0 < a < p]: the inverse of [a]
    modulo [p]. Exposed for the test suite. *)

val residues : Q.t -> int -> int array
(** [residues q k] fills (and caches on [q], see [Q.rs]) the first [k]
    value residues; [k <= Array.length primes]. Slot 0 of the result
    is the filled count, slot [i+1] the residue modulo [primes.(i)]
    or [-1] when that prime divides the denominator. *)

val set_residue_cache_capacity : int -> unit
(** Resize the calling domain's residue-cache eviction ring (clamped
    to at least 1; default 4096). Evicted rationals transparently
    recompute their residues on next use. *)

val residue_cache_stats : unit -> int * int
(** [(inserts, evictions)] across all domains since startup. *)

(** {1 Extended-exponent intervals}

    A float enclosure [[xlo, xhi]] scaled by [2^xe]: the mantissa
    interval stays a few ulp wide whatever the magnitude, so products
    of wide integers never saturate to [±inf]. Exposed for the
    boundary tests. *)

type xiv = { xlo : float; xhi : float; xe : int }

val xiv_of_q : Q.t -> xiv
val xmul : xiv -> xiv -> xiv
val xadd : xiv -> xiv -> xiv
val xsub : xiv -> xiv -> xiv
val xneg : xiv -> xiv

val xsign : xiv -> int option
(** [Some s] iff the enclosure excludes zero (never certifies zero). *)

(** {1 Double-word accumulator}

    Exact Σ ±x·y over native factors [|x|, |y| < 2^62], held in six
    base-[2^30] limbs. Exposed for the overflow-boundary tests. *)

val acc_make : unit -> int array
val acc_add_prod : int array -> int -> int -> int -> unit
(** [acc_add_prod acc s x y] adds [s * x * y] ([s = ±1]). *)

val acc_sign : int array -> int

(** {1 Common-denominator grids} *)

type t
(** A scaling grid: a common multiple of point denominators plus a
    cofactor cache, so scaling a coordinate onto the integer grid is
    one multiplication (no per-coordinate gcd reduction). *)

val make : Q.t array list -> t
(** Scan a point set's (deduplicated) denominators and build their
    lcm grid. *)

val make_scaled : mult:int -> Q.t array list -> t
(** [make_scaled ~mult pts] is {!make} with the lcm multiplied by
    [mult]: the grid for points about to enter a 1/[mult]-weighted
    convex combination, whose results carry denominators dividing
    [mult * lcm]. *)

val scale_points : Q.t array list -> Q.t array list * Bigint.t
(** [scale_points pts] is [(scaled, l)] where [scaled = l * pts]
    coordinate-wise with every denominator 1. Uses the ambient round
    grid when one is installed and every denominator divides it
    (sharing its lcm scan and cofactor cache), otherwise a
    construction-local grid. *)

val with_round : (unit -> t) -> (unit -> 'a) -> 'a
(** [with_round build f] runs [f] with a {e pending} round grid
    installed (domain-local): the first {!scale_points} under [f]
    forces [build] and later calls reuse the grid. Nests by saving and
    restoring the previous slot. Rounds fully served by the memo
    tables never force [build]. *)

val ensure_round : (unit -> t) -> (unit -> 'a) -> 'a
(** Like {!with_round} but a no-op when a round grid is already
    installed — for construction-level entry points that should share
    a grid standalone without shadowing the executor's round grid. *)

val current : unit -> t option
(** Force and return the installed round grid, if any. *)

val width_of : t -> int
(** Widest scaled-coordinate bit-width seen so far — input to
    {!bounds_for}. *)

val den_of : t -> Bigint.t

val grid_stats : unit -> int * int
(** [(local_scans, round_hits)] across all domains since startup. *)
