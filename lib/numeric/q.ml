(* Normalized rationals: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero
  else begin
    let num, den = if s < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
    else begin
      let g = Bigint.gcd num den in
      if Bigint.equal g Bigint.one then { num; den }
      else { num = Bigint.div num g; den = Bigint.div den g }
    end
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2

let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num

(* a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). *)
let compare a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let geq a b = compare a b >= 0
let gt a b = compare a b > 0

let hash x = (Bigint.hash x.num * 31 + Bigint.hash x.den) land max_int

let neg x = { x with num = Bigint.neg x.num }
let abs x = { x with num = Bigint.abs x.num }

(* [add] and [mul] avoid the generic [make] (two cross products plus a
   full-width gcd) whenever a denominator is 1 or both are equal:
   - int + int and int * int need no gcd at all;
   - int + a/b stays reduced: gcd(a + k*b, b) = gcd(a, b) = 1;
   - a/b + c/b only needs a gcd against the (unchanged) denominator;
   - products cross-reduce with two small gcds — gcd(n1*n2, d1*d2) = 1
     holds once gcd(n1, d2) = gcd(n2, d1) = 1, because each input was
     already reduced.
   Equivalence with the [make]-based slow path is property-tested in
   test/test_q.ml. *)

let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else begin
    let da1 = Bigint.equal a.den Bigint.one in
    let db1 = Bigint.equal b.den Bigint.one in
    if da1 && db1 then { num = Bigint.add a.num b.num; den = Bigint.one }
    else if db1 then
      { num = Bigint.add a.num (Bigint.mul b.num a.den); den = a.den }
    else if da1 then
      { num = Bigint.add b.num (Bigint.mul a.num b.den); den = b.den }
    else if Bigint.equal a.den b.den then begin
      let num = Bigint.add a.num b.num in
      if Bigint.is_zero num then zero
      else begin
        let g = Bigint.gcd num a.den in
        if Bigint.equal g Bigint.one then { num; den = a.den }
        else { num = Bigint.div num g; den = Bigint.div a.den g }
      end
    end
    else
      make
        (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
        (Bigint.mul a.den b.den)
  end

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then zero
  else begin
    let da1 = Bigint.equal a.den Bigint.one in
    let db1 = Bigint.equal b.den Bigint.one in
    if da1 && db1 then { num = Bigint.mul a.num b.num; den = Bigint.one }
    else begin
      let g1 = if db1 then Bigint.one else Bigint.gcd a.num b.den in
      let g2 = if da1 then Bigint.one else Bigint.gcd b.num a.den in
      let n1, d2 =
        if Bigint.equal g1 Bigint.one then (a.num, b.den)
        else (Bigint.div a.num g1, Bigint.div b.den g1)
      in
      let n2, d1 =
        if Bigint.equal g2 Bigint.one then (b.num, a.den)
        else (Bigint.div b.num g2, Bigint.div a.den g2)
      in
      { num = Bigint.mul n1 n2; den = Bigint.mul d1 d2 }
    end
  end

let inv x =
  if is_zero x then raise Division_by_zero
  else make x.den x.num

let div a b = mul a (inv b)

let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let square x = mul x x

let pow x k =
  if k >= 0 then make (Bigint.pow x.num k) (Bigint.pow x.den k)
  else inv (make (Bigint.pow x.num (-k)) (Bigint.pow x.den (-k)))

let sum xs = List.fold_left add zero xs

let average xs =
  match xs with
  | [] -> invalid_arg "Q.average: empty list"
  | _ -> div (sum xs) (of_int (List.length xs))

let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

let to_float x =
  (* Scale down so both parts fit a float exponent comfortably. *)
  let nb = Bigint.num_bits x.num and db = Bigint.num_bits x.den in
  let shift = Stdlib.max 0 (Stdlib.max nb db - 900) in
  let n = Bigint.shift_right x.num shift in
  let d = Bigint.shift_right x.den shift in
  if Bigint.is_zero d then
    (* Denominator underflowed the shift: the value is astronomically
       large; saturate. *)
    (if sign x >= 0 then infinity else neg_infinity)
  else Bigint.to_float n /. Bigint.to_float d

let to_string x =
  if Bigint.equal x.den Bigint.one then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let num = Bigint.of_string (String.sub s 0 i) in
    let den = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make num den
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Q.of_string: trailing dot"
       else begin
         let negative = String.length int_part > 0 && int_part.[0] = '-' in
         let ip = if int_part = "" || int_part = "-" || int_part = "+"
           then Bigint.zero else Bigint.of_string int_part in
         let fp = Bigint.of_string frac in
         let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
         let mag =
           Bigint.add (Bigint.mul (Bigint.abs ip) scale) fp
         in
         let mag = if negative then Bigint.neg mag else mag in
         make mag scale
       end)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) = equal
  let ( </ ) = lt
  let ( <=/ ) = leq
  let ( >/ ) = gt
  let ( >=/ ) = geq
end
