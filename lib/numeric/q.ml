(* Normalized rationals: den > 0, gcd(|num|, den) = 1, zero is 0/1.

   [iv] lazily caches a certified float enclosure of the value (see
   [enclosure]); [Interval.unset] marks "not yet computed". The cache
   is write-once with a deterministic value, so a concurrent double
   computation by two domains is a benign race (both store the same
   word-sized pointer).

   [rs] is the staged kernel's modular-residue slot, owned by
   {!Grid}: empty until that stage first touches the value, then an
   array whose slot 0 counts the filled residues. Fills are
   deterministic too, so the same benign-race argument applies. *)

type t = {
  num : Bigint.t;
  den : Bigint.t;
  mutable iv : Interval.t;
  mutable rs : int array;
  mutable sc : Interval.t;
  mutable sce : int;
}

let cons num den =
  { num; den; iv = Interval.unset; rs = [||]; sc = Interval.unset; sce = 0 }

let set_residues x rs = x.rs <- rs
(* Publish the exponent before the enclosure: a racing reader that
   sees a non-unset [sc] must also see its matching [sce]. *)
let set_scaled_enclosure x sc sce = x.sce <- sce; x.sc <- sc

let make num den =
  let s = Bigint.sign den in
  if s = 0 then raise Division_by_zero
  else begin
    let num, den = if s < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.is_zero num then cons Bigint.zero Bigint.one
    else begin
      let g = Bigint.gcd num den in
      if Bigint.equal g Bigint.one then cons num den
      else cons (Bigint.div num g) (Bigint.div den g)
    end
  end

let of_bigint n = cons n Bigint.one
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2

let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num

(* ------------------------------------------------------------------ *)
(* Enclosure-cache bounding. Long campaigns (fuzz sweeps, benches)
   materialize millions of distinct rationals, each potentially
   pinning a cached interval; a domain-local ring of weak slots keeps
   the number of *live-and-cached* enclosures bounded. When a ring
   slot is reused while its rational is still live, that rational's
   cache is reset to [Interval.unset] (an eviction — the enclosure is
   simply recomputed if demanded again); dead rationals vanish from
   the weak slots for free. *)

let enclosure_cache_default = 65536
let enclosure_cache_cap = ref enclosure_cache_default

type ering = { slots : t Weak.t; mutable pos : int; cap : int }

type estat = { mutable inserts : int; mutable evictions : int }

let estats_m = Mutex.create ()
let estats : estat list ref = ref []

let ering_make () =
  let cap = Stdlib.max 1 !enclosure_cache_cap in
  let st = { inserts = 0; evictions = 0 } in
  Mutex.lock estats_m;
  estats := st :: !estats;
  Mutex.unlock estats_m;
  ({ slots = Weak.create cap; pos = 0; cap }, st)

let ering_key : (ering * estat) Domain.DLS.key = Domain.DLS.new_key ering_make

let set_enclosure_cache_capacity n =
  enclosure_cache_cap := Stdlib.max 1 n;
  Domain.DLS.set ering_key (ering_make ())

let enclosure_cache_stats () =
  Mutex.lock estats_m;
  let ss = !estats in
  Mutex.unlock estats_m;
  List.fold_left
    (fun (i, e) s -> (i + s.inserts, e + s.evictions))
    (0, 0) ss

let ering_track x =
  let ring, st = Domain.DLS.get ering_key in
  (match Weak.get ring.slots ring.pos with
   | Some old ->
     old.iv <- Interval.unset;
     old.sc <- Interval.unset;
     st.evictions <- st.evictions + 1
   | None -> ());
  Weak.set ring.slots ring.pos (Some x);
  ring.pos <- (ring.pos + 1) mod ring.cap;
  st.inserts <- st.inserts + 1

(* Certified float enclosure of the exact value, computed on first use
   and cached in [iv]. Denominators are positive by the normalization
   invariant, so the quotient enclosure uses [Interval.div_pos]. *)
let enclosure x =
  let iv = x.iv in
  if iv != Interval.unset then iv
  else begin
    let iv =
      if Bigint.equal x.den Bigint.one then Bigint.to_float_enclosure x.num
      else
        Interval.div_pos
          (Bigint.to_float_enclosure x.num)
          (Bigint.to_float_enclosure x.den)
    in
    x.iv <- iv;
    ering_track x;
    iv
  end

(* a/b ? c/d  <=>  a*d ? c*b  (b, d > 0). *)
let compare_exact a b =
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

(* Small-magnitude fast path: when all four components are native ints
   the cross products are (near-)native and exact comparison is as fast
   as any filter, so the interval path only engages on big operands —
   and only under the filtered kernel. *)
let compare a b =
  if
    Bigint.is_small a.num && Bigint.is_small a.den && Bigint.is_small b.num
    && Bigint.is_small b.den
  then compare_exact a b
  else if
    (* Staged second stage for comparisons: the normalization invariant
       makes structural equality an exact equality test, and measured
       interval-filter misses on the hull paths are overwhelmingly
       exact ties of identical offsets — caught here in O(limbs)
       without a cross product. *)
    Kernel.staged () && Bigint.equal a.num b.num && Bigint.equal a.den b.den
  then begin
    Kernel.int_hit Kernel.Compare; 0
  end
  else if Kernel.filtered () then begin
    let ia = enclosure a and ib = enclosure b in
    if ia.Interval.lo > ib.Interval.hi then begin
      Kernel.hit Kernel.Compare; 1
    end
    else if ia.Interval.hi < ib.Interval.lo then begin
      Kernel.hit Kernel.Compare; -1
    end
    else begin
      Kernel.fallback Kernel.Compare;
      compare_exact a b
    end
  end
  else compare_exact a b

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let geq a b = compare a b >= 0
let gt a b = compare a b > 0

(* Hashes the normalized (num, den) pair through [Bigint]'s canonical
   hash, so structurally-equal rationals built along different
   arithmetic paths always collide into the same bucket. *)
let hash x = (Bigint.hash x.num * 31 + Bigint.hash x.den) land max_int

let neg x = cons (Bigint.neg x.num) x.den
let abs x = cons (Bigint.abs x.num) x.den

(* [add] and [mul] avoid the generic [make] (two cross products plus a
   full-width gcd) whenever a denominator is 1 or both are equal:
   - int + int and int * int need no gcd at all;
   - int + a/b stays reduced: gcd(a + k*b, b) = gcd(a, b) = 1;
   - a/b + c/b only needs a gcd against the (unchanged) denominator;
   - products cross-reduce with two small gcds — gcd(n1*n2, d1*d2) = 1
     holds once gcd(n1, d2) = gcd(n2, d1) = 1, because each input was
     already reduced.
   Equivalence with the [make]-based slow path is property-tested in
   test/test_q.ml. *)

let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else begin
    let da1 = Bigint.equal a.den Bigint.one in
    let db1 = Bigint.equal b.den Bigint.one in
    if da1 && db1 then cons (Bigint.add a.num b.num) Bigint.one
    else if db1 then
      cons (Bigint.add a.num (Bigint.mul b.num a.den)) a.den
    else if da1 then
      cons (Bigint.add b.num (Bigint.mul a.num b.den)) b.den
    else if Bigint.equal a.den b.den then begin
      let num = Bigint.add a.num b.num in
      if Bigint.is_zero num then zero
      else begin
        let g = Bigint.gcd num a.den in
        if Bigint.equal g Bigint.one then cons num a.den
        else cons (Bigint.div num g) (Bigint.div a.den g)
      end
    end
    else
      make
        (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
        (Bigint.mul a.den b.den)
  end

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then zero
  else begin
    let da1 = Bigint.equal a.den Bigint.one in
    let db1 = Bigint.equal b.den Bigint.one in
    if da1 && db1 then cons (Bigint.mul a.num b.num) Bigint.one
    else begin
      let g1 = if db1 then Bigint.one else Bigint.gcd a.num b.den in
      let g2 = if da1 then Bigint.one else Bigint.gcd b.num a.den in
      let n1, d2 =
        if Bigint.equal g1 Bigint.one then (a.num, b.den)
        else (Bigint.div a.num g1, Bigint.div b.den g1)
      in
      let n2, d1 =
        if Bigint.equal g2 Bigint.one then (b.num, a.den)
        else (Bigint.div b.num g2, Bigint.div a.den g2)
      in
      cons (Bigint.mul n1 n2) (Bigint.mul d1 d2)
    end
  end

let inv x =
  if is_zero x then raise Division_by_zero
  else make x.den x.num

let div a b = mul a (inv b)

let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let square x = mul x x

let pow x k =
  if k >= 0 then make (Bigint.pow x.num k) (Bigint.pow x.den k)
  else inv (make (Bigint.pow x.num (-k)) (Bigint.pow x.den (-k)))

let sum xs = List.fold_left add zero xs

let average xs =
  match xs with
  | [] -> invalid_arg "Q.average: empty list"
  | _ -> div (sum xs) (of_int (List.length xs))

let mul_int x n = mul x (of_int n)
let div_int x n = div x (of_int n)

let to_float x =
  (* Scale down so both parts fit a float exponent comfortably. *)
  let nb = Bigint.num_bits x.num and db = Bigint.num_bits x.den in
  let shift = Stdlib.max 0 (Stdlib.max nb db - 900) in
  let n = Bigint.shift_right x.num shift in
  let d = Bigint.shift_right x.den shift in
  if Bigint.is_zero d then
    (* Denominator underflowed the shift: the value is astronomically
       large; saturate. *)
    (if sign x >= 0 then infinity else neg_infinity)
  else Bigint.to_float n /. Bigint.to_float d

let to_string x =
  if Bigint.equal x.den Bigint.one then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let num = Bigint.of_string (String.sub s 0 i) in
    let den = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make num den
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Q.of_string: trailing dot"
       else begin
         let negative = String.length int_part > 0 && int_part.[0] = '-' in
         let ip = if int_part = "" || int_part = "-" || int_part = "+"
           then Bigint.zero else Bigint.of_string int_part in
         let fp = Bigint.of_string frac in
         let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
         let mag =
           Bigint.add (Bigint.mul (Bigint.abs ip) scale) fp
         in
         let mag = if negative then Bigint.neg mag else mag in
         make mag scale
       end)

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) = equal
  let ( </ ) = lt
  let ( <=/ ) = leq
  let ( >/ ) = gt
  let ( >=/ ) = geq
end
