(** Fuzzer-contributed adversarial scheduler strategies.

    All three plug into {!Runtime.Scheduler}'s strategy registry (call
    {!register_builtin} once at startup), so they are addressable from
    the CLI ([--scheduler delay-burst:40]), serializable inside
    {!Chc.Scenario} artifacts, and composable with the core
    adversaries. Every strategy is fair in the limit — no channel is
    starved forever — so Algorithm CC's termination proof applies and
    a non-terminating run under one of them is a genuine bug, not an
    artifact of an unfair adversary (see DESIGN.md). *)

val delay_burst : period:int -> Runtime.Scheduler.t
(** [delay-burst:period] — starve one source per [period]-step window,
    rotating through sources in id order; the backlog releases as a
    burst at each window boundary.
    @raise Invalid_argument if [period <= 0]. *)

val stab_boundary : Runtime.Scheduler.t
(** [stab-boundary] — always deliver to the receiver that has received
    the fewest messages, keeping every process at the stable-vector
    stabilization boundary simultaneously. Stateful: each execution
    gets a fresh counter table, so replay is exact. *)

val starve : ids:int list -> Runtime.Scheduler.t
(** [starve:i,j,…] — postpone every delivery TO the listed processes
    while any other channel is non-empty. Built to attack
    crash-recovery rejoin: a recovering process's state-transfer
    answers are deliveries to it, so starving it maximizes the window
    in which it runs on replayed state alone. Still fair in the limit
    — starved channels drain once only they remain. An empty id list
    degenerates to uniform random (so [starve:@faulty] is harmless in
    trials that sampled no faulty set). *)

val swarm : Runtime.Scheduler.t list -> Runtime.Scheduler.t
(** [swarm:specA+specB+…] — each step a uniformly drawn sub-strategy
    makes the pick. Sub-strategies may not themselves be swarms.
    @raise Invalid_argument on the empty list. *)

val register_builtin : unit -> unit
(** Register [delay-burst], [stab-boundary], [starve] and [swarm] in
    the {!Runtime.Scheduler} registry. Idempotent. *)
