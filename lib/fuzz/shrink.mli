(** Counterexample shrinking — greedy minimization of a failing
    scenario.

    Candidate moves, tried in this order each round: drop one crash
    plan, drop the last process (n−1), lower the fault bound f, drop
    the last input dimension, snap inputs to a coarser lattice
    (g ∈ {1, 2, 4}), push a crash budget later by one broadcast's worth
    of sends, and truncate the pinned schedule prefix (empty / half /
    one-shorter). The first candidate the oracle still fails becomes
    the new current scenario; the loop stops when no candidate fails
    or the attempt budget is spent.

    Everything here is deterministic: executions are pure functions of
    the scenario, candidate generation draws no randomness, so the same
    (scenario, oracle, budget) always minimizes to the identical
    artifact — which the test suite asserts byte-for-byte. *)

type stats = {
  steps : int;     (** accepted shrinking moves *)
  attempts : int;  (** oracle checks spent (each is one execution) *)
}

val candidates : Chc.Scenario.t -> Chc.Scenario.t list
(** All structurally valid one-step simplifications, in preference
    order. Pure. *)

val minimize :
  ?max_attempts:int ->
  oracle:Oracle.t ->
  Chc.Scenario.t ->
  Chc.Scenario.t * stats
(** Greedy fixpoint of {!candidates} under "oracle still fails"
    ([max_attempts] defaults to 150 oracle checks). The input scenario
    is assumed failing; the result is failing too (the loop only moves
    between failing scenarios). *)

val with_pinned_schedule :
  ?cap:int -> oracle:Oracle.t -> Chc.Scenario.t -> Chc.Scenario.t
(** Re-run the (failing) scenario with a trace and pin its first [cap]
    (default 200) scheduler decisions as the scenario's [prefix] — a
    semantic no-op on the scenario itself (the prefix forces exactly
    what the strategy would have picked), but it keeps the delivery
    order near the original failure while {!minimize} mutates the
    scenario structurally. Returns the scenario unchanged if it
    unexpectedly passes. *)
