module Json = Codec.Json
module Scenario = Chc.Scenario

type t = {
  scenario : Scenario.t;
  oracle : Oracle.t;
  violation : string;
  trial : int;
  shrink_steps : int;
}

let version = 1

let to_json a =
  Json.Obj
    [ ("artifact-version", Json.Int version);
      ("oracle", Oracle.to_json a.oracle);
      ("violation", Json.Str a.violation);
      ("trial", Json.Int a.trial);
      ("shrink-steps", Json.Int a.shrink_steps);
      ("scenario", Scenario.to_json a.scenario) ]

let ( let* ) r f = Result.bind r f

let of_json j =
  let* v = Json.int_field "artifact-version" j in
  if v <> version then
    Error
      (Printf.sprintf "artifact version %d unsupported (this build reads %d)" v
         version)
  else
    let* oracle = Result.bind (Json.field "oracle" j) Oracle.of_json in
    let* violation = Json.str_field "violation" j in
    let* trial = Json.int_field "trial" j in
    let* shrink_steps = Json.int_field "shrink-steps" j in
    let* scenario =
      Result.bind (Json.field "scenario" j) (fun sj ->
          Result.map_error Scenario.error_to_string (Scenario.of_json sj))
    in
    Ok { scenario; oracle; violation; trial; shrink_steps }

let to_string a = Json.to_string (to_json a)

let of_string s =
  let* j = Json.of_string s in
  of_json j

let save ~path a =
  Obs.Sink.write_file_exn ~path (fun oc ->
      output_string oc (to_string a);
      output_char oc '\n')

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok (String.trim s)
  | exception Sys_error msg -> Error msg

let load path = Result.bind (read_file path) of_string

(* Replay accepts both artifact files and bare scenario files; a bare
   scenario is wrapped with the real-properties oracle. *)
let load_any path =
  match read_file path with
  | Error msg -> Error (Scenario.Io msg)
  | Ok s ->
    (match of_string s with
     | Ok a -> Ok a
     | Error artifact_err ->
       (match Scenario.of_string s with
        | Ok scenario ->
          Ok
            { scenario; oracle = Oracle.Paper_properties; violation = "";
              trial = -1; shrink_steps = 0 }
        | Error scenario_err ->
          Error
            (Scenario.Invalid
               (Printf.sprintf "not an artifact (%s) nor a scenario (%s)"
                  artifact_err
                  (Scenario.error_to_string scenario_err)))))
