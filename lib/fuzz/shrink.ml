module Q = Numeric.Q
module Bigint = Numeric.Bigint
module Crash = Runtime.Crash
module Scenario = Chc.Scenario
module Config = Chc.Config

(* Rebuild a candidate through Scenario.make so anything structurally
   invalid (resilience bound, ranges) is skipped, not executed. *)
let build ?wal (t : Scenario.t) ~config ~inputs ~crash ~prefix =
  let wal = match wal with Some w -> w | None -> t.Scenario.wal in
  match
    Scenario.make ~config ~inputs ~crash ~scheduler:t.Scenario.scheduler
      ~seed:t.seed ~round0:t.round0 ~prefix ?kernel:t.kernel ?wal ()
  with
  | s -> Some s
  | exception Invalid_argument _ -> None

let try_config ~n ~f ~d ~eps ~lo ~hi =
  match Config.make ~n ~f ~d ~eps ~lo ~hi with
  | c -> Some c
  | exception Invalid_argument _ -> None

let drop_crash (t : Scenario.t) =
  List.filter_map
    (fun i ->
       match t.crash.(i) with
       | Crash.Never -> None
       | _ ->
         let crash = Array.copy t.crash in
         crash.(i) <- Crash.Never;
         build t ~config:t.config ~inputs:t.inputs ~crash ~prefix:t.prefix)
    (List.init (Array.length t.crash) Fun.id)

let reduce_n (t : Scenario.t) =
  let { Config.n; f; d; eps; lo; hi } = t.config in
  if n <= 3 then []
  else
    match try_config ~n:(n - 1) ~f ~d ~eps ~lo ~hi with
    | None -> []
    | Some config ->
      let inputs = Array.sub t.inputs 0 (n - 1) in
      let crash = Array.sub t.crash 0 (n - 1) in
      let prefix =
        List.filter (fun (src, dst) -> src < n - 1 && dst < n - 1) t.prefix
      in
      Option.to_list (build t ~config ~inputs ~crash ~prefix)

let reduce_f (t : Scenario.t) =
  let { Config.n; f; d; eps; lo; hi } = t.config in
  let faulty_count =
    Array.fold_left
      (fun acc p -> match p with Crash.Never -> acc | _ -> acc + 1)
      0 t.crash
  in
  if f < 1 || faulty_count > f - 1 then []
  else
    match try_config ~n ~f:(f - 1) ~d ~eps ~lo ~hi with
    | None -> []
    | Some config ->
      Option.to_list
        (build t ~config ~inputs:t.inputs ~crash:t.crash ~prefix:t.prefix)

let reduce_d (t : Scenario.t) =
  let { Config.n; f; d; eps; lo; hi } = t.config in
  if d <= 1 then []
  else
    match try_config ~n ~f ~d:(d - 1) ~eps ~lo ~hi with
    | None -> []
    | Some config ->
      let inputs = Array.map (fun v -> Array.sub v 0 (d - 1)) t.inputs in
      Option.to_list (build t ~config ~inputs ~crash:t.crash ~prefix:t.prefix)

(* Snap a coordinate to the nearest point of the g-step lattice over
   [lo, hi]. The ratio is in [0, 1], so truncating division is floor
   and floor(x + 1/2) rounds to nearest. *)
let snap ~lo ~span ~g c =
  if Q.is_zero span then c
  else
    let x = Q.add (Q.mul_int (Q.div (Q.sub c lo) span) g) Q.half in
    let k = Bigint.to_int_exn (Bigint.div x.Q.num x.Q.den) in
    Q.add lo (Q.mul span (Q.of_ints k g))

let coarsen (t : Scenario.t) =
  let { Config.lo; hi; _ } = t.config in
  let span = Q.sub hi lo in
  List.filter_map
    (fun g ->
       let inputs =
         Array.map (fun v -> Array.map (snap ~lo ~span ~g) v) t.inputs
       in
       let changed =
         Array.exists Fun.id
           (Array.mapi
              (fun i v ->
                 Array.exists Fun.id
                   (Array.mapi (fun j c -> not (Q.equal c t.inputs.(i).(j))) v))
              inputs)
       in
       if changed then
         build t ~config:t.config ~inputs ~crash:t.crash ~prefix:t.prefix
       else None)
    [ 1; 2; 4 ]

let later_crash (t : Scenario.t) =
  let n = Array.length t.crash in
  List.filter_map
    (fun i ->
       let bump k ctor =
         if k >= 200 then None
         else begin
           let crash = Array.copy t.crash in
           crash.(i) <- ctor (k + (n - 1));
           build t ~config:t.config ~inputs:t.inputs ~crash ~prefix:t.prefix
         end
       in
       match t.crash.(i) with
       | Crash.Never -> None
       | Crash.After_sends k -> bump k (fun k -> Crash.After_sends k)
       | Crash.After_receives k -> bump k (fun k -> Crash.After_receives k)
       | Crash.Crash_recover { trigger = Crash.Sends k; delay; keep } ->
         bump k (fun k ->
             Crash.Crash_recover { trigger = Crash.Sends k; delay; keep })
       | Crash.Crash_recover { trigger = Crash.Receives k; delay; keep } ->
         bump k (fun k ->
             Crash.Crash_recover { trigger = Crash.Receives k; delay; keep }))
    (List.init n Fun.id)

(* Recovery-specific shrinks: a finding that survives with the
   recovery machinery tamed (crash-stop instead of crash-recover, more
   surviving log, no forced WAL config) is a simpler finding. *)
let tame_recover (t : Scenario.t) =
  let n = Array.length t.crash in
  List.concat_map
    (fun i ->
       match t.crash.(i) with
       | Crash.Crash_recover { trigger; delay; keep } ->
         let with_plan plan =
           let crash = Array.copy t.crash in
           crash.(i) <- plan;
           build t ~config:t.config ~inputs:t.inputs ~crash ~prefix:t.prefix
         in
         List.filter_map Fun.id
           [ (* crash-stop with the same trigger *)
             with_plan
               (match trigger with
                | Crash.Sends k -> Crash.After_sends k
                | Crash.Receives k -> Crash.After_receives k);
             (* recover immediately *)
             (if delay > 0 then
                with_plan (Crash.Crash_recover { trigger; delay = 0; keep })
              else None);
             (* let more of the unsynced log survive *)
             (if keep < 64 then
                with_plan
                  (Crash.Crash_recover { trigger; delay; keep = keep + 8 })
              else None) ]
       | _ -> [])
    (List.init n Fun.id)

let drop_wal (t : Scenario.t) =
  match t.Scenario.wal with
  | None -> []
  | Some _ ->
    Option.to_list
      (build ~wal:None t ~config:t.config ~inputs:t.inputs ~crash:t.crash
         ~prefix:t.prefix)

let shrink_prefix (t : Scenario.t) =
  match t.prefix with
  | [] -> []
  | p ->
    let len = List.length p in
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    List.filter_map
      (fun k ->
         if k >= len then None
         else
           build t ~config:t.config ~inputs:t.inputs ~crash:t.crash
             ~prefix:(take k p))
      [ 0; len / 2; len - 1 ]

let candidates t =
  List.concat
    [ drop_crash t; tame_recover t; drop_wal t; reduce_n t; reduce_f t;
      reduce_d t; coarsen t; later_crash t; shrink_prefix t ]

type stats = { steps : int; attempts : int }

let minimize ?(max_attempts = 150) ~oracle scenario =
  let attempts = ref 0 in
  let fails s =
    incr attempts;
    match Oracle.check oracle s with
    | Oracle.Pass -> false
    | Oracle.Fail _ -> true
  in
  let rec first_failing = function
    | [] -> None
    | c :: rest ->
      if !attempts >= max_attempts then None
      else if fails c then Some c
      else first_failing rest
  in
  let rec go current steps =
    if !attempts >= max_attempts then (current, steps)
    else
      match first_failing (candidates current) with
      | None -> (current, steps)
      | Some c -> go c (steps + 1)
  in
  let minimized, steps = go scenario 0 in
  (minimized, { steps; attempts = !attempts })

let with_pinned_schedule ?(cap = 200) ~oracle scenario =
  let trace = Obs.Trace.create () in
  match Oracle.check ~trace oracle scenario with
  | Oracle.Pass -> scenario
  | Oracle.Fail _ ->
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    { scenario with Scenario.prefix = take cap (Obs.Trace.schedule trace) }
