(** Replayable counterexample artifacts — what the campaign writes to
    disk when a trial fails.

    An artifact bundles the (minimized) {!Chc.Scenario} with the
    {!Oracle} that flagged it, the violation message, the originating
    trial index and the number of shrinking steps taken. The JSON form
    is canonical and exact, like the scenario's — equal artifacts
    render byte-identically. [chc_sim replay file.json] loads one,
    re-executes the scenario and re-grades it with the embedded
    oracle. *)

type t = {
  scenario : Chc.Scenario.t;
  oracle : Oracle.t;
  violation : string;  (** the [Fail] message that flagged the trial *)
  trial : int;         (** originating trial index ([-1]: not from a campaign) *)
  shrink_steps : int;  (** accepted shrinking moves *)
}

val version : int

val to_json : t -> Codec.Json.t
val of_json : Codec.Json.t -> (t, string) result

val to_string : t -> string
(** Canonical single-line JSON. *)

val of_string : string -> (t, string) result

val save : path:string -> t -> unit
(** Durable write via {!Obs.Sink} (flush + fsync); raises [Failure]
    naming the path if the filesystem loses the artifact. *)

val load : string -> (t, string) result

val load_any : string -> (t, Chc.Scenario.error) result
(** Like {!load}, but a bare {!Chc.Scenario} file is also accepted and
    wrapped with the {!Oracle.Paper_properties} oracle — so [replay]
    works on scenario files saved by hand, too. The error is typed
    with the scenario vocabulary ([Io] for unreadable files, [Invalid]
    for content that is neither an artifact nor a scenario) so the CLI
    can map user data errors to exit code 65. *)
