(** Scenario generation — the adversary space the campaign explores.

    A {!space} describes the cross-product (scheduler strategy × crash
    plan × input geometry) the fuzzer samples from; {!scenario} is a
    pure function of (space, campaign seed, trial index), so any trial
    can be regenerated independently — which is exactly how the
    campaign fans trials out over the parallel pool without
    coordinating rng state. *)

module Q = Numeric.Q

type space = {
  d_choices : int list;
      (** dimension, drawn uniformly — repeat an entry to weight it *)
  f_max : int;  (** fault bound drawn uniformly from [0..f_max] *)
  n_slack : int;
      (** [n] is the resilience minimum [(d+2)f + 1] plus uniform
          slack in [0..n_slack] (and at least 3) *)
  eps_choices : Q.t list;
  grids : int list;  (** input lattice resolutions (coarse → fine) *)
  scheduler_specs : string list;
      (** [Runtime.Scheduler.of_spec] specs; ["@faulty"] expands to the
          sampled faulty ids *)
  receive_crashes : bool;
      (** also sample [After_receives] plans (else sends only) *)
  naive_round0 : [ `Never | `Sometimes | `Always ];
      (** sample the [`Naive] round-0 ablation never / one trial in
          eight / always. The ablation deliberately forfeits the
          containment property, so against {!Oracle.Paper_properties}
          its optimality failures are expected findings — the default
          space keeps this [`Never]; the canary self-test and the CLI's
          [--naive-round0] turn it on deliberately *)
  max_budget : int;
  ensure_crash : bool;
      (** clamp sampled budgets so every faulty plan actually fires
          ({!Chc.Scenario.ensure_crashes}) — costs one probe execution
          per trial *)
  recover : [ `Never | `Sometimes | `Always ];
      (** sample {!Runtime.Crash.Crash_recover} plans (crash, then
          revive and rejoin from the write-ahead log): never / about
          one crasher in three / every crasher *)
  max_recover_delay : int;
      (** revival delay drawn uniformly from [0..max_recover_delay]
          scheduler steps *)
  max_keep : int;
      (** the disk-prefix adversary's [keep] (unsynced WAL entries that
          survive the crash), drawn from [0..max_keep] *)
  checkpoint_choices : int list;
      (** WAL checkpoint intervals to sample from when a config is
          generated *)
  unsound_sync : bool;
      (** force every sampled WAL config to the deliberately broken
          [Unsound] sync mode — the teeth-demo space: the oracle must
          catch the resulting durability violations *)
}

val default_space : space
(** Small-but-adversarial: d ≤ 2, f ≤ 2, coarse-to-fine grids, all
    registered strategies including the fuzzer's own (call
    {!Strategies.register_builtin} first), guaranteed-firing crashes. *)

val scenario : space -> seed:int -> trial:int -> Chc.Scenario.t
(** Deterministic in [(space, seed, trial)]. *)
