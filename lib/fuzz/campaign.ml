module Pool = Parallel.Pool

type budget = {
  trials : int;
  time_budget : float option;
}

type finding = {
  artifact : Artifact.t;
  path : string;
  trace_path : string option;
  causal_path : string option;
}

type outcome = {
  trials_run : int;
  findings : finding list;
  elapsed : float;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let default_log _ = ()

(* One trial = generate + grade. Pure function of (space, seed, trial),
   so trials fan out over the domain pool with no shared state; only
   failures come back. The scenario's kernel is pinned to the ambient
   mode, so saved artifacts replay under the kernel that graded them.
   With [differential], a trial that passes the primary oracle is then
   re-run filtered-vs-exact and incremental-vs-rebuild; a divergence
   comes back as a finding carrying the kernel- or engine-equivalence
   oracle, and shrinks against it. *)
let run_trial ~space ~oracle ~differential ~seed trial =
  let scenario = Gen.scenario space ~seed ~trial in
  let scenario =
    { scenario with Chc.Scenario.kernel = Some (Numeric.Kernel.mode ()) }
  in
  match Oracle.check oracle scenario with
  | Oracle.Fail msg -> Some (trial, scenario, msg, oracle)
  | Oracle.Pass ->
    if not differential then None
    else begin
      match Oracle.check Oracle.Kernel_equivalence scenario with
      | Oracle.Fail msg -> Some (trial, scenario, msg, Oracle.Kernel_equivalence)
      | Oracle.Pass ->
        (match Oracle.check Oracle.Engine_equivalence scenario with
         | Oracle.Pass -> None
         | Oracle.Fail msg ->
           Some (trial, scenario, msg, Oracle.Engine_equivalence))
    end

let investigate ~out_dir ~log (trial, scenario, msg, oracle) =
  log (Printf.sprintf "trial %d FAILED: %s" trial msg);
  log (Printf.sprintf "  %s" (Chc.Scenario.describe scenario));
  let pinned = Shrink.with_pinned_schedule ~oracle scenario in
  let minimized, stats = Shrink.minimize ~oracle pinned in
  let violation =
    match Oracle.check oracle minimized with
    | Oracle.Fail m -> m
    | Oracle.Pass -> msg  (* unreachable: minimize only visits failing scenarios *)
  in
  let artifact =
    { Artifact.scenario = minimized; oracle; violation; trial;
      shrink_steps = stats.Shrink.steps }
  in
  mkdir_p out_dir;
  let path = Filename.concat out_dir (Printf.sprintf "cex-trial%04d.json" trial) in
  Artifact.save ~path artifact;
  let trace_path, causal_path =
    let trace = Obs.Trace.create () in
    match Oracle.check ~trace oracle minimized with
    | Oracle.Pass | Oracle.Fail _ ->
      let p =
        Filename.concat out_dir
          (Printf.sprintf "cex-trial%04d.trace.jsonl" trial)
      in
      Obs.Sink.write_file_exn ~path:p (fun oc -> Obs.Trace.output oc trace);
      (* Causal skeleton sidecar: the schedule-derived critical message
         chains to each decision, so a counterexample ships with the
         "why this interleaving" view, not just the raw transcript. *)
      let cp =
        Filename.concat out_dir
          (Printf.sprintf "cex-trial%04d.causal.json" trial)
      in
      let n = minimized.Chc.Scenario.config.Chc.Config.n in
      Obs.Sink.write_file_exn ~path:cp (fun oc ->
          output_string oc (Obs.Causal.to_json (Obs.Causal.analyze ~n trace));
          output_char oc '\n');
      (Some p, Some cp)
  in
  Option.iter (fun p -> log (Printf.sprintf "  causal: %s" p)) causal_path;
  log
    (Printf.sprintf "  minimized in %d steps (%d executions): %s" stats.Shrink.steps
       stats.Shrink.attempts
       (Chc.Scenario.describe minimized));
  log (Printf.sprintf "  artifact: %s" path);
  { artifact; path; trace_path; causal_path }

let run ?(space = Gen.default_space) ?(oracle = Oracle.Paper_properties)
    ?(differential = false) ?(out_dir = "fuzz-artifacts") ?(max_findings = 3)
    ?(log = default_log) ~seed budget =
  Strategies.register_builtin ();
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) budget.time_budget in
  let expired () =
    match deadline with
    | None -> false
    | Some d -> Unix.gettimeofday () >= d
  in
  let pool = Pool.global () in
  let batch_size = Stdlib.max 4 (2 * Pool.size pool) in
  let trials_run = ref 0 in
  let findings = ref [] in
  let next = ref 0 in
  while
    !next < budget.trials
    && List.length !findings < max_findings
    && not (expired ())
  do
    let batch =
      List.init (Stdlib.min batch_size (budget.trials - !next)) (fun i -> !next + i)
    in
    next := !next + List.length batch;
    trials_run := !trials_run + List.length batch;
    let failures =
      Pool.parallel_filter_map pool
        (run_trial ~space ~oracle ~differential ~seed) batch
    in
    List.iter
      (fun failure ->
         if List.length !findings < max_findings then
           findings := investigate ~out_dir ~log failure :: !findings)
      failures
  done;
  { trials_run = !trials_run;
    findings = List.rev !findings;
    elapsed = Unix.gettimeofday () -. started }
