module Q = Numeric.Q
module Rng = Runtime.Rng
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler

type space = {
  d_choices : int list;
  f_max : int;
  n_slack : int;
  eps_choices : Q.t list;
  grids : int list;
  scheduler_specs : string list;
  receive_crashes : bool;
  naive_round0 : [ `Never | `Sometimes | `Always ];
  max_budget : int;
  ensure_crash : bool;
  recover : [ `Never | `Sometimes | `Always ];
  max_recover_delay : int;
  max_keep : int;
  checkpoint_choices : int list;
  unsound_sync : bool;
}

let default_space =
  { d_choices = [ 1; 1; 1; 2; 2 ];
    f_max = 2;
    n_slack = 2;
    eps_choices = [ Q.of_ints 1 2; Q.of_ints 1 5; Q.of_ints 1 20 ];
    grids = [ 4; 16; 1000 ];
    scheduler_specs =
      [ "random"; "round-robin"; "lifo"; "lag:@faulty"; "delay-burst:7";
        "delay-burst:40"; "stab-boundary"; "starve:@faulty";
        "swarm:random+stab-boundary"; "swarm:delay-burst:11+lifo" ];
    receive_crashes = true;
    naive_round0 = `Never;
    max_budget = 40;
    ensure_crash = true;
    recover = `Sometimes;
    max_recover_delay = 40;
    max_keep = 4;
    checkpoint_choices = [ 1; 2; 4; 8 ];
    unsound_sync = false }

let choose rng l = List.nth l (Rng.int rng (List.length l))

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* Replace every occurrence of "@faulty" in a scheduler spec by the
   comma-joined faulty ids — lets the space name set-dependent
   adversaries ("lag:@faulty") without knowing the sampled set. *)
let subst_faulty spec faulty =
  let ids = String.concat "," (List.map string_of_int faulty) in
  let pat = "@faulty" in
  let plen = String.length pat in
  let buf = Buffer.create (String.length spec) in
  let i = ref 0 in
  let len = String.length spec in
  while !i < len do
    if !i + plen <= len && String.sub spec !i plen = pat then begin
      Buffer.add_string buf ids;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf spec.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let scenario space ~seed ~trial =
  let rng = Rng.create ((seed * 1_000_003) + trial) in
  let d = choose rng space.d_choices in
  let f = Rng.int rng (space.f_max + 1) in
  let n = Stdlib.max (((d + 2) * f) + 1 + Rng.int rng (space.n_slack + 1)) 3 in
  let eps = choose rng space.eps_choices in
  let config = Chc.Config.make ~n ~f ~d ~eps ~lo:Q.zero ~hi:Q.one in
  let grid = choose rng space.grids in
  let inputs = Chc.Scenario.random_inputs ~config ~rng ~grid () in
  (* f is an upper bound: sampling fewer actual crashes than the
     configured fault bound is where disagreement lives (with exactly
     n - f live senders every process freezes the same round-t message
     set and all hulls collapse to equality; divergence needs spare
     live senders). *)
  let crashers = Rng.int rng (f + 1) in
  (* A recovery-focused space needs crashes to recover from. *)
  let crashers =
    if space.recover = `Always && f > 0 then Stdlib.max crashers 1
    else crashers
  in
  let faulty =
    take crashers (Rng.shuffle rng (List.init n Fun.id)) |> List.sort compare
  in
  let crash = Array.make n Crash.Never in
  List.iter
    (fun i ->
       let budget = Rng.int rng (space.max_budget + 1) in
       let recovers =
         match space.recover with
         | `Never -> false
         | `Always -> true
         | `Sometimes -> Rng.int rng 3 = 0
       in
       crash.(i) <-
         (if recovers then
            let trigger =
              if space.receive_crashes && Rng.bool rng then
                Crash.Receives budget
              else Crash.Sends budget
            in
            Crash.Crash_recover
              { trigger;
                delay = Rng.int rng (space.max_recover_delay + 1);
                keep = Rng.int rng (space.max_keep + 1) }
          else if space.receive_crashes && Rng.bool rng then
            Crash.After_receives budget
          else Crash.After_sends budget))
    faulty;
  let has_recover =
    Array.exists
      (function Crash.Crash_recover _ -> true | _ -> false)
      crash
  in
  (* The WAL config is sampled when recovery is in play: always under
     [unsound_sync] (the teeth-demo space), else half the time (the
     other half exercises the plan-armed default config). *)
  let wal =
    if space.unsound_sync || (has_recover && Rng.bool rng) then
      Some
        { Runtime.Wal.checkpoint_every = choose rng space.checkpoint_choices;
          sync =
            (if space.unsound_sync then Runtime.Wal.Unsound
             else Runtime.Wal.Strict) }
    else None
  in
  let round0 =
    match space.naive_round0 with
    | `Never -> `Stable_vector
    | `Always -> `Naive
    | `Sometimes -> if Rng.int rng 8 = 0 then `Naive else `Stable_vector
  in
  let spec = subst_faulty (choose rng space.scheduler_specs) faulty in
  let scheduler =
    match Scheduler.of_spec spec with
    | Ok t -> t
    | Error e -> invalid_arg (Printf.sprintf "Gen: bad scheduler spec %S: %s" spec e)
  in
  let sim_seed = Rng.int rng 1_000_000 in
  let t =
    Chc.Scenario.make ~config ~inputs ~crash ~scheduler ~seed:sim_seed ~round0
      ?wal ()
  in
  if space.ensure_crash then Chc.Scenario.ensure_crashes t else t
