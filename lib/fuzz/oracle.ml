module Q = Numeric.Q
module Json = Codec.Json

type t =
  | Paper_properties
  | Agreement_within of Q.t
  | Kernel_equivalence
  | Engine_equivalence

type verdict =
  | Pass
  | Fail of string

let name = function
  | Paper_properties -> "paper-properties"
  | Agreement_within eps -> Printf.sprintf "agreement-within:%s" (Q.to_string eps)
  | Kernel_equivalence -> "kernel-equivalence"
  | Engine_equivalence -> "engine-equivalence"

let to_json = function
  | Paper_properties -> Json.Obj [ ("kind", Json.Str "paper-properties") ]
  | Agreement_within eps ->
    Json.Obj
      [ ("kind", Json.Str "agreement-within");
        ("eps", Json.Str (Q.to_string eps)) ]
  | Kernel_equivalence -> Json.Obj [ ("kind", Json.Str "kernel-equivalence") ]
  | Engine_equivalence -> Json.Obj [ ("kind", Json.Str "engine-equivalence") ]

let ( let* ) r f = Result.bind r f

let of_json j =
  let* kind = Json.str_field "kind" j in
  match kind with
  | "paper-properties" -> Ok Paper_properties
  | "agreement-within" ->
    let* s = Json.str_field "eps" j in
    (match Q.of_string s with
     | eps when Q.gt eps Q.zero -> Ok (Agreement_within eps)
     | _ -> Error "agreement-within: eps must be positive"
     | exception (Invalid_argument _ | Failure _) ->
       Error (Printf.sprintf "agreement-within: %S is not a rational" s))
  | "kernel-equivalence" -> Ok Kernel_equivalence
  | "engine-equivalence" -> Ok Engine_equivalence
  | k -> Error (Printf.sprintf "unknown oracle kind %S" k)

(* Grading failures are themselves findings: an execution that blows
   the step limit is a liveness violation, and any other exception is
   an engine bug the fuzzer should surface rather than swallow. *)
let grade oracle (report : Chc.Executor.report) =
  match oracle with
  | Kernel_equivalence | Engine_equivalence ->
    (* Graded from two runs, not one report — see [check]. *)
    invalid_arg "Oracle.grade: differential oracles are graded by check"
  | Paper_properties ->
    if not report.Chc.Executor.terminated then
      Fail "termination: a fault-free process never decided"
    else if not report.Chc.Executor.valid then
      Fail "validity: an output leaves the hull of correct inputs"
    else if not report.Chc.Executor.decision_stable then
      Fail "durability: a recovered process changed its externalized decision"
    else if not report.Chc.Executor.agreement_ok then
      Fail
        (Printf.sprintf "agreement: d_H^2 = %s >= eps^2"
           (match report.Chc.Executor.agreement2 with
            | Some a2 -> Q.to_string a2
            | None -> "?"))
    else if not report.Chc.Executor.optimal then
      Fail "optimality: I_Z not contained in some h_i[t]"
    else Pass
  | Agreement_within eps ->
    if not report.Chc.Executor.terminated then
      Fail "termination: a fault-free process never decided"
    else
      (match report.Chc.Executor.agreement2 with
       | None -> Pass
       | Some a2 ->
         if Q.lt a2 (Q.square eps) then Pass
         else
           Fail
             (Printf.sprintf "agreement: d_H^2 = %s >= %s^2" (Q.to_string a2)
                (Q.to_string eps)))

(* Shared comparison for the differential oracles: two runs of the
   same scenario diverge iff the termination round or any per-process
   decided polytope differs. *)
let decision_divergence ~tag ~base_name ~other_name
    (base : Chc.Executor.report) (other : Chc.Executor.report) =
  let bo = base.Chc.Executor.result.Chc.Cc.outputs in
  let tb = base.Chc.Executor.result.Chc.Cc.t_end in
  let oo = other.Chc.Executor.result.Chc.Cc.outputs in
  let to_ = other.Chc.Executor.result.Chc.Cc.t_end in
  if tb <> to_ then
    Some
      (Printf.sprintf "%s: t_end %d under %s vs %d under %s" tag tb base_name
         to_ other_name)
  else begin
    let diverging = ref None in
    Array.iteri
      (fun i (a : Geometry.Polytope.t option) ->
         if !diverging = None then
           match a, oo.(i) with
           | None, None -> ()
           | Some p, Some q when Geometry.Polytope.equal p q -> ()
           | _ -> diverging := Some i)
      bo;
    match !diverging with
    | None -> None
    | Some i ->
      Some
        (Printf.sprintf "%s: process %d decided differently under %s vs %s"
           tag i base_name other_name)
  end

(* Differential grading: the same scenario executed under every
   kernel, memo tables bypassed so one kernel's run cannot serve
   values another cached (a cross-kernel hit would hide exactly the
   divergence this oracle exists to catch). The exact run is the
   oracle; the filtered and staged runs must match it on what the
   protocol decides: the per-process output polytopes and the
   termination round. *)
let grade_kernel_equivalence ?trace scenario =
  let run_under ?trace m =
    Parallel.Memo.with_bypass (fun () ->
        Chc.Executor.run ?trace
          { scenario with Chc.Scenario.kernel = Some m })
  in
  (* Only the exact (oracle) run records into [trace]: all runs share
     the schedule, and appending several transcripts would corrupt the
     pinned-schedule view the shrinker reads back. *)
  let exact = run_under ?trace Numeric.Kernel.Exact in
  let against m =
    let other = run_under m in
    decision_divergence ~tag:"kernel-divergence" ~base_name:"exact"
      ~other_name:(Numeric.Kernel.to_string m) exact other
  in
  let rec first_divergence = function
    | [] -> Pass
    | m :: rest ->
      (match against m with None -> first_divergence rest | Some msg -> Fail msg)
  in
  first_divergence [ Numeric.Kernel.Filtered; Numeric.Kernel.Staged ]

(* Differential grading of the polytope engines: the same scenario
   executed with the from-scratch rebuild engine (the oracle) and with
   the incremental engine under a fresh handle, memo tables bypassed
   so neither run can serve hull structure the other cached. Any
   difference in the decided polytopes or the termination round
   convicts the incremental delta/warm-start machinery. *)
let grade_engine_equivalence ?trace scenario =
  let rebuild =
    Parallel.Memo.with_bypass (fun () ->
        Geometry.Poly_engine.with_mode Geometry.Poly_engine.Rebuild
          (fun () -> Chc.Executor.run ?trace scenario))
  in
  let incr =
    Parallel.Memo.with_bypass (fun () ->
        Geometry.Poly_engine.with_mode Geometry.Poly_engine.Incremental
          (fun () ->
             Geometry.Poly_engine.with_handle
               (Geometry.Poly_engine.create_handle ())
               (fun () -> Chc.Executor.run scenario)))
  in
  match
    decision_divergence ~tag:"engine-divergence" ~base_name:"rebuild"
      ~other_name:"incremental" rebuild incr
  with
  | None -> Pass
  | Some msg -> Fail msg

let check ?trace oracle scenario =
  match
    match oracle with
    | Kernel_equivalence -> grade_kernel_equivalence ?trace scenario
    | Engine_equivalence -> grade_engine_equivalence ?trace scenario
    | _ -> grade oracle (Chc.Executor.run ?trace scenario)
  with
  | verdict -> verdict
  | exception Runtime.Sim.Step_limit_exceeded ->
    Fail "step-limit: execution exceeded the simulator step bound"
  | exception exn -> Fail (Printf.sprintf "engine: %s" (Printexc.to_string exn))
