module Q = Numeric.Q
module Json = Codec.Json

type t =
  | Paper_properties
  | Agreement_within of Q.t

type verdict =
  | Pass
  | Fail of string

let name = function
  | Paper_properties -> "paper-properties"
  | Agreement_within eps -> Printf.sprintf "agreement-within:%s" (Q.to_string eps)

let to_json = function
  | Paper_properties -> Json.Obj [ ("kind", Json.Str "paper-properties") ]
  | Agreement_within eps ->
    Json.Obj
      [ ("kind", Json.Str "agreement-within");
        ("eps", Json.Str (Q.to_string eps)) ]

let ( let* ) r f = Result.bind r f

let of_json j =
  let* kind = Json.str_field "kind" j in
  match kind with
  | "paper-properties" -> Ok Paper_properties
  | "agreement-within" ->
    let* s = Json.str_field "eps" j in
    (match Q.of_string s with
     | eps when Q.gt eps Q.zero -> Ok (Agreement_within eps)
     | _ -> Error "agreement-within: eps must be positive"
     | exception (Invalid_argument _ | Failure _) ->
       Error (Printf.sprintf "agreement-within: %S is not a rational" s))
  | k -> Error (Printf.sprintf "unknown oracle kind %S" k)

(* Grading failures are themselves findings: an execution that blows
   the step limit is a liveness violation, and any other exception is
   an engine bug the fuzzer should surface rather than swallow. *)
let grade oracle (report : Chc.Executor.report) =
  match oracle with
  | Paper_properties ->
    if not report.Chc.Executor.terminated then
      Fail "termination: a fault-free process never decided"
    else if not report.Chc.Executor.valid then
      Fail "validity: an output leaves the hull of correct inputs"
    else if not report.Chc.Executor.agreement_ok then
      Fail
        (Printf.sprintf "agreement: d_H^2 = %s >= eps^2"
           (match report.Chc.Executor.agreement2 with
            | Some a2 -> Q.to_string a2
            | None -> "?"))
    else if not report.Chc.Executor.optimal then
      Fail "optimality: I_Z not contained in some h_i[t]"
    else Pass
  | Agreement_within eps ->
    if not report.Chc.Executor.terminated then
      Fail "termination: a fault-free process never decided"
    else
      (match report.Chc.Executor.agreement2 with
       | None -> Pass
       | Some a2 ->
         if Q.lt a2 (Q.square eps) then Pass
         else
           Fail
             (Printf.sprintf "agreement: d_H^2 = %s >= %s^2" (Q.to_string a2)
                (Q.to_string eps)))

let check ?trace oracle scenario =
  match Chc.Executor.run ?trace scenario with
  | report -> grade oracle report
  | exception Runtime.Sim.Step_limit_exceeded ->
    Fail "step-limit: execution exceeded the simulator step bound"
  | exception exn -> Fail (Printf.sprintf "engine: %s" (Printexc.to_string exn))
