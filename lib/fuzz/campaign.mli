(** The fuzzing campaign — randomized adversary exploration, fanned out
    over the parallel domain pool.

    Each trial is a pure function of (space, campaign seed, trial
    index): generate a scenario ({!Gen}), execute and grade it
    ({!Oracle}). Trials run in batches over {!Parallel.Pool}; any
    failure is then shrunk sequentially ({!Shrink}) to a minimal
    counterexample and written to [out_dir] as a replayable
    {!Artifact} (plus the minimized run's {!Obs.Trace} transcript as
    [*.trace.jsonl]).

    With the same (space, oracle, seed, trials) and no time budget the
    campaign is deterministic — batch boundaries only group work; they
    never change which trials run or what each one does. *)

type budget = {
  trials : int;
  time_budget : float option;  (** wall-clock seconds; checked between batches *)
}

type finding = {
  artifact : Artifact.t;
  path : string;                (** artifact JSON on disk *)
  trace_path : string option;   (** minimized run's transcript (JSONL) *)
  causal_path : string option;
      (** {!Obs.Causal} skeleton of the minimized run — per-process
          critical message chains in scheduler steps *)
}

type outcome = {
  trials_run : int;
  findings : finding list;  (** in trial order; empty = clean campaign *)
  elapsed : float;
}

val run :
  ?space:Gen.space ->
  ?oracle:Oracle.t ->
  ?differential:bool ->
  ?out_dir:string ->
  ?max_findings:int ->
  ?log:(string -> unit) ->
  seed:int ->
  budget ->
  outcome
(** Run a campaign. Registers the fuzzer's scheduler strategies
    (idempotent). [max_findings] (default 3) bounds how many failures
    are shrunk and written — further failures in the same batch are
    dropped and the campaign stops. [log] receives one-line progress
    messages (default: silent). [differential] (default [false])
    additionally grades every trial that passes the primary oracle
    with {!Oracle.Kernel_equivalence}; divergences are shrunk and
    saved like any other finding, with that oracle in the artifact. *)
