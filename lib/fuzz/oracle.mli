(** Property oracles — what the fuzzer grades an execution against.

    [Paper_properties] is the real thing: every property the paper
    proves (termination, validity, ε-agreement, optimality), exactly as
    {!Chc.Executor} certifies them. [Agreement_within] substitutes an
    explicit agreement threshold for the configured ε — its intended
    use is the {e canary}: grading the correct protocol against a
    deliberately too-strict threshold manufactures real, reproducible
    violations, which is how the test suite proves the campaign and the
    shrinker actually work end-to-end.

    The oracle travels inside the counterexample artifact, so
    [chc_sim replay] re-grades with the same check that flagged the
    run. *)

module Q = Numeric.Q

type t =
  | Paper_properties
      (** all four properties of the paper, graded exactly — over the
          fault-free {e and recovered} processes in crash-recovery
          mode, plus decision stability (no recovered process may
          change a decision it externalized before crashing) *)
  | Agreement_within of Q.t
      (** termination plus [d_H² < eps²] for the given [eps],
          ignoring the scenario's configured ε *)
  | Kernel_equivalence
      (** differential check of the filtered arithmetic kernel against
          the exact one: the scenario is executed under both
          ({!Numeric.Kernel.mode}), with memo tables bypassed so the
          runs are independent, and any difference in the decided
          polytopes or the termination round is a failure *)
  | Engine_equivalence
      (** differential check of the incremental polytope engine against
          the from-scratch rebuild engine
          ({!Geometry.Poly_engine.mode}): the scenario is executed
          under both, the incremental leg under a fresh engine handle
          and with memo tables bypassed, and any difference in the
          decided polytopes or the termination round is a failure *)

type verdict = Pass | Fail of string
(** [Fail] carries a one-line human reason. Engine escapes are
    verdicts too: [Step_limit_exceeded] grades as a liveness failure
    and any other exception as an engine bug — the fuzzer surfaces
    both rather than crashing the campaign. *)

val name : t -> string

val to_json : t -> Codec.Json.t
val of_json : Codec.Json.t -> (t, string) result

val check : ?trace:Obs.Trace.t -> t -> Chc.Scenario.t -> verdict
(** Execute the scenario ({!Chc.Executor.run}) and grade it. *)
