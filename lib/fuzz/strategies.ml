module Scheduler = Runtime.Scheduler
module Rng = Runtime.Rng

let nth_channel candidates k = fst (List.nth candidates k)

(* Starve one source per time window, rotating through the sources in
   id order: traffic from the starved process piles up for [period]
   steps and is released in a burst when the window moves on. Fair in
   the limit (every window eventually starves someone else). *)
let delay_burst ~period =
  if period <= 0 then invalid_arg "Strategies.delay_burst: period must be > 0";
  Scheduler.make ~name:"delay-burst" ~params:(string_of_int period) @@ fun () ->
  fun ~rng ~step ~candidates ->
  let srcs =
    List.sort_uniq compare
      (List.map (fun (c, _) -> c.Scheduler.src) candidates)
  in
  let starved = List.nth srcs (step / period mod List.length srcs) in
  let pool =
    List.filter (fun (c, _) -> c.Scheduler.src <> starved) candidates
  in
  let pool = if pool = [] then candidates else pool in
  nth_channel pool (Rng.int rng (List.length pool))

(* Keep every receiver as close to the stabilization boundary as
   possible: always deliver to the process that has received the
   fewest messages so far (rng tie-break), so all stable-vector views
   fill in lock-step and cut-off decisions happen at the same count
   everywhere. Stateful — the per-receiver counts live in the closure,
   so every execution instantiates a fresh copy and replays exactly. *)
let stab_boundary =
  Scheduler.make ~name:"stab-boundary" @@ fun () ->
  let counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let count d = Option.value (Hashtbl.find_opt counts d) ~default:0 in
  fun ~rng ~step:_ ~candidates ->
    let least =
      List.fold_left
        (fun acc (c, _) ->
           let k = count c.Scheduler.dst in
           match acc with Some (_, best) when best <= k -> acc | _ -> Some (c.Scheduler.dst, k))
        None candidates
    in
    let target = match least with Some (d, _) -> d | None -> assert false in
    let pool =
      List.filter (fun (c, _) -> c.Scheduler.dst = target) candidates
    in
    let c = nth_channel pool (Rng.int rng (List.length pool)) in
    Hashtbl.replace counts c.Scheduler.dst (count c.Scheduler.dst + 1);
    c

(* Starve a fixed set of destinations: deliveries TO the listed
   processes are postponed whenever any other channel is non-empty.
   Built to attack crash-recovery rejoin — a recovering process's
   state-transfer answers are exactly deliveries to it, so starving it
   maximizes the window in which it runs on replayed state alone.
   Quiescence still drains the starved channels eventually (when only
   they remain), so the adversary delays, never loses, messages. *)
let starve ~ids =
  let params = String.concat "," (List.map string_of_int ids) in
  Scheduler.make ~name:"starve" ~params @@ fun () ->
  fun ~rng ~step:_ ~candidates ->
  let pool =
    List.filter (fun (c, _) -> not (List.mem c.Scheduler.dst ids)) candidates
  in
  let pool = if pool = [] then candidates else pool in
  nth_channel pool (Rng.int rng (List.length pool))

(* A random mixture: each step one sub-strategy (uniform rng choice)
   makes the pick. Stateful sub-strategies keep their state across
   steps — the swarm instantiates each exactly once per execution. *)
let swarm subs =
  (match subs with
   | [] -> invalid_arg "Strategies.swarm: needs at least one sub-strategy"
   | _ -> ());
  let params = String.concat "+" (List.map Scheduler.to_spec subs) in
  Scheduler.make ~name:"swarm" ~params @@ fun () ->
  let picks = Array.of_list (List.map Scheduler.instantiate subs) in
  fun ~rng ~step ~candidates ->
    let pick = picks.(Rng.int rng (Array.length picks)) in
    pick ~rng ~step ~candidates

let ( let* ) r f = Result.bind r f

let swarm_of_spec p =
  let parts =
    String.split_on_char '+' p |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest ->
      if String.length spec >= 5 && String.sub spec 0 5 = "swarm" then
        Error "sub-strategies cannot themselves be swarms"
      else
        let* t = Scheduler.of_spec spec in
        go (t :: acc) rest
  in
  let* subs = go [] parts in
  match subs with
  | [] -> Error "needs at least one sub-strategy (\"+\"-separated specs)"
  | _ -> Ok (swarm subs)

let register_builtin () =
  Scheduler.register ~name:"delay-burst" (fun p ->
      match p with
      | "" -> Ok (delay_burst ~period:40)
      | p ->
        (match int_of_string_opt p with
         | Some k when k > 0 -> Ok (delay_burst ~period:k)
         | Some _ | None ->
           Error (Printf.sprintf "period must be a positive integer (got %S)" p)));
  Scheduler.register ~name:"starve" (fun p ->
      let parts =
        String.split_on_char ',' p |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let rec go acc = function
        | [] -> Ok (starve ~ids:(List.rev acc))
        | s :: rest ->
          (match int_of_string_opt s with
           | Some i when i >= 0 -> go (i :: acc) rest
           | Some _ | None ->
             Error
               (Printf.sprintf "destination ids must be non-negative \
                                integers (got %S)" s))
      in
      go [] parts);
  Scheduler.register ~name:"stab-boundary" (fun p ->
      match p with
      | "" -> Ok stab_boundary
      | p -> Error (Printf.sprintf "takes no parameters (got %S)" p));
  Scheduler.register ~name:"swarm" swarm_of_spec
