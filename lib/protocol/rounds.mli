(** Asynchronous round bookkeeping for Algorithm CC's rounds [t >= 1].

    A process in round [t] collects round-[t] messages until it has
    heard from [threshold = n - f] distinct senders {e for the first
    time} (line 12 of Algorithm CC); the multiset frozen at that moment
    is [Y_i[t]] — later round-[t] arrivals must not join it. Messages
    for future rounds arrive early under asynchrony and are buffered
    here until the process reaches that round. *)

type 'a t

val create : threshold:int -> 'a t

val add : 'a t -> round:int -> src:int -> 'a -> unit
(** Record a message. Duplicate (round, src) pairs are rejected with
    [Invalid_argument] — channels deliver exactly once and correct
    processes send once per round, so a duplicate is a harness bug. *)

val ready : 'a t -> round:int -> bool
(** Has the round reached its threshold (or already frozen)? *)

val freeze : 'a t -> round:int -> (int * 'a) list
(** The first [threshold] messages of the round in arrival order, as
    [(sender, payload)]; freezes the set on first call so the result
    never changes afterwards. @raise Invalid_argument if the round is
    not {!ready}. *)

val count : 'a t -> round:int -> int
(** Messages received so far for a round (frozen rounds report the
    frozen size). *)

val mem : 'a t -> round:int -> src:int -> bool
(** Has this (round, sender) pair already been recorded? Crash-recovery
    rejoin re-broadcasts make benign duplicates possible; callers guard
    {!add} with this instead of catching its [Invalid_argument]. *)

(** {1 Checkpoint support} *)

val dump : 'a t -> (int * (int * 'a) list * bool) list
(** Every round's arrivals in arrival order plus its frozen flag,
    sorted by round — enough to {!restore} an equivalent table (the
    frozen multiset is always the first [threshold] arrivals). *)

val restore : threshold:int -> (int * (int * 'a) list * bool) list -> 'a t
(** Rebuild a table from {!dump} output.
    @raise Invalid_argument if a frozen round has fewer than
    [threshold] arrivals. *)
