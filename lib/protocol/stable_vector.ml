type 'a entry = { origin : int; value : 'a }

(* Views are kept sorted by origin; in the crash model a process
   broadcasts a single input, so [origin] is a key. *)
type 'a msg = View of 'a entry list

let pp_msg pp_value fmt (View entries) =
  Format.fprintf fmt "view{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f e -> Format.fprintf f "%d:%a" e.origin pp_value e.value))
    entries

type 'a state = {
  n : int;
  f : int;
  me : int;
  emit : (Obs.Trace.event -> unit) option;
  broadcast : 'a msg -> unit;
  mutable view : 'a entry list;
  (* Who has sent exactly which view. Association list keyed by view;
     tiny sizes (each process sends at most n distinct views). *)
  mutable votes : ('a entry list * int list) list;
  mutable stable : 'a entry list option;
}

let view_equal v1 v2 =
  List.length v1 = List.length v2
  && List.for_all2 (fun a b -> a.origin = b.origin) v1 v2

let merge v1 v2 =
  (* Union of origin-keyed sorted lists. *)
  let rec go a b =
    match a, b with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys ->
      if x.origin = y.origin then x :: go xs ys
      else if x.origin < y.origin then x :: go xs b
      else y :: go a ys
  in
  go v1 v2

let record_vote t sender view =
  let rec go = function
    | [] -> [(view, [sender])]
    | (v, senders) :: rest when view_equal v view ->
      let senders =
        if List.mem sender senders then senders else sender :: senders
      in
      (v, senders) :: rest
    | kv :: rest -> kv :: go rest
  in
  t.votes <- go t.votes

(* A process is stable when n - f distinct processes (itself included)
   have transmitted exactly its OWN current view. Votes for other
   views are recorded — the view may grow into them — but do not
   trigger stability: this is the ABDPR semantics, and it matters.
   (Counting any view would, under FIFO channels, let stale echoes of
   a smaller view stabilize a process that has already moved past it,
   collapsing exactly the view splits the containment property is
   there to discipline.) *)
let check_stable t =
  if t.stable = None then begin
    let threshold = t.n - t.f in
    match
      List.find_opt
        (fun (view, senders) ->
           view_equal view t.view && List.length senders >= threshold)
        t.votes
    with
    | Some (view, _) ->
      t.stable <- Some view;
      (match t.emit with
       | None -> ()
       | Some emit ->
         emit (Obs.Trace.Stable { pid = t.me; view = List.length view }))
    | None -> ()
  end

let announce t =
  (* Our own transmission of the current view counts as a vote. *)
  record_vote t t.me t.view;
  t.broadcast (View t.view);
  check_stable t

let create ?emit ~n ~f ~me ~value ~broadcast () =
  if n < (2 * f) + 1 then
    invalid_arg "Stable_vector.create: requires n >= 2f + 1";
  let t =
    { n; f; me; emit; broadcast;
      view = [ { origin = me; value } ];
      votes = [];
      stable = None }
  in
  announce t;
  t

let on_receive_core t ~src (View incoming) =
  record_vote t src incoming;
  let merged = merge t.view incoming in
  let grew = not (view_equal merged t.view) in
  t.view <- merged;
  if grew then announce t else check_stable t

let on_receive t ~src view =
  if Obs.Prof.enabled () then
    Obs.Prof.with_span "sv.receive" (fun () -> on_receive_core t ~src view)
  else on_receive_core t ~src view

let result t = t.stable

let view_size t = List.length t.view

(* --- crash-recovery support ------------------------------------------- *)

let entry_pairs entries = List.map (fun e -> (e.origin, e.value)) entries
let entries_of_pairs pairs =
  List.map (fun (origin, value) -> { origin; value }) pairs

let msg_entries (View entries) = entry_pairs entries
let msg_of_entries pairs = View (entries_of_pairs pairs)

let current_msg t = View t.view

let reannounce t = announce t

type 'a snapshot = {
  snap_view : (int * 'a) list;
  snap_votes : ((int * 'a) list * int list) list;
  snap_stable : (int * 'a) list option;
}

let dump t =
  { snap_view = entry_pairs t.view;
    snap_votes = List.map (fun (v, senders) -> (entry_pairs v, senders)) t.votes;
    snap_stable = Option.map entry_pairs t.stable }

let restore ?emit ~n ~f ~me ~broadcast s =
  if n < (2 * f) + 1 then
    invalid_arg "Stable_vector.restore: requires n >= 2f + 1";
  { n; f; me; emit; broadcast;
    view = entries_of_pairs s.snap_view;
    votes =
      List.map
        (fun (v, senders) -> (entries_of_pairs v, senders))
        s.snap_votes;
    stable = Option.map entries_of_pairs s.snap_stable }
