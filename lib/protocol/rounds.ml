type 'a per_round = {
  mutable arrivals : (int * 'a) list;  (* reverse arrival order *)
  mutable frozen : (int * 'a) list option;
}

type 'a t = {
  threshold : int;
  table : (int, 'a per_round) Hashtbl.t;
}

let create ~threshold =
  if threshold < 1 then invalid_arg "Rounds.create: threshold must be >= 1";
  { threshold; table = Hashtbl.create 16 }

let slot t round =
  match Hashtbl.find_opt t.table round with
  | Some s -> s
  | None ->
    let s = { arrivals = []; frozen = None } in
    Hashtbl.add t.table round s;
    s

let add t ~round ~src payload =
  let s = slot t round in
  if List.mem_assoc src s.arrivals then
    invalid_arg "Rounds.add: duplicate (round, sender)"
  else s.arrivals <- (src, payload) :: s.arrivals

let mem t ~round ~src =
  match Hashtbl.find_opt t.table round with
  | None -> false
  | Some s -> List.mem_assoc src s.arrivals

let count t ~round =
  let s = slot t round in
  match s.frozen with
  | Some l -> List.length l
  | None -> List.length s.arrivals

let ready t ~round =
  let s = slot t round in
  s.frozen <> None || List.length s.arrivals >= t.threshold

let freeze t ~round =
  let s = slot t round in
  match s.frozen with
  | Some l -> l
  | None ->
    let arrivals = List.rev s.arrivals in
    if List.length arrivals < t.threshold then
      invalid_arg "Rounds.freeze: round not ready"
    else begin
      let first = List.filteri (fun i _ -> i < t.threshold) arrivals in
      s.frozen <- Some first;
      first
    end

(* Checkpoint support: arrivals in arrival order per round, plus the
   frozen flag. Because arrivals only ever append and [freeze] takes
   the first [threshold] of them, (arrival order, frozen?) determines
   the frozen multiset — the values themselves need not be saved
   twice. *)
let dump t =
  Hashtbl.fold
    (fun round s acc -> (round, List.rev s.arrivals, s.frozen <> None) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let restore ~threshold rounds =
  let t = create ~threshold in
  List.iter
    (fun (round, arrivals, frozen) ->
       let s = slot t round in
       s.arrivals <- List.rev arrivals;
       if frozen then begin
         if List.length arrivals < threshold then
           invalid_arg "Rounds.restore: frozen round below threshold";
         s.frozen <- Some (List.filteri (fun i _ -> i < threshold) arrivals)
       end)
    rounds;
  t
