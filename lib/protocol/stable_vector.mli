(** The {e stable vector} communication primitive (Attiya et al. [2],
    as used by Algorithm CC's round 0).

    Every process broadcasts its input; processes merge every view they
    receive into their own and re-broadcast whenever their view grows.
    A process is {e stable} once [n - f] distinct processes (itself
    included) have transmitted exactly its own current view — votes for
    other views are remembered (the view may grow into them) but do not
    trigger stability.

    With at most [f] crash faults and [n >= 2f + 1], the returned views
    [R_i] satisfy the two properties the paper relies on:

    - {b Liveness}: every process that does not crash obtains a stable
      view with at least [n - f] entries;
    - {b Containment}: any two stable views are ordered by inclusion
      ([R_i ⊆ R_j] or [R_j ⊆ R_i]).

    The module is transport-agnostic: callers hand in a [broadcast]
    callback and feed received messages to {!on_receive}. A process
    must keep feeding messages {e after} its own view stabilizes — the
    primitive needs continued participation for others to terminate. *)

type 'a entry = { origin : int; value : 'a }
(** One process's contribution, tagged with its identity (the paper's
    [(x_k, k, 0)] tuple, round tag implied). *)

type 'a msg
(** A view broadcast. *)

val pp_msg :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a msg -> unit

type 'a state

val create :
  ?emit:(Obs.Trace.event -> unit) ->
  n:int -> f:int -> me:int -> value:'a ->
  broadcast:('a msg -> unit) ->
  unit ->
  'a state
(** Initialize and send the first view. Pure crash-fault setting
    requires [n >= 2f + 1]. @raise Invalid_argument otherwise.
    When an [emit] callback is given, a [Stable] event is passed to it
    the moment the view stabilizes (the protocol-level milestone
    Algorithm CC's round 0 waits for). Like [broadcast], the callback
    keeps the primitive transport- and observer-agnostic: a sans-IO
    caller routes the event through its own effect stream so it
    interleaves with the announce's sends in true order. *)

val on_receive : 'a state -> src:int -> 'a msg -> unit
(** Merge an incoming view (credited to its sender — stability counts
    distinct senders of identical views); re-broadcasts via the
    [broadcast] given at creation when the local view grows. *)

val result : 'a state -> 'a entry list option
(** The first stable view, once one exists; entries sorted by origin.
    Stays fixed after first becoming [Some]. *)

val view_size : 'a state -> int
(** Current (possibly unstable) view size — observability for tests. *)

(** {1 Crash-recovery support}

    A recovering process must re-enter round 0 with its replayed view
    {e and} vote table (stability counts distinct senders — losing the
    votes would stall it), and must be able to re-externalize its
    current view after the replay (its pre-crash announce may have
    reached only some processes). Messages are made transparent so the
    durability layer can log and replay them. *)

val msg_entries : 'a msg -> (int * 'a) list
(** The view a message carries, as (origin, value) pairs sorted by
    origin — the WAL's serializable form of an SV delivery. *)

val msg_of_entries : (int * 'a) list -> 'a msg
(** Inverse of {!msg_entries} (pairs must be sorted by origin, as
    {!msg_entries} yields them). *)

val current_msg : 'a state -> 'a msg
(** The process's current (possibly unstable) view as a message — what
    a rejoin responder sends the recovering process directly. *)

val reannounce : 'a state -> unit
(** Re-broadcast (and re-vote for) the current view via the state's
    [broadcast] callback — the recovering process's round-0 rejoin.
    Idempotent for receivers: votes deduplicate by sender. *)

type 'a snapshot = {
  snap_view : (int * 'a) list;
  snap_votes : ((int * 'a) list * int list) list;
  snap_stable : (int * 'a) list option;
}
(** Serializable checkpoint image of a state (entries as (origin,
    value) pairs). *)

val dump : 'a state -> 'a snapshot

val restore :
  ?emit:(Obs.Trace.event -> unit) ->
  n:int -> f:int -> me:int ->
  broadcast:('a msg -> unit) ->
  'a snapshot ->
  'a state
(** Rebuild a state from a {!dump}ed snapshot. Unlike {!create} this
    announces nothing — the caller decides when to {!reannounce}.
    @raise Invalid_argument unless [n >= 2f + 1]. *)
