module B = Numeric.Bigint
module Q = Numeric.Q

exception Malformed of string

(* --- writers ---------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Wire.write_varint: negative"
  else begin
    let rec go n =
      if n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr ((n land 0x7F) lor 0x80));
        go (n lsr 7)
      end
    in
    go n
  end

(* Zig-zag: interleave signs so small magnitudes stay short. *)
let write_int buf n =
  let encoded = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1 in
  write_varint buf encoded

let bigint_limb_bits = 30
let bigint_limb_mask = (1 lsl bigint_limb_bits) - 1

let write_bigint buf x =
  let s = B.sign x in
  Buffer.add_char buf (Char.chr (s + 1)); (* 0 | 1 | 2 *)
  if s <> 0 then begin
    (* Extract base-2^30 limbs, least significant first. *)
    let rec limbs acc x =
      if B.is_zero x then List.rev acc
      else begin
        let q = B.shift_right x bigint_limb_bits in
        let limb = B.to_int_exn (B.sub x (B.shift_left q bigint_limb_bits)) in
        limbs (limb :: acc) q
      end
    in
    let ls = limbs [] (B.abs x) in
    write_varint buf (List.length ls);
    List.iter (write_varint buf) ls
  end

let write_q buf (q : Q.t) =
  write_bigint buf q.Q.num;
  write_bigint buf q.Q.den

let write_vec buf v =
  write_varint buf (Geometry.Vec.dim v);
  Array.iter (write_q buf) v

let write_polytope buf p =
  write_varint buf (Geometry.Polytope.dim p);
  let verts = Geometry.Polytope.vertices p in
  write_varint buf (List.length verts);
  List.iter (write_vec buf) verts

(* --- readers ---------------------------------------------------------- *)

type reader = { bytes : string; mutable pos : int }

let reader_of_string s = { bytes = s; pos = 0 }

let reader_done r = r.pos >= String.length r.bytes

let read_byte r =
  if r.pos >= String.length r.bytes then raise (Malformed "truncated")
  else begin
    let c = Char.code r.bytes.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

let read_varint r =
  let rec go shift acc =
    if shift > 62 then raise (Malformed "varint too long")
    else begin
      let b = read_byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    end
  in
  go 0 0

let read_int r =
  let encoded = read_varint r in
  if encoded land 1 = 0 then encoded lsr 1 else -((encoded + 1) lsr 1)

let read_bigint r =
  match read_byte r with
  | 1 -> B.zero
  | (0 | 2) as s ->
    let count = read_varint r in
    if count = 0 then raise (Malformed "bigint: empty magnitude");
    let acc = ref B.zero in
    let limbs = Array.init count (fun _ -> read_varint r) in
    for i = count - 1 downto 0 do
      if limbs.(i) > bigint_limb_mask then raise (Malformed "bigint: limb range");
      acc := B.add (B.shift_left !acc bigint_limb_bits) (B.of_int limbs.(i))
    done;
    if s = 0 then B.neg !acc else !acc
  | _ -> raise (Malformed "bigint: bad sign byte")

let read_q r =
  let num = read_bigint r in
  let den = read_bigint r in
  if B.sign den <= 0 then raise (Malformed "rational: non-positive denominator")
  else Q.make num den

let read_vec r =
  let d = read_varint r in
  if d < 1 || d > 64 then raise (Malformed "vector: bad dimension")
  else Array.init d (fun _ -> read_q r)

let read_polytope r =
  let d = read_varint r in
  if d < 1 || d > 64 then raise (Malformed "polytope: bad dimension")
  else begin
    let count = read_varint r in
    if count < 1 || count > 100_000 then raise (Malformed "polytope: bad vertex count")
    else begin
      let verts = List.init count (fun _ -> read_vec r) in
      List.iter
        (fun v ->
           if Geometry.Vec.dim v <> d then
             raise (Malformed "polytope: mixed dimensions"))
        verts;
      Geometry.Polytope.of_points ~dim:d verts
    end
  end

(* --- convenience ------------------------------------------------------ *)

let with_buffer f =
  let buf = Buffer.create 64 in
  f buf;
  Buffer.contents buf

let polytope_bytes_hist =
  Obs.Metrics.histogram "chc_wire_polytope_bytes"

let polytope_to_string p =
  let encode () =
    let s = with_buffer (fun b -> write_polytope b p) in
    Obs.Metrics.observe polytope_bytes_hist (float_of_int (String.length s));
    s
  in
  if Obs.Prof.enabled () then Obs.Prof.with_span "wire.encode" encode
  else encode ()

let vec_to_string v = with_buffer (fun b -> write_vec b v)

let polytope_of_string s =
  let decode () =
    let r = reader_of_string s in
    let p = read_polytope r in
    if not (reader_done r) then raise (Malformed "polytope: trailing bytes");
    p
  in
  if Obs.Prof.enabled () then Obs.Prof.with_span "wire.decode" decode
  else decode ()

let vec_of_string s =
  let r = reader_of_string s in
  let v = read_vec r in
  if not (reader_done r) then raise (Malformed "vector: trailing bytes");
  v

(* Size queries (reporting) bypass the instrumented encode so they
   don't inflate the wire-bytes histogram with phantom messages. *)
let polytope_size p = String.length (with_buffer (fun b -> write_polytope b p))
let vec_size v = String.length (vec_to_string v)
