(** Minimal exact JSON — the textual artifact format.

    The binary {!Wire} codec is what travels between processes; this
    module is what lands on disk: saved {!Chc.Scenario} files, fuzzer
    counterexample artifacts, and their metadata. It is deliberately
    tiny and exact:
    - numbers are OCaml [int]s only — rationals travel as strings in
      [Numeric.Q] syntax ("3/4"), so no precision is ever lost and a
      scenario round-trips byte-for-byte;
    - printing is canonical (no whitespace, fields in the order given),
      so structurally equal values render identically — artifact
      equality checks are string equality;
    - parsing rejects floats, non-ASCII escapes and trailing garbage
      rather than guessing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical compact rendering (no whitespace). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the problem. *)

(** {1 Accessors}

    Result-returning field access for decoders; all errors are
    human-readable strings naming the offending key or value. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val field : string -> t -> (t, string) result
val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val int_field : string -> t -> (int, string) result
val str_field : string -> t -> (string, string) result
val list_field : string -> t -> (t list, string) result

val map_result : ('a -> ('b, string) result) -> 'a list -> ('b list, string) result
(** Sequence a decoder over a list, failing on the first error. *)
