type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Str s -> add_escaped b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         add b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         add_escaped b k;
         Buffer.add_char b ':';
         add b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') -> advance cur; skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let len = String.length word in
  if cur.pos + len <= String.length cur.s
     && String.sub cur.s cur.pos len = word
  then (cur.pos <- cur.pos + len; value)
  else fail cur (Printf.sprintf "expected %s" word)

let parse_int cur =
  let start = cur.pos in
  if peek cur = Some '-' then advance cur;
  let rec digits () =
    match peek cur with
    | Some ('0' .. '9') -> advance cur; digits ()
    | _ -> ()
  in
  digits ();
  (match peek cur with
   | Some ('.' | 'e' | 'E') ->
     fail cur "floating-point numbers are not part of this format"
   | _ -> ());
  if cur.pos = start || (cur.pos = start + 1 && cur.s.[start] = '-') then
    fail cur "expected a number";
  match int_of_string_opt (String.sub cur.s start (cur.pos - start)) with
  | Some i -> Int i
  | None -> fail cur "number out of range"

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur; Buffer.contents b
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> Buffer.add_char b '"'; advance cur
       | Some '\\' -> Buffer.add_char b '\\'; advance cur
       | Some '/' -> Buffer.add_char b '/'; advance cur
       | Some 'n' -> Buffer.add_char b '\n'; advance cur
       | Some 'r' -> Buffer.add_char b '\r'; advance cur
       | Some 't' -> Buffer.add_char b '\t'; advance cur
       | Some 'b' -> Buffer.add_char b '\b'; advance cur
       | Some 'f' -> Buffer.add_char b '\012'; advance cur
       | Some 'u' ->
         advance cur;
         if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
         let hex = String.sub cur.s cur.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 ->
            Buffer.add_char b (Char.chr code);
            cur.pos <- cur.pos + 4
          | Some _ -> fail cur "non-ASCII \\u escape unsupported"
          | None -> fail cur "malformed \\u escape")
       | _ -> fail cur "malformed escape");
      go ()
    | Some c -> Buffer.add_char b c; advance cur; go ()
  in
  go ()

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then (advance cur; List [])
    else begin
      let rec items acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; items (v :: acc)
        | Some ']' -> advance cur; List (List.rev (v :: acc))
        | _ -> fail cur "expected ',' or ']'"
      in
      items []
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then (advance cur; Obj [])
    else begin
      let rec fields acc =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; fields ((k, v) :: acc)
        | Some '}' -> advance cur; Obj (List.rev ((k, v) :: acc))
        | _ -> fail cur "expected ',' or '}'"
      in
      fields []
    end
  | Some ('-' | '0' .. '9') -> parse_int cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let ( let* ) r f = Result.bind r f

let field key v =
  match member key v with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let to_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected an integer, got %s" (to_string v))

let to_str = function
  | Str s -> Ok s
  | v -> Error (Printf.sprintf "expected a string, got %s" (to_string v))

let to_list = function
  | List l -> Ok l
  | v -> Error (Printf.sprintf "expected a list, got %s" (to_string v))

let int_field key v = let* f = field key v in to_int f
let str_field key v = let* f = field key v in to_str f
let list_field key v = let* f = field key v in to_list f

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> let* y = f x in go (y :: acc) rest
  in
  go [] l
