module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Rng = Runtime.Rng
module Crash = Runtime.Crash

type spec = Scenario.t = {
  config : Config.t;
  inputs : Vec.t array;
  crash : Crash.plan array;
  scheduler : Runtime.Scheduler.t;
  seed : int;
  round0 : Cc.round0_mode;
  prefix : (int * int) list;
  kernel : Numeric.Kernel.mode option;
  wal : Runtime.Wal.config option;
}

type report = {
  spec : spec;
  result : Cc.result;
  faulty : int list;
  recovered : int list;
  decision_stable : bool;
  correct_hull : Polytope.t;
  terminated : bool;
  valid : bool;
  valid_all_inputs : bool;
  agreement2 : Q.t option;
  agreement_ok : bool;
  iz : Polytope.t option;
  optimal : bool;
  min_output_volume : Q.t option;
  iz_volume : Q.t option;
}

let random_inputs = Scenario.random_inputs

let default_spec ~config ~seed ?faulty ?scheduler ?round0 ?max_budget
    ?ensure_crash () =
  Scenario.default ~config ~seed ?faulty ?scheduler ?round0 ?max_budget
    ?ensure_crash ()

let min_opt acc v =
  match acc with
  | None -> Some v
  | Some a -> Some (Q.min a v)

(* Per-round protocol metrics, read off a finished execution. One
   history entry = one round-t broadcast payload, so [messages] and
   [wire_bytes] reproduce exactly the accounting E5 used to do by
   hand; [diameter] reproduces E1's witness-capped max pairwise
   Hausdorff. *)
let round_metrics ?witnesses ~faulty (result : Cc.result) =
  let entries_at t =
    Array.to_list result.Cc.history
    |> List.filter_map (fun h -> List.assoc_opt t h)
  in
  let witness_polys_at t =
    match witnesses with
    | None -> []
    | Some k ->
      Array.to_list result.Cc.history
      |> List.mapi (fun i h -> (i, h))
      |> List.filter_map (fun (i, h) ->
          if List.mem i faulty then None else List.assoc_opt t h)
      |> List.filteri (fun idx _ -> idx < k)
  in
  List.filter_map
    (fun t ->
       match entries_at t with
       | [] -> None
       | entries ->
         let messages = List.length entries in
         let wire_bytes =
           List.fold_left
             (fun acc h -> acc + Codec.Wire.polytope_size h)
             0 entries
         in
         let max_vertices =
           List.fold_left
             (fun acc h -> Stdlib.max acc (List.length (Polytope.vertices h)))
             0 entries
         in
         let diameter =
           let rec pairs acc = function
             | [] -> acc
             | p :: rest ->
               pairs
                 (List.fold_left
                    (fun acc q -> Stdlib.max acc (Polytope.hausdorff p q))
                    acc rest)
                 rest
           in
           match witness_polys_at t with
           | [] | [ _ ] -> None
           | polys -> Some (pairs 0.0 polys)
         in
         Some
           { Obs.Report.round = t; messages; wire_bytes; max_vertices;
             diameter })
    (List.init (result.Cc.t_end + 1) Fun.id)

let sim_of_metrics (m : Runtime.Sim.metrics) : Obs.Report.sim =
  { Obs.Report.sent = m.Runtime.Sim.sent;
    dropped = m.Runtime.Sim.dropped;
    delivered = m.Runtime.Sim.delivered;
    dead_lettered = m.Runtime.Sim.dead_lettered;
    recoveries = m.Runtime.Sim.recoveries;
    steps = m.Runtime.Sim.steps }

let observe ?trace ?witnesses report =
  let rounds = round_metrics ?witnesses ~faulty:report.faulty report.result in
  Obs.Report.capture
    ~sim:(Some (sim_of_metrics report.result.Cc.metrics))
    ~rounds
    ?trace_events:(Option.map Obs.Trace.length trace)
    ()

let run_graded ?trace spec =
  let { config; inputs; crash; scheduler; seed; round0; prefix; kernel = _;
        wal } =
    spec
  in
  let result =
    Cc.execute ?trace ~prefix ~round0 ?wal ~config ~inputs ~crash ~scheduler
      ~seed ()
  in
  let n = config.Config.n in
  let faulty = Cc.fault_set crash in
  let fault_free =
    List.filter (fun i -> not (List.mem i faulty)) (List.init n Fun.id)
  in
  (* A process that crashed but recovered must behave like a correct
     (slow) process: the paper properties are graded over the
     fault-free *and* recovered processes. The Iz / optimality checks
     below keep the plan-based faulty set — the containment argument
     is about which inputs the adversary controls, and a recovered
     process's input was never adversarial. *)
  let recovered =
    List.filter (fun i -> result.Cc.recovered.(i)) (List.init n Fun.id)
  in
  let graded = List.sort compare (fault_free @ recovered) in
  let decision_stable = result.Cc.redecided = [] in
  let grade name f =
    if Obs.Prof.enabled () then Obs.Prof.with_span ("grade." ^ name) f
    else f ()
  in
  let correct_inputs = List.map (fun i -> inputs.(i)) graded in
  let correct_hull =
    grade "hulls" @@ fun () ->
    Polytope.of_points ~dim:config.Config.d correct_inputs
  in
  let ff_outputs =
    List.filter_map (fun i -> result.Cc.outputs.(i)) graded
  in
  let terminated = List.length ff_outputs = List.length graded in
  let valid =
    grade "validity" @@ fun () ->
    List.for_all (fun h -> Polytope.subset h correct_hull) ff_outputs
  in
  let all_hull = Polytope.of_points ~dim:config.Config.d (Array.to_list inputs) in
  let valid_all_inputs =
    grade "validity" @@ fun () ->
    List.for_all (fun h -> Polytope.subset h all_hull) ff_outputs
  in
  let agreement2 =
    grade "agreement" @@ fun () ->
    let rec pairs acc = function
      | [] -> acc
      | h :: rest ->
        let acc =
          List.fold_left
            (fun acc h' -> Q.max acc (Polytope.hausdorff2 h h'))
            acc rest
        in
        pairs acc rest
    in
    match ff_outputs with
    | [] | [_] -> None
    | _ -> Some (pairs Q.zero ff_outputs)
  in
  let agreement_ok =
    match agreement2 with
    | None -> terminated
    | Some a2 -> Q.lt a2 (Q.square config.Config.eps)
  in
  let iz = grade "iz" @@ fun () -> Iz.compute ~config ~faulty ~result in
  let optimal =
    grade "iz" @@ fun () ->
    Iz.contained_in_all_rounds ~config ~faulty ~result
  in
  let min_output_volume =
    grade "volume" @@ fun () ->
    List.fold_left
      (fun acc h ->
         match Polytope.volume h with
         | Some v -> min_opt acc v
         | None -> acc)
      None ff_outputs
  in
  let iz_volume =
    grade "volume" @@ fun () -> Option.bind iz Polytope.volume
  in
  { spec; result; faulty; recovered; decision_stable; correct_hull;
    terminated; valid; valid_all_inputs; agreement2; agreement_ok; iz;
    optimal; min_output_volume; iz_volume }

(* A scenario with a pinned kernel executes (and grades) under it;
   otherwise the ambient default applies. *)
let run ?trace spec =
  match spec.kernel with
  | Some m -> Numeric.Kernel.with_mode m (fun () -> run_graded ?trace spec)
  | None -> run_graded ?trace spec
