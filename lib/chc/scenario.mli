(** A complete, serializable description of one execution of Algorithm
    CC — the single entry-point type shared by the CLI ([chc_sim run] /
    [replay]), the experiment harness, and the fuzzer's counterexample
    artifacts.

    Executions are pure functions of a scenario (see {!Cc.execute}), so
    a scenario file {e is} the execution: [chc_sim replay file.json]
    re-runs and re-grades it byte-for-byte. The JSON form is exact —
    rationals are carried as ["num/den"] strings, never floats — and
    versioned, so artifacts produced by the fuzzer remain loadable, or
    fail loudly with a version message rather than silently drifting.

    {!Executor.run} grades a scenario against every property the paper
    proves; [Executor.spec] is this very type (re-exported), so the two
    APIs interoperate freely. *)

module Q = Numeric.Q

type t = {
  config : Config.t;
  inputs : Geometry.Vec.t array;
  crash : Runtime.Crash.plan array;
  scheduler : Runtime.Scheduler.t;
  seed : int;
  round0 : Cc.round0_mode;
  prefix : (int * int) list;
      (** forced head of the delivery schedule — empty for ordinary
          runs; the shrinker pins (then truncates) a recorded schedule
          here (see [Runtime.Sim.create]) *)
  kernel : Numeric.Kernel.mode option;
      (** arithmetic kernel to execute under: [None] leaves the ambient
          default ({!Numeric.Kernel.mode}); [Some m] makes the executor
          pin [m], so replay artifacts rerun under the kernel that
          produced the finding. Serialized only when set, keeping
          pre-kernel artifacts byte-identical. *)
  wal : Runtime.Wal.config option;
      (** write-ahead-log configuration for crash-recovery mode.
          [None] (the default, and the only v1 value): recovery arms
          itself with {!Runtime.Wal.default_config} iff any plan is
          {!Runtime.Crash.Crash_recover}. [Some c] forces the WAL on
          with [c] — the fuzzer's lever for injecting the deliberately
          broken [Unsound] sync mode. Serialized only when set. *)
}

val version : int
(** The serialization format version this build writes (2 — adds
    crash-recover plans and the optional [wal] field). *)

val oldest_readable_version : int
(** Oldest version {!of_json} still accepts (1 — pre-recovery
    artifacts load unchanged). *)

val make :
  config:Config.t ->
  inputs:Geometry.Vec.t array ->
  crash:Runtime.Crash.plan array ->
  scheduler:Runtime.Scheduler.t ->
  seed:int ->
  ?round0:Cc.round0_mode ->
  ?prefix:(int * int) list ->
  ?kernel:Numeric.Kernel.mode ->
  ?wal:Runtime.Wal.config ->
  unit ->
  t
(** Validated construction. [round0] defaults to [`Stable_vector],
    [prefix] to [[]], [kernel] and [wal] to unset.
    @raise Invalid_argument on wrong array lengths, out-of-range
    inputs, out-of-range prefix channels, or a WAL config with
    [checkpoint_every < 1]. *)

val default :
  config:Config.t ->
  seed:int ->
  ?faulty:int list ->
  ?scheduler:Runtime.Scheduler.t ->
  ?round0:Cc.round0_mode ->
  ?max_budget:int ->
  ?ensure_crash:bool ->
  ?wal:Runtime.Wal.config ->
  unit ->
  t
(** A randomized scenario: random inputs, random crash budgets for the
    given faulty set (default: processes [0 .. f-1]), random-uniform
    scheduler. Deterministic in [seed]. With [ensure_crash] (default
    [false]) the sampled budgets are clamped via {!ensure_crashes} so
    every faulty plan actually fires. *)

val random_inputs :
  config:Config.t -> rng:Runtime.Rng.t -> ?grid:int -> unit ->
  Geometry.Vec.t array
(** [n] random rational inputs on a uniform [grid × … × grid] lattice
    spanning the configured input box (default [grid = 1000]). *)

val ensure_crashes : t -> t
(** Clamp every crash budget to what a crash-free probe run of the same
    scenario (same inputs, scheduler, seed) actually performed, so each
    faulty plan is guaranteed to fire ({!Runtime.Crash.clamp}). Costs
    one extra execution. *)

val describe : t -> string
(** One-line human summary (n/f/d/ε, seed, scheduler spec, plans). *)

(** {1 Exact JSON (de)serialization} *)

type error =
  | Syntax of string
      (** the bytes are not a JSON document at all *)
  | Version of { found : int; oldest : int; newest : int }
      (** well-formed, but written by an incompatible format version *)
  | Invalid of string
      (** well-formed JSON of a readable version, but the content is
          wrong: missing/mistyped fields, unregistered scheduler names
          (register fuzzer strategies first), or anything {!make}
          would reject *)
  | Io of string  (** {!load} only: the file could not be read *)
(** Why a scenario failed to decode — typed so callers can
    distinguish user data errors (a CLI maps them to exit code 65,
    [EX_DATAERR]) from the I/O failures {!Obs.Sink.Write_error}
    already types (exit 74). *)

val error_to_string : error -> string
(** The exact human-readable messages previous versions returned,
    e.g. ["scenario version %d unsupported (this build reads %d-%d)"]. *)

exception Data_error of error
(** For callers on an exception path (registered with
    [Printexc.register_printer]); nothing in this module raises it. *)

val to_json : t -> Codec.Json.t
val of_json : Codec.Json.t -> (t, error) result

val to_string : t -> string
(** Canonical single-line JSON; equal scenarios render identically. *)

val of_string : string -> (t, error) result

val equal : t -> t -> bool
(** Equality of canonical serializations. *)

val save : path:string -> t -> unit
val load : string -> (t, error) result
