module Q = Numeric.Q
module Sim = Runtime.Sim
module Transport = Runtime.Transport

(* Algorithm CC, as the composition of [n] sans-IO {!Instance}s with
   the adversarially-scheduled {!Runtime.Sim} transport. All protocol
   logic lives in {!Instance}; this module is the driver: it wires
   instance effects to simulator endpoints, crash hooks to instance
   crashes, and assembles the execution report. *)

type round0_mode = Instance.round0_mode

type result = {
  t_end : int;
  outputs : Geometry.Polytope.t option array;
  round0_views : (int * Geometry.Vec.t) list option array;
  history : (int * Geometry.Polytope.t) list array;
  senders : (int * int list) list array;
  sent_round : (int * bool) list array;
  crashed : bool array;
  recovered : bool array;
  redecided : int list;
  wal_log : Recovery.event list array;
  sends_attempted : int array;
  receives_seen : int array;
  metrics : Runtime.Sim.metrics;
}

let fault_set crash =
  Array.to_list crash
  |> List.mapi (fun i plan -> (i, plan))
  |> List.filter_map (fun (i, plan) ->
      match plan with
      | Runtime.Crash.Never -> None
      | Runtime.Crash.After_sends _ | Runtime.Crash.After_receives _
      | Runtime.Crash.Crash_recover _ -> Some i)

let is_recover_plan = function
  | Runtime.Crash.Crash_recover _ -> true
  | Runtime.Crash.Never | Runtime.Crash.After_sends _
  | Runtime.Crash.After_receives _ -> false

let round0_polytope = Instance.round0_polytope

let execute ?trace ?(prefix = []) ?(round0 = `Stable_vector) ?wal ~config
    ~inputs ~crash ~scheduler ~seed () =
  let { Config.n; _ } = config in
  if Array.length inputs <> n then invalid_arg "Cc.execute: need n inputs";
  (* per-input validation happens in [Instance.create] *)
  if Array.length crash <> n then invalid_arg "Cc.execute: need n crash plans";
  Obs.Prof.with_span "cc.execute" @@ fun () ->
  (* Durability is armed by an explicit WAL config or by any
     crash-recovery plan; without either the WAL layer stays entirely
     out of the hot path. *)
  let recovery_on = wal <> None || Array.exists is_recover_plan crash in
  let wal_spec =
    if recovery_on then
      Some (Option.value wal ~default:Runtime.Wal.default_config)
    else None
  in
  let spec = Instance.spec ~round0 ?wal:wal_spec config in
  let insts = Array.init n (fun i -> Instance.create spec ~me:i ~input:inputs.(i)) in
  let emit =
    match trace with None -> fun _ -> () | Some tr -> Obs.Trace.emit tr
  in
  let run_effects (ep : Instance.msg Transport.ep) effs =
    let inst = insts.(ep.Transport.me) in
    let io =
      Instance.io ~send:ep.Transport.send
        ~broadcast:(fun m -> ep.Transport.broadcast m)
        ~sends:ep.Transport.sends ~emit ()
    in
    Instance.interpret inst io effs
  in
  let make i =
    let inst = insts.(i) in
    { Transport.on_start = (fun ep -> run_effects ep (Instance.start inst));
      on_receive =
        (fun ep ~src msg -> run_effects ep (Instance.handle inst ~src msg)) }
  in
  let on_crash i ~keep = Instance.crash insts.(i) ~keep in
  let on_recover (ep : Instance.msg Transport.ep) =
    run_effects ep (Instance.recover insts.(ep.Transport.me))
  in
  let sys =
    Sim.create ?trace ~prefix ~on_crash ~on_recover ~n ~seed ~scheduler ~crash
      ~make ()
  in
  Sim.run sys;

  { t_end = spec.Instance.t_end;
    outputs = Array.map Instance.poll_decision insts;
    round0_views = Array.map Instance.view insts;
    history = Array.map Instance.history insts;
    senders = Array.map Instance.senders insts;
    sent_round = Array.map Instance.sent_round insts;
    crashed = Array.init n (Sim.crashed sys);
    recovered = Array.init n (Sim.recovered_of sys);
    redecided =
      List.filter (fun i -> Instance.redecided insts.(i)) (List.init n Fun.id);
    wal_log = Array.map Instance.wal_entries insts;
    sends_attempted = Array.init n (Sim.sends_of sys);
    receives_seen = Array.init n (Sim.receives_of sys);
    metrics = Sim.metrics sys }
