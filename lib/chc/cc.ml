module Q = Numeric.Q
module Combin = Numeric.Combin
module Sim = Runtime.Sim
module SV = Protocol.Stable_vector
module Rounds = Protocol.Rounds

type round0_mode = [ `Stable_vector | `Naive ]

type msg =
  | Sv of Geometry.Vec.t SV.msg
  | Input0 of Geometry.Vec.t
  | Round of int * Geometry.Polytope.t

type result = {
  t_end : int;
  outputs : Geometry.Polytope.t option array;
  round0_views : (int * Geometry.Vec.t) list option array;
  history : (int * Geometry.Polytope.t) list array;
  senders : (int * int list) list array;
  sent_round : (int * bool) list array;
  crashed : bool array;
  sends_attempted : int array;
  receives_seen : int array;
  metrics : Runtime.Sim.metrics;
}

let fault_set crash =
  Array.to_list crash
  |> List.mapi (fun i plan -> (i, plan))
  |> List.filter_map (fun (i, plan) ->
      match plan with
      | Runtime.Crash.Never -> None
      | Runtime.Crash.After_sends _ | Runtime.Crash.After_receives _ -> Some i)

(* Line 5 of Algorithm CC: intersection over all multisets obtained by
   dropping f elements of X_i. Non-emptiness is Lemma 2 (Tverberg):
   any multiset of >= (d+1)f + 1 points admits the required common
   point, and |X_i| >= n - f >= (d+1)f + 1 by the resilience bound. *)
let round0_polytope ~dim ~f pts =
  Obs.Prof.with_span "cc.round0" @@ fun () ->
  let keep = List.length pts - f in
  if keep < 1 then invalid_arg "Cc.round0_polytope: not enough points";
  (* All C(|X_i|, f) subset hulls draw from the same input points, so
     they share one denominator grid (lazily built on the first
     construction that needs it; pool workers fall back to local
     grids, which only costs the shared scan). *)
  Numeric.Grid.with_round (fun () -> Numeric.Grid.make pts) @@ fun () ->
  (* The C(|X_i|, f) per-subset hulls are independent; fan them out
     over the domain pool (results merged in subset order, so the
     intersection below sees a scheduling-independent list). *)
  let hulls =
    Parallel.Pool.parallel_map (Parallel.Pool.global ())
      (Geometry.Polytope.of_points ~dim)
      (Combin.subsets_of_size keep pts)
  in
  match Geometry.Polytope.intersect hulls with
  | Some h -> h
  | None -> failwith "Cc: round-0 intersection empty — Lemma 2 violated"

(* Mutable per-process protocol state, captured by the handler
   closures. *)
type proc = {
  id : int;
  mutable sv : Geometry.Vec.t SV.state option;
  rounds : Geometry.Polytope.t Rounds.t;
  naive0 : Geometry.Vec.t Rounds.t;
  mutable current : int;       (* 0 while in round 0; t_end+1 once decided *)
  mutable h : Geometry.Polytope.t option;
  mutable view : (int * Geometry.Vec.t) list option;
  mutable hist : (int * Geometry.Polytope.t) list;     (* reverse order *)
  mutable snd_log : (int * int list) list;    (* reverse order *)
  mutable sent_log : (int * bool) list;       (* reverse order *)
}

let execute ?trace ?(prefix = []) ?(round0 = `Stable_vector) ~config ~inputs ~crash ~scheduler ~seed () =
  let { Config.n; f; d; _ } = config in
  if Array.length inputs <> n then invalid_arg "Cc.execute: need n inputs";
  Array.iter (Config.validate_input config) inputs;
  if Array.length crash <> n then invalid_arg "Cc.execute: need n crash plans";
  Obs.Prof.with_span "cc.execute" @@ fun () ->
  let t_end = Bounds.t_end config in
  let threshold = n - f in
  let outputs = Array.make n None in

  let emit ev =
    match trace with None -> () | Some tr -> Obs.Trace.emit tr ev
  in
  let nverts h = List.length (Geometry.Polytope.vertices h) in

  let procs =
    Array.init n (fun i ->
        { id = i;
          sv = None;
          rounds = Rounds.create ~threshold;
          naive0 = Rounds.create ~threshold;
          current = 0;
          h = None;
          view = None;
          hist = [];
          snd_log = [];
          sent_log = [] })
  in

  (* Broadcast while recording whether any copy reached a channel —
     this drives the F[t] sets of the matrix analysis. *)
  let broadcast_tracked ctx p ~round msg =
    let before = Sim.sends ctx in
    Sim.broadcast ctx msg;
    p.sent_log <- (round, Sim.sends ctx > before) :: p.sent_log
  in

  let rec enter_round ctx p t =
    p.current <- t;
    let h = Option.get p.h in
    Rounds.add p.rounds ~round:t ~src:p.id h;
    broadcast_tracked ctx p ~round:t (Round (t, h));
    try_advance ctx p

  and try_advance ctx p =
    if p.current >= 1 && p.current <= t_end
       && Rounds.ready p.rounds ~round:p.current
    then begin
      let y = Rounds.freeze p.rounds ~round:p.current in
      let h =
        Obs.Prof.with_span "cc.round" (fun () ->
            let polys = List.map snd y in
            (* Per-round grid lifecycle: every hull construction in
               this round's average shares one denominator grid. The
               build is deferred — rounds fully served by the memo
               tables never pay for the lcm scan. *)
            Numeric.Grid.with_round
              (fun () ->
                 Numeric.Grid.make_scaled ~mult:(List.length polys)
                   (List.concat_map Geometry.Polytope.vertices polys))
              (fun () -> Geometry.Polytope.average polys))
      in
      p.h <- Some h;
      p.hist <- (p.current, h) :: p.hist;
      p.snd_log <- (p.current, List.map fst y) :: p.snd_log;
      emit (Obs.Trace.Round_enter
              { pid = p.id; round = p.current; vertices = nverts h });
      if p.current = t_end then begin
        outputs.(p.id) <- Some h;
        emit (Obs.Trace.Decide
                { pid = p.id; round = t_end; vertices = nverts h });
        p.current <- t_end + 1
      end
      else enter_round ctx p (p.current + 1)
    end
  in

  let complete_round0 ctx p entries =
    p.view <- Some entries;
    let h0 = round0_polytope ~dim:d ~f (List.map snd entries) in
    p.h <- Some h0;
    p.hist <- (0, h0) :: p.hist;
    emit (Obs.Trace.Round_enter { pid = p.id; round = 0; vertices = nverts h0 });
    enter_round ctx p 1
  in

  let check_stable ctx p =
    if p.current = 0 && p.view = None then begin
      match p.sv with
      | None -> ()
      | Some st ->
        (match SV.result st with
         | Some entries ->
           complete_round0 ctx p
             (List.map (fun e -> (e.SV.origin, e.SV.value)) entries)
         | None -> ())
    end
  in

  let check_naive ctx p =
    if p.current = 0 && p.view = None
       && Rounds.ready p.naive0 ~round:0
    then complete_round0 ctx p (Rounds.freeze p.naive0 ~round:0)
  in

  let make i =
    let p = procs.(i) in
    { Sim.on_start =
        (fun ctx ->
           match round0 with
           | `Stable_vector ->
             let before = Sim.sends ctx in
             let st =
               SV.create ?trace ~n ~f ~me:i ~value:inputs.(i)
                 ~broadcast:(fun m -> Sim.broadcast ctx (Sv m)) ()
             in
             p.sent_log <- (0, Sim.sends ctx > before) :: p.sent_log;
             p.sv <- Some st;
             check_stable ctx p
           | `Naive ->
             Rounds.add p.naive0 ~round:0 ~src:i inputs.(i);
             broadcast_tracked ctx p ~round:0 (Input0 inputs.(i));
             check_naive ctx p);
      on_receive =
        (fun ctx src msg ->
           match msg with
           | Sv m ->
             (match p.sv with
              | Some st ->
                SV.on_receive st ~src m;
                check_stable ctx p
              | None -> ())
           | Input0 x ->
             Rounds.add p.naive0 ~round:0 ~src x;
             check_naive ctx p
           | Round (t, h) ->
             Rounds.add p.rounds ~round:t ~src h;
             if t = p.current then try_advance ctx p) }
  in

  let sys = Sim.create ?trace ~prefix ~n ~seed ~scheduler ~crash ~make () in
  Sim.run sys;

  { t_end;
    outputs;
    round0_views = Array.map (fun p -> p.view) procs;
    history = Array.map (fun p -> List.rev p.hist) procs;
    senders = Array.map (fun p -> List.rev p.snd_log) procs;
    sent_round = Array.map (fun p -> List.rev p.sent_log) procs;
    crashed = Array.init n (Sim.crashed sys);
    sends_attempted = Array.init n (Sim.sends_of sys);
    receives_seen = Array.init n (Sim.receives_of sys);
    metrics = Sim.metrics sys }
