module Q = Numeric.Q
module Combin = Numeric.Combin
module Sim = Runtime.Sim
module Wal = Runtime.Wal
module SV = Protocol.Stable_vector
module Rounds = Protocol.Rounds

type round0_mode = [ `Stable_vector | `Naive ]

type msg =
  | Sv of Geometry.Vec.t SV.msg
  | Input0 of Geometry.Vec.t
  | Round of int * Geometry.Polytope.t
  | Rejoin of int

type result = {
  t_end : int;
  outputs : Geometry.Polytope.t option array;
  round0_views : (int * Geometry.Vec.t) list option array;
  history : (int * Geometry.Polytope.t) list array;
  senders : (int * int list) list array;
  sent_round : (int * bool) list array;
  crashed : bool array;
  recovered : bool array;
  redecided : int list;
  wal_log : Recovery.event list array;
  sends_attempted : int array;
  receives_seen : int array;
  metrics : Runtime.Sim.metrics;
}

let fault_set crash =
  Array.to_list crash
  |> List.mapi (fun i plan -> (i, plan))
  |> List.filter_map (fun (i, plan) ->
      match plan with
      | Runtime.Crash.Never -> None
      | Runtime.Crash.After_sends _ | Runtime.Crash.After_receives _
      | Runtime.Crash.Crash_recover _ -> Some i)

let is_recover_plan = function
  | Runtime.Crash.Crash_recover _ -> true
  | Runtime.Crash.Never | Runtime.Crash.After_sends _
  | Runtime.Crash.After_receives _ -> false

(* Line 5 of Algorithm CC: intersection over all multisets obtained by
   dropping f elements of X_i. Non-emptiness is Lemma 2 (Tverberg):
   any multiset of >= (d+1)f + 1 points admits the required common
   point, and |X_i| >= n - f >= (d+1)f + 1 by the resilience bound. *)
let round0_polytope ~dim ~f pts =
  Obs.Prof.with_span "cc.round0" @@ fun () ->
  let keep = List.length pts - f in
  if keep < 1 then invalid_arg "Cc.round0_polytope: not enough points";
  (* All C(|X_i|, f) subset hulls draw from the same input points, so
     they share one denominator grid (lazily built on the first
     construction that needs it; pool workers fall back to local
     grids, which only costs the shared scan). *)
  Numeric.Grid.with_round (fun () -> Numeric.Grid.make pts) @@ fun () ->
  (* The C(|X_i|, f) per-subset hulls are independent; fan them out
     over the domain pool (results merged in subset order, so the
     intersection below sees a scheduling-independent list). *)
  let hulls =
    Parallel.Pool.parallel_map (Parallel.Pool.global ())
      (Geometry.Polytope.of_points ~dim)
      (Combin.subsets_of_size keep pts)
  in
  match Geometry.Polytope.intersect hulls with
  | Some h -> h
  | None -> failwith "Cc: round-0 intersection empty — Lemma 2 violated"

(* Mutable per-process protocol state, captured by the handler
   closures. The last block of fields is observer state that survives
   recovery resets: trace dedup watermarks and the first externalized
   decision (the anchor of the durability oracle's redecision check). *)
type proc = {
  id : int;
  mutable sv : Geometry.Vec.t SV.state option;
  mutable rounds : Geometry.Polytope.t Rounds.t;
  mutable naive0 : Geometry.Vec.t Rounds.t;
  mutable current : int;       (* 0 while in round 0; t_end+1 once decided *)
  mutable h : Geometry.Polytope.t option;
  mutable view : (int * Geometry.Vec.t) list option;
  mutable hist : (int * Geometry.Polytope.t) list;     (* reverse order *)
  mutable snd_log : (int * int list) list;    (* reverse order *)
  mutable sent_log : (int * bool) list;       (* reverse order *)
  mutable down : bool;         (* crashed, revival pending *)
  mutable replaying : bool;    (* inside the recovery replay *)
  mutable max_emitted : int;   (* highest Round_enter round emitted *)
  mutable decide_emitted : bool;
  mutable first_output : Geometry.Polytope.t option;
}

let execute ?trace ?(prefix = []) ?(round0 = `Stable_vector) ?wal ~config
    ~inputs ~crash ~scheduler ~seed () =
  let { Config.n; f; d; _ } = config in
  if Array.length inputs <> n then invalid_arg "Cc.execute: need n inputs";
  Array.iter (Config.validate_input config) inputs;
  if Array.length crash <> n then invalid_arg "Cc.execute: need n crash plans";
  Obs.Prof.with_span "cc.execute" @@ fun () ->
  let t_end = Bounds.t_end config in
  let threshold = n - f in
  let outputs = Array.make n None in
  let redecided = ref [] in

  (* Durability is armed by an explicit WAL config or by any
     crash-recovery plan; without either the WAL layer stays entirely
     out of the hot path. *)
  let recovery_on = wal <> None || Array.exists is_recover_plan crash in
  let wal_cfg = match wal with Some c -> c | None -> Wal.default_config in
  let wals : Recovery.event Wal.t array option =
    if recovery_on then Some (Array.init n (fun _ -> Wal.create wal_cfg))
    else None
  in

  let emit ev =
    match trace with None -> () | Some tr -> Obs.Trace.emit tr ev
  in
  let nverts h = List.length (Geometry.Polytope.vertices h) in

  let procs =
    Array.init n (fun i ->
        { id = i;
          sv = None;
          rounds = Rounds.create ~threshold;
          naive0 = Rounds.create ~threshold;
          current = 0;
          h = None;
          view = None;
          hist = [];
          snd_log = [];
          sent_log = [];
          down = false;
          replaying = false;
          max_emitted = -1;
          decide_emitted = false;
          first_output = None })
  in

  let wal_append p ev =
    match wals with
    | Some ws when not p.down && not p.replaying -> Wal.append ws.(p.id) ev
    | _ -> ()
  in
  (* The write barrier: called before every externalization (send,
     decide) so replay can never roll a process back behind state the
     rest of the system has observed. Under [Unsound] this is a no-op
     — the injected bug the fuzz oracle must catch. *)
  let wal_sync p =
    match wals with Some ws -> Wal.sync ws.(p.id) | None -> ()
  in

  (* Broadcast while recording whether any copy reached a channel —
     this drives the F[t] sets of the matrix analysis. During replay
     nothing is sent; the flag is conservatively recorded as [false]
     and repaired by the rejoin re-broadcast. *)
  let broadcast_tracked ctx p ~round msg =
    if p.replaying then p.sent_log <- (round, false) :: p.sent_log
    else begin
      if not p.down then wal_sync p;
      let before = Sim.sends ctx in
      Sim.broadcast ctx msg;
      p.sent_log <- (round, Sim.sends ctx > before) :: p.sent_log
    end
  in

  (* Stable-vector announces route through here: muted during replay,
     synced (write barrier) when live. *)
  let sv_broadcast ctx p m =
    if not p.down && not p.replaying then begin
      wal_sync p;
      Sim.broadcast ctx (Sv m)
    end
  in

  let rec enter_round ctx p t =
    if not p.down then begin
      p.current <- t;
      let h = Option.get p.h in
      if not (Rounds.mem p.rounds ~round:t ~src:p.id) then
        Rounds.add p.rounds ~round:t ~src:p.id h;
      broadcast_tracked ctx p ~round:t (Round (t, h));
      try_advance ctx p
    end

  and try_advance ctx p =
    if (not p.down) && p.current >= 1 && p.current <= t_end
       && Rounds.ready p.rounds ~round:p.current
    then begin
      let y = Rounds.freeze p.rounds ~round:p.current in
      let h =
        Obs.Prof.with_span "cc.round" (fun () ->
            let polys = List.map snd y in
            (* Per-round grid lifecycle: every hull construction in
               this round's average shares one denominator grid. The
               build is deferred — rounds fully served by the memo
               tables never pay for the lcm scan. *)
            Numeric.Grid.with_round
              (fun () ->
                 Numeric.Grid.make_scaled ~mult:(List.length polys)
                   (List.concat_map Geometry.Polytope.vertices polys))
              (fun () -> Geometry.Polytope.average polys))
      in
      p.h <- Some h;
      p.hist <- (p.current, h) :: p.hist;
      p.snd_log <- (p.current, List.map fst y) :: p.snd_log;
      if (not p.replaying) && p.current > p.max_emitted then begin
        p.max_emitted <- p.current;
        emit (Obs.Trace.Round_enter
                { pid = p.id; round = p.current; vertices = nverts h })
      end;
      if p.current = t_end then begin
        if not p.replaying then wal_sync p;   (* decisions are durable *)
        (match p.first_output with
         | None -> p.first_output <- Some h
         | Some h0 ->
           if not (Geometry.Polytope.equal h0 h)
              && not (List.mem p.id !redecided)
           then redecided := p.id :: !redecided);
        outputs.(p.id) <- Some h;
        if (not p.replaying) && not p.decide_emitted then begin
          p.decide_emitted <- true;
          emit (Obs.Trace.Decide
                  { pid = p.id; round = t_end; vertices = nverts h })
        end;
        p.current <- t_end + 1
      end
      else enter_round ctx p (p.current + 1)
    end
  in

  let complete_round0 ctx p entries =
    p.view <- Some entries;
    let h0 = round0_polytope ~dim:d ~f (List.map snd entries) in
    p.h <- Some h0;
    p.hist <- (0, h0) :: p.hist;
    if (not p.replaying) && p.max_emitted < 0 then begin
      p.max_emitted <- 0;
      emit (Obs.Trace.Round_enter { pid = p.id; round = 0; vertices = nverts h0 })
    end;
    enter_round ctx p 1
  in

  let check_stable ctx p =
    if (not p.down) && p.current = 0 && p.view = None then begin
      match p.sv with
      | None -> ()
      | Some st ->
        (match SV.result st with
         | Some entries ->
           complete_round0 ctx p
             (List.map (fun e -> (e.SV.origin, e.SV.value)) entries)
         | None -> ())
    end
  in

  let check_naive ctx p =
    if (not p.down) && p.current = 0 && p.view = None
       && Rounds.ready p.naive0 ~round:0
    then complete_round0 ctx p (Rounds.freeze p.naive0 ~round:0)
  in

  (* One state-bearing delivery, shared by the live path and replay.
     Rejoin re-broadcasts make duplicate (round, src) pairs benign, so
     arrivals are deduplicated here instead of letting [Rounds.add]
     treat them as harness bugs. *)
  let handle_payload ctx p src payload =
    match payload with
    | Recovery.Sv_view entries ->
      (match p.sv with
       | Some st ->
         SV.on_receive st ~src (SV.msg_of_entries entries);
         check_stable ctx p
       | None -> ())
    | Recovery.Input x ->
      if not (Rounds.mem p.naive0 ~round:0 ~src) then begin
        Rounds.add p.naive0 ~round:0 ~src x;
        check_naive ctx p
      end
    | Recovery.Round_msg (t, h) ->
      if not (Rounds.mem p.rounds ~round:t ~src) then begin
        Rounds.add p.rounds ~round:t ~src h;
        if t = p.current then try_advance ctx p
      end
  in

  let start_proc ctx p =
    match round0 with
    | `Stable_vector ->
      let before = Sim.sends ctx in
      let st =
        SV.create ?trace ~n ~f ~me:p.id ~value:inputs.(p.id)
          ~broadcast:(sv_broadcast ctx p) ()
      in
      p.sent_log <- (0, Sim.sends ctx > before) :: p.sent_log;
      p.sv <- Some st;
      check_stable ctx p
    | `Naive ->
      if not (Rounds.mem p.naive0 ~round:0 ~src:p.id) then
        Rounds.add p.naive0 ~round:0 ~src:p.id inputs.(p.id);
      broadcast_tracked ctx p ~round:0 (Input0 inputs.(p.id));
      check_naive ctx p
  in

  let snapshot_of p : Recovery.snapshot =
    { Recovery.current = p.current;
      h = p.h;
      view = p.view;
      hist = List.rev p.hist;
      snd_log = List.rev p.snd_log;
      sent_log = List.rev p.sent_log;
      rounds = Rounds.dump p.rounds;
      naive0 = Rounds.dump p.naive0;
      sv = Option.map SV.dump p.sv }
  in

  let restore_snapshot ctx p (s : Recovery.snapshot) =
    p.current <- s.Recovery.current;
    p.h <- s.Recovery.h;
    p.view <- s.Recovery.view;
    p.hist <- List.rev s.Recovery.hist;
    p.snd_log <- List.rev s.Recovery.snd_log;
    p.sent_log <- List.rev s.Recovery.sent_log;
    p.rounds <- Rounds.restore ~threshold s.Recovery.rounds;
    p.naive0 <- Rounds.restore ~threshold s.Recovery.naive0;
    p.sv <-
      Option.map
        (SV.restore ?trace ~n ~f ~me:p.id ~broadcast:(sv_broadcast ctx p))
        s.Recovery.sv
  in

  (* Checkpoint after the handler has fully run, so the snapshot is the
     state reached by applying every entry logged before it. *)
  let maybe_checkpoint p =
    match wals with
    | Some ws when not p.down && not p.replaying ->
      let w = ws.(p.id) in
      if Wal.length w > 0 && Wal.length w mod wal_cfg.Wal.checkpoint_every = 0
      then Wal.append w (Recovery.Checkpoint (snapshot_of p))
    | _ -> ()
  in

  let deliver ctx p src payload =
    wal_append p (Recovery.Delivered { src; payload });
    handle_payload ctx p src payload;
    maybe_checkpoint p
  in

  (* A live process answers a recovering one directly: its current
     round-0 knowledge plus every round message the rejoiner may have
     missed. Stateless — not logged; with n - f never-crashed
     processes at least n - f answers arrive, enough to re-reach every
     threshold. *)
  let answer_rejoin ctx q src r =
    if not q.down && not q.replaying then begin
      wal_sync q;
      (match round0 with
       | `Stable_vector ->
         (match q.sv with
          | Some st -> Sim.send ctx src (Sv (SV.current_msg st))
          | None -> ())
       | `Naive -> Sim.send ctx src (Input0 inputs.(q.id)));
      List.iter
        (fun (tm1, h) ->
           let t = tm1 + 1 in
           if t >= Stdlib.max r 1 && t <= t_end then
             Sim.send ctx src (Round (t, h)))
        (List.rev q.hist)
    end
  in

  (* Re-externalize the current round and ask the world for what was
     missed. The re-broadcast repairs the conservative [false] the
     muted replay put in sent_log. *)
  let rejoin ctx p =
    if p.current = 0 then begin
      (match round0 with
       | `Stable_vector ->
         (match p.sv with
          | Some st ->
            let before = Sim.sends ctx in
            SV.reannounce st;
            if Sim.sends ctx > before then
              p.sent_log <- (0, true) :: List.remove_assoc 0 p.sent_log
          | None -> ())
       | `Naive ->
         p.sent_log <- List.remove_assoc 0 p.sent_log;
         broadcast_tracked ctx p ~round:0 (Input0 inputs.(p.id)));
      Sim.broadcast ctx (Rejoin 0)
    end
    else if p.current <= t_end then begin
      (match List.assoc_opt (p.current - 1) p.hist with
       | Some v ->
         p.sent_log <- List.remove_assoc p.current p.sent_log;
         broadcast_tracked ctx p ~round:p.current (Round (p.current, v))
       | None -> ());
      Sim.broadcast ctx (Rejoin p.current)
    end
    (* else: decided before the crash and the replay re-reached the
       decision — stay live so others' rejoins still get answers. *)
  in

  (* Revival: rebuild protocol state from the surviving WAL prefix —
     wholesale, since a dying handler may have mutated state past the
     crash point — then re-enter the protocol. *)
  let recover ctx =
    let p = procs.(Sim.me ctx) in
    let w = (Option.get wals).(p.id) in
    Obs.Prof.with_span "cc.recover" @@ fun () ->
    Wal.reopen w;
    p.sv <- None;
    p.rounds <- Rounds.create ~threshold;
    p.naive0 <- Rounds.create ~threshold;
    p.current <- 0;
    p.h <- None;
    p.view <- None;
    p.hist <- [];
    p.snd_log <- [];
    p.sent_log <- [];
    p.down <- false;
    p.replaying <- true;
    let snap, tail =
      List.fold_left
        (fun (snap, tail) ev ->
           match ev with
           | Recovery.Checkpoint s -> (Some s, [])
           | Recovery.Delivered _ -> (snap, ev :: tail))
        (None, []) (Wal.entries w)
    in
    (match snap with
     | Some s -> restore_snapshot ctx p s
     | None -> start_proc ctx p);
    List.iter
      (function
        | Recovery.Delivered { src; payload } -> handle_payload ctx p src payload
        | Recovery.Checkpoint _ -> ())
      (List.rev tail);
    p.replaying <- false;
    rejoin ctx p
  in

  let on_crash i ~keep =
    let p = procs.(i) in
    p.down <- true;
    match wals with
    | Some ws -> Wal.crash ws.(i) ~keep
    | None -> ()
  in

  let make i =
    let p = procs.(i) in
    { Sim.on_start =
        (fun ctx -> if p.down then () else start_proc ctx p);
      on_receive =
        (fun ctx src msg ->
           if p.down then ()
           else
             match msg with
             | Rejoin r -> answer_rejoin ctx p src r
             | Sv m -> deliver ctx p src (Recovery.Sv_view (SV.msg_entries m))
             | Input0 x -> deliver ctx p src (Recovery.Input x)
             | Round (t, h) -> deliver ctx p src (Recovery.Round_msg (t, h))) }
  in

  let sys =
    Sim.create ?trace ~prefix ~on_crash ~on_recover:recover ~n ~seed
      ~scheduler ~crash ~make ()
  in
  Sim.run sys;

  { t_end;
    outputs;
    round0_views = Array.map (fun p -> p.view) procs;
    history = Array.map (fun p -> List.rev p.hist) procs;
    senders = Array.map (fun p -> List.rev p.snd_log) procs;
    sent_round = Array.map (fun p -> List.rev p.sent_log) procs;
    crashed = Array.init n (Sim.crashed sys);
    recovered = Array.init n (Sim.recovered_of sys);
    redecided = List.sort compare !redecided;
    wal_log =
      (match wals with
       | Some ws -> Array.map Wal.entries ws
       | None -> Array.make n []);
    sends_attempted = Array.init n (Sim.sends_of sys);
    receives_seen = Array.init n (Sim.receives_of sys);
    metrics = Sim.metrics sys }
