(** Algorithm CC — the paper's asynchronous approximate convex hull
    consensus protocol (Section 4).

    Round 0: every process broadcasts its input through the
    {!Protocol.Stable_vector} primitive, waits for a stable view [R_i],
    forms the input multiset [X_i], and computes

    {[ h_i[0] = ∩_{C ⊆ X_i, |C| = |X_i| - f} H(C) ]}

    Rounds [1 .. t_end]: broadcast [h_i[t-1]]; on first hearing [n - f]
    round-[t] polytopes (own included), set [h_i[t]] to their equal-
    weight linear combination [L] and advance. [h_i[t_end]] is the
    decision.

    The [round0] parameter selects the ablation of experiment E6:
    [`Naive] replaces stable vector by "first [n - f] inputs heard",
    which is still safe (validity holds) but forfeits the containment
    property and hence the optimality guarantee of Theorem 3.

    Every execution is deterministic in (config, inputs, crash plans,
    scheduler, seed). *)

module Q = Numeric.Q

type round0_mode = [ `Stable_vector | `Naive ]

type result = {
  t_end : int;
  outputs : Geometry.Polytope.t option array;
    (** decision per process; [None] when it crashed before deciding *)
  round0_views : (int * Geometry.Vec.t) list option array;
    (** [R_i] as (origin, input) pairs, sorted by origin; [None] when
        round 0 never completed at that process *)
  history : (int * Geometry.Polytope.t) list array;
    (** per process: [(t, h_i[t])] for every completed round, ascending *)
  senders : (int * int list) list array;
    (** per process: [(t, senders of the frozen MSG_i[t])] for rounds
        [t >= 1], ascending; sender lists in arrival order *)
  sent_round : (int * bool) list array;
    (** per process: did at least one round-[t] message reach a
        channel? (drives the paper's [F[t]] sets) *)
  crashed : bool array;
  recovered : bool array;
    (** per process: crashed and was revived (crash-recovery mode) *)
  redecided : int list;
    (** processes whose replayed decision differed from their first
        externalized one — always empty under a [Strict] WAL; the
        durability oracle's smoking gun under [Unsound] *)
  wal_log : Recovery.event list array;
    (** per process: surviving write-ahead log at quiescence (empty
        arrays when recovery mode is off) *)
  sends_attempted : int array;
    (** per process: sends that actually entered a channel *)
  receives_seen : int array;
    (** per process: messages delivered to (and processed by) it —
        together with [sends_attempted] this is what
        {!Runtime.Crash.clamp} needs from a crash-free probe run *)
  metrics : Runtime.Sim.metrics;
}

val execute :
  ?trace:Obs.Trace.t ->
  ?prefix:(int * int) list ->
  ?round0:round0_mode ->
  ?wal:Runtime.Wal.config ->
  config:Config.t ->
  inputs:Geometry.Vec.t array ->
  crash:Runtime.Crash.plan array ->
  scheduler:Runtime.Scheduler.t ->
  seed:int ->
  unit ->
  result
(** Run one complete execution to quiescence. [prefix] forces the head
    of the delivery schedule (see [Runtime.Sim.create]) — the replay
    hook behind [chc_sim replay] and the fuzzer's shrinker.
    When a [trace] is given, the full transcript is recorded: the
    simulator's transport events plus protocol-level [Round_enter]
    (every computed [h_i[t]], round 0 included), [Stable] (stable
    vector stabilization) and [Decide] events. Executions are
    deterministic in (config, inputs, crash, scheduler, seed), so the
    recorded trace is byte-identical across re-runs and across
    parallel-pool sizes.

    {b Crash recovery.} When any plan is {!Runtime.Crash.Crash_recover}
    (or [wal] is given explicitly), every process keeps a
    {!Runtime.Wal} of its state-bearing deliveries ({!Recovery.event})
    with interleaved checkpoints, synced before every send and before
    deciding. A crashing process's log is truncated by the plan's
    disk-prefix choice; at revival the process replays the surviving
    prefix with sends muted, re-broadcasts its current round message,
    and broadcasts [Rejoin] — live processes answer directly with
    their round-0 knowledge and any round messages the rejoiner may
    have missed. Trace events are deduplicated across replay, so
    recovered executions still produce byte-identical transcripts.
    @raise Invalid_argument on malformed inputs (wrong count,
    dimension, or out-of-range coordinates). *)

val fault_set : Runtime.Crash.plan array -> int list
(** Indices with a non-[Never] plan — the model's faulty set [F]
    (faulty processes have incorrect inputs and may crash). *)

val round0_polytope :
  dim:int -> f:int -> Geometry.Vec.t list -> Geometry.Polytope.t
(** Line 5 of Algorithm CC on an explicit input multiset:
    [∩_{C ⊆ X, |C| = |X|-f} H(C)]. Non-empty whenever
    [|X| >= (d+1)f + 1] (Lemma 2, via Tverberg's theorem).
    @raise Failure if the intersection is empty (fewer points than the
    Tverberg guarantee requires). *)
