(** One-call experiment runner: execute Algorithm CC and grade the
    execution against every property the paper proves.

    All checks are exact except where noted:
    - {b termination}: every fault-free process decided;
    - {b validity}: every fault-free output is contained in the convex
      hull of the {e correct} inputs (faulty processes' inputs are
      "incorrect" in this fault model and excluded);
    - {b ε-agreement}: the max pairwise Hausdorff distance between
      fault-free outputs, certified as [d_H² < ε²] in rationals;
    - {b optimality}: [I_Z ⊆ h_i[t]] for all fault-free [i] and rounds
      [t] (Lemma 6 / Theorem 3).

    In crash-recovery mode, termination / validity / agreement are
    graded over the fault-free {e and recovered} processes — a
    recovered process must behave like a correct slow one — plus a
    {b decision stability} check: no process may change a decision it
    already externalized. Optimality keeps the plan-based faulty set
    (it reasons about which inputs the adversary controlled). *)

module Q = Numeric.Q

type spec = Scenario.t = {
  config : Config.t;
  inputs : Geometry.Vec.t array;
  crash : Runtime.Crash.plan array;
  scheduler : Runtime.Scheduler.t;
  seed : int;
  round0 : Cc.round0_mode;
  prefix : (int * int) list;
  kernel : Numeric.Kernel.mode option;
  wal : Runtime.Wal.config option;
}
(** A re-export of {!Scenario.t}: the executor's input {e is} the
    serializable scenario type, so anything runnable here can be saved,
    replayed ([chc_sim replay]) and fuzzed. *)

type report = {
  spec : spec;
  result : Cc.result;
  faulty : int list;
  recovered : int list;
    (** processes that crashed and were revived — graded as correct *)
  decision_stable : bool;
    (** no process changed an externalized decision
        ([result.redecided = []]) *)
  correct_hull : Geometry.Polytope.t;
  terminated : bool;
  valid : bool;
  valid_all_inputs : bool;
  (** validity against the hull of {e all} inputs — the weaker
      requirement of the paper's companion "crash faults with correct
      inputs" model (tech report arXiv:1403.3455), where faulty
      processes hold correct inputs too. Implied by [valid]. *)
  agreement2 : Q.t option;   (** max pairwise [d_H²]; [None] if < 2 outputs *)
  agreement_ok : bool;
  iz : Geometry.Polytope.t option;
  optimal : bool;
  min_output_volume : Q.t option;  (** min fault-free output volume, d ≤ 3 *)
  iz_volume : Q.t option;
}

val run : ?trace:Obs.Trace.t -> spec -> report
(** Execute and grade. A supplied [trace] records the full transcript
    (see {!Cc.execute}); grading never emits events, so the trace is
    exactly the protocol execution's. *)

(** {1 Observability} *)

val round_metrics :
  ?witnesses:int ->
  faulty:int list ->
  Cc.result ->
  Obs.Report.round list
(** Per-round protocol metrics from a finished execution: broadcast
    payload counts ([messages] — one per process that completed the
    round, faulty included), total {!Codec.Wire} payload bytes, and
    the largest hull vertex count. Rounds nobody completed are
    omitted. [witnesses] additionally computes the per-round Hausdorff
    diameter over the first [witnesses] fault-free processes (omit it
    to skip the — comparatively expensive — exact distance work;
    E1 uses 3 witnesses). *)

val observe :
  ?trace:Obs.Trace.t -> ?witnesses:int -> report -> Obs.Report.t
(** Aggregate everything observable about a graded run into one
    {!Obs.Report.t}: simulator metrics, per-round metrics (diameters
    when [witnesses] is given), kernel cache and pool counters, and
    the trace length when the run was traced. *)

val random_inputs :
  config:Config.t -> rng:Runtime.Rng.t -> ?grid:int -> unit ->
  Geometry.Vec.t array
(** Alias of {!Scenario.random_inputs}. *)

val default_spec :
  config:Config.t ->
  seed:int ->
  ?faulty:int list ->
  ?scheduler:Runtime.Scheduler.t ->
  ?round0:Cc.round0_mode ->
  ?max_budget:int ->
  ?ensure_crash:bool ->
  unit ->
  spec
(** Alias of {!Scenario.default}: random inputs, random crash budgets
    for the given faulty set (default: processes [0 .. f-1]),
    random-uniform scheduler. Deterministic in [seed]. *)
