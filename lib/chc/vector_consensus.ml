module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Sim = Runtime.Sim
module Transport = Runtime.Transport
module SV = Protocol.Stable_vector
module Rounds = Protocol.Rounds

let derived_outputs (result : Cc.result) =
  Array.map (Option.map Polytope.steiner_point) result.Cc.outputs

type result = {
  t_end : int;
  outputs : Vec.t option array;
  crashed : bool array;
  metrics : Runtime.Sim.metrics;
}

type msg =
  | Sv of Vec.t SV.msg
  | Round of int * Vec.t

type proc = {
  id : int;
  mutable sv : Vec.t SV.state option;
  rounds : Vec.t Rounds.t;
  mutable current : int;
  mutable x : Vec.t option;
}

let execute_baseline ~config ~inputs ~crash ~scheduler ~seed () =
  let { Config.n; f; d; _ } = config in
  if Array.length inputs <> n then invalid_arg "Vector_consensus: need n inputs";
  Array.iter (Config.validate_input config) inputs;
  let t_end = Bounds.t_end config in
  let threshold = n - f in
  let outputs = Array.make n None in
  let procs =
    Array.init n (fun i ->
        { id = i; sv = None; rounds = Rounds.create ~threshold;
          current = 0; x = None })
  in

  let rec enter_round (ep : msg Transport.ep) p t =
    p.current <- t;
    let x = Option.get p.x in
    Rounds.add p.rounds ~round:t ~src:p.id x;
    ep.Transport.broadcast (Round (t, x));
    try_advance ep p
  and try_advance ep p =
    if p.current >= 1 && p.current <= t_end
       && Rounds.ready p.rounds ~round:p.current
    then begin
      let y = Rounds.freeze p.rounds ~round:p.current in
      let x = Vec.average (List.map snd y) in
      p.x <- Some x;
      if p.current = t_end then begin
        outputs.(p.id) <- Some x;
        p.current <- t_end + 1
      end
      else enter_round ep p (p.current + 1)
    end
  in

  let check_stable ep p =
    if p.current = 0 && p.x = None then begin
      match Option.bind p.sv SV.result with
      | Some entries ->
        let pts = List.map (fun e -> e.SV.value) entries in
        let h0 = Cc.round0_polytope ~dim:d ~f pts in
        p.x <- Some (Polytope.steiner_point h0);
        enter_round ep p 1
      | None -> ()
    end
  in

  let make i =
    let p = procs.(i) in
    { Transport.on_start =
        (fun ep ->
           let st =
             SV.create ~n ~f ~me:i ~value:inputs.(i)
               ~broadcast:(fun m -> ep.Transport.broadcast (Sv m)) ()
           in
           p.sv <- Some st;
           check_stable ep p);
      on_receive =
        (fun ep ~src msg ->
           match msg with
           | Sv m ->
             (match p.sv with
              | Some st -> SV.on_receive st ~src m; check_stable ep p
              | None -> ())
           | Round (t, x) ->
             Rounds.add p.rounds ~round:t ~src x;
             if t = p.current then try_advance ep p) }
  in
  let sys = Sim.create ~n ~seed ~scheduler ~crash ~make () in
  Sim.run sys;
  { t_end;
    outputs;
    crashed = Array.init n (Sim.crashed sys);
    metrics = Sim.metrics sys }
