(** The durable round-event vocabulary of Algorithm CC's
    crash-recovery mode — what a process's {!Runtime.Wal} records.

    One {!event} is appended per state-bearing delivery (stable-vector
    views, naive round-0 inputs, round-[t] polytopes — rejoin requests
    are stateless and are not logged), and a {!Checkpoint} carrying a
    full protocol-state {!snapshot} is interleaved every
    [checkpoint_every] entries. Replay restores the last surviving
    checkpoint (or re-runs the start handler with sends muted) and
    re-applies the deliveries logged after it; the surviving prefix is
    chosen by the disk-prefix adversary ({!Runtime.Wal.crash}).

    The JSON codec is exact (rationals as ["num/den"] strings,
    polytopes as vertex lists) so persisted logs round-trip; decoding
    needs the scenario's dimension to rebuild polytopes. *)

type payload =
  | Sv_view of (int * Geometry.Vec.t) list
      (** a received stable-vector view ({!Protocol.Stable_vector.msg_entries}) *)
  | Input of Geometry.Vec.t     (** a naive round-0 input broadcast *)
  | Round_msg of int * Geometry.Polytope.t
      (** a round-[t] message carrying the sender's [h[t-1]] *)

type snapshot = {
  current : int;                              (** round counter *)
  h : Geometry.Polytope.t option;             (** current polytope *)
  view : (int * Geometry.Vec.t) list option;  (** stable round-0 view *)
  hist : (int * Geometry.Polytope.t) list;    (** (t, h[t]), oldest first *)
  snd_log : (int * int list) list;            (** frozen sender sets *)
  sent_log : (int * bool) list;               (** per-round "send escaped" *)
  rounds : (int * (int * Geometry.Polytope.t) list * bool) list;
      (** {!Protocol.Rounds.dump} of the round-[t] arrival table *)
  naive0 : (int * (int * Geometry.Vec.t) list * bool) list;
      (** likewise for the naive round-0 table *)
  sv : Geometry.Vec.t Protocol.Stable_vector.snapshot option;
      (** stable-vector internals (view, votes, stability) *)
}

type event =
  | Delivered of { src : int; payload : payload }
  | Checkpoint of snapshot

val event_to_json : event -> Codec.Json.t
val event_of_json : dim:int -> Codec.Json.t -> (event, string) result

val event_to_string : event -> string
(** Canonical single-line JSON — the {!Runtime.Wal.persist} encoder. *)

val event_of_string : dim:int -> string -> (event, string) result
