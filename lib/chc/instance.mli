(** One process of Algorithm CC as a sans-IO state machine.

    This is the protocol core of {!Cc}, inverted: instead of a closure
    handed to the simulator, an instance is a value that consumes
    inputs ({!start}, {!handle}, {!crash}, {!recover}) and produces an
    {!effect} list describing what must happen in the world — sends,
    trace events, WAL appends, write barriers. The same instance
    therefore runs unchanged under {!Runtime.Sim} (via {!Cc.execute}),
    under {!Runtime.Loopback} in the serving daemon, and under plain
    unit tests with a recording interpreter.

    {b The effect contract.} Effects must be interpreted strictly in
    order, exactly once, via {!interpret} (which also resolves the two
    stateful effect forms): [Tracked] wraps a broadcast whose
    success/failure must be fed back into the instance's sent-round
    log, and [Defer] carries a protocol continuation that runs {e at
    its stream position}. Deferral is what preserves crash semantics
    bit-for-bit: a transport may crash the sender synchronously inside
    a send (budget exhausted → the driver calls {!crash} from its
    crash hook), and the code after that broadcast must observe the
    [down] flag exactly as the pre-refactor closure code did. Replay
    during {!recover} forces all continuations internally, so the
    effects returned by {!recover} are only the replay's trace events
    followed by the rejoin messages.

    Determinism: an instance's behaviour is a pure function of
    ({!spec}, [me], [input], the sequence of calls, and the interpreted
    send outcomes). {!Cc.execute} composes [n] instances with [Sim]
    and is byte-identical to the pre-split implementation — the
    differential test in [test/test_transport.ml] pins that. *)

type pid = Runtime.Transport.pid

type round0_mode = [ `Stable_vector | `Naive ]

type msg =
  | Sv of Geometry.Vec.t Protocol.Stable_vector.msg
      (** round-0 stable-vector view exchange *)
  | Input0 of Geometry.Vec.t     (** naive round-0 input broadcast *)
  | Round of int * Geometry.Polytope.t
      (** round-[t] message carrying the sender's [h\[t-1\]] *)
  | Rejoin of int
      (** "I recovered in round [r], answer me directly" *)

type effect =
  | Send of pid * msg
  | Broadcast of msg
      (** unit sends to all other processes, transport order *)
  | Trace of Obs.Trace.event
      (** protocol-level event ([Round_enter] / [Stable] / [Decide]) at
          its true position between the sends *)
  | Wal_append of Recovery.event
      (** mirror of an in-memory WAL append, for an external
          durability sink (the daemon's on-disk log) *)
  | Wal_sync
      (** mirror of the write barrier: an external sink must flush
          everything appended so far before the following sends *)
  | Tracked of { round : int; replace : bool; inner : effect list }
      (** interpret [inner], then record whether it put at least one
          message on a channel — resolved by {!interpret} via the
          [sends] counter *)
  | Defer of (unit -> unit)
      (** protocol continuation; {!interpret} forces it at this stream
          position (it pushes further effects, interpreted inline) *)

type io = {
  send : pid -> msg -> unit;
  broadcast : msg -> unit;
  sends : unit -> int;
      (** sends by this process that actually entered a channel —
          {!Runtime.Transport.ep}[.sends] under a real transport *)
  emit : Obs.Trace.event -> unit;
  on_wal : Recovery.event -> unit;
  on_sync : unit -> unit;
}
(** How {!interpret} talks to the world. *)

val io :
  ?emit:(Obs.Trace.event -> unit) ->
  ?on_wal:(Recovery.event -> unit) ->
  ?on_sync:(unit -> unit) ->
  send:(pid -> msg -> unit) ->
  broadcast:(msg -> unit) ->
  sends:(unit -> int) ->
  unit ->
  io
(** Build an {!io}; the observer callbacks default to no-ops. *)

type spec = private {
  config : Config.t;
  round0 : round0_mode;
  wal : Runtime.Wal.config option;
      (** [Some _] arms durability (in-memory WAL + mirror effects);
          [None] keeps the WAL layer entirely out of the hot path.
          Must be [Some] for {!crash}/{!recover}/{!restore}. *)
  t_end : int;  (** [Bounds.t_end config], computed once for all [n] *)
}
(** What all [n] instances of one execution share. (Deliberately not
    {!Scenario.t}: a scenario also fixes the transport-level crash
    plans, scheduler and seed, which are the {e driver's} business.) *)

val spec :
  ?round0:round0_mode -> ?wal:Runtime.Wal.config -> Config.t -> spec
(** Build a spec ([round0] defaults to [`Stable_vector], durability to
    off), precomputing the round bound. *)

type t

val create :
  ?engine:Geometry.Poly_engine.handle ->
  spec -> me:pid -> input:Geometry.Vec.t -> t
(** A fresh process [me] with its own input (a process never needs the
    other inputs — that is the point of the protocol). All of the
    instance's polytope construction runs under [engine]
    ({!Geometry.Poly_engine.with_handle}), so round [t]'s hulls
    warm-start round [t+1]'s; pass a shared handle (the daemon passes
    one per shard) to extend that reuse across same-spec instances.
    Default: a private handle per instance.
    @raise Invalid_argument if the input is malformed for the config. *)

val start : t -> effect list
(** The round-0 kickoff ([on_start] under a transport). Returns [[]]
    if the instance is {!down} (crashed before starting). *)

val handle : t -> src:pid -> msg -> effect list
(** One delivered message. Returns [[]] if the instance is {!down}
    (a real transport dead-letters such deliveries anyway). *)

val interpret : t -> io -> effect list -> unit
(** Run an effect list against the world, in order: resolves [Defer]
    continuations and [Tracked] send feedback against this instance.
    Effects must be interpreted by the instance that produced them,
    exactly once. *)

val crash : t -> keep:int -> unit
(** The transport's crash hook: mark the process down and let the
    disk-prefix adversary truncate the WAL to the synced prefix plus
    [keep] unsynced entries (no-op on the WAL when durability is not
    armed). Call synchronously at the crash point — mid-interpretation
    when a send exhausts the budget. *)

val recover : t -> effect list
(** Revival: replay the surviving WAL prefix with sends muted (their
    trace events still come out, in order), then rejoin — the returned
    effects re-externalize the current round and broadcast [Rejoin].
    @raise Invalid_argument if durability is not armed. *)

val restore : t -> entries:Recovery.event list -> effect list
(** Daemon-restart path: seed a {e fresh} instance's WAL with entries
    reloaded from disk (they become the durable prefix) and run the
    {!recover} replay-and-rejoin.
    @raise Invalid_argument if durability is not armed. *)

(** {1 Observers} *)

val poll_decision : t -> Geometry.Polytope.t option
(** The decision [h\[t_end\]], once reached. *)

val me : t -> pid
val down : t -> bool
val decided : t -> bool
val t_end : t -> int
val current_round : t -> int
(** 0 during round 0; [t_end + 1] once decided. *)

val view : t -> (int * Geometry.Vec.t) list option
(** The round-0 view [R_i] as (origin, input) pairs, once stable. *)

val history : t -> (int * Geometry.Polytope.t) list
(** [(t, h\[t\])] for every completed round, ascending. *)

val senders : t -> (int * int list) list
(** Frozen sender sets per round [t >= 1], ascending. *)

val sent_round : t -> (int * bool) list
(** Per-round "at least one copy escaped" flags (the paper's F[t]). *)

val redecided : t -> bool
(** A replayed decision differed from the first externalized one —
    always [false] under a [Strict] WAL. *)

val wal_entries : t -> Recovery.event list
(** Surviving WAL entries, oldest first; [[]] when durability is off. *)

(** {1 Geometry helper} *)

val round0_polytope :
  dim:int -> f:int -> Geometry.Vec.t list -> Geometry.Polytope.t
(** Line 5 of Algorithm CC on an explicit input multiset:
    [∩_{C ⊆ X, |C| = |X|-f} H(C)]. Non-empty whenever
    [|X| >= (d+1)f + 1] (Lemma 2, via Tverberg's theorem).
    @raise Failure if the intersection is empty (fewer points than the
    Tverberg guarantee requires). *)
