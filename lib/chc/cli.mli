(** Validated parsing for the [chc_sim] command line.

    These helpers live in the library (rather than in [bin/]) so the
    test suite can pin the validation behaviour down: the original
    parsers used bare [int_of_string] / [Q.of_string], so a malformed
    [--faulty 0,x] escaped as a raw [Failure] backtrace instead of a
    cmdliner error. Everything here returns [result]; the binary maps
    [Error] onto cmdliner's error path. *)

val parse_ids : n:int -> f:int -> string -> (int list, string) result
(** Parse a comma-separated faulty-id list ([""] and stray commas are
    tolerated). Ids are validated against the process range
    [0..n-1], deduplicated and sorted; more than [f] distinct ids is
    an error (the model guarantees nothing beyond [f] faults). *)

val parse_q : string -> string -> (Numeric.Q.t, string) result
(** [parse_q label s]: decimal or rational [a/b]; [label] prefixes the
    error message. *)

val parse_kernel : string -> (Numeric.Kernel.mode, string) result
(** Parse a [--kernel exact|filtered] argument
    ({!Numeric.Kernel.parse} with the CLI error prefix). *)

val parse_poly : string -> (Geometry.Poly_engine.mode, string) result
(** Parse a [--poly rebuild|incremental] argument
    ({!Geometry.Poly_engine.parse} with the CLI error prefix). *)

val parse_point : d:int -> string -> (Geometry.Vec.t, string) result
(** Comma-separated coordinates, exactly [d] of them. *)

val parse_scheduler :
  faulty:int list -> string -> (Runtime.Scheduler.t, string) result
(** Resolve a [--scheduler name\[:params\]] spec against the strategy
    registry (so fuzzer-contributed adversaries are addressable from
    the CLI once registered). The bare name ["lag"] keeps its historic
    CLI meaning: starve the faulty set. *)

val parse_inputs :
  n:int -> d:int -> string -> (Geometry.Vec.t array, string) result
(** Semicolon-separated points, exactly [n] of them. *)

(** {1 Shared command-line surface}

    The cmdliner terms every execution-shaped subcommand composes —
    [chc_sim run]/[trace]/[profile]/[fuzz]/[replay] and
    [chc_serve drive] all draw from the same definitions, so flag
    names, defaults, docs and error-message formats cannot drift
    apart per subcommand. *)

type common = {
  n : int;
  f : int;
  d : int;
  eps : string;  (** unparsed; validated by {!scenario_of_common} *)
  lo : string;
  hi : string;
  seed : int;
  scheduler : string;
  naive : bool;
  kernel : string option;
  poly : string option;
  inputs : string option;
  faulty : string option;
}
(** The thirteen flags shared by every subcommand that shapes an
    execution. String-typed fields are raw command-line text;
    {!scenario_of_common} owns all validation, so error messages are
    identical wherever the flags are used. *)

val common_args : common Cmdliner.Term.t
(** [-n -f -d --eps --lo --hi --seed --scheduler --naive-round0
    --kernel --poly --inputs --faulty] as one term. *)

val seed_arg : int Cmdliner.Term.t
(** [--seed] alone — for subcommands (fuzz, serve) that take a seed
    but no problem shape. *)

val kernel_arg : string option Cmdliner.Term.t
(** [--kernel] alone. *)

val poly_arg : string option Cmdliner.Term.t
(** [--poly] alone. *)

val scenario_of_common : common -> (Scenario.t, string) result
(** Validate into a randomized {!Scenario} ([Scenario.default] with
    the parsed config/faulty/scheduler/round0, inputs overridden when
    [--inputs] was given). Every user error comes back as the
    ["--flag: ..."] message format the parsers above produce. *)

val set_kernel : string option -> (unit, string) result
(** Install a [--kernel] choice as the process-wide default
    ([None] keeps the ambient default: [CHC_KERNEL], else filtered). *)

val set_poly : string option -> (unit, string) result
(** Install a [--poly] choice as the process-wide default ([None]
    keeps the ambient default: [CHC_POLY], else incremental). *)

val recoverize :
  delay:int -> keep:int -> Scenario.t -> Scenario.t
(** [--recover]: turn every sampled crash-stop plan into a
    crash-recover plan with the same trigger budget. *)
