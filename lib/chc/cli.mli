(** Validated parsing for the [chc_sim] command line.

    These helpers live in the library (rather than in [bin/]) so the
    test suite can pin the validation behaviour down: the original
    parsers used bare [int_of_string] / [Q.of_string], so a malformed
    [--faulty 0,x] escaped as a raw [Failure] backtrace instead of a
    cmdliner error. Everything here returns [result]; the binary maps
    [Error] onto cmdliner's error path. *)

val parse_ids : n:int -> f:int -> string -> (int list, string) result
(** Parse a comma-separated faulty-id list ([""] and stray commas are
    tolerated). Ids are validated against the process range
    [0..n-1], deduplicated and sorted; more than [f] distinct ids is
    an error (the model guarantees nothing beyond [f] faults). *)

val parse_q : string -> string -> (Numeric.Q.t, string) result
(** [parse_q label s]: decimal or rational [a/b]; [label] prefixes the
    error message. *)

val parse_kernel : string -> (Numeric.Kernel.mode, string) result
(** Parse a [--kernel exact|filtered] argument
    ({!Numeric.Kernel.parse} with the CLI error prefix). *)

val parse_point : d:int -> string -> (Geometry.Vec.t, string) result
(** Comma-separated coordinates, exactly [d] of them. *)

val parse_scheduler :
  faulty:int list -> string -> (Runtime.Scheduler.t, string) result
(** Resolve a [--scheduler name\[:params\]] spec against the strategy
    registry (so fuzzer-contributed adversaries are addressable from
    the CLI once registered). The bare name ["lag"] keeps its historic
    CLI meaning: starve the faulty set. *)

val parse_inputs :
  n:int -> d:int -> string -> (Geometry.Vec.t array, string) result
(** Semicolon-separated points, exactly [n] of them. *)
