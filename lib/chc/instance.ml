module Combin = Numeric.Combin
module Wal = Runtime.Wal
module SV = Protocol.Stable_vector
module Rounds = Protocol.Rounds

type pid = Runtime.Transport.pid

type round0_mode = [ `Stable_vector | `Naive ]

type msg =
  | Sv of Geometry.Vec.t SV.msg
  | Input0 of Geometry.Vec.t
  | Round of int * Geometry.Polytope.t
  | Rejoin of int

(* The effect stream is interpreted strictly in order, and [Defer]ed
   protocol continuations are run lazily at their stream position.
   That laziness is load-bearing, not a style choice: a send can crash
   the sender mid-broadcast (the transport fires the crash hook
   synchronously), and in the closure-based predecessor of this module
   the code after a broadcast observed the crash through its [down]
   guards.  Deferring those continuations into the stream makes the
   sans-IO instance see the crash at exactly the same program point,
   which is what keeps traces and WAL truncation byte-identical. *)
type effect =
  | Send of pid * msg
  | Broadcast of msg
  | Trace of Obs.Trace.event
  | Wal_append of Recovery.event
  | Wal_sync
  | Tracked of { round : int; replace : bool; inner : effect list }
  | Defer of (unit -> unit)

type io = {
  send : pid -> msg -> unit;
  broadcast : msg -> unit;
  sends : unit -> int;
  emit : Obs.Trace.event -> unit;
  on_wal : Recovery.event -> unit;
  on_sync : unit -> unit;
}

let io ?(emit = fun _ -> ()) ?(on_wal = fun _ -> ()) ?(on_sync = fun () -> ())
    ~send ~broadcast ~sends () =
  { send; broadcast; sends; emit; on_wal; on_sync }

type spec = {
  config : Config.t;
  round0 : round0_mode;
  wal : Wal.config option;
  t_end : int;
}

(* Computing [t_end] walks the Ω²·(1-1/n)^2t contraction with exact
   rationals; the smart constructor does it once for all n instances
   of an execution. *)
let spec ?(round0 = `Stable_vector) ?wal config =
  { config; round0; wal; t_end = Bounds.t_end config }

type t = {
  id : int;
  n : int;
  f : int;
  d : int;
  engine : Geometry.Poly_engine.handle;
  t_end : int;
  round0 : round0_mode;
  input : Geometry.Vec.t;
  wal : Recovery.event Wal.t option;
  mutable sv : Geometry.Vec.t SV.state option;
  mutable rounds : Geometry.Polytope.t Rounds.t;
  mutable naive0 : Geometry.Vec.t Rounds.t;
  mutable current : int;       (* 0 while in round 0; t_end+1 once decided *)
  mutable h : Geometry.Polytope.t option;
  mutable view : (int * Geometry.Vec.t) list option;
  mutable hist : (int * Geometry.Polytope.t) list;     (* reverse order *)
  mutable snd_log : (int * int list) list;    (* reverse order *)
  mutable sent_log : (int * bool) list;       (* reverse order *)
  mutable down : bool;         (* crashed, revival pending *)
  mutable replaying : bool;    (* inside the recovery replay *)
  mutable max_emitted : int;   (* highest Round_enter round emitted *)
  mutable decide_emitted : bool;
  mutable first_output : Geometry.Polytope.t option;
  mutable output : Geometry.Polytope.t option;
  mutable redecided : bool;
  mutable buf : effect list;   (* current collection buffer, reversed *)
}

(* Line 5 of Algorithm CC: intersection over all multisets obtained by
   dropping f elements of X_i. Non-emptiness is Lemma 2 (Tverberg):
   any multiset of >= (d+1)f + 1 points admits the required common
   point, and |X_i| >= n - f >= (d+1)f + 1 by the resilience bound. *)
let round0_polytope ~dim ~f pts =
  Obs.Prof.with_span "cc.round0" @@ fun () ->
  let keep = List.length pts - f in
  if keep < 1 then invalid_arg "Cc.round0_polytope: not enough points";
  (* All C(|X_i|, f) subset hulls draw from the same input points, so
     they share one denominator grid (lazily built on the first
     construction that needs it; pool workers fall back to local
     grids, which only costs the shared scan). *)
  Numeric.Grid.with_round (fun () -> Numeric.Grid.make pts) @@ fun () ->
  (* The C(|X_i|, f) per-subset hulls are independent; fan them out
     over the domain pool (results merged in subset order, so the
     intersection below sees a scheduling-independent list). *)
  let hulls =
    Parallel.Pool.parallel_map (Parallel.Pool.global ())
      (Geometry.Polytope.of_points ~dim)
      (Combin.subsets_of_size keep pts)
  in
  match Geometry.Polytope.intersect hulls with
  | Some h -> h
  | None -> failwith "Cc: round-0 intersection empty — Lemma 2 violated"

let create ?engine spec ~me ~input =
  let { Config.n; f; d; _ } = spec.config in
  Config.validate_input spec.config input;
  let threshold = n - f in
  let engine =
    match engine with
    | Some e -> e
    | None -> Geometry.Poly_engine.create_handle ()
  in
  { id = me;
    n;
    f;
    d;
    engine;
    t_end = spec.t_end;
    round0 = spec.round0;
    input;
    wal = Option.map Wal.create spec.wal;
    sv = None;
    rounds = Rounds.create ~threshold;
    naive0 = Rounds.create ~threshold;
    current = 0;
    h = None;
    view = None;
    hist = [];
    snd_log = [];
    sent_log = [];
    down = false;
    replaying = false;
    max_emitted = -1;
    decide_emitted = false;
    first_output = None;
    output = None;
    redecided = false;
    buf = [] }

(* --- effect collection ------------------------------------------------- *)

let push t e = t.buf <- e :: t.buf

(* Run [f], collecting everything it pushes into a fresh buffer (the
   previous buffer is restored afterwards, so collections nest). *)
let grab t f =
  let saved = t.buf in
  t.buf <- [];
  f ();
  let es = List.rev t.buf in
  t.buf <- saved;
  es

(* Tracked-broadcast feedback from the interpreter: did at least one
   copy escape onto a channel? (The paper's F[t] predicate.) *)
let sent_feedback t ~round ~replace ~ok =
  if replace then begin
    if ok then
      t.sent_log <- (round, true) :: List.remove_assoc round t.sent_log
  end
  else t.sent_log <- (round, ok) :: t.sent_log

let rec interpret t io effs =
  List.iter
    (fun e ->
       match e with
       | Send (dst, m) -> io.send dst m
       | Broadcast m -> io.broadcast m
       | Trace ev -> io.emit ev
       | Wal_append ev -> io.on_wal ev
       | Wal_sync -> io.on_sync ()
       | Tracked { round; replace; inner } ->
         let before = io.sends () in
         interpret t io inner;
         sent_feedback t ~round ~replace ~ok:(io.sends () > before)
       | Defer f -> interpret t io (grab t f))
    effs

(* --- durability -------------------------------------------------------- *)

(* The in-memory WAL is mutated at emission time (the protocol reads
   its length for checkpoint cadence and its surviving prefix at
   recovery); the [Wal_append]/[Wal_sync] effects are mirrors at the
   same stream position for an external durability sink. *)
let wal_append t ev =
  match t.wal with
  | Some w when not t.down && not t.replaying ->
    Wal.append w ev;
    push t (Wal_append ev)
  | _ -> ()

(* The write barrier: emitted before every externalization (send,
   decide) so replay can never roll a process back behind state the
   rest of the system has observed. Under [Unsound] this is a no-op
   — the injected bug the fuzz oracle must catch. *)
let wal_sync t =
  match t.wal with
  | Some w ->
    Wal.sync w;
    push t Wal_sync
  | None -> ()

(* --- protocol ----------------------------------------------------------- *)

(* Broadcast while recording whether any copy reached a channel —
   this drives the F[t] sets of the matrix analysis. During replay
   nothing is sent; the flag is conservatively recorded as [false]
   and repaired by the rejoin re-broadcast. *)
let broadcast_tracked t ~round msg =
  if t.replaying then t.sent_log <- (round, false) :: t.sent_log
  else begin
    if not t.down then wal_sync t;
    push t (Tracked { round; replace = false; inner = [ Broadcast msg ] })
  end

(* Stable-vector announces route through here: muted during replay,
   synced (write barrier) when live. *)
let sv_broadcast t m =
  if not t.down && not t.replaying then begin
    wal_sync t;
    push t (Broadcast (Sv m))
  end

let sv_emit t ev = push t (Trace ev)

let nverts h = List.length (Geometry.Polytope.vertices h)

let rec enter_round t r =
  if not t.down then begin
    t.current <- r;
    let h = Option.get t.h in
    if not (Rounds.mem t.rounds ~round:r ~src:t.id) then
      Rounds.add t.rounds ~round:r ~src:t.id h;
    broadcast_tracked t ~round:r (Round (r, h));
    (* the broadcast may crash us; re-check [down] at stream position *)
    push t (Defer (fun () -> try_advance t))
  end

and try_advance t =
  if (not t.down) && t.current >= 1 && t.current <= t.t_end
     && Rounds.ready t.rounds ~round:t.current
  then begin
    let y = Rounds.freeze t.rounds ~round:t.current in
    let h =
      (* The engine handle scopes warm-start reuse: round t's hulls
         seed round t+1's beneath-beyond restarts (and, under a
         daemon's shared per-shard handle, other instances'). *)
      Geometry.Poly_engine.with_handle t.engine @@ fun () ->
      Obs.Prof.with_span "cc.round" (fun () ->
          let polys = List.map snd y in
          (* Per-round grid lifecycle: every hull construction in
             this round's average shares one denominator grid. The
             build is deferred — rounds fully served by the memo
             tables never pay for the lcm scan. *)
          Numeric.Grid.with_round
            (fun () ->
               Numeric.Grid.make_scaled ~mult:(List.length polys)
                 (List.concat_map Geometry.Polytope.vertices polys))
            (fun () -> Geometry.Polytope.average polys))
    in
    t.h <- Some h;
    t.hist <- (t.current, h) :: t.hist;
    t.snd_log <- (t.current, List.map fst y) :: t.snd_log;
    if (not t.replaying) && t.current > t.max_emitted then begin
      t.max_emitted <- t.current;
      push t (Trace (Obs.Trace.Round_enter
                       { pid = t.id; round = t.current; vertices = nverts h }))
    end;
    if t.current = t.t_end then begin
      if not t.replaying then wal_sync t;   (* decisions are durable *)
      (match t.first_output with
       | None -> t.first_output <- Some h
       | Some h0 ->
         if not (Geometry.Polytope.equal h0 h) then t.redecided <- true);
      t.output <- Some h;
      if (not t.replaying) && not t.decide_emitted then begin
        t.decide_emitted <- true;
        push t (Trace (Obs.Trace.Decide
                         { pid = t.id; round = t.t_end; vertices = nverts h }))
      end;
      t.current <- t.t_end + 1
    end
    else enter_round t (t.current + 1)
  end

let complete_round0 t entries =
  t.view <- Some entries;
  let h0 =
    Geometry.Poly_engine.with_handle t.engine @@ fun () ->
    round0_polytope ~dim:t.d ~f:t.f (List.map snd entries)
  in
  t.h <- Some h0;
  t.hist <- (0, h0) :: t.hist;
  if (not t.replaying) && t.max_emitted < 0 then begin
    t.max_emitted <- 0;
    push t
      (Trace (Obs.Trace.Round_enter { pid = t.id; round = 0; vertices = nverts h0 }))
  end;
  enter_round t 1

let check_stable t =
  if (not t.down) && t.current = 0 && t.view = None then begin
    match t.sv with
    | None -> ()
    | Some st ->
      (match SV.result st with
       | Some entries ->
         complete_round0 t
           (List.map (fun e -> (e.SV.origin, e.SV.value)) entries)
       | None -> ())
  end

let check_naive t =
  if (not t.down) && t.current = 0 && t.view = None
     && Rounds.ready t.naive0 ~round:0
  then complete_round0 t (Rounds.freeze t.naive0 ~round:0)

(* One state-bearing delivery, shared by the live path and replay.
   Rejoin re-broadcasts make duplicate (round, src) pairs benign, so
   arrivals are deduplicated here instead of letting [Rounds.add]
   treat them as harness bugs. *)
let handle_payload t ~src payload =
  match payload with
  | Recovery.Sv_view entries ->
    (match t.sv with
     | Some st ->
       SV.on_receive st ~src (SV.msg_of_entries entries);
       (* the announce above may crash us mid-broadcast; round-0
          completion must observe that, so it runs at stream position *)
       push t (Defer (fun () -> check_stable t))
     | None -> ())
  | Recovery.Input x ->
    if not (Rounds.mem t.naive0 ~round:0 ~src) then begin
      Rounds.add t.naive0 ~round:0 ~src x;
      check_naive t
    end
  | Recovery.Round_msg (r, h) ->
    if not (Rounds.mem t.rounds ~round:r ~src) then begin
      Rounds.add t.rounds ~round:r ~src h;
      if r = t.current then try_advance t
    end

let start_proc t =
  match t.round0 with
  | `Stable_vector ->
    let inner =
      grab t (fun () ->
          let st =
            SV.create ~emit:(sv_emit t) ~n:t.n ~f:t.f ~me:t.id ~value:t.input
              ~broadcast:(fun m -> sv_broadcast t m) ()
          in
          t.sv <- Some st)
    in
    push t (Tracked { round = 0; replace = false; inner });
    push t (Defer (fun () -> check_stable t))
  | `Naive ->
    if not (Rounds.mem t.naive0 ~round:0 ~src:t.id) then
      Rounds.add t.naive0 ~round:0 ~src:t.id t.input;
    broadcast_tracked t ~round:0 (Input0 t.input);
    push t (Defer (fun () -> check_naive t))

(* --- crash-recovery ----------------------------------------------------- *)

let snapshot_of t : Recovery.snapshot =
  { Recovery.current = t.current;
    h = t.h;
    view = t.view;
    hist = List.rev t.hist;
    snd_log = List.rev t.snd_log;
    sent_log = List.rev t.sent_log;
    rounds = Rounds.dump t.rounds;
    naive0 = Rounds.dump t.naive0;
    sv = Option.map SV.dump t.sv }

let restore_snapshot t (s : Recovery.snapshot) =
  let threshold = t.n - t.f in
  t.current <- s.Recovery.current;
  t.h <- s.Recovery.h;
  t.view <- s.Recovery.view;
  t.hist <- List.rev s.Recovery.hist;
  t.snd_log <- List.rev s.Recovery.snd_log;
  t.sent_log <- List.rev s.Recovery.sent_log;
  t.rounds <- Rounds.restore ~threshold s.Recovery.rounds;
  t.naive0 <- Rounds.restore ~threshold s.Recovery.naive0;
  t.sv <-
    Option.map
      (SV.restore ~emit:(sv_emit t) ~n:t.n ~f:t.f ~me:t.id
         ~broadcast:(fun m -> sv_broadcast t m))
      s.Recovery.sv

(* Checkpoint after the handler has fully run, so the snapshot is the
   state reached by applying every entry logged before it. *)
let maybe_checkpoint t =
  match t.wal with
  | Some w when not t.down && not t.replaying ->
    if Wal.length w > 0
       && Wal.length w mod (Wal.config w).Wal.checkpoint_every = 0
    then begin
      let ev = Recovery.Checkpoint (snapshot_of t) in
      Wal.append w ev;
      push t (Wal_append ev)
    end
  | _ -> ()

(* A live process answers a recovering one directly: its current
   round-0 knowledge plus every round message the rejoiner may have
   missed. Stateless — not logged; with n - f never-crashed
   processes at least n - f answers arrive, enough to re-reach every
   threshold. *)
let answer_rejoin t src r =
  if not t.down && not t.replaying then begin
    wal_sync t;
    (match t.round0 with
     | `Stable_vector ->
       (match t.sv with
        | Some st -> push t (Send (src, Sv (SV.current_msg st)))
        | None -> ())
     | `Naive -> push t (Send (src, Input0 t.input)));
    List.iter
      (fun (tm1, h) ->
         let r' = tm1 + 1 in
         if r' >= Stdlib.max r 1 && r' <= t.t_end then
           push t (Send (src, Round (r', h))))
      (List.rev t.hist)
  end

(* Re-externalize the current round and ask the world for what was
   missed. The re-broadcast repairs the conservative [false] the
   muted replay put in sent_log. *)
let rejoin t =
  if t.current = 0 then begin
    (match t.round0 with
     | `Stable_vector ->
       (match t.sv with
        | Some st ->
          let inner = grab t (fun () -> SV.reannounce st) in
          push t (Tracked { round = 0; replace = true; inner })
        | None -> ())
     | `Naive ->
       t.sent_log <- List.remove_assoc 0 t.sent_log;
       broadcast_tracked t ~round:0 (Input0 t.input));
    push t (Broadcast (Rejoin 0))
  end
  else if t.current <= t.t_end then begin
    (match List.assoc_opt (t.current - 1) t.hist with
     | Some v ->
       t.sent_log <- List.remove_assoc t.current t.sent_log;
       broadcast_tracked t ~round:t.current (Round (t.current, v))
     | None -> ());
    push t (Broadcast (Rejoin t.current))
  end
  (* else: decided before the crash and the replay re-reached the
     decision — stay live so others' rejoins still get answers. *)

(* Force replay-time effects on the spot: the original recovery replay
   is synchronous, so [Defer]red continuations (and [Tracked]
   feedback) must not leak to the driver. Replay emits no transport
   effects (sends are muted, the WAL guards are closed); protocol
   trace events — a stable-vector [Stable] fires even during replay —
   are re-pushed so the driver still emits them in order. *)
let force_replay t effs =
  let replay_io =
    { send = (fun _ _ -> assert false);
      broadcast = (fun _ -> assert false);
      sends = (fun () -> 0);
      emit = (fun ev -> push t (Trace ev));
      on_wal = (fun _ -> ());
      on_sync = (fun () -> ()) }
  in
  interpret t replay_io effs

(* --- driver-facing API -------------------------------------------------- *)

let start t = grab t (fun () -> if t.down then () else start_proc t)

let deliver t ~src payload =
  wal_append t (Recovery.Delivered { src; payload });
  handle_payload t ~src payload;
  (* checkpoint cadence is judged only after every consequence of this
     delivery (including a mid-broadcast crash) has played out *)
  push t (Defer (fun () -> maybe_checkpoint t))

let handle t ~src msg =
  grab t (fun () ->
      if t.down then ()
      else
        match msg with
        | Rejoin r -> answer_rejoin t src r
        | Sv m -> deliver t ~src (Recovery.Sv_view (SV.msg_entries m))
        | Input0 x -> deliver t ~src (Recovery.Input x)
        | Round (r, h) -> deliver t ~src (Recovery.Round_msg (r, h)))

let crash t ~keep =
  t.down <- true;
  match t.wal with Some w -> Wal.crash w ~keep | None -> ()

(* Revival: rebuild protocol state from the surviving WAL prefix —
   wholesale, since a dying handler may have mutated state past the
   crash point — then re-enter the protocol. *)
let recover t =
  grab t (fun () ->
      let w =
        match t.wal with
        | Some w -> w
        | None -> invalid_arg "Instance.recover: durability not armed"
      in
      Obs.Prof.with_span "cc.recover" @@ fun () ->
      Wal.reopen w;
      let threshold = t.n - t.f in
      t.sv <- None;
      t.rounds <- Rounds.create ~threshold;
      t.naive0 <- Rounds.create ~threshold;
      t.current <- 0;
      t.h <- None;
      t.view <- None;
      t.hist <- [];
      t.snd_log <- [];
      t.sent_log <- [];
      t.down <- false;
      t.replaying <- true;
      let snap, tail =
        List.fold_left
          (fun (snap, tail) ev ->
             match ev with
             | Recovery.Checkpoint s -> (Some s, [])
             | Recovery.Delivered _ -> (snap, ev :: tail))
          (None, []) (Wal.entries w)
      in
      (match snap with
       | Some s -> restore_snapshot t s
       | None -> force_replay t (grab t (fun () -> start_proc t)));
      List.iter
        (function
          | Recovery.Delivered { src; payload } ->
            force_replay t (grab t (fun () -> handle_payload t ~src payload))
          | Recovery.Checkpoint _ -> ())
        (List.rev tail);
      t.replaying <- false;
      rejoin t)

let restore t ~entries =
  (match t.wal with
   | None -> invalid_arg "Instance.restore: durability not armed"
   | Some w ->
     List.iter (Wal.append w) entries;
     (* whatever was reloaded from disk is durable by definition *)
     Wal.sync w);
  recover t

(* --- observers ---------------------------------------------------------- *)

let poll_decision t = t.output
let me t = t.id
let down t = t.down
let decided t = t.current > t.t_end
let t_end t = t.t_end
let current_round t = t.current
let view t = t.view
let history t = List.rev t.hist
let senders t = List.rev t.snd_log
let sent_round t = List.rev t.sent_log
let redecided t = t.redecided
let wal_entries t = match t.wal with Some w -> Wal.entries w | None -> []
