module Q = Numeric.Q
module Vec = Geometry.Vec

let ( let* ) r f = Result.bind r f

let parse_ids ~n ~f s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.sort_uniq compare acc)
    | x :: rest ->
      (match int_of_string_opt x with
       | None ->
         Error (Printf.sprintf "--faulty: %S is not a process id" x)
       | Some i when i < 0 || i >= n ->
         Error
           (Printf.sprintf
              "--faulty: id %d out of range (processes are 0..%d)" i (n - 1))
       | Some i -> go (i :: acc) rest)
  in
  let* ids = go [] items in
  if List.length ids > f then
    Error
      (Printf.sprintf
         "--faulty: %d distinct ids exceed the fault bound f = %d"
         (List.length ids) f)
  else Ok ids

let parse_q label s =
  match Q.of_string s with
  | q -> Ok q
  | exception (Failure _ | Invalid_argument _) ->
    Error (Printf.sprintf "%s: %S is not a decimal or rational" label s)

let parse_kernel s =
  match Numeric.Kernel.parse s with
  | Ok m -> Ok m
  | Error msg -> Error ("--kernel: " ^ msg)

let parse_point ~d s =
  let coords = String.split_on_char ',' s |> List.map String.trim in
  if List.length coords <> d then
    Error
      (Printf.sprintf "--inputs: point %S has %d coordinates, expected %d" s
         (List.length coords) d)
  else begin
    let rec go acc = function
      | [] -> Ok (Vec.make (List.rev acc))
      | c :: rest ->
        let* q = parse_q "--inputs" c in
        go (q :: acc) rest
    in
    go [] coords
  end

let parse_scheduler ~faulty s =
  match s with
  | "lag" -> Ok (Runtime.Scheduler.lag_sources faulty)
  | _ ->
    (match Runtime.Scheduler.of_spec s with
     | Ok t -> Ok t
     | Error e -> Error ("--scheduler: " ^ e))

let parse_inputs ~n ~d s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* v = parse_point ~d p in
      go (v :: acc) rest
  in
  let* pts = go [] (String.split_on_char ';' s) in
  if List.length pts <> n then
    Error
      (Printf.sprintf "--inputs: expected %d points, got %d" n
         (List.length pts))
  else Ok (Array.of_list pts)
