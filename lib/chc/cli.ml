module Q = Numeric.Q
module Vec = Geometry.Vec

let ( let* ) r f = Result.bind r f

let parse_ids ~n ~f s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.sort_uniq compare acc)
    | x :: rest ->
      (match int_of_string_opt x with
       | None ->
         Error (Printf.sprintf "--faulty: %S is not a process id" x)
       | Some i when i < 0 || i >= n ->
         Error
           (Printf.sprintf
              "--faulty: id %d out of range (processes are 0..%d)" i (n - 1))
       | Some i -> go (i :: acc) rest)
  in
  let* ids = go [] items in
  if List.length ids > f then
    Error
      (Printf.sprintf
         "--faulty: %d distinct ids exceed the fault bound f = %d"
         (List.length ids) f)
  else Ok ids

let parse_q label s =
  match Q.of_string s with
  | q -> Ok q
  | exception (Failure _ | Invalid_argument _) ->
    Error (Printf.sprintf "%s: %S is not a decimal or rational" label s)

let parse_kernel s =
  match Numeric.Kernel.parse s with
  | Ok m -> Ok m
  | Error msg -> Error ("--kernel: " ^ msg)

let parse_poly s =
  match Geometry.Poly_engine.parse s with
  | Ok m -> Ok m
  | Error msg -> Error ("--poly: " ^ msg)

let parse_point ~d s =
  let coords = String.split_on_char ',' s |> List.map String.trim in
  if List.length coords <> d then
    Error
      (Printf.sprintf "--inputs: point %S has %d coordinates, expected %d" s
         (List.length coords) d)
  else begin
    let rec go acc = function
      | [] -> Ok (Vec.make (List.rev acc))
      | c :: rest ->
        let* q = parse_q "--inputs" c in
        go (q :: acc) rest
    in
    go [] coords
  end

let parse_scheduler ~faulty s =
  match s with
  | "lag" -> Ok (Runtime.Scheduler.lag_sources faulty)
  | _ ->
    (match Runtime.Scheduler.of_spec s with
     | Ok t -> Ok t
     | Error e -> Error ("--scheduler: " ^ e))

let parse_inputs ~n ~d s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* v = parse_point ~d p in
      go (v :: acc) rest
  in
  let* pts = go [] (String.split_on_char ';' s) in
  if List.length pts <> n then
    Error
      (Printf.sprintf "--inputs: expected %d points, got %d" n
         (List.length pts))
  else Ok (Array.of_list pts)

(* --- the shared command-line surface ----------------------------------- *)

(* One definition per flag, shared by every chc_sim subcommand and by
   chc_serve — the doc strings and defaults cannot drift apart per
   subcommand anymore. *)

module Arg = Cmdliner.Arg
module Term = Cmdliner.Term

type common = {
  n : int;
  f : int;
  d : int;
  eps : string;
  lo : string;
  hi : string;
  seed : int;
  scheduler : string;
  naive : bool;
  kernel : string option;
  poly : string option;
  inputs : string option;
  faulty : string option;
}

let n_arg =
  Arg.(value & opt int 5 & info ["n"] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(value & opt int 1 & info ["f"] ~docv:"F" ~doc:"Max faulty processes.")

let d_arg =
  Arg.(value & opt int 2 & info ["d"] ~docv:"D" ~doc:"Input dimension.")

let eps_arg =
  Arg.(value & opt string "0.1"
       & info ["eps"] ~docv:"EPS"
           ~doc:"Agreement parameter (decimal or rational a/b).")

let lo_arg =
  Arg.(value & opt string "0" & info ["lo"] ~doc:"Input lower bound (mu).")

let hi_arg =
  Arg.(value & opt string "1" & info ["hi"] ~doc:"Input upper bound (U).")

let seed_arg =
  Arg.(value & opt int 1 & info ["seed"] ~doc:"Deterministic seed.")

let scheduler_arg =
  Arg.(value & opt string "random"
       & info ["scheduler"] ~docv:"NAME[:PARAMS]"
           ~doc:"Adversary strategy, resolved against the scheduler \
                 registry: $(b,random), $(b,round-robin), $(b,lifo), \
                 $(b,fifo), $(b,lag) (starves the faulty set; or \
                 $(b,lag:0,2) for an explicit set), and the fuzzer's \
                 $(b,delay-burst:N), $(b,stab-boundary) and \
                 $(b,swarm:specA+specB).")

let naive_arg =
  Arg.(value & flag
       & info ["naive-round0"]
           ~doc:"Ablation: replace stable vector by naive first-(n-f) \
                 collection.")

let kernel_arg =
  Arg.(value & opt (some string) None
       & info ["kernel"] ~docv:"exact|filtered|staged"
           ~doc:"Arithmetic kernel: $(b,filtered) answers geometry \
                 predicates from a certified float-interval filter with \
                 exact rational fallback; $(b,staged) adds a \
                 scaled-integer second stage (machine-int/double-word \
                 evaluation, extended-exponent intervals and \
                 modular-residue zero certificates) between the filter \
                 and the fallback; $(b,exact) always runs the rational \
                 path (the oracle). Default: the $(b,CHC_KERNEL) \
                 environment variable, else filtered. Results are \
                 identical in every mode.")

let poly_arg =
  Arg.(value & opt (some string) None
       & info ["poly"] ~docv:"rebuild|incremental"
           ~doc:"Polytope engine: $(b,incremental) reuses hull/facet \
                 structure round over round (arena-cached duals, \
                 warm-started beneath-beyond, certified float-guided \
                 intersection); $(b,rebuild) reconstructs everything \
                 from scratch (the oracle). Default: the $(b,CHC_POLY) \
                 environment variable, else incremental. Results are \
                 identical in both modes.")

let inputs_arg =
  Arg.(value & opt (some string) None
       & info ["inputs"] ~docv:"P1;P2;..."
           ~doc:"Explicit inputs: points separated by ';', coordinates by \
                 ','. Default: random on the configured box.")

let faulty_arg =
  Arg.(value & opt (some string) None
       & info ["faulty"] ~docv:"I,J,..."
           ~doc:"Faulty process ids (default: 0..f-1).")

let common_args =
  let mk n f d eps lo hi seed scheduler naive kernel poly inputs faulty =
    { n; f; d; eps; lo; hi; seed; scheduler; naive; kernel; poly; inputs;
      faulty }
  in
  Term.(const mk $ n_arg $ f_arg $ d_arg $ eps_arg $ lo_arg $ hi_arg
        $ seed_arg $ scheduler_arg $ naive_arg $ kernel_arg $ poly_arg
        $ inputs_arg $ faulty_arg)

let scenario_of_common c =
  let* eps = parse_q "--eps" c.eps in
  let* lo = parse_q "--lo" c.lo in
  let* hi = parse_q "--hi" c.hi in
  let* config =
    match Config.make ~n:c.n ~f:c.f ~d:c.d ~eps ~lo ~hi with
    | config -> Ok config
    | exception Invalid_argument msg -> Error msg
  in
  let* faulty =
    match c.faulty with
    | Some s -> parse_ids ~n:c.n ~f:c.f s
    | None -> Ok (List.init c.f Fun.id)
  in
  let* scheduler = parse_scheduler ~faulty c.scheduler in
  let round0 = if c.naive then `Naive else `Stable_vector in
  let spec =
    Scenario.default ~config ~seed:c.seed ~faulty ~scheduler ~round0 ()
  in
  match c.inputs with
  | None -> Ok spec
  | Some s ->
    let* pts = parse_inputs ~n:c.n ~d:c.d s in
    Ok { spec with Scenario.inputs = pts }

let set_kernel = function
  | None -> Ok ()
  | Some s -> Result.map Numeric.Kernel.set_default (parse_kernel s)

let set_poly = function
  | None -> Ok ()
  | Some s -> Result.map Geometry.Poly_engine.set_default (parse_poly s)

let recoverize ~delay ~keep spec =
  let crash =
    Array.map
      (fun plan ->
         match plan with
         | Runtime.Crash.Never | Runtime.Crash.Crash_recover _ -> plan
         | Runtime.Crash.After_sends k ->
           Runtime.Crash.Crash_recover
             { trigger = Runtime.Crash.Sends k; delay; keep }
         | Runtime.Crash.After_receives k ->
           Runtime.Crash.Crash_recover
             { trigger = Runtime.Crash.Receives k; delay; keep })
      spec.Scenario.crash
  in
  { spec with Scenario.crash }
