module Json = Codec.Json
module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module SV = Protocol.Stable_vector

type payload =
  | Sv_view of (int * Vec.t) list
  | Input of Vec.t
  | Round_msg of int * Polytope.t

type snapshot = {
  current : int;
  h : Polytope.t option;
  view : (int * Vec.t) list option;
  hist : (int * Polytope.t) list;
  snd_log : (int * int list) list;
  sent_log : (int * bool) list;
  rounds : (int * (int * Polytope.t) list * bool) list;
  naive0 : (int * (int * Vec.t) list * bool) list;
  sv : Vec.t SV.snapshot option;
}

type event =
  | Delivered of { src : int; payload : payload }
  | Checkpoint of snapshot

(* --- JSON (exact: rationals as strings, canonical order) -------------- *)

let q_json q = Json.Str (Q.to_string q)
let vec_json v = Json.List (Array.to_list v |> List.map q_json)
let poly_json h = Json.List (List.map vec_json (Polytope.vertices h))

let pair_json f (k, v) = Json.List [ Json.Int k; f v ]

let entries_json entries = Json.List (List.map (pair_json vec_json) entries)

let table_json value_json rounds =
  Json.List
    (List.map
       (fun (round, arrivals, frozen) ->
          Json.List
            [ Json.Int round;
              Json.List (List.map (pair_json value_json) arrivals);
              Json.Bool frozen ])
       rounds)

let opt_json f = function None -> Json.Null | Some v -> f v

let payload_json = function
  | Sv_view entries ->
    Json.Obj [ ("kind", Json.Str "sv"); ("entries", entries_json entries) ]
  | Input x -> Json.Obj [ ("kind", Json.Str "input"); ("x", vec_json x) ]
  | Round_msg (t, h) ->
    Json.Obj
      [ ("kind", Json.Str "round"); ("t", Json.Int t); ("h", poly_json h) ]

let sv_json (s : Vec.t SV.snapshot) =
  Json.Obj
    [ ("view", entries_json s.SV.snap_view);
      ( "votes",
        Json.List
          (List.map
             (fun (view, senders) ->
                Json.List
                  [ entries_json view;
                    Json.List (List.map (fun i -> Json.Int i) senders) ])
             s.SV.snap_votes) );
      ("stable", opt_json entries_json s.SV.snap_stable) ]

let snapshot_json s =
  Json.Obj
    [ ("current", Json.Int s.current);
      ("h", opt_json poly_json s.h);
      ("view", opt_json entries_json s.view);
      ("hist", Json.List (List.map (pair_json poly_json) s.hist));
      ( "snd",
        Json.List
          (List.map
             (pair_json (fun ids -> Json.List (List.map (fun i -> Json.Int i) ids)))
             s.snd_log) );
      ( "sent",
        Json.List (List.map (pair_json (fun b -> Json.Bool b)) s.sent_log) );
      ("rounds", table_json poly_json s.rounds);
      ("naive0", table_json vec_json s.naive0);
      ("sv", opt_json sv_json s.sv) ]

let event_to_json = function
  | Delivered { src; payload } ->
    Json.Obj
      [ ("ev", Json.Str "delivered"); ("src", Json.Int src);
        ("payload", payload_json payload) ]
  | Checkpoint s ->
    Json.Obj [ ("ev", Json.Str "checkpoint"); ("state", snapshot_json s) ]

let event_to_string e = Json.to_string (event_to_json e)

let ( let* ) r f = Result.bind r f

let q_of_json j =
  let* s = Json.to_str j in
  match Q.of_string s with
  | q -> Ok q
  | exception (Invalid_argument _ | Failure _) ->
    Error (Printf.sprintf "%S is not a rational" s)

let vec_of_json j =
  let* l = Json.to_list j in
  let* coords = Json.map_result q_of_json l in
  Ok (Array.of_list coords)

let poly_of_json ~dim j =
  let* l = Json.to_list j in
  let* pts = Json.map_result vec_of_json l in
  match Polytope.of_points ~dim pts with
  | h -> Ok h
  | exception Invalid_argument msg -> Error msg

let pair_of_json f j =
  let* l = Json.to_list j in
  match l with
  | [ k; v ] ->
    let* k = Json.to_int k in
    let* v = f v in
    Ok (k, v)
  | _ -> Error "expected a [key, value] pair"

let entries_of_json j =
  let* l = Json.to_list j in
  Json.map_result (pair_of_json vec_of_json) l

let opt_of_json f = function Json.Null -> Ok None | j -> Result.map Option.some (f j)

let bool_of_json = function
  | Json.Bool b -> Ok b
  | _ -> Error "expected a boolean"

let table_of_json value_of_json j =
  let* l = Json.to_list j in
  Json.map_result
    (fun row ->
       let* l = Json.to_list row in
       match l with
       | [ round; arrivals; frozen ] ->
         let* round = Json.to_int round in
         let* al = Json.to_list arrivals in
         let* arrivals = Json.map_result (pair_of_json value_of_json) al in
         let* frozen = bool_of_json frozen in
         Ok (round, arrivals, frozen)
       | _ -> Error "expected a [round, arrivals, frozen] row")
    l

let payload_of_json ~dim j =
  let* kind = Json.str_field "kind" j in
  match kind with
  | "sv" ->
    let* entries = Result.bind (Json.field "entries" j) entries_of_json in
    Ok (Sv_view entries)
  | "input" ->
    let* x = Result.bind (Json.field "x" j) vec_of_json in
    Ok (Input x)
  | "round" ->
    let* t = Json.int_field "t" j in
    let* h = Result.bind (Json.field "h" j) (poly_of_json ~dim) in
    Ok (Round_msg (t, h))
  | k -> Error (Printf.sprintf "unknown wal payload kind %S" k)

let sv_of_json j =
  let* view = Result.bind (Json.field "view" j) entries_of_json in
  let* votes =
    let* l = Json.list_field "votes" j in
    Json.map_result
      (fun row ->
         let* l = Json.to_list row in
         match l with
         | [ view; senders ] ->
           let* view = entries_of_json view in
           let* sl = Json.to_list senders in
           let* senders = Json.map_result Json.to_int sl in
           Ok (view, senders)
         | _ -> Error "expected a [view, senders] vote row")
      l
  in
  let* stable = Result.bind (Json.field "stable" j) (opt_of_json entries_of_json) in
  Ok { SV.snap_view = view; snap_votes = votes; snap_stable = stable }

let snapshot_of_json ~dim j =
  let* current = Json.int_field "current" j in
  let* h = Result.bind (Json.field "h" j) (opt_of_json (poly_of_json ~dim)) in
  let* view = Result.bind (Json.field "view" j) (opt_of_json entries_of_json) in
  let* hist =
    let* l = Json.list_field "hist" j in
    Json.map_result (pair_of_json (poly_of_json ~dim)) l
  in
  let* snd_log =
    let* l = Json.list_field "snd" j in
    Json.map_result
      (pair_of_json (fun ids ->
           let* l = Json.to_list ids in
           Json.map_result Json.to_int l))
      l
  in
  let* sent_log =
    let* l = Json.list_field "sent" j in
    Json.map_result (pair_of_json bool_of_json) l
  in
  let* rounds = Result.bind (Json.field "rounds" j) (table_of_json (poly_of_json ~dim)) in
  let* naive0 = Result.bind (Json.field "naive0" j) (table_of_json vec_of_json) in
  let* sv = Result.bind (Json.field "sv" j) (opt_of_json sv_of_json) in
  Ok { current; h; view; hist; snd_log; sent_log; rounds; naive0; sv }

let event_of_json ~dim j =
  let* ev = Json.str_field "ev" j in
  match ev with
  | "delivered" ->
    let* src = Json.int_field "src" j in
    let* payload = Result.bind (Json.field "payload" j) (payload_of_json ~dim) in
    Ok (Delivered { src; payload })
  | "checkpoint" ->
    let* s = Result.bind (Json.field "state" j) (snapshot_of_json ~dim) in
    Ok (Checkpoint s)
  | k -> Error (Printf.sprintf "unknown wal event kind %S" k)

let event_of_string ~dim s =
  let* j = Json.of_string s in
  event_of_json ~dim j
