module Q = Numeric.Q
module Vec = Geometry.Vec
module Rng = Runtime.Rng
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler
module Json = Codec.Json

type t = {
  config : Config.t;
  inputs : Vec.t array;
  crash : Crash.plan array;
  scheduler : Scheduler.t;
  seed : int;
  round0 : Cc.round0_mode;
  prefix : (int * int) list;
  kernel : Numeric.Kernel.mode option;
      (* [None]: run under the ambient default. [Some m]: the executor
         pins the arithmetic kernel, so replayed artifacts re-run under
         the kernel that produced the original finding. *)
  wal : Runtime.Wal.config option;
      (* [None]: recovery mode arms itself (with the default WAL
         config) iff any plan is [Crash_recover]. [Some c]: force the
         WAL on with this config — how the fuzzer injects the
         [Unsound] sync mode. *)
}

let version = 2

let oldest_readable_version = 1

let make ~config ~inputs ~crash ~scheduler ~seed ?(round0 = `Stable_vector)
    ?(prefix = []) ?kernel ?wal () =
  let n = config.Config.n in
  if Array.length inputs <> n then invalid_arg "Scenario.make: need n inputs";
  Array.iter (Config.validate_input config) inputs;
  if Array.length crash <> n then invalid_arg "Scenario.make: need n crash plans";
  List.iter
    (fun (src, dst) ->
       if src < 0 || src >= n || dst < 0 || dst >= n then
         invalid_arg "Scenario.make: prefix channel out of range")
    prefix;
  (match wal with
   | Some c when c.Runtime.Wal.checkpoint_every < 1 ->
     invalid_arg "Scenario.make: checkpoint_every must be >= 1"
   | _ -> ());
  { config; inputs; crash; scheduler; seed; round0; prefix; kernel; wal }

let random_inputs ~config ~rng ?(grid = 1000) () =
  let { Config.n; d; lo; hi; _ } = config in
  let span = Q.sub hi lo in
  let coord () =
    Q.add lo (Q.mul span (Q.of_ints (Rng.int rng (grid + 1)) grid))
  in
  Array.init n (fun _ -> Array.init d (fun _ -> coord ()))

(* A crash-free probe run of the same scenario: executions coincide up
   to the first crash point, so the probe's per-process send/receive
   counts bound which budgets can actually fire (Crash.clamp). *)
let ensure_crashes t =
  if Array.for_all (fun p -> p = Crash.Never) t.crash then t
  else
  let n = t.config.Config.n in
  let probe =
    Cc.execute ~round0:t.round0 ~config:t.config ~inputs:t.inputs
      ~crash:(Array.make n Crash.Never) ~scheduler:t.scheduler ~seed:t.seed ()
  in
  { t with
    crash =
      Crash.clamp t.crash ~sends:probe.Cc.sends_attempted
        ~receives:probe.Cc.receives_seen }

let default ~config ~seed ?faulty ?(scheduler = Scheduler.random_uniform)
    ?(round0 = `Stable_vector) ?(max_budget = 60) ?(ensure_crash = false)
    ?wal () =
  let rng = Rng.create seed in
  let faulty =
    match faulty with
    | Some l -> l
    | None -> List.init config.Config.f Fun.id
  in
  let inputs = random_inputs ~config ~rng () in
  let crash =
    Crash.random_for ~rng ~n:config.Config.n ~faulty ~max_sends:max_budget
  in
  let t =
    { config; inputs; crash; scheduler; seed; round0; prefix = [];
      kernel = None; wal }
  in
  if ensure_crash then ensure_crashes t else t

let describe t =
  let { Config.n; f; d; eps; _ } = t.config in
  Printf.sprintf "n=%d f=%d d=%d eps=%s seed=%d sched=%s crash=[%s]%s%s"
    n f d (Q.to_string eps) t.seed
    (Scheduler.to_spec t.scheduler)
    (String.concat ","
       (Array.to_list t.crash
        |> List.map (fun p -> Format.asprintf "%a" Crash.pp p)))
    (match t.round0 with `Stable_vector -> "" | `Naive -> " round0=naive")
    (match t.prefix with
     | [] -> ""
     | p -> Printf.sprintf " prefix=%d" (List.length p))
  ^ (match t.kernel with
     | None -> ""
     | Some m -> " kernel=" ^ Numeric.Kernel.to_string m)
  ^ (match t.wal with
     | None -> ""
     | Some c ->
       Printf.sprintf " wal=%s/ckpt-%d"
         (Runtime.Wal.sync_mode_to_string c.Runtime.Wal.sync)
         c.Runtime.Wal.checkpoint_every)

(* --- JSON ------------------------------------------------------------- *)

let q_json q = Json.Str (Q.to_string q)

let vec_json v = Json.List (Array.to_list v |> List.map q_json)

let plan_json = function
  | Crash.Never -> Json.Obj [ ("kind", Json.Str "never") ]
  | Crash.After_sends k ->
    Json.Obj [ ("kind", Json.Str "after-sends"); ("budget", Json.Int k) ]
  | Crash.After_receives k ->
    Json.Obj [ ("kind", Json.Str "after-receives"); ("budget", Json.Int k) ]
  | Crash.Crash_recover { trigger; delay; keep } ->
    let trig, budget =
      match trigger with
      | Crash.Sends k -> ("sends", k)
      | Crash.Receives k -> ("receives", k)
    in
    Json.Obj
      [ ("kind", Json.Str "crash-recover");
        ("trigger", Json.Str trig);
        ("budget", Json.Int budget);
        ("delay", Json.Int delay);
        ("keep", Json.Int keep) ]

let wal_json (c : Runtime.Wal.config) =
  Json.Obj
    [ ("checkpoint-every", Json.Int c.Runtime.Wal.checkpoint_every);
      ("sync", Json.Str (Runtime.Wal.sync_mode_to_string c.Runtime.Wal.sync)) ]

let to_json t =
  let { Config.n; f; d; eps; lo; hi } = t.config in
  Json.Obj
    ([ ("version", Json.Int version);
      ( "config",
        Json.Obj
          [ ("n", Json.Int n); ("f", Json.Int f); ("d", Json.Int d);
            ("eps", q_json eps); ("lo", q_json lo); ("hi", q_json hi) ] );
      ("inputs", Json.List (Array.to_list t.inputs |> List.map vec_json));
      ("crash", Json.List (Array.to_list t.crash |> List.map plan_json));
      ( "scheduler",
        Json.Obj
          [ ("name", Json.Str (Scheduler.name t.scheduler));
            ("params", Json.Str (Scheduler.params t.scheduler)) ] );
      ("seed", Json.Int t.seed);
      ( "round0",
        Json.Str
          (match t.round0 with
           | `Stable_vector -> "stable-vector"
           | `Naive -> "naive") );
      ( "prefix",
        Json.List
          (List.map
             (fun (src, dst) -> Json.List [ Json.Int src; Json.Int dst ])
             t.prefix) ) ]
     @
     (* Omitted when unset, so pre-kernel artifacts and their canonical
        strings are unchanged (still version 1). *)
     (match t.kernel with
      | None -> []
      | Some m -> [ ("kernel", Json.Str (Numeric.Kernel.to_string m)) ])
     @
     (* Likewise omitted when unset: recovery mode then arms itself
        from the crash plans alone. *)
     (match t.wal with
      | None -> []
      | Some c -> [ ("wal", wal_json c) ]))

let ( let* ) r f = Result.bind r f

let q_of_json j =
  let* s = Json.to_str j in
  match Q.of_string s with
  | q -> Ok q
  | exception (Invalid_argument _ | Failure _) ->
    Error (Printf.sprintf "%S is not a rational" s)

let vec_of_json j =
  let* l = Json.to_list j in
  let* coords = Json.map_result q_of_json l in
  Ok (Array.of_list coords)

let plan_of_json j =
  let* kind = Json.str_field "kind" j in
  match kind with
  | "never" -> Ok Crash.Never
  | "after-sends" ->
    let* k = Json.int_field "budget" j in
    if k < 0 then Error "negative crash budget" else Ok (Crash.After_sends k)
  | "after-receives" ->
    let* k = Json.int_field "budget" j in
    if k < 0 then Error "negative crash budget" else Ok (Crash.After_receives k)
  | "crash-recover" ->
    let* trig = Json.str_field "trigger" j in
    let* budget = Json.int_field "budget" j in
    let* delay = Json.int_field "delay" j in
    let* keep = Json.int_field "keep" j in
    if budget < 0 then Error "negative crash budget"
    else if delay < 0 then Error "negative recovery delay"
    else if keep < 0 then Error "negative disk-prefix keep"
    else
      let* trigger =
        match trig with
        | "sends" -> Ok (Crash.Sends budget)
        | "receives" -> Ok (Crash.Receives budget)
        | s -> Error (Printf.sprintf "unknown crash-recover trigger %S" s)
      in
      Ok (Crash.Crash_recover { trigger; delay; keep })
  | k -> Error (Printf.sprintf "unknown crash plan kind %S" k)

let wal_of_json j =
  let* k = Json.int_field "checkpoint-every" j in
  let* s = Json.str_field "sync" j in
  let* sync = Runtime.Wal.sync_mode_of_string s in
  if k < 1 then Error "checkpoint-every must be >= 1"
  else Ok { Runtime.Wal.checkpoint_every = k; sync }

let channel_of_json j =
  let* l = Json.to_list j in
  match l with
  | [ a; b ] ->
    let* src = Json.to_int a in
    let* dst = Json.to_int b in
    Ok (src, dst)
  | _ -> Error "prefix entry must be a [src,dst] pair"

type error =
  | Syntax of string
  | Version of { found : int; oldest : int; newest : int }
  | Invalid of string
  | Io of string

let error_to_string = function
  | Syntax msg | Invalid msg | Io msg -> msg
  | Version { found; oldest; newest } ->
    Printf.sprintf "scenario version %d unsupported (this build reads %d-%d)"
      found oldest newest

exception Data_error of error

let () =
  Printexc.register_printer (function
    | Data_error e -> Some ("Scenario.Data_error: " ^ error_to_string e)
    | _ -> None)

(* The field decoders below accumulate plain string errors; {!of_json}
   wraps them into the typed {!error} at the boundary. *)
let decode j =
  let* cj = Json.field "config" j in
    let* n = Json.int_field "n" cj in
    let* f = Json.int_field "f" cj in
    let* d = Json.int_field "d" cj in
    let* eps = Result.bind (Json.field "eps" cj) q_of_json in
    let* lo = Result.bind (Json.field "lo" cj) q_of_json in
    let* hi = Result.bind (Json.field "hi" cj) q_of_json in
    let* config =
      match Config.make ~n ~f ~d ~eps ~lo ~hi with
      | c -> Ok c
      | exception Invalid_argument msg -> Error msg
    in
    let* inputs_l = Json.list_field "inputs" j in
    let* inputs = Json.map_result vec_of_json inputs_l in
    let* crash_l = Json.list_field "crash" j in
    let* crash = Json.map_result plan_of_json crash_l in
    let* sj = Json.field "scheduler" j in
    let* sname = Json.str_field "name" sj in
    let* sparams = Json.str_field "params" sj in
    let* scheduler =
      Scheduler.of_spec
        (if sparams = "" then sname else sname ^ ":" ^ sparams)
    in
    let* seed = Json.int_field "seed" j in
    let* round0 =
      let* s = Json.str_field "round0" j in
      match s with
      | "stable-vector" -> Ok `Stable_vector
      | "naive" -> Ok `Naive
      | s -> Error (Printf.sprintf "unknown round0 mode %S" s)
    in
    let* prefix_l = Json.list_field "prefix" j in
    let* prefix = Json.map_result channel_of_json prefix_l in
    let* kernel =
      match Json.member "kernel" j with
      | None -> Ok None
      | Some kj ->
        let* s = Json.to_str kj in
        let* m = Numeric.Kernel.parse s in
        Ok (Some m)
    in
    (* v2 additions: absent in v1 files (and v1 files cannot carry
       crash-recover plans, which only this version writes). *)
    let* wal =
      match Json.member "wal" j with
      | None -> Ok None
      | Some wj -> Result.map Option.some (wal_of_json wj)
    in
    match
      make ~config ~inputs:(Array.of_list inputs)
        ~crash:(Array.of_list crash) ~scheduler ~seed ~round0 ~prefix ?kernel
        ?wal ()
    with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg

let of_json j =
  match Json.int_field "version" j with
  | Error msg -> Error (Invalid msg)
  | Ok v ->
    if v < oldest_readable_version || v > version then
      Error
        (Version
           { found = v; oldest = oldest_readable_version; newest = version })
    else Result.map_error (fun msg -> Invalid msg) (decode j)

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.of_string s with
  | Error msg -> Error (Syntax msg)
  | Ok j -> of_json j

let equal a b = to_string a = to_string b

let save ~path t =
  Obs.Sink.write_file_exn ~path (fun oc ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string (String.trim s)
  | exception Sys_error msg -> Error (Io msg)
