(** Typed execution traces — the transcript of one simulated run.

    The paper's model makes an execution a pure function of
    (config, inputs, seed, adversary), so a recorded event trace is a
    complete, replayable artifact: re-running the same spec reproduces
    the same trace byte-for-byte, whatever the size of the parallel
    geometry pool (the pool only accelerates pure computations; it
    never touches scheduling). The test suite and the
    [chc_sim trace] subcommand rely on exactly this.

    Layers emit into a trace through {!emit}:
    - [Runtime.Sim] records transport events (send / drop / deliver /
      dead-letter / crash);
    - [Protocol.Stable_vector] records view stabilization;
    - [Chc.Cc] records round transitions and decisions.

    Traces are owned by a single simulator loop and are not
    thread-safe; worker domains never emit. *)

type event =
  | Send of { src : int; dst : int; seq : int }
      (** message accepted into channel [src→dst]; [seq] is the global
          send sequence number *)
  | Drop of { src : int }
      (** a send swallowed because [src] has crashed *)
  | Deliver of { step : int; src : int; dst : int; seq : int }
      (** scheduler decision [step] delivered message [seq] *)
  | Dead_letter of { step : int; src : int; dst : int; seq : int }
      (** delivery to an already-crashed receiver *)
  | Crash of { pid : int; sends : int }
      (** [pid] crashed after [sends] successful sends *)
  | Recover of { pid : int; step : int }
      (** [pid] revived from a {!Runtime.Crash.Crash_recover} crash at
          scheduler step [step] (its log replay and rejoin sends follow
          immediately) *)
  | Round_enter of { pid : int; round : int; vertices : int }
      (** [pid] computed [h_pid[round]] with that many hull vertices *)
  | Stable of { pid : int; view : int }
      (** [pid]'s stable vector stabilized on a [view]-entry view *)
  | Decide of { pid : int; round : int; vertices : int }
      (** [pid] decided (round = t_end) *)

type t

val create : unit -> t

val emit : t -> event -> unit
(** Append an event. O(1). *)

val length : t -> int

val events : t -> event list
(** In emission order. *)

val schedule : t -> (int * int) list
(** The run's scheduler decisions as (src, dst) channel choices, in
    order — the [Deliver] and [Dead_letter] events, which consume one
    decision each. Feeding this list back as [Runtime.Sim]'s [prefix]
    replays the recorded delivery order exactly; the fuzzer's shrinker
    uses truncations of it. *)

val event_to_json : event -> string
(** One compact JSON object, fixed key order, integer fields only —
    equal events render identically. *)

val to_jsonl : t -> string
(** One event per line, in emission order. *)

val output : out_channel -> t -> unit
