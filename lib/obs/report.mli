(** One aggregated observability report for an execution (or a whole
    bench run): transport metrics, per-round protocol metrics, and a
    {!Metrics} registry snapshot covering every instrumented subsystem
    (memo tables, domain pool, wire codec, ...).

    The report is the "what happened" companion to {!Trace} (the
    "in which order"): [chc_sim run --verbose] and the [bench-smoke]
    alias print one, and E1/E5 consume the per-round rows instead of
    their former ad-hoc counters.

    Layering note: this module deliberately holds plain records. The
    simulator's metrics are mapped in by the caller ([Runtime] sits
    above [Obs] in the dependency order), and the per-round rows are
    produced by [Chc.Executor.round_metrics] — wire sizes need
    [Codec], which [Obs] must not depend on. Subsystem counters reach
    the report through {!Metrics.register_collector}, so [Obs] no
    longer links against [Parallel] at all. *)

type sim = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}
(** Mirror of [Runtime.Sim.metrics] (kept as a plain record — see the
    layering note above). *)

type round = {
  round : int;          (** protocol round [t] *)
  messages : int;       (** round-[t] broadcast payloads (one per process
                            that completed round [t]) *)
  wire_bytes : int;     (** total [Codec.Wire] size of those payloads *)
  max_vertices : int;   (** largest [h_i[t]] vertex count *)
  diameter : float option;
      (** max pairwise Hausdorff distance between witness processes'
          [h_i[t]]; [None] when not computed or fewer than 2 witnesses *)
}

type t = {
  sim_metrics : sim option;
  rounds : round list;
  metrics : Metrics.snapshot list;
      (** {!Metrics.snapshot_all} at capture time, sorted — memo
          hit/miss counters, pool utilization, wire sizes, span
          counts, ... *)
  trace_events : int option;
}

val capture :
  sim:sim option -> ?rounds:round list -> ?trace_events:int -> unit -> t
(** Snapshot the whole {!Metrics} registry and combine with the
    per-execution data supplied by the caller. [sim] is a required
    (option-typed) argument: an earlier version defaulted it and
    callers silently produced reports with no transport metrics at
    all; pass [None] only when there genuinely was no simulator run. *)

val to_string : t -> string
(** Human-readable rendering: sim/trace/round tables followed by the
    Prometheus text exposition of the metrics snapshot. *)

val to_json : t -> string
(** Machine-readable rendering (stable key order) for bench tooling
    and [chc_sim run --report-json]. Histogram values carry count,
    sum, p50/p90/p99 and max. *)

val print : out_channel -> t -> unit
