(** One aggregated observability report for an execution (or a whole
    bench run): transport metrics, per-round protocol metrics, kernel
    cache counters and domain-pool utilization.

    The report is the "what happened" companion to {!Trace} (the
    "in which order"): [chc_sim run --verbose] and the [bench-smoke]
    alias print one, and E1/E5 consume the per-round rows instead of
    their former ad-hoc counters.

    Layering note: this module deliberately holds plain records. The
    simulator's metrics are mapped in by the caller ([Runtime] sits
    above [Obs] in the dependency order), and the per-round rows are
    produced by [Chc.Executor.round_metrics] — wire sizes need
    [Codec], which [Obs] must not depend on. Kernel counters
    ({!Parallel.Memo}, {!Parallel.Pool}) are snapshotted directly. *)

type sim = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  steps : int;
}
(** Mirror of [Runtime.Sim.metrics] (kept as a plain record — see the
    layering note above). *)

type round = {
  round : int;          (** protocol round [t] *)
  messages : int;       (** round-[t] broadcast payloads (one per process
                            that completed round [t]) *)
  wire_bytes : int;     (** total [Codec.Wire] size of those payloads *)
  max_vertices : int;   (** largest [h_i[t]] vertex count *)
  diameter : float option;
      (** max pairwise Hausdorff distance between witness processes'
          [h_i[t]]; [None] when not computed or fewer than 2 witnesses *)
}

type cache = {
  cache_name : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type pool = {
  pool_size : int;
  tasks_run : int;
  batches : int;
}

type t = {
  sim_metrics : sim option;
  rounds : round list;
  caches : cache list;
  pool_stats : pool option;
  trace_events : int option;
}

val capture :
  ?sim:sim -> ?rounds:round list -> ?trace_events:int -> unit -> t
(** Snapshot every process-wide counter (named memo tables via
    {!Parallel.Memo.all_stats}, the global pool) and combine with the
    per-execution data supplied by the caller. *)

val hit_rate : cache -> float
(** Percentage of lookups served from the cache (0 when unused). *)

val to_string : t -> string

val print : out_channel -> t -> unit
