(* Process-wide metrics registry. Instruments are tiny mutable cells
   behind one mutex each; the registry itself is a mutex-guarded list.
   Everything snapshot-facing is sorted so renderings are stable. *)

type labels = (string * string) list

let norm_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

(* ------------------------------------------------------------------ *)
(* Instruments. *)

type counter = int Atomic.t

type gauge = float Atomic.t

(* Log-2 buckets spanning 2^-30 .. 2^33 — wide enough for span
   latencies in seconds and payload sizes in bytes with one shape.
   Index [nbuckets] is the overflow bucket. *)
let nbuckets = 64
let bucket_bound k = 2.0 ** Float.of_int (k - 30)

type histogram = {
  hm : Mutex.t;
  counts : int array;          (* length nbuckets + 1 *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmax : float;
}

type instrument =
  | ICounter of counter
  | IGauge of gauge
  | IHistogram of histogram

(* ------------------------------------------------------------------ *)
(* Registry. *)

type entry = { e_metric : string; e_labels : labels; instr : instrument }

type histogram_stats = {
  count : int;
  sum : float;
  buckets : (float * int) list;
  p50 : float;
  p90 : float;
  p99 : float;
  max_seen : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_stats

type snapshot = { metric : string; labels : labels; value : value }

let registry_m = Mutex.create ()
let registry : entry list ref = ref []
let collectors : (unit -> snapshot list) list ref = ref []
let help_table : (string, string) Hashtbl.t = Hashtbl.create 32

let set_help metric text =
  Mutex.lock registry_m;
  if not (Hashtbl.mem help_table metric) then
    Hashtbl.add help_table metric text;
  Mutex.unlock registry_m

let help_of metric =
  Mutex.lock registry_m;
  let h = Hashtbl.find_opt help_table metric in
  Mutex.unlock registry_m;
  h

let find_or_register metric labels make =
  let labels = norm_labels labels in
  Mutex.lock registry_m;
  let found =
    List.find_opt
      (fun e -> e.e_metric = metric && e.e_labels = labels)
      !registry
  in
  let e =
    match found with
    | Some e -> e
    | None ->
      let e = { e_metric = metric; e_labels = labels; instr = make () } in
      registry := e :: !registry;
      e
  in
  Mutex.unlock registry_m;
  e

let counter ?help ?(labels = []) metric =
  Option.iter (set_help metric) help;
  match (find_or_register metric labels (fun () -> ICounter (Atomic.make 0))).instr with
  | ICounter c -> c
  | _ -> invalid_arg (metric ^ " is already registered with another type")

let incr c = Atomic.incr c
let add c k = ignore (Atomic.fetch_and_add c k)

let gauge ?help ?(labels = []) metric =
  Option.iter (set_help metric) help;
  match (find_or_register metric labels (fun () -> IGauge (Atomic.make 0.0))).instr with
  | IGauge g -> g
  | _ -> invalid_arg (metric ^ " is already registered with another type")

let set g v = Atomic.set g v

let histogram ?help ?(labels = []) metric =
  Option.iter (set_help metric) help;
  let make () =
    IHistogram
      { hm = Mutex.create ();
        counts = Array.make (nbuckets + 1) 0;
        hcount = 0;
        hsum = 0.0;
        hmax = neg_infinity }
  in
  match (find_or_register metric labels make).instr with
  | IHistogram h -> h
  | _ -> invalid_arg (metric ^ " is already registered with another type")

let bucket_index v =
  (* Smallest k with v <= 2^(k-30); non-positive values land in the
     first bucket, giants in the overflow bucket. *)
  if v <= bucket_bound 0 then 0
  else begin
    let rec go k =
      if k >= nbuckets then nbuckets
      else if v <= bucket_bound k then k
      else go (k + 1)
    in
    go 1
  end

let observe h v =
  let k = bucket_index v in
  Mutex.lock h.hm;
  h.counts.(k) <- h.counts.(k) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v > h.hmax then h.hmax <- v;
  Mutex.unlock h.hm

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

let percentile ~counts ~count ~max_seen q =
  if count = 0 then 0.0
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let rec go k acc =
      if k > nbuckets then max_seen
      else begin
        let acc = acc + counts.(k) in
        if acc >= rank then
          if k = nbuckets then max_seen
          else Float.min (bucket_bound k) max_seen
        else go (k + 1) acc
      end
    in
    go 0 0
  end

let histogram_snapshot h =
  Mutex.lock h.hm;
  let counts = Array.copy h.counts in
  let count = h.hcount and sum = h.hsum in
  let max_seen = if h.hcount = 0 then 0.0 else h.hmax in
  Mutex.unlock h.hm;
  let buckets = ref [] in
  for k = nbuckets downto 0 do
    if counts.(k) > 0 then
      let bound = if k = nbuckets then infinity else bucket_bound k in
      buckets := (bound, counts.(k)) :: !buckets
  done;
  { count;
    sum;
    buckets = !buckets;
    p50 = percentile ~counts ~count ~max_seen 0.50;
    p90 = percentile ~counts ~count ~max_seen 0.90;
    p99 = percentile ~counts ~count ~max_seen 0.99;
    max_seen }

let percentile_of_stats stats q =
  (* Rebuild a dense count array from the sparse bucket list. *)
  let counts = Array.make (nbuckets + 1) 0 in
  List.iter
    (fun (bound, c) ->
       let k =
         if bound = infinity then nbuckets
         else bucket_index bound
       in
       counts.(k) <- counts.(k) + c)
    stats.buckets;
  percentile ~counts ~count:stats.count ~max_seen:stats.max_seen q

let snapshot_of_entry e =
  { metric = e.e_metric;
    labels = e.e_labels;
    value =
      (match e.instr with
       | ICounter c -> Counter (Atomic.get c)
       | IGauge g -> Gauge (Atomic.get g)
       | IHistogram h -> Histogram (histogram_snapshot h)) }

let register_collector f =
  Mutex.lock registry_m;
  collectors := !collectors @ [ f ];
  Mutex.unlock registry_m

let snapshot_all () =
  Mutex.lock registry_m;
  let entries = !registry and cs = !collectors in
  Mutex.unlock registry_m;
  let own = List.map snapshot_of_entry entries in
  let collected = List.concat_map (fun f -> f ()) cs in
  List.sort
    (fun a b ->
       match String.compare a.metric b.metric with
       | 0 -> Stdlib.compare a.labels b.labels
       | c -> c)
    (own @ collected)

(* ------------------------------------------------------------------ *)
(* Exposition. *)

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let fmt_float v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let type_of_value = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* HELP text escaping per the text-format grammar: backslash and
   line-feed only (label values additionally escape the quote). *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let exposition snapshots =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let last_family = ref "" in
  List.iter
    (fun s ->
       if s.metric <> !last_family then begin
         last_family := s.metric;
         (match help_of s.metric with
          | Some text when text <> "" ->
            p "# HELP %s %s\n" s.metric (escape_help text)
          | Some _ | None -> ());
         p "# TYPE %s %s\n" s.metric (type_of_value s.value)
       end;
       match s.value with
       | Counter c -> p "%s%s %d\n" s.metric (render_labels s.labels) c
       | Gauge g -> p "%s%s %s\n" s.metric (render_labels s.labels) (fmt_float g)
       | Histogram h ->
         let cum = ref 0 in
         List.iter
           (fun (bound, c) ->
              cum := !cum + c;
              if bound <> infinity then
                p "%s_bucket%s %d\n" s.metric
                  (render_labels (s.labels @ [ ("le", fmt_float bound) ]))
                  !cum)
           h.buckets;
         p "%s_bucket%s %d\n" s.metric
           (render_labels (s.labels @ [ ("le", "+Inf") ]))
           h.count;
         p "%s_sum%s %s\n" s.metric (render_labels s.labels) (fmt_float h.sum);
         p "%s_count%s %d\n" s.metric (render_labels s.labels) h.count)
    snapshots;
  Buffer.contents b

let exposition_all () = exposition (snapshot_all ())
