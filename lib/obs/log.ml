(* Structured JSONL logging. Same skeleton as Prof: an atomic gate,
   per-domain buffers registered on first use, merge at flush time.
   The rate limiter is one mutex-guarded token bucket — contention on
   it only exists on the logging-on path, and the bucket math is a
   handful of int64 ops. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "off" -> Ok None
  | "debug" -> Ok (Some Debug)
  | "info" -> Ok (Some Info)
  | "warn" -> Ok (Some Warn)
  | "error" -> Ok (Some Error)
  | s ->
    Error
      (Printf.sprintf
         "unknown log level %S (expected off|debug|info|warn|error)" s)

(* 4 = disabled: no level has rank >= 4. *)
let gate = Atomic.make 4

let set_level = function
  | None -> Atomic.set gate 4
  | Some l -> Atomic.set gate (level_rank l)

let enabled l = level_rank l >= Atomic.get gate

(* --- clock (replaceable for tests) ------------------------------------ *)

let default_clock = Monotonic_clock.now
let clock = ref default_clock
let set_clock = function None -> clock := default_clock | Some f -> clock := f

(* --- rate limiter ------------------------------------------------------ *)

type bucket = {
  mutable tokens : float;
  mutable refill_at : int64;    (* last refill timestamp *)
  mutable per_s : int;
  mutable burst : int;
}

let bucket_m = Mutex.create ()
let bucket = { tokens = 1000.0; refill_at = 0L; per_s = 1000; burst = 1000 }
let dropped_count = Atomic.make 0

let set_rate ~per_s ~burst =
  if per_s < 1 || burst < 1 then invalid_arg "Log.set_rate: need >= 1";
  Mutex.lock bucket_m;
  bucket.per_s <- per_s;
  bucket.burst <- burst;
  bucket.tokens <- float_of_int burst;
  bucket.refill_at <- !clock ();
  Mutex.unlock bucket_m

(* One token per line; refill proportional to elapsed monotonic time,
   capped at burst. *)
let take_token now =
  Mutex.lock bucket_m;
  let dt_ns = Int64.to_float (Int64.sub now bucket.refill_at) in
  if dt_ns > 0.0 then begin
    bucket.tokens <-
      Float.min
        (float_of_int bucket.burst)
        (bucket.tokens +. (dt_ns *. 1e-9 *. float_of_int bucket.per_s));
    bucket.refill_at <- now
  end;
  let ok = bucket.tokens >= 1.0 in
  if ok then bucket.tokens <- bucket.tokens -. 1.0;
  Mutex.unlock bucket_m;
  if not ok then Atomic.incr dropped_count;
  ok

let dropped () = Atomic.get dropped_count

(* --- per-domain line buffers ------------------------------------------ *)

type buffer = { mutable lines : (int64 * string) list (* newest first *) }

let buffers_m = Mutex.create ()
let buffers : buffer list ref = ref []

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { lines = [] } in
      Mutex.lock buffers_m;
      buffers := b :: !buffers;
      Mutex.unlock buffers_m;
      b)

let pending () =
  Mutex.lock buffers_m;
  let bs = !buffers in
  Mutex.unlock buffers_m;
  List.fold_left (fun acc b -> acc + List.length b.lines) 0 bs

(* --- rendering --------------------------------------------------------- *)

type field = I of int | S of string | B of bool | F of float

let escape buf s =
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let render ~ts_ns ~lvl ~event fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ts_ns\":";
  Buffer.add_string buf (Int64.to_string ts_ns);
  Buffer.add_string buf ",\"level\":\"";
  Buffer.add_string buf (level_to_string lvl);
  Buffer.add_string buf "\",\"event\":\"";
  escape buf event;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
       Buffer.add_string buf ",\"";
       escape buf k;
       Buffer.add_string buf "\":";
       match v with
       | I n -> Buffer.add_string buf (string_of_int n)
       | B b -> Buffer.add_string buf (if b then "true" else "false")
       | S s ->
         Buffer.add_char buf '"';
         escape buf s;
         Buffer.add_char buf '"'
       | F x ->
         (* floats travel as strings: Codec.Json parses ints only *)
         Buffer.add_char buf '"';
         Buffer.add_string buf (Printf.sprintf "%.6g" x);
         Buffer.add_char buf '"')
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let log lvl event fields =
  if enabled lvl then begin
    let now = !clock () in
    if take_token now then begin
      let b = Domain.DLS.get key in
      b.lines <- (now, render ~ts_ns:now ~lvl ~event fields) :: b.lines
    end
  end

let debug e f = log Debug e f
let info e f = log Info e f
let warn e f = log Warn e f
let error e f = log Error e f

(* --- sink + flush ------------------------------------------------------ *)

let sink_m = Mutex.create ()
let sink : (string -> unit) option ref = ref None
let appender : Sink.appender option ref = ref None
let flushed_drops = ref 0

let set_sink f =
  Mutex.lock sink_m;
  sink := f;
  appender := None;
  Mutex.unlock sink_m

let open_file ~path =
  let ap = Sink.append_open ~path in
  Mutex.lock sink_m;
  sink := Some (Sink.append_line ap);
  appender := Some ap;
  Mutex.unlock sink_m

let flush () =
  Mutex.lock sink_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_m) @@ fun () ->
  match !sink with
   | None ->
     (* no sink: discard so buffers cannot grow without bound *)
     Mutex.lock buffers_m;
     List.iter (fun b -> b.lines <- []) !buffers;
     Mutex.unlock buffers_m
   | Some write ->
     Mutex.lock buffers_m;
     let bs = !buffers in
     Mutex.unlock buffers_m;
     let batches =
       List.filter_map
         (fun b ->
            match b.lines with
            | [] -> None
            | lines ->
              b.lines <- [];
              Some (List.rev lines))
         bs
     in
     let lines =
       List.sort
         (fun (ta, _) (tb, _) -> Int64.compare ta tb)
         (List.concat batches)
     in
     let d = Atomic.get dropped_count in
     if d > !flushed_drops && lines <> [] then begin
       let summary =
         render ~ts_ns:(fst (List.hd lines)) ~lvl:Warn ~event:"log_dropped"
           [ ("count", I (d - !flushed_drops)) ]
       in
       flushed_drops := d;
       write summary
     end;
     List.iter (fun (_, line) -> write line) lines

let close () =
  flush ();
  Mutex.lock sink_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_m) @@ fun () ->
  let ap = !appender in
  sink := None;
  appender := None;
  match ap with
  | Some ap ->
    Sink.append_sync ap;
    Sink.append_close ap
  | None -> ()
