(** Low-overhead monotonic-clock span profiler.

    Wall-clock timing is deliberately kept {e out} of {!Trace}: traces
    are deterministic replay artifacts (byte-identical across pool
    sizes and machines), while spans measure one run of one machine.
    This module is the timing side: scoped spans recorded into
    per-domain buffers, merged only at export time, so worker domains
    never contend on a shared sink.

    Disabled (the default), {!with_span} runs its thunk directly after
    one atomic load — hot paths additionally guard with {!enabled} so
    the profiling-off cost is a branch, never a closure. Tier-1
    determinism is untouched: spans never influence scheduling, and
    nothing here writes into a {!Trace}.

    Timestamps come from the CLOCK_MONOTONIC stub of
    [bechamel.monotonic_clock] and are clamped to be non-decreasing
    per domain, so exported tracks are always well-formed. *)

val set_enabled : bool -> unit
(** Globally switch span recording. Enable before the workload, disable
    (and {!reset}) after export. *)

val enabled : unit -> bool
(** One atomic load — the hot-path guard. *)

val reset : unit -> unit
(** Drop every recorded span. Only call while no instrumented workload
    is running. *)

val now_ns : unit -> int64
(** The profiler's clock (CLOCK_MONOTONIC, ns) — for callers measuring
    {!slice} intervals themselves. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span. Exceptions still
    close the span (and re-raise), so begin/end events always match.
    Nested calls nest by stack order within their domain. *)

val slice :
  ?attrs:(string * string) list ->
  track:int ->
  ts_ns:int64 ->
  dur_ns:int64 ->
  string ->
  unit
(** A {e complete} slice ([ph:"X"]) on an explicit track — the
    serving daemon's per-job timelines, where one instance id is one
    Perfetto track whatever worker domain happened to pump it. The
    caller supplies the measured interval (take [ts_ns] from the same
    monotonic clock spans use). Slices are buffered on the recording
    domain but exported under a dedicated process id, grouped by
    [track]; they do not count toward {!span_count}. No-op while
    disabled. *)

(** {1 Export} *)

type event = {
  tid : int;                      (** recording domain's id *)
  phase : [ `B | `E | `X of int64 * int ];
  name : string;                  (** [""] on [`E] events *)
  ts_ns : int64;
      (** monotonic; non-decreasing per tid for [`B]/[`E] (explicit
          [`X] timestamps are the caller's) *)
  attrs : (string * string) list;
}

val events : unit -> event list
(** All recorded events, grouped by domain (tid ascending), in
    recording order within each domain. *)

val span_count : unit -> int
(** Completed spans recorded so far. *)

val to_chrome_json : unit -> string
(** Chrome trace-event / Perfetto JSON: one array of ["B"]/["E"]
    events, one pid (= tid) per domain, plus ["X"] complete slices
    under a dedicated track process (pid 1000000, tid = the slice's
    track); [ts] in microseconds rebased to the earliest event. Loads
    directly in [ui.perfetto.dev] or [chrome://tracing]. *)

type stat = {
  calls : int;
  total_ns : float;   (** inclusive time *)
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : float;
}

val summary : unit -> (string * stat) list
(** Per-span-name latency aggregate over all domains (inclusive
    durations; percentiles exact, computed from the recorded spans;
    [`X] slices contribute their explicit duration), sorted by
    descending total time. *)
