(** Checked, atomic file output for every artifact this project writes
    (traces, profiles, fuzz counterexamples, reports, WAL dumps).

    The bare [open_out]/[close_out] idiom used before this module
    silently loses data twice over: [close_out] can swallow a short
    write on a full disk, and nothing ever named the path in the error
    message. Worse, the first version of this module opened [path]
    in place (truncating), so a crash mid-write destroyed the previous
    contents too. Writes now go to [path.tmp], are fsynced, renamed
    over [path], and the directory is fsynced — at every instant
    [path] holds either the complete old or the complete new content.
    The file is the caller's only once [Ok] comes back. *)

exception Write_error of { path : string; message : string }
(** Raised by {!write_file_exn}: a typed I/O failure carrying the
    target path, so recovery-time callers can decide retry-vs-abort
    (and [chc_sim] can map it to a dedicated exit code) instead of
    pattern-matching a [Failure] string. *)

val write_file : path:string -> (out_channel -> unit) -> (unit, string) result
(** Write [path] atomically: open [path.tmp] (binary), run the writer,
    flush, fsync, close, rename onto [path], then fsync the directory
    (best-effort). Any [Sys_error]/[Unix_error] raised along the way is
    returned as [Error] prefixed with [path], and the temporary file is
    removed — [path] keeps its previous content. Exceptions other than
    I/O errors propagate (after closing and removing the temporary). *)

val write_string : path:string -> string -> (unit, string) result
(** [write_file] specialized to one string. *)

val write_file_exn : path:string -> (out_channel -> unit) -> unit
(** Like {!write_file} but raises {!Write_error} — for callers already
    on an exception path. *)

(** {1 Streaming appenders}

    The atomic writers above replace a file wholesale; a write-ahead
    log instead needs entries on disk {e during} execution. An
    appender opens a file once (created or extended in place) and
    appends lines; {!append_sync} is the write barrier — everything
    appended before it survives a crash of the writing process, later
    lines may be lost or tail-truncated (exactly the disk-prefix model
    of {!Runtime.Wal}). All operations raise {!Write_error} on I/O
    failure, carrying the path. Appenders are single-owner: not
    thread-safe, one per file. *)

type appender

val append_open : path:string -> appender
(** Open (creating if absent) [path] for appending. *)

val append_line : appender -> string -> unit
(** Append one line (a ['\n'] is added). Buffered until the next
    {!append_sync} or {!append_close}. *)

val append_sync : appender -> unit
(** Flush and [fsync] — the durability barrier. *)

val append_close : appender -> unit
(** Flush and close (no fsync — pair with {!append_sync} for a durable
    final state). Idempotent; the appender is unusable afterwards. *)
