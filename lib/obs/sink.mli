(** Checked file output for every artifact this project writes
    (traces, profiles, fuzz counterexamples, reports).

    The bare [open_out]/[close_out] idiom used before this module
    silently loses data twice over: [close_out] can swallow a short
    write on a full disk, and nothing ever named the path in the error
    message. Here every write is flushed, fsynced and closed with
    errors mapped to [Error "<path>: <reason>"]; the file is the
    caller's only once [Ok] comes back. *)

val write_file : path:string -> (out_channel -> unit) -> (unit, string) result
(** Open [path] (truncating, binary), run the writer, then flush,
    fsync and close. Any [Sys_error]/[Unix_error] raised by the
    writer, the flush or the close is returned as [Error] prefixed
    with [path]. Exceptions other than I/O errors propagate (after an
    attempt to close). *)

val write_string : path:string -> string -> (unit, string) result
(** [write_file] specialized to one string. *)

val write_file_exn : path:string -> (out_channel -> unit) -> unit
(** Like {!write_file} but raises [Failure] with the composed message
    — for callers already on an exception path. *)
