type sim = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}

type round = {
  round : int;
  messages : int;
  wire_bytes : int;
  max_vertices : int;
  diameter : float option;
}

type t = {
  sim_metrics : sim option;
  rounds : round list;
  metrics : Metrics.snapshot list;
  trace_events : int option;
}

let capture ~sim ?(rounds = []) ?trace_events () =
  { sim_metrics = sim;
    rounds;
    metrics = Metrics.snapshot_all ();
    trace_events }

let to_string t =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "== observability report ==\n";
  (match t.sim_metrics with
   | Some m ->
     p
       "sim      sent=%d delivered=%d dropped=%d dead-lettered=%d \
        recoveries=%d steps=%d\n"
       m.sent m.delivered m.dropped m.dead_lettered m.recoveries m.steps
   | None -> ());
  (match t.trace_events with
   | Some k -> p "trace    %d events\n" k
   | None -> ());
  (match t.rounds with
   | [] -> ()
   | rounds ->
     p "round    msgs  wire-bytes  max-verts  diameter\n";
     List.iter
       (fun r ->
          p "%5d  %6d  %10d  %9d  %s\n" r.round r.messages r.wire_bytes
            r.max_vertices
            (match r.diameter with
             | Some d -> Printf.sprintf "%.6f" d
             | None -> "-"))
       rounds);
  (match t.metrics with
   | [] -> ()
   | metrics ->
     p "-- metrics --\n";
     Buffer.add_string buf (Metrics.exposition metrics));
  Buffer.contents buf

(* Minimal JSON helpers — Obs sits below Codec, so it renders its own. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_json t =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{";
  (match t.sim_metrics with
   | Some m ->
     p
       {|"sim":{"sent":%d,"delivered":%d,"dropped":%d,"dead_lettered":%d,"recoveries":%d,"steps":%d},|}
       m.sent m.delivered m.dropped m.dead_lettered m.recoveries m.steps
   | None -> p {|"sim":null,|});
  (match t.trace_events with
   | Some k -> p {|"trace_events":%d,|} k
   | None -> p {|"trace_events":null,|});
  p {|"rounds":[%s],|}
    (String.concat ","
       (List.map
          (fun r ->
             Printf.sprintf
               {|{"round":%d,"messages":%d,"wire_bytes":%d,"max_vertices":%d,"diameter":%s}|}
               r.round r.messages r.wire_bytes r.max_vertices
               (match r.diameter with
                | Some d -> json_float d
                | None -> "null"))
          t.rounds));
  p {|"metrics":[%s]}|}
    (String.concat ","
       (List.map
          (fun (s : Metrics.snapshot) ->
             let labels =
               String.concat ","
                 (List.map
                    (fun (k, v) ->
                       Printf.sprintf {|"%s":"%s"|} (json_escape k)
                         (json_escape v))
                    s.Metrics.labels)
             in
             let value =
               match s.Metrics.value with
               | Metrics.Counter c ->
                 Printf.sprintf {|"type":"counter","value":%d|} c
               | Metrics.Gauge g ->
                 Printf.sprintf {|"type":"gauge","value":%s|} (json_float g)
               | Metrics.Histogram h ->
                 Printf.sprintf
                   {|"type":"histogram","count":%d,"sum":%s,"p50":%s,"p90":%s,"p99":%s,"max":%s|}
                   h.Metrics.count (json_float h.Metrics.sum)
                   (json_float h.Metrics.p50) (json_float h.Metrics.p90)
                   (json_float h.Metrics.p99) (json_float h.Metrics.max_seen)
             in
             Printf.sprintf {|{"metric":"%s","labels":{%s},%s}|}
               (json_escape s.Metrics.metric) labels value)
          t.metrics));
  Buffer.contents buf

let print oc t = output_string oc (to_string t)
