type sim = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  steps : int;
}

type round = {
  round : int;
  messages : int;
  wire_bytes : int;
  max_vertices : int;
  diameter : float option;
}

type cache = {
  cache_name : string;
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type pool = {
  pool_size : int;
  tasks_run : int;
  batches : int;
}

type t = {
  sim_metrics : sim option;
  rounds : round list;
  caches : cache list;
  pool_stats : pool option;
  trace_events : int option;
}

let cache_of_memo (name, (s : Parallel.Memo.stats)) =
  { cache_name = name;
    hits = s.Parallel.Memo.hits;
    misses = s.Parallel.Memo.misses;
    evictions = s.Parallel.Memo.evictions;
    entries = s.Parallel.Memo.entries }

let pool_of_stats (s : Parallel.Pool.stats) =
  { pool_size = s.Parallel.Pool.pool_size;
    tasks_run = s.Parallel.Pool.tasks_run;
    batches = s.Parallel.Pool.batches }

(* Snapshot every process-wide counter (named memo tables, the global
   pool) and combine with whatever per-execution data the caller
   has. *)
let capture ?sim ?(rounds = []) ?trace_events () =
  { sim_metrics = sim;
    rounds;
    caches = List.map cache_of_memo (Parallel.Memo.all_stats ());
    pool_stats =
      Some (pool_of_stats (Parallel.Pool.stats (Parallel.Pool.global ())));
    trace_events }

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0
  else 100.0 *. float_of_int c.hits /. float_of_int total

let to_string t =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "== observability report ==\n";
  (match t.sim_metrics with
   | Some m ->
     p "sim      sent=%d delivered=%d dropped=%d dead-lettered=%d steps=%d\n"
       m.sent m.delivered m.dropped m.dead_lettered m.steps
   | None -> ());
  (match t.trace_events with
   | Some k -> p "trace    %d events\n" k
   | None -> ());
  (match t.rounds with
   | [] -> ()
   | rounds ->
     p "round    msgs  wire-bytes  max-verts  diameter\n";
     List.iter
       (fun r ->
          p "%5d  %6d  %10d  %9d  %s\n" r.round r.messages r.wire_bytes
            r.max_vertices
            (match r.diameter with
             | Some d -> Printf.sprintf "%.6f" d
             | None -> "-"))
       rounds);
  (match t.pool_stats with
   | Some s ->
     p "pool     size=%d tasks=%d batches=%d\n" s.pool_size s.tasks_run
       s.batches
   | None -> ());
  List.iter
    (fun c ->
       p "cache    %-13s hits=%d misses=%d evictions=%d entries=%d (hit rate %.1f%%)\n"
         c.cache_name c.hits c.misses c.evictions c.entries (hit_rate c))
    t.caches;
  Buffer.contents buf

let print oc t = output_string oc (to_string t)
