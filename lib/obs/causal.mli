(** Causal (happens-before) analysis of a recorded {!Trace}.

    The deterministic event trace fixes the happens-before relation of
    a run exactly: process-local events are ordered by their trace
    positions (the simulator is single-threaded), and every [Deliver]
    depends on its matching [Send]. A [Send], in turn, was emitted
    while its sender handled either process start or one specific
    triggering delivery — the delivery immediately preceding it in the
    sender's local order. Chaining triggering deliveries backwards
    from a process's [Decide] yields {e the} message chain that gated
    the decision: shorten any link and the decision as scheduled could
    not have happened.

    Everything here is computed in {b scheduler steps}, not wall-clock
    — the causal skeleton is a property of the schedule and therefore
    byte-identical across pool sizes, machines and reruns (the
    profiler, {!Prof}, owns wall-clock). *)

type hop = {
  seq : int;          (** global send sequence number of the message *)
  hop_src : int;
  hop_dst : int;
  deliver_step : int; (** scheduler step that delivered it *)
}

type process = {
  pid : int;
  decide_round : int option;   (** [None]: crashed / never decided *)
  decide_step : int option;    (** step of the delivery that triggered it *)
  chain : hop list;
      (** critical message chain to the decision, in causal order
          (first element is a message sent from some process's
          [on_start]); empty if the process never decided *)
  stable_step : int option;    (** step at which round 0 stabilized *)
  round_steps : (int * int) list;
      (** (round, step at [Round_enter]) in increasing round order *)
}

type t = {
  n : int;
  total_steps : int;  (** scheduler decisions consumed by the run *)
  processes : process array;
}

val of_events : n:int -> Trace.event list -> t

val analyze : n:int -> Trace.t -> t

val chain_length : process -> int
(** Hops on the critical chain (0 for an undecided process). *)

val max_chain_length : t -> int
(** Longest critical chain over decided processes (0 if none). *)

val round_latencies : process -> (int * int) list
(** Per-round stabilization latency in steps:
    [(r, step(Round_enter r) - step(Round_enter (r-1)))], with round 0
    measured from step 0. *)

val to_string : t -> string
(** Human-readable per-process critical chains and round latencies —
    what [chc_sim trace --critical-path] prints. Identical across pool
    sizes. *)

val to_json : t -> string
(** Compact JSON rendering (fixed key order, integers only), suitable
    for attaching to fuzz artifacts. *)
