(* Happens-before reconstruction. One forward pass over the trace
   maintains, per process, the seq of the delivery it is currently
   handling ("trigger"); each Send links to its sender's trigger at
   send time, giving the message-dependency forest. Decide events walk
   the links backwards to recover the critical chain. *)

type hop = {
  seq : int;
  hop_src : int;
  hop_dst : int;
  deliver_step : int;
}

type process = {
  pid : int;
  decide_round : int option;
  decide_step : int option;
  chain : hop list;
  stable_step : int option;
  round_steps : (int * int) list;
}

type t = {
  n : int;
  total_steps : int;
  processes : process array;
}

type send_info = { s_src : int; s_dst : int; parent : int option }

let of_events ~n events =
  if n < 1 then invalid_arg "Causal.of_events: n must be >= 1";
  let sends : (int, send_info) Hashtbl.t = Hashtbl.create 256 in
  let deliver_step : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let trigger = Array.make n None in       (* seq being handled, per pid *)
  let current_step = ref 0 in
  let decide_round = Array.make n None in
  let decide_step = Array.make n None in
  let chain = Array.make n [] in
  let stable_step = Array.make n None in
  let rev_rounds = Array.make n [] in
  let walk_chain pid =
    let rec go acc = function
      | None -> acc
      | Some seq ->
        let info = Hashtbl.find sends seq in
        let step =
          match Hashtbl.find_opt deliver_step seq with
          | Some s -> s
          | None -> -1  (* unreachable: a trigger was delivered *)
        in
        go
          ({ seq; hop_src = info.s_src; hop_dst = info.s_dst;
             deliver_step = step }
           :: acc)
          info.parent
    in
    go [] trigger.(pid)
  in
  List.iter
    (fun ev ->
       match ev with
       | Trace.Send { src; dst; seq } ->
         Hashtbl.replace sends seq
           { s_src = src; s_dst = dst; parent = trigger.(src) }
       | Trace.Deliver { step; src = _; dst; seq } ->
         current_step := step;
         Hashtbl.replace deliver_step seq step;
         trigger.(dst) <- Some seq
       | Trace.Dead_letter { step; _ } ->
         (* Consumes a scheduler decision but changes no process
            state: the receiver is already crashed. *)
         current_step := step
       | Trace.Drop _ | Trace.Crash _ -> ()
       | Trace.Recover { pid; _ } ->
         (* A revival's replay/rejoin sends are caused by the recovery
            itself, not by the last message delivered before the
            crash. *)
         trigger.(pid) <- None
       | Trace.Round_enter { pid; round; _ } ->
         rev_rounds.(pid) <- (round, !current_step) :: rev_rounds.(pid)
       | Trace.Stable { pid; _ } ->
         if stable_step.(pid) = None then
           stable_step.(pid) <- Some !current_step
       | Trace.Decide { pid; round; _ } ->
         decide_round.(pid) <- Some round;
         decide_step.(pid) <- Some !current_step;
         chain.(pid) <- walk_chain pid)
    events;
  { n;
    total_steps = !current_step;
    processes =
      Array.init n (fun pid ->
          { pid;
            decide_round = decide_round.(pid);
            decide_step = decide_step.(pid);
            chain = chain.(pid);
            stable_step = stable_step.(pid);
            round_steps = List.rev rev_rounds.(pid) }) }

let analyze ~n trace = of_events ~n (Trace.events trace)

let chain_length p = List.length p.chain

let max_chain_length t =
  Array.fold_left
    (fun acc p -> if p.decide_round = None then acc
      else Stdlib.max acc (chain_length p))
    0 t.processes

let round_latencies p =
  let rec go prev = function
    | [] -> []
    | (r, step) :: rest -> (r, step - prev) :: go step rest
  in
  go 0 p.round_steps

let to_string t =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "== causal critical paths (%d scheduler steps) ==\n" t.total_steps;
  Array.iter
    (fun pr ->
       match pr.decide_round with
       | None -> p "process %d: never decided\n" pr.pid
       | Some round ->
         p "process %d: decided round %d at step %d; critical chain %d hop(s)\n"
           pr.pid round
           (Option.value ~default:0 pr.decide_step)
           (chain_length pr);
         if pr.chain <> [] then
           p "  %s\n"
             (String.concat " -> "
                (List.map
                   (fun h ->
                      Printf.sprintf "%d>%d#%d@%d" h.hop_src h.hop_dst h.seq
                        h.deliver_step)
                   pr.chain)))
    t.processes;
  p "round stabilization latency (steps):\n";
  Array.iter
    (fun pr ->
       if pr.round_steps <> [] then
         p "  process %d: %s\n" pr.pid
           (String.concat " "
              (List.map
                 (fun (r, l) -> Printf.sprintf "r%d=%d" r l)
                 (round_latencies pr))))
    t.processes;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p {|{"n":%d,"total_steps":%d,"processes":[|} t.n t.total_steps;
  Array.iteri
    (fun i pr ->
       if i > 0 then p ",";
       let opt = function None -> "null" | Some v -> string_of_int v in
       p {|{"pid":%d,"decide_round":%s,"decide_step":%s,"stable_step":%s,"chain":[%s],"rounds":[%s]}|}
         pr.pid (opt pr.decide_round) (opt pr.decide_step)
         (opt pr.stable_step)
         (String.concat ","
            (List.map
               (fun h ->
                  Printf.sprintf {|{"seq":%d,"src":%d,"dst":%d,"step":%d}|}
                    h.seq h.hop_src h.hop_dst h.deliver_step)
               pr.chain))
         (String.concat ","
            (List.map
               (fun (r, s) -> Printf.sprintf {|{"round":%d,"step":%d}|} r s)
               pr.round_steps)))
    t.processes;
  p "]}";
  Buffer.contents buf
