type event =
  | Send of { src : int; dst : int; seq : int }
  | Drop of { src : int }
  | Deliver of { step : int; src : int; dst : int; seq : int }
  | Dead_letter of { step : int; src : int; dst : int; seq : int }
  | Crash of { pid : int; sends : int }
  | Recover of { pid : int; step : int }
  | Round_enter of { pid : int; round : int; vertices : int }
  | Stable of { pid : int; view : int }
  | Decide of { pid : int; round : int; vertices : int }

(* Events accumulate in reverse; a trace is only ever appended to by
   the (single-threaded) simulator loop, so no lock is needed. *)
type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let emit t ev =
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let length t = t.count

let events t = List.rev t.rev_events

(* Deliver and Dead_letter are exactly the events that consume one
   scheduler decision each, so projecting them out in order recovers
   the full channel-choice schedule of the run. *)
let schedule t =
  List.filter_map
    (function
      | Deliver { src; dst; _ } | Dead_letter { src; dst; _ } -> Some (src, dst)
      | Send _ | Drop _ | Crash _ | Recover _ | Round_enter _ | Stable _
      | Decide _ -> None)
    (events t)

(* One compact JSON object per event. Every field is an int, printed
   with a fixed key order, so equal traces render to byte-identical
   JSONL — the replay check depends on this. *)
let event_to_json = function
  | Send { src; dst; seq } ->
    Printf.sprintf {|{"ev":"send","src":%d,"dst":%d,"seq":%d}|} src dst seq
  | Drop { src } ->
    Printf.sprintf {|{"ev":"drop","src":%d}|} src
  | Deliver { step; src; dst; seq } ->
    Printf.sprintf {|{"ev":"deliver","step":%d,"src":%d,"dst":%d,"seq":%d}|}
      step src dst seq
  | Dead_letter { step; src; dst; seq } ->
    Printf.sprintf {|{"ev":"dead_letter","step":%d,"src":%d,"dst":%d,"seq":%d}|}
      step src dst seq
  | Crash { pid; sends } ->
    Printf.sprintf {|{"ev":"crash","pid":%d,"sends":%d}|} pid sends
  | Recover { pid; step } ->
    Printf.sprintf {|{"ev":"recover","pid":%d,"step":%d}|} pid step
  | Round_enter { pid; round; vertices } ->
    Printf.sprintf {|{"ev":"round_enter","pid":%d,"round":%d,"vertices":%d}|}
      pid round vertices
  | Stable { pid; view } ->
    Printf.sprintf {|{"ev":"stable","pid":%d,"view":%d}|} pid view
  | Decide { pid; round; vertices } ->
    Printf.sprintf {|{"ev":"decide","pid":%d,"round":%d,"vertices":%d}|}
      pid round vertices

let to_jsonl t =
  let b = Buffer.create (64 * (t.count + 1)) in
  List.iter
    (fun ev ->
       Buffer.add_string b (event_to_json ev);
       Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let output oc t = output_string oc (to_jsonl t)
