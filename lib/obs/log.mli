(** Leveled structured logging — JSON lines, built for the daemon.

    {!Trace} is the deterministic transcript and {!Prof} the wall-clock
    profile; this module is the third observability surface: operator-
    facing events ("instance 17 decided", "WAL append failed", "slow
    request") that must be tailable {e while the process serves}, not
    reconstructed after it exits.

    Design mirrors {!Prof}: one atomic level gate (disabled costs a
    load and a compare), per-domain buffers so worker domains never
    contend on a shared sink, and an explicit {!flush} that merges
    buffers by timestamp and hands lines to the configured sink —
    normally an {!Sink} appender, so durability semantics match the
    WAL's. A token-bucket rate limiter protects the sink from event
    storms: over-budget lines are counted ({!dropped}), never written,
    and every flush that follows drops emits one [log_dropped] summary
    line so the gap is visible in the stream itself.

    Logging is observation only: nothing here influences scheduling,
    protocol state or traces, so executions are byte-identical with
    logging on or off (pinned by a test across pool sizes).

    Line schema (one JSON object per line, parseable by
    {!Codec.Json.of_string} — ints and strings only, no floats):
    [{"ts_ns":<int>,"level":"info","event":"<name>", ...fields}].
    [ts_ns] is the monotonic clock of the recording domain, so lines
    sort by time but carry no wall-clock epoch. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"] / ["info"] / ["warn"] / ["error"]. *)

val set_level : level option -> unit
(** [Some l] enables records at [l] and above; [None] (the default)
    disables logging entirely. *)

val level_of_string : string -> (level option, string) result
(** CLI vocabulary: ["off"], ["debug"], ["info"], ["warn"], ["error"]. *)

val enabled : level -> bool
(** One atomic load and compare — the hot-path guard. *)

(** Field values. Floats are rendered as JSON {e strings} (["0.0123"])
    so every line stays within {!Codec.Json}'s exact vocabulary. *)
type field =
  | I of int
  | S of string
  | B of bool
  | F of float  (** rendered as a string, 6 significant digits *)

val log : level -> string -> (string * field) list -> unit
(** [log lvl event fields] records one line into the calling domain's
    buffer (no I/O). Below the level gate: no-op. Over the rate
    budget: counted in {!dropped} and discarded. *)

val debug : string -> (string * field) list -> unit
val info : string -> (string * field) list -> unit
val warn : string -> (string * field) list -> unit
val error : string -> (string * field) list -> unit

(** {1 Sinks and flushing} *)

val set_sink : (string -> unit) option -> unit
(** Where {!flush} sends completed lines (without the trailing
    newline). [None] (the default) makes flush drop buffered lines on
    the floor — set a sink before enabling. *)

val open_file : path:string -> unit
(** Route the sink through an {!Sink} appender on [path] (created or
    extended). Raises {!Sink.Write_error} like the appender does. *)

val flush : unit -> unit
(** Drain every domain's buffer, merge lines by [ts_ns] (stable across
    domains), and hand them to the sink in order. Call from the owning
    loop between pump rounds — concurrent flushes are serialized, but
    lines a worker domain records {e during} a flush may land in the
    next one. Emits a [log_dropped] summary line first if the rate
    limiter discarded anything since the previous flush. *)

val close : unit -> unit
(** Flush, then sync+close an {!open_file} appender (no-op for a
    custom sink). The sink is unset afterwards. *)

(** {1 Rate limiting} *)

val set_rate : per_s:int -> burst:int -> unit
(** Token bucket: sustained [per_s] lines per second with bursts up to
    [burst] (both >= 1; defaults 1000/1000). Refill is computed from
    the monotonic clock at each {!log}. *)

val dropped : unit -> int
(** Lines discarded by the rate limiter since the process started. *)

(** {1 Test hooks} *)

val set_clock : (unit -> int64) option -> unit
(** Replace the monotonic ns clock ([None] restores it) so tests can
    drive the rate limiter deterministically. *)

val pending : unit -> int
(** Buffered (recorded, not yet flushed) line count across domains. *)
