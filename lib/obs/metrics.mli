(** Process-wide metrics registry: named counters, gauges and
    log-scaled-bucket histograms, with a stable Prometheus-style text
    exposition.

    This replaces the ad-hoc counter plumbing that {!Report} used to
    carry (memo-table and pool records hard-wired into the report
    type): any layer registers its instruments — or a {e collector}
    that snapshots counters it already maintains — and every reporting
    surface ([chc_sim run --verbose], bench-smoke, [Report.to_json])
    reads one uniform snapshot.

    Naming scheme (Prometheus conventions): all metrics are prefixed
    [chc_]; monotone counts end in [_total]; histograms carry a unit
    suffix ([_seconds], [_bytes]); subsystem labels distinguish
    instances, e.g. [chc_memo_hits_total{table="hull"}].

    All instruments are thread-/domain-safe (one mutex per instrument;
    registry under its own mutex). Snapshots are consistent per
    instrument, not across instruments — fine for reporting. *)

type labels = (string * string) list
(** Label pairs, e.g. [[("table", "hull")]]. Order is normalized
    (sorted by key) so equal label sets are equal. *)

(** {1 Instruments} *)

type counter

val counter : ?help:string -> ?labels:labels -> string -> counter
(** Find-or-create: the same (name, labels) always yields the same
    underlying counter. Hold the result in the hot path rather than
    re-resolving. [help] attaches a one-line family description for
    the exposition's [# HELP] header (first registration wins). *)

val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge : ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit

type histogram

val histogram : ?help:string -> ?labels:labels -> string -> histogram
(** Log-scaled buckets: powers of two from [2^-30] to [2^33] plus an
    overflow bucket, so one shape serves latencies in seconds and
    payload sizes in bytes alike. *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type histogram_stats = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** (upper bound, observations in that bucket) — non-cumulative,
          empty buckets omitted; the overflow bucket has bound
          [infinity] *)
  p50 : float;
  p90 : float;
  p99 : float;
      (** percentile estimates: the upper bound of the bucket holding
          the rank, clamped to [max_seen] — exact to within one
          power-of-two bucket *)
  max_seen : float;  (** exact *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_stats

type snapshot = {
  metric : string;
  labels : labels;
  value : value;
}

val register_collector : (unit -> snapshot list) -> unit
(** Adapt counters a subsystem already maintains (e.g.
    [Parallel.Memo.all_stats]) into the registry: the thunk runs at
    every {!snapshot_all}. Collectors must be re-entrant and must not
    call back into the registry. *)

val snapshot_all : unit -> snapshot list
(** Registered instruments plus every collector's output, sorted by
    (metric, labels) — the order is stable across runs. *)

(** {1 Exposition} *)

val set_help : string -> string -> unit
(** Attach a [# HELP] description to a metric family (first write
    wins) — for collector-backed families whose instruments live
    elsewhere. *)

val exposition : snapshot list -> string
(** Prometheus text format: per family, an optional [# HELP] line then
    one [# TYPE] line, then one sample per (labels) instance;
    histograms expose cumulative [_bucket{le="..."}] samples (empty
    buckets elided, ["+Inf"] always present) plus [_sum] and [_count].
    Conformance to the text-format grammar is pinned by the checker in
    [test/test_obs.ml]. Equal snapshots render to byte-identical
    text. *)

val exposition_all : unit -> string
(** [exposition (snapshot_all ())]. *)

(** {1 Test hooks} *)

val percentile_of_stats : histogram_stats -> float -> float
(** Recompute a percentile from the bucket list (exposed so tests can
    cross-check p50/p90/p99). *)
