(* Span profiler: per-domain append-only buffers, merged at export
   time. The enabled flag is one atomic; everything else happens only
   on the profiling-on path. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type event = {
  tid : int;
  phase : [ `B | `E | `X of int64 * int ];
  name : string;
  ts_ns : int64;
  attrs : (string * string) list;
}

(* Complete slices on explicit tracks (per-job timelines) render under
   their own Perfetto process so they never collide with the per-domain
   span tracks. *)
let track_pid = 1_000_000

type buffer = {
  b_tid : int;
  mutable rev : event list;
  mutable last : int64;        (* per-domain monotonicity clamp *)
  mutable completed : int;
}

(* Buffers register themselves on a domain's first span and stay
   registered for the domain's lifetime (pool workers persist across
   batches). Export and reset assume a quiescent workload. *)
let buffers_m = Mutex.create ()
let buffers : buffer list ref = ref []

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { b_tid = (Domain.self () :> int); rev = []; last = 0L; completed = 0 }
      in
      Mutex.lock buffers_m;
      buffers := b :: !buffers;
      Mutex.unlock buffers_m;
      b)

let now = Monotonic_clock.now
let now_ns () = now ()

let record b phase name attrs =
  let t = now () in
  let t = if Int64.compare t b.last < 0 then b.last else t in
  b.last <- t;
  b.rev <- { tid = b.b_tid; phase; name; ts_ns = t; attrs } :: b.rev

(* A complete slice on an explicit track: the caller measured the
   interval itself (e.g. the daemon timing one instance's pump). The
   slice is buffered on the recording domain but carries its own track
   id, so per-job slices recorded by different worker domains merge
   onto one timeline at export. No monotonicity clamp: explicit
   timestamps may legitimately predate the domain's last span. *)
let slice ?(attrs = []) ~track ~ts_ns ~dur_ns name =
  if Atomic.get enabled_flag then begin
    let b = Domain.DLS.get key in
    b.rev <-
      { tid = b.b_tid; phase = `X (dur_ns, track); name; ts_ns; attrs }
      :: b.rev
  end

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get key in
    record b `B name attrs;
    Fun.protect
      ~finally:(fun () ->
          record b `E "" [];
          b.completed <- b.completed + 1)
      f
  end

let all_buffers () =
  Mutex.lock buffers_m;
  let bs = !buffers in
  Mutex.unlock buffers_m;
  List.sort (fun a b -> compare a.b_tid b.b_tid) bs

let reset () =
  List.iter
    (fun b ->
       b.rev <- [];
       b.last <- 0L;
       b.completed <- 0)
    (all_buffers ())

let events () =
  List.concat_map (fun b -> List.rev b.rev) (all_buffers ())

let span_count () =
  List.fold_left (fun acc b -> acc + b.completed) 0 (all_buffers ())

(* ------------------------------------------------------------------ *)
(* Chrome trace-event / Perfetto export. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json () =
  let evs = events () in
  let t0 =
    List.fold_left
      (fun acc e -> if Int64.compare e.ts_ns acc < 0 then e.ts_ns else acc)
      (match evs with [] -> 0L | e :: _ -> e.ts_ns)
      evs
  in
  let us e = Int64.to_float (Int64.sub e.ts_ns t0) /. 1000.0 in
  let render_args = function
    | [] -> ""
    | attrs ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                 Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                   (json_escape v))
              attrs))
  in
  let render e =
    match e.phase with
    | `B ->
      Printf.sprintf
        {|{"name":"%s","ph":"B","pid":%d,"tid":%d,"ts":%.3f%s}|}
        (json_escape e.name) e.tid e.tid (us e) (render_args e.attrs)
    | `E ->
      Printf.sprintf {|{"ph":"E","pid":%d,"tid":%d,"ts":%.3f}|} e.tid e.tid
        (us e)
    | `X (dur_ns, track) ->
      Printf.sprintf
        {|{"name":"%s","ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f%s}|}
        (json_escape e.name) track_pid track (us e)
        (Int64.to_float dur_ns /. 1000.0)
        (render_args e.attrs)
  in
  "[\n" ^ String.concat ",\n" (List.map render evs) ^ "\n]\n"

(* ------------------------------------------------------------------ *)
(* Latency summary. *)

type stat = {
  calls : int;
  total_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  max_ns : float;
}

let summary () =
  let durations : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun b ->
       let stack = ref [] in
       let record name d =
         match Hashtbl.find_opt durations name with
         | Some l -> l := d :: !l
         | None -> Hashtbl.add durations name (ref [ d ])
       in
       List.iter
         (fun e ->
            match e.phase with
            | `B -> stack := (e.name, e.ts_ns) :: !stack
            | `X (dur_ns, _) -> record e.name (Int64.to_float dur_ns)
            | `E ->
              (match !stack with
               | [] -> ()  (* unmatched E cannot happen; be safe *)
               | (name, t0) :: rest ->
                 stack := rest;
                 record name (Int64.to_float (Int64.sub e.ts_ns t0))))
         (List.rev b.rev))
    (all_buffers ());
  let pct arr q =
    let n = Array.length arr in
    arr.(Stdlib.min (n - 1)
           (Stdlib.max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  Hashtbl.fold
    (fun name l acc ->
       let arr = Array.of_list !l in
       Array.sort compare arr;
       let total = Array.fold_left ( +. ) 0.0 arr in
       ( name,
         { calls = Array.length arr;
           total_ns = total;
           p50_ns = pct arr 0.50;
           p90_ns = pct arr 0.90;
           p99_ns = pct arr 0.99;
           max_ns = arr.(Array.length arr - 1) } )
       :: acc)
    durations []
  |> List.sort (fun (_, a) (_, b) -> compare b.total_ns a.total_ns)
