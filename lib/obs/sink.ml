let fsync_out oc =
  (* flush the channel buffer to the fd, then push the fd to disk *)
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let describe_exn path = function
  | Sys_error msg ->
    (* Sys_error messages usually already contain the path; keep ours
       first so callers can rely on it. *)
    Some (Printf.sprintf "%s: %s" path msg)
  | Unix.Unix_error (err, fn, _) ->
    Some (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))
  | _ -> None

let write_file ~path f =
  match open_out_bin path with
  | exception e ->
    (match describe_exn path e with
     | Some msg -> Error msg
     | None -> raise e)
  | oc ->
    (match
       f oc;
       fsync_out oc
     with
     | () ->
       (match close_out oc with
        | () -> Ok ()
        | exception e ->
          (match describe_exn path e with
           | Some msg -> Error msg
           | None -> raise e))
     | exception e ->
       close_out_noerr oc;
       (match describe_exn path e with
        | Some msg -> Error msg
        | None -> raise e))

let write_string ~path s = write_file ~path (fun oc -> output_string oc s)

let write_file_exn ~path f =
  match write_file ~path f with
  | Ok () -> ()
  | Error msg -> failwith msg
