exception Write_error of { path : string; message : string }

let () =
  Printexc.register_printer (function
    | Write_error { path; message } ->
      Some (Printf.sprintf "Sink.Write_error(%s: %s)" path message)
    | _ -> None)

let fsync_out oc =
  (* flush the channel buffer to the fd, then push the fd to disk *)
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* After the rename, the new directory entry itself must reach disk
   before the write is durable. Best-effort: some filesystems refuse
   fsync on a directory fd, and a failure here must not turn an
   already-renamed (hence visible and complete) file into an error. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let describe_exn path = function
  | Sys_error msg ->
    (* Sys_error messages usually already contain the path; keep ours
       first so callers can rely on it. *)
    Some (Printf.sprintf "%s: %s" path msg)
  | Unix.Unix_error (err, fn, _) ->
    Some (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message err))
  | _ -> None

(* Atomic replacement: write [path].tmp, fsync it, rename over [path],
   fsync the directory. A crash (or a writer exception) at any point
   leaves either the old content or the new content at [path] — never
   a truncated hybrid, which is what the previous in-place open used
   to produce. *)
let write_file ~path f =
  let tmp = path ^ ".tmp" in
  let cleanup_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  let fail e =
    match describe_exn path e with Some msg -> Error msg | None -> raise e
  in
  match open_out_bin tmp with
  | exception e -> fail e
  | oc ->
    (match
       f oc;
       fsync_out oc
     with
     | () ->
       (match close_out oc with
        | () ->
          (match
             Unix.rename tmp path;
             fsync_dir path
           with
           | () -> Ok ()
           | exception e ->
             cleanup_tmp ();
             fail e)
        | exception e ->
          cleanup_tmp ();
          fail e)
     | exception e ->
       close_out_noerr oc;
       cleanup_tmp ();
       fail e)

let write_string ~path s = write_file ~path (fun oc -> output_string oc s)

(* --- streaming appenders ---------------------------------------------- *)

(* Unlike the atomic whole-file writers above, an appender grows a
   file incrementally — the shape of a write-ahead log, where entries
   must reach disk *during* execution, not after it. Durability is the
   caller's protocol: [sync] is the write barrier; everything appended
   before it survives a crash of this process. Tail-truncation on
   crash is acceptable for a WAL (the disk-prefix adversary's model),
   which is why appending is sound here and would not be for reports. *)
type appender = {
  ap_path : string;
  ap_oc : out_channel;
  mutable ap_closed : bool;
}

let ap_fail path e =
  match describe_exn path e with
  | Some message ->
    let prefix = path ^ ": " in
    let plen = String.length prefix in
    let message =
      if String.length message > plen && String.sub message 0 plen = prefix
      then String.sub message plen (String.length message - plen)
      else message
    in
    raise (Write_error { path; message })
  | None -> raise e

let append_open ~path =
  match
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  with
  | oc -> { ap_path = path; ap_oc = oc; ap_closed = false }
  | exception e -> ap_fail path e

let append_line ap line =
  if ap.ap_closed then
    raise (Write_error { path = ap.ap_path; message = "appender closed" });
  match
    output_string ap.ap_oc line;
    output_char ap.ap_oc '\n'
  with
  | () -> ()
  | exception e -> ap_fail ap.ap_path e

let append_sync ap =
  if not ap.ap_closed then
    match fsync_out ap.ap_oc with
    | () -> ()
    | exception e -> ap_fail ap.ap_path e

let append_close ap =
  if not ap.ap_closed then begin
    ap.ap_closed <- true;
    match
      flush ap.ap_oc;
      close_out ap.ap_oc
    with
    | () -> ()
    | exception e ->
      close_out_noerr ap.ap_oc;
      ap_fail ap.ap_path e
  end

let write_file_exn ~path f =
  match write_file ~path f with
  | Ok () -> ()
  | Error message ->
    (* [write_file] errors lead with "path: " (describe_exn); strip it
       so Write_error carries the path exactly once. *)
    let prefix = path ^ ": " in
    let plen = String.length prefix in
    let message =
      if String.length message > plen && String.sub message 0 plen = prefix
      then String.sub message plen (String.length message - plen)
      else message
    in
    raise (Write_error { path; message })
