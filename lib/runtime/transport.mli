(** The transport seam of the system model — the explicit interface
    between a protocol state machine and whatever moves its messages.

    Until this module existed the only transport was {!Sim}, and its
    loopback channels, adversarial scheduler and process lifecycle were
    fused into one entry point: nothing but the simulator could drive a
    protocol instance. The vocabulary here is that implicit API made
    explicit, so the same handlers run unchanged under the adversarial
    simulator ({!Sim}), the deterministic FIFO loopback ({!Loopback})
    that the serving daemon multiplexes instances over, and the
    conformance suite that pins the semantics both must share:

    - {b channels} are reliable, exactly-once, FIFO per (src, dst)
      pair on a complete graph of [n] processes;
    - {b identity} is a dense [pid] in [0 .. n-1];
    - {b crashes} follow {!Crash.plan} budgets: a send at or past the
      budget is dropped (and every send after it), a delivery at or
      past a receive budget kills the process and loses the message;
    - {b recovery} ({!Crash.Crash_recover} plans) fires the [on_crash]
      hook at the crash point (carrying the disk-prefix adversary's
      [keep]) and [on_recover] at revival, with a live endpoint.

    Handlers interact with the world only through the {!ep} capability
    they are handed — never through the transport value itself — which
    is what makes a protocol core portable across implementations. *)

type pid = int

type 'msg ep = {
  me : pid;
  n : int;
  send : pid -> 'msg -> unit;
      (** enqueue on the channel [me → dst]; silently dropped if the
          sender has crashed (or crashes at this send) *)
  broadcast : ?include_self:bool -> 'msg -> unit;
      (** unit sends to every process in rotating order starting at
          [me + 1], so a mid-broadcast crash reaches a contiguous
          block of recipients that differs per sender. [include_self]
          defaults to [false]. *)
  sends : unit -> int;
      (** sends by [me] that actually entered a channel so far —
          before/after deltas tell a caller whether a broadcast got at
          least one message out (the paper's ["sent a round-t
          message"] predicate) *)
}
(** The capability a transport hands to process handlers. *)

type 'msg handlers = {
  on_start : 'msg ep -> unit;      (** runs once per process, even for
                                       ones that crash immediately
                                       (their sends are dropped) *)
  on_receive : 'msg ep -> src:pid -> 'msg -> unit;
}

type metrics = {
  sent : int;            (** messages accepted into channels *)
  dropped : int;         (** sends swallowed by crashes *)
  delivered : int;       (** messages handed to a live receiver *)
  dead_lettered : int;   (** deliveries to already-crashed receivers *)
  recoveries : int;      (** crash-recovery revivals performed *)
  steps : int;           (** delivery decisions taken *)
}

exception Step_limit_exceeded
(** Raised by an implementation's [run] after [max_steps] deliveries —
    a liveness-bug guard shared by every transport. *)

(** What every transport implementation exposes once built (creation
    is implementation-specific: {!Sim} needs a scheduler and a seed,
    {!Loopback} does not). The conformance suite
    ([test/test_transport.ml]) is functorized over [S] plus a creation
    adapter. *)
module type S = sig
  type 'msg t

  val n : _ t -> int

  val run : ?max_steps:int -> _ t -> unit
  (** Deliver messages until quiescence (every channel empty and no
      revival pending). @raise Step_limit_exceeded past [max_steps]
      deliveries (default [2_000_000]). *)

  val crashed : _ t -> pid -> bool
  (** Crashed {e now} (a recovered process reads [false] again). *)

  val recovered_of : _ t -> pid -> bool
  (** Crashed and was revived at least once. *)

  val sends_of : _ t -> pid -> int
  val receives_of : _ t -> pid -> int

  val metrics : _ t -> metrics
end
