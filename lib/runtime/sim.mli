(** Deterministic discrete-event simulator of the paper's system model
    — the adversarially-scheduled implementation of {!Transport}:
    [n] processes on a complete graph, reliable exactly-once FIFO
    channels, full asynchrony (an adversarial scheduler picks the next
    delivery), and crash faults with send budgets (see {!Crash}).

    An execution is a pure function of (handlers, crash plans,
    scheduler policy, seed): re-running with the same arguments yields
    the identical schedule, which the property-based tests and the
    experiment harness rely on.

    Processes are event-driven {!Transport.handlers}: [on_start] runs
    once for every process (including ones that crash immediately —
    their sends are dropped), then [on_receive] runs for each delivered
    message. Handlers interact with the world only through the
    {!Transport.ep} they are handed. *)

type pid = Transport.pid

type 'msg t

val create :
  ?trace:Obs.Trace.t ->
  ?prefix:(int * int) list ->
  ?on_crash:(pid -> keep:int -> unit) ->
  ?on_recover:('msg Transport.ep -> unit) ->
  n:int ->
  seed:int ->
  scheduler:Scheduler.t ->
  crash:Crash.plan array ->
  make:(pid -> 'msg Transport.handlers) ->
  unit ->
  'msg t
(** Build a system. [crash] must have length [n]. [make i] constructs
    process [i]'s handlers (captured state lives in the closure).
    When a [trace] is given, every transport event (send / drop /
    deliver / dead-letter / crash / recover, including crashed-at-start
    processes) is emitted into it in schedule order; tracing never
    changes the execution.

    [on_crash] and [on_recover] hook the crash-{e recovery} extension
    ({!Crash.Crash_recover} plans): [on_crash i ~keep] fires at the
    moment [i]'s crash triggers (synchronously, before any further
    event) carrying the plan's disk-prefix choice, so the durability
    layer can truncate [i]'s write-ahead log; [on_recover ep] fires at
    revival, with a live endpoint for process [ep.me] — replayed state
    re-enters the protocol by sending from inside this callback.
    Messages delivered while a process is down are dead-lettered
    (lost). Revival happens once the plan's [delay] scheduler steps
    have elapsed, or immediately when the system would otherwise
    quiesce; the plan is then disarmed (at most one crash each). The
    plan array is copied, callers never observe the disarming.

    [prefix] is the replay-injection hook used by the fuzzer's
    shrinker: a list of (src, dst) channel choices forced on the
    scheduler, in order, before the strategy takes over. Each step
    consumes prefix entries until one names a currently non-empty
    channel (stale entries — e.g. after the shrinker removed the
    messages they referred to — are skipped deterministically); once
    the prefix is exhausted the configured scheduler decides. A prefix
    recorded from a run's transcript ({!Obs.Trace.schedule}) replays
    that run's delivery order exactly. *)

exception Step_limit_exceeded
(** Alias of {!Transport.Step_limit_exceeded}. *)

val n : _ t -> int

val run : ?max_steps:int -> 'msg t -> unit
(** Deliver messages until quiescence (no channel non-empty).
    @raise Step_limit_exceeded after [max_steps] deliveries
    (default [2_000_000]) — a liveness bug guard. *)

val crashed : 'msg t -> pid -> bool
(** Whether the process is crashed {e now} (a recovered process reads
    [false] again after revival). *)

val recovered_of : 'msg t -> pid -> bool
(** Whether the process crashed and was revived at least once. *)

val sends_of : 'msg t -> pid -> int
(** Number of sends by this process that actually entered a channel so
    far. Protocol layers use before/after deltas to tell whether a
    broadcast got at least one message out (the paper's
    ["sent a round-t message"] predicate behind [F[t]]). *)

val receives_of : 'msg t -> pid -> int
(** Number of messages actually delivered to (and processed by) this
    process so far. Drives {!Crash.After_receives} budgets and the
    crash-plan clamping of {!Crash.clamp}. *)

(** {1 Metrics} *)

type metrics = Transport.metrics = {
  sent : int;            (** messages accepted into channels *)
  dropped : int;         (** sends swallowed by crashes *)
  delivered : int;       (** messages handed to a live receiver *)
  dead_lettered : int;   (** deliveries to already-crashed receivers *)
  recoveries : int;      (** crash-recovery revivals performed *)
  steps : int;           (** scheduler decisions taken *)
}

val metrics : 'msg t -> metrics
