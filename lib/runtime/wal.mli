(** Per-process write-ahead log with a crash/sync discipline modelled
    on verified-betrfs's [CrashableMap] specification: entries form a
    sequence, {!sync} advances a durable frontier, and a crash exposes
    the synced prefix plus an adversary-chosen prefix of the unsynced
    suffix ([keep] entries of it). Replaying the surviving prefix must
    land the process in a state reachable in some crash-free execution
    — the invariant the fuzzer's disk-prefix adversary attacks.

    The log is generic in its entry type; [Chc] logs its round events
    ({!Chc.Recovery.event}) and decides when to interleave checkpoint
    entries ([checkpoint_every] is carried here so one value configures
    both sides). Persistence goes through {!Obs.Sink}. *)

type sync_mode =
  | Strict   (** {!sync} advances the durable frontier — the correct
                 write-barrier discipline *)
  | Unsound  (** {!sync} is a no-op: nothing beyond what a checkpoint
                 already flushed survives a crash. A deliberately
                 broken mode for proving the fuzz oracle has teeth. *)

type config = {
  checkpoint_every : int;  (** interleave a checkpoint every this many
                               log entries (must be >= 1) *)
  sync : sync_mode;
}

val default_config : config
(** [{ checkpoint_every = 8; sync = Strict }] *)

val sync_mode_to_string : sync_mode -> string
val sync_mode_of_string : string -> (sync_mode, string) result

type 'e t

val create : config -> 'e t
(** @raise Invalid_argument if [checkpoint_every < 1]. *)

val config : 'e t -> config

val append : 'e t -> 'e -> unit
(** Append one entry (initially unsynced).
    @raise Invalid_argument if the log is sealed (crashed and not yet
    {!reopen}ed). *)

val sync : 'e t -> unit
(** Advance the durable frontier to the current length ([Strict]), or
    do nothing ([Unsound]). The protocol calls this before every
    externalization point — a send or a decision — so a crash can never
    roll state back behind what the world has observed. No-op on a
    sealed log. *)

val crash : 'e t -> keep:int -> unit
(** The disk-prefix adversary: seal the log and truncate it to the
    synced prefix plus the first [keep] unsynced entries (clamped to
    what exists). The survivors become the new synced prefix. *)

val seal : 'e t -> unit
(** Stop accepting appends (the owning process went down). *)

val reopen : 'e t -> unit
(** Accept appends again (the owning process recovered). *)

val entries : 'e t -> 'e list
(** Surviving entries, oldest first. *)

val length : 'e t -> int
val synced : 'e t -> int
val unsynced : 'e t -> int
val sealed : 'e t -> bool

val persist : path:string -> encode:('e -> string) -> 'e t -> unit
(** Write the surviving log as one encoded entry per line through
    {!Obs.Sink.write_file_exn} (atomic rename semantics).
    @raise Obs.Sink.Write_error on I/O failure. *)
