(** Plain FIFO event-loop implementation of {!Transport} — the
    transport the serving daemon multiplexes protocol instances over.

    Where {!Sim} hands every delivery decision to an adversarial
    scheduler, [Loopback] keeps one global FIFO: messages are delivered
    in send order, full stop. That makes it O(1) per event with no RNG,
    no scheduler state and no per-channel scan — cheap enough to run
    thousands of concurrent instances — while keeping {e identical}
    crash/recovery semantics (budgets, drops, dead letters, revival at
    quiescence, one-crash-per-plan disarming) and identical trace
    vocabulary. Deliberately, a [Loopback] execution is byte-for-byte
    the same trace as [Sim] under {!Scheduler.fifo}; the conformance
    suite ([test/test_transport.ml]) pins that equivalence.

    Unlike [Sim.run], delivery can also be pumped incrementally with
    {!step}, which is how the daemon interleaves progress across many
    instances inside one shard. *)

type pid = Transport.pid

type 'msg t

val create :
  ?trace:Obs.Trace.t ->
  ?on_crash:(pid -> keep:int -> unit) ->
  ?on_recover:('msg Transport.ep -> unit) ->
  ?crash:Crash.plan array ->
  n:int ->
  make:(pid -> 'msg Transport.handlers) ->
  unit ->
  'msg t
(** Build a system of [n] processes. [crash] defaults to all
    {!Crash.Never}; when given it must have length [n]. Hooks and
    tracing behave exactly as in {!Sim.create}. *)

val run : ?max_steps:int -> 'msg t -> unit
(** Deliver until quiescence (empty queue, no pending revival).
    @raise Transport.Step_limit_exceeded past [max_steps] deliveries
    (default [2_000_000]). *)

val step : 'msg t -> bool
(** One pump increment: run [on_start]s if not yet started, then
    deliver the oldest in-flight message — or, when the queue is empty
    but a revival is pending, jump the clock to the earliest revival.
    Returns [false] only at true quiescence. *)

val quiescent : 'msg t -> bool
(** Started, no message in flight, no revival pending. *)

val n : _ t -> int
val crashed : 'msg t -> pid -> bool
val recovered_of : 'msg t -> pid -> bool
val sends_of : 'msg t -> pid -> int
val receives_of : 'msg t -> pid -> int

type metrics = Transport.metrics = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}

val metrics : 'msg t -> metrics
