type pid = int

type 'msg ep = {
  me : pid;
  n : int;
  send : pid -> 'msg -> unit;
  broadcast : ?include_self:bool -> 'msg -> unit;
  sends : unit -> int;
}

type 'msg handlers = {
  on_start : 'msg ep -> unit;
  on_receive : 'msg ep -> src:pid -> 'msg -> unit;
}

type metrics = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}

exception Step_limit_exceeded

module type S = sig
  type 'msg t

  val n : _ t -> int
  val run : ?max_steps:int -> _ t -> unit
  val crashed : _ t -> pid -> bool
  val recovered_of : _ t -> pid -> bool
  val sends_of : _ t -> pid -> int
  val receives_of : _ t -> pid -> int
  val metrics : _ t -> metrics
end
