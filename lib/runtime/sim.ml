type pid = int

type 'msg handlers = {
  on_start : 'msg ctx -> unit;
  on_receive : 'msg ctx -> pid -> 'msg -> unit;
}

and 'msg t = {
  n : int;
  trace : Obs.Trace.t option;
  rng : Rng.t;
  scheduler : Scheduler.t;
  pick : Scheduler.pick_fn;
  channels : (int * 'msg) Queue.t array array; (* channels.(src).(dst) *)
  crash_plan : Crash.plan array;
  crashed : bool array;
  sends_attempted : int array;
  receives_seen : int array;
  mutable prefix : (int * int) list;  (* forced (src, dst) schedule head *)
  mutable handlers : 'msg handlers array;
  mutable seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable dead_lettered : int;
  mutable steps : int;
  mutable started : bool;
}

and 'msg ctx = { me : pid; sys : 'msg t }

let me ctx = ctx.me
let n ctx = ctx.sys.n

let trace_emit t ev =
  match t.trace with
  | None -> ()
  | Some tr -> Obs.Trace.emit tr (ev ())

let crashed t i = t.crashed.(i)
let sends_of t i = t.sends_attempted.(i)
let receives_of t i = t.receives_seen.(i)
let sends ctx = ctx.sys.sends_attempted.(ctx.me)

(* A send consumes one unit of the sender's budget whether or not it is
   ultimately dropped: the budget marks the crash *point*, and every
   send at or after that point is lost. *)
let send ctx dst msg =
  let t = ctx.sys in
  let src = ctx.me in
  if dst < 0 || dst >= t.n then invalid_arg "Sim.send: bad destination"
  else if t.crashed.(src) then begin
    t.dropped <- t.dropped + 1;
    trace_emit t (fun () -> Obs.Trace.Drop { src })
  end
  else begin
    (match t.crash_plan.(src) with
     | Crash.After_sends budget when t.sends_attempted.(src) >= budget ->
       t.crashed.(src) <- true;
       t.dropped <- t.dropped + 1;
       trace_emit t
         (fun () -> Obs.Trace.Crash { pid = src; sends = t.sends_attempted.(src) });
       trace_emit t (fun () -> Obs.Trace.Drop { src })
     | Crash.After_sends _ | Crash.After_receives _ | Crash.Never ->
       t.sends_attempted.(src) <- t.sends_attempted.(src) + 1;
       t.seq <- t.seq + 1;
       t.sent <- t.sent + 1;
       trace_emit t (fun () -> Obs.Trace.Send { src; dst; seq = t.seq });
       Queue.push (t.seq, msg) t.channels.(src).(dst))
  end

let broadcast ctx ?(include_self = false) msg =
  let t = ctx.sys in
  for k = 1 to t.n - 1 do
    send ctx ((ctx.me + k) mod t.n) msg
  done;
  if include_self then send ctx ctx.me msg

let create ?trace ?(prefix = []) ~n ~seed ~scheduler ~crash ~make () =
  if Array.length crash <> n then invalid_arg "Sim.create: crash plan size";
  let t =
    { n;
      trace;
      rng = Rng.create seed;
      scheduler;
      pick = Scheduler.instantiate scheduler;
      channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      crash_plan = crash;
      crashed = Array.make n false;
      sends_attempted = Array.make n 0;
      receives_seen = Array.make n 0;
      prefix;
      handlers = [||];
      seq = 0;
      sent = 0;
      dropped = 0;
      delivered = 0;
      dead_lettered = 0;
      steps = 0;
      started = false }
  in
  t.handlers <- Array.init n make;
  (* Processes with a zero send budget are crashed from the outset
     (receive budgets only ever fire on a delivery). *)
  Array.iteri
    (fun i plan ->
       match plan with
       | Crash.After_sends 0 ->
         t.crashed.(i) <- true;
         trace_emit t (fun () -> Obs.Trace.Crash { pid = i; sends = 0 })
       | Crash.After_sends _ | Crash.After_receives _ | Crash.Never -> ())
    crash;
  t

exception Step_limit_exceeded

let nonempty_channels t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      let q = t.channels.(src).(dst) in
      if not (Queue.is_empty q) then begin
        let (seq, _) = Queue.peek q in
        acc := ({ Scheduler.src; dst }, seq) :: !acc
      end
    done
  done;
  !acc

(* Consume forced-prefix entries until one names a currently non-empty
   channel; entries that no longer apply (the shrinker may have removed
   the messages they referred to) are skipped deterministically. *)
let rec prefix_choice t candidates =
  match t.prefix with
  | [] -> None
  | (src, dst) :: rest ->
    t.prefix <- rest;
    if List.exists
        (fun (c, _) -> c.Scheduler.src = src && c.Scheduler.dst = dst)
        candidates
    then Some { Scheduler.src; dst }
    else prefix_choice t candidates

let run ?(max_steps = 2_000_000) t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      t.handlers.(i).on_start { me = i; sys = t }
    done
  end;
  let rec loop () =
    match nonempty_channels t with
    | [] -> ()
    | candidates ->
      if t.steps >= max_steps then raise Step_limit_exceeded;
      t.steps <- t.steps + 1;
      let { Scheduler.src; dst } =
        match prefix_choice t candidates with
        | Some c -> c
        | None -> t.pick ~rng:t.rng ~step:t.steps ~candidates
      in
      let (seq, msg) = Queue.pop t.channels.(src).(dst) in
      if t.crashed.(dst) then begin
        t.dead_lettered <- t.dead_lettered + 1;
        trace_emit t
          (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
      end
      else begin
        match t.crash_plan.(dst) with
        | Crash.After_receives budget when t.receives_seen.(dst) >= budget ->
          (* The killing delivery: the process dies at this exact point
             of its view; the message itself is lost. *)
          t.crashed.(dst) <- true;
          t.dead_lettered <- t.dead_lettered + 1;
          trace_emit t
            (fun () ->
               Obs.Trace.Crash { pid = dst; sends = t.sends_attempted.(dst) });
          trace_emit t
            (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
        | Crash.After_receives _ | Crash.After_sends _ | Crash.Never ->
          t.receives_seen.(dst) <- t.receives_seen.(dst) + 1;
          t.delivered <- t.delivered + 1;
          trace_emit t
            (fun () -> Obs.Trace.Deliver { step = t.steps; src; dst; seq });
          t.handlers.(dst).on_receive { me = dst; sys = t } src msg
      end;
      loop ()
  in
  loop ()

type metrics = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  steps : int;
}

let metrics (t : _ t) =
  { sent = t.sent;
    dropped = t.dropped;
    delivered = t.delivered;
    dead_lettered = t.dead_lettered;
    steps = t.steps }
