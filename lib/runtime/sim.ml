type pid = Transport.pid

type 'msg t = {
  n : int;
  trace : Obs.Trace.t option;
  rng : Rng.t;
  scheduler : Scheduler.t;
  pick : Scheduler.pick_fn;
  channels : (int * 'msg) Queue.t array array; (* channels.(src).(dst) *)
  crash_plan : Crash.plan array;  (* private copy: recovery disarms plans *)
  crashed : bool array;
  recovered : bool array;         (* crashed at least once, then revived *)
  recover_at : int option array;  (* pending revival: due step *)
  on_crash : (pid -> keep:int -> unit) option;
  on_recover : ('msg Transport.ep -> unit) option;
  sends_attempted : int array;
  receives_seen : int array;
  mutable prefix : (int * int) list;  (* forced (src, dst) schedule head *)
  mutable handlers : 'msg Transport.handlers array;
  mutable seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable dead_lettered : int;
  mutable recoveries : int;
  mutable steps : int;
  mutable started : bool;
}

let n t = t.n

let trace_emit t ev =
  match t.trace with
  | None -> ()
  | Some tr -> Obs.Trace.emit tr (ev ())

let crashed t i = t.crashed.(i)
let recovered_of t i = t.recovered.(i)
let sends_of t i = t.sends_attempted.(i)
let receives_of t i = t.receives_seen.(i)

(* A crash fires: mark the process down, and if the plan is a
   recovering one, schedule the revival and hand the disk-prefix
   adversary's [keep] to the durability layer. *)
let fire_crash t i ~recover =
  t.crashed.(i) <- true;
  trace_emit t
    (fun () -> Obs.Trace.Crash { pid = i; sends = t.sends_attempted.(i) });
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info "crash"
      [ ("pid", Obs.Log.I i);
        ("sends", Obs.Log.I t.sends_attempted.(i));
        ("recovers", Obs.Log.B (recover <> None)) ];
  match recover with
  | None -> ()
  | Some (delay, keep) ->
    t.recover_at.(i) <- Some (t.steps + delay);
    (match t.on_crash with None -> () | Some f -> f i ~keep)

(* A send consumes one unit of the sender's budget whether or not it is
   ultimately dropped: the budget marks the crash *point*, and every
   send at or after that point is lost. *)
let send t src dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Sim.send: bad destination"
  else if t.crashed.(src) then begin
    t.dropped <- t.dropped + 1;
    trace_emit t (fun () -> Obs.Trace.Drop { src })
  end
  else begin
    match t.crash_plan.(src) with
    | Crash.After_sends budget when t.sends_attempted.(src) >= budget ->
      fire_crash t src ~recover:None;
      t.dropped <- t.dropped + 1;
      trace_emit t (fun () -> Obs.Trace.Drop { src })
    | Crash.Crash_recover { trigger = Crash.Sends budget; delay; keep }
      when t.sends_attempted.(src) >= budget ->
      fire_crash t src ~recover:(Some (delay, keep));
      t.dropped <- t.dropped + 1;
      trace_emit t (fun () -> Obs.Trace.Drop { src })
    | Crash.After_sends _ | Crash.After_receives _ | Crash.Never
    | Crash.Crash_recover _ ->
      t.sends_attempted.(src) <- t.sends_attempted.(src) + 1;
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      trace_emit t (fun () -> Obs.Trace.Send { src; dst; seq = t.seq });
      Queue.push (t.seq, msg) t.channels.(src).(dst)
  end

let broadcast t src ?(include_self = false) msg =
  for k = 1 to t.n - 1 do
    send t src ((src + k) mod t.n) msg
  done;
  if include_self then send t src src msg

(* The endpoint capability handed to handlers and hooks: closes over
   (t, i) so a handler can only act as its own process. *)
let ep_of t i : _ Transport.ep =
  { Transport.me = i;
    n = t.n;
    send = (fun dst msg -> send t i dst msg);
    broadcast = (fun ?include_self msg -> broadcast t i ?include_self msg);
    sends = (fun () -> t.sends_attempted.(i)) }

let create ?trace ?(prefix = []) ?on_crash ?on_recover ~n ~seed ~scheduler
    ~crash ~make () =
  if Array.length crash <> n then invalid_arg "Sim.create: crash plan size";
  let t =
    { n;
      trace;
      rng = Rng.create seed;
      scheduler;
      pick = Scheduler.instantiate scheduler;
      channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ()));
      crash_plan = Array.copy crash;
      crashed = Array.make n false;
      recovered = Array.make n false;
      recover_at = Array.make n None;
      on_crash;
      on_recover;
      sends_attempted = Array.make n 0;
      receives_seen = Array.make n 0;
      prefix;
      handlers = [||];
      seq = 0;
      sent = 0;
      dropped = 0;
      delivered = 0;
      dead_lettered = 0;
      recoveries = 0;
      steps = 0;
      started = false }
  in
  t.handlers <- Array.init n make;
  (* Processes with a zero send budget are crashed from the outset
     (receive budgets only ever fire on a delivery). *)
  Array.iteri
    (fun i plan ->
       match plan with
       | Crash.After_sends 0 -> fire_crash t i ~recover:None
       | Crash.Crash_recover { trigger = Crash.Sends 0; delay; keep } ->
         fire_crash t i ~recover:(Some (delay, keep))
       | Crash.After_sends _ | Crash.After_receives _ | Crash.Never
       | Crash.Crash_recover _ -> ())
    crash;
  t

exception Step_limit_exceeded = Transport.Step_limit_exceeded

let nonempty_channels t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      let q = t.channels.(src).(dst) in
      if not (Queue.is_empty q) then begin
        let (seq, _) = Queue.peek q in
        acc := ({ Scheduler.src; dst }, seq) :: !acc
      end
    done
  done;
  !acc

(* Consume forced-prefix entries until one names a currently non-empty
   channel; entries that no longer apply (the shrinker may have removed
   the messages they referred to) are skipped deterministically. *)
let rec prefix_choice t candidates =
  match t.prefix with
  | [] -> None
  | (src, dst) :: rest ->
    t.prefix <- rest;
    if List.exists
        (fun (c, _) -> c.Scheduler.src = src && c.Scheduler.dst = dst)
        candidates
    then Some { Scheduler.src; dst }
    else prefix_choice t candidates

let revive t i =
  t.recover_at.(i) <- None;
  t.crashed.(i) <- false;
  t.recovered.(i) <- true;
  t.recoveries <- t.recoveries + 1;
  (* one crash per plan: a revived process runs correctly from here on *)
  t.crash_plan.(i) <- Crash.Never;
  trace_emit t (fun () -> Obs.Trace.Recover { pid = i; step = t.steps });
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info "recover"
      [ ("pid", Obs.Log.I i); ("step", Obs.Log.I t.steps) ];
  match t.on_recover with None -> () | Some f -> f (ep_of t i)

(* Revive every pending recovery that has come due, in pid order (the
   loop is re-entered because a revival's rejoin sends may change the
   candidate set). *)
let revive_due t =
  for i = 0 to t.n - 1 do
    match t.recover_at.(i) with
    | Some due when due <= t.steps -> revive t i
    | Some _ | None -> ()
  done

(* When channels have drained but revivals are still pending, the
   simulated clock jumps: revive the earliest (smallest due step, then
   smallest pid). Revival is therefore guaranteed, however large the
   delay. *)
let earliest_pending t =
  let best = ref None in
  for i = t.n - 1 downto 0 do
    match t.recover_at.(i) with
    | Some due ->
      (match !best with
       | Some (bdue, _) when bdue <= due -> ()
       | _ -> best := Some (due, i))
    | None -> ()
  done;
  Option.map snd !best

let run ?(max_steps = 2_000_000) t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      t.handlers.(i).Transport.on_start (ep_of t i)
    done
  end;
  let rec loop () =
    revive_due t;
    match nonempty_channels t with
    | [] ->
      (match earliest_pending t with
       | Some i ->
         revive t i;
         loop ()
       | None -> ())
    | candidates ->
      if t.steps >= max_steps then raise Step_limit_exceeded;
      t.steps <- t.steps + 1;
      let { Scheduler.src; dst } =
        match prefix_choice t candidates with
        | Some c -> c
        | None -> t.pick ~rng:t.rng ~step:t.steps ~candidates
      in
      let (seq, msg) = Queue.pop t.channels.(src).(dst) in
      if t.crashed.(dst) then begin
        t.dead_lettered <- t.dead_lettered + 1;
        trace_emit t
          (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
      end
      else begin
        match t.crash_plan.(dst) with
        | Crash.After_receives budget when t.receives_seen.(dst) >= budget ->
          (* The killing delivery: the process dies at this exact point
             of its view; the message itself is lost. *)
          fire_crash t dst ~recover:None;
          t.dead_lettered <- t.dead_lettered + 1;
          trace_emit t
            (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
        | Crash.Crash_recover { trigger = Crash.Receives budget; delay; keep }
          when t.receives_seen.(dst) >= budget ->
          fire_crash t dst ~recover:(Some (delay, keep));
          t.dead_lettered <- t.dead_lettered + 1;
          trace_emit t
            (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
        | Crash.After_receives _ | Crash.After_sends _ | Crash.Never
        | Crash.Crash_recover _ ->
          t.receives_seen.(dst) <- t.receives_seen.(dst) + 1;
          t.delivered <- t.delivered + 1;
          trace_emit t
            (fun () -> Obs.Trace.Deliver { step = t.steps; src; dst; seq });
          t.handlers.(dst).Transport.on_receive (ep_of t dst) ~src msg
      end;
      loop ()
  in
  loop ()

type metrics = Transport.metrics = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}

let metrics (t : _ t) =
  { sent = t.sent;
    dropped = t.dropped;
    delivered = t.delivered;
    dead_lettered = t.dead_lettered;
    recoveries = t.recoveries;
    steps = t.steps }
