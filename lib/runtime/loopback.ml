type pid = Transport.pid

(* One global FIFO of in-flight messages.  Sequence numbers come from a
   single system-wide counter and sends append in seq order, so popping
   the front always delivers the globally oldest undelivered message —
   exactly the schedule [Sim] produces under [Scheduler.fifo] (the
   minimum head-seq across per-channel FIFOs is the global minimum).
   The conformance suite pins this equivalence byte-for-byte. *)
type 'msg t = {
  n : int;
  trace : Obs.Trace.t option;
  queue : (int * pid * pid * 'msg) Queue.t;  (* seq, src, dst, payload *)
  crash_plan : Crash.plan array;  (* private copy: recovery disarms plans *)
  crashed : bool array;
  recovered : bool array;
  recover_at : int option array;
  on_crash : (pid -> keep:int -> unit) option;
  on_recover : ('msg Transport.ep -> unit) option;
  sends_attempted : int array;
  receives_seen : int array;
  mutable handlers : 'msg Transport.handlers array;
  mutable seq : int;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable dead_lettered : int;
  mutable recoveries : int;
  mutable steps : int;
  mutable started : bool;
}

let n t = t.n

let trace_emit t ev =
  match t.trace with
  | None -> ()
  | Some tr -> Obs.Trace.emit tr (ev ())

let crashed t i = t.crashed.(i)
let recovered_of t i = t.recovered.(i)
let sends_of t i = t.sends_attempted.(i)
let receives_of t i = t.receives_seen.(i)

let fire_crash t i ~recover =
  t.crashed.(i) <- true;
  trace_emit t
    (fun () -> Obs.Trace.Crash { pid = i; sends = t.sends_attempted.(i) });
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info "crash"
      [ ("pid", Obs.Log.I i);
        ("sends", Obs.Log.I t.sends_attempted.(i));
        ("recovers", Obs.Log.B (recover <> None)) ];
  match recover with
  | None -> ()
  | Some (delay, keep) ->
    t.recover_at.(i) <- Some (t.steps + delay);
    (match t.on_crash with None -> () | Some f -> f i ~keep)

(* Identical budget semantics to [Sim.send]: a send consumes one unit
   whether or not it is ultimately dropped. *)
let send t src dst msg =
  if dst < 0 || dst >= t.n then invalid_arg "Loopback.send: bad destination"
  else if t.crashed.(src) then begin
    t.dropped <- t.dropped + 1;
    trace_emit t (fun () -> Obs.Trace.Drop { src })
  end
  else begin
    match t.crash_plan.(src) with
    | Crash.After_sends budget when t.sends_attempted.(src) >= budget ->
      fire_crash t src ~recover:None;
      t.dropped <- t.dropped + 1;
      trace_emit t (fun () -> Obs.Trace.Drop { src })
    | Crash.Crash_recover { trigger = Crash.Sends budget; delay; keep }
      when t.sends_attempted.(src) >= budget ->
      fire_crash t src ~recover:(Some (delay, keep));
      t.dropped <- t.dropped + 1;
      trace_emit t (fun () -> Obs.Trace.Drop { src })
    | Crash.After_sends _ | Crash.After_receives _ | Crash.Never
    | Crash.Crash_recover _ ->
      t.sends_attempted.(src) <- t.sends_attempted.(src) + 1;
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      trace_emit t (fun () -> Obs.Trace.Send { src; dst; seq = t.seq });
      Queue.push (t.seq, src, dst, msg) t.queue
  end

let broadcast t src ?(include_self = false) msg =
  for k = 1 to t.n - 1 do
    send t src ((src + k) mod t.n) msg
  done;
  if include_self then send t src src msg

let ep_of t i : _ Transport.ep =
  { Transport.me = i;
    n = t.n;
    send = (fun dst msg -> send t i dst msg);
    broadcast = (fun ?include_self msg -> broadcast t i ?include_self msg);
    sends = (fun () -> t.sends_attempted.(i)) }

let create ?trace ?on_crash ?on_recover ?(crash = [||]) ~n ~make () =
  let crash = if crash = [||] then Array.make n Crash.Never else crash in
  if Array.length crash <> n then
    invalid_arg "Loopback.create: crash plan size";
  let t =
    { n;
      trace;
      queue = Queue.create ();
      crash_plan = Array.copy crash;
      crashed = Array.make n false;
      recovered = Array.make n false;
      recover_at = Array.make n None;
      on_crash;
      on_recover;
      sends_attempted = Array.make n 0;
      receives_seen = Array.make n 0;
      handlers = [||];
      seq = 0;
      sent = 0;
      dropped = 0;
      delivered = 0;
      dead_lettered = 0;
      recoveries = 0;
      steps = 0;
      started = false }
  in
  t.handlers <- Array.init n make;
  Array.iteri
    (fun i plan ->
       match plan with
       | Crash.After_sends 0 -> fire_crash t i ~recover:None
       | Crash.Crash_recover { trigger = Crash.Sends 0; delay; keep } ->
         fire_crash t i ~recover:(Some (delay, keep))
       | Crash.After_sends _ | Crash.After_receives _ | Crash.Never
       | Crash.Crash_recover _ -> ())
    crash;
  t

let revive t i =
  t.recover_at.(i) <- None;
  t.crashed.(i) <- false;
  t.recovered.(i) <- true;
  t.recoveries <- t.recoveries + 1;
  t.crash_plan.(i) <- Crash.Never;
  trace_emit t (fun () -> Obs.Trace.Recover { pid = i; step = t.steps });
  if Obs.Log.enabled Obs.Log.Info then
    Obs.Log.info "recover"
      [ ("pid", Obs.Log.I i); ("step", Obs.Log.I t.steps) ];
  match t.on_recover with None -> () | Some f -> f (ep_of t i)

let revive_due t =
  for i = 0 to t.n - 1 do
    match t.recover_at.(i) with
    | Some due when due <= t.steps -> revive t i
    | Some _ | None -> ()
  done

(* Same tie-break as [Sim.earliest_pending]: smallest due step, ties to
   the highest pid (scan order n-1 downto 0, keep-first on equal due). *)
let earliest_pending t =
  let best = ref None in
  for i = t.n - 1 downto 0 do
    match t.recover_at.(i) with
    | Some due ->
      (match !best with
       | Some (bdue, _) when bdue <= due -> ()
       | _ -> best := Some (due, i))
    | None -> ()
  done;
  Option.map snd !best

let start t =
  if not t.started then begin
    t.started <- true;
    for i = 0 to t.n - 1 do
      t.handlers.(i).Transport.on_start (ep_of t i)
    done
  end

let deliver_one t (seq, src, dst, msg) =
  t.steps <- t.steps + 1;
  if t.crashed.(dst) then begin
    t.dead_lettered <- t.dead_lettered + 1;
    trace_emit t
      (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
  end
  else begin
    match t.crash_plan.(dst) with
    | Crash.After_receives budget when t.receives_seen.(dst) >= budget ->
      fire_crash t dst ~recover:None;
      t.dead_lettered <- t.dead_lettered + 1;
      trace_emit t
        (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
    | Crash.Crash_recover { trigger = Crash.Receives budget; delay; keep }
      when t.receives_seen.(dst) >= budget ->
      fire_crash t dst ~recover:(Some (delay, keep));
      t.dead_lettered <- t.dead_lettered + 1;
      trace_emit t
        (fun () -> Obs.Trace.Dead_letter { step = t.steps; src; dst; seq })
    | Crash.After_receives _ | Crash.After_sends _ | Crash.Never
    | Crash.Crash_recover _ ->
      t.receives_seen.(dst) <- t.receives_seen.(dst) + 1;
      t.delivered <- t.delivered + 1;
      trace_emit t
        (fun () -> Obs.Trace.Deliver { step = t.steps; src; dst; seq });
      t.handlers.(dst).Transport.on_receive (ep_of t dst) ~src msg
  end

(* One pump increment: deliver the oldest in-flight message, or jump
   the clock to the earliest pending revival when the queue is empty.
   Returns [false] only at true quiescence. *)
let step t =
  start t;
  revive_due t;
  if Queue.is_empty t.queue then
    match earliest_pending t with
    | Some i -> revive t i; true
    | None -> false
  else begin
    deliver_one t (Queue.pop t.queue);
    true
  end

let quiescent t =
  t.started && Queue.is_empty t.queue
  && Array.for_all (fun r -> r = None) t.recover_at

let run ?(max_steps = 2_000_000) t =
  start t;
  let rec loop () =
    revive_due t;
    if Queue.is_empty t.queue then
      match earliest_pending t with
      | Some i -> revive t i; loop ()
      | None -> ()
    else begin
      if t.steps >= max_steps then raise Transport.Step_limit_exceeded;
      deliver_one t (Queue.pop t.queue);
      loop ()
    end
  in
  loop ()

type metrics = Transport.metrics = {
  sent : int;
  dropped : int;
  delivered : int;
  dead_lettered : int;
  recoveries : int;
  steps : int;
}

let metrics (t : _ t) : metrics =
  { sent = t.sent;
    dropped = t.dropped;
    delivered = t.delivered;
    dead_lettered = t.dead_lettered;
    recoveries = t.recoveries;
    steps = t.steps }
