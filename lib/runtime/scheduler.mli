(** Adversarial delivery schedulers as first-class, serializable
    strategies.

    The system model is fully asynchronous: at every step the adversary
    chooses any non-empty channel and delivers its head message (FIFO
    within a channel, reliable, exactly-once). A scheduler is that
    adversary. Every strategy usable here must be fair in the limit —
    every sent message is eventually delivered — which is all the model
    demands; the paper's theorems are quantified over {e all} such
    adversaries, so the fuzzer explores this space (see [lib/fuzz]).

    A strategy is a named value with serializable parameters: the pair
    [(name, params)] written by {!to_spec} and read back by {!of_spec}
    identifies the adversary exactly, which is what makes recorded
    scenarios replayable artifacts. Strategies may keep internal
    mutable state across picks; {!instantiate} creates a fresh instance
    per execution so replays are deterministic. New adversaries are
    added through {!register} (e.g. [Fuzz.Strategies.register_builtin]
    contributes delay-burst, stab-boundary and swarm mixtures). *)

type channel = { src : int; dst : int }

type pick_fn =
  rng:Rng.t -> step:int -> candidates:(channel * int) list -> channel
(** One scheduling decision: choose a candidate channel. Each candidate
    carries the send sequence number of its head message; the list is
    non-empty and given in deterministic (src, dst) order. *)

type t = {
  name : string;         (** registry key, e.g. ["lag"] *)
  params : string;       (** serializable parameters, e.g. ["0,1"] *)
  fresh : unit -> pick_fn;
      (** a fresh instance; per-execution mutable state lives in the
          returned closure *)
}

val make : name:string -> ?params:string -> (unit -> pick_fn) -> t
(** A strategy with per-execution state created by the thunk. *)

val stateless : name:string -> ?params:string -> pick_fn -> t
(** A strategy whose pick function needs no per-execution state. *)

val name : t -> string
val params : t -> string

val to_spec : t -> string
(** Canonical textual form: [name] or [name:params]. Inverse of
    {!of_spec} for registered strategies. *)

val equal : t -> t -> bool
(** Equality of canonical specs (the pick closures are not compared). *)

val instantiate : t -> pick_fn
(** A fresh pick function for one execution. The returned function
    raises [Invalid_argument] on an empty candidate list. *)

(** {1 The four core adversaries} *)

val random_uniform : t
(** uniform choice among non-empty channels *)

val round_robin : t
(** cycles deterministically over channels *)

val lifo_bias : t
(** prefers the channel whose head message was sent last — an
    out-of-order-heavy schedule that stresses round buffering *)

val fifo : t
(** global send order: always deliver the oldest in-flight message.
    Not an adversary — it is the schedule a plain FIFO event loop
    (e.g. {!Loopback}) produces, registered so Sim can be pinned to it
    for transport-conformance differentials. *)

val lag_sources : int list -> t
(** messages {e from} the given processes are starved: delivered only
    when nothing else is pending. This is the adversary of the paper's
    Theorem 3 proof, which makes up to [f] processes "so slow that the
    other fault-free processes must terminate before receiving any
    messages" from them. *)

(** {1 Registry} *)

val register : name:string -> (string -> (t, string) result) -> unit
(** [register ~name ctor] makes [name\[:params\]] resolvable by
    {!of_spec}; [ctor params] builds the strategy or explains why the
    parameters are malformed. Re-registering a name replaces the
    previous constructor (idempotent registration is fine). *)

val registered : unit -> string list
(** Registered names, sorted. *)

val of_spec : string -> (t, string) result
(** Parse ["name"] or ["name:params"] against the registry. *)
