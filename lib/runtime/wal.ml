(* Durability model after verified-betrfs's CrashableMap: the log is a
   sequence of entries of which a prefix is durable ("synced"); a crash
   may expose the synced prefix plus ANY prefix of the unsynced suffix
   (the adversary picks how many buffered writes made it to disk). *)

type sync_mode =
  | Strict
  | Unsound

type config = {
  checkpoint_every : int;
  sync : sync_mode;
}

let default_config = { checkpoint_every = 8; sync = Strict }

let sync_mode_to_string = function
  | Strict -> "strict"
  | Unsound -> "unsound"

let sync_mode_of_string = function
  | "strict" -> Ok Strict
  | "unsound" -> Ok Unsound
  | s -> Error (Printf.sprintf "unknown wal sync mode %S" s)

type 'e t = {
  config : config;
  mutable rev_entries : 'e list;
  mutable len : int;
  mutable synced_len : int;
  mutable sealed : bool;
}

let create config =
  if config.checkpoint_every < 1 then
    invalid_arg "Wal.create: checkpoint_every must be >= 1";
  { config; rev_entries = []; len = 0; synced_len = 0; sealed = false }

let config t = t.config
let length t = t.len
let synced t = t.synced_len
let unsynced t = t.len - t.synced_len
let sealed t = t.sealed

let append t e =
  if t.sealed then invalid_arg "Wal.append: log is sealed";
  t.rev_entries <- e :: t.rev_entries;
  t.len <- t.len + 1

(* Under [Unsound] the durable frontier never advances — this is the
   deliberately broken discipline the fuzzer's oracle must catch: a
   crash can then roll the process back behind state it has already
   externalized. *)
let sync t =
  if not t.sealed then
    match t.config.sync with
    | Strict -> t.synced_len <- t.len
    | Unsound -> ()

let entries t = List.rev t.rev_entries

let seal t = t.sealed <- true
let reopen t = t.sealed <- false

let rec drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: rest -> drop (k - 1) rest

let crash t ~keep =
  t.sealed <- true;
  let keep = Stdlib.max 0 keep in
  let survive = Stdlib.min t.len (t.synced_len + keep) in
  t.rev_entries <- drop (t.len - survive) t.rev_entries;
  t.len <- survive;
  (* whatever survived the crash is on disk, hence durable *)
  t.synced_len <- survive

let persist ~path ~encode t =
  Obs.Sink.write_file_exn ~path (fun oc ->
      List.iter
        (fun e ->
           output_string oc (encode e);
           output_char oc '\n')
        (entries t))
