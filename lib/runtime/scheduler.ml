type channel = { src : int; dst : int }

type pick_fn =
  rng:Rng.t -> step:int -> candidates:(channel * int) list -> channel

type t = {
  name : string;
  params : string;
  fresh : unit -> pick_fn;
}

let make ~name ?(params = "") fresh = { name; params; fresh }

let stateless ~name ?params pick = make ~name ?params (fun () -> pick)

let name t = t.name
let params t = t.params

let to_spec t = if t.params = "" then t.name else t.name ^ ":" ^ t.params

let equal a b = to_spec a = to_spec b

let instantiate t =
  let pick = t.fresh () in
  fun ~rng ~step ~candidates ->
    match candidates with
    | [] -> invalid_arg "Scheduler: no candidates"
    | _ -> pick ~rng ~step ~candidates

(* --- the four core adversaries --------------------------------------- *)

let nth_channel candidates k = fst (List.nth candidates k)

let pick_random ~rng ~step:_ ~candidates =
  nth_channel candidates (Rng.int rng (List.length candidates))

let pick_round_robin ~rng:_ ~step ~candidates =
  nth_channel candidates (step mod List.length candidates)

let pick_lag slow ~rng ~step:_ ~candidates =
  let fast =
    List.filter (fun (c, _) -> not (List.mem c.src slow)) candidates
  in
  let pool = if fast = [] then candidates else fast in
  nth_channel pool (Rng.int rng (List.length pool))

let pick_lifo ~rng:_ ~step:_ ~candidates =
  let latest =
    List.fold_left
      (fun acc (c, seq) ->
         match acc with
         | Some (_, best) when best >= seq -> acc
         | _ -> Some (c, seq))
      None candidates
  in
  match latest with Some (c, _) -> c | None -> assert false

(* Global send order: always deliver the oldest in-flight message.
   Sequence numbers are allocated from one system-wide counter, so the
   minimum head seq is the earliest undelivered send — the schedule a
   plain FIFO event loop (e.g. {!Loopback}) produces.  Not an
   adversary; exists so Sim can be pinned to the loopback schedule for
   conformance differentials. *)
let pick_fifo ~rng:_ ~step:_ ~candidates =
  let earliest =
    List.fold_left
      (fun acc (c, seq) ->
         match acc with
         | Some (_, best) when best <= seq -> acc
         | _ -> Some (c, seq))
      None candidates
  in
  match earliest with Some (c, _) -> c | None -> assert false

let random_uniform = stateless ~name:"random" pick_random
let round_robin = stateless ~name:"round-robin" pick_round_robin
let lifo_bias = stateless ~name:"lifo" pick_lifo
let fifo = stateless ~name:"fifo" pick_fifo

let lag_sources slow =
  stateless ~name:"lag"
    ~params:(String.concat "," (List.map string_of_int slow))
    (pick_lag slow)

(* --- registry --------------------------------------------------------- *)

let registry : (string, string -> (t, string) result) Hashtbl.t =
  Hashtbl.create 16

let register ~name ctor = Hashtbl.replace registry name ctor

let registered () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let parse_ids s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
      (match int_of_string_opt x with
       | Some i when i >= 0 -> go (i :: acc) rest
       | Some _ | None ->
         Error (Printf.sprintf "%S is not a process id" x))
  in
  go [] items

let no_params t = function
  | "" -> Ok t
  | p -> Error (Printf.sprintf "takes no parameters (got %S)" p)

let () =
  register ~name:"random" (fun p -> no_params random_uniform p);
  register ~name:"round-robin" (fun p -> no_params round_robin p);
  register ~name:"lifo" (fun p -> no_params lifo_bias p);
  register ~name:"fifo" (fun p -> no_params fifo p);
  register ~name:"lag" (fun p -> Result.map lag_sources (parse_ids p))

let of_spec s =
  let name, params =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match Hashtbl.find_opt registry name with
  | None ->
    Error
      (Printf.sprintf "unknown scheduler %S (registered: %s)" name
         (String.concat ", " (registered ())))
  | Some ctor ->
    (match ctor params with
     | Ok t -> Ok t
     | Error e -> Error (Printf.sprintf "scheduler %s: %s" name e))
