(** Crash plans for the "crash faults with incorrect inputs" model.

    A faulty process follows the algorithm faithfully until it crashes;
    a crash may land {e between the unit sends of a broadcast}, so some
    recipients receive the round's message and others never do — the
    exact behaviour the stable-vector primitive must tolerate. The
    send budget counts individual point-to-point sends, which makes
    partial broadcasts expressible; the receive budget triggers on
    deliveries instead, which lets the adversary kill a process at a
    precise point of its {e view} (e.g. one delivery short of a stable
    vector forming — the stabilization boundary). *)

type trigger =
  | Sends of int      (** fire at send attempt [k+1], like [After_sends] *)
  | Receives of int   (** fire at delivery [k+1], like [After_receives] *)

type plan =
  | Never                   (** the process never crashes *)
  | After_sends of int      (** crashes when it attempts send number
                                [k+1]; [After_sends 0] crashes before
                                sending anything *)
  | After_receives of int   (** crashes when delivery number [k+1]
                                reaches it: the first [k] deliveries
                                are processed, the next one kills the
                                process (that message is lost).
                                [After_receives 0] crashes on its first
                                delivery — unlike [After_sends 0] the
                                process still gets its initial
                                broadcast out. *)
  | Crash_recover of { trigger : trigger; delay : int; keep : int }
      (** the crash-{e recovery} extension: crash exactly as the
          trigger says, then revive after [delay] further scheduler
          steps (the simulator fast-forwards if the system quiesces
          first, so revival is guaranteed). Messages delivered while
          down are lost. [keep] is the disk-prefix adversary's choice:
          how many {e unsynced} WAL entries survive the crash (see
          {!Wal.crash}). A revived plan is disarmed — each process
          crashes at most once per execution. *)

val pp : Format.formatter -> plan -> unit

val random_for :
  rng:Rng.t -> n:int -> faulty:int list -> max_sends:int -> plan array
(** A crash plan array for [n] processes: non-faulty processes never
    crash, each faulty process gets a uniformly random send budget in
    [\[0, max_sends\]].

    Beware: a drawn budget can exceed the number of sends the process
    performs in a short execution, in which case the plan never fires
    and the process is de-facto correct. Use {!clamp} with the counts
    observed in a crash-free probe run to guarantee every sampled plan
    actually crashes (see [Chc.Scenario.ensure_crashes]). *)

val clamp : plan array -> sends:int array -> receives:int array -> plan array
(** Clamp each budget to [count - 1], where [count] is the per-process
    send (resp. receive) count observed in a {e crash-free} run of the
    same scenario. Because the budgeted execution is identical to the
    crash-free one up to the crash point, a clamped plan is guaranteed
    to fire under the same (scheduler, seed) — this is the fix for
    plans that silently never crash. Counts of 0 clamp the budget
    to 0. *)
