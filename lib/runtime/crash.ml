type trigger =
  | Sends of int
  | Receives of int

type plan =
  | Never
  | After_sends of int
  | After_receives of int
  | Crash_recover of { trigger : trigger; delay : int; keep : int }

let pp fmt = function
  | Never -> Format.pp_print_string fmt "never"
  | After_sends k -> Format.fprintf fmt "after-%d-sends" k
  | After_receives k -> Format.fprintf fmt "after-%d-receives" k
  | Crash_recover { trigger; delay; keep } ->
    let kind, k =
      match trigger with Sends k -> ("sends", k) | Receives k -> ("receives", k)
    in
    Format.fprintf fmt "recover(after-%d-%s,delay=%d,keep=%d)" k kind delay keep

let random_for ~rng ~n ~faulty ~max_sends =
  Array.init n (fun i ->
      if List.mem i faulty then After_sends (Rng.int rng (max_sends + 1))
      else Never)

(* A budget of [count - 1] is the latest one guaranteed to fire: the
   crash-free execution and the budgeted one coincide up to the point
   where the budget is exhausted, so the [budget + 1]-th attempt — which
   the probe witnessed — actually happens and kills the process. *)
let clamp plans ~sends ~receives =
  Array.mapi
    (fun i plan ->
       match plan with
       | Never -> Never
       | After_sends k -> After_sends (min k (max 0 (sends.(i) - 1)))
       | After_receives k -> After_receives (min k (max 0 (receives.(i) - 1)))
       | Crash_recover { trigger; delay; keep } ->
         let trigger =
           match trigger with
           | Sends k -> Sends (min k (max 0 (sends.(i) - 1)))
           | Receives k -> Receives (min k (max 0 (receives.(i) - 1)))
         in
         Crash_recover { trigger; delay; keep })
    plans
