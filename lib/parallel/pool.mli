(** Fixed-size domain-based work pool (OCaml 5 stdlib [Domain] only).

    The pool powers the embarrassingly-parallel inner loops of the
    exact-geometry kernel: facet enumeration, LP vertex pruning, the
    round-0 subset intersection, and per-seed experiment sweeps.
    Results are always merged in input (index) order, so every
    computation is a pure function of its inputs — executions are
    byte-identical whatever the pool size (see DESIGN.md §2,
    "Determinism").

    Sizing: the global pool reads the [CHC_DOMAINS] environment
    variable at first use; absent that it uses
    [Domain.recommended_domain_count ()]. Size 1 (the default on a
    single-core host) short-circuits every combinator to its exact
    sequential equivalent — no domains are ever spawned.

    Nesting: a combinator invoked from inside a worker task runs
    sequentially rather than re-entering the pool, so nested data
    parallelism (e.g. LP pruning inside a parallel facet sweep) cannot
    deadlock the fixed-size pool. *)

type t

val create : size:int -> t
(** A pool that runs tasks on up to [size] domains ([size - 1] spawned
    workers plus the submitting domain, which participates). Workers
    are spawned lazily on first use and shut down via [at_exit].
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val shutdown : t -> unit
(** Join all workers. Subsequent combinator calls on the pool run
    sequentially. Idempotent. *)

(** {1 Combinators}

    All combinators preserve input order exactly: [parallel_map p f l]
    returns the same list as [List.map f l], whatever the pool size or
    scheduling. Exceptions raised by [f] are re-raised in the calling
    domain (one representative when several tasks fail). *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

val parallel_filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list

val parallel_concat_map : t -> ('a -> 'b list) -> 'a list -> 'b list

(** {1 The global pool} *)

val global : unit -> t
(** The process-wide pool, created on first use with the size rules
    above. *)

val global_size : unit -> int

val set_global_size : int -> unit
(** Replace the global pool (shutting the old one down). Used by tests
    to compare 1-domain and multi-domain executions in-process, and by
    [CHC_DOMAINS]-style CLI overrides. *)
