(** Fixed-size domain-based work pool (OCaml 5 stdlib [Domain] only).

    The pool powers the embarrassingly-parallel inner loops of the
    exact-geometry kernel: facet enumeration, LP vertex pruning, the
    round-0 subset intersection, and per-seed experiment sweeps.
    Results are always merged in input (index) order, so every
    computation is a pure function of its inputs — executions are
    byte-identical whatever the pool size (see DESIGN.md §2,
    "Determinism").

    Sizing: the global pool reads the [CHC_DOMAINS] environment
    variable at first use; absent that it uses
    [Domain.recommended_domain_count ()]. Either way the size is
    clamped to 64 domains (the pool is for compute parallelism; more
    domains than cores only adds contention, and OCaml 5 recommends
    staying near the core count). An invalid [CHC_DOMAINS] value
    (non-numeric, zero, negative) is rejected with a warning on stderr
    naming the value — it does {e not} silently resize the pool — and
    the recommended count is used instead. Size 1 (the default on a
    single-core host) short-circuits every combinator to its exact
    sequential equivalent — no domains are ever spawned.

    Nesting: a combinator invoked from inside a worker task runs
    sequentially rather than re-entering the pool, so nested data
    parallelism (e.g. LP pruning inside a parallel facet sweep) cannot
    deadlock the fixed-size pool. *)

type t

val create : size:int -> t
(** A pool that runs tasks on up to [size] domains ([size - 1] spawned
    workers plus the submitting domain, which participates). Workers
    are spawned lazily on first use and shut down via [at_exit].
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

type stats = {
  pool_size : int;  (** configured size (domains, submitter included) *)
  tasks_run : int;  (** lifetime tasks executed through the queue *)
  batches : int;    (** lifetime combinator fan-outs that hit the queue *)
}

val stats : t -> stats
(** Utilization counters. Sequentialized calls (size-1 pools, nested
    combinators, singleton inputs) bypass the queue and are not
    counted — [tasks_run] measures actual parallel dispatch. *)

val parse_size : string -> (int, string) result
(** Parse a [CHC_DOMAINS]-style domain count: a positive integer,
    clamped to the 64-domain maximum. [Error] carries a human-readable
    reason naming the rejected value. *)

val shutdown : t -> unit
(** Join all workers. Subsequent combinator calls on the pool run
    sequentially. Idempotent. *)

(** {1 Combinators}

    All combinators preserve input order exactly: [parallel_map p f l]
    returns the same list as [List.map f l], whatever the pool size or
    scheduling. Exceptions raised by [f] are re-raised in the calling
    domain (one representative when several tasks fail). *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

val parallel_filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list

val parallel_concat_map : t -> ('a -> 'b list) -> 'a list -> 'b list

(** {1 The global pool} *)

val global : unit -> t
(** The process-wide pool, created on first use with the size rules
    above. *)

val global_size : unit -> int

val set_global_size : int -> unit
(** Replace the global pool (shutting the old one down). Used by tests
    to compare 1-domain and multi-domain executions in-process, and by
    [CHC_DOMAINS]-style CLI overrides. *)
