(* Fixed-size Domain work pool. Tasks are closures pushed to a shared
   queue; [size - 1] worker domains plus the submitting domain drain
   it. Combinators write results into index-addressed slots and read
   them back in index order, so output never depends on scheduling. *)

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type t = {
  size : int;
  m : Mutex.t;
  cond : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t array;
  mutable spawned : bool;
  mutable down : bool;
  (* Lifetime utilization counters (guarded by [m]). *)
  mutable task_count : int;
  mutable batch_count : int;
}

type stats = {
  pool_size : int;
  tasks_run : int;
  batches : int;
}

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  { size;
    m = Mutex.create ();
    cond = Condition.create ();
    tasks = Queue.create ();
    workers = [||];
    spawned = false;
    down = false;
    task_count = 0;
    batch_count = 0 }

let size t = t.size

let stats t =
  Mutex.lock t.m;
  let s =
    { pool_size = t.size; tasks_run = t.task_count; batches = t.batch_count }
  in
  Mutex.unlock t.m;
  s

let worker_loop pool () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.m;
    while Queue.is_empty pool.tasks && not pool.down do
      Condition.wait pool.cond pool.m
    done;
    if not (Queue.is_empty pool.tasks) then begin
      let task = Queue.pop pool.tasks in
      Mutex.unlock pool.m;
      task ();
      loop ()
    end
    else Mutex.unlock pool.m (* down && drained *)
  in
  loop ()

let shutdown pool =
  Mutex.lock pool.m;
  pool.down <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.m;
  let ws = pool.workers in
  pool.workers <- [||];
  Array.iter Domain.join ws

let ensure_spawned pool =
  Mutex.lock pool.m;
  if (not pool.spawned) && not pool.down then begin
    pool.spawned <- true;
    pool.workers <-
      Array.init (pool.size - 1) (fun _ -> Domain.spawn (worker_loop pool));
    at_exit (fun () -> shutdown pool)
  end;
  Mutex.unlock pool.m

(* Per-batch completion state; the submitter blocks on [bc] until
   every task of its batch has run. *)
type batch = {
  mutable remaining : int;
  mutable exn : exn option;
  bm : Mutex.t;
  bc : Condition.t;
}

let run_batch_inner pool thunks n =
  begin
    ensure_spawned pool;
    let b =
      { remaining = n; exn = None; bm = Mutex.create (); bc = Condition.create () }
    in
    let wrap thunk () =
      (try
         if Obs.Prof.enabled () then Obs.Prof.with_span "pool.task" thunk
         else thunk ()
       with
       | e ->
         Mutex.lock b.bm;
         if b.exn = None then b.exn <- Some e;
         Mutex.unlock b.bm);
      Mutex.lock b.bm;
      b.remaining <- b.remaining - 1;
      if b.remaining = 0 then Condition.broadcast b.bc;
      Mutex.unlock b.bm
    in
    Mutex.lock pool.m;
    Array.iter (fun thunk -> Queue.push (wrap thunk) pool.tasks) thunks;
    pool.task_count <- pool.task_count + n;
    pool.batch_count <- pool.batch_count + 1;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.m;
    (* The submitting domain helps drain the queue instead of idling. *)
    let rec help () =
      Mutex.lock pool.m;
      if Queue.is_empty pool.tasks then Mutex.unlock pool.m
      else begin
        let task = Queue.pop pool.tasks in
        Mutex.unlock pool.m;
        task ();
        help ()
      end
    in
    help ();
    Mutex.lock b.bm;
    while b.remaining > 0 do Condition.wait b.bc b.bm done;
    let failed = b.exn in
    Mutex.unlock b.bm;
    match failed with Some e -> raise e | None -> ()
  end

let run_batch pool thunks =
  let n = Array.length thunks in
  if n > 0 then
    if Obs.Prof.enabled () then
      Obs.Prof.with_span
        ~attrs:[ ("tasks", string_of_int n) ]
        "pool.batch"
        (fun () -> run_batch_inner pool thunks n)
    else run_batch_inner pool thunks n

let sequentialize pool xs =
  pool.size <= 1 || pool.down || Domain.DLS.get in_worker
  || (match xs with [] | [ _ ] -> true | _ -> false)

let parallel_map pool f xs =
  if sequentialize pool xs then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let nchunks = min n (pool.size * 4) in
    let thunks =
      Array.init nchunks (fun c ->
          let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
          fun () ->
            for i = lo to hi - 1 do out.(i) <- Some (f arr.(i)) done)
    in
    run_batch pool thunks;
    Array.to_list (Array.map Option.get out)
  end

let parallel_filter_map pool f xs =
  if sequentialize pool xs then List.filter_map f xs
  else List.filter_map Fun.id (parallel_map pool f xs)

let parallel_concat_map pool f xs =
  if sequentialize pool xs then List.concat_map f xs
  else List.concat (parallel_map pool f xs)

(* ------------------------------------------------------------------ *)
(* Global pool. *)

let max_domains = 64

let parse_size s =
  match int_of_string_opt (String.trim s) with
  | Some k when k >= 1 -> Ok (min k max_domains)
  | Some k -> Error (Printf.sprintf "%d is not a positive domain count" k)
  | None -> Error (Printf.sprintf "%S is not an integer" s)

let default_size () =
  let recommended () = min (Domain.recommended_domain_count ()) max_domains in
  match Sys.getenv_opt "CHC_DOMAINS" with
  | Some s ->
    (match parse_size s with
     | Ok k -> k
     | Error why ->
       (* An invalid value must not silently change the pool size —
          name the rejected value so a typo in a job script is
          visible (satellite of the observability layer). *)
       Printf.eprintf
         "chc: warning: ignoring CHC_DOMAINS=%s (%s); using %d\n%!"
         s why (recommended ());
       recommended ())
  | None -> recommended ()

let global_mutex = Mutex.create ()
let global_pool : t option ref = ref None

let global () =
  Mutex.lock global_mutex;
  let p =
    match !global_pool with
    | Some p -> p
    | None ->
      let p = create ~size:(default_size ()) in
      global_pool := Some p;
      p
  in
  Mutex.unlock global_mutex;
  p

let global_size () = size (global ())

let set_global_size k =
  if k < 1 then invalid_arg "Pool.set_global_size: size must be >= 1";
  Mutex.lock global_mutex;
  let old = !global_pool in
  global_pool := Some (create ~size:k);
  Mutex.unlock global_mutex;
  Option.iter shutdown old

(* Surface the global pool's lifetime counters through the metrics
   registry. Reporting must not force the pool into existence, so the
   collector reads the ref directly instead of calling [global]. *)
let () =
  Obs.Metrics.register_collector (fun () ->
      Mutex.lock global_mutex;
      let p = !global_pool in
      Mutex.unlock global_mutex;
      match p with
      | None -> []
      | Some p ->
        let s = stats p in
        [ { Obs.Metrics.metric = "chc_pool_size";
            labels = [];
            value = Obs.Metrics.Gauge (float_of_int s.pool_size) };
          { Obs.Metrics.metric = "chc_pool_tasks_total";
            labels = [];
            value = Obs.Metrics.Counter s.tasks_run };
          { Obs.Metrics.metric = "chc_pool_batches_total";
            labels = [];
            value = Obs.Metrics.Counter s.batches } ])
