(* Bounded memo table: fixed bucket array, per-table mutex, epoch
   eviction (flush everything when full). Lookups hold the lock only
   for the chain walk; the memoized function runs unlocked. *)

type ('a, 'b) t = {
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  max_size : int;
  m : Mutex.t;
  buckets : (int * 'a * 'b) list array;
  mutable count : int;
  mutable hits : int;
  mutable misses : int;
}

let nbuckets = 1024 (* power of two: index by [hash land (nbuckets-1)] *)

let global_enabled = Atomic.make true
let set_enabled b = Atomic.set global_enabled b
let enabled () = Atomic.get global_enabled

let create ?(max_size = 4096) ~hash ~equal () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be >= 1";
  { hash; equal; max_size;
    m = Mutex.create ();
    buckets = Array.make nbuckets [];
    count = 0; hits = 0; misses = 0 }

let clear t =
  Mutex.lock t.m;
  Array.fill t.buckets 0 nbuckets [];
  t.count <- 0;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.m

let stats t =
  Mutex.lock t.m;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.m;
  s

let find_or_add t k f =
  if not (Atomic.get global_enabled) then f ()
  else begin
    let h = (t.hash k) land max_int in
    let idx = h land (nbuckets - 1) in
    Mutex.lock t.m;
    let rec lookup = function
      | [] -> None
      | (h', k', v) :: rest ->
        if h' = h && t.equal k' k then Some v else lookup rest
    in
    match lookup t.buckets.(idx) with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.m;
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.m;
      let v = f () in
      Mutex.lock t.m;
      if t.count >= t.max_size then begin
        Array.fill t.buckets 0 nbuckets [];
        t.count <- 0
      end;
      t.buckets.(idx) <- (h, k, v) :: t.buckets.(idx);
      t.count <- t.count + 1;
      Mutex.unlock t.m;
      v
  end
