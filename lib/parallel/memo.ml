(* Bounded memo table: fixed bucket array, per-table mutex, epoch
   eviction (flush everything when full). Lookups hold the lock only
   for the chain walk; the memoized function runs unlocked. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type ('a, 'b) t = {
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  max_size : int;
  span_attrs : (string * string) list;
      (* [("table", name)] for named tables — precomputed so the
         profiling-on path allocates nothing per lookup *)
  m : Mutex.t;
  buckets : (int * 'a * 'b) list array;
  mutable count : int;
  (* Lifetime counters: survive both [clear] and epoch eviction, so
     long-running hit-rate reporting (Obs.Report) keeps its history
     across flushes. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let nbuckets = 1024 (* power of two: index by [hash land (nbuckets-1)] *)

let global_enabled = Atomic.make true
let set_enabled b = Atomic.set global_enabled b

(* Domain-local bypass: differential runs (filtered-vs-exact oracle)
   must not let one kernel's run serve cached values computed by the
   other — a shared hit would mask exactly the divergence the oracle
   exists to catch. Bypassing is scoped to the calling domain so
   concurrent pool workers keep their caches. *)
let bypass_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let with_bypass f =
  let slot = Domain.DLS.get bypass_key in
  let saved = !slot in
  slot := true;
  Fun.protect ~finally:(fun () -> slot := saved) f

let enabled () = Atomic.get global_enabled && not !(Domain.DLS.get bypass_key)

(* Registry of named tables, in registration order, so reporting
   layers can enumerate every cache in the process without holding a
   reference to each. Stats and clear thunks only; the tables
   themselves stay private to their modules. *)
let registry_m = Mutex.create ()
let registry : (string * (unit -> stats) * (unit -> unit)) list ref = ref []

let stats t =
  Mutex.lock t.m;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      entries = t.count }
  in
  Mutex.unlock t.m;
  s

(* Must be called with [t.m] held. *)
let flush_locked t =
  Array.fill t.buckets 0 nbuckets [];
  t.evictions <- t.evictions + t.count;
  t.count <- 0

let clear t =
  Mutex.lock t.m;
  flush_locked t;
  Mutex.unlock t.m

let register_named name t =
  Mutex.lock registry_m;
  registry := !registry @ [ (name, (fun () -> stats t), (fun () -> clear t)) ];
  Mutex.unlock registry_m

let all_stats () =
  Mutex.lock registry_m;
  let r = !registry in
  Mutex.unlock registry_m;
  List.map (fun (name, f, _) -> (name, f ())) r

let clear_all () =
  Mutex.lock registry_m;
  let r = !registry in
  Mutex.unlock registry_m;
  List.iter (fun (_, _, clear) -> clear ()) r

let create ?name ?(max_size = 4096) ~hash ~equal () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be >= 1";
  let t =
    { hash; equal; max_size;
      span_attrs =
        (match name with Some n -> [ ("table", n) ] | None -> []);
      m = Mutex.create ();
      buckets = Array.make nbuckets [];
      count = 0; hits = 0; misses = 0; evictions = 0 }
  in
  Option.iter (fun n -> register_named n t) name;
  t

let find_or_add_core t k f =
  if not (enabled ()) then f ()
  else begin
    let h = (t.hash k) land max_int in
    let idx = h land (nbuckets - 1) in
    Mutex.lock t.m;
    let rec lookup = function
      | [] -> None
      | (h', k', v) :: rest ->
        if h' = h && t.equal k' k then Some v else lookup rest
    in
    match lookup t.buckets.(idx) with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.m;
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.m;
      let v = f () in
      Mutex.lock t.m;
      if t.count >= t.max_size then flush_locked t;
      t.buckets.(idx) <- (h, k, v) :: t.buckets.(idx);
      t.count <- t.count + 1;
      Mutex.unlock t.m;
      v
  end

let find_or_add t k f =
  if Obs.Prof.enabled () then
    Obs.Prof.with_span ~attrs:t.span_attrs "memo.lookup" (fun () ->
        find_or_add_core t k f)
  else find_or_add_core t k f

(* Publish every named table's lifetime counters as registry metrics;
   [Obs.Report] reads these instead of linking against this module. *)
let () =
  Obs.Metrics.register_collector (fun () ->
      List.concat_map
        (fun (name, (s : stats)) ->
           let labels = [ ("table", name) ] in
           [ { Obs.Metrics.metric = "chc_memo_hits_total";
               labels;
               value = Obs.Metrics.Counter s.hits };
             { Obs.Metrics.metric = "chc_memo_misses_total";
               labels;
               value = Obs.Metrics.Counter s.misses };
             { Obs.Metrics.metric = "chc_memo_evictions_total";
               labels;
               value = Obs.Metrics.Counter s.evictions };
             { Obs.Metrics.metric = "chc_memo_entries";
               labels;
               value = Obs.Metrics.Gauge (float_of_int s.entries) } ])
        (all_stats ()))
