(* Bounded memo table: fixed bucket array, per-table mutex, epoch
   eviction (flush everything when full). Lookups hold the lock only
   for the chain walk; the memoized function runs unlocked. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

type ('a, 'b) t = {
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
  max_size : int;
  span_attrs : (string * string) list;
      (* [("table", name)] for named tables — precomputed so the
         profiling-on path allocates nothing per lookup *)
  m : Mutex.t;
  buckets : (int * 'a * 'b) list array;
  mutable count : int;
  (* Lifetime counters: survive both [clear] and epoch eviction, so
     long-running hit-rate reporting (Obs.Report) keeps its history
     across flushes. *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let nbuckets = 1024 (* power of two: index by [hash land (nbuckets-1)] *)

let global_enabled = Atomic.make true
let set_enabled b = Atomic.set global_enabled b
let enabled () = Atomic.get global_enabled

(* Registry of named tables, in registration order, so reporting
   layers can enumerate every cache in the process without holding a
   reference to each. Stats thunks only; the tables themselves stay
   private to their modules. *)
let registry_m = Mutex.create ()
let registry : (string * (unit -> stats)) list ref = ref []

let stats t =
  Mutex.lock t.m;
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions;
      entries = t.count }
  in
  Mutex.unlock t.m;
  s

let register_named name t =
  Mutex.lock registry_m;
  registry := !registry @ [ (name, fun () -> stats t) ];
  Mutex.unlock registry_m

let all_stats () =
  Mutex.lock registry_m;
  let r = !registry in
  Mutex.unlock registry_m;
  List.map (fun (name, f) -> (name, f ())) r

let create ?name ?(max_size = 4096) ~hash ~equal () =
  if max_size < 1 then invalid_arg "Memo.create: max_size must be >= 1";
  let t =
    { hash; equal; max_size;
      span_attrs =
        (match name with Some n -> [ ("table", n) ] | None -> []);
      m = Mutex.create ();
      buckets = Array.make nbuckets [];
      count = 0; hits = 0; misses = 0; evictions = 0 }
  in
  Option.iter (fun n -> register_named n t) name;
  t

(* Must be called with [t.m] held. *)
let flush_locked t =
  Array.fill t.buckets 0 nbuckets [];
  t.evictions <- t.evictions + t.count;
  t.count <- 0

let clear t =
  Mutex.lock t.m;
  flush_locked t;
  Mutex.unlock t.m

let find_or_add_core t k f =
  if not (Atomic.get global_enabled) then f ()
  else begin
    let h = (t.hash k) land max_int in
    let idx = h land (nbuckets - 1) in
    Mutex.lock t.m;
    let rec lookup = function
      | [] -> None
      | (h', k', v) :: rest ->
        if h' = h && t.equal k' k then Some v else lookup rest
    in
    match lookup t.buckets.(idx) with
    | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.m;
      v
    | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.m;
      let v = f () in
      Mutex.lock t.m;
      if t.count >= t.max_size then flush_locked t;
      t.buckets.(idx) <- (h, k, v) :: t.buckets.(idx);
      t.count <- t.count + 1;
      Mutex.unlock t.m;
      v
  end

let find_or_add t k f =
  if Obs.Prof.enabled () then
    Obs.Prof.with_span ~attrs:t.span_attrs "memo.lookup" (fun () ->
        find_or_add_core t k f)
  else find_or_add_core t k f

(* Publish every named table's lifetime counters as registry metrics;
   [Obs.Report] reads these instead of linking against this module. *)
let () =
  Obs.Metrics.register_collector (fun () ->
      List.concat_map
        (fun (name, (s : stats)) ->
           let labels = [ ("table", name) ] in
           [ { Obs.Metrics.metric = "chc_memo_hits_total";
               labels;
               value = Obs.Metrics.Counter s.hits };
             { Obs.Metrics.metric = "chc_memo_misses_total";
               labels;
               value = Obs.Metrics.Counter s.misses };
             { Obs.Metrics.metric = "chc_memo_evictions_total";
               labels;
               value = Obs.Metrics.Counter s.evictions };
             { Obs.Metrics.metric = "chc_memo_entries";
               labels;
               value = Obs.Metrics.Gauge (float_of_int s.entries) } ])
        (all_stats ()))
