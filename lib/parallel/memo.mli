(** Bounded, domain-safe memo tables for pure functions.

    The geometry kernel recomputes identical hulls and LP membership
    certificates many times: once ε-agreement kicks in, the [h_i[t]]
    polytopes coincide across processes, so every process runs the
    same exact-arithmetic reduction. A memo table keyed on the
    canonical inputs shortcuts the repeats.

    Caching is invisible to results: tables only ever return a value
    produced by the memoized function on a structurally equal key, so
    executions stay pure functions of their inputs. Tables are
    mutex-protected (the parallel kernel calls them from worker
    domains) and bounded — when [max_size] entries accumulate, the
    table is flushed wholesale (epoch eviction; cheap, and fine for
    the repeat-heavy workloads here).

    [set_enabled false] bypasses every table; the bench harness uses
    it to measure algorithmic speedups separately from cache hits. *)

type ('a, 'b) t

type stats = {
  hits : int;       (** lifetime lookups answered from the table *)
  misses : int;     (** lifetime lookups that ran the function *)
  evictions : int;  (** lifetime entries discarded by epoch flushes and {!clear} *)
  entries : int;    (** entries resident right now *)
}

val create :
  ?name:string ->
  ?max_size:int -> hash:('a -> int) -> equal:('a -> 'a -> bool) -> unit
  -> ('a, 'b) t
(** [max_size] defaults to 4096 entries. A [?name] registers the table
    in the process-wide registry read by {!all_stats} (used by
    [Obs.Report] to enumerate every kernel cache); anonymous tables
    stay unlisted. *)

val find_or_add : ('a, 'b) t -> 'a -> (unit -> 'b) -> 'b
(** [find_or_add t k f] returns the cached value for [k], or runs [f]
    (outside the table lock) and caches its result. Under a race two
    domains may both run [f]; both results are structurally equal, and
    one wins the slot. *)

val clear : ('a, 'b) t -> unit
(** Discard every resident entry (they count as evictions). Lifetime
    [hits]/[misses]/[evictions] counters are {e not} reset — epoch
    eviction uses [clear], and hit-rate reporting must survive it. *)

val stats : ('a, 'b) t -> stats
(** Lifetime counters plus the current entry count. *)

val all_stats : unit -> (string * stats) list
(** Stats of every named table, in registration order (deterministic:
    tables are created at module initialization). *)

val clear_all : unit -> unit
(** {!clear} every named table. The bench harness uses this between
    measured runs so each starts from cold caches — in particular the
    kernel-ablation sweep (E13), where a value cached under one
    arithmetic kernel must not be served to the other's run. *)

val set_enabled : bool -> unit
(** Globally enable/disable all memo tables (default: enabled). *)

val enabled : unit -> bool
(** [true] iff lookups are live in the current domain: globally
    enabled and not inside {!with_bypass}. *)

val with_bypass : (unit -> 'a) -> 'a
(** Run a thunk with every table bypassed in the current domain (no
    lookups, no insertions; other domains are unaffected). Differential
    oracles use this so one kernel's run can't serve values cached by
    the other — a cross-kernel hit would mask exactly the divergence
    being tested for. Nests; restores the previous state on exit. *)
