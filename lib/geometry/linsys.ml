module Q = Numeric.Q
module Kernel = Numeric.Kernel
module Filter = Numeric.Filter

type matrix = Q.t array array

let copy_matrix a = Array.map Array.copy a

let rref a0 =
  let a = copy_matrix a0 in
  let rows = Array.length a in
  if rows = 0 then (a, [])
  else begin
    let cols = Array.length a.(0) in
    let pivots = ref [] in
    let r = ref 0 in
    let c = ref 0 in
    while !r < rows && !c < cols do
      (* Find a non-zero pivot in column c at or below row r. Under the
         filtered kernel, choose the candidate with the fewest bits
         (elimination itself stays exact; since the reduced echelon
         form is unique, pivot choice can't change any result — it only
         bounds intermediate coefficient growth). The exact kernel
         keeps the historical first-nonzero scan. *)
      let pivot_row = ref (-1) in
      if Kernel.filtered () then begin
        let best_cost = ref max_int in
        for i = !r to rows - 1 do
          if not (Q.is_zero a.(i).(!c)) then begin
            let cost = Filter.pivot_cost a.(i).(!c) in
            if cost < !best_cost then begin best_cost := cost; pivot_row := i end
          end
        done
      end
      else
        (try
           for i = !r to rows - 1 do
             if not (Q.is_zero a.(i).(!c)) then begin pivot_row := i; raise Exit end
           done
         with Exit -> ());
      if !pivot_row < 0 then incr c
      else begin
        let p = !pivot_row in
        if p <> !r then begin
          let tmp = a.(p) in a.(p) <- a.(!r); a.(!r) <- tmp
        end;
        (* Scale pivot row to make the pivot 1. *)
        let inv = Q.inv a.(!r).(!c) in
        for j = !c to cols - 1 do a.(!r).(j) <- Q.mul inv a.(!r).(j) done;
        (* Eliminate the column everywhere else. *)
        for i = 0 to rows - 1 do
          if i <> !r && not (Q.is_zero a.(i).(!c)) then begin
            let factor = a.(i).(!c) in
            for j = !c to cols - 1 do
              a.(i).(j) <- Q.sub a.(i).(j) (Q.mul factor a.(!r).(j))
            done
          end
        done;
        pivots := (!r, !c) :: !pivots;
        incr r;
        incr c
      end
    done;
    (a, List.rev !pivots)
  end

let rank a = List.length (snd (rref a))

let augment a b =
  Array.mapi (fun i row -> Array.append row [| b.(i) |]) a

let solve a b =
  let n = Array.length a in
  if n = 0 then Some [||]
  else if Array.length a.(0) <> n || Array.length b <> n then
    invalid_arg "Linsys.solve: not square / size mismatch"
  else begin
    let r, pivots = rref (augment a b) in
    if List.length pivots = n
       && List.for_all (fun (_, c) -> c < n) pivots
    then Some (Array.init n (fun i -> r.(i).(n)))
    else None
  end

let solve_any a b =
  let m = Array.length a in
  if m = 0 then Some [||]
  else begin
    let n = Array.length a.(0) in
    if Array.length b <> m then invalid_arg "Linsys.solve_any: size mismatch"
    else begin
      let r, pivots = rref (augment a b) in
      if List.exists (fun (_, c) -> c = n) pivots then None
      else begin
        let x = Array.make n Q.zero in
        List.iter (fun (row, col) -> x.(col) <- r.(row).(n)) pivots;
        Some x
      end
    end
  end

let solve_unique a b =
  let m = Array.length a in
  if m = 0 then None
  else begin
    let n = Array.length a.(0) in
    if Array.length b <> m then invalid_arg "Linsys.solve_unique: size mismatch"
    else begin
      let r, pivots = rref (augment a b) in
      if List.exists (fun (_, c) -> c = n) pivots then None (* inconsistent *)
      else if List.length pivots <> n then None (* underdetermined *)
      else begin
        let x = Array.make n Q.zero in
        List.iter (fun (row, col) -> x.(col) <- r.(row).(n)) pivots;
        Some x
      end
    end
  end

let nullspace a =
  let m = Array.length a in
  if m = 0 then []
  else begin
    let n = Array.length a.(0) in
    let r, pivots = rref a in
    let pivot_cols = List.map snd pivots in
    let is_pivot c = List.mem c pivot_cols in
    let free_cols = List.filter (fun c -> not (is_pivot c)) (List.init n Fun.id) in
    let basis_for fc =
      let x = Array.make n Q.zero in
      x.(fc) <- Q.one;
      List.iter (fun (row, col) -> x.(col) <- Q.neg r.(row).(fc)) pivots;
      x
    in
    List.map basis_for free_cols
  end

let independent_rows rows =
  match rows with
  | [] -> []
  | first :: _ ->
    let n = Array.length first in
    (* Incremental: keep a row iff it increases the rank so far. *)
    let kept = ref [] and kept_idx = ref [] in
    List.iteri
      (fun i row ->
         if Array.length row <> n then invalid_arg "Linsys.independent_rows"
         else begin
           let candidate = Array.of_list (List.rev (row :: !kept)) in
           if rank candidate > List.length !kept then begin
             kept := row :: !kept;
             kept_idx := i :: !kept_idx
           end
         end)
      rows;
    List.rev !kept_idx

let det a =
  let n = Array.length a in
  if n = 0 then Q.one
  else begin
    let m = copy_matrix a in
    let sign = ref 1 in
    let d = ref Q.one in
    (try
       for c = 0 to n - 1 do
         let pivot_row = ref (-1) in
         (try
            for i = c to n - 1 do
              if not (Q.is_zero m.(i).(c)) then begin pivot_row := i; raise Exit end
            done
          with Exit -> ());
         if !pivot_row < 0 then begin d := Q.zero; raise Exit end;
         if !pivot_row <> c then begin
           let tmp = m.(!pivot_row) in
           m.(!pivot_row) <- m.(c);
           m.(c) <- tmp;
           sign := - !sign
         end;
         d := Q.mul !d m.(c).(c);
         let inv = Q.inv m.(c).(c) in
         for i = c + 1 to n - 1 do
           if not (Q.is_zero m.(i).(c)) then begin
             let f = Q.mul inv m.(i).(c) in
             for j = c to n - 1 do
               m.(i).(j) <- Q.sub m.(i).(j) (Q.mul f m.(c).(j))
             done
           end
         done
       done
     with Exit -> ());
    if !sign < 0 then Q.neg !d else !d
  end

let mat_vec a x =
  Array.map (fun row ->
      let acc = ref Q.zero in
      Array.iteri (fun j v -> acc := Q.add !acc (Q.mul v x.(j))) row;
      !acc)
    a

let mat_mul a b =
  let n = Array.length b in
  if n = 0 then Array.map (fun _ -> [||]) a
  else begin
    let p = Array.length b.(0) in
    Array.map
      (fun row ->
         Array.init p (fun j ->
             let acc = ref Q.zero in
             for k = 0 to n - 1 do
               acc := Q.add !acc (Q.mul row.(k) b.(k).(j))
             done;
             !acc))
      a
  end
