(** Incremental round-over-round polytope engine.

    A persistent dual polytope representation — V-rep (canonical
    vertex list) and H-rep (primitive integer facet planes) kept in
    sync — structurally shared across protocol rounds through a
    process-wide arena and a per-handle warm-start ring. Round t+1's
    hulls over slightly-changed inputs restart beneath–beyond from the
    previous round's certified facet soup instead of rebuilding, and
    intersection vertices are enumerated by certified float-guided
    pair-line clipping instead of exact {% $O(m^3)$ %} triple solves.

    {b Exactness contract.} Every fast path is a {e candidate
    generator} whose output is certified against exact integer
    predicates ({!Numeric.Filter}) before being returned:

    - hulls: per-facet exact supporting-plane check, directed-edge
      pairing (closed oriented surface), and exact containment of all
      input points — together these force the primitive plane set to
      equal the exact path's canonical plane set;
    - intersections: exact membership of every emitted vertex plus a
      completeness certificate (every facet plane of the candidate
      hull must be an input constraint, which pins conv(W) = P).

    Certification failure falls back to the caller-supplied exact
    rebuild, so under both engine modes results are {e value
    identical} — the basis for the byte-identical-trace acceptance
    gate and the [Engine_equivalence] differential-fuzz oracle.

    Mode selection mirrors the [CHC_KERNEL] discipline:
    [CHC_POLY=rebuild|incremental], a process default, and a
    domain-local override ({!with_mode}). *)

module Q = Numeric.Q
module B = Numeric.Bigint

(** {1 Engine mode} *)

type mode =
  | Rebuild      (** exact from-scratch construction, the oracle *)
  | Incremental  (** certified float-guided engine with arena reuse *)

val to_string : mode -> string
val parse : string -> (mode, string) result

val env_default : unit -> mode
(** [CHC_POLY] when set and valid; warns on stderr and returns
    {!Incremental} otherwise. *)

val set_default : mode -> unit
val get_default : unit -> mode

val mode : unit -> mode
(** Domain-local override when installed, else the process default. *)

val incremental : unit -> bool

val with_mode : mode -> (unit -> 'a) -> 'a
(** Domain-local override for the dynamic extent of the callback;
    restores the previous override on exit (exceptions included). *)

(** {1 Persistent dual representation} *)

type soup
(** A certified oriented facet soup: triangle corner indices into the
    scaled vertex array plus the deduped primitive facet planes. *)

type dual = {
  pts : Vec.t list;      (** canonical (sorted, deduped) vertices *)
  spts : Vec.t list;     (** [pts] scaled by [scale] to integers *)
  facets : (Vec.t * Q.t) list;
      (** primitive integer planes [a·x <= b] in the scaled frame *)
  scale : B.t;
  shape : soup option;   (** warm-start structure when engine-built *)
}

val dual_3d : Vec.t list -> rebuild:(unit -> dual option) -> dual option
(** [dual_3d pts ~rebuild] builds the dual of conv(pts) (3-d,
    full-dimensional inputs). Under {!Rebuild} this is [rebuild ()]
    verbatim; under {!Incremental} the result is arena-cached, built
    by the certified float-guided hull (warm-started from the current
    handle's ring when a recent dual's corners embed in [pts]), and
    falls back to [rebuild] on certification failure. [None] means
    the input is lower-dimensional or otherwise out of scope — the
    caller keeps its exact handling. *)

(** {1 Delta operations} *)

val insert_point : dual -> Vec.t -> dual option
(** [insert_point d p] is the dual of conv(pts(d) ∪ {p}), warm-started
    from [d]'s facet soup. [None] when certification fails (rebuild
    through {!dual_3d}). *)

val merge : dual -> Vec.t list -> dual option
(** [merge d extra] is the dual of conv(pts(d) ∪ extra); beneath–beyond
    restarts from [d]'s conflict region, inserting only genuinely new
    points. [None] when certification fails. *)

val vertices_3d :
  ?prev:Vec.t list -> ineqs:(Vec.t * Q.t) list -> unit -> Vec.t list option
(** [vertices_3d ~ineqs ()] is the exact vertex set of
    [{x : a·x <= b}] for 3-d constraint systems, enumerated by
    pair-line clipping and certified complete; [None] when the
    certificate fails, the system is degenerate, or the engine is in
    {!Rebuild} mode — callers run the exact enumeration. [prev] seeds
    candidate vertices from a previous round's result (each admitted
    only through the exact membership test); when omitted, the current
    handle's last intersection result is used. *)

val intersect_delta :
  ?prev:Vec.t list -> ineqs:(Vec.t * Q.t) list -> unit -> Vec.t list option
(** {!vertices_3d} under its delta-operation name: intersection of a
    new constraint system reusing the previous round's vertex set as
    candidate seeds. *)

(** {1 Support-function cache} *)

val support : Vec.t list -> Vec.t -> eval:(unit -> Q.t * Vec.t) -> Q.t * Vec.t
(** [support verts dir ~eval] memoizes [eval ()] — the exact support
    value and argmax vertex of [verts] in direction [dir] — keyed on
    the canonical vertex list and direction, so Hausdorff/volume
    grading reuses evaluations round over round. Under {!Rebuild} this
    is [eval ()] verbatim. *)

(** {1 Engine handles}

    A handle carries the warm-start ring (most recent duals) and reuse
    telemetry. One handle is installed per protocol instance (and per
    [chc_serve] shard); a per-domain handle backs everything else. *)

type handle

val create_handle : unit -> handle
val with_handle : handle -> (unit -> 'a) -> 'a
(** Domain-local installation for the dynamic extent of the callback. *)

val handle_reuse : handle -> int
(** Arena hits + warm-started builds — the "engine reuse" figure
    surfaced in [chc_serve] metrics. *)

val handle_stats : handle -> (string * int) list
(** Labelled reuse telemetry: arena hits/misses, warm builds. *)

(** {1 Canonical-form helpers}

    Shared with {!Hullnd} so both paths produce literally identical
    plane sets. *)

val normalize_ineq : Vec.t * Q.t -> Vec.t * Q.t
val compare_constraint : Vec.t * Q.t -> Vec.t * Q.t -> int
val dedupe_constraints : (Vec.t * Q.t) list -> (Vec.t * Q.t) list
val dedupe_points : Vec.t list -> Vec.t list
val primitive_plane : Vec.t * Q.t -> Vec.t * Q.t
val cross3 : Vec.t -> Vec.t -> Vec.t

(** {1 Test hooks} *)

module Dev : sig
  val certify :
    Vec.t array -> (int * int * int) array -> (Vec.t * Q.t) list option
  (** Run the hull certification gauntlet on an arbitrary triangle
      soup over the given (scaled, integral) points: exact facet
      planes, directed-edge pairing, full containment. [None] when any
      check fails. *)

  val hull_3d : ?warm:Vec.t array * (int * int * int) array ->
    Vec.t array -> soup option

  val float_seed_exists : Vec.t array -> bool
end
