(** Exact-rational linear programming (two-phase primal simplex with
    Bland's rule, so termination is guaranteed).

    Sizes in this project are tiny — at most a few dozen variables and
    constraints — so a dense tableau over {!Numeric.Q} is both simple
    and fast enough. Exactness matters: convex-hull membership and
    polytope containment are *certified*, which the validity and
    optimality experiments rely on. *)

module Q = Numeric.Q

type solution =
  | Optimal of Q.t array * Q.t  (** primal solution and objective value *)
  | Unbounded
  | Infeasible

val maximize :
  objective:Q.t array ->
  eq:(Q.t array * Q.t) list ->
  nvars:int ->
  solution
(** [maximize ~objective ~eq ~nvars] solves
    [max objective . x] subject to [row . x = rhs] for each [(row, rhs)]
    in [eq] and [x >= 0]. Right-hand sides may have any sign. *)

val feasible_eq : eq:(Q.t array * Q.t) list -> nvars:int -> Q.t array option
(** A point of [{x >= 0 | row . x = rhs}] or [None] if empty. *)

val feasible_system :
  dim:int ->
  eqs:(Vec.t * Q.t) list ->
  ineqs:(Vec.t * Q.t) list ->
  Vec.t option
(** A point of [{x free | a.x = b for eqs, a.x <= b for ineqs}] in
    d-space, or [None] if the system is infeasible. Free variables are
    split internally. *)

val in_convex_hull : Vec.t list -> Vec.t -> bool
(** [in_convex_hull pts p]: is [p] a convex combination of [pts]?
    Exact. [false] on an empty point list. Answers are served from a
    bounded domain-safe memo table keyed on the whole instance (see
    {!Parallel.Memo}); [in_convex_hull_uncached] bypasses it. *)

val in_convex_hull_uncached : Vec.t list -> Vec.t -> bool
