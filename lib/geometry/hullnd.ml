module Q = Numeric.Q
module Combin = Numeric.Combin
module Filter = Numeric.Filter

type hrep = {
  dim : int;
  eqs : (Vec.t * Q.t) list;
  ineqs : (Vec.t * Q.t) list;
}

(* Canonical form of a constraint row: scaled so the first non-zero
   coefficient has absolute value 1. Positive scaling preserves the
   inequality direction. Shared with Poly_engine so the certified
   fast paths produce literally identical canonical plane sets. *)
let normalize_ineq = Poly_engine.normalize_ineq

(* Equalities additionally fix the sign of the leading coefficient. *)
let normalize_eq (a, b) =
  let d = Vec.dim a in
  let rec first i = if i = d then None
    else if Q.is_zero a.(i) then first (i + 1) else Some a.(i)
  in
  match first 0 with
  | None -> (a, b)
  | Some lead ->
    let s = Q.inv lead in
    (Vec.scale s a, Q.mul s b)

let dedupe_constraints = Poly_engine.dedupe_constraints
let dedupe_points = Poly_engine.dedupe_points

let standard_basis d = List.init d (fun i ->
    Array.init d (fun j -> if i = j then Q.one else Q.zero))

(* ------------------------------------------------------------------ *)
(* Incremental (beneath-beyond) hull, d = 3.

   Brute-force facet enumeration tries all C(m,3) candidate planes; on
   the Minkowski-averaging hot path m reaches the hundreds and the
   sweep dominates the whole protocol run. The incremental hull
   inserts points one at a time (in the canonical sorted order, so the
   construction is deterministic), maintaining a triangulated boundary:
   per insertion it scans the current triangles for visibility, which
   is near-linear in the hull size instead of cubic in m.

   Exactness notes (all arithmetic rational, no epsilons):
   - "visible" means strictly outside a triangle's plane; a point
     coplanar with a facet is treated as not visible, so a point that
     satisfies every current constraint is inside the current hull and
     is skipped soundly.
   - a horizon edge (u,v) separates a visible from a non-visible
     triangle; p strictly violates the visible plane while u, v lie on
     it, so p is never collinear with u, v and every cone triangle
     (p,u,v) is non-degenerate.
   - orientation is fixed against an interior point (the centroid of
     the seed tetrahedron): facet planes support every intermediate
     hull, which contains the tetrahedron, so the centroid is strictly
     on the inner side of every plane ever produced.
   The triangles triangulate each facet, possibly several triangles
   per coplanar facet; normalizing and deduplicating their planes
   yields exactly the facet-plane set the brute-force sweep produces
   (any supporting plane through 3 affinely independent input points
   meets the hull in a 2-face). Equality with the brute-force output
   is property-tested in test/test_hullnd.ml. *)

module B = Numeric.Bigint

module I = Numeric.Interval

(* Static float screen for the beneath-beyond visibility test. An
   integer plane (a, b) and an integer point p are imaged as
   mid-mantissas at a per-object common exponent: a_i ≈ snf_i · 2^sne,
   b ≈ sbf · 2^sbe, p_i ≈ pf_i · 2^pe. The sign of a·p − b is then the
   sign of Σ snf_i·pf_i − sbf·2^(sbe−sne−pe), computable in plain
   doubles — provided the answer clears a conservative relative error
   bound; otherwise the exact ladder decides. The screen is built only
   for denominator-1 (grid-scaled) values with bounded per-coordinate
   exponent spread, so no imaged magnitude drops below ~2^-400 and
   every intermediate stays far from the double range edges. *)
type scr = { snf : float array; sne : int; sbf : float; sbe : int }

type tri = {
  ta : Vec.t;
  tb : Q.t;
  corners : Vec.t * Vec.t * Vec.t;
  scr : scr option;
}

(* Rounding budget: ≤ ~10 half-ulp contributions (input mids, three
   products, two sums, the ldexp'd offset, the final subtraction), all
   relative to the magnitude sum — 2^-44 leaves a ~26x safety factor
   over the worst-case 10·2^-52. *)
let screen_eps = Float.ldexp 1.0 (-44)

(* Common-exponent float image of an integer vector; [None] when a
   denominator is non-trivial or the exponent spread would push an
   imaged coordinate into unsafe ldexp territory. *)
let float_image (v : Vec.t) =
  let d = Array.length v in
  let ms = Array.make d 0.0 and es = Array.make d 0 in
  let emax = ref min_int and ok = ref true in
  for i = 0 to d - 1 do
    let q = v.(i) in
    if not (B.equal q.Q.den B.one) then ok := false
    else begin
      let iv, e = B.to_scaled_enclosure q.Q.num in
      let m = 0.5 *. (iv.I.lo +. iv.I.hi) in
      ms.(i) <- m;
      es.(i) <- e;
      if m <> 0.0 && e > !emax then emax := e
    end
  done;
  if not !ok then None
  else if !emax = min_int then Some (ms, 0) (* zero vector *)
  else begin
    for i = 0 to d - 1 do
      if ms.(i) <> 0.0 then begin
        let k = es.(i) - !emax in
        if k < -400 then ok := false else ms.(i) <- Float.ldexp ms.(i) k
      end
    done;
    if !ok then Some (ms, !emax) else None
  end

let scr_of_plane (a : Vec.t) (b : Q.t) =
  match float_image a with
  | None -> None
  | Some (snf, sne) ->
    if not (B.equal b.Q.den B.one) then None
    else begin
      let iv, sbe = B.to_scaled_enclosure b.Q.num in
      Some { snf; sne; sbf = 0.5 *. (iv.I.lo +. iv.I.hi); sbe }
    end

(* Visible := ta·p − tb > 0. Screened when both float images exist and
   the magnitude clears the error bound; exact otherwise. Infinities
   or NaNs from degenerate scalings fail the clearance comparison and
   fall through to the exact ladder. *)
let tri_visible t (p : Vec.t) pscr =
  match t.scr, pscr with
  | Some s, Some (pf, pe) ->
    let s0 = s.snf.(0) *. pf.(0) in
    let s1 = s.snf.(1) *. pf.(1) in
    let s2 = s.snf.(2) *. pf.(2) in
    let delta = s.sbe - s.sne - pe in
    if delta > 900 || delta < -1000 then
      Filter.sign_of_dot_minus t.ta p t.tb > 0
    else begin
      let bs = Float.ldexp s.sbf delta in
      let d = s0 +. s1 +. s2 -. bs in
      let m = Float.abs s0 +. Float.abs s1 +. Float.abs s2 +. Float.abs bs in
      if Float.abs d > m *. screen_eps then d > 0.0
      else Filter.sign_of_dot_minus t.ta p t.tb > 0
    end
  | _ -> Filter.sign_of_dot_minus t.ta p t.tb > 0

let cross3 = Poly_engine.cross3

(* The construction runs on integer points: hull structure is
   invariant under the uniform positive scaling x ↦ L·x, so scaling by
   the lcm L of every coordinate denominator up front (through
   Numeric.Grid, which shares the scan across a protocol round) turns
   all the inner-loop arithmetic (cross products, visibility dot
   products) into gcd-free integer Q operations. Facets map back as
   (a, b) ↦ (a, b/L). *)

(* Plane through p,q,r oriented so the interior point [c4]/4 satisfies
   a·x < b; [None] if p,q,r are collinear or the interior point lies
   on the plane. [c4] is 4× the interior point, keeping the
   orientation test in integers. *)
let oriented_plane ~c4 p q r =
  let a = cross3 (Vec.sub q p) (Vec.sub r p) in
  if Array.for_all Q.is_zero a then None
  else begin
    let b = Vec.dot a p in
    let mk a b = { ta = a; tb = b; corners = (p, q, r); scr = scr_of_plane a b } in
    match Filter.sign_of_dot_minus a c4 (Q.mul_int b 4) with
    | s when s < 0 -> Some (mk a b)
    | s when s > 0 -> Some (mk (Vec.neg a) (Q.neg b))
    | _ -> None
  end

(* Undirected-edge key, canonically ordered. *)
let edge u v = if Vec.compare u v <= 0 then (u, v) else (v, u)

let edge_compare (u1, v1) (u2, v2) =
  let c = Vec.compare u1 u2 in
  if c <> 0 then c else Vec.compare v1 v2

let tri_edges t =
  let (u, v, w) = t.corners in
  [ edge u v; edge v w; edge u w ]

(* Edges used by exactly one triangle of the visible set. The soup
   invariant (every edge borders exactly two triangles) means an edge
   can appear at most twice; a third occurrence signals a corrupted
   surface and aborts to the brute-force path. *)
let horizon_edges visible =
  let all = List.sort edge_compare (List.concat_map tri_edges visible) in
  let rec go = function
    | [] -> []
    | [ e ] -> [ e ]
    | e1 :: (e2 :: rest as tail) ->
      if edge_compare e1 e2 = 0 then begin
        (match rest with
         | e3 :: _ when edge_compare e2 e3 = 0 -> raise Exit
         | _ -> ());
        go rest
      end
      else e1 :: go tail
  in
  go all

(* The insertion step is only sound when the horizon is one simple
   closed cycle (that is what keeps the triangle soup a closed
   2-manifold inductively). Degenerate configurations that break this
   are rare and bail out to brute force via [Exit]. *)
let check_simple_cycle edges =
  match edges with
  | [] -> raise Exit
  | (start, _) :: _ ->
    let endpoints =
      List.sort Vec.compare (List.concat_map (fun (u, v) -> [ u; v ]) edges)
    in
    (* Every endpoint must have degree exactly 2. *)
    let rec degrees = function
      | [] -> ()
      | [ _ ] -> raise Exit
      | a :: b :: rest ->
        if Vec.equal a b then begin
          (match rest with
           | c :: _ when Vec.equal b c -> raise Exit
           | _ -> ());
          degrees rest
        end
        else raise Exit
    in
    degrees endpoints;
    (* Degree-2 everywhere means disjoint cycles; demand connectivity. *)
    let nvertices = List.length edges in (* |V| = |E| in a 2-regular graph *)
    let neighbours x =
      List.concat_map
        (fun (u, v) ->
           if Vec.equal u x then [ v ]
           else if Vec.equal v x then [ u ]
           else [])
        edges
    in
    let rec bfs visited = function
      | [] -> visited
      | x :: rest ->
        if List.exists (Vec.equal x) visited then bfs visited rest
        else bfs (x :: visited) (neighbours x @ rest)
    in
    if List.length (bfs [] [ start ]) <> nvertices then raise Exit

(* Canonical integer representative of an (integer) plane: divide by
   the content gcd. Positive scaling, so the inequality is unchanged;
   proportional planes collapse to equal values. *)
let primitive_plane = Poly_engine.primitive_plane

(* [incremental_planes_3d pts] for deduped, sorted [pts]: the
   beneath-beyond construction proper, on integer-scaled points.
   Returns [(scaled_pts, facets, l)] — the deduped primitive integer
   facet planes, valid for the scaled points — or [None] when the
   point set is not full-dimensional in 3-space (no seed tetrahedron
   exists) or a degenerate horizon aborts the construction; callers
   fall back to the brute-force sweep. *)
let incremental_planes_3d pts0 =
  (* Uniform positive scaling preserves the lexicographic point order,
     so the scaled list is still deduped and sorted. The round's grid
     (when one is installed — Numeric.Grid.with_round) supplies the
     lcm and per-denominator cofactors, so repeated constructions in a
     round share one denominator scan and scale by plain
     multiplication. *)
  let pts, l =
    Obs.Prof.with_span "hullnd.scale" (fun () ->
        Numeric.Grid.scale_points pts0)
  in
  let find_seed = function
    | [] -> None
    | p0 :: rest0 ->
      (match List.find_opt (fun p -> not (Vec.equal p p0)) rest0 with
       | None -> None
       | Some p1 ->
         let d1 = Vec.sub p1 p0 in
         (match
            List.find_opt
              (fun p -> not (Array.for_all Q.is_zero (cross3 d1 (Vec.sub p p0))))
              rest0
          with
          | None -> None
          | Some p2 ->
            let nrm = cross3 d1 (Vec.sub p2 p0) in
            let b0 = Vec.dot nrm p0 in
            (match
               List.find_opt
                 (fun p -> Filter.sign_of_dot_minus nrm p b0 <> 0)
                 rest0
             with
             | None -> None
             | Some p3 -> Some (p0, p1, p2, p3))))
  in
  match find_seed pts with
  | None -> None
  | Some (p0, p1, p2, p3) ->
    let c4 = Vec.add (Vec.add p0 p1) (Vec.add p2 p3) in
    let face p q r =
      match oriented_plane ~c4 p q r with
      | Some t -> t
      | None -> assert false (* seed tetrahedron is non-degenerate *)
    in
    let seed = [ face p0 p1 p2; face p0 p1 p3; face p0 p2 p3; face p1 p2 p3 ] in
    let rest =
      List.filter
        (fun p ->
           not (Vec.equal p p0 || Vec.equal p p1 || Vec.equal p p2
                || Vec.equal p p3))
        pts
    in
    let insert tris p =
      let pscr = float_image p in
      let visible, hidden =
        List.partition (fun t -> tri_visible t p pscr) tris
      in
      if visible = [] then tris
      else begin
        let horizon = horizon_edges visible in
        check_simple_cycle horizon;
        let cone =
          List.map
            (fun (u, v) ->
               match oriented_plane ~c4 p u v with
               | Some t -> t
               | None -> raise Exit (* unreachable; see module comment *))
            horizon
        in
        hidden @ cone
      end
    in
    (try
       let tris =
         Obs.Prof.with_span "hullnd.insert_fold" (fun () ->
             List.fold_left insert seed rest)
       in
       (* Collapse proportional duplicate planes (coplanar triangle
          fans) to their primitive representative before anything
          downstream touches them: the verify pass below and every
          caller's per-point scan are linear in the plane count, and
          the dedupe factor on fused d=3 hulls is about 3x. *)
       let planes =
         Obs.Prof.with_span "hullnd.facet_dedupe" (fun () ->
             dedupe_constraints
               (List.map (fun t -> primitive_plane (t.ta, t.tb)) tris))
       in
       (* Belt and braces: a corrupted hull would cut off an input
          point; verify every point against every facet (linear in the
          output, negligible next to the construction). Deduping first
          is sound — primitive scaling preserves each halfspace. *)
       if
         Obs.Prof.with_span "hullnd.verify" (fun () ->
         List.for_all
           (fun p ->
              List.for_all (fun (a, b) -> Filter.sign_of_dot_minus a p b <= 0)
                planes)
           pts)
       then Some (pts, planes, l)
       else None
     with Exit -> None)

(* The engine front door for 3-d hulls: Poly_engine decides per the
   CHC_POLY mode whether to run the certified float-guided build (with
   arena caching and warm-start reuse) or this module's exact
   beneath-beyond, and falls back to the exact path whenever
   certification fails. Either way the resulting plane set is the
   canonical one, so downstream consumers cannot tell the modes
   apart. *)
let dual_3d pts =
  Poly_engine.dual_3d pts ~rebuild:(fun () ->
      match incremental_planes_3d pts with
      | None -> None
      | Some (spts, planes, l) ->
        Some
          { Poly_engine.pts; spts; facets = planes; scale = l; shape = None })

let facets_incremental_3d pts =
  Obs.Prof.with_span "hullnd.incremental_3d" @@ fun () ->
  let pts = dedupe_points pts in
  match dual_3d pts with
  | None -> None
  | Some d ->
    (* Planes hold for the L-scaled points; b/L maps them back. *)
    let linv = Q.inv (Q.of_bigint d.Poly_engine.scale) in
    Some
      (dedupe_constraints
         (List.map
            (fun (a, b) -> normalize_ineq (a, Q.mul b linv))
            d.Poly_engine.facets))

(* Facets of a FULL-DIMENSIONAL point set in k-space. k = 3 runs the
   incremental hull above; other dimensions (and the unexpected
   degenerate 3-d corner) brute-force over k-subsets defining
   candidate hyperplanes, fanned out over the domain pool. *)
let enumerate_facets_brute ~dim:k pts =
  Obs.Prof.with_span "hullnd.brute_facets" @@ fun () ->
  let pts = dedupe_points pts in
  let candidates = Combin.subsets_of_size k pts in
  let facet_of subset =
    match subset with
    | [] -> []
    | s0 :: rest ->
      let rows = Array.of_list (List.map (fun s -> Vec.sub s s0) rest) in
      (match Linsys.nullspace rows with
       | [a] ->
         let b = Vec.dot a s0 in
         let signs = List.map (fun p -> Filter.sign_of_dot_minus a p b) pts in
         let has_pos = List.exists (fun s -> s > 0) signs in
         let has_neg = List.exists (fun s -> s < 0) signs in
         if has_pos && has_neg then []
         else if has_pos then [normalize_ineq (Vec.neg a, Q.neg b)]
         else [normalize_ineq (a, b)]
       | _ -> [] (* affinely dependent subset, or not a hyperplane *))
  in
  dedupe_constraints
    (Parallel.Pool.parallel_concat_map (Parallel.Pool.global ())
       facet_of candidates)

let enumerate_facets ~dim:k pts =
  let pts = dedupe_points pts in
  if k = 1 then begin
    let xs = List.map (fun p -> p.(0)) pts in
    let lo = List.fold_left Q.min (List.hd xs) xs in
    let hi = List.fold_left Q.max (List.hd xs) xs in
    [ (Vec.make [Q.one], hi); (Vec.make [Q.minus_one], Q.neg lo) ]
  end
  else if k = 3 then
    match facets_incremental_3d pts with
    | Some facets -> facets
    | None -> enumerate_facets_brute ~dim:k pts
  else enumerate_facets_brute ~dim:k pts

let of_points ~dim pts =
  match dedupe_points pts with
  | [] -> invalid_arg "Hullnd.of_points: empty point set"
  | [p0] ->
    let eqs =
      List.map (fun e -> normalize_eq (e, Vec.dot e p0)) (standard_basis dim)
    in
    { dim; eqs; ineqs = [] }
  | (p0 :: _) as pts ->
    let dirs = List.filter_map
        (fun p -> let v = Vec.sub p p0 in
          if Vec.equal v (Vec.zero dim) then None else Some v)
        pts
    in
    let idx = Linsys.independent_rows dirs in
    let basis = List.map (List.nth dirs) idx in
    let k = List.length basis in
    assert (k >= 1);
    let normals =
      if k = dim then []
      else Linsys.nullspace (Array.of_list basis)
    in
    let eqs = List.map (fun n -> normalize_eq (n, Vec.dot n p0)) normals in
    if k = dim then
      { dim; eqs = []; ineqs = enumerate_facets ~dim pts }
    else begin
      (* Work in subspace coordinates x = p0 + B y, B the d×k matrix
         with the basis directions as columns. *)
      let bmat = Array.init dim (fun i ->
          Array.of_list (List.map (fun b -> b.(i)) basis))
      in
      let to_y p =
        match Linsys.solve_any bmat (Vec.sub p p0) with
        | Some y -> y
        | None -> assert false (* p lies in the affine hull by construction *)
      in
      let ypts = List.map to_y pts in
      let facets_y = enumerate_facets ~dim:k ypts in
      (* Lift a subspace inequality a·y <= b back to ambient space:
         pick k independent rows R of B, so y = B_R⁻¹ (x_R − p0_R);
         then w solving B_Rᵀ w = a gives the ambient functional. *)
      let brows = Array.to_list bmat in
      let rsel = Linsys.independent_rows brows in
      assert (List.length rsel = k);
      let bsub = Array.of_list (List.map (fun i -> bmat.(i)) rsel) in
      let bsub_t = Array.init k (fun i -> Array.init k (fun j -> bsub.(j).(i))) in
      let lift (a, b) =
        match Linsys.solve bsub_t a with
        | None -> assert false (* B_Rᵀ is invertible *)
        | Some w ->
          let n = Vec.zero dim in
          let n = Array.copy n in
          List.iteri (fun i r -> n.(r) <- w.(i)) rsel;
          let offset =
            List.fold_left
              (fun acc (wi, r) -> Q.add acc (Q.mul wi p0.(r)))
              b
              (List.combine (Array.to_list w) rsel)
          in
          normalize_ineq (n, offset)
      in
      { dim; eqs; ineqs = List.map lift facets_y }
    end

let combine hreps =
  match hreps with
  | [] -> invalid_arg "Hullnd.combine: empty list"
  | { dim; _ } :: _ ->
    List.iter (fun h -> if h.dim <> dim then
                  invalid_arg "Hullnd.combine: dimension mismatch") hreps;
    { dim;
      eqs = dedupe_constraints (List.concat_map (fun h -> h.eqs) hreps);
      ineqs = dedupe_constraints (List.concat_map (fun h -> h.ineqs) hreps) }

let satisfies_ineqs ineqs x =
  List.for_all (fun (a, b) -> Filter.sign_of_dot_minus a x b <= 0) ineqs

let satisfies_eqs eqs x =
  List.for_all (fun (a, b) -> Filter.sign_of_dot_minus a x b = 0) eqs

let mem_hrep h x = satisfies_eqs h.eqs x && satisfies_ineqs h.ineqs x

let vertices h =
  let d = h.dim in
  let eq_rows = List.map fst h.eqs and eq_rhs = List.map snd h.eqs in
  let r = if h.eqs = [] then 0 else Linsys.rank (Array.of_list eq_rows) in
  let need = d - r in
  let candidates =
    if need = 0 then begin
      match Linsys.solve_unique (Array.of_list eq_rows) (Array.of_list eq_rhs) with
      | Some x -> [x]
      | None -> []
    end
    else
      Combin.subsets_of_size need h.ineqs
      |> Parallel.Pool.parallel_filter_map (Parallel.Pool.global ())
        (fun subset ->
           let rows = Array.of_list (eq_rows @ List.map fst subset) in
           let rhs = Array.of_list (eq_rhs @ List.map snd subset) in
           Linsys.solve_unique rows rhs)
  in
  dedupe_points
    (List.filter
       (fun x -> satisfies_eqs h.eqs x && satisfies_ineqs h.ineqs x)
       candidates)

(* Support directions for the interior-point pre-filter: the full
   {-1,0,1}^d grid in low dimension, axes and diagonals otherwise. *)
let filter_directions d =
  if d <= 3 then begin
    let rec grid k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun tail -> List.map (fun c -> c :: tail) [-1; 0; 1])
          (grid (k - 1))
    in
    grid d
    |> List.filter (fun v -> List.exists (fun c -> c <> 0) v)
    |> List.map Vec.of_ints
  end
  else begin
    let axis i s = Array.init d (fun j -> if i = j then Q.of_int s else Q.zero) in
    let axes = List.concat_map (fun i -> [axis i 1; axis i (-1)]) (List.init d Fun.id) in
    let ones s = Array.make d (Q.of_int s) in
    ones 1 :: ones (-1) :: axes
  end

(* Candidate points strictly inside the hull of the support "core"
   (the per-direction maximizers) cannot be extreme; discarding them
   first turns the quadratic LP-pruning pass into one over a small
   boundary set. Soundness: a point in the relative interior of
   conv(core) is a convex combination of other points of the input. *)
let support_filter ~dim pts =
  match pts with
  | [] | [_] | [_; _] -> pts
  | p0 :: _ ->
    let argmax dir =
      List.fold_left
        (fun best p -> if Q.gt (Vec.dot dir p) (Vec.dot dir best) then p else best)
        p0 pts
    in
    let core = dedupe_points (List.map argmax (filter_directions dim)) in
    if List.length core < 2 then pts
    else begin
      let h = of_points ~dim core in
      let strictly_inside p =
        satisfies_eqs h.eqs p
        && List.for_all (fun (a, b) -> Filter.sign_of_dot_minus a p b < 0)
             h.ineqs
      in
      List.filter (fun p -> not (strictly_inside p)) pts
    end

(* LP-based extreme-point pruning: one membership LP per candidate.
   When the domain pool is sequential, confirmed-interior points are
   dropped from the column set of subsequent tests — sound, because a
   dropped point lies in the hull of the remaining ones — which
   shrinks the tableaus as the scan proceeds. With a multi-domain pool
   the tests run independently against the full complement (same
   result: a point is extreme iff it is outside the hull of all the
   others), fanned out across domains. *)
let extreme_points_lp pts =
  let pts = dedupe_points pts in
  match pts with
  | [] | [_] -> pts
  | p0 :: _ ->
    let dim = Vec.dim p0 in
    let pts = support_filter ~dim pts in
    let pool = Parallel.Pool.global () in
    if Parallel.Pool.size pool <= 1 then begin
      let rec prune confirmed = function
        | [] -> List.rev confirmed
        | p :: todo ->
          let others = List.rev_append confirmed todo in
          if Lp.in_convex_hull others p then prune confirmed todo
          else prune (p :: confirmed) todo
      in
      dedupe_points (prune [] pts)
    end
    else begin
      let arr = Array.of_list pts in
      let survivors =
        Parallel.Pool.parallel_filter_map pool
          (fun i ->
             let p = arr.(i) in
             let others = List.filteri (fun j _ -> j <> i) pts in
             if Lp.in_convex_hull others p then None else Some p)
          (List.init (Array.length arr) Fun.id)
      in
      dedupe_points survivors
    end

(* Vertex extraction against a known facet list: a point of the input
   is a vertex iff its tight constraints span the ambient space.
   Replaces the per-point LP pass entirely on the d = 3 hot path. *)
let is_vertex_by_facets ~dim facets p =
  let tight =
    List.filter_map
      (fun (a, b) -> if Filter.sign_of_dot_minus a p b = 0 then Some a else None)
      facets
  in
  List.length tight >= dim && Linsys.rank (Array.of_list tight) = dim

(* Keyed on the deduped point list. Vertex extraction repeats verbatim
   on the grading paths (every Hausdorff projection and facet scan of
   the same polytope re-asks for its extreme points), so the table has
   the same hit profile as Polytope's hull/minkowski tables. *)
let extreme_memo : (Vec.t list, Vec.t list) Parallel.Memo.t =
  Parallel.Memo.create ~name:"extreme-points" ~max_size:4096
    ~hash:(fun vs ->
        List.fold_left
          (fun acc v -> ((acc * 1000003) + Vec.hash v) land max_int)
          17 vs)
    ~equal:(fun a b ->
        List.compare_lengths a b = 0 && List.for_all2 Vec.equal a b)
    ()

let extreme_points pts =
  let pts = Obs.Prof.with_span "hullnd.dedupe" (fun () -> dedupe_points pts) in
  match pts with
  | [] | [_] -> pts
  | p0 :: _ ->
    Parallel.Memo.find_or_add extreme_memo pts (fun () ->
        if Vec.dim p0 = 3 then
          match dual_3d pts with
          | None -> extreme_points_lp pts
          | Some d ->
            (* Tight tests run against the integer-scaled copies;
               scaling preserves the point order, so the i-th scaled
               point answers for the i-th original. The facets arrive
               already collapsed to primitive representatives. *)
            Obs.Prof.with_span "hullnd.tight_scan" (fun () ->
            List.combine d.Poly_engine.pts d.Poly_engine.spts
            |> List.filter (fun (_, sp) ->
                is_vertex_by_facets ~dim:3 d.Poly_engine.facets sp)
            |> List.map fst)
        else extreme_points_lp pts)

(* Testing hook for the static visibility screen: [Some v] when the
   screen decides (v = "a·p - b > 0"), [None] when it falls through to
   the exact ladder. *)
module Dev = struct
  let screen a b p =
    match scr_of_plane a b, float_image p with
    | Some s, Some (pf, pe) ->
      let s0 = s.snf.(0) *. pf.(0) in
      let s1 = s.snf.(1) *. pf.(1) in
      let s2 = s.snf.(2) *. pf.(2) in
      let delta = s.sbe - s.sne - pe in
      if delta > 900 || delta < -1000 then None
      else begin
        let bs = Float.ldexp s.sbf delta in
        let d = s0 +. s1 +. s2 -. bs in
        let m = Float.abs s0 +. Float.abs s1 +. Float.abs s2 +. Float.abs bs in
        if Float.abs d > m *. screen_eps then Some (d > 0.0) else None
      end
    | _ -> None
end
