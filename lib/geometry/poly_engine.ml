(* Float-guided, exactly-certified polytope engine.

   The exact d=3 paths in Hullnd spend almost all their time on exact
   predicates over grid-scaled integer coordinates: a protocol round's
   lcm grid produces ~355-bit coordinates, so every cross product and
   visibility dot in the beneath-beyond construction is a multi-limb
   bigint computation (microseconds each), and the brute intersection
   path solves an exact 3x3 system per constraint triple. The hull
   *structure*, however, is purely combinatorial — it is determined by
   predicate signs — so this engine discovers the combinatorics in
   plain doubles and then certifies the result with a handful of exact
   checks whose cost is linear in the output:

   - hull: a float beneath-beyond pass produces an index-based
     triangle soup; certification computes the exact plane of every
     soup triangle (oriented against an exact interior point), checks
     that the directed-edge multiset pairs up (each directed edge
     exactly once, its reverse exactly once — a closed oriented
     surface), and verifies that every input point lies weakly inside
     every plane. Soundness: a verified supporting plane through three
     affinely independent input points is a facet plane, and a closed
     consistently-outward-oriented triangle soup contained in the hull
     boundary has positive mapping degree, hence covers every facet —
     so the deduped primitive plane set is exactly the facet-plane set
     the exact construction produces.

   - intersection: candidate vertices come from clipping each
     constraint-pair line against the remaining constraints in floats;
     each candidate is then solved exactly from its defining triple
     and kept only if it satisfies every constraint exactly. The hull
     of the surviving points is built by the engine, and a
     completeness certificate requires every facet plane of that hull
     to match (after canonical normalization) one of the input
     constraints: then conv(W) ⊆ P by exact membership and
     P ⊆ conv(W) because P is contained in the matched constraints —
     so the result equals P exactly, no matter what the floats missed.

   Any certification failure falls back to the caller's exact path,
   which stays the differential-fuzz oracle (CHC_POLY=rebuild). The
   engine is therefore observationally identical to the rebuild path:
   executor reports and traces are byte-for-byte the same under either
   mode.

   Persistence: a bounded arena (a Parallel.Memo table, so it obeys
   the same bypass discipline as every other kernel cache) maps
   canonical vertex lists to their dual representation — scaled
   points, facet planes, grid scale, and the certified triangle soup.
   A per-handle ring of recent duals seeds warm starts: when a new
   point set contains all corners of a recent soup, beneath-beyond
   restarts from that soup (the previous conflict region) and inserts
   only the new points. Handles are carried in protocol state
   (Chc.Instance) and per shard (Serve.Server); WAL replay simply
   recomputes — every cached value is a certified exact result, so
   replay reconstructs the same polytopes whether or not the cache is
   warm. *)

module Q = Numeric.Q
module B = Numeric.Bigint
module Filter = Numeric.Filter

(* ------------------------------------------------------------------ *)
(* Engine selection: CHC_POLY, mirroring the CHC_KERNEL discipline
   (process default from the environment with warn-and-clamp, CLI
   override via [set_default], domain-local override via
   [with_mode]). *)

type mode = Rebuild | Incremental

let to_string = function
  | Rebuild -> "rebuild"
  | Incremental -> "incremental"

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "rebuild" -> Ok Rebuild
  | "incremental" -> Ok Incremental
  | other ->
    Error
      (Printf.sprintf
         "unknown engine %S (expected \"rebuild\" or \"incremental\")" other)

let env_default () =
  match Sys.getenv_opt "CHC_POLY" with
  | None | Some "" -> Incremental
  | Some s ->
    (match parse s with
     | Ok m -> m
     | Error msg ->
       Printf.eprintf
         "chc: ignoring CHC_POLY: %s; using \"incremental\"\n%!" msg;
       Incremental)

let default = Atomic.make (env_default ())

let set_default m = Atomic.set default m
let get_default () = Atomic.get default

let override_key : mode option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let mode () =
  match !(Domain.DLS.get override_key) with
  | Some m -> m
  | None -> Atomic.get default

let incremental () = mode () = Incremental

let with_mode m f =
  let slot = Domain.DLS.get override_key in
  let saved = !slot in
  slot := Some m;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* ------------------------------------------------------------------ *)
(* Engine metrics (exposed via chc_serve /metrics and every other
   exposition surface). *)

let hull_float_c =
  Obs.Metrics.counter "chc_poly_hull_total"
    ~help:"3-d hull builds by construction path (float-guided cold, \
           warm-started from a cached soup, or exact fallback)"
    ~labels:[ ("path", "float") ]

let hull_warm_c =
  Obs.Metrics.counter "chc_poly_hull_total" ~labels:[ ("path", "warm") ]

let hull_exact_c =
  Obs.Metrics.counter "chc_poly_hull_total" ~labels:[ ("path", "exact") ]

let arena_hit_c =
  Obs.Metrics.counter "chc_poly_arena_total"
    ~help:"persistent dual-representation arena lookups"
    ~labels:[ ("result", "hit") ]

let arena_miss_c =
  Obs.Metrics.counter "chc_poly_arena_total" ~labels:[ ("result", "miss") ]

let fallback_hull_c =
  Obs.Metrics.counter "chc_poly_fallback_total"
    ~help:"float-guided constructions rejected by exact certification"
    ~labels:[ ("stage", "hull") ]

let fallback_isect_c =
  Obs.Metrics.counter "chc_poly_fallback_total"
    ~labels:[ ("stage", "intersect") ]

let isect_fast_c =
  Obs.Metrics.counter "chc_poly_intersect_total"
    ~help:"intersection vertex enumerations answered by the \
           float-guided path"
    ~labels:[ ("path", "float") ]

let support_hit_c =
  Obs.Metrics.counter "chc_poly_support_total"
    ~help:"support-function cache lookups"
    ~labels:[ ("result", "hit") ]

let support_miss_c =
  Obs.Metrics.counter "chc_poly_support_total" ~labels:[ ("result", "miss") ]

(* ------------------------------------------------------------------ *)
(* Canonical constraint/point helpers. These are the engine's (and,
   via aliases, Hullnd's) single source of truth, so the certified
   plane sets are canonicalized exactly the way the rebuild path
   canonicalizes its own. *)

let normalize_ineq (a, b) =
  let d = Vec.dim a in
  let rec first i =
    if i = d then None
    else if Q.is_zero a.(i) then first (i + 1)
    else Some a.(i)
  in
  match first 0 with
  | None -> (a, b)
  | Some lead ->
    let s = Q.inv (Q.abs lead) in
    (Vec.scale s a, Q.mul s b)

let compare_constraint (a1, b1) (a2, b2) =
  let c = Vec.compare a1 a2 in
  if c <> 0 then c else Q.compare b1 b2

let dedupe_constraints cs =
  let sorted = List.sort compare_constraint cs in
  let rec go = function
    | x :: (y :: _ as rest) ->
      if compare_constraint x y = 0 then go rest else x :: go rest
    | short -> short
  in
  go sorted

let dedupe_points pts =
  let sorted = List.sort Vec.compare pts in
  let rec go = function
    | x :: (y :: _ as rest) -> if Vec.equal x y then go rest else x :: go rest
    | short -> short
  in
  go sorted

let cross3 u v =
  [| Q.sub (Q.mul u.(1) v.(2)) (Q.mul u.(2) v.(1));
     Q.sub (Q.mul u.(2) v.(0)) (Q.mul u.(0) v.(2));
     Q.sub (Q.mul u.(0) v.(1)) (Q.mul u.(1) v.(0)) |]

let primitive_plane (a, b) =
  let g =
    Array.fold_left (fun acc (q : Q.t) -> B.gcd acc q.Q.num) (B.abs b.Q.num) a
  in
  if B.is_zero g || B.equal g B.one then (a, b)
  else
    ( Array.map (fun (q : Q.t) -> Q.of_bigint (B.div q.Q.num g)) a,
      Q.of_bigint (B.div b.Q.num g) )

let verts_hash vs =
  List.fold_left
    (fun acc v -> ((acc * 1000003) + Vec.hash v) land max_int)
    17 vs

let verts_equal a b =
  List.compare_lengths a b = 0 && List.for_all2 Vec.equal a b

(* ------------------------------------------------------------------ *)
(* Exact plane through p, q, r oriented so the interior point [c4]/4
   satisfies a·x < b; reports whether the (p,q,r) corner order reads
   counter-clockwise from outside ([`Keep]) or needs a swap ([`Flip]).
   [None]: degenerate triangle, or [c4] on the plane. *)

let exact_plane ~c4 p q r =
  let a = cross3 (Vec.sub q p) (Vec.sub r p) in
  if Array.for_all Q.is_zero a then None
  else begin
    let b = Vec.dot a p in
    match Filter.sign_of_dot_minus a c4 (Q.mul_int b 4) with
    | s when s < 0 -> Some ((a, b), `Keep)
    | s when s > 0 -> Some ((Vec.neg a, Q.neg b), `Flip)
    | _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Float image of a point set: per-coordinate [Q.to_float], re-centered
   on the float centroid and rescaled by a power of two so coordinates
   sit near unit magnitude. Both maps are affine with positive
   uniform scaling, so hull combinatorics are unchanged, and products
   of up to three imaged coordinates stay far from the double range
   edges (the grid-scaled inputs reach ~2^400, whose triple products
   would otherwise overflow). *)

let float_points (pts : Vec.t array) =
  let n = Array.length pts in
  if n = 0 then None
  else begin
    let fp = Array.map (fun p -> Array.map Q.to_float p) pts in
    let d = Array.length fp.(0) in
    let c = Array.make d 0.0 in
    Array.iter (fun p -> for i = 0 to d - 1 do c.(i) <- c.(i) +. p.(i) done) fp;
    for i = 0 to d - 1 do c.(i) <- c.(i) /. float_of_int n done;
    let m = ref 0.0 in
    Array.iter
      (fun p ->
         for i = 0 to d - 1 do
           p.(i) <- p.(i) -. c.(i);
           let a = Float.abs p.(i) in
           if a > !m then m := a
         done)
      fp;
    if not (Float.is_finite !m) then None
    else if !m = 0.0 then Some fp
    else begin
      let _, e = Float.frexp !m in
      let s = Float.ldexp 1.0 (-e) in
      Array.iter (fun p -> for i = 0 to d - 1 do p.(i) <- p.(i) *. s done) fp;
      Some fp
    end
  end

(* ------------------------------------------------------------------ *)
(* The float beneath-beyond hull. Triangles carry their corner indices
   in consistently outward-oriented (counter-clockwise from outside)
   order, a float plane for the visibility screen, and a static
   per-triangle error bound [terr] on the float normal (the corner
   floats are centered and scaled to unit magnitude, so an absolute
   bound suffices). A visibility test whose margin does not clear the
   bound is answered "not visible" WITHOUT an exact tie-break: the
   overwhelmingly common uncertain case is a point exactly on the
   facet plane, where not-strictly-visible is the correct answer, and
   the rare barely-strictly-outside misclassification merely corrupts
   the candidate surface — the exact certification pass rejects it and
   the caller falls back to the exact build. Only sliver triangles,
   whose float normal is dominated by rounding noise ([terr] =
   infinity), carry an eagerly computed exact plane and take the exact
   route on every test. *)

type ftri = {
  i0 : int;
  i1 : int;
  i2 : int;
  fn : float array;
  fo : float;
  terr : float;
  mutable xp : (Vec.t * Q.t) option;
}

type soup = {
  tris : (int * int * int) array;
  planes : (Vec.t * Q.t) list;
}

exception Abort
(* Inconsistent float-guided construction (corrupted horizon, exact
   orientation disagreeing with a committed combinatorial choice, …).
   Callers fall back to the exact path. *)

(* Machine epsilon for the static error bounds. The corner floats are
   unit-magnitude, so edge vectors are O(1) and a cross-product
   component accumulates a handful of half-ulps; 32 eps over the edge
   magnitude product is a crude but comfortably safe bound. *)
let f_eps = Float.ldexp 1.0 (-52)

let fcross u v =
  [| (u.(1) *. v.(2)) -. (u.(2) *. v.(1));
     (u.(2) *. v.(0)) -. (u.(0) *. v.(2));
     (u.(0) *. v.(1)) -. (u.(1) *. v.(0)) |]

let fsub u v = [| u.(0) -. v.(0); u.(1) -. v.(1); u.(2) -. v.(2) |]
let fdot u v = (u.(0) *. v.(0)) +. (u.(1) *. v.(1)) +. (u.(2) *. v.(2))
let fmax3 u = Float.max (Float.abs u.(0)) (Float.max (Float.abs u.(1)) (Float.abs u.(2)))

let nan3 = [| Float.nan; Float.nan; Float.nan |]

(* Exact plane of a triangle in its stored corner order; [`Flip] from
   the exact test means a committed combinatorial orientation was
   wrong, so the construction aborts. *)
let xplane_of ~c4 (pts : Vec.t array) t =
  match t.xp with
  | Some pl -> pl
  | None ->
    (match exact_plane ~c4 pts.(t.i0) pts.(t.i1) pts.(t.i2) with
     | Some (pl, `Keep) -> t.xp <- Some pl; pl
     | Some (_, `Flip) | None -> raise Abort)

let tri_visible ~c4 (pts : Vec.t array) (fp : float array array) t j =
  if t.terr = Float.infinity then begin
    (* Sliver: the float plane is noise; decide exactly. *)
    let a, b = xplane_of ~c4 pts t in
    Filter.sign_of_dot_minus a pts.(j) b > 0
  end
  else begin
    let p = fp.(j) in
    let s0 = t.fn.(0) *. p.(0) in
    let s1 = t.fn.(1) *. p.(1) in
    let s2 = t.fn.(2) *. p.(2) in
    let d = s0 +. s1 +. s2 -. t.fo in
    let m =
      Float.abs s0 +. Float.abs s1 +. Float.abs s2 +. Float.abs t.fo
    in
    (* Margin must clear the triangle's normal-error bound (corner
       floats are unit-magnitude, so |p|∞ <= ~1) plus the dot's own
       rounding; otherwise default to "not visible" — see the module
       comment on the ftri type. *)
    Float.abs d > 8.0 *. (t.terr +. (f_eps *. m)) && d > 0.0
  end

(* Static bound on the absolute error of [fcross e1 e2] and of the
   derived offset, and the degeneracy threshold below which the float
   normal is considered pure noise. *)
let tri_err e1 e2 = 32.0 *. f_eps *. (1.0 +. (fmax3 e1 *. fmax3 e2))

(* Build a triangle whose corner order is already committed (cone
   triangles inherit orientation from the horizon's directed edges).
   Slivers compute their exact plane up front; an exact [`Flip] means
   the committed order contradicts exact geometry — abort. *)
let mk_tri_committed ~c4 (pts : Vec.t array) (fp : float array array) i0 i1 i2 =
  let e1 = fsub fp.(i1) fp.(i0) and e2 = fsub fp.(i2) fp.(i0) in
  let fn = fcross e1 e2 in
  let terr = tri_err e1 e2 in
  if (not (Float.is_finite (fmax3 fn))) || fmax3 fn <= 64.0 *. terr then begin
    match exact_plane ~c4 pts.(i0) pts.(i1) pts.(i2) with
    | Some (pl, `Keep) ->
      { i0; i1; i2; fn = nan3; fo = Float.nan; terr = Float.infinity;
        xp = Some pl }
    | Some (_, `Flip) | None -> raise Abort
  end
  else { i0; i1; i2; fn; fo = fdot fn fp.(i0); terr; xp = None }

(* Build a triangle with free orientation, fixed against the float
   interior point [fc] (exact tie-break against [c4]). Used for the
   seed faces, where no combinatorial orientation exists yet. *)
let mk_tri_oriented ~c4 (pts : Vec.t array) (fp : float array array) ~fc i0 i1 i2 =
  let e1 = fsub fp.(i1) fp.(i0) and e2 = fsub fp.(i2) fp.(i0) in
  let fn = fcross e1 e2 in
  let terr = tri_err e1 e2 in
  let exact_route () =
    match exact_plane ~c4 pts.(i0) pts.(i1) pts.(i2) with
    | Some (pl, `Keep) ->
      { i0; i1; i2; fn = nan3; fo = Float.nan; terr = Float.infinity;
        xp = Some pl }
    | Some (pl, `Flip) ->
      { i0; i1 = i2; i2 = i1; fn = nan3; fo = Float.nan;
        terr = Float.infinity; xp = Some pl }
    | None -> raise Abort
  in
  if (not (Float.is_finite (fmax3 fn))) || fmax3 fn <= 64.0 *. terr then
    exact_route ()
  else begin
    let fo = fdot fn fp.(i0) in
    let s0 = fn.(0) *. fc.(0) and s1 = fn.(1) *. fc.(1) and s2 = fn.(2) *. fc.(2) in
    let d = s0 +. s1 +. s2 -. fo in
    let m = Float.abs s0 +. Float.abs s1 +. Float.abs s2 +. Float.abs fo in
    if Float.abs d <= 8.0 *. (terr +. (f_eps *. m)) then exact_route ()
    else if d < 0.0 then { i0; i1; i2; fn; fo; terr; xp = None }
    else
      { i0; i1 = i2; i2 = i1;
        fn = [| -.fn.(0); -.fn.(1); -.fn.(2) |]; fo = -.fo; terr; xp = None }
  end

let tri_dir_edges t = [ (t.i0, t.i1); (t.i1, t.i2); (t.i2, t.i0) ]

(* Horizon of the visible set, as directed edges: in a consistently
   oriented soup every undirected edge appears once in each direction,
   so a directed edge of a visible triangle whose reverse is not in
   the visible set borders a hidden triangle — a horizon edge. The
   replacement cone triangle (p, u, v) re-supplies the directed edge
   (u, v), keeping the orientation invariant with no geometric test.
   The horizon must form one simple closed cycle; anything else means
   the float classification corrupted the surface. *)
let horizon_cycle visible =
  let edges = Hashtbl.create 64 in
  List.iter
    (fun t ->
       List.iter
         (fun (u, v) ->
            if Hashtbl.mem edges (u, v) then raise Abort
            else Hashtbl.add edges (u, v) ())
         (tri_dir_edges t))
    visible;
  let horizon =
    Hashtbl.fold
      (fun (u, v) () acc ->
         if Hashtbl.mem edges (v, u) then acc else (u, v) :: acc)
      edges []
  in
  (match horizon with [] -> raise Abort | _ -> ());
  (* Simple closed cycle: out-degree and in-degree exactly 1
     everywhere, and one connected walk covering every edge. *)
  let succ = Hashtbl.create 16 and indeg = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
       if Hashtbl.mem succ u then raise Abort;
       Hashtbl.add succ u v;
       if Hashtbl.mem indeg v then raise Abort;
       Hashtbl.add indeg v ())
    horizon;
  let n = List.length horizon in
  let start = fst (List.hd horizon) in
  let rec walk x steps =
    match Hashtbl.find_opt succ x with
    | None -> raise Abort
    | Some y -> if y = start then steps + 1 else walk y (steps + 1)
  in
  if walk start 0 <> n then raise Abort;
  horizon

(* One beneath-beyond insertion. *)
let insert ~c4 (pts : Vec.t array) (fp : float array array) tris j =
  let visible, hidden =
    List.partition (fun t -> tri_visible ~c4 pts fp t j) tris
  in
  if visible = [] then tris
  else begin
    let horizon = horizon_cycle visible in
    let cone =
      List.map (fun (u, v) -> mk_tri_committed ~c4 pts fp j u v) horizon
    in
    List.rev_append cone hidden
  end

(* Exact certification of a finished soup; [None] = rejected.
   (1) every triangle's exact plane exists in its stored orientation
   (so each triangle is non-degenerate, lies in a supporting-plane
   candidate, and is consistently outward-oriented);
   (2) the directed-edge multiset pairs up exactly — each directed
   edge once, its reverse once — so the soup is a closed oriented
   surface mapping onto the hull boundary with positive degree, which
   makes the plane set complete;
   (3) every input point is weakly inside every deduped plane, which
   makes every plane a genuine supporting (hence facet) plane. *)
let certify ~c4 (pts : Vec.t array) tris =
  Obs.Prof.with_span "poly.certify" @@ fun () ->
  match
    let planes = List.map (fun t -> xplane_of ~c4 pts t) tris in
    let edges = Hashtbl.create 256 in
    List.iter
      (fun t ->
         List.iter
           (fun e ->
              if Hashtbl.mem edges e then raise Abort
              else Hashtbl.add edges e ())
           (tri_dir_edges t))
      tris;
    Hashtbl.iter
      (fun (u, v) () -> if not (Hashtbl.mem edges (v, u)) then raise Abort)
      edges;
    dedupe_constraints (List.map primitive_plane planes)
  with
  | planes ->
    if
      Array.for_all
        (fun p ->
           List.for_all
             (fun (a, b) -> Filter.sign_of_dot_minus a p b <= 0)
             planes)
        pts
    then Some planes
    else None
  | exception Abort -> None


(* Binary search for [v] in a sorted point array. *)
let find_point (arr : Vec.t array) v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Vec.compare v arr.(mid) in
    if c = 0 then found := mid
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  if !found < 0 then None else Some !found

(* Greedy float seed: four points spanning a tetrahedron of
   comfortably non-zero volume. Deterministic (max with strict
   improvement, so ties resolve to the lowest index). *)
let float_seed (fp : float array array) =
  let n = Array.length fp in
  let p0 = 0 in
  let best = ref 0.0 and arg = ref (-1) in
  for i = 1 to n - 1 do
    let d = fmax3 (fsub fp.(i) fp.(p0)) in
    if d > !best then begin best := d; arg := i end
  done;
  if !arg < 0 || !best <= 1e-300 then None
  else begin
    let p1 = !arg in
    let e1 = fsub fp.(p1) fp.(p0) in
    best := 0.0; arg := -1;
    for i = 1 to n - 1 do
      if i <> p1 then begin
        let a = fmax3 (fcross e1 (fsub fp.(i) fp.(p0))) in
        if a > !best then begin best := a; arg := i end
      end
    done;
    if !arg < 0 || !best <= 1e-12 then None
    else begin
      let p2 = !arg in
      let nrm = fcross e1 (fsub fp.(p2) fp.(p0)) in
      best := 0.0; arg := -1;
      for i = 1 to n - 1 do
        if i <> p1 && i <> p2 then begin
          let v = Float.abs (fdot nrm (fsub fp.(i) fp.(p0))) in
          if v > !best then begin best := v; arg := i end
        end
      done;
      if !arg < 0 || !best <= fmax3 nrm *. 1e-9 then None
      else Some (p0, p1, p2, !arg)
    end
  end

(* [hull_3d ?warm pts]: certified facet planes (and the triangle soup
   behind them) of the full-dimensional hull of [pts] — a deduped,
   lexicographically sorted array. [warm = (wpts, wtris)] restarts
   beneath-beyond from a previously certified soup [wtris] over
   [wpts] (same coordinate frame): every corner of [wtris] must
   appear in [pts], and only points outside [wpts] are inserted.
   [None]: the input is not full-dimensional in float terms, or the
   construction failed certification — callers fall back to the exact
   path. *)
let hull_3d ?warm (pts : Vec.t array) =
  let n = Array.length pts in
  if n < 4 then None
  else
    match float_points pts with
    | None -> None
    | Some fp ->
      (try
         let seed_tris, skip =
           match warm with
           | Some ((wpts : Vec.t array), (wtris : (int * int * int) array))
             when Array.length wtris > 0 -> begin
               (* Map old corner indices to indices in [pts]; any miss
                  means the warm soup does not embed — cold-start. *)
               let map = Hashtbl.create 64 in
               let remap i =
                 match Hashtbl.find_opt map i with
                 | Some j -> j
                 | None ->
                   (match find_point pts wpts.(i) with
                    | Some j -> Hashtbl.add map i j; j
                    | None -> raise Exit)
               in
               match
                 Array.to_list
                   (Array.map
                      (fun (a, b, c) -> (remap a, remap b, remap c))
                      wtris)
               with
               | mapped ->
                 (* Interior reference: the first triangle plus any
                    corner exactly off its plane. *)
                 let (a0, b0, c0) = List.hd mapped in
                 let p, q, r = pts.(a0), pts.(b0), pts.(c0) in
                 let nrm = cross3 (Vec.sub q p) (Vec.sub r p) in
                 if Array.for_all Q.is_zero nrm then raise Exit;
                 let off = Vec.dot nrm p in
                 let s =
                   List.find_map
                     (fun (a, b, c) ->
                        List.find_opt
                          (fun i -> Filter.sign_of_dot_minus nrm pts.(i) off <> 0)
                          [ a; b; c ])
                     mapped
                 in
                 (match s with
                  | None -> raise Exit
                  | Some s ->
                    let c4 =
                      Vec.add (Vec.add p q) (Vec.add r pts.(s))
                    in
                    let tris =
                      List.map
                        (fun (a, b, c) -> mk_tri_committed ~c4 pts fp a b c)
                        mapped
                    in
                    let skip j = find_point wpts pts.(j) <> None in
                    ((c4, tris), skip))
             end
           | _ ->
             (match float_seed fp with
              | None -> raise Exit
              | Some (a, b, c, d) ->
                let c4 =
                  Vec.add (Vec.add pts.(a) pts.(b)) (Vec.add pts.(c) pts.(d))
                in
                let fc =
                  let s = Array.make 3 0.0 in
                  List.iter
                    (fun i ->
                       for k = 0 to 2 do s.(k) <- s.(k) +. fp.(i).(k) done)
                    [ a; b; c; d ];
                  for k = 0 to 2 do s.(k) <- s.(k) /. 4.0 done;
                  s
                in
                let face = mk_tri_oriented ~c4 pts fp ~fc in
                let tris =
                  [ face a b c; face a b d; face a c d; face b c d ]
                in
                let seed j = j = a || j = b || j = c || j = d in
                ((c4, tris), seed))
         in
         let (c4, tris0) = seed_tris in
         let tris = ref tris0 in
         for j = 0 to n - 1 do
           if not (skip j) then tris := insert ~c4 pts fp !tris j
         done;
         match certify ~c4 pts !tris with
         | None -> Obs.Metrics.incr fallback_hull_c; None
         | Some planes ->
           Some
             { tris =
                 Array.of_list
                   (List.map (fun t -> (t.i0, t.i1, t.i2)) !tris);
               planes }
       with Abort -> Obs.Metrics.incr fallback_hull_c; None
          | Exit -> None)

(* ------------------------------------------------------------------ *)
(* The persistent dual representation and its arena. *)

type dual = {
  pts : Vec.t list;             (* canonical (deduped sorted) vertices *)
  spts : Vec.t list;            (* grid-scaled integer copies, same order *)
  facets : (Vec.t * Q.t) list;  (* primitive facet planes for [spts] *)
  scale : B.t;                  (* the grid scale: spts = scale · pts *)
  shape : soup option;          (* certified soup; [None] from the exact path *)
}

(* Keyed on the unscaled canonical vertex list. The triple
   (spts, facets, scale) is self-consistent independently of whichever
   round grid is installed when it is reused: spts = scale·pts holds
   forever, facets are facet planes of conv(spts), and every consumer
   (tight scans, b/scale mapping, volume's 1/scale³) normalizes the
   scale away. A Memo table, so differential oracles' [with_bypass]
   covers the arena exactly like every other kernel cache. *)
let arena : (Vec.t list, dual option) Parallel.Memo.t =
  Parallel.Memo.create ~name:"poly-arena" ~max_size:4096
    ~hash:verts_hash ~equal:verts_equal ()

(* Engine handles: the mutable per-instance (or per-shard) state —
   a ring of recent duals for warm starts, the last intersection's
   vertex set for seeding, and reuse counters. Carried in protocol
   state by Chc.Instance and per shard by Serve.Server; a domain-local
   default serves plain library callers. *)
type handle = {
  ring : dual option array;
  mutable ring_ix : int;
  mutable arena_hits : int;
  mutable arena_misses : int;
  mutable warm_builds : int;
  mutable last_isect : Vec.t list option;
}

let create_handle () =
  { ring = Array.make 8 None; ring_ix = 0; arena_hits = 0;
    arena_misses = 0; warm_builds = 0; last_isect = None }

let handle_key : handle option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_handle : handle Domain.DLS.key =
  Domain.DLS.new_key create_handle

let current_handle () =
  match !(Domain.DLS.get handle_key) with
  | Some h -> h
  | None -> Domain.DLS.get domain_handle

let with_handle h f =
  let slot = Domain.DLS.get handle_key in
  let saved = !slot in
  slot := Some h;
  Fun.protect ~finally:(fun () -> slot := saved) f

let handle_reuse h = h.arena_hits + h.warm_builds

let handle_stats h =
  [ ("arena_hits", h.arena_hits); ("arena_misses", h.arena_misses);
    ("warm_builds", h.warm_builds) ]

let ring_push h d =
  h.ring.(h.ring_ix) <- Some d;
  h.ring_ix <- (h.ring_ix + 1) mod Array.length h.ring

(* Warm-start probe: the most recent ring dual with a certified soup
   whose corner set embeds in [pts] (and is not [pts] itself — that
   would have been an arena hit). Returns the warm payload in the new
   scale: wpts = scale·(old pts). *)
let probe_warm h (pts_arr : Vec.t array) (scale : B.t) =
  let n = Array.length h.ring in
  let rec go k =
    if k >= n then None
    else begin
      let ix = (h.ring_ix - 1 - k + (2 * n)) mod n in
      match h.ring.(ix) with
      | Some d when d.shape <> None
                 && not (verts_equal d.pts (Array.to_list pts_arr)) -> begin
          match d.shape with
          | Some soup when Array.length soup.tris > 0 ->
            let old = Array.of_list d.pts in
            let sq = Q.of_bigint scale in
            let wpts = Array.map (fun v -> Vec.scale sq v) old in
            (* Every soup corner must appear in the new point set. *)
            let ok = ref true in
            Array.iter
              (fun (a, b, c) ->
                 List.iter
                   (fun i ->
                      if !ok && find_point pts_arr wpts.(i) = None then
                        ok := false)
                   [ a; b; c ])
              soup.tris;
            if !ok then Some (wpts, soup.tris) else go (k + 1)
          | _ -> go (k + 1)
        end
      | _ -> go (k + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* [dual_3d pts ~rebuild]: the engine's front door for 3-d hull
   construction. [pts] is the deduped sorted unscaled vertex list;
   [rebuild] is the caller's exact construction (scaling included),
   used verbatim under CHC_POLY=rebuild and as the fallback whenever
   the float-guided build fails certification. Under
   CHC_POLY=incremental the result is arena-cached and pushed onto the
   current handle's warm-start ring. *)
let dual_3d pts ~rebuild =
  if not (incremental ()) then rebuild ()
  else begin
    let h = current_handle () in
    let ran = ref false in
    let build () =
      ran := true;
      Obs.Prof.with_span "poly.build" @@ fun () ->
      let spts, scale = Numeric.Grid.scale_points pts in
      let arr = Array.of_list spts in
      let warm = probe_warm h arr scale in
      match hull_3d ?warm arr with
      | Some soup ->
        (match warm with
         | Some _ ->
           h.warm_builds <- h.warm_builds + 1;
           Obs.Metrics.incr hull_warm_c
         | None -> Obs.Metrics.incr hull_float_c);
        Some { pts; spts; facets = soup.planes; scale; shape = Some soup }
      | None ->
        Obs.Metrics.incr hull_exact_c;
        rebuild ()
    in
    let d = Parallel.Memo.find_or_add arena pts build in
    if !ran then begin
      h.arena_misses <- h.arena_misses + 1;
      Obs.Metrics.incr arena_miss_c
    end
    else begin
      h.arena_hits <- h.arena_hits + 1;
      Obs.Metrics.incr arena_hit_c
    end;
    (match d with Some d -> ring_push h d | None -> ());
    d
  end

(* ------------------------------------------------------------------ *)
(* Delta operations. *)

(* [merge d extra]: the dual of conv(d.pts ∪ extra), warm-started from
   [d]'s certified soup — beneath-beyond restarted from the previous
   conflict region, inserting only the genuinely new points. [None]
   when the warm construction fails certification (callers rebuild
   through {!dual_3d}). *)
let merge d extra =
  let pts = dedupe_points (List.rev_append extra d.pts) in
  if verts_equal pts d.pts then Some d
  else begin
    let spts, scale = Numeric.Grid.scale_points pts in
    let arr = Array.of_list spts in
    let warm =
      match d.shape with
      | Some soup when Array.length soup.tris > 0 ->
        let sq = Q.of_bigint scale in
        Some (Array.of_list (List.map (Vec.scale sq) d.pts), soup.tris)
      | _ -> None
    in
    match hull_3d ?warm arr with
    | None -> None
    | Some soup ->
      (match warm with
       | Some _ -> Obs.Metrics.incr hull_warm_c
       | None -> Obs.Metrics.incr hull_float_c);
      let built = { pts; spts; facets = soup.planes; scale; shape = Some soup } in
      (match Parallel.Memo.find_or_add arena pts (fun () -> Some built) with
       | Some d' -> ring_push (current_handle ()) d'; Some d'
       | None -> Some built)
  end

let insert_point d p = merge d [ p ]

(* ------------------------------------------------------------------ *)
(* Vertex extraction against a known facet list (same tight-rank test
   as Hullnd.is_vertex_by_facets, duplicated to keep the dependency
   arrow pointing from Hullnd to this module). *)

let is_vertex_by_facets facets p =
  let tight =
    List.filter_map
      (fun (a, b) -> if Filter.sign_of_dot_minus a p b = 0 then Some a else None)
      facets
  in
  List.length tight >= 3 && Linsys.rank (Array.of_list tight) = 3

(* ------------------------------------------------------------------ *)
(* Float-guided intersection vertex enumeration.

   Candidates come from pair-line clipping: for every pair (i, j) of
   constraints whose planes meet in a line, clip the line's parameter
   against the remaining constraints; the surviving interval's
   endpoints name candidate tight triples (i, j, k). Every edge of the
   intersection polytope lies on such a line (its two incident facet
   planes are among the constraints), so every vertex shows up as an
   endpoint — up to float noise, which the completeness certificate
   catches. *)

let fsolve3 r0 r1 r2 b0 b1 b2 =
  (* Rows r0, r1, r2; Cramer via the cross-product adjugate. *)
  let c12 = fcross r1 r2 and c20 = fcross r2 r0 and c01 = fcross r0 r1 in
  let det = fdot r0 c12 in
  if Float.abs det <= 1e-12 then None
  else
    Some
      [| ((b0 *. c12.(0)) +. (b1 *. c20.(0)) +. (b2 *. c01.(0))) /. det;
         ((b0 *. c12.(1)) +. (b1 *. c20.(1)) +. (b2 *. c01.(1))) /. det;
         ((b0 *. c12.(2)) +. (b1 *. c20.(2)) +. (b2 *. c01.(2))) /. det |]

let isect_max_constraints = 160

(* [vertices_3d ?prev ~ineqs]: the exact vertex set of
   P = {x : a·x <= b for all (a,b) in ineqs}, certified complete, or
   [None] (empty / lower-dimensional / too many constraints /
   certificate failure — callers run the exact enumeration). [prev]
   seeds candidate vertices (the delta path: a previous round's
   intersection result); seeds are only ever admitted through the
   exact membership test, so they cannot perturb the result, and when
   omitted the current handle's last result is used. *)
let vertices_3d ?prev ~ineqs () =
  if not (incremental ()) then None
  else begin
    let m = List.length ineqs in
    if m < 4 || m > isect_max_constraints then None
    else begin
      Obs.Prof.with_span "poly.isect" @@ fun () ->
      let h = current_handle () in
      let cons = Array.of_list ineqs in
      (* Float rows, normalized so max |coefficient| = 1. *)
      let frows =
        Array.map
          (fun (a, b) ->
             let fa = Array.map Q.to_float a in
             let fb = Q.to_float b in
             let s = fmax3 fa in
             if s > 0.0 && Float.is_finite s && Float.is_finite fb then begin
               for i = 0 to 2 do fa.(i) <- fa.(i) /. s done;
               Some (fa, fb /. s)
             end
             else None)
          cons
      in
      if Array.exists (fun r -> r = None) frows then None
      else begin
        let frows = Array.map Option.get frows in
        (* Pair-line clipping: candidate (triple, float point) list. *)
        let candidates = ref [] in
        (try
           for i = 0 to m - 2 do
             let ai, bi = frows.(i) in
             for j = i + 1 to m - 1 do
               let aj, bj = frows.(j) in
               let d = fcross ai aj in
               let dn = fmax3 d in
               if dn > 1e-9 then begin
                 match fsolve3 ai aj d bi bj 0.0 with
                 | None -> ()
                 | Some p0 ->
                   if fmax3 p0 < 1e6 then begin
                     let lo = ref neg_infinity and hi = ref infinity in
                     let klo = ref (-1) and khi = ref (-1) in
                     let feasible = ref true in
                     let k = ref 0 in
                     while !feasible && !k < m do
                       if !k <> i && !k <> j then begin
                         let ak, bk = frows.(!k) in
                         let ad = fdot ak d in
                         let rhs = bk -. fdot ak p0 in
                         if Float.abs ad <= 1e-12 then begin
                           if rhs < -1e-7 then feasible := false
                         end
                         else begin
                           let t = rhs /. ad in
                           if ad > 0.0 then begin
                             if t < !hi then begin hi := t; khi := !k end
                           end
                           else if t > !lo then begin lo := t; klo := !k end
                         end
                       end;
                       incr k
                     done;
                     if !feasible && !lo <= !hi +. 1e-7 then begin
                       if !klo >= 0 && Float.abs !lo < 1e11 then
                         candidates :=
                           ( (i, j, !klo),
                             [| p0.(0) +. (!lo *. d.(0));
                                p0.(1) +. (!lo *. d.(1));
                                p0.(2) +. (!lo *. d.(2)) |] )
                           :: !candidates;
                       if !khi >= 0 && Float.abs !hi < 1e11 then
                         candidates :=
                           ( (i, j, !khi),
                             [| p0.(0) +. (!hi *. d.(0));
                                p0.(1) +. (!hi *. d.(1));
                                p0.(2) +. (!hi *. d.(2)) |] )
                           :: !candidates
                     end
                   end
               end
             done
           done
         with _ -> ());
        (* Cluster float-coincident candidates; one exact solve per
           cluster (more triples tried if the first is singular or
           exactly infeasible). *)
        let clusters : ((int * int * int) list ref * float array) list ref =
          ref []
        in
        List.iter
          (fun (triple, x) ->
             let tol = 1e-5 *. (1.0 +. fmax3 x) in
             match
               List.find_opt
                 (fun (_, cx) -> fmax3 (fsub x cx) <= tol)
                 !clusters
             with
             | Some (ts, _) -> ts := triple :: !ts
             | None -> clusters := (ref [ triple ], x) :: !clusters)
          (List.rev !candidates);
        let member x =
          Array.for_all
            (fun (a, b) -> Filter.sign_of_dot_minus a x b <= 0)
            cons
        in
        let solve_cluster (ts, _) =
          let rec go = function
            | [] -> None
            | (i, j, k) :: rest ->
              let rows = [| fst cons.(i); fst cons.(j); fst cons.(k) |] in
              let rhs = [| snd cons.(i); snd cons.(j); snd cons.(k) |] in
              (match Linsys.solve_unique rows rhs with
               | Some x when member x -> Some x
               | _ -> go rest)
          in
          go (List.rev !ts)
        in
        let w0 = List.filter_map solve_cluster !clusters in
        (* Seed points from the previous intersection (delta reuse):
           admitted only through the exact membership test. *)
        let seeds =
          let src = match prev with Some _ -> prev | None -> h.last_isect in
          match src with
          | None -> []
          | Some vs -> List.filter member vs
        in
        let w = dedupe_points (List.rev_append seeds w0) in
        if List.length w < 4 then None
        else begin
          let sw, scale = Numeric.Grid.scale_points w in
          let arr = Array.of_list sw in
          match hull_3d arr with
          | None -> Obs.Metrics.incr fallback_isect_c; None
          | Some soup ->
            (* Completeness certificate: every facet plane of conv(W),
               mapped back to the unscaled frame and canonically
               normalized, must be one of the input constraints. *)
            let sorted_cons =
              List.sort compare_constraint
                (List.map normalize_ineq ineqs)
            in
            let linv = Q.inv (Q.of_bigint scale) in
            let complete =
              List.for_all
                (fun (a, b) ->
                   let c = normalize_ineq (a, Q.mul b linv) in
                   List.exists
                     (fun c' -> compare_constraint c c' = 0)
                     sorted_cons)
                soup.planes
            in
            if not complete then begin
              Obs.Metrics.incr fallback_isect_c; None
            end
            else begin
              let verts =
                List.combine w sw
                |> List.filter (fun (_, s) ->
                    is_vertex_by_facets soup.planes s)
                |> List.map fst
              in
              if List.length verts < 4 then begin
                Obs.Metrics.incr fallback_isect_c; None
              end
              else begin
                Obs.Metrics.incr isect_fast_c;
                h.last_isect <- Some verts;
                Some verts
              end
            end
        end
      end
    end
  end

let intersect_delta ?prev ~ineqs () = vertices_3d ?prev ~ineqs ()

(* ------------------------------------------------------------------ *)
(* Support-function cache, keyed by (canonical vertex list,
   direction). Hausdorff/volume grading re-evaluates supports of the
   same polytope in the same facet-normal directions round over
   round; the cold evaluation is supplied by the caller (Polytope),
   so cached and cold answers are definitionally interchangeable. *)

let support_memo : (Vec.t list * Vec.t, Q.t * Vec.t) Parallel.Memo.t =
  Parallel.Memo.create ~name:"poly-support" ~max_size:8192
    ~hash:(fun (vs, dir) ->
        ((verts_hash vs * 1000003) + Vec.hash dir) land max_int)
    ~equal:(fun (vs1, d1) (vs2, d2) -> verts_equal vs1 vs2 && Vec.equal d1 d2)
    ()

let support verts dir ~eval =
  if not (incremental ()) then eval ()
  else begin
    let ran = ref false in
    let v =
      Parallel.Memo.find_or_add support_memo (verts, dir) (fun () ->
          ran := true;
          eval ())
    in
    Obs.Metrics.incr (if !ran then support_miss_c else support_hit_c);
    v
  end

(* ------------------------------------------------------------------ *)
(* Test hooks. *)

module Dev = struct
  let certify (pts : Vec.t array) (tris : (int * int * int) array) =
    match Array.to_list pts with
    | p :: q :: r :: s :: _ ->
      let c4 = Vec.add (Vec.add p q) (Vec.add r s) in
      let fts =
        Array.to_list
          (Array.map
             (fun (a, b, c) ->
                { i0 = a; i1 = b; i2 = c; fn = nan3; fo = Float.nan;
                  terr = Float.infinity; xp = None })
             tris)
      in
      (try certify ~c4 pts fts with Abort -> None)
    | _ -> None

  let hull_3d = hull_3d
  let float_seed_exists pts =
    match float_points pts with
    | None -> false
    | Some fp -> float_seed fp <> None
end
