(** Points/vectors of the d-dimensional Euclidean space with exact
    rational coordinates.

    A value is an immutable array of {!Numeric.Q} coordinates. The
    paper identifies a d-dimensional input vector with a point of the
    d-dimensional Euclidean space; this module is that identification. *)

module Q = Numeric.Q

type t = Q.t array

val dim : t -> int

val make : Q.t list -> t
val of_ints : int list -> t
(** Integer coordinates, exact. *)

val of_floats : float list -> t
(** Decimal-exact embedding of floats that are short decimals is not
    attempted; coordinates are converted via [Q.of_string] on the
    ["%.12g"] rendering, which is exact enough for test inputs. *)

val zero : int -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic; a total order used for canonical vertex lists. *)

val hash : t -> int
(** Structural hash, consistent with {!equal}; keys the geometry memo
    tables. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t
val dot : t -> t -> Q.t

val norm2 : t -> Q.t
(** Squared Euclidean norm, exact. *)

val dist2 : t -> t -> Q.t
(** Squared Euclidean distance, exact. *)

val dist : t -> t -> float
(** Euclidean distance as a float (needs a square root). *)

val lincomb : (Q.t * t) list -> t
(** [lincomb [(c1,p1);…]] is [Σ ci·pi]. All points must share a
    dimension. @raise Invalid_argument on the empty list. *)

val average : t list -> t
(** Unweighted barycenter. @raise Invalid_argument on the empty list. *)

val to_floats : t -> float array
val to_string : t -> string
val pp : Format.formatter -> t -> unit
