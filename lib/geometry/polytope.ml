module Q = Numeric.Q
module Filter = Numeric.Filter

type t = { dim : int; verts : Vec.t list }

(* ------------------------------------------------------------------ *)
(* Canonicalization. *)

let canon_1d pts =
  let xs = List.map (fun p -> p.(0)) pts in
  let lo = List.fold_left Q.min (List.hd xs) xs in
  let hi = List.fold_left Q.max (List.hd xs) xs in
  if Q.equal lo hi then [Vec.make [lo]] else [Vec.make [lo]; Vec.make [hi]]

let canonicalize ~dim pts =
  match dim with
  | 1 -> canon_1d pts
  | 2 -> Hull2d.hull pts
  | _ -> Hullnd.extreme_points pts

(* ------------------------------------------------------------------ *)
(* Memo tables for the d >= 3 hot paths. Once ε-agreement kicks in the
   h_i[t] polytopes coincide across processes, so hull constructions,
   Minkowski pairs and subset intersections repeat verbatim; keys are
   canonical vertex lists, so a hit returns the value of a
   structurally identical computation (see Parallel.Memo). *)

let verts_hash vs =
  List.fold_left
    (fun acc v -> ((acc * 1000003) + Vec.hash v) land max_int)
    17 vs

let verts_equal a b =
  List.compare_lengths a b = 0 && List.for_all2 Vec.equal a b

let hull_memo : (int * Vec.t list, Vec.t list) Parallel.Memo.t =
  Parallel.Memo.create ~name:"hull" ~max_size:4096
    ~hash:(fun (d, vs) -> (verts_hash vs * 31 + d) land max_int)
    ~equal:(fun (d1, a) (d2, b) -> d1 = d2 && verts_equal a b)
    ()

let mink_memo : (Vec.t list * Vec.t list, Vec.t list) Parallel.Memo.t =
  Parallel.Memo.create ~name:"minkowski" ~max_size:4096
    ~hash:(fun (a, b) -> (verts_hash a * 1000003 + verts_hash b) land max_int)
    ~equal:(fun (a1, b1) (a2, b2) -> verts_equal a1 a2 && verts_equal b1 b2)
    ()

let intersect_memo : (int * Vec.t list list, Vec.t list option) Parallel.Memo.t =
  Parallel.Memo.create ~name:"intersect" ~max_size:4096
    ~hash:(fun (d, vss) ->
        List.fold_left
          (fun acc vs -> ((acc * 1000003) + verts_hash vs) land max_int)
          d vss)
    ~equal:(fun (d1, a) (d2, b) ->
        d1 = d2 && List.compare_lengths a b = 0 && List.for_all2 verts_equal a b)
    ()

let of_points ~dim pts =
  match pts with
  | [] -> invalid_arg "Polytope.of_points: empty point set"
  | p :: _ ->
    if Vec.dim p <> dim || dim < 1 then
      invalid_arg "Polytope.of_points: dimension mismatch"
    else begin
      List.iter
        (fun q -> if Vec.dim q <> dim then
            invalid_arg "Polytope.of_points: inconsistent dimensions")
        pts;
      if dim <= 2 then { dim; verts = canonicalize ~dim pts }
      else begin
        let canon = Hullnd.dedupe_points pts in
        let verts =
          Parallel.Memo.find_or_add hull_memo (dim, canon)
            (fun () ->
               Obs.Prof.with_span "geometry.hull" (fun () ->
                   canonicalize ~dim canon))
        in
        { dim; verts }
      end
    end

let singleton p = { dim = Vec.dim p; verts = [p] }

let vertices p = p.verts
let dim p = p.dim
let is_point p = match p.verts with [_] -> true | _ -> false

let equal p q =
  p.dim = q.dim
  && List.length p.verts = List.length q.verts
  && List.for_all2 Vec.equal p.verts q.verts

let contains p x =
  match p.dim with
  | 1 ->
    (match p.verts with
     | [a] -> Q.equal x.(0) a.(0)
     | [a; b] ->
       Filter.compare a.(0) x.(0) <= 0 && Filter.compare x.(0) b.(0) <= 0
     | _ -> assert false)
  | 2 -> Hull2d.contains p.verts x
  | _ -> Lp.in_convex_hull p.verts x

let subset p q =
  if p.dim <> q.dim then invalid_arg "Polytope.subset: dimension mismatch"
  else List.for_all (contains q) p.verts

(* ------------------------------------------------------------------ *)
(* The paper's L operator: weighted Minkowski sum. *)

let scale_poly c p =
  if Q.is_zero c then { dim = p.dim; verts = [Vec.zero p.dim] }
  else if p.dim >= 3 then
    (* Positive scaling preserves extremeness and (uniform per
       coordinate) the lexicographic vertex order, so the canonical
       V-representation maps through directly — no hull recompute. *)
    { dim = p.dim; verts = List.map (Vec.scale c) p.verts }
  else
    { dim = p.dim; verts = canonicalize ~dim:p.dim (List.map (Vec.scale c) p.verts) }

let minkowski_pair a b =
  match a.dim with
  | 1 ->
    (match a.verts, b.verts with
     | (la :: _), (lb :: _) ->
       let ha = List.nth a.verts (List.length a.verts - 1) in
       let hb = List.nth b.verts (List.length b.verts - 1) in
       { dim = 1;
         verts = canon_1d [Vec.add la lb; Vec.add ha hb] }
     | _ -> assert false)
  | 2 -> { dim = 2; verts = Hull2d.minkowski_sum a.verts b.verts }
  | d ->
    let verts =
      Parallel.Memo.find_or_add mink_memo (a.verts, b.verts)
        (fun () ->
           Obs.Prof.with_span "geometry.minkowski" (fun () ->
               let sums =
                 Obs.Prof.with_span "mink.sums" (fun () ->
                 List.concat_map (fun u -> List.map (Vec.add u) b.verts) a.verts)
               in
               Obs.Prof.with_span "mink.canon" (fun () ->
               canonicalize ~dim:d sums)))
    in
    { dim = d; verts }

let linear_combination terms =
  match terms with
  | [] -> invalid_arg "Polytope.linear_combination: empty"
  | (_, p0) :: _ ->
    let d = p0.dim in
    List.iter
      (fun (c, p) ->
         if p.dim <> d then
           invalid_arg "Polytope.linear_combination: dimension mismatch";
         if Q.sign c < 0 then
           invalid_arg "Polytope.linear_combination: negative weight")
      terms;
    let total = Numeric.Q.sum (List.map fst terms) in
    if not (Q.equal total Q.one) then
      invalid_arg "Polytope.linear_combination: weights must sum to 1";
    let scaled = List.map (fun (c, p) -> scale_poly c p) terms in
    (* Standalone combinations share a grid across the Minkowski
       chain: every partial sum's denominators divide the lcm of the
       scaled vertices'. Under the executor this is a no-op — the
       round grid is already installed. *)
    Numeric.Grid.ensure_round
      (fun () ->
         Numeric.Grid.make (List.concat_map (fun p -> p.verts) scaled))
      (fun () ->
         match scaled with
         | [] -> assert false
         | first :: rest -> List.fold_left minkowski_pair first rest)

let average polys =
  match polys with
  | [] -> invalid_arg "Polytope.average: empty"
  | _ ->
    let w = Q.inv (Q.of_int (List.length polys)) in
    linear_combination (List.map (fun p -> (w, p)) polys)

(* ------------------------------------------------------------------ *)
(* Intersection. *)

let intersect_1d polys =
  let lo_hi p =
    match p.verts with
    | [a] -> (a.(0), a.(0))
    | [a; b] -> (a.(0), b.(0))
    | _ -> assert false
  in
  let bounds = List.map lo_hi polys in
  let lo = List.fold_left (fun acc (l, _) -> Q.max acc l)
      (fst (List.hd bounds)) bounds
  in
  let hi = List.fold_left (fun acc (_, h) -> Q.min acc h)
      (snd (List.hd bounds)) bounds
  in
  if Q.gt lo hi then None
  else Some { dim = 1; verts = canon_1d [Vec.make [lo]; Vec.make [hi]] }

let intersect polys =
  match polys with
  | [] -> invalid_arg "Polytope.intersect: empty list"
  | first :: rest ->
    let d = first.dim in
    List.iter
      (fun p -> if p.dim <> d then
          invalid_arg "Polytope.intersect: dimension mismatch")
      rest;
    (match d with
     | 1 -> intersect_1d polys
     | 2 ->
       let result =
         List.fold_left
           (fun acc p ->
              match acc with
              | [] -> []
              | _ -> Hull2d.intersect acc p.verts)
           first.verts rest
       in
       (match result with
        | [] -> None
        | verts -> Some { dim = 2; verts })
     | _ ->
       let key = (d, List.map (fun p -> p.verts) polys) in
       let verts =
         Parallel.Memo.find_or_add intersect_memo key
           (fun () ->
              Obs.Prof.with_span "geometry.intersect" (fun () ->
                  (* The H-representation constructions all run on the
                     input vertices, so they share a grid; the final
                     extreme-points pass sees solver-produced
                     denominators and transparently falls back to a
                     local grid. *)
                  Numeric.Grid.ensure_round
                    (fun () ->
                       Numeric.Grid.make
                         (List.concat_map (fun p -> p.verts) polys))
                  @@ fun () ->
                  let hreps =
                    Obs.Prof.with_span "isect.hreps" (fun () ->
                    List.map (fun p -> Hullnd.of_points ~dim:d p.verts) polys)
                  in
                  let combined = Hullnd.combine hreps in
                  (* Certified fast path: pair-line clipping over the
                     constraint system, seeded from the previous
                     round's intersection. Completeness is certified
                     exactly (see Poly_engine), so a [Some] here equals
                     the brute enumeration value-for-value; [None]
                     (mode, degeneracy, certificate failure) falls
                     through to the exact path. *)
                  let fast =
                    if d = 3 && combined.Hullnd.eqs = [] then
                      Poly_engine.vertices_3d ~ineqs:combined.Hullnd.ineqs ()
                    else None
                  in
                  match fast with
                  | Some vs -> Some vs
                  | None ->
                    match Obs.Prof.with_span "isect.vertices" (fun () ->
                        Hullnd.vertices combined) with
                    | [] -> None
                    | vs -> Some (Obs.Prof.with_span "isect.extreme" (fun () ->
                        Hullnd.extreme_points vs))))
       in
       (match verts with
        | None -> None
        | Some verts -> Some { dim = d; verts }))

(* ------------------------------------------------------------------ *)
(* Measures. *)

(* Agreement grading asks for the Hausdorff distance between every
   pair of per-process output polytopes, and ε-agreement makes those
   pairs repeat verbatim across processes and rounds; keyed on the
   canonical vertex lists the cache has the same hit profile as the
   hull/minkowski tables. Gated on the engine mode so CHC_POLY=rebuild
   measures the uncached evaluation. *)
let hausdorff_memo : (int * Vec.t list * Vec.t list, Q.t) Parallel.Memo.t =
  Parallel.Memo.create ~name:"hausdorff" ~max_size:4096
    ~hash:(fun (d, a, b) ->
        ((((verts_hash a * 1000003) + verts_hash b) * 31) + d) land max_int)
    ~equal:(fun (d1, a1, b1) (d2, a2, b2) ->
        d1 = d2 && verts_equal a1 a2 && verts_equal b1 b2)
    ()

let hausdorff2 p q =
  if p.dim <> q.dim then invalid_arg "Polytope.hausdorff2: dimension mismatch"
  else begin
    let eval () = Distance.hausdorff2 ~dim:p.dim p.verts q.verts in
    if p.dim >= 3 && Poly_engine.incremental () then
      (* The distance is symmetric; canonicalizing the key order makes
         (p,q) and (q,p) share one entry. *)
      let key =
        if List.compare Vec.compare p.verts q.verts <= 0 then
          (p.dim, p.verts, q.verts)
        else (p.dim, q.verts, p.verts)
      in
      Parallel.Memo.find_or_add hausdorff_memo key (fun () ->
          Obs.Prof.with_span "poly.hausdorff" eval)
    else eval ()
  end

let hausdorff p q = sqrt (Q.to_float (hausdorff2 p q))

let volume p =
  match p.dim with
  | 1 ->
    (match p.verts with
     | [_] -> Some Q.zero
     | [a; b] -> Some (Q.sub b.(0) a.(0))
     | _ -> assert false)
  | 2 -> Some (Q.div (Hull2d.area2 p.verts) Q.two)
  | 3 -> Some (Volume3d.volume p.verts)
  | _ -> None

let diameter2 p =
  let vs = Array.of_list p.verts in
  let best = ref Q.zero in
  Array.iteri
    (fun i u ->
       Array.iteri
         (fun j v -> if j > i then best := Q.max !best (Vec.dist2 u v))
         vs)
    vs;
  !best

(* ------------------------------------------------------------------ *)
(* Helpers. *)

let translate v p =
  { dim = p.dim; verts = canonicalize ~dim:p.dim (List.map (Vec.add v) p.verts) }

let support p dir =
  let eval () =
    match p.verts with
    | [] -> assert false
    | v0 :: rest ->
      List.fold_left
        (fun (best, arg) v ->
           let s = Vec.dot dir v in
           if Filter.compare s best > 0 then (s, v) else (best, arg))
        (Vec.dot dir v0, v0) rest
  in
  (* Grading re-asks for supports of the same polytope in the same
     facet-normal directions round over round; the engine caches the
     exact evaluation keyed by (canonical vertex list, direction). *)
  if p.dim >= 3 then Poly_engine.support p.verts dir ~eval else eval ()

let bounding_box p =
  Array.init p.dim (fun j ->
      let xs = List.map (fun v -> v.(j)) p.verts in
      ( List.fold_left Q.min (List.hd xs) xs,
        List.fold_left Q.max (List.hd xs) xs ))

let centroid p = Vec.average p.verts

let steiner_point p =
  match p.dim, p.verts with
  | 1, [a] -> a
  | 1, [a; b] -> Vec.scale Q.half (Vec.add a b)
  | 2, verts when List.length verts >= 3 ->
    (* Exterior-angle weights, computed in floats and rationalized.
       The weights stay non-negative and are renormalized to sum to 1
       exactly, so the result is an exact convex combination (hence a
       point of the polytope) within float-rounding of the true
       Steiner point. *)
    let arr = Array.of_list verts in
    let n = Array.length arr in
    let angle i =
      let prev = arr.((i + n - 1) mod n) and cur = arr.(i)
      and next = arr.((i + 1) mod n) in
      let v1 = Vec.to_floats (Vec.sub cur prev) in
      let v2 = Vec.to_floats (Vec.sub next cur) in
      let a1 = atan2 v1.(1) v1.(0) and a2 = atan2 v2.(1) v2.(0) in
      let d = a2 -. a1 in
      let d = if d < 0.0 then d +. (2.0 *. Float.pi) else d in
      d
    in
    let weights =
      Array.init n (fun i ->
          let w = angle i /. (2.0 *. Float.pi) in
          Q.of_string (Printf.sprintf "%.12f" (Float.max 0.0 w)))
    in
    let total = Array.fold_left Q.add Q.zero weights in
    let weights = Array.map (fun w -> Q.div w total) weights in
    Vec.lincomb (List.mapi (fun i v -> (weights.(i), v)) verts)
  | _ -> centroid p

let to_string p =
  "{" ^ String.concat "; " (List.map Vec.to_string p.verts) ^ "}"

let pp fmt p = Format.pp_print_string fmt (to_string p)
