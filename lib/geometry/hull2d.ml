module Q = Numeric.Q
module Filter = Numeric.Filter

let cross o a b =
  let ax = Q.sub a.(0) o.(0) and ay = Q.sub a.(1) o.(1) in
  let bx = Q.sub b.(0) o.(0) and by = Q.sub b.(1) o.(1) in
  Q.sub (Q.mul ax by) (Q.mul ay bx)

let dedupe_sorted pts =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Vec.equal a b then go rest else a :: go rest
    | short -> short
  in
  go pts

(* Andrew's monotone chain. Strict turns only (non-left turns are
   popped), so collinear interior points are dropped and the result is
   a strictly convex CCW cycle starting at the lex-smallest vertex. *)
let hull pts =
  let pts = dedupe_sorted (List.sort Vec.compare pts) in
  match pts with
  | [] | [_] | [_; _] -> pts
  | _ ->
    (* Build a chain over [side]; the returned list is in traversal
       order. Pops while the last turn is not strictly CCW. *)
    let chain side =
      let stack =
        List.fold_left
          (fun stack p ->
             let rec pop = function
               | b :: a :: rest when Filter.sign_cross2 a b p <= 0 ->
                 pop (a :: rest)
               | s -> s
             in
             p :: pop stack)
          [] side
      in
      List.rev stack
    in
    let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
    let lower = chain pts in
    let upper = chain (List.rev pts) in
    let ccw = drop_last lower @ drop_last upper in
    (match ccw with
     | [] | [_] | [_; _] ->
       (* All points collinear: the hull is the extreme segment. *)
       [List.hd pts; List.nth pts (List.length pts - 1)]
     | _ -> ccw)

let is_canonical poly =
  match poly with
  | [] | [_] -> true
  | [a; b] -> Vec.compare a b < 0
  | v0 :: _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) and c = arr.((i + 2) mod n) in
      if Filter.sign_cross2 a b c <= 0 then ok := false
    done;
    Array.iter (fun v -> if Vec.compare v v0 < 0 then ok := false) arr;
    !ok

let area2 poly =
  match poly with
  | [] | [_] | [_; _] -> Q.zero
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let acc = ref Q.zero in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      acc := Q.add !acc (Q.sub (Q.mul a.(0) b.(1)) (Q.mul a.(1) b.(0)))
    done;
    !acc

let on_segment a b p =
  Filter.sign_cross2 a b p = 0
  && Q.leq (Q.min a.(0) b.(0)) p.(0) && Q.leq p.(0) (Q.max a.(0) b.(0))
  && Q.leq (Q.min a.(1) b.(1)) p.(1) && Q.leq p.(1) (Q.max a.(1) b.(1))

let contains poly p =
  match poly with
  | [] -> false
  | [a] -> Vec.equal a p
  | [a; b] -> on_segment a b p
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let ok = ref true in
    for i = 0 to n - 1 do
      if Filter.sign_cross2 arr.(i) arr.((i + 1) mod n) p < 0 then ok := false
    done;
    !ok

(* Intersection of segment [a,b] with the line n·x = c, when the
   endpoints straddle it strictly. *)
let line_hit a b ~normal ~offset =
  let fa = Q.sub (Vec.dot normal a) offset in
  let fb = Q.sub (Vec.dot normal b) offset in
  (* t such that f(a) + t (f(b) - f(a)) = 0 *)
  let t = Q.div fa (Q.sub fa fb) in
  Vec.add a (Vec.scale t (Vec.sub b a))

let clip poly ~normal ~offset =
  match poly with
  | [] -> []
  | [a] -> if Filter.sign_of_dot_minus normal a offset <= 0 then [a] else []
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let out = ref [] in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      let sa = Filter.sign_of_dot_minus normal a offset in
      let sb = Filter.sign_of_dot_minus normal b offset in
      if sa <= 0 then out := a :: !out;
      if (sa < 0 && sb > 0) || (sa > 0 && sb < 0) then
        out := line_hit a b ~normal ~offset :: !out
    done;
    hull !out

let halfplanes poly =
  let perp v = Vec.make [Q.neg v.(1); v.(0)] in
  match poly with
  | [] -> invalid_arg "Hull2d.halfplanes: empty polytope"
  | [a] ->
    let ex = Vec.make [Q.one; Q.zero] and ey = Vec.make [Q.zero; Q.one] in
    [ (ex, a.(0)); (Vec.neg ex, Q.neg a.(0));
      (ey, a.(1)); (Vec.neg ey, Q.neg a.(1)) ]
  | [a; b] ->
    let dirv = Vec.sub b a in
    let n = perp dirv in
    [ (n, Vec.dot n a); (Vec.neg n, Q.neg (Vec.dot n a));
      (dirv, Vec.dot dirv b); (Vec.neg dirv, Q.neg (Vec.dot dirv a)) ]
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    List.init n (fun i ->
        let a = arr.(i) and b = arr.((i + 1) mod n) in
        (* Outward normal of a CCW edge is the clockwise perpendicular. *)
        let e = Vec.sub b a in
        let nrm = Vec.make [e.(1); Q.neg e.(0)] in
        (nrm, Vec.dot nrm a))

let intersect p q =
  match p, q with
  | [], _ | _, [] -> []
  | _ ->
    let smaller, larger =
      if List.length p <= List.length q then p, q else q, p
    in
    (* Clip the larger polytope by every halfplane of the smaller. *)
    List.fold_left
      (fun acc (normal, offset) ->
         match acc with [] -> [] | _ -> clip acc ~normal ~offset)
      larger (halfplanes smaller)

(* --- Minkowski sum --------------------------------------------------- *)

let translate v poly = List.map (Vec.add v) poly

let pairwise_sum p q =
  hull (List.concat_map (fun a -> List.map (Vec.add a) q) p)

(* Rotate a CCW polygon so it starts at its bottom-most (then
   left-most) vertex. *)
let rotate_to_bottom poly =
  let arr = Array.of_list poly in
  let n = Array.length arr in
  let key v = (v.(1), v.(0)) in
  let lt a b =
    let (ay, ax) = key a and (by, bx) = key b in
    let c = Q.compare ay by in
    if c <> 0 then c < 0 else Q.compare ax bx < 0
  in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if lt arr.(i) arr.(!best) then best := i
  done;
  List.init n (fun i -> arr.((i + !best) mod n))

(* Angular comparison of edge vectors over the full turn [0, 2π),
   implemented with the half-plane trick so only exact signs are used. *)
let angle_half v =
  (* 0 for angles in [0, π), 1 for [π, 2π). *)
  let sy = Q.sign v.(1) in
  if sy > 0 || (sy = 0 && Q.sign v.(0) > 0) then 0 else 1

let angle_compare u v =
  let hu = angle_half u and hv = angle_half v in
  if hu <> hv then compare hu hv
  else
    (* positive cross (u before v) sorts u first *)
    - (Filter.sign_cross2o u v)

let edges poly =
  let arr = Array.of_list poly in
  let n = Array.length arr in
  List.init n (fun i -> Vec.sub arr.((i + 1) mod n) arr.(i))

let edge_merge p q =
  let p = rotate_to_bottom p and q = rotate_to_bottom q in
  let ep = Array.of_list (edges p) and eq = Array.of_list (edges q) in
  let start = Vec.add (List.hd p) (List.hd q) in
  let np = Array.length ep and nq = Array.length eq in
  let verts = ref [start] in
  let cur = ref start in
  let i = ref 0 and j = ref 0 in
  while !i < np || !j < nq do
    let step e = cur := Vec.add !cur e; verts := !cur :: !verts in
    if !i >= np then begin step eq.(!j); incr j end
    else if !j >= nq then begin step ep.(!i); incr i end
    else begin
      let c = angle_compare ep.(!i) eq.(!j) in
      if c < 0 then begin step ep.(!i); incr i end
      else if c > 0 then begin step eq.(!j); incr j end
      else begin step (Vec.add ep.(!i) eq.(!j)); incr i; incr j end
    end
  done;
  (* The walk returns to the start; canonicalize (cheap: ≤ np+nq+1
     points, already convex). *)
  hull !verts

let minkowski_sum p q =
  match p, q with
  | [], _ | _, [] -> []
  | [a], poly | poly, [a] -> translate a poly
  | _ ->
    if List.length p >= 3 && List.length q >= 3 then edge_merge p q
    else pairwise_sum p q
