(* Two-phase primal simplex on a dense exact-rational tableau.
   Bland's anti-cycling rule throughout: entering variable is the
   lowest-index improving column, leaving row breaks ratio ties by
   lowest basic variable index. *)

module Q = Numeric.Q
module Filter = Numeric.Filter

type solution =
  | Optimal of Q.t array * Q.t
  | Unbounded
  | Infeasible

(* Tableau state: [table] is m rows of length n+1 (last column is the
   right-hand side), kept in basis-canonical form (basic columns form
   an identity). [obj] has length n+1; entry j < n is the reduced cost
   of column j and entry n is MINUS the current objective value.
   [basis.(i)] is the variable basic in row i. *)

let pivot table obj basis r jc =
  let n = Array.length obj - 1 in
  let prow = table.(r) in
  let inv = Q.inv prow.(jc) in
  for j = 0 to n do prow.(j) <- Q.mul inv prow.(j) done;
  let eliminate row =
    let f = row.(jc) in
    if not (Q.is_zero f) then
      for j = 0 to n do
        row.(j) <- Q.sub row.(j) (Q.mul f prow.(j))
      done
  in
  Array.iteri (fun i row -> if i <> r then eliminate row) table;
  eliminate obj;
  basis.(r) <- jc

(* Run simplex to optimality on a canonical tableau. Returns [false]
   when unbounded.

   Pivot selection: Dantzig's rule (largest reduced cost) for speed,
   falling back to Bland's rule — which provably terminates — once the
   iteration count passes a generous threshold. Pure Bland was
   measured to wander through thousands of degenerate pivots on the
   Minkowski-pruning instances this project generates. *)
let optimize table obj basis =
  let m = Array.length table in
  let n = Array.length obj - 1 in
  let bland_after = 16 * (m + n + 4) in
  let iters = ref 0 in
  let rec loop () =
    incr iters;
    let entering = ref (-1) in
    if !iters > bland_after then begin
      (* Bland: smallest column with positive reduced cost. *)
      try
        for j = 0 to n - 1 do
          if Q.sign obj.(j) > 0 then begin entering := j; raise Exit end
        done
      with Exit -> ()
    end
    else begin
      (* Dantzig: most positive reduced cost (ties to lowest index).
         The argmax comparison runs through the filtered kernel; the
         pivot-sign test is already O(1) exact. *)
      let best = ref Q.zero in
      for j = n - 1 downto 0 do
        if Q.sign obj.(j) > 0 && Filter.compare obj.(j) !best >= 0 then begin
          entering := j;
          best := obj.(j)
        end
      done
    end;
    if !entering < 0 then true
    else begin
      let jc = !entering in
      (* Ratio test with Bland tie-break. *)
      let best = ref (-1) in
      let best_ratio = ref Q.zero in
      for i = 0 to m - 1 do
        let a = table.(i).(jc) in
        if Q.sign a > 0 then begin
          let ratio = Q.div table.(i).(n) a in
          if !best < 0
             || Filter.compare ratio !best_ratio < 0
             || (Q.equal ratio !best_ratio && basis.(i) < basis.(!best))
          then begin best := i; best_ratio := ratio end
        end
      done;
      if !best < 0 then false
      else begin
        pivot table obj basis !best jc;
        loop ()
      end
    end
  in
  loop ()

let extract_solution table basis ~nvars =
  let x = Array.make nvars Q.zero in
  Array.iteri
    (fun i row ->
       if basis.(i) < nvars then x.(basis.(i)) <- row.(Array.length row - 1))
    table;
  x

let maximize ~objective ~eq ~nvars =
  let m = List.length eq in
  if Array.length objective <> nvars then
    invalid_arg "Lp.maximize: objective size mismatch";
  let ntot = nvars + m in  (* original variables + artificials *)
  let table = Array.make_matrix m (ntot + 1) Q.zero in
  let basis = Array.make m 0 in
  List.iteri
    (fun i (row, rhs) ->
       if Array.length row <> nvars then
         invalid_arg "Lp.maximize: constraint size mismatch";
       let flip = Q.sign rhs < 0 in
       for j = 0 to nvars - 1 do
         table.(i).(j) <- (if flip then Q.neg row.(j) else row.(j))
       done;
       table.(i).(nvars + i) <- Q.one;
       table.(i).(ntot) <- (if flip then Q.neg rhs else rhs);
       basis.(i) <- nvars + i)
    eq;
  (* Phase 1: maximize -(sum of artificials). Reduced costs: start
     from c_j = 0 for real vars, -1 for artificials, then reduce
     against the artificial basis (add each constraint row). *)
  let obj1 = Array.make (ntot + 1) Q.zero in
  for j = nvars to ntot - 1 do obj1.(j) <- Q.minus_one done;
  Array.iter
    (fun row -> for j = 0 to ntot do obj1.(j) <- Q.add obj1.(j) row.(j) done)
    table;
  let ok = optimize table obj1 basis in
  assert ok; (* phase 1 is always bounded: objective <= 0 *)
  let phase1_value = Q.neg obj1.(ntot) in
  if not (Q.is_zero phase1_value) then Infeasible
  else begin
    (* Drive any degenerate artificial out of the basis if possible.
       A row where no real column can pivot is 0 = 0 (redundant). *)
    for i = 0 to m - 1 do
      if basis.(i) >= nvars then begin
        let found = ref (-1) in
        (try
           for j = 0 to nvars - 1 do
             if not (Q.is_zero table.(i).(j)) then begin found := j; raise Exit end
           done
         with Exit -> ());
        if !found >= 0 then pivot table obj1 basis i !found
      end
    done;
    (* Drop redundant rows (still-basic artificials) and physically
       remove artificial columns so phase 2 cannot re-enter them. *)
    let kept = ref [] in
    Array.iteri
      (fun i row ->
         if basis.(i) < nvars then begin
           assert (Q.sign row.(ntot) >= 0);
           let short = Array.make (nvars + 1) Q.zero in
           Array.blit row 0 short 0 nvars;
           short.(nvars) <- row.(ntot);
           kept := (short, basis.(i)) :: !kept
         end
         else assert (Q.is_zero row.(ntot)))
      table;
    let kept = List.rev !kept in
    let table2 = Array.of_list (List.map fst kept) in
    let basis2 = Array.of_list (List.map snd kept) in
    (* Phase 2 objective, reduced against the current basis. *)
    let obj2 = Array.make (nvars + 1) Q.zero in
    Array.blit objective 0 obj2 0 nvars;
    Array.iteri
      (fun i row ->
         let c = objective.(basis2.(i)) in
         if not (Q.is_zero c) then
           for j = 0 to nvars do
             obj2.(j) <- Q.sub obj2.(j) (Q.mul c row.(j))
           done)
      table2;
    if optimize table2 obj2 basis2 then begin
      let x = extract_solution table2 basis2 ~nvars in
      let value = ref Q.zero in
      Array.iteri (fun j c -> value := Q.add !value (Q.mul c x.(j))) objective;
      Optimal (x, !value)
    end
    else Unbounded
  end

let feasible_eq ~eq ~nvars =
  match maximize ~objective:(Array.make nvars Q.zero) ~eq ~nvars with
  | Optimal (x, _) -> Some x
  | Infeasible -> None
  | Unbounded -> assert false (* constant objective is never unbounded *)

let feasible_system ~dim ~eqs ~ineqs =
  (* Variables: x = u - w with u, w >= 0, plus one slack per
     inequality. Layout: [u (dim) | w (dim) | slacks]. *)
  let n_ineq = List.length ineqs in
  let nvars = (2 * dim) + n_ineq in
  let row_of a slack_idx =
    let row = Array.make nvars Q.zero in
    for j = 0 to dim - 1 do
      row.(j) <- a.(j);
      row.(dim + j) <- Q.neg a.(j)
    done;
    (match slack_idx with
     | Some k -> row.((2 * dim) + k) <- Q.one
     | None -> ());
    row
  in
  let eq_rows = List.map (fun (a, b) -> (row_of a None, b)) eqs in
  let ineq_rows = List.mapi (fun k (a, b) -> (row_of a (Some k), b)) ineqs in
  match feasible_eq ~eq:(eq_rows @ ineq_rows) ~nvars with
  | None -> None
  | Some x ->
    Some (Array.init dim (fun j -> Q.sub x.(j) x.(dim + j)))

let in_convex_hull_uncached pts p =
  match pts with
  | [] -> false
  | first :: _ ->
    let d = Vec.dim first in
    if Vec.dim p <> d then invalid_arg "Lp.in_convex_hull: dimension mismatch"
    else begin
      let k = List.length pts in
      let pts_arr = Array.of_list pts in
      (* Rows: one per coordinate (sum lambda_i v_i = p), plus
         sum lambda_i = 1. *)
      let coord_row j =
        (Array.init k (fun i -> pts_arr.(i).(j)), p.(j))
      in
      let ones = (Array.make k Q.one, Q.one) in
      let eq = ones :: List.init d coord_row in
      feasible_eq ~eq ~nvars:k <> None
    end

(* Memoized front end: membership queries repeat heavily across
   processes once the h_i[t] polytopes coincide (and across the prune
   passes of identical Minkowski reductions). Keyed on the full
   (column set, query point) pair; bounded, domain-safe, and
   transparent — a hit returns the certified answer for a structurally
   equal instance. *)
let memo_key_hash (pts, p) =
  List.fold_left
    (fun acc v -> ((acc * 1000003) + Vec.hash v) land max_int)
    (Vec.hash p) pts

let memo_key_equal (pts1, p1) (pts2, p2) =
  Vec.equal p1 p2
  && List.compare_lengths pts1 pts2 = 0
  && List.for_all2 Vec.equal pts1 pts2

let memo : (Vec.t list * Vec.t, bool) Parallel.Memo.t =
  Parallel.Memo.create ~name:"lp-membership" ~max_size:8192 ~hash:memo_key_hash
    ~equal:memo_key_equal ()

let in_convex_hull pts p =
  Parallel.Memo.find_or_add memo (pts, p)
    (fun () ->
       Obs.Prof.with_span "geometry.lp" (fun () ->
           in_convex_hull_uncached pts p))
