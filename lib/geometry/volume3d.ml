(* Exact volume of a 3-d convex polytope in V-representation, by the
   divergence theorem: orient every facet outward, fan-triangulate it,
   and sum the signed tetrahedron volumes det(w0, wi, wi+1)/6. The sum
   telescopes to the enclosed volume regardless of where the origin
   lies. Degenerate (lower-dimensional) polytopes have volume 0. *)

module Q = Numeric.Q
module Filter = Numeric.Filter

let det3 a b c =
  let open Q in
  let m i j = (match i with 0 -> a | 1 -> b | _ -> c).(j) in
  sub
    (add
       (mul (m 0 0) (sub (mul (m 1 1) (m 2 2)) (mul (m 1 2) (m 2 1))))
       (mul (m 0 2) (sub (mul (m 1 0) (m 2 1)) (mul (m 1 1) (m 2 0)))))
    (mul (m 0 1) (sub (mul (m 1 0) (m 2 2)) (mul (m 1 2) (m 2 0))))

let cross3 u v =
  Vec.make
    [ Q.sub (Q.mul u.(1) v.(2)) (Q.mul u.(2) v.(1));
      Q.sub (Q.mul u.(2) v.(0)) (Q.mul u.(0) v.(2));
      Q.sub (Q.mul u.(0) v.(1)) (Q.mul u.(1) v.(0)) ]

(* Order the vertices of a (planar, convex-position) facet cyclically,
   counter-clockwise w.r.t. the outward normal [nrm]. *)
let order_facet nrm verts =
  match verts with
  | [] | [_] | [_; _] -> None (* degenerate facet: contributes nothing *)
  | w0 :: _ ->
    (* Build 2-d coordinates in the facet plane from two independent
       edge directions; convex position and cyclic order survive the
       affine map. *)
    let dirs = List.map (fun w -> Vec.sub w w0) verts in
    let nonzero = List.filter (fun v -> not (Vec.equal v (Vec.zero 3))) dirs in
    (match nonzero with
     | [] -> None
     | e1 :: rest ->
       let e2_opt =
         List.find_opt
           (fun v -> not (Vec.equal (cross3 e1 v) (Vec.zero 3)))
           rest
       in
       (match e2_opt with
        | None -> None
        | Some e2 ->
          let coord w =
            let d = Vec.sub w w0 in
            Vec.make [Vec.dot d e1; Vec.dot d e2]
          in
          let pairs = List.map (fun w -> (coord w, w)) verts in
          let poly2 = Hull2d.hull (List.map fst pairs) in
          let back c =
            match List.find_opt (fun (c', _) -> Vec.equal c c') pairs with
            | Some (_, w) -> w
            | None -> assert false
          in
          let ring = List.map back poly2 in
          (* Flip if the ring's orientation disagrees with the outward
             normal. *)
          (match ring with
           | a :: b :: c :: _ ->
             let o = Vec.dot (cross3 (Vec.sub b a) (Vec.sub c a)) nrm in
             if Q.sign o >= 0 then Some ring else Some (List.rev ring)
           | _ -> None)))

(* Sum of signed facet fans over integer-scaled vertices and facet
   planes valid in the scaled frame. The sign tests and the
   orientation check are invariant under positive scaling of (a, b),
   so primitive integer planes and normalized ones answer alike. *)
let six_volume verts facets =
  let facet_vol (a, b) =
    (* Filtered tight test: the interval refutes the off-facet
       majority without exact dots. No extreme-point extraction
       here — [order_facet]'s in-plane [Hull2d.hull] already
       drops non-vertex points of the facet polygon. *)
    let on_facet =
      List.filter (fun v -> Filter.sign_of_dot_minus a v b = 0) verts
    in
    match order_facet a on_facet with
    | None -> Q.zero
    | Some (w0 :: rest) ->
      let rec fan acc = function
        | wi :: (wj :: _ as tl) ->
          fan (Q.add acc (det3 w0 wi wj)) tl
        | _ -> acc
      in
      fan Q.zero rest
    | Some [] -> Q.zero
  in
  List.fold_left (fun acc f -> Q.add acc (facet_vol f)) Q.zero facets

let unscale six_v l =
  let l3 = Numeric.Bigint.mul l (Numeric.Bigint.mul l l) in
  Q.div six_v (Q.mul (Q.of_int 6) (Q.of_bigint l3))

let volume verts0 =
  match verts0 with
  | [] -> Q.zero
  | v0 :: _ ->
    if Vec.dim v0 <> 3 then invalid_arg "Volume3d.volume: dimension must be 3"
    else begin
      (* Work on the integer grid: vol(L·P) = L³·vol(P), and every
         inner operation (facet dots, in-plane coordinates, the det3
         fan) becomes a gcd-free integer Q operation. The engine dual
         (arena-shared with the round's extreme-point queries) supplies
         scaled vertices and facet planes directly; only
         lower-dimensional or aborted inputs rebuild an H-rep. *)
      match Hullnd.dual_3d (Hullnd.dedupe_points verts0) with
      | Some d ->
        unscale
          (six_volume d.Poly_engine.spts d.Poly_engine.facets)
          d.Poly_engine.scale
      | None ->
        let verts, l = Numeric.Grid.scale_points verts0 in
        let h = Hullnd.of_points ~dim:3 verts in
        if h.Hullnd.eqs <> [] then Q.zero (* lower-dimensional *)
        else unscale (six_volume verts h.Hullnd.ineqs) l
    end
