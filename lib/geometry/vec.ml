module Q = Numeric.Q

type t = Q.t array

let dim = Array.length

let make coords = Array.of_list coords
let of_ints ns = Array.of_list (List.map Q.of_int ns)

let of_floats fs =
  Array.of_list (List.map (fun f -> Q.of_string (Printf.sprintf "%.12g" f)) fs)

let zero d = Array.make d Q.zero

let equal a b =
  dim a = dim b && Array.for_all2 Q.equal a b

let compare a b =
  let da = dim a and db = dim b in
  if da <> db then Stdlib.compare da db
  else begin
    let rec go i =
      if i = da then 0
      else
        let c = Q.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let hash a =
  Array.fold_left (fun acc q -> ((acc * 131) + Q.hash q) land max_int) (dim a) a

let map2 f a b =
  if dim a <> dim b then invalid_arg "Vec: dimension mismatch"
  else Array.init (dim a) (fun i -> f a.(i) b.(i))

let add a b = map2 Q.add a b
let sub a b = map2 Q.sub a b
let neg a = Array.map Q.neg a
let scale c a = Array.map (Q.mul c) a

let dot a b =
  if dim a <> dim b then invalid_arg "Vec.dot: dimension mismatch"
  else begin
    let acc = ref Q.zero in
    for i = 0 to dim a - 1 do acc := Q.add !acc (Q.mul a.(i) b.(i)) done;
    !acc
  end

let norm2 a = dot a a
let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (Q.to_float (dist2 a b))

let lincomb terms =
  match terms with
  | [] -> invalid_arg "Vec.lincomb: empty"
  | (c0, p0) :: rest ->
    List.fold_left (fun acc (c, p) -> add acc (scale c p)) (scale c0 p0) rest

let average pts =
  match pts with
  | [] -> invalid_arg "Vec.average: empty"
  | p0 :: rest ->
    let n = Q.of_int (List.length pts) in
    scale (Q.inv n) (List.fold_left add p0 rest)

let to_floats a = Array.map Q.to_float a

let to_string a =
  "(" ^ String.concat ", " (Array.to_list (Array.map Q.to_string a)) ^ ")"

let pp fmt a = Format.pp_print_string fmt (to_string a)
