module Q = Numeric.Q
module Combin = Numeric.Combin
module Filter = Numeric.Filter

let project_point_segment p a b =
  let e = Vec.sub b a in
  let ee = Vec.norm2 e in
  let foot =
    if Q.is_zero ee then a
    else begin
      let t = Q.div (Vec.dot (Vec.sub p a) e) ee in
      let t = Q.max Q.zero (Q.min Q.one t) in
      Vec.add a (Vec.scale t e)
    end
  in
  (Vec.dist2 p foot, foot)

let dist2_point_segment p a b = fst (project_point_segment p a b)

(* Exact projection of [p] onto the affine hull of [s0 :: rest]:
   minimize |p - s0 - D c|² by the normal equations DᵀD c = Dᵀ(p - s0).
   Accepted only when the projection's barycentric coordinates are all
   non-negative (it lands inside the simplex spanned by the subset). *)
let project_to_simplex p subset =
  match subset with
  | [] -> None
  | [s] -> Some (Vec.dist2 p s, s)
  | s0 :: rest ->
    let dirs = List.map (fun s -> Vec.sub s s0) rest in
    let k = List.length dirs in
    let darr = Array.of_list dirs in
    let gram =
      Array.init k (fun i -> Array.init k (fun j -> Vec.dot darr.(i) darr.(j)))
    in
    let rhs = Array.map (fun d -> Vec.dot d (Vec.sub p s0)) darr in
    (match Linsys.solve gram rhs with
     | None -> None (* affinely dependent subset; a smaller subset covers it *)
     | Some c ->
       let sum = Array.fold_left Q.add Q.zero c in
       if Array.exists (fun ci -> Q.sign ci < 0) c
          || Filter.compare sum Q.one > 0
       then None
       else begin
         let proj =
           Array.to_list c
           |> List.mapi (fun i ci -> Vec.scale ci darr.(i))
           |> List.fold_left Vec.add s0
         in
         Some (Vec.dist2 p proj, proj)
       end)

let project_poly2d p poly =
  match poly with
  | [] -> invalid_arg "Distance: empty polytope"
  | [a] -> (Vec.dist2 p a, a)
  | [a; b] -> project_point_segment p a b
  | _ ->
    if Hull2d.contains poly p then (Q.zero, p)
    else begin
      let arr = Array.of_list poly in
      let n = Array.length arr in
      let best = ref (project_point_segment p arr.(0) arr.(1)) in
      for i = 1 to n - 1 do
        let cand = project_point_segment p arr.(i) arr.((i + 1) mod n) in
        if Filter.compare (fst cand) (fst !best) < 0 then best := cand
      done;
      !best
    end

let project_hull_nd ~dim p pts =
  (* The projection lies in the relative interior of some face spanned
     by at most dim+1 affinely independent vertices; every candidate
     subset yields an upper bound and the true face is enumerated, so
     the minimum is exact. *)
  let verts = Hullnd.extreme_points pts in
  if List.exists (fun v -> Vec.equal v p) verts then (Q.zero, p)
  else if Lp.in_convex_hull verts p then (Q.zero, p)
  else begin
    let best = ref None in
    let consider cand =
      match !best, cand with
      | None, Some c -> best := Some c
      | Some (b, _), Some ((d2, _) as c) ->
        if Filter.compare d2 b < 0 then best := Some c
      | _, None -> ()
    in
    let max_size = Stdlib.min (dim + 1) (List.length verts) in
    for k = 1 to max_size do
      List.iter
        (fun subset -> consider (project_to_simplex p subset))
        (Combin.subsets_of_size k verts)
    done;
    match !best with
    | Some c -> c
    | None -> assert false (* singleton subsets always yield a candidate *)
  end

let project_point_hull ~dim p pts =
  match pts with
  | [] -> invalid_arg "Distance.project_point_hull: empty"
  | _ ->
    if dim = 1 then begin
      let xs = List.map (fun v -> v.(0)) pts in
      let lo = List.fold_left Q.min (List.hd xs) xs in
      let hi = List.fold_left Q.max (List.hd xs) xs in
      let x = p.(0) in
      if Q.lt x lo then (Q.square (Q.sub lo x), Vec.make [lo])
      else if Q.gt x hi then (Q.square (Q.sub x hi), Vec.make [hi])
      else (Q.zero, p)
    end
    else if dim = 2 then project_poly2d p (Hull2d.hull pts)
    else project_hull_nd ~dim p pts

let dist2_point_hull ~dim p pts = fst (project_point_hull ~dim p pts)

let directed2 ~dim from_pts to_pts =
  (* Reduce the target to its extreme points once — every projection
     below would otherwise redo the extraction (memoized, but the hit
     still hashes the whole vertex list). Same hull, same distances. *)
  let to_pts = if dim >= 3 then Hullnd.extreme_points to_pts else to_pts in
  List.fold_left
    (fun acc v -> Q.max acc (dist2_point_hull ~dim v to_pts))
    Q.zero from_pts

let hausdorff2 ~dim p q =
  match p, q with
  | [], _ | _, [] -> invalid_arg "Distance.hausdorff2: empty polytope"
  | _ -> Q.max (directed2 ~dim p q) (directed2 ~dim q p)

let hausdorff ~dim p q = sqrt (Q.to_float (hausdorff2 ~dim p q))
