(** Convex polytopes in arbitrary dimension, via exact H-representations.

    This module backs the general-dimension code paths of {!Polytope}
    (dimensions other than 1 and 2, and anything the fast planar paths
    cannot express). Everything is brute force over exact rationals:
    facet enumeration tries every d-subset of points, vertex enumeration
    tries every complementary subset of constraints. Instances in this
    project are small (the paper's resilience bound [n >= (d+2)f+1]
    keeps point sets near a dozen), so clarity wins over asymptotics.

    Lower-dimensional polytopes (points, segments, flat polygons
    embedded in d-space) are fully supported: the H-representation
    carries the affine-hull equalities alongside facet inequalities. *)

module Q = Numeric.Q

type hrep = {
  dim : int;                       (** ambient dimension *)
  eqs : (Vec.t * Q.t) list;        (** [n·x = c] affine-hull constraints *)
  ineqs : (Vec.t * Q.t) list;      (** [n·x <= c] facet constraints *)
}

val of_points : dim:int -> Vec.t list -> hrep
(** H-representation of the convex hull of a non-empty point multiset.
    @raise Invalid_argument on an empty list. *)

val combine : hrep list -> hrep
(** H-representation of the intersection (constraint union), with
    duplicate constraints removed. All inputs must share [dim]. *)

val vertices : hrep -> Vec.t list
(** All extreme points of the (necessarily bounded, in this project)
    polytope; the empty list iff the polytope is empty. Results are
    deduplicated but not pruned — combine with {!extreme_points} for a
    canonical V-representation. *)

val extreme_points : Vec.t list -> Vec.t list
(** Subset of points that are vertices of the hull of the input,
    sorted lexicographically. Full-dimensional 3-d inputs go through
    the incremental hull plus a tight-constraint rank test; everything
    else falls back to {!extreme_points_lp}. *)

val mem_hrep : hrep -> Vec.t -> bool
(** Exact membership test against an H-representation. *)

val dedupe_points : Vec.t list -> Vec.t list
(** Sort lexicographically and drop duplicates — the canonical point
    order used throughout this module (exposed for cache keys). *)

val dual_3d : Vec.t list -> Poly_engine.dual option
(** Persistent dual (V-rep + integer H-rep) of the hull of a deduped,
    sorted, full-dimensional 3-d point list, built through
    {!Poly_engine} per the [CHC_POLY] mode: the certified float-guided
    engine with arena/warm-start reuse under [incremental], this
    module's exact beneath–beyond under [rebuild] (also the fallback
    when certification fails). The facet set is the canonical primitive
    plane set either way. [None] when the input is lower-dimensional or
    the exact construction aborts. *)

(** {1 Internals exposed for cross-checking}

    The optimized paths below are property-tested against their
    brute-force counterparts; both sides stay exported so the test
    suite (and the bench harness's before/after entries) can run
    either one explicitly. *)

val facets_incremental_3d : Vec.t list -> (Vec.t * Q.t) list option
(** Beneath-beyond facet enumeration for a full-dimensional point set
    in 3-space; input need not be deduplicated. [None] when the set is
    not full-dimensional or hits a degenerate horizon (callers fall
    back to {!enumerate_facets_brute}). Output equals the brute-force
    facet list exactly (same normalization, same order). *)

val enumerate_facets_brute : dim:int -> Vec.t list -> (Vec.t * Q.t) list
(** Brute-force facet sweep over all [dim]-subsets of the (deduplicated)
    input — the pre-optimization reference path, parallelized over the
    domain pool. Input must be full-dimensional in [dim]-space. *)

val extreme_points_lp : Vec.t list -> Vec.t list
(** Support-filter + per-point LP pruning — the reference extreme-point
    path used for non-3-d inputs and as the oracle in tests. *)

(* Testing hook for the static float visibility screen. *)
module Dev : sig
  val screen : Vec.t -> Q.t -> Vec.t -> bool option
end
