(* The staged scaled-integer kernel (Numeric.Grid) against its
   escalation contract: every stage yields the exact predicate answer
   or escalates — at the ±1-ULP edges of the static width bounds the
   ladder must step up (single-word → double-word → mantissa →
   residue → rational fallback), never wrap.

   The true-zero battery drives the certifying path end to end:
   collinear/coplanar configurations on an integer grid must be
   recognized as exact zeros by the residue certificate with zero
   exact-rational fallbacks. *)

module Q = Numeric.Q
module B = Numeric.Bigint
module K = Numeric.Kernel
module Grid = Numeric.Grid
module Filter = Numeric.Filter

let qi = Q.of_int
let qb = B.of_int

(* sign (a·p - b) by plain rational arithmetic, the oracle. *)
let exact_sign a p b =
  let dot =
    Array.to_seq (Array.map2 Q.mul a p) |> Seq.fold_left Q.add Q.zero
  in
  K.with_mode K.Exact (fun () -> Q.sign (Q.sub dot b))

(* Fresh rationals per call: the per-Q caches (iv/rs/sc) must never
   leak state between engineered boundary cases. *)
let arr xs = Array.map qi xs

let check_dot name a p b =
  let want = exact_sign a p b in
  match Grid.dot_minus_sign a p b with
  | Some got ->
    Alcotest.(check int) (name ^ ": staged sign = exact sign") want got
  | None -> () (* escalated to the rational fallback: always sound *)

(* --- static bound table ------------------------------------------- *)

let test_bounds_table () =
  (* dot_bound = w + (2w + 2) + ceil_log2 (d+1); find the widths where
     the int1 and dword gates flip and check both sides. *)
  let flips gate =
    let rec go w =
      if w > 64 then Alcotest.fail "gate never flips"
      else if not (gate (Grid.bounds_for ~dim:3 ~width:w)) then w
      else go (w + 1)
    in
    go 1
  in
  let w_int1 = flips (fun b -> b.Grid.int1) in
  let w_dword = flips (fun b -> b.Grid.dword) in
  let at w = Grid.bounds_for ~dim:3 ~width:w in
  Alcotest.(check bool) "int1 holds below flip" true (at (w_int1 - 1)).Grid.int1;
  Alcotest.(check bool) "int1 gone at flip" false (at w_int1).Grid.int1;
  Alcotest.(check bool) "dword still holds at int1 flip" true
    (at w_int1).Grid.dword;
  Alcotest.(check bool) "dword holds below flip" true
    (at (w_dword - 1)).Grid.dword;
  Alcotest.(check bool) "dword gone at flip" false (at w_dword).Grid.dword;
  (* The bound value itself brackets the thresholds by exactly one. *)
  Alcotest.(check bool) "int1 edge <= 61" true
    ((at (w_int1 - 1)).Grid.dot_bound <= Grid.int1_max_bits);
  Alcotest.(check bool) "dword edge <= 123" true
    ((at (w_dword - 1)).Grid.dot_bound <= Grid.dword_max_bits);
  (* Residue planning: enough primes for the bound, monotone in it. *)
  let b = at 61 in
  Alcotest.(check bool) "residue primes cover the bound" true
    (b.Grid.residue_primes * Grid.prime_bits >= b.Grid.dot_bound);
  Alcotest.(check bool) "capacity covers protocol widths" true
    (Grid.capacity_bits >= 1536)

(* --- ±1-ULP escalation at the single-word boundary ----------------- *)

let test_int1_edge () =
  (* d=1, widths 30+30: bound = 61 = int1_max_bits — the last case the
     single-word stage may take. True values ±1 and 0. *)
  let m = (1 lsl 30) - 1 in
  let prod = m * m in
  List.iter
    (fun delta ->
       check_dot "int1 edge" (arr [| m |]) (arr [| m |]) (qi (prod - delta)))
    [ -1; 0; 1 ];
  (* One bit wider (31+31 → bound 63): past the single-word gate. A
     wrapped native evaluation would mis-sign these; the double-word
     stage must not. *)
  let m = (1 lsl 31) - 1 in
  let a = arr [| m; m; m |] and p = arr [| m; m; m |] in
  let s = 3 * (m * m) in
  (* 3·(2^31-1)^2 ≈ 2^63.6 overflows a native accumulator. *)
  List.iter
    (fun delta -> check_dot "int1+1 escalates" a p (qi (s - delta)))
    [ -1; 0; 1 ]

(* --- ±1-ULP escalation at the double-word boundary ----------------- *)

let test_dword_edge () =
  (* d=2, widths 60+60: bound = 122 ≤ 123 — the double-word stage's
     last case. The dot cancels internally (m·m − m·(m−1) = m), so
     every operand stays single-word while the 120-bit products are
     past any native or float resolution; ±1 perturbations of the
     offset flip the exact sign. *)
  let edge_case bits =
    let mb = B.sub (B.shift_left B.one bits) B.one in
    let m = Q.of_bigint mb in
    let a = [| m; m |] in
    let p = [| m; Q.neg (Q.of_bigint (B.sub mb B.one)) |] in
    (a, p, m) (* a·p = m² − m(m−1) = m exactly *)
  in
  let a, p, s = edge_case 60 in
  List.iter
    (fun delta ->
       check_dot "dword edge" a p (Q.add s (qi delta));
       (* the staged answer must exist here: the gate admits bound 122 *)
       Alcotest.(check bool) "dword edge decides" true
         (Grid.dot_minus_sign a p (Q.add s (qi delta)) <> None))
    [ -1; 0; 1 ];
  (* One bit wider (61+61 → bound 124): past the double-word gate. The
     mantissa interval cannot separate ±1 from 0 at 124 bits, so
     nonzero perturbations either escalate to the rational fallback
     (None) or answer exactly; a true zero must be certified by the
     residue stage. A wrapped double-word evaluation would instead
     mis-sign these. *)
  let a, p, s = edge_case 61 in
  List.iter
    (fun delta -> check_dot "dword+1 escalates" a p (Q.add s (qi delta)))
    [ -1; 1 ];
  Alcotest.(check (option int)) "dword+1 true zero certified" (Some 0)
    (Grid.dot_minus_sign a p s)

(* --- true-zero battery: collinear / coplanar, zero fallbacks ------- *)

let gen_wide_int =
  let open QCheck.Gen in
  let* bits = 10 -- 400 in
  let* neg = bool in
  let rec go acc b st =
    if b <= 0 then acc
    else go (B.add (B.mul_int acc (1 lsl 20)) (qb (int_bound (1 lsl 20) st))) (b - 20) st
  in
  let* v = fun st -> go B.one bits st in
  return (Q.of_bigint (if neg then B.neg v else v))

let gen_vec3 = QCheck.Gen.(map Array.of_list (list_size (return 3) gen_wide_int))

let test_true_zero_battery () =
  let st = Random.State.make [| 1234 |] in
  K.with_mode K.Staged (fun () ->
      K.reset_stats ();
      for _ = 1 to 200 do
        (* Coplanar: plane through p,q,r; the point p + (q-p) + (r-p)
           lies on it exactly. All integers, exactly the grid shape. *)
        let p = gen_vec3 st and q = gen_vec3 st and r = gen_vec3 st in
        let sub u v = Array.map2 Q.sub u v in
        let add u v = Array.map2 Q.add u v in
        let u = sub q p and v = sub r p in
        let nrm =
          [| Q.sub (Q.mul u.(1) v.(2)) (Q.mul u.(2) v.(1));
             Q.sub (Q.mul u.(2) v.(0)) (Q.mul u.(0) v.(2));
             Q.sub (Q.mul u.(0) v.(1)) (Q.mul u.(1) v.(0)) |]
        in
        let b =
          Array.to_seq (Array.map2 Q.mul nrm p)
          |> Seq.fold_left Q.add Q.zero
        in
        let w = add p (add u v) in
        Alcotest.(check int) "coplanar point is on the plane" 0
          (Filter.sign_of_dot_minus nrm w b);
        (* Collinear: p, q and p + 3(q - p) under the origin cross. *)
        let p2 = [| p.(0); p.(1) |] and q2 = [| q.(0); q.(1) |] in
        let d2 = Array.map2 Q.sub q2 p2 in
        let c2 = Array.map2 (fun a d -> Q.add a (Q.mul (qi 3) d)) p2 d2 in
        Alcotest.(check int) "collinear triple" 0
          (Filter.sign_cross2 p2 q2 c2)
      done;
      let t = K.totals () in
      Alcotest.(check int)
        "true zeros certified with zero exact fallbacks" 0 t.K.fallbacks)

(* --- cache rings: eviction under tiny capacities stays sound ------- *)

let test_ring_eviction () =
  let saved_enc = 65536 and saved_rs = 4096 in
  Fun.protect
    ~finally:(fun () ->
        Q.set_enclosure_cache_capacity saved_enc;
        Grid.set_residue_cache_capacity saved_rs)
    (fun () ->
       Q.set_enclosure_cache_capacity 8;
       Grid.set_residue_cache_capacity 8;
       let ins0, ev0 = Grid.residue_cache_stats () in
       let st = Random.State.make [| 99 |] in
       K.with_mode K.Staged (fun () ->
           for _ = 1 to 50 do
             (* Far more than 8 live rationals: the rings must evict,
                and every predicate answer must stay exact. *)
             let a = gen_vec3 st and p = gen_vec3 st in
             let b = gen_wide_int st in
             let want = exact_sign a p b in
             Alcotest.(check int) "sign under eviction pressure" want
               (Filter.sign_of_dot_minus a p b);
             (* true zero too, so the residue ring also cycles *)
             let dot =
               Array.to_seq (Array.map2 Q.mul a p)
               |> Seq.fold_left Q.add Q.zero
             in
             Alcotest.(check int) "zero under eviction pressure" 0
               (Filter.sign_of_dot_minus a p dot)
           done);
       let ins1, ev1 = Grid.residue_cache_stats () in
       Alcotest.(check bool) "residue ring inserted" true (ins1 > ins0);
       Alcotest.(check bool) "residue ring evicted" true (ev1 > ev0))

let suite =
  [ ( "grid-staged",
      [ Alcotest.test_case "static bound table" `Quick test_bounds_table;
        Alcotest.test_case "int1 boundary escalates" `Quick test_int1_edge;
        Alcotest.test_case "dword boundary escalates" `Quick test_dword_edge;
        Alcotest.test_case "true-zero battery, no fallbacks" `Quick
          test_true_zero_battery;
        Alcotest.test_case "ring eviction stays sound" `Quick
          test_ring_eviction ] ) ]
