let () =
  Alcotest.run "chc"
    (Test_bigint.suite @ Test_q.suite @ Test_vec.suite @ Test_linsys.suite
     @ Test_lp.suite @ Test_hull2d.suite @ Test_hullnd.suite
     @ Test_polytope.suite @ Test_distance.suite @ Test_tverberg.suite
     @ Test_runtime.suite @ Test_transport.suite @ Test_stable_vector.suite
     @ Test_bounds.suite
     @ Test_cc.suite @ Test_analysis.suite @ Test_vector_consensus.suite
     @ Test_optimize.suite @ Test_ablation.suite @ Test_codec.suite @ Test_combin.suite @ Test_viz.suite
     @ Test_parallel.suite @ Test_obs.suite @ Test_fuzz.suite
     @ Test_filter.suite @ Test_poly_engine.suite @ Test_grid.suite
     @ Test_wal.suite @ Test_serve.suite)
