(* Tests for exact rationals: field laws, ordering, parsing. *)

module Q = Numeric.Q
module B = Numeric.Bigint

let q = Alcotest.testable Q.pp Q.equal

let gen_q =
  let open QCheck.Gen in
  let* n = -1000000 -- 1000000 in
  let* d = 1 -- 1000000 in
  return (Q.of_ints n d)

let arb_q = QCheck.make ~print:Q.to_string gen_q

let arb_q_nonzero =
  QCheck.make ~print:Q.to_string
    (QCheck.Gen.map (fun x -> if Q.is_zero x then Q.one else x) gen_q)

(* Pairs biased toward the add/mul fast paths: integers (den = 1),
   one-integer mixes, and shared denominators, alongside generic
   rationals — so every branch of the O(1) shortcuts is exercised
   against the textbook cross-multiply-then-normalize reference. *)
let gen_q_fastpath_pair =
  let open QCheck.Gen in
  let* a = gen_q in
  let* b = gen_q in
  let* k = -1000 -- 1000 in
  oneof
    [ return (a, b);
      return (Q.of_int k, b);
      return (a, Q.of_int k);
      return (Q.of_int k, Q.of_int (k - 7));
      return (a, Q.make (B.of_int k) a.Q.den);
      return (a, Q.neg a) ]

let arb_q_fastpath_pair =
  QCheck.make
    ~print:(fun (a, b) -> Q.to_string a ^ ", " ^ Q.to_string b)
    gen_q_fastpath_pair

let slow_add a b =
  Q.make
    (B.add (B.mul a.Q.num b.Q.den) (B.mul b.Q.num a.Q.den))
    (B.mul a.Q.den b.Q.den)

let slow_mul a b = Q.make (B.mul a.Q.num b.Q.num) (B.mul a.Q.den b.Q.den)

let count = 500
let prop name arb f = QCheck.Test.make ~count ~name arb f
let qtest = QCheck_alcotest.to_alcotest

let test_normalization () =
  Alcotest.check q "2/4 = 1/2" Q.half (Q.of_ints 2 4);
  Alcotest.check q "-2/-4 = 1/2" Q.half (Q.of_ints (-2) (-4));
  Alcotest.check q "3/-6 = -1/2" (Q.of_ints (-1) 2) (Q.of_ints 3 (-6));
  Alcotest.check q "0/7 = 0" Q.zero (Q.of_ints 0 7);
  let x = Q.of_ints 6 4 in
  Alcotest.(check string) "normalized repr" "3/2" (Q.to_string x)

let test_parse () =
  Alcotest.check q "parse a/b" (Q.of_ints 22 7) (Q.of_string "22/7");
  Alcotest.check q "parse int" (Q.of_int (-5)) (Q.of_string "-5");
  Alcotest.check q "parse decimal" (Q.of_ints 5 4) (Q.of_string "1.25");
  Alcotest.check q "parse neg decimal" (Q.of_ints (-51) 4) (Q.of_string "-12.75");
  Alcotest.check q "parse 0.5" Q.half (Q.of_string "0.5")

let test_arith () =
  Alcotest.check q "1/2 + 1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  Alcotest.check q "1/2 * 2/3" (Q.of_ints 1 3) (Q.mul Q.half (Q.of_ints 2 3));
  Alcotest.check q "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div Q.half (Q.of_ints 3 4));
  Alcotest.check q "avg" (Q.of_ints 1 2)
    (Q.average [Q.zero; Q.one; Q.of_ints 1 4; Q.of_ints 3 4])

let test_pow () =
  Alcotest.check q "(2/3)^3" (Q.of_ints 8 27) (Q.pow (Q.of_ints 2 3) 3);
  Alcotest.check q "(2/3)^-2" (Q.of_ints 9 4) (Q.pow (Q.of_ints 2 3) (-2));
  Alcotest.check q "x^0" Q.one (Q.pow (Q.of_ints 17 5) 0)

let test_to_float () =
  Alcotest.(check (float 1e-12)) "1/4" 0.25 (Q.to_float (Q.of_ints 1 4));
  Alcotest.(check (float 1e-12)) "-7/2" (-3.5) (Q.to_float (Q.of_ints (-7) 2))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(lt (of_ints 1 3) half);
  Alcotest.(check bool) "-1 < 0" true Q.(lt minus_one zero);
  Alcotest.(check int) "eq" 0 (Q.compare (Q.of_ints 2 4) Q.half)

(* Regression: [Q.hash] must depend only on the normalized value, not
   the arithmetic path that produced it — the geometry memo tables key
   on it, so a representation-sensitive hash silently turns cache hits
   into misses (and did, before the hash was routed through Bigint's
   canonical limb fold). *)
let test_hash_canonical () =
  let h = Q.hash in
  Alcotest.(check int) "2/4 = 1/2" (h Q.half) (h (Q.of_ints 2 4));
  Alcotest.(check int) "1/6 + 1/3 = 1/2" (h Q.half)
    (h (Q.add (Q.of_ints 1 6) (Q.of_ints 1 3)));
  Alcotest.(check int) "2/3 * 3/4 = 1/2" (h Q.half)
    (h (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 4)));
  (* Cross the Small/Big representation boundary: 2^62 overflows the
     immediate arm, and the product path reaches it through Big
     intermediates. *)
  let big = Q.of_string "4611686018427387904/3" in
  Alcotest.(check int) "big product = parsed big"
    (h (Q.of_string "4611686018427387904"))
    (h (Q.mul big (Q.of_int 3)));
  Alcotest.(check int) "big cancellation = one" (h Q.one)
    (h (Q.mul big (Q.inv big)))

let props =
  [ prop "add comm" (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a));
    prop "mul assoc" (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) -> Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c)));
    prop "distributivity" (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) ->
         Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "additive inverse" arb_q
      (fun a -> Q.is_zero (Q.add a (Q.neg a)));
    prop "multiplicative inverse" arb_q_nonzero
      (fun a -> Q.equal Q.one (Q.mul a (Q.inv a)));
    prop "div then mul" (QCheck.pair arb_q arb_q_nonzero)
      (fun (a, b) -> Q.equal a (Q.mul (Q.div a b) b));
    prop "normalized invariant" (QCheck.pair arb_q arb_q)
      (fun (a, b) ->
         let c = Q.add a b in
         Bigint_check.normalized (c.Q.num) (c.Q.den));
    prop "order total" (QCheck.pair arb_q arb_q)
      (fun (a, b) -> Q.leq a b || Q.leq b a);
    prop "order translation-invariant" (QCheck.triple arb_q arb_q arb_q)
      (fun (a, b, c) -> Q.leq a b = Q.leq (Q.add a c) (Q.add b c));
    prop "to_float consistent with compare" (QCheck.pair arb_q arb_q)
      (fun (a, b) ->
         (* floats may tie, but strict rational order can't invert floats *)
         if Q.lt a b then Q.to_float a <= Q.to_float b else true);
    prop "string round trip" arb_q
      (fun a -> Q.equal a (Q.of_string (Q.to_string a)));
    prop "add fast path = reference" arb_q_fastpath_pair
      (fun (a, b) ->
         let c = Q.add a b in
         Q.equal c (slow_add a b)
         && Bigint_check.normalized c.Q.num c.Q.den);
    prop "mul fast path = reference" arb_q_fastpath_pair
      (fun (a, b) ->
         let c = Q.mul a b in
         Q.equal c (slow_mul a b)
         && Bigint_check.normalized c.Q.num c.Q.den);
    prop "hash is path-independent" arb_q_fastpath_pair
      (fun (a, b) ->
         Q.hash (Q.add a b) = Q.hash (slow_add a b)
         && Q.hash (Q.mul a b) = Q.hash (slow_mul a b));
  ]

let suite =
  [ ( "rational",
      [ Alcotest.test_case "normalization" `Quick test_normalization;
        Alcotest.test_case "parse" `Quick test_parse;
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "to_float" `Quick test_to_float;
        Alcotest.test_case "compare" `Quick test_compare;
        Alcotest.test_case "hash canonical form" `Quick test_hash_canonical ]
      @ List.map qtest props ) ]
