(* The incremental polytope engine (Geometry.Poly_engine) against the
   rebuild oracle: every geometric quantity the protocol consumes —
   extreme points, facet duals, intersections, volumes, support
   values, Hausdorff distances — must be identical under both engines,
   on random rationals and on adversarial near-degenerate inputs
   (±1/2^200 perturbations as in test_filter) engineered to defeat the
   float-guided fast paths so the certification gauntlet and exact
   fallbacks are what keeps the answers equal.

   The end-to-end half mirrors test_filter's transcript invariance: a
   full checked d=3 execution must produce byte-identical transcripts
   and equal decision polytopes under both engines. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module PE = Geometry.Poly_engine
module Hullnd = Geometry.Hullnd
module Polytope = Geometry.Polytope

(* The rebuild leg is the oracle; the incremental leg runs under a
   fresh handle so no warm-start state leaks across trials. *)
let rebuild f = PE.with_mode PE.Rebuild f

let incremental f =
  PE.with_mode PE.Incremental (fun () ->
      PE.with_handle (PE.create_handle ()) f)

(* 1/2^200: invisible to doubles, so perturbed coordinates are
   indistinguishable from unperturbed ones in the float seed — only
   exact certification can keep the engines in agreement. *)
let tiny = Q.pow Q.half 200

let gen_adv_coord =
  let open QCheck.Gen in
  let* base = Gen.gen_small_q in
  oneofl [ base; Q.add base tiny; Q.sub base tiny; Q.zero ]

let gen_adv_vec =
  QCheck.Gen.map Array.of_list
    (QCheck.Gen.list_size (QCheck.Gen.return 3) gen_adv_coord)

let gen_adv_points =
  let open QCheck.Gen in
  let* n = 4 -- 9 in
  list_size (return n) gen_adv_vec

let arb_adv_points = QCheck.make ~print:Gen.print_points gen_adv_points

let arb_adv_two =
  QCheck.make
    ~print:(fun (a, b) -> Gen.print_points a ^ " | " ^ Gen.print_points b)
    QCheck.Gen.(pair gen_adv_points gen_adv_points)

let arb_adv_dir =
  QCheck.make
    ~print:(fun (pts, d) -> Gen.print_points pts ^ " dir " ^ Vec.to_string d)
    QCheck.Gen.(pair gen_adv_points gen_adv_vec)

let same_verts a b =
  List.equal Vec.equal (List.sort Vec.compare a) (List.sort Vec.compare b)

(* Delta ops canonicalize (dedupe) their point lists; a cold dual of a
   raw list with duplicates keeps them. Compare point sets. *)
let same_pointset a b =
  same_verts (PE.dedupe_points a) (PE.dedupe_points b)

let same_facets a b =
  List.equal
    (fun x y -> PE.compare_constraint x y = 0)
    (List.sort PE.compare_constraint a)
    (List.sort PE.compare_constraint b)

(* Memo tables are bypassed inside the cross-engine properties so the
   incremental leg cannot be served values the rebuild leg cached (or
   vice versa) — each leg computes from scratch. *)
let props =
  [ Gen.prop ~count:40 "extreme points: incremental = rebuild" arb_adv_points
      (fun pts ->
         Parallel.Memo.with_bypass (fun () ->
             same_verts
               (rebuild (fun () -> Hullnd.extreme_points pts))
               (incremental (fun () -> Hullnd.extreme_points pts))));
    Gen.prop ~count:40 "dual facets: incremental = rebuild" arb_adv_points
      (fun pts ->
         Parallel.Memo.with_bypass (fun () ->
             let dr = rebuild (fun () -> Hullnd.dual_3d pts) in
             let di = incremental (fun () -> Hullnd.dual_3d pts) in
             match dr, di with
             | None, None -> true
             | Some dr, Some di ->
               same_verts dr.PE.pts di.PE.pts
               && same_facets dr.PE.facets di.PE.facets
               && Numeric.Bigint.equal dr.PE.scale di.PE.scale
             | _ -> false));
    Gen.prop ~count:25 "volume: incremental = rebuild" arb_adv_points
      (fun pts ->
         Parallel.Memo.with_bypass (fun () ->
             let p () = Polytope.volume (Polytope.of_points ~dim:3 pts) in
             Option.equal Q.equal (rebuild p) (incremental p)));
    Gen.prop ~count:25 "intersect: incremental = rebuild" arb_adv_two
      (fun (pa, pb) ->
         Parallel.Memo.with_bypass (fun () ->
             let p () =
               Polytope.intersect
                 [ Polytope.of_points ~dim:3 pa;
                   Polytope.of_points ~dim:3 pb ]
             in
             Option.equal Polytope.equal (rebuild p) (incremental p)));
    Gen.prop ~count:25 "hausdorff2: incremental = rebuild" arb_adv_two
      (fun (pa, pb) ->
         Parallel.Memo.with_bypass (fun () ->
             let p () =
               Polytope.hausdorff2
                 (Polytope.of_points ~dim:3 pa)
                 (Polytope.of_points ~dim:3 pb)
             in
             Q.equal (rebuild p) (incremental p))) ]

(* The support cache, NOT bypassed: the first incremental call
   populates the memo, the second is served from it, and both must
   equal the rebuild leg's cold evaluation. *)
let support_cache_props =
  [ Gen.prop ~count:40 "support cache agrees with cold evaluation"
      arb_adv_dir
      (fun (pts, dir) ->
         let p = Polytope.of_points ~dim:3 pts in
         let cold = rebuild (fun () -> Polytope.support p dir) in
         let warm1 = incremental (fun () -> Polytope.support p dir) in
         let warm2 = incremental (fun () -> Polytope.support p dir) in
         let eq (v, x) (v', x') = Q.equal v v' && Vec.equal x x' in
         eq cold warm1 && eq cold warm2);
    Gen.prop ~count:25 "hausdorff cache agrees with cold evaluation"
      arb_adv_two
      (fun (pa, pb) ->
         let a = Polytope.of_points ~dim:3 pa in
         let b = Polytope.of_points ~dim:3 pb in
         let cold = rebuild (fun () -> Polytope.hausdorff2 a b) in
         let warm1 = incremental (fun () -> Polytope.hausdorff2 a b) in
         let warm2 = incremental (fun () -> Polytope.hausdorff2 a b) in
         Q.equal cold warm1 && Q.equal cold warm2) ]

(* Delta operations: merging extra points into an engine dual must
   land on the same canonical dual as a cold build of the union.
   [None] (certification refused) is acceptable — the caller rebuilds
   — but a [Some] answer must be right. *)
let delta_props =
  [ Gen.prop ~count:25 "merge = cold dual of the union" arb_adv_two
      (fun (pa, pb) ->
         incremental (fun () ->
             match Hullnd.dual_3d pa with
             | None -> true (* lower-dimensional: nothing to merge into *)
             | Some d ->
               (match PE.merge d pb with
                | None -> true
                | Some dm ->
                  (match rebuild (fun () -> Hullnd.dual_3d (pa @ pb)) with
                   | None -> false (* union can only gain dimension *)
                   | Some dc ->
                     same_pointset dm.PE.pts dc.PE.pts
                     && same_facets dm.PE.facets dc.PE.facets))));
    Gen.prop ~count:25 "insert_point = cold dual of the union"
      (QCheck.make
         ~print:(fun (pts, p) -> Gen.print_points pts ^ " + " ^ Vec.to_string p)
         QCheck.Gen.(pair gen_adv_points gen_adv_vec))
      (fun (pts, p) ->
         incremental (fun () ->
             match Hullnd.dual_3d pts with
             | None -> true
             | Some d ->
               (match PE.insert_point d p with
                | None -> true
                | Some dm ->
                  (match rebuild (fun () -> Hullnd.dual_3d (p :: pts)) with
                   | None -> false
                   | Some dc ->
                     same_pointset dm.PE.pts dc.PE.pts
                     && same_facets dm.PE.facets dc.PE.facets)))) ]

(* --- units -------------------------------------------------------------- *)

let test_mode_parse () =
  (match PE.parse "rebuild" with
   | Ok PE.Rebuild -> ()
   | _ -> Alcotest.fail "parse rebuild");
  (match PE.parse "incremental" with
   | Ok PE.Incremental -> ()
   | _ -> Alcotest.fail "parse incremental");
  (match PE.parse "bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus must not parse");
  match Chc.Cli.parse_poly "bogus" with
  | Error msg ->
    Alcotest.(check bool) "cli error names the flag" true
      (String.length msg >= 7 && String.sub msg 0 7 = "--poly:")
  | Ok _ -> Alcotest.fail "cli bogus must not parse"

(* The certification gauntlet has teeth: a correct closed oriented
   surface passes; drop a facet (open surface) or flip an orientation
   and it must refuse, which is what forces the exact rebuild. *)
let test_certify_teeth () =
  let pts =
    [| Vec.of_ints [ 0; 0; 0 ]; Vec.of_ints [ 1; 0; 0 ];
       Vec.of_ints [ 0; 1; 0 ]; Vec.of_ints [ 0; 0; 1 ] |]
  in
  let closed = [| (0, 2, 1); (0, 1, 3); (0, 3, 2); (1, 2, 3) |] in
  (match PE.Dev.certify pts closed with
   | Some planes ->
     Alcotest.(check int) "tetrahedron has four facet planes" 4
       (List.length planes)
   | None -> Alcotest.fail "closed oriented tetrahedron must certify");
  (match PE.Dev.certify pts (Array.sub closed 0 3) with
   | None -> ()
   | Some _ -> Alcotest.fail "open surface must be rejected");
  let flipped = [| (0, 1, 2); (0, 1, 3); (0, 3, 2); (1, 2, 3) |] in
  match PE.Dev.certify pts flipped with
  | None -> ()
  | Some _ -> Alcotest.fail "mis-oriented surface must be rejected"

(* Transcript invariance: same scenario, both engines, memo bypassed —
   byte-identical event streams and equal decisions. *)
let test_transcript_invariance () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:42 () in
  let run_under engine =
    Parallel.Memo.with_bypass (fun () ->
        engine (fun () ->
            let trace = Obs.Trace.create () in
            let r = Chc.Executor.run ~trace spec in
            (r, Obs.Trace.to_jsonl trace)))
  in
  let rr, jr = run_under rebuild in
  let ri, ji = run_under incremental in
  Alcotest.(check bool) "rebuild run healthy" true
    (rr.Chc.Executor.terminated && rr.Chc.Executor.valid
     && rr.Chc.Executor.agreement_ok && rr.Chc.Executor.optimal);
  Alcotest.(check string) "byte-identical transcripts" jr ji;
  Alcotest.(check int) "same t_end" rr.Chc.Executor.result.Chc.Cc.t_end
    ri.Chc.Executor.result.Chc.Cc.t_end;
  Array.iteri
    (fun i o ->
       let same =
         match (o, ri.Chc.Executor.result.Chc.Cc.outputs.(i)) with
         | None, None -> true
         | Some p, Some p' -> Geometry.Polytope.equal p p'
         | _ -> false
       in
       Alcotest.(check bool)
         (Printf.sprintf "process %d decides identically" i)
         true same)
    rr.Chc.Executor.result.Chc.Cc.outputs

(* The differential oracle itself: codec roundtrip and a passing grade
   on a healthy d=3 scenario. *)
let test_oracle_engine_equivalence () =
  let o = Fuzz.Oracle.Engine_equivalence in
  (match Fuzz.Oracle.of_json (Fuzz.Oracle.to_json o) with
   | Ok o' -> Alcotest.(check string) "codec roundtrip" (Fuzz.Oracle.name o)
                (Fuzz.Oracle.name o')
   | Error e -> Alcotest.fail ("oracle codec: " ^ e));
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:7 () in
  match Fuzz.Oracle.check o spec with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail msg -> Alcotest.fail ("engine divergence: " ^ msg)

let suite =
  [ ( "poly_engine",
      [ Alcotest.test_case "mode parse" `Quick test_mode_parse;
        Alcotest.test_case "certification teeth" `Quick test_certify_teeth;
        Alcotest.test_case "transcript invariance d=3" `Quick
          test_transcript_invariance;
        Alcotest.test_case "engine-equivalence oracle" `Quick
          test_oracle_engine_equivalence ]
      @ List.map Gen.qtest (props @ support_cache_props @ delta_props) ) ]
