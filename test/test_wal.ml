(* Tests for the crash-recovery durability layer: WAL crash/sync
   semantics (the CrashableMap discipline), atomic sink semantics under
   an injected mid-write failure, the scenario v2 codec and its v1
   back-compat reader, the Recovery event codec, an end-to-end strict
   recovery run, and the disk-prefix torture property — every surviving
   prefix the adversary can expose must replay to a state from which
   all paper properties still hold. *)

module Q = Numeric.Q
module Wal = Runtime.Wal
module Crash = Runtime.Crash
module Scenario = Chc.Scenario
module Executor = Chc.Executor
module Recovery = Chc.Recovery

(* --- Wal semantics ---------------------------------------------------- *)

let test_wal_crash_keep () =
  let w = Wal.create { Wal.checkpoint_every = 4; sync = Wal.Strict } in
  List.iter (Wal.append w) [ 1; 2; 3; 4; 5 ];
  Wal.sync w;
  List.iter (Wal.append w) [ 6; 7; 8 ];
  Alcotest.(check int) "synced frontier" 5 (Wal.synced w);
  Alcotest.(check int) "unsynced tail" 3 (Wal.unsynced w);
  Wal.crash w ~keep:1;
  Alcotest.(check (list int)) "synced prefix + 1 kept unsynced entry"
    [ 1; 2; 3; 4; 5; 6 ] (Wal.entries w);
  Alcotest.(check bool) "sealed after crash" true (Wal.sealed w);
  Alcotest.(check int) "survivors are the new synced prefix" 6 (Wal.synced w);
  (match Wal.append w 9 with
   | () -> Alcotest.fail "append on a sealed log must raise"
   | exception Invalid_argument _ -> ());
  Wal.reopen w;
  Wal.append w 9;
  Alcotest.(check (list int)) "appends resume after reopen"
    [ 1; 2; 3; 4; 5; 6; 9 ] (Wal.entries w)

let test_wal_keep_clamp () =
  let w = Wal.create Wal.default_config in
  List.iter (Wal.append w) [ 1; 2; 3 ];
  Wal.crash w ~keep:100;
  Alcotest.(check (list int)) "keep clamps to the unsynced length"
    [ 1; 2; 3 ] (Wal.entries w);
  let w = Wal.create Wal.default_config in
  List.iter (Wal.append w) [ 1; 2; 3 ];
  Wal.crash w ~keep:0;
  Alcotest.(check (list int)) "nothing synced, nothing kept -> empty"
    [] (Wal.entries w)

let test_wal_unsound_sync () =
  let w = Wal.create { Wal.checkpoint_every = 4; sync = Wal.Unsound } in
  List.iter (Wal.append w) [ 1; 2; 3; 4 ];
  Wal.sync w;
  Alcotest.(check int) "unsound sync never advances the frontier" 0
    (Wal.synced w);
  Wal.crash w ~keep:0;
  Alcotest.(check (list int)) "the whole log is lost" [] (Wal.entries w)

let test_wal_config_guard () =
  (match Wal.create { Wal.checkpoint_every = 0; sync = Wal.Strict } with
   | _ -> Alcotest.fail "checkpoint_every = 0 must be rejected"
   | exception Invalid_argument _ -> ());
  let config =
    Chc.Config.make ~n:4 ~f:1 ~d:1 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 1 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  match
    Scenario.make ~config ~inputs ~crash:(Array.make 4 Crash.Never)
      ~scheduler:Runtime.Scheduler.random_uniform ~seed:1
      ~wal:{ Wal.checkpoint_every = 0; sync = Wal.Strict } ()
  with
  | _ -> Alcotest.fail "Scenario.make must reject checkpoint_every = 0"
  | exception Invalid_argument _ -> ()

(* --- atomic sink under an injected mid-write failure ------------------ *)

exception Boom

let test_sink_atomic_on_failure () =
  let dir = Filename.temp_file "chc-sink" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "artifact.json" in
  (match Obs.Sink.write_string ~path "the old content\n" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "seed write failed: %s" e);
  (* Writer emits some bytes, then dies: the old content must survive
     and the temporary must be cleaned up. *)
  (match
     Obs.Sink.write_file ~path (fun oc ->
         output_string oc "half-written garbage";
         raise Boom)
   with
   | Ok () | Error _ -> Alcotest.fail "injected exception must propagate"
   | exception Boom -> ());
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "old content survives a mid-write crash"
    "the old content\n" s;
  Alcotest.(check (list string)) "no temporary left behind"
    [ "artifact.json" ]
    (Array.to_list (Sys.readdir dir) |> List.sort compare);
  (* And a successful rewrite replaces it whole. *)
  (match Obs.Sink.write_string ~path "the new content\n" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "rewrite failed: %s" e);
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "rewrite is complete" "the new content\n" s;
  Sys.remove path;
  Unix.rmdir dir

(* --- scenario v2 codec and v1 back-compat ----------------------------- *)

let recovery_scenario () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:1 ~eps:(Q.of_ints 1 5) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 3 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 5 Crash.Never in
  crash.(0) <-
    Crash.Crash_recover { trigger = Crash.Receives 30; delay = 7; keep = 2 };
  Scenario.make ~config ~inputs ~crash
    ~scheduler:Runtime.Scheduler.random_uniform ~seed:13
    ~wal:{ Wal.checkpoint_every = 2; sync = Wal.Strict } ()

let test_scenario_v2_roundtrip () =
  let t = recovery_scenario () in
  let s = Scenario.to_string t in
  match Scenario.of_string s with
  | Error e ->
    Alcotest.failf "v2 roundtrip failed: %s" (Scenario.error_to_string e)
  | Ok t' ->
    Alcotest.(check bool) "equal after roundtrip" true (Scenario.equal t t');
    Alcotest.(check string) "byte-identical reprint" s (Scenario.to_string t')

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let test_scenario_v1_read () =
  (* A scenario using no v2 feature serializes exactly like a v1 file
     apart from the version stamp — rewriting the stamp reconstructs a
     genuine v1 document, which this build must still read. *)
  let config =
    Chc.Config.make ~n:4 ~f:1 ~d:1 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 5 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 4 Crash.Never in
  crash.(2) <- Crash.After_sends 4;
  let t =
    Scenario.make ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed:9 ()
  in
  let s = Scenario.to_string t in
  (match find_sub s {|"wal"|} with
   | Some _ -> Alcotest.fail "wal-less scenario must not serialize a wal field"
   | None -> ());
  let v1 =
    match find_sub s {|"version":2|} with
    | None -> Alcotest.fail "expected a version-2 stamp"
    | Some i ->
      String.sub s 0 i ^ {|"version":1|}
      ^ String.sub s (i + String.length {|"version":2|})
          (String.length s - i - String.length {|"version":2|})
  in
  match Scenario.of_string v1 with
  | Error e ->
    Alcotest.failf "v1 document rejected: %s" (Scenario.error_to_string e)
  | Ok t' ->
    Alcotest.(check bool) "v1 document reads back equal" true
      (Scenario.equal t t')

(* --- Recovery event codec --------------------------------------------- *)

let test_recovery_event_codec () =
  let poly =
    Geometry.Polytope.of_points ~dim:2
      [ [| Q.zero; Q.zero |]; [| Q.one; Q.zero |]; [| Q.of_ints 1 2; Q.one |] ]
  in
  let events =
    [ Recovery.Delivered
        { src = 3;
          payload =
            Recovery.Sv_view
              [ (0, [| Q.zero; Q.one |]); (2, [| Q.of_ints 1 3; Q.zero |]) ] };
      Recovery.Delivered
        { src = 1; payload = Recovery.Input [| Q.one; Q.of_ints 2 7 |] };
      Recovery.Delivered { src = 0; payload = Recovery.Round_msg (4, poly) };
      Recovery.Checkpoint
        { Recovery.current = 2;
          h = Some poly;
          view = Some [ (0, [| Q.zero; Q.zero |]); (1, [| Q.one; Q.one |]) ];
          hist = [ (0, poly); (1, poly) ];
          snd_log = [ (1, [ 0; 1; 2 ]) ];
          sent_log = [ (0, true); (1, false) ];
          rounds = [ (2, [ (1, poly) ], false) ];
          naive0 = [];
          sv = None } ]
  in
  List.iter
    (fun ev ->
       let line = Recovery.event_to_string ev in
       match Recovery.event_of_string ~dim:2 line with
       | Error e -> Alcotest.failf "event failed to parse: %s (%s)" e line
       | Ok ev' ->
         Alcotest.(check string) "canonical reprint is stable" line
           (Recovery.event_to_string ev'))
    events

(* --- end-to-end strict recovery --------------------------------------- *)

let test_recovery_end_to_end () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 5) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 11 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 5 Crash.Never in
  crash.(0) <-
    Crash.Crash_recover { trigger = Crash.Sends 9; delay = 12; keep = 1 };
  let t =
    Scenario.make ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed:7 ()
  in
  let r = Executor.run t in
  Alcotest.(check (list int)) "process 0 recovered" [ 0 ] r.Executor.recovered;
  Alcotest.(check bool) "terminated" true r.Executor.terminated;
  Alcotest.(check bool) "valid" true r.Executor.valid;
  Alcotest.(check bool) "agreement" true r.Executor.agreement_ok;
  Alcotest.(check bool) "optimal" true r.Executor.optimal;
  Alcotest.(check bool) "decision stable" true r.Executor.decision_stable;
  Alcotest.(check bool) "recovered process decided" true
    (r.Executor.result.Chc.Cc.outputs.(0) <> None);
  Alcotest.(check bool) "its WAL is non-empty" true
    (r.Executor.result.Chc.Cc.wal_log.(0) <> [])

(* --- disk-prefix torture ---------------------------------------------- *)

(* The CrashableMap invariant, phrased at protocol level: whatever
   prefix of the victim's log the adversary exposes (every [keep] from
   "synced only" through "everything", crossing checkpoint boundaries
   on the way — checkpoint_every is 4 and receive budgets 15..17
   straddle the 16-entry boundary), replay must land the victim in a
   state from which the full paper property suite still holds. *)
let test_prefix_torture () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:1 ~eps:(Q.of_ints 1 5) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 21 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  List.iter
    (fun budget ->
       List.iter
         (fun keep ->
            let crash = Array.make 5 Crash.Never in
            crash.(0) <-
              Crash.Crash_recover
                { trigger = Crash.Receives budget; delay = 5; keep };
            let t =
              Scenario.make ~config ~inputs ~crash
                ~scheduler:Runtime.Scheduler.random_uniform ~seed:31
                ~wal:{ Wal.checkpoint_every = 4; sync = Wal.Strict } ()
            in
            match Fuzz.Oracle.check Fuzz.Oracle.Paper_properties t with
            | Fuzz.Oracle.Pass -> ()
            | Fuzz.Oracle.Fail msg ->
              Alcotest.failf "budget=%d keep=%d violates: %s" budget keep msg)
         [ 0; 1; 2; 3; 4; 5 ])
    [ 15; 16; 17 ]

let suite =
  [ ( "wal",
      [ Alcotest.test_case "crash keeps synced prefix + kept tail" `Quick
          test_wal_crash_keep;
        Alcotest.test_case "keep clamps; empty when nothing durable" `Quick
          test_wal_keep_clamp;
        Alcotest.test_case "unsound sync never makes progress durable" `Quick
          test_wal_unsound_sync;
        Alcotest.test_case "config guards reject checkpoint_every < 1" `Quick
          test_wal_config_guard;
        Alcotest.test_case "sink is atomic under mid-write failure" `Quick
          test_sink_atomic_on_failure;
        Alcotest.test_case "scenario v2 roundtrip" `Quick
          test_scenario_v2_roundtrip;
        Alcotest.test_case "scenario v1 back-compat read" `Quick
          test_scenario_v1_read;
        Alcotest.test_case "recovery event codec roundtrip" `Quick
          test_recovery_event_codec;
        Alcotest.test_case "end-to-end strict recovery" `Quick
          test_recovery_end_to_end;
        Alcotest.test_case "disk-prefix torture (checkpoint boundary)" `Quick
          test_prefix_torture ] ) ]
