(* The stable-vector primitive must provide, under every adversarial
   schedule and crash plan with n >= 2f+1:
   - Liveness: every live process obtains a view of >= n-f entries;
   - Containment: all obtained views are totally ordered by inclusion.
   These are exactly the two properties Algorithm CC's optimality
   argument needs (paper, Section 3). *)

module Sim = Runtime.Sim
module Transport = Runtime.Transport
module Rng = Runtime.Rng
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler
module SV = Protocol.Stable_vector

(* Run one stable-vector instance where process i's value is [100 + i].
   Returns per-process results (None for processes that never
   stabilized, e.g. crashed ones). *)
let run_instance ~n ~f ~seed ~scheduler ~crash =
  let states = Array.make n None in
  let sys =
    Sim.create ~n ~seed ~scheduler ~crash
      ~make:(fun i ->
          { Transport.on_start =
              (fun ep ->
                 let st =
                   SV.create ~n ~f ~me:i ~value:(100 + i)
                     ~broadcast:(fun m -> ep.Transport.broadcast m) ()
                 in
                 states.(i) <- Some st);
            on_receive =
              (fun _ep ~src msg ->
                 match states.(i) with
                 | Some st -> SV.on_receive st ~src msg
                 | None -> ()) }) ()
  in
  Sim.run sys;
  Array.map
    (fun st -> Option.bind st SV.result)
    states
  |> fun results -> (results, sys)

let origins view = List.map (fun e -> e.SV.origin) view

let subset a b = List.for_all (fun x -> List.mem x b) a

let check_properties ~n ~f results sys =
  (* Liveness at live processes. *)
  Array.iteri
    (fun i r ->
       if not (Sim.crashed sys i) then begin
         match r with
         | None -> Alcotest.failf "process %d never stabilized" i
         | Some view ->
           if List.length view < n - f then
             Alcotest.failf "process %d has %d < n-f entries" i
               (List.length view)
       end)
    results;
  (* Containment across every pair that returned. *)
  let views =
    Array.to_list results |> List.filter_map Fun.id |> List.map origins
  in
  List.iteri
    (fun i vi ->
       List.iteri
         (fun j vj ->
            if i < j && not (subset vi vj || subset vj vi) then
              Alcotest.failf "views %d and %d incomparable" i j)
         views)
    views;
  (* Values are everyone's true inputs. *)
  Array.iter
    (function
      | None -> ()
      | Some view ->
        List.iter
          (fun e ->
             Alcotest.(check int) "value matches origin" (100 + e.SV.origin)
               e.SV.value)
          view)
    results

let test_fault_free () =
  let n = 5 and f = 1 in
  let results, sys =
    run_instance ~n ~f ~seed:7 ~scheduler:Scheduler.random_uniform
      ~crash:(Array.make n Crash.Never)
  in
  check_properties ~n ~f results sys;
  (* With nobody crashed every view must be complete eventually? Not
     necessarily — stability can hit before hearing from everyone. But
     at least one process view has size >= n - f by liveness. *)
  Alcotest.(check bool) "all stabilized" true
    (Array.for_all (fun r -> r <> None) results)

let test_immediate_crash () =
  let n = 5 and f = 2 in
  let crash = Array.make n Crash.Never in
  crash.(0) <- Crash.After_sends 0;
  crash.(1) <- Crash.After_sends 0;
  let results, sys =
    run_instance ~n ~f ~seed:3 ~scheduler:Scheduler.round_robin ~crash
  in
  check_properties ~n ~f results sys

let test_requires_quorum () =
  Alcotest.check_raises "n >= 2f+1 enforced"
    (Invalid_argument "Stable_vector.create: requires n >= 2f + 1")
    (fun () ->
       ignore (SV.create ~n:4 ~f:2 ~me:0 ~value:0 ~broadcast:(fun _ -> ()) ()))

(* Property: sweep seeds, schedulers, crash plans. *)
let prop_properties =
  let gen =
    let open QCheck.Gen in
    let* seed = 0 -- 10000 in
    let* n = 5 -- 9 in
    let* f = 1 -- ((n - 1) / 2) in
    let* sched = oneofl [ Scheduler.random_uniform; Scheduler.round_robin;
                          Scheduler.lifo_bias ] in
    let* budgets = list_size (return f) (0 -- 40) in
    return (seed, n, f, sched, budgets)
  in
  let print (seed, n, f, _, budgets) =
    Printf.sprintf "seed=%d n=%d f=%d budgets=%s" seed n f
      (String.concat "," (List.map string_of_int budgets))
  in
  Gen.prop ~count:150 "liveness + containment under random adversaries"
    (QCheck.make ~print gen)
    (fun (seed, n, f, sched, budgets) ->
       let crash = Array.make n Crash.Never in
       List.iteri (fun k b -> crash.(k) <- Crash.After_sends b) budgets;
       let results, sys = run_instance ~n ~f ~seed ~scheduler:sched ~crash in
       check_properties ~n ~f results sys;
       true)

(* The lag adversary starves up to f processes entirely; the remaining
   n - f must still stabilize (this is the Theorem-3 schedule). *)
let prop_lag_adversary =
  Gen.prop ~count:60 "stability despite f starved processes"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10000))
    (fun seed ->
       let n = 7 and f = 2 in
       let results, sys =
         run_instance ~n ~f ~seed ~scheduler:(Scheduler.lag_sources [0; 1])
           ~crash:(Array.make n Crash.Never)
       in
       check_properties ~n ~f results sys;
       true)

(* A surgically phased adversary CAN make stable views differ — the
   coarse schedulers almost never do. We drive the primitive by hand
   (it is transport-agnostic) to realize the split: n = 7, f = 2,
   process 0 crashes after reaching only process 6 with its input.
   Processes 1..5 stabilize at V1 = {1,…,6} while 6 — which merged 0's
   entry before ever holding V1 — stabilizes at the full view. The two
   stable views are ordered by inclusion, exactly the scenario Lemma
   6's proof builds on. (With n = 5, f = 1 this split is impossible:
   V1-stability needs all four live processes to pass through V1, so
   nobody can avoid it; hence the larger cast.) *)
let test_scripted_split () =
  let n = 7 and f = 2 in
  (* Mailboxes: broadcast appends to every OTHER process's queue,
     tagged with the sender; we deliver by hand. *)
  let queues = Array.make n [] in
  let states = Array.make n None in
  let make i =
    let broadcast m =
      for j = 0 to n - 1 do
        if j <> i then queues.(j) <- queues.(j) @ [ (i, m) ]
      done
    in
    states.(i) <- Some (SV.create ~n ~f ~me:i ~value:(100 + i) ~broadcast ())
  in
  for i = 0 to n - 1 do make i done;
  let st i = Option.get states.(i) in
  (* Deliver the head message from [src] sitting in [dst]'s queue. *)
  let deliver ~src ~dst =
    let rec take acc = function
      | [] -> Alcotest.failf "no message from %d at %d" src dst
      | (s, m) :: rest when s = src ->
        queues.(dst) <- List.rev_append acc rest;
        SV.on_receive (st dst) ~src:s m
      | other :: rest -> take (other :: acc) rest
    in
    take [] queues.(dst)
  in
  (* Drain everything currently in flight from [src] to [dst] (FIFO).
     Deliveries may enqueue more traffic; only the snapshot is
     delivered, as a real adversary would. *)
  let deliver_all ~src ~dst =
    let pending =
      List.length (List.filter (fun (s, _) -> s = src) queues.(dst))
    in
    for _ = 1 to pending do deliver ~src ~dst done
  in
  (* Phase 1: 0's input reaches only process 6 (0 then crashes; its
     other round-0 messages are lost with it — we simply never deliver
     them). 6 merges it before seeing anything else, so 6 never holds a
     0-less view beyond its own singleton. *)
  deliver ~src:0 ~dst:6;
  (* Phase 2: processes 1..6 exchange their INITIAL singletons only —
     6's initial broadcast predates its merge of 0's entry, so what the
     others receive from 6 is {6}. All of 1..5 reach V1 = {1..6} and
     echo it. *)
  for dst = 1 to 6 do
    for src = 1 to 6 do
      if src <> dst then deliver ~src ~dst
    done
  done;
  (* Phase 3: drain the V1 echoes among 1..5: each holds V1 and
     collects 5 = n - f votes (four peers + itself) — stable at V1.
     Everything 6 sent after its merge stays in flight. *)
  for dst = 1 to 5 do
    for src = 1 to 5 do
      if src <> dst then deliver_all ~src ~dst
    done
  done;
  List.iter
    (fun i ->
       match SV.result (st i) with
       | Some view ->
         Alcotest.(check (list int))
           (Printf.sprintf "%d stabilized at V1" i)
           [1; 2; 3; 4; 5; 6] (origins view)
       | None -> Alcotest.failf "process %d did not stabilize at V1" i)
    [1; 2; 3; 4; 5];
  (* Phase 4: release the remaining traffic. 1..5 merge 0's entry (via
     6's queued views) and echo the full view; 6 — which never held V1
     — collects those five full-view echoes and stabilizes at the full
     view. Earlier processes keep their first (V1) result. *)
  for dst = 1 to 5 do deliver_all ~src:6 ~dst done;
  for dst = 1 to 6 do
    for src = 1 to 6 do
      if src <> dst then deliver_all ~src ~dst
    done
  done;
  (match SV.result (st 6) with
   | Some view ->
     Alcotest.(check (list int)) "6 stabilized at the full view"
       [0; 1; 2; 3; 4; 5; 6] (origins view)
   | None -> Alcotest.fail "process 6 did not stabilize");
  (* The split views are ordered by containment, as Lemma 6 needs. *)
  (match SV.result (st 1), SV.result (st 6) with
   | Some v1, Some v6 ->
     Alcotest.(check bool) "containment across the split" true
       (subset (origins v1) (origins v6));
     Alcotest.(check bool) "genuinely different" true
       (List.length (origins v1) <> List.length (origins v6))
   | _ -> Alcotest.fail "missing results")

let suite =
  [ ( "stable_vector",
      [ Alcotest.test_case "fault free" `Quick test_fault_free;
        Alcotest.test_case "immediate crashes" `Quick test_immediate_crash;
        Alcotest.test_case "quorum precondition" `Quick test_requires_quorum;
        Alcotest.test_case "scripted view split" `Quick test_scripted_split ]
      @ List.map Gen.qtest [ prop_properties; prop_lag_adversary ] ) ]
