(* Tests for the domain work pool: every combinator must agree with
   its sequential List equivalent (content AND order) for any pool
   size, exceptions must propagate to the caller, and full Algorithm
   CC executions must produce byte-identical transcripts whether the
   global pool has 1 domain or 4 — the determinism guarantee the
   experiment harness relies on. *)

module Pool = Parallel.Pool
module Q = Numeric.Q
module Polytope = Geometry.Polytope
module Executor = Chc.Executor
module Cc = Chc.Cc

let f x = (x * x) - (3 * x) + 1
let fm x = if x mod 3 = 0 then None else Some (x + 7)
let fc x = [x; -x; 2 * x]

let combinator_props =
  List.concat_map
    (fun size ->
       let pool = Pool.create ~size in
       let arb = QCheck.(list small_signed_int) in
       [ Gen.prop ~count:100
           (Printf.sprintf "parallel_map = List.map (pool size %d)" size)
           arb
           (fun xs -> Pool.parallel_map pool f xs = List.map f xs);
         Gen.prop ~count:100
           (Printf.sprintf "parallel_filter_map = List.filter_map (pool size %d)"
              size)
           arb
           (fun xs -> Pool.parallel_filter_map pool fm xs = List.filter_map fm xs);
         Gen.prop ~count:100
           (Printf.sprintf "parallel_concat_map = List.concat_map (pool size %d)"
              size)
           arb
           (fun xs -> Pool.parallel_concat_map pool fc xs = List.concat_map fc xs) ])
    [1; 2; 4]

let test_exception_propagates () =
  let pool = Pool.create ~size:4 in
  Alcotest.check_raises "worker exception re-raised in caller" Exit
    (fun () ->
       ignore
         (Pool.parallel_map pool
            (fun x -> if x = 13 then raise Exit else x)
            (List.init 40 Fun.id)));
  (* The pool survives a failed batch. *)
  Alcotest.(check (list int)) "pool usable after exception"
    (List.init 10 f)
    (Pool.parallel_map pool f (List.init 10 Fun.id))

let test_nested () =
  let pool = Pool.create ~size:4 in
  let expected =
    List.map (fun i -> List.map (fun j -> f (i + j)) [0; 1; 2]) (List.init 8 Fun.id)
  in
  Alcotest.(check (list (list int))) "nested combinators run sequentially inside workers"
    expected
    (Pool.parallel_map pool
       (fun i -> Pool.parallel_map pool (fun j -> f (i + j)) [0; 1; 2])
       (List.init 8 Fun.id))

(* ------------------------------------------------------------------ *)
(* Determinism: the full protocol transcript — every h_i[t] and every
   output polytope — serialized to a string, must not depend on the
   pool size. *)

let transcript (r : Cc.result) =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i o ->
       Buffer.add_string b
         (Printf.sprintf "out %d %s\n" i
            (match o with None -> "-" | Some p -> Polytope.to_string p)))
    r.Cc.outputs;
  Array.iteri
    (fun i h ->
       List.iter
         (fun (t, p) ->
            Buffer.add_string b
              (Printf.sprintf "h %d %d %s\n" i t (Polytope.to_string p)))
         h)
    r.Cc.history;
  Buffer.contents b

let transcript_with ~size spec =
  let saved = Pool.global_size () in
  Pool.set_global_size size;
  Fun.protect ~finally:(fun () -> Pool.set_global_size saved)
    (fun () -> transcript (Executor.run spec).Executor.result)

let check_pool_invariant config ~seed =
  let spec = Executor.default_spec ~config ~seed () in
  Alcotest.(check string) "1-domain and 4-domain transcripts identical"
    (transcript_with ~size:1 spec)
    (transcript_with ~size:4 spec)

let test_cc_transcript_d2 () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  List.iter (fun seed -> check_pool_invariant config ~seed) [3; 17]

let test_cc_transcript_d3 () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  check_pool_invariant config ~seed:42

let suite =
  [ ( "parallel",
      [ Alcotest.test_case "exception propagation" `Quick
          test_exception_propagates;
        Alcotest.test_case "nested combinators" `Quick test_nested;
        Alcotest.test_case "cc transcript pool-size invariant (d=2)" `Quick
          test_cc_transcript_d2;
        Alcotest.test_case "cc transcript pool-size invariant (d=3)" `Slow
          test_cc_transcript_d3 ]
      @ List.map Gen.qtest combinator_props ) ]
