(* Tests for the fuzzer stack: the serializable Scenario codec and its
   version guard, the scheduler-strategy registry, the crash-budget
   clamp regression, shrinker determinism, and the seeded canary — a
   deliberately too-strict agreement oracle that proves the campaign
   finds, shrinks and persists a real violation within the smoke
   budget. *)

module Q = Numeric.Q
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler
module Scenario = Chc.Scenario

let () = Fuzz.Strategies.register_builtin ()

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let replace_sub s ~sub ~by =
  match find_sub s sub with
  | None -> Alcotest.failf "%S not found in scenario JSON" sub
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)

(* A scenario exercising every serialized field: all three crash-plan
   kinds (including a crash-recover plan with both trigger arms
   represented across tests), a parameterized scheduler, the naive
   round-0 ablation, a pinned schedule prefix, and a WAL config. *)
let rich_scenario () =
  let config =
    Chc.Config.make ~n:4 ~f:1 ~d:1 ~eps:(Q.of_ints 1 20) ~lo:Q.zero ~hi:Q.one
  in
  let inputs =
    [| [| Q.zero |]; [| Q.of_ints 1 3 |]; [| Q.of_ints 2 3 |]; [| Q.one |] |]
  in
  let crash =
    [| Crash.After_receives 3;
       Crash.Crash_recover { trigger = Crash.Sends 5; delay = 9; keep = 2 };
       Crash.After_sends 2; Crash.Never |]
  in
  Scenario.make ~config ~inputs ~crash ~scheduler:(Scheduler.lag_sources [0; 2])
    ~seed:77 ~round0:`Naive ~prefix:[ (0, 1); (2, 3) ]
    ~wal:{ Runtime.Wal.checkpoint_every = 4; sync = Runtime.Wal.Strict } ()

(* --- scenario codec --------------------------------------------------- *)

let test_scenario_roundtrip () =
  let t = rich_scenario () in
  let s = Scenario.to_string t in
  match Scenario.of_string s with
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Scenario.error_to_string e)
  | Ok t' ->
    Alcotest.(check string) "byte-identical reprint" s (Scenario.to_string t');
    Alcotest.(check bool) "equal" true (Scenario.equal t t')

let test_scenario_version_guard () =
  let s = Scenario.to_string (rich_scenario ()) in
  let tampered = replace_sub s ~sub:{|"version":2|} ~by:{|"version":99|} in
  match Scenario.of_string tampered with
  | Ok _ -> Alcotest.fail "version 99 must be rejected"
  | Error (Scenario.Version { found; _ } as e) ->
    Alcotest.(check int) "typed error carries the offending version" 99 found;
    let msg = Scenario.error_to_string e in
    Alcotest.(check bool) "error names the offending version" true
      (find_sub msg "99" <> None);
    Alcotest.(check bool) "error states the readable range" true
      (find_sub msg "reads 1-2" <> None)
  | Error e ->
    Alcotest.failf "expected a Version error, got: %s"
      (Scenario.error_to_string e)

let test_scenario_rejects_bad_plan () =
  let s = Scenario.to_string (rich_scenario ()) in
  let bad = replace_sub s ~sub:"after-receives" ~by:"after-napping" in
  match Scenario.of_string bad with
  | Ok _ -> Alcotest.fail "unknown crash-plan kind must be rejected"
  | Error _ -> ()

(* --- scheduler registry ----------------------------------------------- *)

let check_spec_roundtrip spec =
  match Scheduler.of_spec spec with
  | Error e -> Alcotest.failf "of_spec %S: %s" spec e
  | Ok t -> Alcotest.(check string) spec spec (Scheduler.to_spec t)

let test_registry_roundtrips () =
  List.iter check_spec_roundtrip
    [ "random"; "round-robin"; "lifo"; "lag:0,2"; "delay-burst:7";
      "stab-boundary"; "swarm:delay-burst:11+lifo";
      "swarm:random+stab-boundary" ]

let test_registry_unknown () =
  match Scheduler.of_spec "no-such-strategy" with
  | Ok _ -> Alcotest.fail "unknown name must not resolve"
  | Error _ ->
    Alcotest.(check bool) "fuzzer strategies registered" true
      (List.mem "delay-burst" (Scheduler.registered ())
       && List.mem "swarm" (Scheduler.registered ()))

let test_registry_bad_params () =
  let must_fail spec =
    match Scheduler.of_spec spec with
    | Ok _ -> Alcotest.failf "%S must be rejected" spec
    | Error _ -> ()
  in
  List.iter must_fail
    [ "delay-burst:0"; "delay-burst:zero"; "stab-boundary:x"; "swarm:";
      "swarm:swarm:random" ]

(* --- crash clamp ------------------------------------------------------ *)

let test_clamp_unit () =
  let clamped =
    Crash.clamp
      [| Crash.After_sends 100; Crash.After_receives 100; Crash.Never;
         Crash.After_sends 0 |]
      ~sends:[| 5; 9; 4; 0 |] ~receives:[| 3; 3; 2; 1 |]
  in
  Alcotest.(check bool) "send budget clamped to sends-1" true
    (clamped.(0) = Crash.After_sends 4);
  Alcotest.(check bool) "receive budget clamped to receives-1" true
    (clamped.(1) = Crash.After_receives 2);
  Alcotest.(check bool) "never stays never" true (clamped.(2) = Crash.Never);
  Alcotest.(check bool) "zero budget untouched" true
    (clamped.(3) = Crash.After_sends 0)

(* Regression for the bug ensure_crashes fixes: generated budgets used
   to overshoot the execution's send/receive counts and silently never
   fire. Every faulty plan in an ensure_crash scenario must actually
   crash its process. *)
let test_ensured_crashes_fire () =
  for trial = 0 to 5 do
    let s = Fuzz.Gen.scenario Fuzz.Gen.default_space ~seed:11 ~trial in
    let r =
      Chc.Cc.execute ~round0:s.Scenario.round0 ~config:s.Scenario.config
        ~inputs:s.Scenario.inputs ~crash:s.Scenario.crash
        ~scheduler:s.Scenario.scheduler ~seed:s.Scenario.seed ()
    in
    List.iter
      (fun i ->
         Alcotest.(check bool)
           (Printf.sprintf "trial %d: faulty process %d crashed" trial i)
           true r.Chc.Cc.crashed.(i))
      (Chc.Cc.fault_set s.Scenario.crash)
  done

(* --- canary + shrinking ----------------------------------------------- *)

(* The naive round-0 ablation at d=1 diverges by ~1e-14 at decision
   time, so an absurdly strict agreement threshold manufactures real,
   deterministic violations out of an otherwise correct execution. *)
let canary_space =
  { Fuzz.Gen.default_space with naive_round0 = `Always; d_choices = [ 1 ] }

let canary_oracle =
  Fuzz.Oracle.Agreement_within
    (Q.of_string "1/1000000000000000000000000000000")

let first_failing ~seed =
  let rec go trial =
    if trial >= 200 then Alcotest.fail "no canary violation in 200 trials"
    else
      let s = Fuzz.Gen.scenario canary_space ~seed ~trial in
      match Fuzz.Oracle.check canary_oracle s with
      | Fuzz.Oracle.Fail _ -> s
      | Fuzz.Oracle.Pass -> go (trial + 1)
  in
  go 0

let test_shrink_deterministic () =
  let s = first_failing ~seed:42 in
  let m1, st1 = Fuzz.Shrink.minimize ~oracle:canary_oracle s in
  let m2, st2 = Fuzz.Shrink.minimize ~oracle:canary_oracle s in
  Alcotest.(check string) "byte-identical minimized scenario"
    (Scenario.to_string m1) (Scenario.to_string m2);
  Alcotest.(check int) "same steps" st1.Fuzz.Shrink.steps st2.Fuzz.Shrink.steps;
  Alcotest.(check int) "same attempts" st1.Fuzz.Shrink.attempts
    st2.Fuzz.Shrink.attempts;
  (* minimization preserves the failure *)
  (match Fuzz.Oracle.check canary_oracle m1 with
   | Fuzz.Oracle.Fail _ -> ()
   | Fuzz.Oracle.Pass -> Alcotest.fail "minimized scenario must still fail");
  Alcotest.(check bool) "minimized is no larger" true
    (String.length (Scenario.to_string m1) <= String.length (Scenario.to_string s))

let test_canary_campaign_end_to_end () =
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chc-fuzz-canary-%d" (Unix.getpid ()))
  in
  let outcome =
    Fuzz.Campaign.run ~space:canary_space ~oracle:canary_oracle ~out_dir
      ~max_findings:1 ~seed:42
      { Fuzz.Campaign.trials = 60; time_budget = None }
  in
  match outcome.Fuzz.Campaign.findings with
  | [] -> Alcotest.fail "campaign found no canary violation in 60 trials"
  | { artifact; path; trace_path; causal_path } :: _ ->
    Alcotest.(check bool) "artifact file exists" true (Sys.file_exists path);
    (match trace_path with
     | Some p ->
       Alcotest.(check bool) "trace file exists" true (Sys.file_exists p)
     | None -> Alcotest.fail "minimized run must carry a trace");
    (match causal_path with
     | Some p ->
       Alcotest.(check bool) "causal sidecar exists" true (Sys.file_exists p)
     | None -> Alcotest.fail "minimized run must carry a causal skeleton");
    (match Fuzz.Artifact.load path with
     | Error e -> Alcotest.failf "artifact reload: %s" e
     | Ok a ->
       Alcotest.(check string) "artifact reloads byte-identically"
         (Fuzz.Artifact.to_string artifact) (Fuzz.Artifact.to_string a);
       (* the artifact replays: re-grading reproduces the violation *)
       (match Fuzz.Oracle.check a.Fuzz.Artifact.oracle a.Fuzz.Artifact.scenario with
        | Fuzz.Oracle.Fail _ -> ()
        | Fuzz.Oracle.Pass ->
          Alcotest.fail "reloaded counterexample must reproduce"))

let suite =
  [ ( "fuzz scenario codec",
      [ Alcotest.test_case "exact roundtrip" `Quick test_scenario_roundtrip;
        Alcotest.test_case "version guard" `Quick test_scenario_version_guard;
        Alcotest.test_case "bad crash plan rejected" `Quick
          test_scenario_rejects_bad_plan ] );
    ( "fuzz scheduler registry",
      [ Alcotest.test_case "spec roundtrips" `Quick test_registry_roundtrips;
        Alcotest.test_case "unknown name" `Quick test_registry_unknown;
        Alcotest.test_case "bad params" `Quick test_registry_bad_params ] );
    ( "fuzz crash clamp",
      [ Alcotest.test_case "clamp unit" `Quick test_clamp_unit;
        Alcotest.test_case "ensured crashes fire" `Quick
          test_ensured_crashes_fire ] );
    ( "fuzz canary",
      [ Alcotest.test_case "shrink deterministic" `Quick
          test_shrink_deterministic;
        Alcotest.test_case "campaign end-to-end" `Quick
          test_canary_campaign_end_to_end ] ) ]
