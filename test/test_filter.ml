(* The filtered arithmetic kernel (Numeric.Filter) against its own
   specification: every predicate returns the exact answer under both
   kernels. The exact kernel is the oracle — each property evaluates
   the same predicate under [Kernel.with_mode Exact] and
   [... Filtered] and demands identical results, on random rationals
   and on adversarial near-degenerate inputs (exact zeros, ±1/2^200
   perturbations, huge and tiny magnitudes) engineered to sit inside
   the interval filter's uncertainty band.

   The end-to-end half is transcript invariance: a full checked d=3
   execution must produce byte-identical transcripts and equal
   decision polytopes under both kernels — the filter is allowed to be
   faster, never observable. *)

module Q = Numeric.Q
module K = Numeric.Kernel
module Filter = Numeric.Filter

let exact f = K.with_mode K.Exact f
let filtered f = K.with_mode K.Filtered f

(* 1/2^200: far below any float's resolution of the surrounding
   magnitudes, so a perturbed value is indistinguishable from the
   unperturbed one in double precision — only the exact fallback can
   tell them apart. *)
let tiny = Q.pow Q.half 200
let huge = Q.pow (Q.of_int 10) 40

let gen_q =
  let open QCheck.Gen in
  let* n = -1000000 -- 1000000 in
  let* d = 1 -- 1000000 in
  return (Q.of_ints n d)

(* Random rationals spiked with the adversarial family. *)
let gen_adv =
  let open QCheck.Gen in
  let* base = gen_q in
  oneofl
    [ base; Q.zero; Q.add base tiny; Q.sub base tiny; Q.mul base huge;
      Q.div base huge; Q.mul tiny base; Q.neg base ]

let arb_adv = QCheck.make ~print:Q.to_string gen_adv

let gen_arr dim = QCheck.Gen.(map Array.of_list (list_size (return dim) gen_adv))

let print_arr a =
  "[" ^ String.concat ", " (Array.to_list (Array.map Q.to_string a)) ^ "]"

let arb_dot =
  (* (a, p, b) with b biased to land exactly on, or 1/2^200 off, the
     hyperplane a.x = b — the inputs the float filter cannot decide. *)
  let open QCheck.Gen in
  let gen =
    let* dim = 2 -- 4 in
    let* a = gen_arr dim in
    let* p = gen_arr dim in
    let dot =
      Array.fold_left Q.add Q.zero (Array.map2 Q.mul a p)
    in
    let* b = oneofl [ dot; Q.add dot tiny; Q.sub dot tiny; Q.zero; Q.mul dot Q.two ] in
    return (a, p, b)
  in
  QCheck.make
    ~print:(fun (a, p, b) ->
        Printf.sprintf "a=%s p=%s b=%s" (print_arr a) (print_arr p)
          (Q.to_string b))
    gen

let arb_cross =
  let open QCheck.Gen in
  let gen =
    let* o = gen_arr 2 in
    let* a = gen_arr 2 in
    (* b biased toward exact collinearity with (o, a). *)
    let* k = oneofl [ Q.of_int 2; Q.neg Q.one; Q.half; Q.add Q.one tiny ] in
    let colinear =
      Array.map2 (fun oi ai -> Q.add oi (Q.mul k (Q.sub ai oi))) o a
    in
    let* b = oneof [ return colinear; gen_arr 2 ] in
    return (o, a, b)
  in
  QCheck.make
    ~print:(fun (o, a, b) ->
        Printf.sprintf "o=%s a=%s b=%s" (print_arr o) (print_arr a)
          (print_arr b))
    gen

let props =
  [ Gen.prop ~count:500 "sign: filtered = exact" arb_adv
      (fun x ->
         filtered (fun () -> Filter.sign x) = exact (fun () -> Filter.sign x));
    Gen.prop ~count:500 "compare: filtered = exact" (QCheck.pair arb_adv arb_adv)
      (fun (a, b) ->
         filtered (fun () -> Filter.compare a b)
         = exact (fun () -> Filter.compare a b));
    Gen.prop ~count:500 "Q.compare carries the filter" (QCheck.pair arb_adv arb_adv)
      (fun (a, b) ->
         filtered (fun () -> Q.compare a b) = exact (fun () -> Q.compare a b));
    Gen.prop ~count:500 "dot-minus: filtered = exact" arb_dot
      (fun (a, p, b) ->
         filtered (fun () -> Filter.sign_of_dot_minus a p b)
         = exact (fun () -> Filter.sign_of_dot_minus a p b));
    Gen.prop ~count:500 "cross2: filtered = exact" arb_cross
      (fun (o, a, b) ->
         filtered (fun () -> Filter.sign_cross2 o a b)
         = exact (fun () -> Filter.sign_cross2 o a b));
    Gen.prop ~count:500 "cross2o: filtered = exact" arb_cross
      (fun (_, a, b) ->
         filtered (fun () -> Filter.sign_cross2o a b)
         = exact (fun () -> Filter.sign_cross2o a b)) ]

(* Hand-picked degeneracies: the filter must take the exact fallback
   here and still answer correctly. *)
let test_adversarial_units () =
  let check_sign name expect x =
    Alcotest.(check int) name expect (filtered (fun () -> Filter.sign x))
  in
  check_sign "exact zero" 0 (Q.sub (Q.of_ints 1 3) (Q.of_ints 2 6));
  check_sign "+tiny" 1 tiny;
  check_sign "-tiny" (-1) (Q.neg tiny);
  check_sign "huge + tiny - huge" 1 (Q.sub (Q.add huge tiny) huge);
  let a = [| Q.of_ints 1 3; Q.of_ints (-2) 7 |] in
  let p = [| Q.of_ints 21 5; Q.of_ints 7 11 |] in
  let dot = Q.add (Q.mul a.(0) p.(0)) (Q.mul a.(1) p.(1)) in
  let d0 = filtered (fun () -> Filter.sign_of_dot_minus a p dot) in
  Alcotest.(check int) "dot exactly on hyperplane" 0 d0;
  Alcotest.(check int) "dot tiny above" 1
    (filtered (fun () -> Filter.sign_of_dot_minus a p (Q.sub dot tiny)));
  Alcotest.(check int) "dot tiny below" (-1)
    (filtered (fun () -> Filter.sign_of_dot_minus a p (Q.add dot tiny)))

(* Transcript invariance: same scenario, both kernels, memo bypassed —
   byte-identical event streams and equal decisions. *)
let test_transcript_invariance () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:42 () in
  let run_under m =
    Parallel.Memo.with_bypass (fun () ->
        let trace = Obs.Trace.create () in
        let r =
          Chc.Executor.run ~trace { spec with Chc.Scenario.kernel = Some m }
        in
        (r, Obs.Trace.to_jsonl trace))
  in
  let re, je = run_under K.Exact in
  let rf, jf = run_under K.Filtered in
  Alcotest.(check bool) "exact run healthy" true
    (re.Chc.Executor.terminated && re.Chc.Executor.valid
     && re.Chc.Executor.agreement_ok && re.Chc.Executor.optimal);
  Alcotest.(check string) "byte-identical transcripts" je jf;
  Alcotest.(check int) "same t_end" re.Chc.Executor.result.Chc.Cc.t_end
    rf.Chc.Executor.result.Chc.Cc.t_end;
  Array.iteri
    (fun i o ->
       let same =
         match (o, rf.Chc.Executor.result.Chc.Cc.outputs.(i)) with
         | None, None -> true
         | Some p, Some p' -> Geometry.Polytope.equal p p'
         | _ -> false
       in
       Alcotest.(check bool)
         (Printf.sprintf "process %d decides identically" i)
         true same)
    re.Chc.Executor.result.Chc.Cc.outputs

(* The differential oracle itself: codec roundtrip and a passing grade
   on a healthy scenario. *)
let test_oracle_kernel_equivalence () =
  let o = Fuzz.Oracle.Kernel_equivalence in
  (match Fuzz.Oracle.of_json (Fuzz.Oracle.to_json o) with
   | Ok o' -> Alcotest.(check string) "codec roundtrip" (Fuzz.Oracle.name o)
                (Fuzz.Oracle.name o')
   | Error e -> Alcotest.fail ("oracle codec: " ^ e));
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:7 () in
  match Fuzz.Oracle.check o spec with
  | Fuzz.Oracle.Pass -> ()
  | Fuzz.Oracle.Fail msg -> Alcotest.fail ("kernel divergence: " ^ msg)

let suite =
  [ ( "filter",
      [ Alcotest.test_case "adversarial units" `Quick test_adversarial_units;
        Alcotest.test_case "transcript invariance d=3" `Quick
          test_transcript_invariance;
        Alcotest.test_case "kernel-equivalence oracle" `Quick
          test_oracle_kernel_equivalence ]
      @ List.map Gen.qtest props ) ]
