(* Tests for the observability layer (lib/obs) and the bugfixes it
   surfaced: trace determinism across pool sizes, trace/metrics
   consistency, the Step_limit_exceeded path, validated CLI parsing,
   memo lifetime counters and pool utilization stats. *)

module Pool = Parallel.Pool
module Memo = Parallel.Memo
module Q = Numeric.Q
module Sim = Runtime.Sim
module Crash = Runtime.Crash
module Trace = Obs.Trace
module Executor = Chc.Executor
module Cc = Chc.Cc
module Cli = Chc.Cli

let with_pool_size size f =
  let saved = Pool.global_size () in
  Pool.set_global_size size;
  Fun.protect ~finally:(fun () -> Pool.set_global_size saved) f

(* ------------------------------------------------------------------ *)
(* Trace determinism: same spec, same seed ⇒ byte-identical JSONL
   whatever the pool size. This is the acceptance criterion behind the
   [chc_sim trace] subcommand. *)

let traced_jsonl ~size spec =
  with_pool_size size (fun () ->
      let trace = Trace.create () in
      ignore
        (Cc.execute ~trace ~round0:spec.Executor.round0
           ~config:spec.Executor.config ~inputs:spec.Executor.inputs
           ~crash:spec.Executor.crash ~scheduler:spec.Executor.scheduler
           ~seed:spec.Executor.seed ());
      Trace.to_jsonl trace)

let test_trace_pool_invariant () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  List.iter
    (fun seed ->
       let spec = Executor.default_spec ~config ~seed () in
       let t1 = traced_jsonl ~size:1 spec in
       Alcotest.(check bool) "trace is non-empty" true
         (String.length t1 > 0);
       Alcotest.(check string) "1-domain and 4-domain traces identical" t1
         (traced_jsonl ~size:4 spec))
    [3; 17]

(* ------------------------------------------------------------------ *)
(* Trace/metrics consistency: the event counts in the transcript must
   agree with the simulator's own counters, and protocol milestones
   must match the graded outcome. *)

let count p trace = List.length (List.filter p (Trace.events trace))

let test_trace_consistency () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:11 () in
  let trace = Trace.create () in
  let r = Executor.run ~trace spec in
  let m = r.Executor.result.Cc.metrics in
  let is_send = function Trace.Send _ -> true | _ -> false in
  let is_deliver = function Trace.Deliver _ -> true | _ -> false in
  let is_dead = function Trace.Dead_letter _ -> true | _ -> false in
  let is_drop = function Trace.Drop _ -> true | _ -> false in
  let is_decide = function Trace.Decide _ -> true | _ -> false in
  let is_round0 = function
    | Trace.Round_enter { round = 0; _ } -> true
    | _ -> false
  in
  Alcotest.(check int) "Send events = metrics.sent" m.Sim.sent
    (count is_send trace);
  Alcotest.(check int) "Deliver events = metrics.delivered" m.Sim.delivered
    (count is_deliver trace);
  Alcotest.(check int) "Dead_letter events = metrics.dead_lettered"
    m.Sim.dead_lettered (count is_dead trace);
  Alcotest.(check int) "Drop events = metrics.dropped" m.Sim.dropped
    (count is_drop trace);
  let decided =
    Array.fold_left
      (fun acc o -> if Option.is_some o then acc + 1 else acc)
      0 r.Executor.result.Cc.outputs
  in
  Alcotest.(check int) "Decide events = decided processes" decided
    (count is_decide trace);
  Alcotest.(check bool) "some process entered round 0" true
    (count is_round0 trace > 0);
  Alcotest.(check bool) "some stable-vector view stabilized" true
    (count (function Trace.Stable _ -> true | _ -> false) trace > 0)

(* ------------------------------------------------------------------ *)
(* Step_limit_exceeded: an infinite ping-pong must hit the limit, and
   the trace must show exactly [max_steps] delivery decisions. *)

let test_step_limit () =
  let trace = Trace.create () in
  let sim =
    Sim.create ~trace ~n:2 ~seed:1 ~scheduler:Runtime.Scheduler.round_robin
      ~crash:[| Crash.Never; Crash.Never |]
      ~make:(fun _ ->
          { Sim.on_start = (fun ctx -> Sim.send ctx (1 - Sim.me ctx) ());
            Sim.on_receive =
              (fun ctx src () -> Sim.send ctx src ()) })
      ()
  in
  Alcotest.check_raises "ping-pong exceeds the step limit"
    Sim.Step_limit_exceeded
    (fun () -> Sim.run ~max_steps:100 sim);
  Alcotest.(check int) "exactly max_steps Deliver events" 100
    (count (function Trace.Deliver _ -> true | _ -> false) trace);
  Alcotest.(check int) "metrics agree" 100 (Sim.metrics sim).Sim.delivered

(* ------------------------------------------------------------------ *)
(* CLI parsing regressions (satellite bugfix: bare [int_of_string]
   used to escape as a raw Failure backtrace). *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ids = Alcotest.(result (list int) string)

let test_parse_ids () =
  Alcotest.check ids "valid list" (Ok [2; 4]) (Cli.parse_ids ~n:7 ~f:2 " 2, 4 ");
  Alcotest.check ids "dedup" (Ok [3]) (Cli.parse_ids ~n:7 ~f:2 "3,3");
  Alcotest.check ids "empty string is the empty set" (Ok [])
    (Cli.parse_ids ~n:7 ~f:2 "");
  (match Cli.parse_ids ~n:7 ~f:2 "0,x" with
   | Error msg ->
     Alcotest.(check bool) "error names the bad token" true
       (contains ~sub:"\"x\"" msg)
   | Ok _ -> Alcotest.fail "malformed id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "7" with
   | Error msg ->
     Alcotest.(check bool) "out-of-range error names the range" true
       (contains ~sub:"0..6" msg)
   | Ok _ -> Alcotest.fail "out-of-range id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "-1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "negative id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "0,1,2" with
   | Error msg ->
     Alcotest.(check bool) "too many ids: error names f" true
       (contains ~sub:"f = 2" msg)
   | Ok _ -> Alcotest.fail "more than f ids accepted")

let test_parse_q_and_inputs () =
  (match Cli.parse_q "--eps" "1/10" with
   | Ok q -> Alcotest.(check bool) "rational parses" true (Q.equal q (Q.of_ints 1 10))
   | Error e -> Alcotest.fail e);
  (match Cli.parse_q "--eps" "0.25" with
   | Ok q -> Alcotest.(check bool) "decimal parses" true (Q.equal q (Q.of_ints 1 4))
   | Error e -> Alcotest.fail e);
  (match Cli.parse_q "--eps" "nope" with
   | Error msg ->
     Alcotest.(check bool) "error names the option" true
       (contains ~sub:"--eps" msg)
   | Ok _ -> Alcotest.fail "garbage rational accepted");
  (match Cli.parse_inputs ~n:2 ~d:2 "0,0;1,1" with
   | Ok pts -> Alcotest.(check int) "two points" 2 (Array.length pts)
   | Error e -> Alcotest.fail e);
  (match Cli.parse_inputs ~n:3 ~d:2 "0,0;1,1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong point count accepted");
  (match Cli.parse_inputs ~n:1 ~d:3 "0,0" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong dimension accepted")

(* ------------------------------------------------------------------ *)
(* Memo counters (satellite bugfix: [clear] used to zero the lifetime
   hit/miss counters, so every epoch flush lied about the hit rate). *)

let test_memo_lifetime_stats () =
  let calls = ref 0 in
  let tbl =
    Memo.create ~name:"test-obs-memo" ~max_size:4 ~hash:Hashtbl.hash
      ~equal:Int.equal ()
  in
  let get k = Memo.find_or_add tbl k (fun () -> incr calls; k * 2) in
  Alcotest.(check int) "miss computes" 2 (get 1);
  Alcotest.(check int) "hit returns cached" 2 (get 1);
  let s = Memo.stats tbl in
  Alcotest.(check int) "one hit" 1 s.Memo.hits;
  Alcotest.(check int) "one miss" 1 s.Memo.misses;
  Alcotest.(check int) "one resident entry" 1 s.Memo.entries;
  Memo.clear tbl;
  let s = Memo.stats tbl in
  Alcotest.(check int) "hits survive clear" 1 s.Memo.hits;
  Alcotest.(check int) "misses survive clear" 1 s.Memo.misses;
  Alcotest.(check int) "clear evicts the resident entry" 1 s.Memo.evictions;
  Alcotest.(check int) "no resident entries after clear" 0 s.Memo.entries;
  (* Overflow the 4-entry bound: epoch flush evicts wholesale. *)
  List.iter (fun k -> ignore (get k)) [10; 11; 12; 13; 14];
  let s = Memo.stats tbl in
  Alcotest.(check bool) "epoch flush counted as evictions" true
    (s.Memo.evictions > 1);
  Alcotest.(check bool) "table stays bounded" true (s.Memo.entries <= 4);
  Alcotest.(check bool) "named table appears in the registry" true
    (List.mem_assoc "test-obs-memo" (Memo.all_stats ()))

(* ------------------------------------------------------------------ *)
(* Pool sizing (satellite bugfix: invalid CHC_DOMAINS used to fall
   back silently) and utilization counters. *)

let psize = Alcotest.(result int string)

let test_pool_parse_size () =
  Alcotest.check psize "plain" (Ok 4) (Pool.parse_size "4");
  Alcotest.check psize "whitespace tolerated" (Ok 8) (Pool.parse_size " 8 ");
  Alcotest.check psize "clamped to 64" (Ok 64) (Pool.parse_size "100");
  (match Pool.parse_size "0" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "zero accepted");
  (match Pool.parse_size "-3" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "negative accepted");
  (match Pool.parse_size "abc" with
   | Error msg ->
     Alcotest.(check bool) "error names the value" true
       (contains ~sub:"abc" msg)
   | Ok _ -> Alcotest.fail "garbage accepted")

let test_pool_stats () =
  let pool = Pool.create ~size:2 in
  let s0 = Pool.stats pool in
  Alcotest.(check int) "fresh pool ran nothing" 0 s0.Pool.tasks_run;
  ignore (Pool.parallel_map pool (fun x -> x + 1) [1; 2; 3; 4]);
  let s = Pool.stats pool in
  Alcotest.(check int) "pool size reported" 2 s.Pool.pool_size;
  Alcotest.(check int) "four tasks dispatched" 4 s.Pool.tasks_run;
  Alcotest.(check int) "one batch" 1 s.Pool.batches;
  (* Size-1 pools sequentialize and bypass the queue entirely. *)
  let seq = Pool.create ~size:1 in
  ignore (Pool.parallel_map seq (fun x -> x + 1) [1; 2; 3]);
  Alcotest.(check int) "sequential pool dispatches nothing" 0
    (Pool.stats seq).Pool.tasks_run

let suite =
  [ ( "obs",
      [ Alcotest.test_case "trace pool-size invariant (d=2)" `Quick
          test_trace_pool_invariant;
        Alcotest.test_case "trace/metrics consistency" `Quick
          test_trace_consistency;
        Alcotest.test_case "step limit traced" `Quick test_step_limit;
        Alcotest.test_case "parse_ids validation" `Quick test_parse_ids;
        Alcotest.test_case "parse_q / parse_inputs validation" `Quick
          test_parse_q_and_inputs;
        Alcotest.test_case "memo lifetime stats" `Quick
          test_memo_lifetime_stats;
        Alcotest.test_case "pool parse_size" `Quick test_pool_parse_size;
        Alcotest.test_case "pool stats" `Quick test_pool_stats ] ) ]
