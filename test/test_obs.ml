(* Tests for the observability layer (lib/obs) and the bugfixes it
   surfaced: trace determinism across pool sizes, trace/metrics
   consistency, the Step_limit_exceeded path, validated CLI parsing,
   memo lifetime counters and pool utilization stats. *)

module Pool = Parallel.Pool
module Memo = Parallel.Memo
module Q = Numeric.Q
module Sim = Runtime.Sim
module Crash = Runtime.Crash
module Trace = Obs.Trace
module Executor = Chc.Executor
module Cc = Chc.Cc
module Cli = Chc.Cli

let with_pool_size size f =
  let saved = Pool.global_size () in
  Pool.set_global_size size;
  Fun.protect ~finally:(fun () -> Pool.set_global_size saved) f

(* ------------------------------------------------------------------ *)
(* Trace determinism: same spec, same seed ⇒ byte-identical JSONL
   whatever the pool size. This is the acceptance criterion behind the
   [chc_sim trace] subcommand. *)

let traced_jsonl ~size spec =
  with_pool_size size (fun () ->
      let trace = Trace.create () in
      ignore
        (Cc.execute ~trace ~round0:spec.Executor.round0
           ~config:spec.Executor.config ~inputs:spec.Executor.inputs
           ~crash:spec.Executor.crash ~scheduler:spec.Executor.scheduler
           ~seed:spec.Executor.seed ());
      Trace.to_jsonl trace)

let test_trace_pool_invariant () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  List.iter
    (fun seed ->
       let spec = Executor.default_spec ~config ~seed () in
       let t1 = traced_jsonl ~size:1 spec in
       Alcotest.(check bool) "trace is non-empty" true
         (String.length t1 > 0);
       Alcotest.(check string) "1-domain and 4-domain traces identical" t1
         (traced_jsonl ~size:4 spec))
    [3; 17]

(* ------------------------------------------------------------------ *)
(* Trace/metrics consistency: the event counts in the transcript must
   agree with the simulator's own counters, and protocol milestones
   must match the graded outcome. *)

let count p trace = List.length (List.filter p (Trace.events trace))

let test_trace_consistency () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:11 () in
  let trace = Trace.create () in
  let r = Executor.run ~trace spec in
  let m = r.Executor.result.Cc.metrics in
  let is_send = function Trace.Send _ -> true | _ -> false in
  let is_deliver = function Trace.Deliver _ -> true | _ -> false in
  let is_dead = function Trace.Dead_letter _ -> true | _ -> false in
  let is_drop = function Trace.Drop _ -> true | _ -> false in
  let is_decide = function Trace.Decide _ -> true | _ -> false in
  let is_round0 = function
    | Trace.Round_enter { round = 0; _ } -> true
    | _ -> false
  in
  Alcotest.(check int) "Send events = metrics.sent" m.Sim.sent
    (count is_send trace);
  Alcotest.(check int) "Deliver events = metrics.delivered" m.Sim.delivered
    (count is_deliver trace);
  Alcotest.(check int) "Dead_letter events = metrics.dead_lettered"
    m.Sim.dead_lettered (count is_dead trace);
  Alcotest.(check int) "Drop events = metrics.dropped" m.Sim.dropped
    (count is_drop trace);
  let decided =
    Array.fold_left
      (fun acc o -> if Option.is_some o then acc + 1 else acc)
      0 r.Executor.result.Cc.outputs
  in
  Alcotest.(check int) "Decide events = decided processes" decided
    (count is_decide trace);
  Alcotest.(check bool) "some process entered round 0" true
    (count is_round0 trace > 0);
  Alcotest.(check bool) "some stable-vector view stabilized" true
    (count (function Trace.Stable _ -> true | _ -> false) trace > 0)

(* ------------------------------------------------------------------ *)
(* Step_limit_exceeded: an infinite ping-pong must hit the limit, and
   the trace must show exactly [max_steps] delivery decisions. *)

let test_step_limit () =
  let trace = Trace.create () in
  let sim =
    Sim.create ~trace ~n:2 ~seed:1 ~scheduler:Runtime.Scheduler.round_robin
      ~crash:[| Crash.Never; Crash.Never |]
      ~make:(fun _ ->
          { Runtime.Transport.on_start =
              (fun ep ->
                 ep.Runtime.Transport.send (1 - ep.Runtime.Transport.me) ());
            on_receive =
              (fun ep ~src () -> ep.Runtime.Transport.send src ()) })
      ()
  in
  Alcotest.check_raises "ping-pong exceeds the step limit"
    Sim.Step_limit_exceeded
    (fun () -> Sim.run ~max_steps:100 sim);
  Alcotest.(check int) "exactly max_steps Deliver events" 100
    (count (function Trace.Deliver _ -> true | _ -> false) trace);
  Alcotest.(check int) "metrics agree" 100 (Sim.metrics sim).Sim.delivered

(* ------------------------------------------------------------------ *)
(* CLI parsing regressions (satellite bugfix: bare [int_of_string]
   used to escape as a raw Failure backtrace). *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ids = Alcotest.(result (list int) string)

let test_parse_ids () =
  Alcotest.check ids "valid list" (Ok [2; 4]) (Cli.parse_ids ~n:7 ~f:2 " 2, 4 ");
  Alcotest.check ids "dedup" (Ok [3]) (Cli.parse_ids ~n:7 ~f:2 "3,3");
  Alcotest.check ids "empty string is the empty set" (Ok [])
    (Cli.parse_ids ~n:7 ~f:2 "");
  (match Cli.parse_ids ~n:7 ~f:2 "0,x" with
   | Error msg ->
     Alcotest.(check bool) "error names the bad token" true
       (contains ~sub:"\"x\"" msg)
   | Ok _ -> Alcotest.fail "malformed id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "7" with
   | Error msg ->
     Alcotest.(check bool) "out-of-range error names the range" true
       (contains ~sub:"0..6" msg)
   | Ok _ -> Alcotest.fail "out-of-range id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "-1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "negative id accepted");
  (match Cli.parse_ids ~n:7 ~f:2 "0,1,2" with
   | Error msg ->
     Alcotest.(check bool) "too many ids: error names f" true
       (contains ~sub:"f = 2" msg)
   | Ok _ -> Alcotest.fail "more than f ids accepted")

let test_parse_q_and_inputs () =
  (match Cli.parse_q "--eps" "1/10" with
   | Ok q -> Alcotest.(check bool) "rational parses" true (Q.equal q (Q.of_ints 1 10))
   | Error e -> Alcotest.fail e);
  (match Cli.parse_q "--eps" "0.25" with
   | Ok q -> Alcotest.(check bool) "decimal parses" true (Q.equal q (Q.of_ints 1 4))
   | Error e -> Alcotest.fail e);
  (match Cli.parse_q "--eps" "nope" with
   | Error msg ->
     Alcotest.(check bool) "error names the option" true
       (contains ~sub:"--eps" msg)
   | Ok _ -> Alcotest.fail "garbage rational accepted");
  (match Cli.parse_inputs ~n:2 ~d:2 "0,0;1,1" with
   | Ok pts -> Alcotest.(check int) "two points" 2 (Array.length pts)
   | Error e -> Alcotest.fail e);
  (match Cli.parse_inputs ~n:3 ~d:2 "0,0;1,1" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong point count accepted");
  (match Cli.parse_inputs ~n:1 ~d:3 "0,0" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong dimension accepted")

(* ------------------------------------------------------------------ *)
(* Memo counters (satellite bugfix: [clear] used to zero the lifetime
   hit/miss counters, so every epoch flush lied about the hit rate). *)

let test_memo_lifetime_stats () =
  let calls = ref 0 in
  let tbl =
    Memo.create ~name:"test-obs-memo" ~max_size:4 ~hash:Hashtbl.hash
      ~equal:Int.equal ()
  in
  let get k = Memo.find_or_add tbl k (fun () -> incr calls; k * 2) in
  Alcotest.(check int) "miss computes" 2 (get 1);
  Alcotest.(check int) "hit returns cached" 2 (get 1);
  let s = Memo.stats tbl in
  Alcotest.(check int) "one hit" 1 s.Memo.hits;
  Alcotest.(check int) "one miss" 1 s.Memo.misses;
  Alcotest.(check int) "one resident entry" 1 s.Memo.entries;
  Memo.clear tbl;
  let s = Memo.stats tbl in
  Alcotest.(check int) "hits survive clear" 1 s.Memo.hits;
  Alcotest.(check int) "misses survive clear" 1 s.Memo.misses;
  Alcotest.(check int) "clear evicts the resident entry" 1 s.Memo.evictions;
  Alcotest.(check int) "no resident entries after clear" 0 s.Memo.entries;
  (* Overflow the 4-entry bound: epoch flush evicts wholesale. *)
  List.iter (fun k -> ignore (get k)) [10; 11; 12; 13; 14];
  let s = Memo.stats tbl in
  Alcotest.(check bool) "epoch flush counted as evictions" true
    (s.Memo.evictions > 1);
  Alcotest.(check bool) "table stays bounded" true (s.Memo.entries <= 4);
  Alcotest.(check bool) "named table appears in the registry" true
    (List.mem_assoc "test-obs-memo" (Memo.all_stats ()))

(* ------------------------------------------------------------------ *)
(* Pool sizing (satellite bugfix: invalid CHC_DOMAINS used to fall
   back silently) and utilization counters. *)

let psize = Alcotest.(result int string)

let test_pool_parse_size () =
  Alcotest.check psize "plain" (Ok 4) (Pool.parse_size "4");
  Alcotest.check psize "whitespace tolerated" (Ok 8) (Pool.parse_size " 8 ");
  Alcotest.check psize "clamped to 64" (Ok 64) (Pool.parse_size "100");
  (match Pool.parse_size "0" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "zero accepted");
  (match Pool.parse_size "-3" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "negative accepted");
  (match Pool.parse_size "abc" with
   | Error msg ->
     Alcotest.(check bool) "error names the value" true
       (contains ~sub:"abc" msg)
   | Ok _ -> Alcotest.fail "garbage accepted")

let test_pool_stats () =
  let pool = Pool.create ~size:2 in
  let s0 = Pool.stats pool in
  Alcotest.(check int) "fresh pool ran nothing" 0 s0.Pool.tasks_run;
  ignore (Pool.parallel_map pool (fun x -> x + 1) [1; 2; 3; 4]);
  let s = Pool.stats pool in
  Alcotest.(check int) "pool size reported" 2 s.Pool.pool_size;
  Alcotest.(check int) "four tasks dispatched" 4 s.Pool.tasks_run;
  Alcotest.(check int) "one batch" 1 s.Pool.batches;
  (* Size-1 pools sequentialize and bypass the queue entirely. *)
  let seq = Pool.create ~size:1 in
  ignore (Pool.parallel_map seq (fun x -> x + 1) [1; 2; 3]);
  Alcotest.(check int) "sequential pool dispatches nothing" 0
    (Pool.stats seq).Pool.tasks_run

(* ------------------------------------------------------------------ *)
(* Span profiler: nesting, exception safety, balanced export. *)

let with_profiler f =
  Obs.Prof.reset ();
  Obs.Prof.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
        Obs.Prof.set_enabled false;
        Obs.Prof.reset ())
    f

let test_span_nesting () =
  with_profiler (fun () ->
      Obs.Prof.with_span "outer" (fun () ->
          Obs.Prof.with_span "inner" (fun () -> ()));
      (* an exception must still close the span *)
      (try
         Obs.Prof.with_span "boom" (fun () -> raise Exit)
       with Exit -> ());
      Alcotest.(check int) "three completed spans" 3 (Obs.Prof.span_count ());
      let evs = Obs.Prof.events () in
      let names =
        List.filter_map
          (fun (e : Obs.Prof.event) ->
             match e.Obs.Prof.phase with
             | `B -> Some e.Obs.Prof.name
             | `E | `X _ -> None)
          evs
      in
      Alcotest.(check (list string)) "stack order within the domain"
        [ "outer"; "inner"; "boom" ] names;
      (* depth never negative, ends at zero *)
      let final =
        List.fold_left
          (fun d (e : Obs.Prof.event) ->
             let d =
               d + (match e.Obs.Prof.phase with `B -> 1 | `E -> -1 | `X _ -> 0)
             in
             Alcotest.(check bool) "depth never negative" true (d >= 0);
             d)
          0 evs
      in
      Alcotest.(check int) "all spans closed" 0 final;
      (* timestamps non-decreasing in recording order *)
      ignore
        (List.fold_left
           (fun prev (e : Obs.Prof.event) ->
              Alcotest.(check bool) "monotone timestamps" true
                (Int64.compare e.Obs.Prof.ts_ns prev >= 0);
              e.Obs.Prof.ts_ns)
           Int64.min_int evs);
      let summary = Obs.Prof.summary () in
      List.iter
        (fun name ->
           match List.assoc_opt name summary with
           | None -> Alcotest.failf "span %S missing from summary" name
           | Some (s : Obs.Prof.stat) ->
             Alcotest.(check int) (name ^ " called once") 1 s.Obs.Prof.calls;
             Alcotest.(check bool) (name ^ " max >= p50") true
               (s.Obs.Prof.max_ns >= s.Obs.Prof.p50_ns))
        [ "outer"; "inner"; "boom" ])

let test_span_disabled_records_nothing () =
  Obs.Prof.reset ();
  Alcotest.(check bool) "profiler starts disabled" false (Obs.Prof.enabled ());
  Obs.Prof.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "nothing recorded while disabled" 0
    (Obs.Prof.span_count ())

(* Perfetto/Chrome export. [ts] fields are fixed-format "%.3f" floats,
   which the deliberately exact Codec.Json rejects; deleting '.' chars
   outside string literals rescales them losslessly to integers (ns)
   without touching the dotted span names, so the strict parser can
   validate the document. *)
let strip_dots s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false and escaped = ref false in
  String.iter
    (fun c ->
       let keep =
         if !in_string then begin
           (if !escaped then escaped := false
            else match c with
              | '\\' -> escaped := true
              | '"' -> in_string := false
              | _ -> ());
           true
         end
         else begin
           (match c with '"' -> in_string := true | _ -> ());
           c <> '.'
         end
       in
       if keep then Buffer.add_char b c)
    s;
  Buffer.contents b

let test_chrome_json_wellformed () =
  with_profiler (fun () ->
      Obs.Prof.with_span "a.dotted.name" ~attrs:[ ("k", "v\"q") ] (fun () ->
          Obs.Prof.with_span "leaf" (fun () -> ()));
      let json = Obs.Prof.to_chrome_json () in
      match Codec.Json.of_string (strip_dots json) with
      | Error e -> Alcotest.failf "chrome JSON does not parse: %s" e
      | Ok (Codec.Json.List evs) ->
        Alcotest.(check int) "B+E event count" (2 * Obs.Prof.span_count ())
          (List.length evs);
        List.iter
          (fun ev ->
             match Codec.Json.str_field "ph" ev with
             | Ok "B" ->
               Alcotest.(check bool) "B has a name" true
                 (Codec.Json.member "name" ev <> None);
               Alcotest.(check bool) "B has integer ts" true
                 (Result.is_ok (Codec.Json.int_field "ts" ev))
             | Ok "E" -> ()
             | Ok ph -> Alcotest.failf "unexpected phase %S" ph
             | Error e -> Alcotest.fail e)
          evs;
        Alcotest.(check bool) "dotted span name survives intact" true
          (contains ~sub:"a.dotted.name" json)
      | Ok _ -> Alcotest.fail "chrome JSON must be one event array")

(* ------------------------------------------------------------------ *)
(* Metrics registry: log-bucket histogram percentiles. *)

let test_histogram_percentiles () =
  let h = Obs.Metrics.histogram ~labels:[ ("t", "percentiles") ] "chc_test_obs" in
  List.iter
    (fun v -> Obs.Metrics.observe h (float_of_int v))
    (List.init 100 (fun i -> i + 1));
  let snap =
    List.find_opt
      (fun s -> s.Obs.Metrics.metric = "chc_test_obs")
      (Obs.Metrics.snapshot_all ())
  in
  match snap with
  | Some { Obs.Metrics.value = Obs.Metrics.Histogram st; _ } ->
    Alcotest.(check int) "count" 100 st.Obs.Metrics.count;
    Alcotest.(check (float 1e-6)) "sum exact" 5050.0 st.Obs.Metrics.sum;
    Alcotest.(check (float 1e-6)) "max exact" 100.0 st.Obs.Metrics.max_seen;
    (* estimates are bucket upper bounds: never below the exact
       percentile, at most one power-of-two above it *)
    Alcotest.(check bool) "p50 in [50, 64]" true
      (st.Obs.Metrics.p50 >= 50.0 && st.Obs.Metrics.p50 <= 64.0);
    Alcotest.(check bool) "p90 in [90, 100] (clamped to max)" true
      (st.Obs.Metrics.p90 >= 90.0 && st.Obs.Metrics.p90 <= 100.0);
    Alcotest.(check bool) "p99 in [99, 100] (clamped to max)" true
      (st.Obs.Metrics.p99 >= 99.0 && st.Obs.Metrics.p99 <= 100.0);
    (* the exposed recomputation hook agrees with the snapshot *)
    List.iter
      (fun (q, v) ->
         Alcotest.(check (float 1e-6))
           (Printf.sprintf "percentile_of_stats %.2f" q)
           v
           (Obs.Metrics.percentile_of_stats st q))
      [ (0.5, st.Obs.Metrics.p50); (0.9, st.Obs.Metrics.p90);
        (0.99, st.Obs.Metrics.p99) ]
  | Some _ -> Alcotest.fail "chc_test_obs is not a histogram"
  | None -> Alcotest.fail "chc_test_obs missing from snapshot_all"

(* ------------------------------------------------------------------ *)
(* Causal analysis. *)

(* Synthetic trace with a dead letter: causal reconstruction must keep
   the chain intact while still charging the dead-lettered delivery a
   scheduler step — the schedule replays with full fidelity. *)
let test_causal_dead_letter () =
  let trace = Trace.create () in
  List.iter (Trace.emit trace)
    [ Trace.Send { src = 0; dst = 1; seq = 0 };
      Trace.Send { src = 0; dst = 2; seq = 1 };
      Trace.Deliver { step = 1; src = 0; dst = 1; seq = 0 };
      Trace.Send { src = 1; dst = 0; seq = 2 };
      Trace.Crash { pid = 2; sends = 0 };
      Trace.Dead_letter { step = 2; src = 0; dst = 2; seq = 1 };
      Trace.Deliver { step = 3; src = 1; dst = 0; seq = 2 };
      Trace.Decide { pid = 0; round = 1; vertices = 1 } ];
  Alcotest.(check (list (pair int int)))
    "dead letter consumes a replayable scheduler decision"
    [ (0, 1); (0, 2); (1, 0) ]
    (Trace.schedule trace);
  let c = Obs.Causal.analyze ~n:3 trace in
  Alcotest.(check int) "total steps count the dead letter" 3
    c.Obs.Causal.total_steps;
  let p0 = c.Obs.Causal.processes.(0) in
  Alcotest.(check (option int)) "decide step" (Some 3) p0.Obs.Causal.decide_step;
  Alcotest.(check int) "two-hop critical chain" 2 (Obs.Causal.chain_length p0);
  (match p0.Obs.Causal.chain with
   | [ h1; h2 ] ->
     Alcotest.(check int) "first hop is the on_start send" 0 h1.Obs.Causal.seq;
     Alcotest.(check int) "first hop delivered at step 1" 1
       h1.Obs.Causal.deliver_step;
     Alcotest.(check int) "second hop is the triggered send" 2
       h2.Obs.Causal.seq;
     Alcotest.(check int) "second hop delivered at step 3" 3
       h2.Obs.Causal.deliver_step
   | _ -> Alcotest.fail "unexpected chain shape");
  Alcotest.(check int) "dead-lettered message gates nothing" 0
    (Obs.Causal.chain_length c.Obs.Causal.processes.(2));
  Alcotest.(check int) "max chain over decided processes" 2
    (Obs.Causal.max_chain_length c)

(* Schedule replay fidelity on a run that dead-letters: feeding a
   recorded schedule back as the Sim prefix must reproduce the trace
   byte-for-byte, which only works if [Trace.schedule] charges
   dead-lettered deliveries a decision like live ones. *)
let test_dead_letter_replay () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:7 ~ensure_crash:true () in
  let execute ?prefix ~scheduler trace =
    ignore
      (Cc.execute ~trace ?prefix ~round0:spec.Executor.round0
         ~config:spec.Executor.config ~inputs:spec.Executor.inputs
         ~crash:spec.Executor.crash ~scheduler ~seed:spec.Executor.seed ())
  in
  let recorded = Trace.create () in
  execute ~scheduler:spec.Executor.scheduler recorded;
  Alcotest.(check bool) "run contains dead letters" true
    (count (function Trace.Dead_letter _ -> true | _ -> false) recorded > 0);
  let replayed = Trace.create () in
  (* replay under a different fallback scheduler: the pinned prefix
     alone must force the recorded delivery order *)
  execute ~prefix:(Trace.schedule recorded)
    ~scheduler:Runtime.Scheduler.round_robin replayed;
  Alcotest.(check string) "prefix replay reproduces the trace byte-for-byte"
    (Trace.to_jsonl recorded) (Trace.to_jsonl replayed)

(* Critical-path output is a property of the schedule, so it must be
   byte-identical across pool sizes — the acceptance criterion behind
   [chc_sim trace --critical-path]. The crashing process makes the run
   exercise the dead-letter path on a real execution. *)
let test_critical_path_pool_invariant () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:7 ~ensure_crash:true () in
  let causal ~size =
    with_pool_size size (fun () ->
        let trace = Trace.create () in
        ignore (Executor.run ~trace spec);
        let c = Obs.Causal.analyze ~n:5 trace in
        (Obs.Causal.to_string c, Obs.Causal.to_json c))
  in
  let s1, j1 = causal ~size:1 in
  let s4, j4 = causal ~size:4 in
  Alcotest.(check string) "to_string identical across pool sizes" s1 s4;
  Alcotest.(check string) "to_json identical across pool sizes" j1 j4;
  Alcotest.(check bool) "analysis is non-trivial" true
    (String.length s1 > 100 && contains ~sub:"critical chain" s1)

(* ------------------------------------------------------------------ *)
(* Prof complete slices: per-job timelines recorded with explicit
   track ids; they export as ph:"X" under the dedicated track pid and
   never count as spans. *)

let test_prof_slices () =
  with_profiler (fun () ->
      Obs.Prof.with_span "host" (fun () -> ());
      Obs.Prof.slice ~track:42 ~ts_ns:1000L ~dur_ns:500L
        ~attrs:[ ("steps", "7") ] "pump";
      Obs.Prof.slice ~track:42 ~ts_ns:1500L ~dur_ns:250L "pump";
      Alcotest.(check int) "slices do not count as spans" 1
        (Obs.Prof.span_count ());
      let json = Obs.Prof.to_chrome_json () in
      Alcotest.(check bool) "X phase present" true
        (contains ~sub:{|"ph":"X"|} json);
      Alcotest.(check bool) "slices render under the track pid" true
        (contains ~sub:{|"pid":1000000,"tid":42|} json);
      Alcotest.(check bool) "explicit duration survives" true
        (contains ~sub:{|"dur":0.500|} json);
      (match Codec.Json.of_string (strip_dots json) with
       | Error e -> Alcotest.failf "chrome JSON with slices: %s" e
       | Ok _ -> ());
      match List.assoc_opt "pump" (Obs.Prof.summary ()) with
      | None -> Alcotest.fail "slice missing from summary"
      | Some s ->
        Alcotest.(check int) "both slices aggregated" 2 s.Obs.Prof.calls;
        Alcotest.(check (float 1e-6)) "summary uses explicit durations"
          750.0 s.Obs.Prof.total_ns)

(* ------------------------------------------------------------------ *)
(* Prometheus text-format grammar checker — the conformance pin for
   [Metrics.exposition]: families contiguous with exactly one TYPE
   (HELP, when present, immediately before it), histogram samples
   restricted to _bucket/_sum/_count with cumulative non-decreasing
   [le] buckets ending in a "+Inf" bucket that equals _count. *)

let is_metric_name s =
  s <> ""
  && (match s.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let sample_value_ok v =
  v = "+Inf" || v = "-Inf" || v = "NaN"
  || Option.is_some (float_of_string_opt v)

(* "name{l=\"v\",...} value" or "name value" ->
   (name, labels-with-braces, value) *)
let parse_sample line =
  match String.index_opt line '{' with
  | Some i ->
    (match String.rindex_opt line '}' with
     | Some j when j > i && j + 2 <= String.length line
                && line.[j + 1] = ' ' ->
       Ok
         ( String.sub line 0 i,
           String.sub line i (j - i + 1),
           String.sub line (j + 2) (String.length line - j - 2) )
     | _ -> Error "malformed labels")
  | None ->
    (match String.index_opt line ' ' with
     | Some i ->
       Ok
         ( String.sub line 0 i,
           "",
           String.sub line (i + 1) (String.length line - i - 1) )
     | None -> Error "no value")

let le_of labels =
  (* the le label as a float, and the label string without it *)
  let parts =
    match labels with
    | "" -> []
    | l -> String.split_on_char ','
             (String.sub l 1 (String.length l - 2))
  in
  let le, rest =
    List.partition
      (fun p -> String.length p >= 4 && String.sub p 0 4 = {|le="|})
      parts
  in
  match le with
  | [ p ] ->
    let v = String.sub p 4 (String.length p - 5) in
    let f =
      if v = "+Inf" then Some infinity else float_of_string_opt v
    in
    (f, String.concat "," rest)
  | _ -> (None, String.concat "," rest)

let check_exposition text =
  let err = ref None in
  let fail ln fmt =
    Printf.ksprintf
      (fun m ->
         if !err = None then err := Some (Printf.sprintf "line %d: %s" ln m))
      fmt
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let cur = ref None in              (* (family, type) *)
  let pending_help = ref None in
  (* histogram per-instance bucket state: base labels, last le, last
     cumulative count, +Inf totals per base *)
  let hstate = ref None in
  let inf_totals : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let handle_histogram ln fam name labels value =
    let suffix =
      let fl = String.length fam in
      if String.length name > fl && String.sub name 0 fl = fam then
        String.sub name fl (String.length name - fl)
      else ""
    in
    match suffix with
    | "_bucket" ->
      let le, base = le_of labels in
      (match (le, int_of_string_opt value) with
       | None, _ -> fail ln "bucket without le label"
       | _, None -> fail ln "bucket count is not an integer"
       | Some le, Some cum ->
         (match !hstate with
          | Some (b, last_le, last_cum) when b = base ->
            if le <= last_le then fail ln "le bounds not increasing";
            if cum < last_cum then fail ln "bucket counts not cumulative"
          | _ -> ());
         hstate := Some (base, le, cum);
         if le = infinity then Hashtbl.replace inf_totals base cum)
    | "_sum" ->
      if not (sample_value_ok value) then fail ln "unparseable _sum"
    | "_count" ->
      let _, base = le_of labels in
      (match (Hashtbl.find_opt inf_totals base, int_of_string_opt value) with
       | None, _ -> fail ln "_count without a +Inf bucket"
       | _, None -> fail ln "_count is not an integer"
       | Some inf, Some c ->
         if inf <> c then fail ln "+Inf bucket (%d) <> _count (%d)" inf c);
      hstate := None
    | _ -> fail ln "histogram sample %s has no valid suffix" name
  in
  List.iteri
    (fun i line ->
       let ln = i + 1 in
       if !err = None && line <> "" then begin
         if line.[0] = '#' then begin
           match String.split_on_char ' ' line with
           | "#" :: "HELP" :: name :: (_ :: _ as text)
             when is_metric_name name ->
             if Hashtbl.mem seen name then
               fail ln "HELP for already-rendered family %s" name;
             if String.concat " " text = "" then fail ln "empty HELP text";
             pending_help := Some name
           | "#" :: "TYPE" :: name :: [ ty ] when is_metric_name name ->
             if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
               fail ln "unknown type %s" ty;
             if Hashtbl.mem seen name then
               fail ln "duplicate TYPE for family %s" name;
             (match !pending_help with
              | Some h when h <> name ->
                fail ln "HELP names %s but TYPE names %s" h name
              | _ -> ());
             pending_help := None;
             Hashtbl.add seen name ();
             cur := Some (name, ty);
             hstate := None;
             Hashtbl.reset inf_totals
           | _ -> fail ln "malformed comment %S" line
         end
         else begin
           if !pending_help <> None then
             fail ln "HELP not immediately followed by its TYPE";
           match parse_sample line with
           | Error m -> fail ln "%s" m
           | Ok (name, labels, value) ->
             if not (is_metric_name name) then
               fail ln "invalid metric name %S" name;
             (match !cur with
              | None -> fail ln "sample before any TYPE"
              | Some (fam, ("counter" | "gauge")) ->
                if name <> fam then
                  fail ln "sample %s outside family %s" name fam;
                if not (sample_value_ok value) then
                  fail ln "unparseable value %S" value
              | Some (fam, _) -> handle_histogram ln fam name labels value)
         end
       end)
    (String.split_on_char '\n' text);
  match !err with None -> Ok () | Some m -> Error m

let test_exposition_grammar () =
  let c =
    Obs.Metrics.counter ~help:"Grammar-checker test counter."
      ~labels:[ ("case", "grammar") ] "chc_test_grammar_total"
  in
  Obs.Metrics.add c 3;
  let g = Obs.Metrics.gauge ~help:"A test gauge." "chc_test_grammar_gauge" in
  Obs.Metrics.set g 2.5;
  let h =
    Obs.Metrics.histogram ~help:"A test histogram."
      ~labels:[ ("t", "grammar") ] "chc_test_grammar_seconds"
  in
  List.iter (Obs.Metrics.observe h) [ 0.001; 0.1; 0.1; 7.5; 1e6 ];
  let text = Obs.Metrics.exposition_all () in
  (* the checker itself must accept hand-built pathologies' absence *)
  (match check_exposition text with
   | Ok () -> ()
   | Error m -> Alcotest.failf "exposition violates the grammar: %s" m);
  (* HELP renders, escaped, immediately before its TYPE *)
  let help_line = "# HELP chc_test_grammar_total Grammar-checker test counter." in
  let type_line = "# TYPE chc_test_grammar_total counter" in
  Alcotest.(check bool) "HELP line present" true
    (contains ~sub:(help_line ^ "\n" ^ type_line) text);
  (* daemon families registered by lib/serve carry HELP too *)
  Alcotest.(check bool) "chc_serve family HELP present" true
    (contains ~sub:"# HELP chc_serve_instances_total" text);
  (* and the checker actually rejects broken documents *)
  List.iter
    (fun (label, doc) ->
       match check_exposition doc with
       | Ok () -> Alcotest.failf "checker accepted %s" label
       | Error _ -> ())
    [ ("sample before TYPE", "chc_x_total 1\n");
      ( "duplicate TYPE",
        "# TYPE chc_x_total counter\nchc_x_total 1\n\
         # TYPE chc_x_total counter\nchc_x_total 2\n" );
      ( "orphan HELP",
        "# HELP chc_x_total text\nchc_y 1\n" );
      ( "non-cumulative buckets",
        "# TYPE chc_h histogram\n\
         chc_h_bucket{le=\"1\"} 5\nchc_h_bucket{le=\"2\"} 3\n\
         chc_h_bucket{le=\"+Inf\"} 5\nchc_h_sum 1\nchc_h_count 5\n" );
      ( "count disagrees with +Inf",
        "# TYPE chc_h histogram\n\
         chc_h_bucket{le=\"1\"} 5\nchc_h_bucket{le=\"+Inf\"} 5\n\
         chc_h_sum 1\nchc_h_count 6\n" );
      ( "missing +Inf",
        "# TYPE chc_h histogram\n\
         chc_h_bucket{le=\"1\"} 5\nchc_h_sum 1\nchc_h_count 5\n" );
      ("bad value", "# TYPE chc_g gauge\nchc_g up\n") ]

(* ------------------------------------------------------------------ *)
(* Obs.Log: the structured JSONL logger. *)

let with_log_capture f =
  let lines = ref [] in
  Obs.Log.set_sink (Some (fun l -> lines := l :: !lines));
  Fun.protect
    ~finally:(fun () ->
        Obs.Log.set_level None;
        Obs.Log.flush ();
        Obs.Log.set_rate ~per_s:1000 ~burst:1000;
        Obs.Log.set_clock None;
        Obs.Log.set_sink None)
    (fun () -> f (fun () -> List.rev !lines))

let test_log_rate_limiter () =
  with_log_capture (fun captured ->
      let t = ref 0L in
      Obs.Log.set_clock (Some (fun () -> !t));
      Obs.Log.set_rate ~per_s:5 ~burst:5;
      Obs.Log.set_level (Some Obs.Log.Info);
      let d0 = Obs.Log.dropped () in
      for i = 1 to 8 do
        Obs.Log.info "burst" [ ("i", Obs.Log.I i) ]
      done;
      Alcotest.(check int) "burst of 5 passes, 3 dropped" 3
        (Obs.Log.dropped () - d0);
      Obs.Log.debug "below-level" [];
      Alcotest.(check int) "level gate runs before the bucket" 3
        (Obs.Log.dropped () - d0);
      (* one second refills the bucket *)
      t := 1_000_000_000L;
      for i = 1 to 3 do
        Obs.Log.info "later" [ ("i", Obs.Log.I i) ]
      done;
      Alcotest.(check int) "refilled tokens admit new lines" 3
        (Obs.Log.dropped () - d0);
      Obs.Log.flush ();
      let lines = captured () in
      Alcotest.(check int) "5 + 3 lines plus one drop summary" 9
        (List.length lines);
      (match lines with
       | first :: _ ->
         Alcotest.(check bool) "drop summary leads the flush" true
           (contains ~sub:{|"event":"log_dropped"|} first
            && contains ~sub:{|"count":3|} first)
       | [] -> Alcotest.fail "no lines captured"))

let test_log_jsonl_wellformed () =
  with_log_capture (fun captured ->
      Obs.Log.set_level (Some Obs.Log.Debug);
      Obs.Log.debug "kinds"
        [ ("int", Obs.Log.I (-42));
          ("str", Obs.Log.S "with \"quotes\", a \\ and a\nnewline");
          ("bool", Obs.Log.B true);
          ("float", Obs.Log.F 0.000123) ];
      Obs.Log.warn "empty-fields" [];
      Obs.Log.error "weird \"event\" name" [ ("x", Obs.Log.I 1) ];
      Obs.Log.flush ();
      let lines = captured () in
      Alcotest.(check int) "three lines" 3 (List.length lines);
      List.iter
        (fun line ->
           match Codec.Json.of_string line with
           | Error e -> Alcotest.failf "unparseable log line %S: %s" line e
           | Ok j ->
             Alcotest.(check bool) "ts_ns is an integer" true
               (Result.is_ok (Codec.Json.int_field "ts_ns" j));
             Alcotest.(check bool) "level is a string" true
               (Result.is_ok (Codec.Json.str_field "level" j));
             Alcotest.(check bool) "event is a string" true
               (Result.is_ok (Codec.Json.str_field "event" j)))
        lines;
      (* field kinds land with their JSON types (floats as strings) *)
      match Codec.Json.of_string (List.hd lines) with
      | Error e -> Alcotest.fail e
      | Ok j ->
        Alcotest.(check bool) "int field" true
          (Codec.Json.member "int" j = Some (Codec.Json.Int (-42)));
        Alcotest.(check bool) "bool field" true
          (Codec.Json.member "bool" j = Some (Codec.Json.Bool true));
        (match Codec.Json.member "float" j with
         | Some (Codec.Json.Str s) ->
           Alcotest.(check (float 1e-9)) "float survives as string" 0.000123
             (float_of_string s)
         | _ -> Alcotest.fail "float field must render as a string"))

(* Logging is observation only: with the level wide open and crashes
   in the run (exercising the Sim crash/recover log hooks), the
   execution transcript and grading must be byte-identical to a silent
   run, whatever the pool size. *)
let test_log_noninterference () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:7 ~ensure_crash:true () in
  let run ~size ~logging =
    with_pool_size size (fun () ->
        if logging then begin
          Obs.Log.set_sink (Some (fun _ -> ()));
          Obs.Log.set_level (Some Obs.Log.Debug)
        end;
        Fun.protect
          ~finally:(fun () ->
              Obs.Log.set_level None;
              Obs.Log.flush ();
              Obs.Log.set_sink None)
          (fun () ->
             let trace = Trace.create () in
             let r = Executor.run ~trace spec in
             ( Trace.to_jsonl trace,
               r.Executor.terminated,
               r.Executor.valid,
               r.Executor.agreement_ok )))
  in
  let base_jsonl, bt, bv, ba = run ~size:1 ~logging:false in
  Alcotest.(check bool) "baseline run graded" true (bt && bv && ba);
  List.iter
    (fun (size, logging) ->
       let jsonl, t, v, a = run ~size ~logging in
       Alcotest.(check string)
         (Printf.sprintf "trace identical (pool %d, logging %b)" size
            logging)
         base_jsonl jsonl;
       Alcotest.(check bool) "grading identical" true
         (t = bt && v = bv && a = ba))
    [ (1, true); (4, false); (4, true) ]

(* ------------------------------------------------------------------ *)
(* Sink: every file write reports failures with the target path. *)

let test_sink_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chc-test-sink-%d.txt" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       match Obs.Sink.write_string ~path "hello sink\n" with
       | Error e -> Alcotest.failf "write_string: %s" e
       | Ok () ->
         let ic = open_in_bin path in
         let s =
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         in
         Alcotest.(check string) "content durably written" "hello sink\n" s)

let test_sink_error_names_path () =
  let bad = "/nonexistent-chc-dir/deep/out.json" in
  (match Obs.Sink.write_string ~path:bad "x" with
   | Ok () -> Alcotest.fail "write into a missing directory must fail"
   | Error msg ->
     Alcotest.(check bool) "error names the target path" true
       (contains ~sub:bad msg));
  match Obs.Sink.write_file_exn ~path:bad (fun _ -> ()) with
  | () -> Alcotest.fail "write_file_exn must raise"
  | exception Obs.Sink.Write_error { path; message } ->
    Alcotest.(check string) "Write_error carries the target path" bad path;
    Alcotest.(check bool) "Write_error carries a diagnostic" true
      (String.length message > 0)

let suite =
  [ ( "obs",
      [ Alcotest.test_case "trace pool-size invariant (d=2)" `Quick
          test_trace_pool_invariant;
        Alcotest.test_case "trace/metrics consistency" `Quick
          test_trace_consistency;
        Alcotest.test_case "step limit traced" `Quick test_step_limit;
        Alcotest.test_case "parse_ids validation" `Quick test_parse_ids;
        Alcotest.test_case "parse_q / parse_inputs validation" `Quick
          test_parse_q_and_inputs;
        Alcotest.test_case "memo lifetime stats" `Quick
          test_memo_lifetime_stats;
        Alcotest.test_case "pool parse_size" `Quick test_pool_parse_size;
        Alcotest.test_case "pool stats" `Quick test_pool_stats;
        Alcotest.test_case "span nesting + exception safety" `Quick
          test_span_nesting;
        Alcotest.test_case "disabled profiler records nothing" `Quick
          test_span_disabled_records_nothing;
        Alcotest.test_case "chrome trace JSON well-formed" `Quick
          test_chrome_json_wellformed;
        Alcotest.test_case "histogram percentiles" `Quick
          test_histogram_percentiles;
        Alcotest.test_case "per-job slices (ph:X)" `Quick test_prof_slices;
        Alcotest.test_case "exposition grammar conformance" `Quick
          test_exposition_grammar;
        Alcotest.test_case "log rate limiter + drop summary" `Quick
          test_log_rate_limiter;
        Alcotest.test_case "log JSONL well-formed" `Quick
          test_log_jsonl_wellformed;
        Alcotest.test_case "logging never perturbs execution" `Quick
          test_log_noninterference;
        Alcotest.test_case "causal dead-letter fidelity" `Quick
          test_causal_dead_letter;
        Alcotest.test_case "dead-letter schedule replay" `Quick
          test_dead_letter_replay;
        Alcotest.test_case "critical path pool-size invariant" `Quick
          test_critical_path_pool_invariant;
        Alcotest.test_case "sink roundtrip" `Quick test_sink_roundtrip;
        Alcotest.test_case "sink error names path" `Quick
          test_sink_error_names_path ] ) ]
