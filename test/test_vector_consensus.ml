(* Vector consensus: the reduction from CC (Steiner-point selection)
   and the standalone point-valued baseline Algorithm VC. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Config = Chc.Config
module Executor = Chc.Executor
module VC = Chc.Vector_consensus
module Crash = Runtime.Crash
module Rng = Runtime.Rng

let cfg ~n ~f ~d = Config.make ~n ~f ~d ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one

let test_derived_inside_and_valid () =
  let config = cfg ~n:5 ~f:1 ~d:2 in
  let r = Executor.run (Executor.default_spec ~config ~seed:41 ()) in
  let pts = VC.derived_outputs r.Executor.result in
  Array.iteri
    (fun i p ->
       match p, r.Executor.result.Chc.Cc.outputs.(i) with
       | Some y, Some h ->
         Alcotest.(check bool) "inside own polytope" true (Polytope.contains h y);
         if not (List.mem i r.Executor.faulty) then
           Alcotest.(check bool) "valid point" true
             (Polytope.contains r.Executor.correct_hull y)
       | None, None -> ()
       | _ -> Alcotest.fail "output mismatch")
    pts

let run_baseline ~seed ~n ~f ~d =
  let config = cfg ~n ~f ~d in
  let rng = Rng.create seed in
  let inputs = Executor.random_inputs ~config ~rng () in
  let faulty = List.init f Fun.id in
  let crash = Crash.random_for ~rng ~n ~faulty ~max_sends:40 in
  let r =
    VC.execute_baseline ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed ()
  in
  (config, inputs, faulty, r)

let test_baseline_properties () =
  let config, inputs, faulty, r = run_baseline ~seed:42 ~n:5 ~f:1 ~d:2 in
  let fault_free =
    List.filter (fun i -> not (List.mem i faulty)) (List.init 5 Fun.id)
  in
  let hull =
    Polytope.of_points ~dim:2 (List.map (fun i -> inputs.(i)) fault_free)
  in
  let outputs = List.filter_map (fun i -> r.VC.outputs.(i)) fault_free in
  Alcotest.(check int) "all fault-free decide" (List.length fault_free)
    (List.length outputs);
  List.iter
    (fun y ->
       Alcotest.(check bool) "validity (point in correct hull)" true
         (Polytope.contains hull y))
    outputs;
  (* ε-agreement on points. *)
  List.iter
    (fun y1 ->
       List.iter
         (fun y2 ->
            Alcotest.(check bool) "pairwise eps-agreement" true
              (Q.lt (Vec.dist2 y1 y2) (Q.square config.Config.eps)))
         outputs)
    outputs

let prop_baseline_sweep =
  Gen.prop ~count:15 "baseline validity + agreement across seeds"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
       let config, inputs, faulty, r = run_baseline ~seed ~n:5 ~f:1 ~d:2 in
       let fault_free =
         List.filter (fun i -> not (List.mem i faulty)) (List.init 5 Fun.id)
       in
       let hull =
         Polytope.of_points ~dim:2 (List.map (fun i -> inputs.(i)) fault_free)
       in
       let outputs = List.filter_map (fun i -> r.VC.outputs.(i)) fault_free in
       List.length outputs = List.length fault_free
       && List.for_all (Polytope.contains hull) outputs
       && List.for_all
            (fun y1 ->
               List.for_all
                 (fun y2 ->
                    Q.lt (Vec.dist2 y1 y2) (Q.square config.Config.eps))
                 outputs)
            outputs)

let test_baseline_identical_inputs () =
  (* Identical inputs collapse to exact agreement on that input. *)
  let config = cfg ~n:5 ~f:1 ~d:2 in
  let x = Vec.make [Q.of_ints 2 3; Q.of_ints 1 5] in
  let inputs = Array.make 5 x in
  let crash = Array.make 5 Crash.Never in
  let r =
    VC.execute_baseline ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.round_robin ~seed:7 ()
  in
  Array.iter
    (function
      | Some y -> Alcotest.(check bool) "exactly x" true (Vec.equal y x)
      | None -> Alcotest.fail "undecided")
    r.VC.outputs

let suite =
  [ ( "vector_consensus",
      [ Alcotest.test_case "derived points" `Quick test_derived_inside_and_valid;
        Alcotest.test_case "baseline properties" `Quick test_baseline_properties;
        Alcotest.test_case "baseline identical inputs" `Quick
          test_baseline_identical_inputs ]
      @ List.map Gen.qtest [ prop_baseline_sweep ] ) ]
