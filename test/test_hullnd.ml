module Q = Numeric.Q
module B = Numeric.Bigint
module Vec = Geometry.Vec
module Hn = Geometry.Hullnd
module Lp = Geometry.Lp

let v3 x y z = Vec.of_ints [x; y; z]

let cube_pts =
  [ v3 0 0 0; v3 1 0 0; v3 0 1 0; v3 0 0 1; v3 1 1 0; v3 1 0 1; v3 0 1 1;
    v3 1 1 1 ]

let test_cube_hrep () =
  let h = Hn.of_points ~dim:3 cube_pts in
  Alcotest.(check int) "no equalities" 0 (List.length h.Hn.eqs);
  Alcotest.(check int) "six facets" 6 (List.length h.Hn.ineqs);
  let vs = Hn.vertices h in
  Alcotest.(check int) "eight vertices" 8 (List.length vs);
  List.iter
    (fun p -> Alcotest.(check bool) "original is vertex" true
        (List.exists (Vec.equal p) vs))
    cube_pts

let test_lower_dimensional () =
  (* A flat square living in the z = 2 plane of 3-space. *)
  let sq = [ v3 0 0 2; v3 1 0 2; v3 1 1 2; v3 0 1 2 ] in
  let h = Hn.of_points ~dim:3 sq in
  Alcotest.(check int) "one equality (z = 2)" 1 (List.length h.Hn.eqs);
  let vs = Hn.vertices h in
  Alcotest.(check int) "four vertices" 4 (List.length vs);
  Alcotest.(check bool) "mem center" true
    (Hn.mem_hrep h (Vec.make [Q.half; Q.half; Q.two]));
  Alcotest.(check bool) "not above" false
    (Hn.mem_hrep h (Vec.make [Q.half; Q.half; Q.of_int 3]))

let test_point_hrep () =
  let h = Hn.of_points ~dim:3 [v3 1 2 3] in
  Alcotest.(check bool) "mem itself" true (Hn.mem_hrep h (v3 1 2 3));
  Alcotest.(check bool) "not elsewhere" false (Hn.mem_hrep h (v3 1 2 4));
  Alcotest.(check int) "single vertex" 1 (List.length (Hn.vertices h))

let test_segment_hrep () =
  let h = Hn.of_points ~dim:3 [v3 0 0 0; v3 2 2 2] in
  Alcotest.(check bool) "midpoint" true (Hn.mem_hrep h (v3 1 1 1));
  Alcotest.(check bool) "beyond endpoint" false (Hn.mem_hrep h (v3 3 3 3));
  Alcotest.(check bool) "off the line" false (Hn.mem_hrep h (v3 1 1 0));
  Alcotest.(check int) "two vertices" 2 (List.length (Hn.vertices h))

let test_combine_intersection () =
  let shifted = List.map (Vec.add (Vec.make [Q.half; Q.half; Q.half])) cube_pts in
  let h = Hn.combine [ Hn.of_points ~dim:3 cube_pts;
                       Hn.of_points ~dim:3 shifted ] in
  let vs = Hn.vertices h in
  Alcotest.(check int) "intersection cube vertices" 8 (List.length vs);
  List.iter
    (fun p ->
       Alcotest.(check bool) "vertex in both hulls" true
         (Lp.in_convex_hull cube_pts p && Lp.in_convex_hull shifted p))
    vs

let test_empty_intersection () =
  let far = List.map (Vec.add (v3 10 10 10)) cube_pts in
  let h = Hn.combine [ Hn.of_points ~dim:3 cube_pts;
                       Hn.of_points ~dim:3 far ] in
  Alcotest.(check int) "no vertices" 0 (List.length (Hn.vertices h))

(* --- properties ------------------------------------------------------ *)

let arb3 = Gen.arb_int_points ~min_size:1 ~max_size:7 3
let arb3_big = Gen.arb_int_points ~min_size:4 ~max_size:10 3

(* Rank-deficient inputs: all points on the plane z = x + y, so the
   incremental 3-d kernel must decline and the fallback paths engage. *)
let arb3_planar =
  QCheck.make ~print:Gen.print_points
    (QCheck.Gen.map
       (List.map (fun v -> Vec.make [v.(0); v.(1); Q.add v.(0) v.(1)]))
       (Gen.gen_int_points ~min_size:1 ~max_size:8 2))

(* Both sides are canonically sorted (dedupe_points/_constraints), so
   plain ordered equality is the right comparison. *)
let points_equal a b =
  List.compare_lengths a b = 0 && List.for_all2 Vec.equal a b

let constraints_equal a b =
  List.compare_lengths a b = 0
  && List.for_all2
    (fun (a1, b1) (a2, b2) -> Vec.equal a1 a2 && Q.equal b1 b2)
    a b

let props =
  [ Gen.prop ~count:60 "hrep membership agrees with LP membership"
      (QCheck.pair arb3 (QCheck.make ~print:Vec.to_string (Gen.gen_int_vec 3)))
      (fun (pts, p) ->
         let h = Hn.of_points ~dim:3 pts in
         Hn.mem_hrep h p = Lp.in_convex_hull pts p);
    Gen.prop ~count:60 "vertices round-trip to extreme points" arb3
      (fun pts ->
         let h = Hn.of_points ~dim:3 pts in
         let vs = Hn.vertices h in
         let ex = Hn.extreme_points pts in
         List.length vs = List.length ex
         && List.for_all2 Vec.equal vs ex);
    Gen.prop ~count:60 "combine = pointwise conjunction"
      (QCheck.triple arb3 arb3
         (QCheck.make ~print:Vec.to_string (Gen.gen_int_vec 3)))
      (fun (p1, p2, x) ->
         let h1 = Hn.of_points ~dim:3 p1 and h2 = Hn.of_points ~dim:3 p2 in
         Hn.mem_hrep (Hn.combine [h1; h2]) x
         = (Hn.mem_hrep h1 x && Hn.mem_hrep h2 x));
    Gen.prop ~count:60 "extreme points preserve the hull" arb3
      (fun pts ->
         let ex = Hn.extreme_points pts in
         List.for_all (Lp.in_convex_hull ex) pts);
    Gen.prop ~count:40 "incremental facets = brute-force facets" arb3_big
      (fun pts ->
         match Hn.facets_incremental_3d pts with
         | None -> true (* degenerate input: enumerate_facets falls back *)
         | Some inc ->
           let brute = Hn.enumerate_facets_brute ~dim:3 pts in
           constraints_equal inc brute);
    Gen.prop ~count:40 "extreme_points = LP-pruning oracle (integer)" arb3_big
      (fun pts -> points_equal (Hn.extreme_points pts) (Hn.extreme_points_lp pts));
    Gen.prop ~count:30 "extreme_points = LP-pruning oracle (rational)"
      (Gen.arb_points ~min_size:4 ~max_size:8 3)
      (fun pts -> points_equal (Hn.extreme_points pts) (Hn.extreme_points_lp pts));
    Gen.prop ~count:40 "extreme_points = LP-pruning oracle (planar)" arb3_planar
      (fun pts -> points_equal (Hn.extreme_points pts) (Hn.extreme_points_lp pts));
  ]

(* The static float visibility screen may decide a predicate only when
   it is right: wherever [Dev.screen] answers, the answer must equal
   the exact sign — including engineered cancellations (offset within
   2^-1000 of the true dot), which must fall through ([None]). *)
let test_visibility_screen () =
  let st = Random.State.make [| 7 |] in
  let big bits =
    let rec go acc b =
      if b <= 0 then acc
      else
        go
          (B.add (B.mul_int acc (1 lsl 20))
             (B.of_int (Random.State.int st (1 lsl 20))))
          (b - 20)
    in
    let v = go B.one bits in
    if Random.State.bool st then B.neg v else v
  in
  let decided = ref 0 in
  for trial = 1 to 2000 do
    let a = Array.init 3 (fun _ -> Q.of_bigint (big 840)) in
    let p = Array.init 3 (fun _ -> Q.of_bigint (big 420)) in
    let dot =
      Array.to_seq (Array.map2 Q.mul a p) |> Seq.fold_left Q.add Q.zero
    in
    let b =
      if trial mod 2 = 0 then Q.add dot (Q.of_bigint (big 60))
      else Q.of_bigint (big 1260)
    in
    match Hn.Dev.screen a b p with
    | None -> ()
    | Some v ->
      incr decided;
      Alcotest.(check bool) "screen decision = exact sign"
        (Q.sign (Q.sub dot b) > 0) v
  done;
  (* The wide-offset half must be overwhelmingly screenable, or the
     screen is useless as a filter. *)
  Alcotest.(check bool) "screen decides the clear half" true (!decided > 900)

let suite =
  [ ( "hullnd",
      [ Alcotest.test_case "cube hrep" `Quick test_cube_hrep;
        Alcotest.test_case "visibility screen sound" `Quick
          test_visibility_screen;
        Alcotest.test_case "lower-dimensional" `Quick test_lower_dimensional;
        Alcotest.test_case "point" `Quick test_point_hrep;
        Alcotest.test_case "segment" `Quick test_segment_hrep;
        Alcotest.test_case "combine" `Quick test_combine_intersection;
        Alcotest.test_case "empty intersection" `Quick test_empty_intersection ]
      @ List.map Gen.qtest props ) ]
