(* End-to-end tests of Algorithm CC: the three correctness properties
   of Theorem 2 (validity, ε-agreement, termination), the optimality
   certificate of Lemma 6 / Theorem 3, degenerate cases, and
   determinism. Agreement and containment checks are exact (rational);
   no tolerances are involved anywhere. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Config = Chc.Config
module Cc = Chc.Cc
module Executor = Chc.Executor
module Scheduler = Runtime.Scheduler
module Crash = Runtime.Crash

let cfg ?(eps = Q.of_ints 1 4) ~n ~f ~d () =
  Config.make ~n ~f ~d ~eps ~lo:Q.zero ~hi:Q.one

let check_report (r : Executor.report) =
  Alcotest.(check bool) "termination" true r.Executor.terminated;
  Alcotest.(check bool) "validity" true r.Executor.valid;
  Alcotest.(check bool) "eps-agreement" true r.Executor.agreement_ok;
  Alcotest.(check bool) "optimality (I_Z containment)" true r.Executor.optimal

let test_basic_2d () =
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  check_report (Executor.run (Executor.default_spec ~config ~seed:11 ()))

let test_fault_free () =
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  (* f = 1 faults tolerated but nobody actually crashes. *)
  let spec = Executor.default_spec ~config ~seed:12 ~faulty:[] () in
  let r = Executor.run spec in
  check_report r;
  (* With no faulty process every process decides. *)
  Alcotest.(check bool) "all decided" true
    (Array.for_all (fun o -> o <> None) r.Executor.result.Cc.outputs)

let test_f_zero () =
  let config = cfg ~n:3 ~f:0 ~d:2 () in
  let r = Executor.run (Executor.default_spec ~config ~seed:13 ()) in
  check_report r;
  (* f = 0: the round-0 polytope is the full hull and stays the
     decision's upper bound; outputs must equal the hull of all inputs
     eventually contain I_Z = H(X_Z). *)
  Alcotest.(check bool) "iz exists" true (r.Executor.iz <> None)

let test_identical_inputs () =
  (* All processes share one input: the decision must be exactly that
     single point (degenerate case from Section 6). *)
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  let x = Vec.make [Q.half; Q.of_ints 1 3] in
  let spec =
    { (Executor.default_spec ~config ~seed:14 ()) with
      Executor.inputs = Array.make 5 x }
  in
  let r = Executor.run spec in
  check_report r;
  Array.iter
    (function
      | None -> ()
      | Some h ->
        Alcotest.(check bool) "single point" true (Polytope.is_point h);
        Alcotest.(check bool) "the shared input" true
          (Vec.equal (List.hd (Polytope.vertices h)) x))
    r.Executor.result.Cc.outputs

let test_1d () =
  let config = cfg ~n:4 ~f:1 ~d:1 ~eps:(Q.of_ints 1 50) () in
  check_report (Executor.run (Executor.default_spec ~config ~seed:15 ()))

let test_3d () =
  (* Generic-position rational inputs in d=3 make the exact Minkowski
     pruning very expensive (see DESIGN.md); a coarse input lattice
     keeps the polytopes small while still exercising the full 3-d
     pipeline (hrep intersection, nd L-combination, exact volumes,
     nd Hausdorff) over 13 genuine rounds. *)
  let config = cfg ~n:6 ~f:1 ~d:3 ~eps:Q.one () in
  let rng = Runtime.Rng.create 7 in
  let inputs = Executor.random_inputs ~config ~rng ~grid:4 () in
  let spec = { (Executor.default_spec ~config ~seed:16 ()) with
               Executor.inputs = inputs } in
  check_report (Executor.run spec)

let test_3d_cube () =
  (* Structured inputs: the corners of the unit cube. *)
  let config = cfg ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) () in
  let inputs =
    [| Vec.of_ints [0;0;0]; Vec.of_ints [1;0;0]; Vec.of_ints [0;1;0];
       Vec.of_ints [0;0;1]; Vec.of_ints [1;1;0]; Vec.of_ints [1;1;1] |]
  in
  let spec = { (Executor.default_spec ~config ~seed:17 ()) with
               Executor.inputs = inputs } in
  let r = Executor.run spec in
  check_report r;
  (* The decided polytope may legitimately be lower-dimensional here
     (the round-0 intersection of corner subsets can be flat); exact
     3-d volume must still be computable and non-negative. *)
  match r.Executor.min_output_volume with
  | Some v -> Alcotest.(check bool) "3d volume computed" true (Q.sign v >= 0)
  | None -> Alcotest.fail "no 3d volume"

let test_tight_n () =
  (* n = (d+2)f + 1 exactly — the resilience frontier. *)
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  check_report (Executor.run (Executor.default_spec ~config ~seed:17 ()));
  let config = cfg ~n:7 ~f:2 ~d:1 () in
  check_report (Executor.run (Executor.default_spec ~config ~seed:18 ()))

let test_immediate_crashes () =
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  let spec = Executor.default_spec ~config ~seed:19 () in
  let crash = Array.make 5 Crash.Never in
  crash.(0) <- Crash.After_sends 0;
  check_report (Executor.run { spec with Executor.crash })

let test_lag_adversary () =
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  let spec =
    Executor.default_spec ~config ~seed:20
      ~scheduler:(Scheduler.lag_sources [4]) ()
  in
  check_report (Executor.run spec)

let test_determinism () =
  let config = cfg ~n:5 ~f:1 ~d:2 () in
  let run () =
    let r = Executor.run (Executor.default_spec ~config ~seed:21 ()) in
    r.Executor.result.Cc.outputs
  in
  let o1 = run () and o2 = run () in
  Array.iteri
    (fun i a ->
       match a, o2.(i) with
       | None, None -> ()
       | Some p, Some q ->
         Alcotest.(check bool) "same polytope" true (Polytope.equal p q)
       | _ -> Alcotest.fail "determinism broken")
    o1

let test_output_contains_iz_strictly_useful () =
  (* The decided polytope is a genuine region (not always a point):
     with spread-out inputs and n well above the bound, the output
     volume is positive. *)
  let config = cfg ~n:7 ~f:1 ~d:2 () in
  let corners =
    [| Vec.of_ints [0; 0]; Vec.make [Q.one; Q.zero]; Vec.make [Q.zero; Q.one];
       Vec.make [Q.one; Q.one]; Vec.make [Q.half; Q.zero];
       Vec.make [Q.zero; Q.half]; Vec.make [Q.half; Q.one] |]
  in
  let spec =
    { (Executor.default_spec ~config ~seed:22 ()) with
      Executor.inputs = corners }
  in
  let r = Executor.run spec in
  check_report r;
  (match r.Executor.min_output_volume with
   | Some v -> Alcotest.(check bool) "positive volume" true (Q.sign v > 0)
   | None -> Alcotest.fail "no volume")

(* --- randomized sweeps ----------------------------------------------- *)

let sweep ~name ~count gen_params =
  Gen.prop ~count name
    (QCheck.make
       ~print:(fun (seed, n, f, d) ->
           Printf.sprintf "seed=%d n=%d f=%d d=%d" seed n f d)
       gen_params)
    (fun (seed, n, f, d) ->
       let config = cfg ~n ~f ~d () in
       let r = Executor.run (Executor.default_spec ~config ~seed ()) in
       r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)

let prop_sweep_2d =
  sweep ~name:"E3/E4 sweep d=2" ~count:25
    QCheck.Gen.(
      let* seed = 0 -- 100000 in
      let* n = 5 -- 7 in
      return (seed, n, 1, 2))

let prop_sweep_1d =
  sweep ~name:"E3/E4 sweep d=1" ~count:25
    QCheck.Gen.(
      let* seed = 0 -- 100000 in
      let* n = 4 -- 8 in
      let f = (n - 1) / 3 in
      return (seed, n, f, 1))

let prop_schedulers =
  Gen.prop ~count:20 "properties hold under every scheduler"
    (QCheck.make
       ~print:(fun (seed, which) -> Printf.sprintf "seed=%d sched=%d" seed which)
       QCheck.Gen.(pair (0 -- 100000) (0 -- 3)))
    (fun (seed, which) ->
       let scheduler =
         match which with
         | 0 -> Scheduler.random_uniform
         | 1 -> Scheduler.round_robin
         | 2 -> Scheduler.lifo_bias
         | _ -> Scheduler.lag_sources [0]
       in
       let config = cfg ~n:5 ~f:1 ~d:2 () in
       let r = Executor.run (Executor.default_spec ~config ~seed ~scheduler ()) in
       r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)

let suite =
  [ ( "algorithm_cc",
      [ Alcotest.test_case "basic 2d" `Quick test_basic_2d;
        Alcotest.test_case "fault-free run" `Quick test_fault_free;
        Alcotest.test_case "f = 0" `Quick test_f_zero;
        Alcotest.test_case "identical inputs -> point" `Quick test_identical_inputs;
        Alcotest.test_case "1d" `Quick test_1d;
        Alcotest.test_case "3d" `Slow test_3d;
        Alcotest.test_case "3d cube corners" `Quick test_3d_cube;
        Alcotest.test_case "tight n" `Quick test_tight_n;
        Alcotest.test_case "immediate crashes" `Quick test_immediate_crashes;
        Alcotest.test_case "lag adversary" `Quick test_lag_adversary;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "positive-volume outputs" `Quick
          test_output_contains_iz_strictly_useful ]
      @ List.map Gen.qtest [ prop_sweep_2d; prop_sweep_1d; prop_schedulers ] ) ]
