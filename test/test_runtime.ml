(* Tests for the deterministic asynchronous simulator: channel
   semantics (FIFO, exactly-once), crash budgets (including partial
   broadcasts), determinism, and scheduler fairness-in-the-limit. *)

module Sim = Runtime.Sim
module Transport = Runtime.Transport
module Rng = Runtime.Rng
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler

let no_crash n = Array.make n Runtime.Crash.Never

(* --- rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int (Rng.copy c) 1000000 <> Rng.int (Rng.copy a) 1000000 then
      differs := true;
    ignore (Rng.int c 10);
    ignore (Rng.int a 10)
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_shuffle () =
  let r = Rng.create 9 in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare s)

(* --- sim: delivery semantics ---------------------------------------- *)

(* Process 0 sends k tagged messages to process 1; everyone else idle. *)
let test_fifo_exactly_once () =
  let received = ref [] in
  let sys =
    Sim.create ~n:3 ~seed:5 ~scheduler:Scheduler.random_uniform
      ~crash:(no_crash 3)
      ~make:(fun i ->
          { Transport.on_start =
              (fun ep ->
                 if i = 0 then
                   for k = 1 to 50 do ep.Transport.send 1 k done);
            on_receive =
              (fun _ep ~src msg ->
                 if src = 0 then received := msg :: !received) }) ()
  in
  Sim.run sys;
  Alcotest.(check (list int)) "FIFO order, exactly once"
    (List.init 50 (fun k -> k + 1))
    (List.rev !received)

let test_crash_budget_partial_broadcast () =
  (* n = 5; process 0 broadcasts with budget 2: exactly the first two
     recipients in rotating order (1 and 2) receive it. *)
  let got = Array.make 5 false in
  let crash = Array.make 5 Crash.Never in
  crash.(0) <- Crash.After_sends 2;
  let sys =
    Sim.create ~n:5 ~seed:1 ~scheduler:Scheduler.random_uniform ~crash
      ~make:(fun i ->
          { Transport.on_start =
              (fun ep -> if i = 0 then ep.Transport.broadcast 99);
            on_receive = (fun ep ~src:_ _msg -> got.(ep.Transport.me) <- true) }) ()
  in
  Sim.run sys;
  Alcotest.(check bool) "p1 got it" true got.(1);
  Alcotest.(check bool) "p2 got it" true got.(2);
  Alcotest.(check bool) "p3 missed it" false got.(3);
  Alcotest.(check bool) "p4 missed it" false got.(4);
  Alcotest.(check bool) "p0 crashed" true (Sim.crashed sys 0);
  let m = Sim.metrics sys in
  Alcotest.(check int) "sent" 2 m.Sim.sent;
  Alcotest.(check int) "dropped" 2 m.Sim.dropped

let test_crashed_receiver_is_dead () =
  (* Process 1 crashes before sending anything; deliveries to it are
     dead-lettered and its handler must not run. *)
  let ran = ref false in
  let crash = Array.make 2 Crash.Never in
  crash.(1) <- Crash.After_sends 0;
  let sys =
    Sim.create ~n:2 ~seed:3 ~scheduler:Scheduler.round_robin ~crash
      ~make:(fun i ->
          { Transport.on_start = (fun ep -> if i = 0 then ep.Transport.send 1 0);
            on_receive = (fun _ ~src:_ _ -> ran := true) }) ()
  in
  Sim.run sys;
  Alcotest.(check bool) "handler did not run" false !ran;
  Alcotest.(check int) "dead lettered" 1 (Sim.metrics sys).Sim.dead_lettered

let test_crash_recover_revival () =
  (* Process 1 crashes after 2 receives with a disk-prefix choice of 1,
     then revives: on_crash must see the plan's [keep], deliveries
     while down are dead-lettered, on_recover runs with a live context
     (its sends work), and the revival is visible in [recovered_of] and
     the metrics. *)
  let crash = Array.make 2 Crash.Never in
  crash.(1) <- Crash.Crash_recover { trigger = Crash.Receives 2; delay = 4; keep = 1 };
  let kept = ref (-1) in
  let revived_ctx_ran = ref false in
  let got_after_revival = ref 0 in
  let revived = ref false in
  let sys =
    Sim.create
      ~on_crash:(fun i ~keep -> if i = 1 then kept := keep)
      ~on_recover:(fun ep ->
          revived := true;
          revived_ctx_ran := ep.Transport.me = 1;
          (* a recovering process re-enters by sending *)
          ep.Transport.send 0 99)
      ~n:2 ~seed:3 ~scheduler:Scheduler.round_robin ~crash
      ~make:(fun i ->
          { Transport.on_start =
              (fun ep ->
                 if i = 0 then for k = 1 to 6 do ep.Transport.send 1 k done);
            on_receive =
              (fun ep ~src:_ msg ->
                 if ep.Transport.me = 1 && !revived then incr got_after_revival
                 else if ep.Transport.me = 0 && msg = 99 then
                   (* answer the rejoin *)
                   ep.Transport.send 1 100) }) ()
  in
  Sim.run sys;
  Alcotest.(check int) "on_crash saw the plan's keep" 1 !kept;
  Alcotest.(check bool) "on_recover ran for process 1" true !revived_ctx_ran;
  Alcotest.(check bool) "revival recorded" true (Sim.recovered_of sys 1);
  Alcotest.(check bool) "not counted as crashed anymore" false
    (Sim.crashed sys 1);
  Alcotest.(check int) "one revival in metrics" 1
    (Sim.metrics sys).Sim.recoveries;
  Alcotest.(check bool) "deliveries while down were dead-lettered" true
    ((Sim.metrics sys).Sim.dead_lettered > 0);
  Alcotest.(check bool) "process 1 receives again after revival" true
    (!got_after_revival > 0)

(* Ping-pong with a bounded count must quiesce. *)
let test_quiescence () =
  let sys =
    Sim.create ~n:2 ~seed:11 ~scheduler:Scheduler.lifo_bias
      ~crash:(no_crash 2)
      ~make:(fun i ->
          { Transport.on_start = (fun ep -> if i = 0 then ep.Transport.send 1 10);
            on_receive =
              (fun ep ~src k ->
                 if k > 0 then ep.Transport.send src (k - 1)) }) ()
  in
  Sim.run sys;
  Alcotest.(check int) "exactly 11 deliveries" 11 (Sim.metrics sys).Sim.delivered

let test_step_limit () =
  (* Infinite ping-pong must hit the step limit. *)
  let sys =
    Sim.create ~n:2 ~seed:11 ~scheduler:Scheduler.random_uniform
      ~crash:(no_crash 2)
      ~make:(fun i ->
          { Transport.on_start = (fun ep -> if i = 0 then ep.Transport.send 1 0);
            on_receive = (fun ep ~src _ -> ep.Transport.send src 0) }) ()
  in
  Alcotest.check_raises "limit" Sim.Step_limit_exceeded
    (fun () -> Sim.run ~max_steps:1000 sys)

(* Determinism: full broadcast storm; delivery log must be identical
   across runs with the same seed, and (generically) differ across
   seeds. *)
let delivery_log ~seed ~scheduler =
  let log = ref [] in
  let sys =
    Sim.create ~n:4 ~seed ~scheduler ~crash:(no_crash 4)
      ~make:(fun _ ->
          { Transport.on_start = (fun ep -> ep.Transport.broadcast 0);
            on_receive =
              (fun ep ~src k ->
                 log := (src, ep.Transport.me, k) :: !log;
                 if k < 2 then ep.Transport.broadcast (k + 1)) }) ()
  in
  Sim.run sys;
  List.rev !log

let test_determinism () =
  let l1 = delivery_log ~seed:123 ~scheduler:Scheduler.random_uniform in
  let l2 = delivery_log ~seed:123 ~scheduler:Scheduler.random_uniform in
  Alcotest.(check bool) "identical logs" true (l1 = l2);
  let l3 = delivery_log ~seed:124 ~scheduler:Scheduler.random_uniform in
  Alcotest.(check bool) "different seed differs" true (l1 <> l3)

let test_lag_scheduler_starves () =
  (* With Lag_sources [0], messages from 0 arrive only after all other
     traffic has drained: the last delivery must originate from 0. *)
  let last_src = ref (-1) in
  let sys =
    Sim.create ~n:3 ~seed:2 ~scheduler:(Scheduler.lag_sources [0])
      ~crash:(no_crash 3)
      ~make:(fun _ ->
          { Transport.on_start = (fun ep -> ep.Transport.broadcast 0);
            on_receive = (fun _ ~src _ -> last_src := src) }) ()
  in
  Sim.run sys;
  Alcotest.(check int) "lagged source delivered last" 0 !last_src

(* --- rounds ---------------------------------------------------------- *)

module Rounds = Protocol.Rounds

let test_rounds_freeze_first () =
  let r = Rounds.create ~threshold:2 in
  Rounds.add r ~round:1 ~src:0 "a";
  Alcotest.(check bool) "not ready" false (Rounds.ready r ~round:1);
  Rounds.add r ~round:1 ~src:1 "b";
  Alcotest.(check bool) "ready" true (Rounds.ready r ~round:1);
  let y = Rounds.freeze r ~round:1 in
  Rounds.add r ~round:1 ~src:2 "late";
  Alcotest.(check (list (pair int string))) "frozen multiset fixed"
    [(0, "a"); (1, "b")]
    (Rounds.freeze r ~round:1);
  Alcotest.(check int) "frozen size" 2 (List.length y)

let test_rounds_buffer_future () =
  let r = Rounds.create ~threshold:2 in
  Rounds.add r ~round:5 ~src:0 "early";
  Rounds.add r ~round:5 ~src:3 "early2";
  Alcotest.(check bool) "future round buffered and ready" true
    (Rounds.ready r ~round:5);
  Alcotest.(check int) "count" 2 (Rounds.count r ~round:5)

let test_rounds_duplicate () =
  let r = Rounds.create ~threshold:3 in
  Rounds.add r ~round:1 ~src:0 "x";
  Alcotest.check_raises "duplicate sender"
    (Invalid_argument "Rounds.add: duplicate (round, sender)")
    (fun () -> Rounds.add r ~round:1 ~src:0 "y")

let test_rounds_not_ready_freeze () =
  let r = Rounds.create ~threshold:2 in
  Rounds.add r ~round:1 ~src:0 "x";
  Alcotest.check_raises "freeze before ready"
    (Invalid_argument "Rounds.freeze: round not ready")
    (fun () -> ignore (Rounds.freeze r ~round:1))

let suite =
  [ ( "rng",
      [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "shuffle" `Quick test_rng_shuffle ] );
    ( "sim",
      [ Alcotest.test_case "fifo exactly-once" `Quick test_fifo_exactly_once;
        Alcotest.test_case "partial broadcast crash" `Quick
          test_crash_budget_partial_broadcast;
        Alcotest.test_case "crashed receiver" `Quick test_crashed_receiver_is_dead;
        Alcotest.test_case "crash-recover revival" `Quick
          test_crash_recover_revival;
        Alcotest.test_case "quiescence" `Quick test_quiescence;
        Alcotest.test_case "step limit" `Quick test_step_limit;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "lag scheduler" `Quick test_lag_scheduler_starves ] );
    ( "rounds",
      [ Alcotest.test_case "freeze first threshold" `Quick test_rounds_freeze_first;
        Alcotest.test_case "buffer future rounds" `Quick test_rounds_buffer_future;
        Alcotest.test_case "duplicate rejected" `Quick test_rounds_duplicate;
        Alcotest.test_case "freeze requires ready" `Quick test_rounds_not_ready_freeze ] ) ]
