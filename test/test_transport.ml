(* The transport conformance suite: every {!Runtime.Transport}
   implementation must expose the same channel semantics — reliable
   exactly-once FIFO per (src, dst) pair, rotating broadcast order,
   crash budgets that drop sends and dead-letter deliveries, recovery
   hooks with a live endpoint — so a protocol core written against the
   seam runs unchanged under any of them. The functor below is
   instantiated twice: the adversarial {!Runtime.Sim} pinned to the
   FIFO strategy, and the daemon's {!Runtime.Loopback}.

   The second half is the refactor's keystone differential: composing
   sans-IO {!Chc.Instance}s over [Loopback] must reproduce the
   executor ({!Chc.Cc.execute} over [Sim]) decision-for-decision and
   trace-byte-for-trace-byte on a pinned fuzz corpus. *)

module Transport = Runtime.Transport
module Crash = Runtime.Crash
module Sim = Runtime.Sim
module Loopback = Runtime.Loopback
module Instance = Chc.Instance
module Polytope = Geometry.Polytope

(* What the conformance tests need from an implementation: the shared
   observation surface {!Transport.S} plus a uniform way to build a
   system (creation is where implementations genuinely differ, so the
   adapter pins Sim's extra knobs to the FIFO schedule). *)
module type DRIVER = sig
  val name : string

  type 'msg t

  val create :
    ?trace:Obs.Trace.t ->
    ?on_crash:(Transport.pid -> keep:int -> unit) ->
    ?on_recover:('msg Transport.ep -> unit) ->
    ?crash:Crash.plan array ->
    n:int ->
    make:(Transport.pid -> 'msg Transport.handlers) ->
    unit ->
    'msg t

  include Transport.S with type 'msg t := 'msg t
end

module Sim_driver : DRIVER = struct
  let name = "sim-fifo"

  type 'msg t = 'msg Sim.t

  let create ?trace ?on_crash ?on_recover ?crash ~n ~make () =
    let crash = Option.value crash ~default:(Array.make n Crash.Never) in
    Sim.create ?trace ?on_crash ?on_recover ~n ~seed:0
      ~scheduler:Runtime.Scheduler.fifo ~crash ~make ()

  let n = Sim.n
  let run = Sim.run
  let crashed = Sim.crashed
  let recovered_of = Sim.recovered_of
  let sends_of = Sim.sends_of
  let receives_of = Sim.receives_of
  let metrics = Sim.metrics
end

module Loopback_driver : DRIVER = struct
  let name = "loopback"

  type 'msg t = 'msg Loopback.t

  let create = Loopback.create
  let n = Loopback.n
  let run = Loopback.run
  let crashed = Loopback.crashed
  let recovered_of = Loopback.recovered_of
  let sends_of = Loopback.sends_of
  let receives_of = Loopback.receives_of
  let metrics = Loopback.metrics
end

module Conformance (D : DRIVER) = struct
  (* Every process broadcasts [k] numbered messages at start; every
     channel must deliver exactly those, in order, exactly once. *)
  let exactly_once_fifo () =
    let n = 4 and k = 5 in
    let seen = Array.init n (fun _ -> Array.make n []) in
    let make me =
      { Transport.on_start =
          (fun ep ->
             for s = 0 to k - 1 do
               ep.Transport.broadcast (me * 100 + s)
             done);
        on_receive =
          (fun ep ~src payload ->
             seen.(ep.Transport.me).(src) <-
               payload :: seen.(ep.Transport.me).(src)) }
    in
    let sys = D.create ~n ~make () in
    D.run sys;
    for dst = 0 to n - 1 do
      for src = 0 to n - 1 do
        if src <> dst then
          Alcotest.(check (list int))
            (Printf.sprintf "%s: channel %d->%d in send order, exactly once"
               D.name src dst)
            (List.init k (fun s -> (src * 100) + s))
            (List.rev seen.(dst).(src))
        else
          Alcotest.(check (list int))
            (Printf.sprintf "%s: no self-channel %d" D.name src)
            [] seen.(dst).(src)
      done
    done;
    let m = D.metrics sys in
    Alcotest.(check int) "sent" (n * (n - 1) * k) m.Transport.sent;
    Alcotest.(check int) "delivered" (n * (n - 1) * k) m.Transport.delivered;
    Alcotest.(check int) "nothing dropped" 0 m.Transport.dropped

  (* A broadcast from [me] reaches recipients in rotating order
     starting at [me]+1 — so a mid-broadcast crash cuts a contiguous,
     sender-dependent block. Single sender keeps the global delivery
     order equal to the send order. *)
  let broadcast_rotation () =
    let n = 5 and sender = 2 in
    let order = ref [] in
    let make me =
      { Transport.on_start =
          (fun ep -> if me = sender then ep.Transport.broadcast ());
        on_receive =
          (fun ep ~src:_ () -> order := ep.Transport.me :: !order) }
    in
    let sys = D.create ~n ~make () in
    D.run sys;
    Alcotest.(check (list int))
      (D.name ^ ": rotation starts at me+1, wraps")
      [ 3; 4; 0; 1 ] (List.rev !order)

  (* A send budget of [b] lets exactly [b] sends through, then the
     crash swallows the rest — including a cut mid-broadcast. *)
  let crash_drops_sends () =
    let n = 4 in
    let crash = Array.make n Crash.Never in
    crash.(0) <- Crash.After_sends 2;
    let make me =
      { Transport.on_start =
          (fun ep -> if me = 0 then (ep.Transport.broadcast (); ep.Transport.broadcast ()));
        on_receive = (fun _ ~src:_ () -> ()) }
    in
    let sys = D.create ~crash ~n ~make () in
    D.run sys;
    Alcotest.(check int) (D.name ^ ": budget caps channel entries") 2
      (D.sends_of sys 0);
    Alcotest.(check bool) "crashed now" true (D.crashed sys 0);
    Alcotest.(check bool) "never revived" false (D.recovered_of sys 0);
    let m = D.metrics sys in
    (* two broadcasts attempt 2*(n-1) = 6 sends; 2 escape *)
    Alcotest.(check int) "dropped the rest" 4 m.Transport.dropped;
    Alcotest.(check int) "delivered what entered" 2 m.Transport.delivered

  (* A receive budget kills at the delivery that exhausts it, and the
     queue drains as dead letters (counted, never handled). *)
  let crash_dead_letters () =
    let n = 3 in
    let crash = Array.make n Crash.Never in
    crash.(2) <- Crash.After_receives 1;
    let handled = ref 0 in
    let make me =
      { Transport.on_start =
          (fun ep ->
             if me = 0 then
               for _ = 1 to 3 do
                 ep.Transport.send 2 ()
               done);
        on_receive =
          (fun ep ~src:_ () ->
             if ep.Transport.me = 2 then incr handled) }
    in
    let sys = D.create ~crash ~n ~make () in
    D.run sys;
    Alcotest.(check int) (D.name ^ ": budget includes the killing delivery") 1
      !handled;
    Alcotest.(check int) "receives observed" 1 (D.receives_of sys 2);
    Alcotest.(check bool) "crashed" true (D.crashed sys 2);
    let m = D.metrics sys in
    Alcotest.(check int) "queued messages dead-lettered" 2
      m.Transport.dead_lettered

  (* Crash-recovery: [on_crash] fires synchronously at the trigger
     with the plan's disk-prefix choice, [on_recover] fires at revival
     with a live endpoint (its sends really enter channels), and the
     observation surface flips [crashed] back off. *)
  let recover_hooks () =
    let n = 3 in
    let crash = Array.make n Crash.Never in
    crash.(1) <-
      Crash.Crash_recover { trigger = Crash.Sends 1; delay = 4; keep = 7 };
    let crash_keep = ref (-1) in
    let rejoin_delivered = ref 0 in
    let make me =
      { Transport.on_start =
          (fun ep -> if me = 1 then ep.Transport.broadcast `First);
        on_receive =
          (fun ep ~src:_ msg ->
             match msg with
             | `Rejoin when ep.Transport.me <> 1 -> incr rejoin_delivered
             | `Rejoin | `First -> ()) }
    in
    let on_crash i ~keep =
      Alcotest.(check int) (D.name ^ ": crash hook names the crasher") 1 i;
      crash_keep := keep
    in
    let on_recover (ep : _ Transport.ep) =
      Alcotest.(check int) "revived endpoint identity" 1 ep.Transport.me;
      ep.Transport.broadcast `Rejoin
    in
    let sys = D.create ~on_crash ~on_recover ~crash ~n ~make () in
    D.run sys;
    Alcotest.(check int) "disk-prefix keep passed through" 7 !crash_keep;
    Alcotest.(check bool) "recovered" true (D.recovered_of sys 1);
    Alcotest.(check bool) "alive again" false (D.crashed sys 1);
    Alcotest.(check int) "rejoin broadcast reached everyone" (n - 1)
      !rejoin_delivered;
    Alcotest.(check int) "one revival counted" 1
      (D.metrics sys).Transport.recoveries

  (* Ping-pong forever: [run ~max_steps] is the liveness-bug guard. *)
  let step_limit () =
    let make _ =
      { Transport.on_start = (fun ep -> ep.Transport.send (1 - ep.Transport.me) ());
        on_receive = (fun ep ~src () -> ep.Transport.send src ()) }
    in
    let sys = D.create ~n:2 ~make () in
    Alcotest.check_raises (D.name ^ ": step limit raises")
      Transport.Step_limit_exceeded (fun () -> D.run ~max_steps:50 sys)

  let tests =
    [ Alcotest.test_case (D.name ^ " exactly-once FIFO") `Quick
        exactly_once_fifo;
      Alcotest.test_case (D.name ^ " broadcast rotation") `Quick
        broadcast_rotation;
      Alcotest.test_case (D.name ^ " crash drops sends") `Quick
        crash_drops_sends;
      Alcotest.test_case (D.name ^ " crash dead-letters queue") `Quick
        crash_dead_letters;
      Alcotest.test_case (D.name ^ " recover hooks") `Quick recover_hooks;
      Alcotest.test_case (D.name ^ " step limit") `Quick step_limit ]
end

module Sim_conformance = Conformance (Sim_driver)
module Loopback_conformance = Conformance (Loopback_driver)

(* --- Sim(fifo) ≡ Loopback, down to the trace bytes ------------------- *)

(* The same handlers and crash plans produce byte-identical transport
   transcripts under Sim's FIFO strategy and under Loopback — the
   equivalence the daemon's cheap transport rests on. *)
let trace_equivalence () =
  let n = 4 in
  let crash () =
    let c = Array.make n Crash.Never in
    c.(1) <- Crash.After_sends 4;
    c.(3) <-
      Crash.Crash_recover { trigger = Crash.Receives 3; delay = 5; keep = 0 };
    c
  in
  let make _me =
    { Transport.on_start = (fun ep -> ep.Transport.broadcast 0);
      on_receive =
        (fun ep ~src:_ gen ->
           if gen < 2 then ep.Transport.broadcast (gen + 1)) }
  in
  let on_recover (ep : _ Transport.ep) = ep.Transport.broadcast 9 in
  let sim_trace = Obs.Trace.create () in
  let sys =
    Sim.create ~trace:sim_trace ~on_recover ~n ~seed:123
      ~scheduler:Runtime.Scheduler.fifo ~crash:(crash ()) ~make ()
  in
  Sim.run sys;
  let lb_trace = Obs.Trace.create () in
  let lb =
    Loopback.create ~trace:lb_trace ~on_recover ~crash:(crash ()) ~n ~make ()
  in
  Loopback.run lb;
  Alcotest.(check string) "transcripts byte-identical"
    (Obs.Trace.to_jsonl sim_trace)
    (Obs.Trace.to_jsonl lb_trace);
  Alcotest.(check bool) "loopback recovered too" true
    (Loopback.recovered_of lb 3)

(* Loopback.step: pumps one delivery at a time, reaches the same end
   state as run, and reports quiescence exactly when done. *)
let stepwise_pumping () =
  let n = 3 in
  let delivered = ref 0 in
  let make _ =
    { Transport.on_start = (fun ep -> ep.Transport.broadcast ());
      on_receive = (fun _ ~src:_ () -> incr delivered) }
  in
  let lb = Loopback.create ~n ~make () in
  Alcotest.(check bool) "not quiescent before start" false
    (Loopback.quiescent lb);
  let steps = ref 0 in
  while Loopback.step lb do incr steps done;
  Alcotest.(check int) "all messages pumped" (n * (n - 1)) !delivered;
  Alcotest.(check bool) "quiescent at the end" true (Loopback.quiescent lb);
  Alcotest.(check bool) "step stays false at quiescence" false
    (Loopback.step lb)

(* --- Instance-vs-Executor differential ------------------------------- *)

(* Drive sans-IO instances over Loopback exactly the way the daemon
   does (and the way {!Chc.Cc.execute} wires them over Sim), returning
   (decisions, trace bytes). *)
let run_instances_on_loopback ?trace (s : Chc.Scenario.t) =
  let n = s.Chc.Scenario.config.Chc.Config.n in
  let recovery_on =
    s.Chc.Scenario.wal <> None
    || Array.exists
         (function Crash.Crash_recover _ -> true | _ -> false)
         s.Chc.Scenario.crash
  in
  let wal =
    if recovery_on then
      Some (Option.value s.Chc.Scenario.wal ~default:Runtime.Wal.default_config)
    else None
  in
  let spec =
    Instance.spec ~round0:s.Chc.Scenario.round0 ?wal s.Chc.Scenario.config
  in
  let insts =
    Array.init n (fun i ->
        Instance.create spec ~me:i ~input:s.Chc.Scenario.inputs.(i))
  in
  let emit =
    match trace with None -> fun _ -> () | Some tr -> Obs.Trace.emit tr
  in
  let run_effects (ep : Instance.msg Transport.ep) effs =
    let io =
      Instance.io ~send:ep.Transport.send
        ~broadcast:(fun m -> ep.Transport.broadcast m)
        ~sends:ep.Transport.sends ~emit ()
    in
    Instance.interpret insts.(ep.Transport.me) io effs
  in
  let make i =
    { Transport.on_start =
        (fun ep -> run_effects ep (Instance.start insts.(i)));
      on_receive =
        (fun ep ~src msg -> run_effects ep (Instance.handle insts.(i) ~src msg)) }
  in
  let lb =
    Loopback.create ?trace
      ~on_crash:(fun i ~keep -> Instance.crash insts.(i) ~keep)
      ~on_recover:(fun ep ->
          run_effects ep (Instance.recover insts.(ep.Transport.me)))
      ~crash:s.Chc.Scenario.crash ~n ~make ()
  in
  Loopback.run lb;
  Array.map Instance.poll_decision insts

(* Pinned corpus: fuzz-generator scenarios re-pinned to the FIFO
   schedule (the one schedule both transports express), graded two
   ways — through the executor (Instance over Sim) and through the
   daemon path (Instance over Loopback). Decisions and transcripts
   must agree exactly. *)
let differential () =
  let corpus =
    List.concat_map
      (fun seed -> List.map (fun trial -> (seed, trial)) [ 0; 1; 2 ])
      [ 11; 12; 13; 14 ]
  in
  List.iter
    (fun (seed, trial) ->
       let s = Fuzz.Gen.scenario Fuzz.Gen.default_space ~seed ~trial in
       let s =
         { s with
           Chc.Scenario.scheduler = Runtime.Scheduler.fifo;
           prefix = [];
           kernel = None }
       in
       let label = Printf.sprintf "seed %d trial %d" seed trial in
       let tr_sim = Obs.Trace.create () in
       let report = Chc.Executor.run ~trace:tr_sim s in
       let tr_lb = Obs.Trace.create () in
       let decisions = run_instances_on_loopback ~trace:tr_lb s in
       Alcotest.(check string)
         (label ^ ": traces byte-identical")
         (Obs.Trace.to_jsonl tr_sim) (Obs.Trace.to_jsonl tr_lb);
       let exec_outputs = report.Chc.Executor.result.Chc.Cc.outputs in
       Alcotest.(check int)
         (label ^ ": same process count")
         (Array.length exec_outputs) (Array.length decisions);
       Array.iteri
         (fun i expect ->
            match (expect, decisions.(i)) with
            | None, None -> ()
            | Some a, Some b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: process %d same decision" label i)
                true (Polytope.equal a b)
            | Some _, None ->
              Alcotest.failf "%s: process %d decided only under Sim" label i
            | None, Some _ ->
              Alcotest.failf "%s: process %d decided only under Loopback"
                label i)
         exec_outputs)
    corpus

(* The shared CLI surface produces one error-message format wherever
   the flags are consumed (run/trace/profile/fuzz/replay and the
   daemon all parse through {!Chc.Cli.scenario_of_common}). *)
let cli_common_errors () =
  let base =
    { Chc.Cli.n = 5; f = 1; d = 2; eps = "0.1"; lo = "0"; hi = "1"; seed = 1;
      scheduler = "random"; naive = false; kernel = None; poly = None;
      inputs = None; faulty = None }
  in
  let err c =
    match Chc.Cli.scenario_of_common c with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error msg -> msg
  in
  Alcotest.(check string) "--eps format"
    "--eps: \"nope\" is not a decimal or rational"
    (err { base with Chc.Cli.eps = "nope" });
  Alcotest.(check string) "--faulty format"
    "--faulty: \"x\" is not a process id"
    (err { base with Chc.Cli.faulty = Some "0,x" });
  Alcotest.(check string) "--inputs format" "--inputs: expected 5 points, got 1"
    (err { base with Chc.Cli.inputs = Some "0.5,0.5" });
  (match Chc.Cli.scenario_of_common base with
   | Ok spec ->
     Alcotest.(check int) "valid common parses" 5
       spec.Chc.Scenario.config.Chc.Config.n
   | Error msg -> Alcotest.failf "valid common rejected: %s" msg);
  (match Chc.Cli.set_kernel (Some "frobnicate") with
   | Error msg ->
     Alcotest.(check string) "--kernel format"
       "--kernel: unknown kernel \"frobnicate\" (expected \"exact\", \
        \"filtered\" or \"staged\")" msg
   | Ok () -> Alcotest.fail "bad kernel accepted")

let suite =
  [ ( "transport-conformance",
      Sim_conformance.tests @ Loopback_conformance.tests
      @ [ Alcotest.test_case "sim(fifo) = loopback traces" `Quick
            trace_equivalence;
          Alcotest.test_case "loopback stepwise pumping" `Quick
            stepwise_pumping;
          Alcotest.test_case "instance-vs-executor differential" `Slow
            differential;
          Alcotest.test_case "shared CLI error format" `Quick
            cli_common_errors ] ) ]
