(* The serving daemon's pieces in isolation: the frame codec (protocol
   messages and the client vocabulary, plus chunked reassembly), the
   sharded server end-to-end with Theorem 2 grading, and the
   kill-restart path (scan_wal + submit ~resume). *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Frame = Serve.Frame
module Server = Serve.Server
module Workload = Serve.Workload
module Instance = Chc.Instance

let vec l = Vec.make (List.map Q.of_string l)

let msg_roundtrip () =
  let poly =
    Polytope.of_points ~dim:2
      [ vec [ "0"; "0" ]; vec [ "1"; "0" ]; vec [ "1/2"; "3/4" ] ]
  in
  let msgs =
    [ Instance.Input0 (vec [ "1/3"; "2/7" ]);
      Instance.Round (5, poly);
      Instance.Rejoin 12;
      Instance.Sv
        (Protocol.Stable_vector.msg_of_entries
           [ (0, vec [ "0"; "1" ]); (2, vec [ "1/2"; "1/2" ]) ]) ]
  in
  List.iter
    (fun m ->
       let s = Frame.msg_to_string m in
       match Frame.msg_of_string s with
       | Error e -> Alcotest.failf "roundtrip failed: %s" e
       | Ok m' ->
         Alcotest.(check string) "msg roundtrips" s (Frame.msg_to_string m'))
    msgs;
  (* trailing garbage is Malformed, not silently ignored *)
  (match Frame.msg_of_string (Frame.msg_to_string (Instance.Rejoin 3) ^ "x") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* unsorted sv entries rejected *)
  let bad = Buffer.create 16 in
  Codec.Wire.write_varint bad 0;
  Codec.Wire.write_varint bad 2;
  Codec.Wire.write_varint bad 2;
  Codec.Wire.write_vec bad (vec [ "0"; "0" ]);
  Codec.Wire.write_varint bad 1;
  Codec.Wire.write_vec bad (vec [ "1"; "1" ]);
  (match Frame.msg_of_string (Buffer.contents bad) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unsorted sv view accepted")

let request_response_roundtrip () =
  let req =
    Frame.Submit
      { id = 42; n = 4; f = 1; d = 1;
        eps = Q.of_ints 1 100; lo = Q.zero; hi = Q.one;
        inputs =
          [| vec [ "0" ]; vec [ "1/4" ]; vec [ "1/2" ]; vec [ "1" ] |] }
  in
  let b = Buffer.create 64 in
  Frame.write_request b req;
  let r = Codec.Wire.reader_of_string (Buffer.contents b) in
  (match Frame.read_request r with
   | Frame.Submit { id; n; d; inputs; _ } ->
     Alcotest.(check int) "id" 42 id;
     Alcotest.(check int) "n" 4 n;
     Alcotest.(check int) "d" 1 d;
     Alcotest.(check int) "inputs" 4 (Array.length inputs);
     Alcotest.(check bool) "fully consumed" true (Codec.Wire.reader_done r));
  let poly = Polytope.of_points ~dim:1 [ vec [ "1/3" ]; vec [ "1/2" ] ] in
  List.iter
    (fun resp ->
       let b = Buffer.create 64 in
       Frame.write_response b resp;
       let r = Codec.Wire.reader_of_string (Buffer.contents b) in
       (match (resp, Frame.read_response r) with
        | Frame.Decision { id; t_end; output },
          Frame.Decision { id = id'; t_end = t'; output = o' } ->
          Alcotest.(check int) "id" id id';
          Alcotest.(check int) "t_end" t_end t';
          Alcotest.(check bool) "output" true (Polytope.equal output o')
        | Frame.Rejected { id; reason }, Frame.Rejected { id = id'; reason = r' }
          ->
          Alcotest.(check int) "id" id id';
          Alcotest.(check string) "reason" reason r'
        | _ -> Alcotest.fail "response kind flipped");
       Alcotest.(check bool) "fully consumed" true (Codec.Wire.reader_done r))
    [ Frame.Decision { id = 7; t_end = 21; output = poly };
      Frame.Rejected { id = 8; reason = "n < (d+2)f + 1" } ]

(* Frames survive arbitrary chunk boundaries: three frames fed one
   byte at a time come back intact, in order. *)
let decoder_chunking () =
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  let stream = String.concat "" (List.map Frame.encode_frame payloads) in
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iteri
    (fun _ c ->
       Frame.feed dec (String.make 1 c);
       let rec drain () =
         match Frame.next dec with
         | Some p -> got := p :: !got; drain ()
         | None -> ()
       in
       drain ())
    stream;
  Alcotest.(check (list string)) "all frames, in order" payloads
    (List.rev !got);
  Alcotest.(check int) "nothing left over" 0 (Frame.pending dec)

let job shape ~id ~seed =
  let rng = Runtime.Rng.create seed in
  Workload.job ~rng ~id shape

(* A mixed batch through the server: everything decides, everything
   grades, ids round-trip, recovery instances report their revival. *)
let server_drain_and_grade () =
  let server = Server.create ~shards:2 ~fuel:16 () in
  let shapes =
    [ { Workload.n = 4; f = 1; d = 1; recover = false };
      { Workload.n = 5; f = 1; d = 2; recover = false };
      { Workload.n = 6; f = 1; d = 2; recover = true } ]
  in
  List.iteri
    (fun id shape -> Server.submit server (job shape ~id ~seed:(100 + id)))
    shapes;
  Alcotest.(check int) "inflight" 3 (Server.inflight server);
  let outcomes = Server.drain server in
  Alcotest.(check int) "all decided" 3 (List.length outcomes);
  Alcotest.(check int) "none left" 0 (Server.inflight server);
  List.iter
    (fun (o : Server.outcome) ->
       (match Server.grade o with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "instance %d fails Theorem 2: %s"
            o.Server.job.Server.id msg);
       let recovery_job = o.Server.job.Server.id = 2 in
       Alcotest.(check bool)
         (Printf.sprintf "instance %d recovery" o.Server.job.Server.id)
         recovery_job
         (o.Server.recovered <> []);
       match Server.response_of_outcome o with
       | Frame.Decision { id; t_end; _ } ->
         Alcotest.(check int) "response id" o.Server.job.Server.id id;
         Alcotest.(check int) "response t_end" o.Server.t_end t_end
       | Frame.Rejected _ -> Alcotest.fail "decided instance rejected")
    outcomes;
  Alcotest.(check int) "completed counter" 3 (Server.completed server);
  (* duplicate live id rejected *)
  Server.submit server (job (List.hd shapes) ~id:50 ~seed:7);
  (match Server.submit server (job (List.hd shapes) ~id:50 ~seed:8) with
   | () -> Alcotest.fail "duplicate live id accepted"
   | exception Invalid_argument _ -> ());
  ignore (Server.drain server)

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* The kill-restart path: run half the batch to completion, abandon
   the server with the rest mid-flight (as a SIGKILL would), then
   scan the WAL directory from a fresh server and finish them through
   the restore path. Decisions must still grade. *)
let wal_restart () =
  let wal_dir = Filename.temp_file "chc_serve_test" "" in
  Sys.remove wal_dir;
  Fun.protect ~finally:(fun () -> rm_rf wal_dir) @@ fun () ->
  let shape = { Workload.n = 4; f = 1; d = 1; recover = false } in
  let first = Server.create ~shards:1 ~fuel:4 ~wal_dir () in
  for id = 0 to 3 do
    Server.submit first (job shape ~id ~seed:(200 + id))
  done;
  (* pump a little — enough for WALs to accumulate, nowhere near
     enough to finish — then walk away without closing anything *)
  for _ = 1 to 2 do
    ignore (Server.pump first)
  done;
  Alcotest.(check bool) "instances still in flight" true
    (Server.inflight first > 0);
  let pending = Server.scan_wal ~wal_dir in
  Alcotest.(check int) "scan finds exactly the unfinished"
    (Server.inflight first) (List.length pending);
  let second = Server.create ~shards:1 ~fuel:8 ~wal_dir () in
  List.iter
    (fun (j, entries) -> Server.submit second ~resume:entries j)
    pending;
  let outcomes = Server.drain second in
  Alcotest.(check int) "every resumed instance decides"
    (List.length pending) (List.length outcomes);
  List.iter
    (fun (o : Server.outcome) ->
       Alcotest.(check bool) "marked resumed" true o.Server.resumed;
       match Server.grade o with
       | Ok () -> ()
       | Error msg ->
         Alcotest.failf "resumed instance %d fails Theorem 2: %s"
           o.Server.job.Server.id msg)
    outcomes;
  (* after finishing, a second scan finds nothing *)
  Alcotest.(check int) "markers written" 0
    (List.length (Server.scan_wal ~wal_dir))

(* job_of_request validation speaks the CLI's vocabulary. *)
let request_validation () =
  let mk ?(n = 4) ?(f = 1) ?(d = 1) ?(inputs = 4) () =
    Frame.Submit
      { id = 0; n; f; d; eps = Q.of_ints 1 10; lo = Q.zero; hi = Q.one;
        inputs = Array.init inputs (fun i -> vec [ Printf.sprintf "%d/10" i ]) }
  in
  (match Server.job_of_request (mk ()) with
   | Ok j -> Alcotest.(check int) "valid request" 4 j.Server.config.Chc.Config.n
   | Error e -> Alcotest.failf "valid request rejected: %s" e);
  (match Server.job_of_request (mk ~n:3 ~inputs:3 ()) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "resilience violation accepted");
  (match Server.job_of_request (mk ~inputs:3 ()) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong input count accepted")

let percentile () =
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "p50" 3. (Workload.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p99" 5. (Workload.percentile xs 0.99);
  Alcotest.(check (float 1e-9)) "empty" 0. (Workload.percentile [] 0.5)

(* ------------------------------------------------------------------ *)
(* The admin plane. *)

module Admin = Serve.Admin

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let status_of resp =
  match String.index_opt resp '\r' with
  | Some i -> String.sub resp 0 i
  | None -> resp

let body_of resp =
  let rec find i =
    if i + 3 >= String.length resp then None
    else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.sub resp i (String.length resp - i)
  | None -> ""

(* Request-level routing, no sockets involved. *)
let admin_routing () =
  let ok_source =
    { Admin.metrics = (fun () -> "# TYPE chc_x counter\nchc_x 1\n");
      healthz = (fun () -> (true, Codec.Json.Obj [ ("status", Codec.Json.Str "ok") ]));
      statusz = (fun () -> Codec.Json.Obj [ ("inflight", Codec.Json.Int 0) ]) }
  in
  let req path = Admin.handle_request ok_source
      (Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n\r\n" path) in
  Alcotest.(check string) "metrics 200" "HTTP/1.0 200 OK"
    (status_of (req "/metrics"));
  Alcotest.(check bool) "metrics content-type versioned" true
    (contains ~sub:"text/plain; version=0.0.4" (req "/metrics"));
  Alcotest.(check string) "healthz 200" "HTTP/1.0 200 OK"
    (status_of (req "/healthz"));
  Alcotest.(check string) "statusz 200" "HTTP/1.0 200 OK"
    (status_of (req "/statusz"));
  Alcotest.(check string) "query string stripped" "HTTP/1.0 200 OK"
    (status_of (req "/metrics?refresh=1"));
  Alcotest.(check string) "unknown path 404" "HTTP/1.0 404 Not Found"
    (status_of (req "/favicon.ico"));
  Alcotest.(check string) "non-GET 405" "HTTP/1.0 405 Method Not Allowed"
    (status_of
       (Admin.handle_request ok_source "POST /metrics HTTP/1.0\r\n\r\n"));
  Alcotest.(check string) "garbage 400" "HTTP/1.0 400 Bad Request"
    (status_of (Admin.handle_request ok_source "NOT AN HTTP LINE\r\n\r\n"));
  (* unhealthy renders 503; a raising thunk renders 500, not a crash *)
  let sick =
    { ok_source with
      Admin.healthz =
        (fun () ->
           (false, Codec.Json.Obj [ ("status", Codec.Json.Str "degraded") ]));
      statusz = (fun () -> failwith "boom") }
  in
  Alcotest.(check string) "unhealthy 503" "HTTP/1.0 503 Service Unavailable"
    (status_of (Admin.handle_request sick "GET /healthz HTTP/1.0\r\n\r\n"));
  Alcotest.(check string) "raising thunk 500"
    "HTTP/1.0 500 Internal Server Error"
    (status_of (Admin.handle_request sick "GET /statusz HTTP/1.0\r\n\r\n"));
  (* frame-vs-http first-byte discrimination *)
  Alcotest.(check bool) "GET looks like http" true
    (Admin.looks_like_http "GET /metrics HTTP/1.0");
  Alcotest.(check bool) "LEB128 frame does not" false
    (Admin.looks_like_http (Frame.encode_frame "payload"))

(* Drive one HTTP exchange against a real listener, pumping it
   ourselves (the test is single-threaded, like the daemon's loop).
   [writes] lets callers split the request across TCP segments. *)
let http_exchange admin writes =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd
         (Unix.ADDR_INET (Unix.inet_addr_loopback, Admin.port admin));
       let b = Buffer.create 512 in
       let buf = Bytes.create 4096 in
       let deadline = Unix.gettimeofday () +. 5.0 in
       List.iter
         (fun w ->
            ignore (Unix.write_substring fd w 0 (String.length w));
            Admin.poll ~timeout:0.01 admin)
         writes;
       let rec drain () =
         if Unix.gettimeofday () > deadline then
           Alcotest.fail "admin response timed out";
         Admin.poll ~timeout:0.01 admin;
         match Unix.select [ fd ] [] [] 0.05 with
         | [ _ ], _, _ ->
           (match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> ()  (* server closed: response complete *)
            | k ->
              Buffer.add_subbytes b buf 0 k;
              drain ())
         | _ -> drain ()
       in
       drain ();
       Buffer.contents b)

(* The full admin stack over a real socket, against a server that has
   actually done work: scrape all three endpoints, split one request
   across writes, and parse statusz with the strict JSON decoder. *)
let admin_over_socket () =
  let server = Server.create ~shards:2 ~fuel:16 () in
  let shapes =
    [ { Workload.n = 4; f = 1; d = 1; recover = false };
      { Workload.n = 5; f = 1; d = 2; recover = false };
      { Workload.n = 6; f = 1; d = 2; recover = true } ]
  in
  List.iteri
    (fun id shape -> Server.submit server (job shape ~id ~seed:(300 + id)))
    shapes;
  let outcomes = Server.drain server in
  Alcotest.(check int) "workload decided" 3 (List.length outcomes);
  let admin = Admin.create ~port:0 (Server.admin_source server) in
  Fun.protect ~finally:(fun () -> Admin.close admin) @@ fun () ->
  Alcotest.(check bool) "ephemeral port bound" true (Admin.port admin > 0);
  let metrics = http_exchange admin [ "GET /metrics HTTP/1.0\r\n\r\n" ] in
  Alcotest.(check string) "metrics 200" "HTTP/1.0 200 OK"
    (status_of metrics);
  List.iter
    (fun family ->
       Alcotest.(check bool) (family ^ " exposed") true
         (contains ~sub:family (body_of metrics)))
    [ "# TYPE chc_serve_instances_total counter";
      "# HELP chc_serve_instances_total";
      (* no exact value: the registry is process-wide, and other tests
         in this binary also decide instances *)
      "chc_serve_instances_total{status=\"decided\"}";
      "chc_serve_decision_latency_seconds_bucket";
      "# TYPE chc_serve_violations_total counter" ];
  (* request split across TCP segments *)
  let health =
    http_exchange admin [ "GET /hea"; "lthz HTT"; "P/1.0\r\n\r\n" ]
  in
  Alcotest.(check string) "chunked healthz 200" "HTTP/1.0 200 OK"
    (status_of health);
  (match Codec.Json.of_string (String.trim (body_of health)) with
   | Error e -> Alcotest.failf "healthz body unparseable: %s" e
   | Ok j ->
     Alcotest.(check bool) "status ok" true
       (Codec.Json.member "status" j = Some (Codec.Json.Str "ok"));
     Alcotest.(check bool) "violations 0" true
       (Codec.Json.member "violations" j = Some (Codec.Json.Int 0)));
  let statusz = http_exchange admin [ "GET /statusz HTTP/1.0\r\n\r\n" ] in
  (match Codec.Json.of_string (String.trim (body_of statusz)) with
   | Error e -> Alcotest.failf "statusz body unparseable: %s" e
   | Ok j ->
     Alcotest.(check bool) "completed = 3" true
       (Codec.Json.member "completed" j = Some (Codec.Json.Int 3));
     Alcotest.(check bool) "inflight = 0" true
       (Codec.Json.member "inflight" j = Some (Codec.Json.Int 0));
     (match Codec.Json.member "shard" j with
      | Some (Codec.Json.List rows) ->
        Alcotest.(check int) "one row per shard" 2 (List.length rows)
      | _ -> Alcotest.fail "statusz.shard must be a list");
     List.iter
       (fun key ->
          Alcotest.(check bool) ("statusz has " ^ key) true
            (Codec.Json.member key j <> None))
       [ "uptime_s"; "fuel"; "decision_latency"; "wal"; "memo"; "log";
         "violations"; "slow_threshold_ms" ]);
  (* malformed request over the wire: a 400, not a hang or a crash *)
  let bad = http_exchange admin [ "completely wrong\r\n\r\n" ] in
  Alcotest.(check string) "malformed 400" "HTTP/1.0 400 Bad Request"
    (status_of bad)

(* A counted Theorem-2 violation flips /healthz to 503 and shows up in
   the violation counters; grading an honest outcome does not. *)
let healthz_degradation () =
  let server = Server.create ~shards:1 ~fuel:16 () in
  let shape = { Workload.n = 4; f = 1; d = 1; recover = false } in
  Server.submit server (job shape ~id:0 ~seed:400);
  (match Server.drain server with
   | [ o ] ->
     (match Server.grade_count server o with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "honest outcome misgraded: %s" msg)
   | _ -> Alcotest.fail "expected one outcome");
  let src = Server.admin_source server in
  Alcotest.(check string) "healthy before violation" "HTTP/1.0 200 OK"
    (status_of (Admin.handle_request src "GET /healthz HTTP/1.0\r\n\r\n"));
  (* a fabricated outcome with no decisions violates termination *)
  let bad_outcome =
    { Server.job = job shape ~id:99 ~seed:401;
      outputs = []; t_end = 0; steps = 0; latency_s = 0.;
      recovered = []; resumed = false }
  in
  (match Server.grade_count server bad_outcome with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "undecided outcome graded Ok");
  Alcotest.(check int) "violation counted" 1 (Server.violations server);
  let resp = Admin.handle_request src "GET /healthz HTTP/1.0\r\n\r\n" in
  Alcotest.(check string) "healthz degrades to 503"
    "HTTP/1.0 503 Service Unavailable" (status_of resp);
  (match Codec.Json.of_string (String.trim (body_of resp)) with
   | Error e -> Alcotest.failf "degraded healthz unparseable: %s" e
   | Ok j ->
     Alcotest.(check bool) "status string degraded" true
       (Codec.Json.member "status" j = Some (Codec.Json.Str "degraded"));
     Alcotest.(check bool) "violations visible" true
       (Codec.Json.member "violations" j = Some (Codec.Json.Int 1)))

let suite =
  [ ( "serve",
      [ Alcotest.test_case "protocol msg codec roundtrip" `Quick msg_roundtrip;
        Alcotest.test_case "request/response codec roundtrip" `Quick
          request_response_roundtrip;
        Alcotest.test_case "decoder survives chunking" `Quick decoder_chunking;
        Alcotest.test_case "server drain + Theorem 2 grade" `Slow
          server_drain_and_grade;
        Alcotest.test_case "kill-restart via scan_wal" `Slow wal_restart;
        Alcotest.test_case "request validation" `Quick request_validation;
        Alcotest.test_case "workload percentile" `Quick percentile;
        Alcotest.test_case "admin request routing" `Quick admin_routing;
        Alcotest.test_case "admin endpoints over a socket" `Slow
          admin_over_socket;
        Alcotest.test_case "healthz degradation on violation" `Quick
          healthz_degradation ] ) ]
