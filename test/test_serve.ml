(* The serving daemon's pieces in isolation: the frame codec (protocol
   messages and the client vocabulary, plus chunked reassembly), the
   sharded server end-to-end with Theorem 2 grading, and the
   kill-restart path (scan_wal + submit ~resume). *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Frame = Serve.Frame
module Server = Serve.Server
module Workload = Serve.Workload
module Instance = Chc.Instance

let vec l = Vec.make (List.map Q.of_string l)

let msg_roundtrip () =
  let poly =
    Polytope.of_points ~dim:2
      [ vec [ "0"; "0" ]; vec [ "1"; "0" ]; vec [ "1/2"; "3/4" ] ]
  in
  let msgs =
    [ Instance.Input0 (vec [ "1/3"; "2/7" ]);
      Instance.Round (5, poly);
      Instance.Rejoin 12;
      Instance.Sv
        (Protocol.Stable_vector.msg_of_entries
           [ (0, vec [ "0"; "1" ]); (2, vec [ "1/2"; "1/2" ]) ]) ]
  in
  List.iter
    (fun m ->
       let s = Frame.msg_to_string m in
       match Frame.msg_of_string s with
       | Error e -> Alcotest.failf "roundtrip failed: %s" e
       | Ok m' ->
         Alcotest.(check string) "msg roundtrips" s (Frame.msg_to_string m'))
    msgs;
  (* trailing garbage is Malformed, not silently ignored *)
  (match Frame.msg_of_string (Frame.msg_to_string (Instance.Rejoin 3) ^ "x") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* unsorted sv entries rejected *)
  let bad = Buffer.create 16 in
  Codec.Wire.write_varint bad 0;
  Codec.Wire.write_varint bad 2;
  Codec.Wire.write_varint bad 2;
  Codec.Wire.write_vec bad (vec [ "0"; "0" ]);
  Codec.Wire.write_varint bad 1;
  Codec.Wire.write_vec bad (vec [ "1"; "1" ]);
  (match Frame.msg_of_string (Buffer.contents bad) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unsorted sv view accepted")

let request_response_roundtrip () =
  let req =
    Frame.Submit
      { id = 42; n = 4; f = 1; d = 1;
        eps = Q.of_ints 1 100; lo = Q.zero; hi = Q.one;
        inputs =
          [| vec [ "0" ]; vec [ "1/4" ]; vec [ "1/2" ]; vec [ "1" ] |] }
  in
  let b = Buffer.create 64 in
  Frame.write_request b req;
  let r = Codec.Wire.reader_of_string (Buffer.contents b) in
  (match Frame.read_request r with
   | Frame.Submit { id; n; d; inputs; _ } ->
     Alcotest.(check int) "id" 42 id;
     Alcotest.(check int) "n" 4 n;
     Alcotest.(check int) "d" 1 d;
     Alcotest.(check int) "inputs" 4 (Array.length inputs);
     Alcotest.(check bool) "fully consumed" true (Codec.Wire.reader_done r));
  let poly = Polytope.of_points ~dim:1 [ vec [ "1/3" ]; vec [ "1/2" ] ] in
  List.iter
    (fun resp ->
       let b = Buffer.create 64 in
       Frame.write_response b resp;
       let r = Codec.Wire.reader_of_string (Buffer.contents b) in
       (match (resp, Frame.read_response r) with
        | Frame.Decision { id; t_end; output },
          Frame.Decision { id = id'; t_end = t'; output = o' } ->
          Alcotest.(check int) "id" id id';
          Alcotest.(check int) "t_end" t_end t';
          Alcotest.(check bool) "output" true (Polytope.equal output o')
        | Frame.Rejected { id; reason }, Frame.Rejected { id = id'; reason = r' }
          ->
          Alcotest.(check int) "id" id id';
          Alcotest.(check string) "reason" reason r'
        | _ -> Alcotest.fail "response kind flipped");
       Alcotest.(check bool) "fully consumed" true (Codec.Wire.reader_done r))
    [ Frame.Decision { id = 7; t_end = 21; output = poly };
      Frame.Rejected { id = 8; reason = "n < (d+2)f + 1" } ]

(* Frames survive arbitrary chunk boundaries: three frames fed one
   byte at a time come back intact, in order. *)
let decoder_chunking () =
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  let stream = String.concat "" (List.map Frame.encode_frame payloads) in
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iteri
    (fun _ c ->
       Frame.feed dec (String.make 1 c);
       let rec drain () =
         match Frame.next dec with
         | Some p -> got := p :: !got; drain ()
         | None -> ()
       in
       drain ())
    stream;
  Alcotest.(check (list string)) "all frames, in order" payloads
    (List.rev !got);
  Alcotest.(check int) "nothing left over" 0 (Frame.pending dec)

let job shape ~id ~seed =
  let rng = Runtime.Rng.create seed in
  Workload.job ~rng ~id shape

(* A mixed batch through the server: everything decides, everything
   grades, ids round-trip, recovery instances report their revival. *)
let server_drain_and_grade () =
  let server = Server.create ~shards:2 ~fuel:16 () in
  let shapes =
    [ { Workload.n = 4; f = 1; d = 1; recover = false };
      { Workload.n = 5; f = 1; d = 2; recover = false };
      { Workload.n = 6; f = 1; d = 2; recover = true } ]
  in
  List.iteri
    (fun id shape -> Server.submit server (job shape ~id ~seed:(100 + id)))
    shapes;
  Alcotest.(check int) "inflight" 3 (Server.inflight server);
  let outcomes = Server.drain server in
  Alcotest.(check int) "all decided" 3 (List.length outcomes);
  Alcotest.(check int) "none left" 0 (Server.inflight server);
  List.iter
    (fun (o : Server.outcome) ->
       (match Server.grade o with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "instance %d fails Theorem 2: %s"
            o.Server.job.Server.id msg);
       let recovery_job = o.Server.job.Server.id = 2 in
       Alcotest.(check bool)
         (Printf.sprintf "instance %d recovery" o.Server.job.Server.id)
         recovery_job
         (o.Server.recovered <> []);
       match Server.response_of_outcome o with
       | Frame.Decision { id; t_end; _ } ->
         Alcotest.(check int) "response id" o.Server.job.Server.id id;
         Alcotest.(check int) "response t_end" o.Server.t_end t_end
       | Frame.Rejected _ -> Alcotest.fail "decided instance rejected")
    outcomes;
  Alcotest.(check int) "completed counter" 3 (Server.completed server);
  (* duplicate live id rejected *)
  Server.submit server (job (List.hd shapes) ~id:50 ~seed:7);
  (match Server.submit server (job (List.hd shapes) ~id:50 ~seed:8) with
   | () -> Alcotest.fail "duplicate live id accepted"
   | exception Invalid_argument _ -> ());
  ignore (Server.drain server)

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* The kill-restart path: run half the batch to completion, abandon
   the server with the rest mid-flight (as a SIGKILL would), then
   scan the WAL directory from a fresh server and finish them through
   the restore path. Decisions must still grade. *)
let wal_restart () =
  let wal_dir = Filename.temp_file "chc_serve_test" "" in
  Sys.remove wal_dir;
  Fun.protect ~finally:(fun () -> rm_rf wal_dir) @@ fun () ->
  let shape = { Workload.n = 4; f = 1; d = 1; recover = false } in
  let first = Server.create ~shards:1 ~fuel:4 ~wal_dir () in
  for id = 0 to 3 do
    Server.submit first (job shape ~id ~seed:(200 + id))
  done;
  (* pump a little — enough for WALs to accumulate, nowhere near
     enough to finish — then walk away without closing anything *)
  for _ = 1 to 2 do
    ignore (Server.pump first)
  done;
  Alcotest.(check bool) "instances still in flight" true
    (Server.inflight first > 0);
  let pending = Server.scan_wal ~wal_dir in
  Alcotest.(check int) "scan finds exactly the unfinished"
    (Server.inflight first) (List.length pending);
  let second = Server.create ~shards:1 ~fuel:8 ~wal_dir () in
  List.iter
    (fun (j, entries) -> Server.submit second ~resume:entries j)
    pending;
  let outcomes = Server.drain second in
  Alcotest.(check int) "every resumed instance decides"
    (List.length pending) (List.length outcomes);
  List.iter
    (fun (o : Server.outcome) ->
       Alcotest.(check bool) "marked resumed" true o.Server.resumed;
       match Server.grade o with
       | Ok () -> ()
       | Error msg ->
         Alcotest.failf "resumed instance %d fails Theorem 2: %s"
           o.Server.job.Server.id msg)
    outcomes;
  (* after finishing, a second scan finds nothing *)
  Alcotest.(check int) "markers written" 0
    (List.length (Server.scan_wal ~wal_dir))

(* job_of_request validation speaks the CLI's vocabulary. *)
let request_validation () =
  let mk ?(n = 4) ?(f = 1) ?(d = 1) ?(inputs = 4) () =
    Frame.Submit
      { id = 0; n; f; d; eps = Q.of_ints 1 10; lo = Q.zero; hi = Q.one;
        inputs = Array.init inputs (fun i -> vec [ Printf.sprintf "%d/10" i ]) }
  in
  (match Server.job_of_request (mk ()) with
   | Ok j -> Alcotest.(check int) "valid request" 4 j.Server.config.Chc.Config.n
   | Error e -> Alcotest.failf "valid request rejected: %s" e);
  (match Server.job_of_request (mk ~n:3 ~inputs:3 ()) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "resilience violation accepted");
  (match Server.job_of_request (mk ~inputs:3 ()) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong input count accepted")

let percentile () =
  let xs = [ 5.; 1.; 4.; 2.; 3. ] in
  Alcotest.(check (float 1e-9)) "p50" 3. (Workload.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p99" 5. (Workload.percentile xs 0.99);
  Alcotest.(check (float 1e-9)) "empty" 0. (Workload.percentile [] 0.5)

let suite =
  [ ( "serve",
      [ Alcotest.test_case "protocol msg codec roundtrip" `Quick msg_roundtrip;
        Alcotest.test_case "request/response codec roundtrip" `Quick
          request_response_roundtrip;
        Alcotest.test_case "decoder survives chunking" `Quick decoder_chunking;
        Alcotest.test_case "server drain + Theorem 2 grade" `Slow
          server_drain_and_grade;
        Alcotest.test_case "kill-restart via scan_wal" `Slow wal_restart;
        Alcotest.test_case "request validation" `Quick request_validation;
        Alcotest.test_case "workload percentile" `Quick percentile ] ) ]
