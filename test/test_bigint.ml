(* Unit and property tests for the hand-rolled bignum layer. The
   property tests cross-check Knuth-D division against the
   shift-subtract oracle and against algebraic identities. *)

module B = Numeric.Bigint

let b = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check b

(* --- generators ------------------------------------------------------ *)

(* Random signed bignum with up to [digits] decimal digits. *)
let gen_bigint ?(digits = 40) () =
  let open QCheck.Gen in
  let* len = 1 -- digits in
  let* ds = list_size (return len) (0 -- 9) in
  let* negative = bool in
  let s = String.concat "" (List.map string_of_int ds) in
  let v = B.of_string s in
  return (if negative then B.neg v else v)

let arb_bigint ?digits () =
  QCheck.make ~print:B.to_string (gen_bigint ?digits ())

let arb_nonzero ?digits () =
  QCheck.make ~print:B.to_string
    (QCheck.Gen.map
       (fun x -> if B.is_zero x then B.one else x)
       (gen_bigint ?digits ()))

let count = 500

let prop name arb f = QCheck.Test.make ~count ~name arb f
let qtest t = QCheck_alcotest.to_alcotest t

(* --- unit tests ------------------------------------------------------ *)

let test_of_to_int () =
  List.iter
    (fun n ->
       Alcotest.(check (option int)) (string_of_int n)
         (Some n) (B.to_int_opt (B.of_int n)))
    [0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40; -(1 lsl 40)]

let test_min_int () =
  (* min_int has no positive native counterpart; round-trips via string. *)
  let x = B.of_int min_int in
  Alcotest.(check string) "min_int decimal" (string_of_int min_int) (B.to_string x)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    ["0"; "1"; "-1"; "123456789012345678901234567890";
     "-999999999999999999999999999999999999"; "1000000000000000000000000000"]

let test_basic_arith () =
  let i = B.of_int in
  check_b "2+3" (i 5) (B.add (i 2) (i 3));
  check_b "2-3" (i (-1)) (B.sub (i 2) (i 3));
  check_b "-7*6" (i (-42)) (B.mul (i (-7)) (i 6));
  check_b "7/2" (i 3) (B.div (i 7) (i 2));
  check_b "7 mod 2" (i 1) (B.rem (i 7) (i 2));
  check_b "-7/2" (i (-3)) (B.div (i (-7)) (i 2));
  check_b "-7 mod 2" (i (-1)) (B.rem (i (-7)) (i 2));
  check_b "gcd 12 18" (i 6) (B.gcd (i 12) (i 18));
  check_b "gcd 0 5" (i 5) (B.gcd (i 0) (i 5));
  check_b "2^100 / 2^50" (B.pow (i 2) 50) (B.div (B.pow (i 2) 100) (B.pow (i 2) 50))

let test_pow () =
  check_b "3^0" B.one (B.pow (B.of_int 3) 0);
  check_b "3^4" (B.of_int 81) (B.pow (B.of_int 3) 4);
  Alcotest.(check string) "2^128"
    "340282366920938463463374607431768211456"
    (B.to_string (B.pow B.two 128))

let test_shift () =
  check_b "1 lsl 100 = 2^100" (B.pow B.two 100) (B.shift_left B.one 100);
  check_b "shift round trip" (B.of_int 12345)
    (B.shift_right (B.shift_left (B.of_int 12345) 67) 67)

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.pow B.two 100))

let test_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero
    (fun () -> ignore (B.div B.one B.zero))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "42." 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "2^64"
    (Float.pow 2.0 64.0) (B.to_float (B.pow B.two 64))

(* --- property tests -------------------------------------------------- *)

let pair a b = QCheck.pair a b

let props =
  [ prop "add comm" (pair (arb_bigint ()) (arb_bigint ()))
      (fun (a, b') -> B.equal (B.add a b') (B.add b' a));
    prop "add assoc"
      (QCheck.triple (arb_bigint ()) (arb_bigint ()) (arb_bigint ()))
      (fun (a, b', c) ->
         B.equal (B.add (B.add a b') c) (B.add a (B.add b' c)));
    prop "sub inverse" (pair (arb_bigint ()) (arb_bigint ()))
      (fun (a, b') -> B.equal a (B.add (B.sub a b') b'));
    prop "mul comm" (pair (arb_bigint ()) (arb_bigint ()))
      (fun (a, b') -> B.equal (B.mul a b') (B.mul b' a));
    prop "mul distributes"
      (QCheck.triple (arb_bigint ()) (arb_bigint ()) (arb_bigint ()))
      (fun (a, b', c) ->
         B.equal (B.mul a (B.add b' c)) (B.add (B.mul a b') (B.mul a c)));
    prop "divmod identity" (pair (arb_bigint ()) (arb_nonzero ()))
      (fun (a, b') ->
         let q, r = B.divmod a b' in
         B.equal a (B.add (B.mul q b') r)
         && B.compare (B.abs r) (B.abs b') < 0
         && (B.is_zero r || B.sign r = B.sign a));
    prop "knuth matches shift-subtract"
      (pair (arb_bigint ~digits:60 ()) (arb_nonzero ~digits:25 ()))
      (fun (a, b') ->
         let q1, r1 = B.divmod a b' in
         let q2, r2 = B.divmod_shift_subtract a b' in
         B.equal q1 q2 && B.equal r1 r2);
    prop "gcd divides both" (pair (arb_nonzero ()) (arb_nonzero ()))
      (fun (a, b') ->
         let g = B.gcd a b' in
         B.is_zero (B.rem a g) && B.is_zero (B.rem b' g));
    prop "gcd of multiples" (pair (arb_nonzero ~digits:15 ()) (arb_nonzero ~digits:15 ()))
      (fun (a, b') ->
         (* gcd (a*b) b = |b| * gcd(a, 1)-ish: at least |b| divides it. *)
         let g = B.gcd (B.mul a b') b' in
         B.is_zero (B.rem g b'));
    prop "lehmer gcd = euclid oracle"
      (pair (arb_bigint ~digits:120 ()) (arb_bigint ~digits:90 ()))
      (fun (a, b') ->
         (* Reference Euclid through divmod only — independent of the
            accelerated cofactor path under test. *)
         let rec euclid a b =
           if B.is_zero b then B.abs a else euclid b (B.rem a b)
         in
         B.equal (B.gcd a b') (euclid a b'));
    prop "gcd with planted common factor"
      (QCheck.triple (arb_nonzero ~digits:40 ()) (arb_nonzero ~digits:40 ())
         (arb_nonzero ~digits:40 ()))
      (fun (a, b', g) ->
         (* gcd(a*g, b*g) is a multiple of |g|. *)
         B.is_zero (B.rem (B.gcd (B.mul a g) (B.mul b' g)) g));
    prop "string round trip" (arb_bigint ~digits:80 ())
      (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "compare antisym" (pair (arb_bigint ()) (arb_bigint ()))
      (fun (a, b') -> B.compare a b' = - (B.compare b' a));
    prop "neg involutive" (arb_bigint ())
      (fun a -> B.equal a (B.neg (B.neg a)));
    prop "abs non-negative" (arb_bigint ())
      (fun a -> B.sign (B.abs a) >= 0);
    prop "int agreement" (pair QCheck.int QCheck.int)
      (fun (x, y) ->
         (* Avoid overflow: restrict to 30-bit operands for mul. *)
         let x = x land 0x3FFFFFFF and y = y land 0x3FFFFFFF in
         B.equal (B.of_int (x * y)) (B.mul (B.of_int x) (B.of_int y))
         && B.equal (B.of_int (x + y)) (B.add (B.of_int x) (B.of_int y)));
    prop "shift left is mul by 2^k"
      (pair (arb_bigint ~digits:20 ()) QCheck.(0 -- 200))
      (fun (a, k) ->
         B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)));
  ]

let suite =
  [ ( "bigint",
      [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
        Alcotest.test_case "min_int" `Quick test_min_int;
        Alcotest.test_case "string round trip" `Quick test_string_roundtrip;
        Alcotest.test_case "basic arithmetic" `Quick test_basic_arith;
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "shift" `Quick test_shift;
        Alcotest.test_case "num_bits" `Quick test_num_bits;
        Alcotest.test_case "division by zero" `Quick test_division_by_zero;
        Alcotest.test_case "to_float" `Quick test_to_float ]
      @ List.map qtest props ) ]
