lib/protocol/rounds.ml: Hashtbl List
