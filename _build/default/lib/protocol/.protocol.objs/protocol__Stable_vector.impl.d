lib/protocol/stable_vector.ml: Format List
