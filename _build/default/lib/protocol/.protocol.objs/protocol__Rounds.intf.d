lib/protocol/rounds.mli:
