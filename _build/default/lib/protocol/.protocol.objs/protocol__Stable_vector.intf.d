lib/protocol/stable_vector.mli: Format
