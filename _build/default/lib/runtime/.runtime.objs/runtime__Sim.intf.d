lib/runtime/sim.mli: Crash Scheduler
