lib/runtime/sim.ml: Array Crash Queue Rng Scheduler
