lib/runtime/crash.ml: Array Format List Rng
