lib/runtime/scheduler.ml: List Rng
