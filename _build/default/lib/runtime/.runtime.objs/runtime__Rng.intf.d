lib/runtime/rng.mli:
