lib/runtime/scheduler.mli: Rng
