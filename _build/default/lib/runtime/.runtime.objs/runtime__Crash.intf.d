lib/runtime/crash.mli: Format Rng
