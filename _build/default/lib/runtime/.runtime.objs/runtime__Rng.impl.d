lib/runtime/rng.ml: Array Int64
