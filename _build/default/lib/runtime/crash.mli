(** Crash plans for the "crash faults with incorrect inputs" model.

    A faulty process follows the algorithm faithfully until it crashes;
    a crash may land {e between the unit sends of a broadcast}, so some
    recipients receive the round's message and others never do — the
    exact behaviour the stable-vector primitive must tolerate. The
    budget counts individual point-to-point sends, which makes partial
    broadcasts expressible. *)

type plan =
  | Never                 (** the process never crashes *)
  | After_sends of int    (** crashes when it attempts send number
                              [k+1]; [After_sends 0] crashes before
                              sending anything *)

val pp : Format.formatter -> plan -> unit

val random_for :
  rng:Rng.t -> n:int -> faulty:int list -> max_sends:int -> plan array
(** A crash plan array for [n] processes: non-faulty processes never
    crash, each faulty process gets a uniformly random send budget in
    [\[0, max_sends\]]. *)
