(** Deterministic pseudo-random numbers (SplitMix64).

    The simulator must be a pure function of (configuration, seed):
    OCaml's [Random] is global and version-dependent, so executions are
    driven by this small explicit-state generator instead. *)

type t

val create : int -> t
(** A generator seeded deterministically. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates. *)

val split : t -> t
(** A fresh generator derived from (and advancing) [t]. *)
