(* SplitMix64 (Steele, Lea, Flood 2014). *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else begin
    (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
    let rec go () =
      let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
      let v = r mod bound in
      if r - v > max_int - bound then go () else v
    in
    go ()
  end

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split t = { state = next64 t }
