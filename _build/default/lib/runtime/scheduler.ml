type channel = { src : int; dst : int }

type t =
  | Random_uniform
  | Round_robin
  | Lag_sources of int list
  | Lifo_bias

let pick policy ~rng ~step ~candidates =
  match candidates with
  | [] -> invalid_arg "Scheduler.pick: no candidates"
  | _ ->
    (match policy with
     | Random_uniform ->
       fst (List.nth candidates (Rng.int rng (List.length candidates)))
     | Round_robin ->
       fst (List.nth candidates (step mod List.length candidates))
     | Lag_sources slow ->
       let fast =
         List.filter (fun (c, _) -> not (List.mem c.src slow)) candidates
       in
       let pool = if fast = [] then candidates else fast in
       fst (List.nth pool (Rng.int rng (List.length pool)))
     | Lifo_bias ->
       let latest =
         List.fold_left
           (fun acc (c, seq) ->
              match acc with
              | Some (_, best) when best >= seq -> acc
              | _ -> Some (c, seq))
           None candidates
       in
       (match latest with Some (c, _) -> c | None -> assert false))
