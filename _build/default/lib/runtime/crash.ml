type plan =
  | Never
  | After_sends of int

let pp fmt = function
  | Never -> Format.pp_print_string fmt "never"
  | After_sends k -> Format.fprintf fmt "after-%d-sends" k

let random_for ~rng ~n ~faulty ~max_sends =
  Array.init n (fun i ->
      if List.mem i faulty then After_sends (Rng.int rng (max_sends + 1))
      else Never)
