(** Adversarial delivery schedulers.

    The system model is fully asynchronous: at every step the adversary
    chooses any non-empty channel and delivers its head message (FIFO
    within a channel, reliable, exactly-once). A scheduler is that
    adversary. All schedulers here are fair in the limit — every sent
    message is eventually delivered — which is all the model demands. *)

type channel = { src : int; dst : int }

type t =
  | Random_uniform
      (** uniform choice among non-empty channels *)
  | Round_robin
      (** cycles deterministically over channels *)
  | Lag_sources of int list
      (** messages {e from} the given processes are starved: delivered
          only when nothing else is pending. This is the adversary of
          the paper's Theorem 3 proof, which makes up to [f] processes
          "so slow that the other fault-free processes must terminate
          before receiving any messages" from them. *)
  | Lifo_bias
      (** prefers the channel whose head message was sent last —
          an out-of-order-heavy schedule that stresses round buffering *)

val pick :
  t -> rng:Rng.t -> step:int -> candidates:(channel * int) list -> channel
(** Chooses one of the candidate channels; each candidate carries the
    send sequence number of its head message. [candidates] must be
    non-empty and is given in deterministic (src, dst) order. *)
