module Q = Numeric.Q
module Polytope = Geometry.Polytope

type matrix = Q.t array array

type t = {
  n : int;
  t_end : int;
  faulty : int list;
  f_sets : int list array;
  matrices : matrix array;
  v0 : Geometry.Polytope.t array;
}

let sent_round_of (result : Cc.result) i t =
  match List.assoc_opt t result.Cc.sent_round.(i) with
  | Some b -> b
  | None -> false

let build ~config ~faulty ~(result : Cc.result) =
  let n = config.Config.n in
  let t_end = result.Cc.t_end in
  (* F[t]: processes that sent no round-t message; F[t_end+1] := F[t_end]. *)
  let f_sets =
    Array.init (t_end + 2) (fun t ->
        let t = if t > t_end then t_end else t in
        List.init n Fun.id
        |> List.filter (fun i -> not (sent_round_of result i t)))
  in
  let h_at i t =
    match List.assoc_opt t result.Cc.history.(i) with
    | Some h -> h
    | None ->
      invalid_arg
        (Printf.sprintf "Analysis.build: process %d has no h[%d]" i t)
  in
  (* Initialization (I1)/(I2): crashed-before-round-1 processes get an
     arbitrary fault-free process's h[0]. *)
  let fault_free = List.filter (fun i -> not (List.mem i faulty)) (List.init n Fun.id) in
  let m0 =
    match fault_free with
    | m :: _ -> m
    | [] -> invalid_arg "Analysis.build: no fault-free process"
  in
  let v0 =
    Array.init n (fun i ->
        if List.mem i f_sets.(1) then h_at m0 0 else h_at i 0)
  in
  (* Transition matrices, Rules 1 and 2. *)
  let matrices =
    Array.init t_end (fun idx ->
        let t = idx + 1 in
        Array.init n (fun i ->
            if List.mem i f_sets.(t + 1) then
              Array.make n (Q.of_ints 1 n)
            else begin
              match List.assoc_opt t result.Cc.senders.(i) with
              | None ->
                invalid_arg
                  (Printf.sprintf
                     "Analysis.build: %d not in F[%d] but no MSG[%d]" i (t + 1) t)
              | Some senders ->
                let w = Q.of_ints 1 (List.length senders) in
                let row = Array.make n Q.zero in
                List.iter (fun k -> row.(k) <- w) senders;
                row
            end))
  in
  { n; t_end; faulty; f_sets; matrices; v0 }

let mat_mul a b =
  let n = Array.length a in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref Q.zero in
          for k = 0 to n - 1 do
            acc := Q.add !acc (Q.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let products t =
  let acc = ref None in
  Array.map
    (fun m ->
       let p = match !acc with None -> m | Some prev -> mat_mul m prev in
       acc := Some p;
       p)
    t.matrices

let is_row_stochastic m =
  Array.for_all
    (fun row ->
       Array.for_all (fun x -> Q.sign x >= 0) row
       && Q.equal Q.one (Array.fold_left Q.add Q.zero row))
    m

(* Row application of the paper's equation (5): M_i v as the linear
   combination L(v; M_i), skipping zero weights (a zero-weight polytope
   contributes the single point 0, which is what L prescribes, but
   skipping is equivalent and cheaper: weights still sum to 1 only over
   the support — the L definition with zero weights degenerates to the
   same set). *)
let apply_row row v =
  let terms =
    Array.to_list (Array.mapi (fun k w -> (w, v.(k))) row)
    |> List.filter (fun (w, _) -> not (Q.is_zero w))
  in
  Polytope.linear_combination terms

let apply m v = Array.map (fun row -> apply_row row v) m

let check_theorem1 t ~(result : Cc.result) =
  let ok = ref true in
  let v = ref t.v0 in
  Array.iteri
    (fun idx m ->
       let round = idx + 1 in
       v := apply m !v;
       for i = 0 to t.n - 1 do
         if not (List.mem i t.f_sets.(round + 1)) then begin
           match List.assoc_opt round result.Cc.history.(i) with
           | Some h -> if not (Polytope.equal h (!v).(i)) then ok := false
           | None -> ok := false
         end
       done)
    t.matrices;
  !ok

let check_claim1 t =
  let ps = products t in
  let ok = ref true in
  Array.iteri
    (fun idx p ->
       let round = idx + 1 in
       for j = 0 to t.n - 1 do
         if not (List.mem j t.f_sets.(round + 1)) then
           List.iter
             (fun k -> if not (Q.is_zero p.(j).(k)) then ok := false)
             t.f_sets.(1)
       done)
    ps;
  !ok

let ergodicity_gap t p =
  let fault_free =
    List.filter (fun i -> not (List.mem i t.faulty)) (List.init t.n Fun.id)
  in
  let gap = ref Q.zero in
  List.iter
    (fun i ->
       List.iter
         (fun j ->
            if i < j then
              for k = 0 to t.n - 1 do
                gap := Q.max !gap (Q.abs (Q.sub p.(i).(k) p.(j).(k)))
              done)
         fault_free)
    fault_free;
  !gap

let check_lemma3 t =
  let ratio = Q.of_ints (t.n - 1) t.n in
  let ps = products t in
  let ok = ref true in
  let bound = ref Q.one in
  Array.iter
    (fun p ->
       bound := Q.mul !bound ratio;
       if not (is_row_stochastic p) then ok := false;
       if Q.gt (ergodicity_gap t p) !bound then ok := false)
    ps;
  !ok
