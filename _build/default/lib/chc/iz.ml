module Q = Numeric.Q
module Combin = Numeric.Combin
module Polytope = Geometry.Polytope

let stable_views ~faulty ~(result : Cc.result) =
  let n = Array.length result.Cc.round0_views in
  List.init n Fun.id
  |> List.filter (fun i -> not (List.mem i faulty))
  |> List.map (fun i ->
      match result.Cc.round0_views.(i) with
      | Some view -> view
      | None ->
        invalid_arg
          (Printf.sprintf "Iz.compute: fault-free process %d has no view" i))

let compute ~config ~faulty ~result =
  let views = stable_views ~faulty ~result in
  (* Z: entries present in every fault-free view (keyed by origin — in
     the crash model an origin determines its value). *)
  match views with
  | [] -> invalid_arg "Iz.compute: no fault-free processes"
  | first :: rest ->
    let in_view origin view = List.mem_assoc origin view in
    let z =
      List.filter
        (fun (origin, _) -> List.for_all (in_view origin) rest)
        first
    in
    let x_z = List.map snd z in
    let { Config.d; f; _ } = config in
    let keep = List.length x_z - f in
    if keep < 1 then None
    else begin
      let hulls =
        List.map (Polytope.of_points ~dim:d) (Combin.subsets_of_size keep x_z)
      in
      Polytope.intersect hulls
    end

let contained_in_all_rounds ~config ~faulty ~result =
  match compute ~config ~faulty ~result with
  | None -> false
  | Some iz ->
    let ok = ref true in
    Array.iteri
      (fun i hist ->
         if not (List.mem i faulty) then
           List.iter
             (fun (_t, h) -> if not (Polytope.subset iz h) then ok := false)
             hist)
      result.Cc.history;
    !ok
