(** The optimality witness polytope [I_Z] of Section 6.

    From an execution's stable views: [Z = ∩_{i ∈ V−F} R_i],
    [X_Z = {x | (x,k,0) ∈ Z}], and

    {[ I_Z = ∩_{D ⊆ X_Z, |D| = |X_Z| − f} H(D) ]}

    Lemma 6 proves [I_Z ⊆ h_i[t]] for every fault-free process and
    round under Algorithm CC, and Theorem 3 shows no algorithm can
    guarantee more than [I_Z] — so checking that containment over an
    execution is an exact, machine-checkable optimality certificate.

    Under stable-vector round 0 the Containment property makes [Z] the
    minimum view, so [|X_Z| >= n - f] and [I_Z] is non-empty (Lemma 2).
    Under the naive round-0 ablation the views need not be comparable:
    [X_Z] can shrink below [(d+1)f + 1] and the intersection can be
    empty — {!compute} then returns [None], which the ablation
    experiment counts as a degraded optimality witness. *)

module Q = Numeric.Q

val compute :
  config:Config.t ->
  faulty:int list ->
  result:Cc.result ->
  Geometry.Polytope.t option
(** [I_Z] of an execution; [None] when the witness degenerates to the
    empty set (possible only without stable vector). Requires every
    fault-free process to have a round-0 view (true whenever the run
    completed). @raise Invalid_argument if a fault-free view is
    missing. *)

val contained_in_all_rounds :
  config:Config.t ->
  faulty:int list ->
  result:Cc.result ->
  bool
(** The Lemma 6 check: [I_Z] exists and [I_Z ⊆ h_i[t]] for every
    fault-free process [i] and every recorded round [t] (round 0
    included). Exact. *)
