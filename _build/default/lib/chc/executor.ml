module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Rng = Runtime.Rng
module Crash = Runtime.Crash

type spec = {
  config : Config.t;
  inputs : Vec.t array;
  crash : Crash.plan array;
  scheduler : Runtime.Scheduler.t;
  seed : int;
  round0 : Cc.round0_mode;
}

type report = {
  spec : spec;
  result : Cc.result;
  faulty : int list;
  correct_hull : Polytope.t;
  terminated : bool;
  valid : bool;
  valid_all_inputs : bool;
  agreement2 : Q.t option;
  agreement_ok : bool;
  iz : Polytope.t option;
  optimal : bool;
  min_output_volume : Q.t option;
  iz_volume : Q.t option;
}

let random_inputs ~config ~rng ?(grid = 1000) () =
  let { Config.n; d; lo; hi; _ } = config in
  let span = Q.sub hi lo in
  let coord () =
    Q.add lo (Q.mul span (Q.of_ints (Rng.int rng (grid + 1)) grid))
  in
  Array.init n (fun _ -> Array.init d (fun _ -> coord ()))

let default_spec ~config ~seed ?faulty ?(scheduler = Runtime.Scheduler.Random_uniform)
    ?(round0 = `Stable_vector) ?(max_budget = 60) () =
  let rng = Rng.create seed in
  let faulty =
    match faulty with
    | Some l -> l
    | None -> List.init config.Config.f Fun.id
  in
  let inputs = random_inputs ~config ~rng () in
  let crash =
    Crash.random_for ~rng ~n:config.Config.n ~faulty ~max_sends:max_budget
  in
  { config; inputs; crash; scheduler; seed; round0 }

let min_opt acc v =
  match acc with
  | None -> Some v
  | Some a -> Some (Q.min a v)

let run spec =
  let { config; inputs; crash; scheduler; seed; round0 } = spec in
  let result =
    Cc.execute ~round0 ~config ~inputs ~crash ~scheduler ~seed ()
  in
  let n = config.Config.n in
  let faulty = Cc.fault_set crash in
  let fault_free =
    List.filter (fun i -> not (List.mem i faulty)) (List.init n Fun.id)
  in
  let correct_inputs = List.map (fun i -> inputs.(i)) fault_free in
  let correct_hull = Polytope.of_points ~dim:config.Config.d correct_inputs in
  let ff_outputs =
    List.filter_map (fun i -> result.Cc.outputs.(i)) fault_free
  in
  let terminated = List.length ff_outputs = List.length fault_free in
  let valid =
    List.for_all (fun h -> Polytope.subset h correct_hull) ff_outputs
  in
  let all_hull = Polytope.of_points ~dim:config.Config.d (Array.to_list inputs) in
  let valid_all_inputs =
    List.for_all (fun h -> Polytope.subset h all_hull) ff_outputs
  in
  let agreement2 =
    let rec pairs acc = function
      | [] -> acc
      | h :: rest ->
        let acc =
          List.fold_left
            (fun acc h' -> Q.max acc (Polytope.hausdorff2 h h'))
            acc rest
        in
        pairs acc rest
    in
    match ff_outputs with
    | [] | [_] -> None
    | _ -> Some (pairs Q.zero ff_outputs)
  in
  let agreement_ok =
    match agreement2 with
    | None -> terminated
    | Some a2 -> Q.lt a2 (Q.square config.Config.eps)
  in
  let iz = Iz.compute ~config ~faulty ~result in
  let optimal = Iz.contained_in_all_rounds ~config ~faulty ~result in
  let min_output_volume =
    List.fold_left
      (fun acc h ->
         match Polytope.volume h with
         | Some v -> min_opt acc v
         | None -> acc)
      None ff_outputs
  in
  let iz_volume = Option.bind iz Polytope.volume in
  { spec; result; faulty; correct_hull; terminated; valid; valid_all_inputs;
    agreement2; agreement_ok; iz; optimal; min_output_volume; iz_volume }
