(** The termination round bound — equation (19) of the paper.

    [t_end] is the smallest positive integer [t] with

    {[ (1 - 1/n)^t * sqrt(d * n² * max(U², μ²)) < ε ]}

    computed exactly in rationals by comparing squares (both sides are
    positive, so squaring preserves the order). *)

module Q = Numeric.Q

val omega2_bound : Config.t -> Q.t
(** The square of the paper's coarse bound on Ω:
    [d · n² · max(U², μ²)]. *)

val t_end : Config.t -> int
(** Smallest positive [t] satisfying (19). Always at least 1. *)

val contraction_at : Config.t -> int -> float
(** [(1 - 1/n)^t] as a float — the per-round convergence envelope used
    by the plots in experiment E1. *)
