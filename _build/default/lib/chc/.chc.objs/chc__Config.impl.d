lib/chc/config.ml: Array Format Geometry Numeric
