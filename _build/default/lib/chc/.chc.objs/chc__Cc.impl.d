lib/chc/cc.ml: Array Bounds Config Geometry List Numeric Option Protocol Runtime
