lib/chc/bounds.ml: Config Float Numeric
