lib/chc/vector_consensus.ml: Array Bounds Cc Config Geometry List Numeric Option Protocol Runtime
