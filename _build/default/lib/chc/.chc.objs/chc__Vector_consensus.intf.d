lib/chc/vector_consensus.mli: Cc Config Geometry Numeric Runtime
