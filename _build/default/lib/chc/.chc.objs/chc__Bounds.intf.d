lib/chc/bounds.mli: Config Numeric
