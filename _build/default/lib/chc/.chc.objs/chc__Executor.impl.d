lib/chc/executor.ml: Array Cc Config Fun Geometry Iz List Numeric Option Runtime
