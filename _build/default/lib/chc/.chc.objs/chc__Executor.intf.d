lib/chc/executor.mli: Cc Config Geometry Numeric Runtime
