lib/chc/analysis.mli: Cc Config Geometry Numeric
