lib/chc/cc.mli: Config Geometry Numeric Runtime
