lib/chc/iz.mli: Cc Config Geometry Numeric
