lib/chc/optimize.mli: Cc Config Geometry Numeric
