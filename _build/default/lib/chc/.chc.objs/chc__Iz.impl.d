lib/chc/iz.ml: Array Cc Config Fun Geometry List Numeric Printf
