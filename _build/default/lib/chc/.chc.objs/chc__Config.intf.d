lib/chc/config.mli: Format Geometry Numeric
