lib/chc/optimize.ml: Array Cc Float Geometry List Numeric Option
