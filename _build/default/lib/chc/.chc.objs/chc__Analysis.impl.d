lib/chc/analysis.ml: Array Cc Config Fun Geometry List Numeric Printf
