(** Problem parameters for approximate convex hull consensus.

    Carries the system size [n], the fault bound [f], the input
    dimension [d], the agreement parameter [ε], and the global input
    range [\[lo, hi\]] that every input coordinate is promised to lie
    in (the paper's [μ] and [U], which the round bound (19) needs). *)

module Q = Numeric.Q

type t = private {
  n : int;
  f : int;
  d : int;
  eps : Q.t;
  lo : Q.t;
  hi : Q.t;
}

val make : n:int -> f:int -> d:int -> eps:Q.t -> lo:Q.t -> hi:Q.t -> t
(** @raise Invalid_argument unless [n >= (d+2)f + 1] (the paper's
    necessary-and-sufficient resilience bound), [f >= 0], [d >= 1],
    [eps > 0] and [lo <= hi]. *)

val validate_input : t -> Geometry.Vec.t -> unit
(** @raise Invalid_argument if a coordinate leaves [\[lo, hi\]] or the
    dimension is wrong. *)

val pp : Format.formatter -> t -> unit
