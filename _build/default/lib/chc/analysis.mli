(** Offline matrix-form analysis of a recorded execution — the
    machinery of Section 5 turned into machine-checkable certificates.

    From the execution trace we rebuild the transition matrices [M[t]]
    (Rules 1 and 2), the crash sets [F[t]], and the initial state
    vector [v[0]], and then verify, all in exact arithmetic:

    - {b Theorem 1}: [v[t] = M[t] v[t-1]] reproduces each live
      process's polytope [h_i[t]] {e exactly} (polytope equality);
    - {b row stochasticity} of every [M[t]] and product [P[t]];
    - {b Claim 1}: [P_jk[t] = 0] for live [j] and [k ∈ F[1]];
    - {b Lemma 3}: [max_k |P_ik[t] - P_jk[t]| <= (1 - 1/n)^t] for
      fault-free [i, j]. *)

module Q = Numeric.Q

type matrix = Q.t array array

type t = {
  n : int;
  t_end : int;
  faulty : int list;
  f_sets : int list array;
    (** [f_sets.(t)] is the paper's [F[t]] (processes that sent no
        round-[t] message), for [t = 0 .. t_end + 1] with
        [F[t_end + 1] = F[t_end]]. *)
  matrices : matrix array;
    (** [matrices.(t-1)] is [M[t]], for [t = 1 .. t_end]. *)
  v0 : Geometry.Polytope.t array;
    (** initial state vector per initialization rules (I1)/(I2). *)
}

val build : config:Config.t -> faulty:int list -> result:Cc.result -> t
(** @raise Invalid_argument when the execution is too incomplete to
    reconstruct (e.g. no fault-free process exists). *)

val products : t -> matrix array
(** [P[t] = M[t] ··· M[1]] for [t = 1 .. t_end] (backward convention,
    equation (4)). *)

val is_row_stochastic : matrix -> bool

val check_theorem1 : t -> result:Cc.result -> bool
(** Exact per-round polytope equality [v_i[t] = h_i[t]] for all
    [i ∈ V - F[t+1]]. *)

val check_claim1 : t -> bool

val ergodicity_gap : t -> matrix -> Q.t
(** [max_{i,j fault-free, k} |P_ik - P_jk|]. *)

val check_lemma3 : t -> bool
(** The gap of every [P[t]] is at most [(1 - 1/n)^t], exactly. *)
