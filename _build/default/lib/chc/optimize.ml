module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Distance = Geometry.Distance

type cost = {
  name : string;
  eval : Vec.t -> Q.t;
  minimize : Polytope.t -> Vec.t;
  lipschitz_hint : float;
}

(* Deterministic tie-break: smallest minimizing candidate in the
   lexicographic order. *)
let argmin_by eval candidates =
  match candidates with
  | [] -> invalid_arg "Optimize.argmin_by: no candidates"
  | first :: rest ->
    List.fold_left
      (fun (bx, bv) x ->
         let v = eval x in
         let c = Q.compare v bv in
         if c < 0 || (c = 0 && Vec.compare x bx < 0) then (x, v) else (bx, bv))
      (first, eval first) rest
    |> fst

let linear ~name a =
  { name;
    eval = (fun x -> Vec.dot a x);
    minimize = (fun p -> argmin_by (Vec.dot a) (Polytope.vertices p));
    lipschitz_hint = sqrt (Q.to_float (Vec.norm2 a)) }

let quadratic_distance ~name target ~lipschitz_hint =
  { name;
    eval = (fun x -> Vec.dist2 target x);
    minimize =
      (fun p ->
         let (_, proj) =
           Distance.project_point_hull ~dim:(Polytope.dim p) target
             (Polytope.vertices p)
         in
         proj);
    lipschitz_hint }

let theorem4_eval x =
  let v = x.(0) in
  if Q.lt v Q.zero || Q.gt v Q.one then Q.of_int 3
  else begin
    (* 4 - (2v - 1)² *)
    Q.sub (Q.of_int 4) (Q.square (Q.sub (Q.mul Q.two v) Q.one))
  end

let theorem4_cost =
  { name = "theorem4";
    eval = theorem4_eval;
    minimize =
      (fun p ->
         if Polytope.dim p <> 1 then
           invalid_arg "theorem4_cost: 1-dimensional only"
         else begin
           let (lo, hi) = (Polytope.bounding_box p).(0) in
           let inside c = Q.leq lo c && Q.leq c hi in
           let candidates =
             [Vec.make [lo]; Vec.make [hi]]
             @ (if inside Q.zero then [Vec.make [Q.zero]] else [])
             @ (if inside Q.one then [Vec.make [Q.one]] else [])
           in
           argmin_by theorem4_eval candidates
         end);
    (* |dc/dx| = |4(2x-1)| <= 4 on [0,1]; the function is
       discontinuous at the box edge only in a measure-zero sense —
       within [0,1] inputs the bound 4 is what matters. *)
    lipschitz_hint = 4.0 }

type report = {
  cost_name : string;
  outputs : (Vec.t * Q.t) option array;
  beta_spread : Q.t option;
}

let two_step ~config ~faulty ~(result : Cc.result) ~cost =
  ignore config;
  let outputs =
    Array.map
      (Option.map (fun h ->
           let y = cost.minimize h in
           (y, cost.eval y)))
      result.Cc.outputs
  in
  let fault_free_values =
    Array.to_list outputs
    |> List.mapi (fun i o -> (i, o))
    |> List.filter_map (fun (i, o) ->
        if List.mem i faulty then None else Option.map snd o)
  in
  let beta_spread =
    match fault_free_values with
    | [] -> None
    | first :: _ ->
      let lo = List.fold_left Q.min first fault_free_values in
      let hi = List.fold_left Q.max first fault_free_values in
      Some (Q.sub hi lo)
  in
  { cost_name = cost.name; outputs; beta_spread }

let eps_for_beta ~beta ~lipschitz_hint =
  if Q.sign beta <= 0 then invalid_arg "Optimize.eps_for_beta: beta <= 0";
  (* Conservative rational upper bound for b, then ε = β / b. *)
  let b_ceil = Q.of_int (int_of_float (Float.ceil lipschitz_hint) + 1) in
  Q.div beta b_ceil
