module Q = Numeric.Q

type t = {
  n : int;
  f : int;
  d : int;
  eps : Q.t;
  lo : Q.t;
  hi : Q.t;
}

let make ~n ~f ~d ~eps ~lo ~hi =
  if d < 1 then invalid_arg "Config.make: d must be >= 1";
  if f < 0 then invalid_arg "Config.make: f must be >= 0";
  if n < ((d + 2) * f) + 1 then
    invalid_arg "Config.make: resilience requires n >= (d+2)f + 1";
  if Q.sign eps <= 0 then invalid_arg "Config.make: eps must be positive";
  if Q.gt lo hi then invalid_arg "Config.make: lo must be <= hi";
  { n; f; d; eps; lo; hi }

let validate_input t x =
  if Geometry.Vec.dim x <> t.d then invalid_arg "Config.validate_input: dimension";
  Array.iter
    (fun c ->
       if Q.lt c t.lo || Q.gt c t.hi then
         invalid_arg "Config.validate_input: coordinate out of range")
    x

let pp fmt t =
  Format.fprintf fmt "{n=%d; f=%d; d=%d; eps=%a; range=[%a,%a]}"
    t.n t.f t.d Q.pp t.eps Q.pp t.lo Q.pp t.hi
