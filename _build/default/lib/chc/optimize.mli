(** Convex hull function optimization — Section 7 of the paper.

    The 2-step algorithm: run convex hull consensus with parameter
    [ε = β / b] (where [b] is the cost's Lipschitz constant), then
    output [y_i = argmin_{x ∈ h_i} c(x)]. This satisfies Validity,
    Termination and Weak β-Optimality, but {e not} ε-agreement on the
    points — Theorem 4 proves that no algorithm achieves all four
    properties, and {!theorem4_cost} is the witness cost function from
    its proof. *)

module Q = Numeric.Q

type cost = {
  name : string;
  eval : Geometry.Vec.t -> Q.t;
  (** exact cost evaluation *)
  minimize : Geometry.Polytope.t -> Geometry.Vec.t;
  (** a minimizer of the cost over a polytope; ties broken
      deterministically but otherwise arbitrarily (as in the paper's
      Step 2) *)
  lipschitz_hint : float;
  (** an upper bound on the Lipschitz constant [b] on the input box —
      used to pick [ε = β / b] *)
}

val linear : name:string -> Geometry.Vec.t -> cost
(** [c(x) = a·x]; minimized exactly by a vertex scan. *)

val quadratic_distance : name:string -> Geometry.Vec.t -> lipschitz_hint:float -> cost
(** [c(x) = |x - target|²]; minimized exactly by projection of the
    target onto the polytope ({!Geometry.Distance.project_point_hull}).
    The hint should bound [2·sup|x - target|] over the input box. *)

val theorem4_cost : cost
(** The 1-d cost of the impossibility proof:
    [c(x) = 4 - (2x-1)²] on [\[0,1\]] and [3] elsewhere. Its minimum
    over an interval is attained at 0, 1, or an interval endpoint;
    ties break toward the smaller abscissa. With binary inputs it
    forces optimizing processes to pick 0 or 1 — so ε-agreement would
    imply exact consensus, contradicting FLP. *)

type report = {
  cost_name : string;
  outputs : (Geometry.Vec.t * Q.t) option array;
  (** per process: (y_i, c(y_i)); [None] for processes that crashed *)
  beta_spread : Q.t option;
  (** max |c(y_i) - c(y_j)| over fault-free pairs, when any decided *)
}

val two_step :
  config:Config.t ->
  faulty:int list ->
  result:Cc.result ->
  cost:cost ->
  report
(** Step 2 applied to a finished CC execution (Step 1). *)

val eps_for_beta : beta:Q.t -> lipschitz_hint:float -> Q.t
(** [ε = β / b] (conservatively rounded down), the Step-1 parameter
    that makes the weak β-optimality spread bound hold. *)
