module Q = Numeric.Q

let omega2_bound (c : Config.t) =
  let m2 = Q.max (Q.square c.Config.lo) (Q.square c.Config.hi) in
  Q.mul (Q.of_int (c.Config.d * c.Config.n * c.Config.n)) m2

let t_end (c : Config.t) =
  let ratio2 =
    (* (1 - 1/n)² *)
    Q.square (Q.of_ints (c.Config.n - 1) c.Config.n)
  in
  let eps2 = Q.square c.Config.eps in
  let rec go t lhs2 =
    (* lhs2 = (1 - 1/n)^{2t} · Ω²_bound *)
    if t >= 1 && Q.lt lhs2 eps2 then t
    else go (t + 1) (Q.mul lhs2 ratio2)
  in
  go 0 (omega2_bound c)

let contraction_at (c : Config.t) t =
  Float.pow (1.0 -. (1.0 /. float_of_int c.Config.n)) (float_of_int t)
