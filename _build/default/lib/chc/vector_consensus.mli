(** Approximate vector (multidimensional) consensus — both the paper's
    reduction from convex hull consensus ("a solution for convex hull
    consensus trivially yields a solution for vector consensus") and a
    standalone point-valued baseline used by experiment E5.

    The baseline, Algorithm VC, runs the same round structure as
    Algorithm CC but carries a single point: round 0 computes the
    round-0 polytope and immediately collapses it to its Steiner point;
    rounds [1 .. t_end] average the first [n-f] points heard. Its
    correctness argument is the scalar specialization of Section 5
    (row-stochastic products contract each coordinate by the same
    [(1-1/n)^t] envelope), so the same [t_end] applies. Its decision
    carries strictly less information than CC's polytope — quantified
    by the output-volume comparison in E5. *)

module Q = Numeric.Q

val derived_outputs : Cc.result -> Geometry.Vec.t option array
(** Point decisions extracted from a CC run: the Steiner point of each
    output polytope. Exactly inside the polytope (hence valid); the
    d=1/d=2 selections are Hausdorff-Lipschitz (approximately for d=2,
    see {!Geometry.Polytope.steiner_point}), so ε-agreement of the
    polytopes transfers to the points up to the Lipschitz factor. *)

type result = {
  t_end : int;
  outputs : Geometry.Vec.t option array;
  crashed : bool array;
  metrics : Runtime.Sim.metrics;
}

val execute_baseline :
  config:Config.t ->
  inputs:Geometry.Vec.t array ->
  crash:Runtime.Crash.plan array ->
  scheduler:Runtime.Scheduler.t ->
  seed:int ->
  unit ->
  result
(** One deterministic execution of the baseline Algorithm VC. *)
