(** Convex polytopes — the state space of Algorithm CC.

    A value is a non-empty, bounded convex polytope in d-dimensional
    Euclidean space, held in a canonical V-representation:

    - d = 1: one or two vertices, increasing;
    - d = 2: the {!Hull2d} canonical form (CCW cycle from the
      lexicographically smallest vertex);
    - d ≥ 3: the lexicographically sorted list of extreme points.

    Canonical forms are unique per point set, so structural equality of
    vertex lists decides set equality. Emptiness is pushed to the type
    level: operations that can yield the empty set return an [option].

    All set-level operations (membership, inclusion, equality,
    intersection, the paper's linear-combination operator [L]) are
    exact over rationals. *)

module Q = Numeric.Q

type t

(** {1 Construction} *)

val of_points : dim:int -> Vec.t list -> t
(** Convex hull of a non-empty point multiset.
    @raise Invalid_argument on an empty list or dimension mismatch. *)

val singleton : Vec.t -> t

val vertices : t -> Vec.t list
(** Canonical vertex list (see above). *)

val dim : t -> int

(** {1 Predicates} *)

val equal : t -> t -> bool
val contains : t -> Vec.t -> bool
val subset : t -> t -> bool
(** [subset p q]: is [p ⊆ q]? Exact. *)

val is_point : t -> bool

(** {1 The paper's operators} *)

val linear_combination : (Q.t * t) list -> t
(** The paper's function [L]: the set
    [{Σ ci·pi | pi ∈ hi}] for weights [ci ≥ 0, Σci = 1] — equivalently
    the Minkowski sum of the scaled polytopes.
    @raise Invalid_argument if weights are negative or do not sum
    to 1, or on the empty list. *)

val average : t list -> t
(** [linear_combination] with identical weights [1/ν] — line 14 of
    Algorithm CC. *)

val intersect : t list -> t option
(** Intersection of a non-empty list of polytopes; [None] when empty.
    This implements line 5 of Algorithm CC (jointly with
    {!Numeric.Combin.subsets_of_size}). *)

(** {1 Measures} *)

val hausdorff2 : t -> t -> Q.t
(** Exact squared Hausdorff distance. *)

val hausdorff : t -> t -> float

val volume : t -> Q.t option
(** Exact d-volume for d ≤ 3 ([Some]), [None] for d ≥ 4. Degenerate
    (lower-dimensional) polytopes have volume 0. *)

val diameter2 : t -> Q.t
(** Exact squared diameter (max vertex-pair distance). *)

(** {1 Geometry helpers} *)

val translate : Vec.t -> t -> t
val support : t -> Vec.t -> Q.t * Vec.t
(** [support p dir] is the maximum of [dir·x] over [p] and a vertex
    attaining it. *)

val bounding_box : t -> (Q.t * Q.t) array
(** Per-coordinate [(min, max)]. *)

val centroid : t -> Vec.t
(** Barycenter of the canonical vertex list. Exact and contained in
    the polytope; {b not} Lipschitz w.r.t. Hausdorff distance — use
    {!steiner_point} for the vector-consensus reduction. *)

val steiner_point : t -> Vec.t
(** A deterministic interior point that is (approximately, for d = 2)
    Lipschitz w.r.t. the Hausdorff distance: the exact midpoint for
    d = 1; for d = 2 the Steiner point [Σ (exterior angle / 2π)·vᵢ]
    with angle weights computed in floats and then rationalized (the
    result is an exact convex combination of vertices, hence exactly
    inside); the vertex centroid for d ≥ 3. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
