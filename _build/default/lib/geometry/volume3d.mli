(** Exact volume of 3-d convex polytopes (divergence theorem over an
    outward-oriented facet triangulation). *)

module Q = Numeric.Q

val volume : Vec.t list -> Q.t
(** Volume of the convex hull of the given points; [0] for
    lower-dimensional hulls. @raise Invalid_argument unless the points
    are 3-dimensional. *)
