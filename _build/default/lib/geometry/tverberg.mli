(** Tverberg partitions (exhaustive search).

    Tverberg's theorem: any multiset of at least [(d+1)f + 1] points in
    d-space can be partitioned into [f+1] non-empty blocks whose convex
    hulls share a common point. The paper's Lemma 2 uses exactly this
    to show that the round-0 polytope [h_i(0)] is non-empty. This
    module finds a witness partition by exhaustive search — exponential,
    intended for the test suite's small instances. *)

val partition : dim:int -> parts:int -> Vec.t list -> Vec.t list list option
(** [partition ~dim ~parts pts] is a partition of [pts] into [parts]
    non-empty blocks with intersecting hulls, if one exists. *)

val common_point : dim:int -> Vec.t list list -> Polytope.t option
(** The (polytope of) common points of the blocks' hulls. *)
