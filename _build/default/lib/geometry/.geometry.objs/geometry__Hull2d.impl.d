lib/geometry/hull2d.ml: Array List Numeric Vec
