lib/geometry/lp.ml: Array List Numeric Vec
