lib/geometry/tverberg.mli: Polytope Vec
