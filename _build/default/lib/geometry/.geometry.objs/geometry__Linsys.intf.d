lib/geometry/linsys.mli: Numeric
