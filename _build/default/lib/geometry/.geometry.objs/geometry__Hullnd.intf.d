lib/geometry/hullnd.mli: Numeric Vec
