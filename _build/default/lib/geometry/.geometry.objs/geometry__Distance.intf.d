lib/geometry/distance.mli: Numeric Vec
