lib/geometry/tverberg.ml: List Numeric Polytope
