lib/geometry/volume3d.ml: Array Hull2d Hullnd List Numeric Vec
