lib/geometry/polytope.mli: Format Numeric Vec
