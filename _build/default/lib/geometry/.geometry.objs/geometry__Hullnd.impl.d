lib/geometry/hullnd.ml: Array Fun Linsys List Lp Numeric Vec
