lib/geometry/vec.mli: Format Numeric
