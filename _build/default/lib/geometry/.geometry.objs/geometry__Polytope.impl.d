lib/geometry/polytope.ml: Array Distance Float Format Hull2d Hullnd List Lp Numeric Printf String Vec Volume3d
