lib/geometry/lp.mli: Numeric Vec
