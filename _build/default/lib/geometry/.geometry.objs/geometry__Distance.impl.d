lib/geometry/distance.ml: Array Hull2d Hullnd Linsys List Lp Numeric Stdlib Vec
