lib/geometry/hull2d.mli: Numeric Vec
