lib/geometry/volume3d.mli: Numeric Vec
