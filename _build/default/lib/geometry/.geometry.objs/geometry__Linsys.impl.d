lib/geometry/linsys.ml: Array Fun List Numeric
