lib/geometry/vec.ml: Array Format List Numeric Printf Stdlib String
