module Q = Numeric.Q
module Combin = Numeric.Combin

type hrep = {
  dim : int;
  eqs : (Vec.t * Q.t) list;
  ineqs : (Vec.t * Q.t) list;
}

(* Canonical form of a constraint row: scaled so the first non-zero
   coefficient has absolute value 1. Positive scaling preserves the
   inequality direction. *)
let normalize_ineq (a, b) =
  let d = Vec.dim a in
  let rec first i = if i = d then None
    else if Q.is_zero a.(i) then first (i + 1) else Some a.(i)
  in
  match first 0 with
  | None -> (a, b) (* trivial constraint 0 <= b; kept as-is *)
  | Some lead ->
    let s = Q.inv (Q.abs lead) in
    (Vec.scale s a, Q.mul s b)

(* Equalities additionally fix the sign of the leading coefficient. *)
let normalize_eq (a, b) =
  let d = Vec.dim a in
  let rec first i = if i = d then None
    else if Q.is_zero a.(i) then first (i + 1) else Some a.(i)
  in
  match first 0 with
  | None -> (a, b)
  | Some lead ->
    let s = Q.inv lead in
    (Vec.scale s a, Q.mul s b)

let compare_constraint (a1, b1) (a2, b2) =
  let c = Vec.compare a1 a2 in
  if c <> 0 then c else Q.compare b1 b2

let dedupe_constraints cs =
  let sorted = List.sort compare_constraint cs in
  let rec go = function
    | x :: (y :: _ as rest) ->
      if compare_constraint x y = 0 then go rest else x :: go rest
    | short -> short
  in
  go sorted

let dedupe_points pts =
  let sorted = List.sort Vec.compare pts in
  let rec go = function
    | x :: (y :: _ as rest) ->
      if Vec.equal x y then go rest else x :: go rest
    | short -> short
  in
  go sorted

let standard_basis d = List.init d (fun i ->
    Array.init d (fun j -> if i = j then Q.one else Q.zero))

(* Facets of a FULL-DIMENSIONAL point set in k-space: brute force over
   k-subsets defining candidate hyperplanes. *)
let enumerate_facets ~dim:k pts =
  let pts = dedupe_points pts in
  if k = 1 then begin
    let xs = List.map (fun p -> p.(0)) pts in
    let lo = List.fold_left Q.min (List.hd xs) xs in
    let hi = List.fold_left Q.max (List.hd xs) xs in
    [ (Vec.make [Q.one], hi); (Vec.make [Q.minus_one], Q.neg lo) ]
  end
  else begin
    let candidates = Combin.subsets_of_size k pts in
    let facet_of subset =
      match subset with
      | [] -> []
      | s0 :: rest ->
        let rows = Array.of_list (List.map (fun s -> Vec.sub s s0) rest) in
        (match Linsys.nullspace rows with
         | [a] ->
           let b = Vec.dot a s0 in
           let signs = List.map (fun p -> Q.sign (Q.sub (Vec.dot a p) b)) pts in
           let has_pos = List.exists (fun s -> s > 0) signs in
           let has_neg = List.exists (fun s -> s < 0) signs in
           if has_pos && has_neg then []
           else if has_pos then [normalize_ineq (Vec.neg a, Q.neg b)]
           else [normalize_ineq (a, b)]
         | _ -> [] (* affinely dependent subset, or not a hyperplane *))
    in
    dedupe_constraints (List.concat_map facet_of candidates)
  end

let of_points ~dim pts =
  match dedupe_points pts with
  | [] -> invalid_arg "Hullnd.of_points: empty point set"
  | [p0] ->
    let eqs =
      List.map (fun e -> normalize_eq (e, Vec.dot e p0)) (standard_basis dim)
    in
    { dim; eqs; ineqs = [] }
  | (p0 :: _) as pts ->
    let dirs = List.filter_map
        (fun p -> let v = Vec.sub p p0 in
          if Vec.equal v (Vec.zero dim) then None else Some v)
        pts
    in
    let idx = Linsys.independent_rows dirs in
    let basis = List.map (List.nth dirs) idx in
    let k = List.length basis in
    assert (k >= 1);
    let normals =
      if k = dim then []
      else Linsys.nullspace (Array.of_list basis)
    in
    let eqs = List.map (fun n -> normalize_eq (n, Vec.dot n p0)) normals in
    if k = dim then
      { dim; eqs = []; ineqs = enumerate_facets ~dim pts }
    else begin
      (* Work in subspace coordinates x = p0 + B y, B the d×k matrix
         with the basis directions as columns. *)
      let bmat = Array.init dim (fun i ->
          Array.of_list (List.map (fun b -> b.(i)) basis))
      in
      let to_y p =
        match Linsys.solve_any bmat (Vec.sub p p0) with
        | Some y -> y
        | None -> assert false (* p lies in the affine hull by construction *)
      in
      let ypts = List.map to_y pts in
      let facets_y = enumerate_facets ~dim:k ypts in
      (* Lift a subspace inequality a·y <= b back to ambient space:
         pick k independent rows R of B, so y = B_R⁻¹ (x_R − p0_R);
         then w solving B_Rᵀ w = a gives the ambient functional. *)
      let brows = Array.to_list bmat in
      let rsel = Linsys.independent_rows brows in
      assert (List.length rsel = k);
      let bsub = Array.of_list (List.map (fun i -> bmat.(i)) rsel) in
      let bsub_t = Array.init k (fun i -> Array.init k (fun j -> bsub.(j).(i))) in
      let lift (a, b) =
        match Linsys.solve bsub_t a with
        | None -> assert false (* B_Rᵀ is invertible *)
        | Some w ->
          let n = Vec.zero dim in
          let n = Array.copy n in
          List.iteri (fun i r -> n.(r) <- w.(i)) rsel;
          let offset =
            List.fold_left
              (fun acc (wi, r) -> Q.add acc (Q.mul wi p0.(r)))
              b
              (List.combine (Array.to_list w) rsel)
          in
          normalize_ineq (n, offset)
      in
      { dim; eqs; ineqs = List.map lift facets_y }
    end

let combine hreps =
  match hreps with
  | [] -> invalid_arg "Hullnd.combine: empty list"
  | { dim; _ } :: _ ->
    List.iter (fun h -> if h.dim <> dim then
                  invalid_arg "Hullnd.combine: dimension mismatch") hreps;
    { dim;
      eqs = dedupe_constraints (List.concat_map (fun h -> h.eqs) hreps);
      ineqs = dedupe_constraints (List.concat_map (fun h -> h.ineqs) hreps) }

let satisfies_ineqs ineqs x =
  List.for_all (fun (a, b) -> Q.leq (Vec.dot a x) b) ineqs

let satisfies_eqs eqs x =
  List.for_all (fun (a, b) -> Q.equal (Vec.dot a x) b) eqs

let mem_hrep h x = satisfies_eqs h.eqs x && satisfies_ineqs h.ineqs x

let vertices h =
  let d = h.dim in
  let eq_rows = List.map fst h.eqs and eq_rhs = List.map snd h.eqs in
  let r = if h.eqs = [] then 0 else Linsys.rank (Array.of_list eq_rows) in
  let need = d - r in
  let candidates =
    if need = 0 then begin
      match Linsys.solve_unique (Array.of_list eq_rows) (Array.of_list eq_rhs) with
      | Some x -> [x]
      | None -> []
    end
    else
      Combin.subsets_of_size need h.ineqs
      |> List.filter_map (fun subset ->
          let rows = Array.of_list (eq_rows @ List.map fst subset) in
          let rhs = Array.of_list (eq_rhs @ List.map snd subset) in
          Linsys.solve_unique rows rhs)
  in
  dedupe_points
    (List.filter
       (fun x -> satisfies_eqs h.eqs x && satisfies_ineqs h.ineqs x)
       candidates)

(* Support directions for the interior-point pre-filter: the full
   {-1,0,1}^d grid in low dimension, axes and diagonals otherwise. *)
let filter_directions d =
  if d <= 3 then begin
    let rec grid k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun tail -> List.map (fun c -> c :: tail) [-1; 0; 1])
          (grid (k - 1))
    in
    grid d
    |> List.filter (fun v -> List.exists (fun c -> c <> 0) v)
    |> List.map Vec.of_ints
  end
  else begin
    let axis i s = Array.init d (fun j -> if i = j then Q.of_int s else Q.zero) in
    let axes = List.concat_map (fun i -> [axis i 1; axis i (-1)]) (List.init d Fun.id) in
    let ones s = Array.make d (Q.of_int s) in
    ones 1 :: ones (-1) :: axes
  end

(* Candidate points strictly inside the hull of the support "core"
   (the per-direction maximizers) cannot be extreme; discarding them
   first turns the quadratic LP-pruning pass into one over a small
   boundary set. Soundness: a point in the relative interior of
   conv(core) is a convex combination of other points of the input. *)
let support_filter ~dim pts =
  match pts with
  | [] | [_] | [_; _] -> pts
  | p0 :: _ ->
    let argmax dir =
      List.fold_left
        (fun best p -> if Q.gt (Vec.dot dir p) (Vec.dot dir best) then p else best)
        p0 pts
    in
    let core = dedupe_points (List.map argmax (filter_directions dim)) in
    if List.length core < 2 then pts
    else begin
      let h = of_points ~dim core in
      let strictly_inside p =
        satisfies_eqs h.eqs p
        && List.for_all (fun (a, b) -> Q.lt (Vec.dot a p) b) h.ineqs
      in
      List.filter (fun p -> not (strictly_inside p)) pts
    end

let extreme_points pts =
  let pts = dedupe_points pts in
  match pts with
  | [] | [_] -> pts
  | p0 :: _ ->
    let dim = Vec.dim p0 in
    let pts = support_filter ~dim pts in
    (* One LP per surviving candidate. Confirmed-interior points are
       dropped from the column set of subsequent tests — sound, because
       a dropped point lies in the hull of the remaining ones — which
       shrinks the tableaus as the scan proceeds. *)
    let rec prune confirmed = function
      | [] -> List.rev confirmed
      | p :: todo ->
        let others = List.rev_append confirmed todo in
        if Lp.in_convex_hull others p then prune confirmed todo
        else prune (p :: confirmed) todo
    in
    dedupe_points (prune [] pts)
