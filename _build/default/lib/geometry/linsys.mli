(** Exact rational linear algebra (dense, small systems).

    Everything here runs Gauss–Jordan elimination over {!Numeric.Q};
    sizes are tiny (at most a few dozen rows) so no fraction-free or
    sparse tricks are needed. Matrices are arrays of row arrays and are
    never mutated by these functions. *)

module Q = Numeric.Q

type matrix = Q.t array array

val rref : matrix -> matrix * (int * int) list
(** Reduced row-echelon form and the list of (row, column) pivot
    positions, in row order. *)

val rank : matrix -> int

val solve : matrix -> Q.t array -> Q.t array option
(** [solve a b] solves the square system [a x = b]. [None] when [a] is
    singular. @raise Invalid_argument if [a] is not square or sizes
    mismatch. *)

val solve_any : matrix -> Q.t array -> Q.t array option
(** Any one solution of the (possibly rectangular) system [a x = b],
    with free variables set to zero; [None] when inconsistent. *)

val solve_unique : matrix -> Q.t array -> Q.t array option
(** The solution of the (possibly rectangular) system [a x = b] when it
    exists and is unique; [None] when inconsistent or underdetermined. *)

val nullspace : matrix -> Q.t array list
(** A basis of [{x | a x = 0}]. *)

val independent_rows : Q.t array list -> int list
(** Indices of a maximal linearly independent subset of the given row
    vectors, in increasing order. *)

val det : matrix -> Q.t
(** Determinant of a square matrix. *)

val mat_mul : matrix -> matrix -> matrix
val mat_vec : matrix -> Q.t array -> Q.t array
