(** Exact planar convex-polytope operations.

    A polytope is represented by its canonical vertex list:
    - [[]] — empty,
    - [[p]] — a single point,
    - [[a; b]] with [a < b] lexicographically — a segment,
    - [v0; v1; …] — a strictly convex polygon in counter-clockwise
      order starting from the lexicographically smallest vertex.

    All predicates and constructions are exact over rationals. *)

module Q = Numeric.Q

val cross : Vec.t -> Vec.t -> Vec.t -> Q.t
(** [cross o a b] is the z-component of [(a-o) × (b-o)]: positive for a
    counter-clockwise turn. *)

val hull : Vec.t list -> Vec.t list
(** Canonical convex hull (Andrew's monotone chain); collinear
    non-extreme points are dropped. *)

val is_canonical : Vec.t list -> bool
(** Whether a vertex list is in the canonical form described above. *)

val area2 : Vec.t list -> Q.t
(** Twice the polygon area (shoelace); [0] for points and segments. *)

val contains : Vec.t list -> Vec.t -> bool
(** Exact membership of a point in the polytope. *)

val clip : Vec.t list -> normal:Vec.t -> offset:Q.t -> Vec.t list
(** [clip poly ~normal ~offset] intersects with the halfplane
    [{x | normal·x <= offset}]; result is canonical (possibly empty). *)

val intersect : Vec.t list -> Vec.t list -> Vec.t list
(** Intersection of two convex polytopes, canonical. *)

val minkowski_sum : Vec.t list -> Vec.t list -> Vec.t list
(** Minkowski sum; uses the linear-time convex edge-merge when both
    operands are genuine polygons, pairwise sums otherwise. *)

val halfplanes : Vec.t list -> (Vec.t * Q.t) list
(** A complete H-representation [{x | n·x <= c}] of the polytope: edge
    halfplanes for a polygon; line + end-cap constraints for a segment;
    coordinate box constraints for a point.
    @raise Invalid_argument on the empty polytope. *)
