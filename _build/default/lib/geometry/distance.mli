(** Exact Euclidean and Hausdorff distances between convex polytopes.

    Squared distances are computed exactly over rationals; callers take
    a float square root only at the reporting boundary. Exactness lets
    the ε-agreement experiments *certify* [d_H < ε] by comparing
    [d_H² < ε²] in rationals.

    The directed Hausdorff distance from a convex polytope is attained
    at a vertex (the point-to-convex-set distance is convex, and a
    convex function attains its maximum over a polytope at a vertex),
    so both directions reduce to point-to-polytope queries. *)

module Q = Numeric.Q

val dist2_point_segment : Vec.t -> Vec.t -> Vec.t -> Q.t
(** [dist2_point_segment p a b]: exact squared distance from [p] to the
    segment [ab]. *)

val dist2_point_hull : dim:int -> Vec.t -> Vec.t list -> Q.t
(** Exact squared distance from a point to the convex hull of a
    non-empty point list. 2-d uses edge projections on the canonical
    polygon; other dimensions enumerate vertex subsets and project by
    exact least squares. @raise Invalid_argument on the empty list. *)

val project_point_hull : dim:int -> Vec.t -> Vec.t list -> Q.t * Vec.t
(** Exact nearest point of the hull to the query, with its squared
    distance. The projection onto a convex set is unique, so the result
    is deterministic. @raise Invalid_argument on the empty list. *)

val hausdorff2 : dim:int -> Vec.t list -> Vec.t list -> Q.t
(** Exact squared Hausdorff distance between the hulls of two
    non-empty point lists. @raise Invalid_argument if either is empty. *)

val hausdorff : dim:int -> Vec.t list -> Vec.t list -> float
(** [sqrt] of {!hausdorff2} as a float. *)
