module Combin = Numeric.Combin

let common_point ~dim blocks =
  let hulls = List.map (fun b -> Polytope.of_points ~dim b) blocks in
  Polytope.intersect hulls

let partition ~dim ~parts pts =
  let candidates = Combin.partitions_into parts pts in
  List.find_opt
    (fun blocks -> common_point ~dim blocks <> None)
    candidates
