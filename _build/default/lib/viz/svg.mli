(** SVG rendering of 2-d executions.

    Draws, on one canvas: every input (faulty ones crossed out), the
    convex hull of the correct inputs, each process's per-round
    polytope with rounds fading from light to saturated, the optimality
    witness [I_Z], and the decided polytopes. Purely textual — no
    graphics dependencies — and only for [d = 2] (the dimension all
    visual intuition about the algorithm lives in). *)

val render : report:Chc.Executor.report -> string
(** A complete standalone SVG document.
    @raise Invalid_argument unless the execution is 2-dimensional. *)

val render_to_file : path:string -> report:Chc.Executor.report -> unit
