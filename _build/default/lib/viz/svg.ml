module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope

let canvas = 640.0
let margin = 40.0

type transform = { sx : float; sy : float; ox : float; oy : float }

(* Map problem coordinates to canvas pixels, y flipped so the plot
   reads like mathematics. *)
let make_transform ~(config : Chc.Config.t) =
  let lo = Q.to_float config.Chc.Config.lo in
  let hi = Q.to_float config.Chc.Config.hi in
  let span = Stdlib.max (hi -. lo) 1e-9 in
  let s = (canvas -. (2.0 *. margin)) /. span in
  { sx = s; sy = -.s; ox = margin -. (s *. lo); oy = canvas -. margin +. (s *. lo) }

let px t v =
  let x = Q.to_float v.(0) and y = Q.to_float v.(1) in
  ((t.sx *. x) +. t.ox, (t.sy *. y) +. t.oy)

let pt_str t v =
  let (x, y) = px t v in
  Printf.sprintf "%.2f,%.2f" x y

let poly_points t p =
  String.concat " " (List.map (pt_str t) (Polytope.vertices p))

let polygon ?(stroke = "#333") ?(fill = "none") ?(width = 1.0) ?(opacity = 1.0)
    ?(dash = "") t p =
  match Polytope.vertices p with
  | [v] ->
    let (x, y) = px t v in
    Printf.sprintf
      {|<circle cx="%.2f" cy="%.2f" r="3" fill="%s" stroke="%s" opacity="%.3f"/>|}
      x y (if fill = "none" then stroke else fill) stroke opacity
  | [_; _] ->
    Printf.sprintf
      {|<polyline points="%s" stroke="%s" stroke-width="%.2f" fill="none" opacity="%.3f"%s/>|}
      (poly_points t p) stroke width opacity
      (if dash = "" then "" else Printf.sprintf {| stroke-dasharray="%s"|} dash)
  | _ ->
    Printf.sprintf
      {|<polygon points="%s" stroke="%s" stroke-width="%.2f" fill="%s" opacity="%.3f"%s/>|}
      (poly_points t p) stroke width fill opacity
      (if dash = "" then "" else Printf.sprintf {| stroke-dasharray="%s"|} dash)

let dot t ?(r = 4.0) ?(fill = "#000") v =
  let (x, y) = px t v in
  Printf.sprintf {|<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>|} x y r fill

let cross t v =
  let (x, y) = px t v in
  Printf.sprintf
    {|<path d="M %.2f %.2f L %.2f %.2f M %.2f %.2f L %.2f %.2f" stroke="#c0392b" stroke-width="2"/>|}
    (x -. 5.) (y -. 5.) (x +. 5.) (y +. 5.) (x -. 5.) (y +. 5.) (x +. 5.) (y -. 5.)

let process_colors =
  [| "#1f77b4"; "#ff7f0e"; "#2ca02c"; "#d62728"; "#9467bd"; "#8c564b";
     "#e377c2"; "#7f7f7f"; "#bcbd22"; "#17becf" |]

let render ~(report : Chc.Executor.report) =
  let config = report.Chc.Executor.spec.Chc.Executor.config in
  if config.Chc.Config.d <> 2 then
    invalid_arg "Svg.render: only 2-dimensional executions";
  let t = make_transform ~config in
  let buf = Buffer.create 8192 in
  let out s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  out (Printf.sprintf
         {|<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">|}
         canvas canvas canvas canvas);
  out {|<rect width="100%" height="100%" fill="white"/>|};
  (* Hull of correct inputs. *)
  out (polygon ~stroke:"#888" ~width:1.5 ~dash:"6,4" t
         report.Chc.Executor.correct_hull);
  (* Per-round history, fading in. *)
  let t_end = report.Chc.Executor.result.Chc.Cc.t_end in
  Array.iteri
    (fun i hist ->
       let color = process_colors.(i mod Array.length process_colors) in
       List.iter
         (fun (round, h) ->
            let opacity = 0.15 +. (0.75 *. float_of_int round /. float_of_int (Stdlib.max t_end 1)) in
            out (polygon ~stroke:color ~width:1.0 ~opacity t h))
         hist)
    report.Chc.Executor.result.Chc.Cc.history;
  (* I_Z. *)
  (match report.Chc.Executor.iz with
   | Some iz -> out (polygon ~stroke:"#000" ~width:2.0 ~fill:"#00000022" t iz)
   | None -> ());
  (* Decisions. *)
  Array.iteri
    (fun i o ->
       match o with
       | Some h ->
         let color = process_colors.(i mod Array.length process_colors) in
         out (polygon ~stroke:color ~width:2.5 t h)
       | None -> ())
    report.Chc.Executor.result.Chc.Cc.outputs;
  (* Inputs. *)
  Array.iteri
    (fun i v ->
       if List.mem i report.Chc.Executor.faulty then out (cross t v)
       else out (dot t ~fill:"#2c3e50" v))
    report.Chc.Executor.spec.Chc.Executor.inputs;
  (* Legend. *)
  out (Printf.sprintf
         {|<text x="%.0f" y="20" font-family="monospace" font-size="12">n=%d f=%d eps=%s t_end=%d | dots: correct inputs, crosses: faulty, dashed: correct hull, shaded: I_Z, colored: h_i[t] fading to decision</text>|}
         margin config.Chc.Config.n config.Chc.Config.f
         (Q.to_string config.Chc.Config.eps) t_end);
  out "</svg>";
  Buffer.contents buf

let render_to_file ~path ~report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~report))
