lib/viz/svg.mli: Chc
