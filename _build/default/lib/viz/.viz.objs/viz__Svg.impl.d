lib/viz/svg.ml: Array Buffer Chc Fun Geometry List Numeric Printf Stdlib String
