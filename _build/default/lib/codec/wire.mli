(** Binary wire format for the values Algorithm CC puts on the network.

    A deployment of the protocol must ship polytopes between machines;
    this codec defines that format and doubles as the measuring stick
    for the bandwidth accounting of experiment E5 (convex hull
    consensus pays for its richer decisions in message bytes, not in
    rounds or message count).

    Format: little-endian, self-delimiting.
    - unsigned LEB128 varints for lengths and small naturals;
    - integers as sign byte + varint limb count + 30-bit limbs;
    - rationals as numerator then denominator (normalized on read);
    - vectors as dimension + coordinates;
    - polytopes as dimension + vertex count + vertices (the canonical
      V-representation travels; canonical form is re-established on
      read, so a hostile or buggy peer cannot smuggle a non-canonical
      list into the process state). *)

module Q = Numeric.Q

(** {1 Writers} *)

val write_varint : Buffer.t -> int -> unit
(** @raise Invalid_argument on negative input. *)

val write_int : Buffer.t -> int -> unit
(** Signed, zig-zag encoded varint. *)

val write_bigint : Buffer.t -> Numeric.Bigint.t -> unit
val write_q : Buffer.t -> Q.t -> unit
val write_vec : Buffer.t -> Geometry.Vec.t -> unit
val write_polytope : Buffer.t -> Geometry.Polytope.t -> unit

(** {1 Readers} *)

type reader
(** A cursor over immutable bytes. *)

exception Malformed of string

val reader_of_string : string -> reader
val reader_done : reader -> bool
(** All bytes consumed? *)

val read_varint : reader -> int
val read_int : reader -> int
val read_bigint : reader -> Numeric.Bigint.t
val read_q : reader -> Q.t
val read_vec : reader -> Geometry.Vec.t
val read_polytope : reader -> Geometry.Polytope.t
(** Re-canonicalizes, so the result is a valid {!Geometry.Polytope.t}
    whatever vertex list was transmitted.
    @raise Malformed on truncated or corrupt input. *)

(** {1 Convenience} *)

val polytope_to_string : Geometry.Polytope.t -> string
val polytope_of_string : string -> Geometry.Polytope.t
val vec_to_string : Geometry.Vec.t -> string
val vec_of_string : string -> Geometry.Vec.t

val polytope_size : Geometry.Polytope.t -> int
(** Encoded size in bytes. *)

val vec_size : Geometry.Vec.t -> int
