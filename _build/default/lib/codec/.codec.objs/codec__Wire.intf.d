lib/codec/wire.mli: Buffer Geometry Numeric
