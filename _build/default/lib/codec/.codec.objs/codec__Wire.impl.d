lib/codec/wire.ml: Array Buffer Char Geometry List Numeric String
