lib/numeric/q.ml: Bigint Format List Stdlib String
