lib/numeric/combin.mli:
