lib/numeric/combin.ml: List Stdlib
