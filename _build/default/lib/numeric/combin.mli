(** Small combinatorial enumerators (exhaustive, for tiny inputs). *)

val subsets_of_size : int -> 'a list -> 'a list list
(** All subsets of the given size, elements in input order. Treats the
    input as a multiset: duplicates yield distinct subsets. *)

val partitions_into : int -> 'a list -> 'a list list list
(** All partitions of the input into exactly that many non-empty
    blocks (blocks unordered, elements kept in input order). *)

val choose : int -> int -> int
(** Binomial coefficient [C(n, k)]; [0] outside the valid range. *)
