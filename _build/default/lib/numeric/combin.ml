(* Small combinatorial enumerators used by the geometry layer (facet
   and vertex enumeration) and by Algorithm CC's round-0 intersection
   (all subsets obtained by removing f elements). Inputs are tiny, so
   these are written for clarity. *)

(* All subsets of [l] of size exactly [k], each in input order. *)
let rec subsets_of_size k l =
  if k = 0 then [[]]
  else
    match l with
    | [] -> []
    | x :: rest ->
      let with_x = List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest) in
      let without_x = subsets_of_size k rest in
      with_x @ without_x

(* All ways to split [l] into exactly [k] non-empty unordered parts
   (set partitions into k blocks). Used to search for Tverberg
   partitions. *)
let partitions_into k l =
  match l with
  | [] -> if k = 0 then [[]] else []
  | first :: rest ->
    (* Place elements one by one; the first element pins block 1 to
       break the symmetry between blocks. *)
    let rec place acc = function
      | [] -> if List.length acc = k then [List.map List.rev acc] else []
      | x :: tl ->
        let into_existing =
          List.concat
            (List.mapi
               (fun i _ ->
                  let acc' =
                    List.mapi (fun j block -> if i = j then x :: block else block) acc
                  in
                  place acc' tl)
               acc)
        in
        let into_new =
          if List.length acc < k then place (acc @ [[x]]) tl else []
        in
        into_existing @ into_new
    in
    place [[first]] rest

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = Stdlib.min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
  end
