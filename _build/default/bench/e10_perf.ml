(* E10 — Implementation performance (bechamel micro-benchmarks).

   Wall-clock cost of the geometric primitives and of full executions,
   plus the 2-d Minkowski ablation (linear edge-merge vs quadratic
   pairwise-sum) that justifies the fast path. All arithmetic is exact
   rationals, so these numbers characterize the exact-arithmetic cost
   profile, not float geometry. *)

open Bechamel
open Toolkit

module Q = Numeric.Q
module Vec = Geometry.Vec
module Hull2d = Geometry.Hull2d
module Polytope = Geometry.Polytope
module Rng = Runtime.Rng

let mk_points rng m =
  List.init m (fun _ ->
      Vec.make [Q.of_ints (Rng.int rng 2001 - 1000) 997;
                Q.of_ints (Rng.int rng 2001 - 1000) 991])

let tests () =
  let rng = Rng.create 2014 in
  let pts100 = mk_points rng 100 in
  let polyA = Hull2d.hull (mk_points rng 40) in
  let polyB = Hull2d.hull (mk_points rng 40) in
  let pA = Polytope.of_points ~dim:2 (mk_points rng 30) in
  let pB = Polytope.of_points ~dim:2 (mk_points rng 30) in
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:5 () in
  [ Test.make ~name:"hull2d/monotone-chain-100pts"
      (Staged.stage (fun () -> ignore (Hull2d.hull pts100)));
    Test.make ~name:"minkowski/edge-merge"
      (Staged.stage (fun () -> ignore (Hull2d.minkowski_sum polyA polyB)));
    Test.make ~name:"minkowski/pairwise-naive"
      (Staged.stage (fun () ->
           ignore
             (Hull2d.hull
                (List.concat_map (fun a -> List.map (Vec.add a) polyB) polyA))));
    Test.make ~name:"polytope/intersect-2d"
      (Staged.stage (fun () -> ignore (Polytope.intersect [pA; pB])));
    Test.make ~name:"polytope/hausdorff2-exact"
      (Staged.stage (fun () -> ignore (Polytope.hausdorff2 pA pB)));
    Test.make ~name:"lp/membership-30pts"
      (Staged.stage
         (let q = Vec.make [Q.of_ints 1 7; Q.of_ints 2 7] in
          fun () -> ignore (Geometry.Lp.in_convex_hull (Polytope.vertices pA) q)));
    Test.make ~name:"cc/full-execution-n5-d2"
      (Staged.stage (fun () -> ignore (Chc.Executor.run spec))) ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if Util.fast then 0.25 else 1.0))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"chc" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
       let ns =
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> est
         | _ -> nan
       in
       let cell =
         if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
         else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
         else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
         else Printf.sprintf "%.0f ns" ns
       in
       rows := [name; cell] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Util.print_table
    ~title:"E10: exact-arithmetic cost profile (bechamel, monotonic clock)"
    ~header:["operation"; "time/run"]
    ~widths:[36; 10]
    rows
