bench/e9_resilience.ml: Array Chc Geometry List Numeric Printf Util
