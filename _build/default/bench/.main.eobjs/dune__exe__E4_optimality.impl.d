bench/e4_optimality.ml: Chc List Numeric Printf Util
