bench/e1_convergence.ml: Array Chc Fun Geometry Hashtbl List Numeric Printf Runtime Stdlib String Util
