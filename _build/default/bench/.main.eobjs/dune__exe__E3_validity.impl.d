bench/e3_validity.ml: Chc List Numeric Printf Runtime Util
