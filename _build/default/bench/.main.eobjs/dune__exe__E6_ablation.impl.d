bench/e6_ablation.ml: Array Chc Numeric Printf Runtime Util
