bench/e7_optimize.ml: Array Chc Geometry List Numeric Option Printf Stdlib Util
