bench/main.ml: Array E10_perf E1_convergence E2_tend E3_validity E4_optimality E5_cc_vs_vc E6_ablation E7_optimize E8_matrix E9_resilience List Printf Sys Unix Util
