bench/main.mli:
