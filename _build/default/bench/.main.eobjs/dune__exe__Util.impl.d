bench/util.ml: Array List Numeric Printf Stdlib String Sys
