bench/e10_perf.ml: Analyze Bechamel Benchmark Chc Geometry Hashtbl Instance List Measure Numeric Printf Runtime Staged Test Time Toolkit Util
