bench/e5_cc_vs_vc.ml: Array Chc Codec Fun Geometry List Numeric Printf Runtime Stdlib Util
