bench/e8_matrix.ml: Array Chc List Numeric Printf Util
