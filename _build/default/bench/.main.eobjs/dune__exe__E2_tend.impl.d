bench/e2_tend.ml: Chc E1_convergence List Numeric Util
