(* E7 — Function optimization over the consensus hull (Section 7).

   The 2-step algorithm with ε = β/b must keep the spread of cost
   values below β (weak β-optimality part (i)); with 2f+1 identical
   inputs x_star every process must learn a value at most c(x_star); and
   the Theorem-4 cost exhibits argmin disagreement — the impossibility
   is real, not an artifact. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Executor = Chc.Executor
module Opt = Chc.Optimize

let run () =
  let runs = Util.sweep_size 15 in
  let beta = Q.of_ints 1 2 in
  let costs =
    [ ("linear x+y", Opt.linear ~name:"x+y" (Vec.of_ints [1; 1]));
      ("linear x-2y", Opt.linear ~name:"x-2y" (Vec.of_ints [1; -2]));
      ("dist2 to (1,1)", Opt.quadratic_distance ~name:"d2"
         (Vec.make [Q.one; Q.one]) ~lipschitz_hint:4.0) ]
  in
  let rows =
    List.map
      (fun (label, cost) ->
         let eps = Opt.eps_for_beta ~beta ~lipschitz_hint:cost.Opt.lipschitz_hint in
         let config = Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps ~lo:Q.zero ~hi:Q.one in
         let worst = ref 0.0 and ok = ref 0 in
         for seed = 0 to runs - 1 do
           let r = Executor.run (Executor.default_spec ~config ~seed:(seed * 911 + 1) ()) in
           let rep =
             Opt.two_step ~config ~faulty:r.Executor.faulty
               ~result:r.Executor.result ~cost
           in
           match rep.Opt.beta_spread with
           | Some s ->
             worst := Stdlib.max !worst (Q.to_float s);
             if Q.leq s beta then incr ok
           | None -> ()
         done;
         [ label; Q.to_string eps; Util.f6 !worst; Q.to_string beta;
           Util.pct !ok runs ])
      costs
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E7a: weak beta-optimality, spread of c(y_i) vs beta (%d runs each)" runs)
    ~header:["cost"; "eps=beta/b"; "worst spread"; "beta"; "within beta"]
    ~widths:[16; 10; 12; 6; 11]
    rows;

  (* Part (ii): 2f+1 identical inputs pin the learned minimum. *)
  let config = Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 8) ~lo:Q.zero ~hi:Q.one in
  let xstar = Vec.make [Q.of_ints 4 5; Q.of_ints 4 5] in
  let cost = Opt.quadratic_distance ~name:"d2-origin" (Vec.make [Q.zero; Q.zero]) ~lipschitz_hint:4.0 in
  let cstar = cost.Opt.eval xstar in
  let ok = ref 0 in
  let total = Util.sweep_size 15 in
  for seed = 0 to total - 1 do
    let spec = Executor.default_spec ~config ~seed:(seed * 13007 + 5) () in
    let inputs = Array.copy spec.Executor.inputs in
    inputs.(1) <- xstar; inputs.(2) <- xstar; inputs.(3) <- xstar;
    let r = Executor.run { spec with Executor.inputs = inputs } in
    let rep = Opt.two_step ~config ~faulty:r.Executor.faulty ~result:r.Executor.result ~cost in
    let all_le =
      Array.to_list rep.Opt.outputs
      |> List.mapi (fun i o -> (i, o))
      |> List.for_all (fun (i, o) ->
          List.mem i r.Executor.faulty
          || match o with Some (_, v) -> Q.leq v cstar | None -> false)
    in
    if all_le then incr ok
  done;
  Util.print_table
    ~title:"E7b: weak beta-optimality part (ii) — 2f+1 identical inputs x*"
    ~header:["property"; "holds"]
    ~widths:[34; 8]
    [ ["c(y_i) <= c(x*) at every process"; Util.pct !ok total] ];

  (* The paper's closing conjecture (Section 7): for D-strongly convex
     differentiable costs the two-step algorithm's argmins should also
     be close (not just their values). Measured: max pairwise distance
     between the y_i across seeds for the strongly convex quadratic —
     versus the concave Theorem-4 cost where the spread is 1. *)
  let config = Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 8) ~lo:Q.zero ~hi:Q.one in
  let cost = Opt.quadratic_distance ~name:"d2" (Vec.make [Q.half; Q.half]) ~lipschitz_hint:3.0 in
  let worst_argmin_spread = ref 0.0 in
  let rounds2 = Util.sweep_size 12 in
  for seed = 0 to rounds2 - 1 do
    let r = Executor.run (Executor.default_spec ~config ~seed:(seed * 433 + 11) ()) in
    let rep = Opt.two_step ~config ~faulty:r.Executor.faulty ~result:r.Executor.result ~cost in
    let ys = Array.to_list rep.Opt.outputs |> List.filter_map (Option.map fst) in
    List.iter (fun a -> List.iter (fun b ->
        worst_argmin_spread := Stdlib.max !worst_argmin_spread (Vec.dist a b)) ys) ys
  done;
  Util.print_table
    ~title:"E7d: argmin spread d(y_i, y_j) — strongly convex vs concave cost"
    ~header:["cost"; "worst argmin spread"]
    ~widths:[26; 20]
    [ ["quadratic (strongly convex)"; Util.f6 !worst_argmin_spread];
      ["theorem-4 (concave)"; "1.000000 (see E7c)"] ];

  (* Theorem 4 engine: argmin disagreement under the two-valley cost. *)
  let p0 = Geometry.Polytope.of_points ~dim:1 [Vec.make [Q.zero]; Vec.make [Q.of_ints 2 5]] in
  let p1 = Geometry.Polytope.of_points ~dim:1 [Vec.make [Q.of_ints 3 5]; Vec.make [Q.one]] in
  let y0 = Opt.theorem4_cost.Opt.minimize p0 in
  let y1 = Opt.theorem4_cost.Opt.minimize p1 in
  Util.print_table
    ~title:"E7c: Theorem-4 cost — equal values, distant argmins"
    ~header:["polytope"; "argmin"; "c(argmin)"]
    ~widths:[12; 8; 10]
    [ ["[0, 2/5]"; Q.to_string y0.(0); Q.to_string (Opt.theorem4_cost.Opt.eval y0)];
      ["[3/5, 1]"; Q.to_string y1.(0); Q.to_string (Opt.theorem4_cost.Opt.eval y1)] ]
