(* E9 — The resilience frontier n >= (d+2)f + 1 and degenerate cases.

   At the exact lower bound (n = (d+2)f+1) the decided polytope often
   degenerates toward a single point; as n grows past the bound the
   output region's volume grows — Section 6's "degenerate cases"
   discussion made quantitative. Lemma 2 guarantees non-emptiness
   everywhere. Identical inputs must always collapse to that point. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Executor = Chc.Executor

let run () =
  let runs = Util.sweep_size 15 in
  let rows =
    List.map
      (fun n ->
         let config =
           Chc.Config.make ~n ~f:1 ~d:2 ~eps:(Q.of_ints 1 10) ~lo:Q.zero ~hi:Q.one
         in
         let vol_sum = ref 0.0 and degenerate = ref 0 and nonempty = ref 0 in
         for seed = 0 to runs - 1 do
           let r = Executor.run (Executor.default_spec ~config ~seed:(seed * 52361 + n) ()) in
           (match r.Executor.min_output_volume with
            | Some v ->
              incr nonempty;
              vol_sum := !vol_sum +. Q.to_float v;
              if Q.is_zero v then incr degenerate
            | None -> ())
         done;
         [ string_of_int n;
           (if n = 5 then "= (d+2)f+1" else Printf.sprintf "+%d" (n - 5));
           Util.pct !nonempty runs;
           Util.pct !degenerate runs;
           Util.f6 (!vol_sum /. float_of_int runs) ])
      [5; 6; 7; 8; 9]
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E9: output region vs n at the resilience frontier (d=2, f=1, %d runs)"
         runs)
    ~header:["n"; "slack"; "non-empty"; "degenerate"; "mean volume"]
    ~widths:[3; 11; 10; 10; 12]
    rows;

  (* Identical inputs: the output must be exactly that point. *)
  let config = Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 10) ~lo:Q.zero ~hi:Q.one in
  let x = Vec.make [Q.of_ints 1 3; Q.of_ints 2 3] in
  let spec = { (Executor.default_spec ~config ~seed:77 ()) with
               Executor.inputs = Array.make 5 x } in
  let r = Executor.run spec in
  let all_point =
    Array.for_all
      (function
        | Some h ->
          Geometry.Polytope.is_point h
          && Vec.equal (List.hd (Geometry.Polytope.vertices h)) x
        | None -> true)
      r.Executor.result.Chc.Cc.outputs
  in
  Printf.printf "  identical-input degenerate case decides exactly that point: %b\n"
    all_point
