(* E8 — The matrix characterization (Theorem 1, Claim 1, Lemma 3).

   For instrumented executions we rebuild M[t] from the trace, verify
   the exact polytope identity h_i[t] = (M[t]···M[1] v[0])_i, and
   print the measured ergodicity gap of P[t] against the analytic
   envelope (1−1/n)^t — the quantity that drives ε-agreement. *)

module Q = Numeric.Q
module Executor = Chc.Executor
module Analysis = Chc.Analysis

let run () =
  let runs = Util.sweep_size 10 in
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let th1 = ref 0 and cl1 = ref 0 and lm3 = ref 0 and stoch = ref 0 in
  for seed = 0 to runs - 1 do
    let r = Executor.run (Executor.default_spec ~config ~seed:(seed * 331 + 17) ()) in
    let a = Analysis.build ~config ~faulty:r.Executor.faulty ~result:r.Executor.result in
    if Analysis.check_theorem1 a ~result:r.Executor.result then incr th1;
    if Analysis.check_claim1 a then incr cl1;
    if Analysis.check_lemma3 a then incr lm3;
    if Array.for_all Analysis.is_row_stochastic a.Analysis.matrices
       && Array.for_all Analysis.is_row_stochastic (Analysis.products a)
    then incr stoch
  done;
  Util.print_table
    ~title:
      (Printf.sprintf "E8a: matrix certificates over %d executions (n=5 f=1 d=2)"
         runs)
    ~header:["certificate"; "holds (exact)"]
    ~widths:[36; 13]
    [ ["Theorem 1: v[t] = M[t]v[t-1] = h[t]"; Util.pct !th1 runs];
      ["row stochasticity of all M, P"; Util.pct !stoch runs];
      ["Claim 1: P[ .. F[1]] columns zero"; Util.pct !cl1 runs];
      ["Lemma 3: gap <= (1-1/n)^t"; Util.pct !lm3 runs] ];

  (* Gap trajectory for one run. *)
  let r = Executor.run (Executor.default_spec ~config ~seed:4242 ()) in
  let a = Analysis.build ~config ~faulty:r.Executor.faulty ~result:r.Executor.result in
  let ps = Analysis.products a in
  let ratio = Q.of_ints 4 5 in
  let rows =
    Array.to_list
      (Array.mapi
         (fun idx p ->
            let t = idx + 1 in
            [ string_of_int t;
              Util.f6 (Q.to_float (Analysis.ergodicity_gap a p));
              Util.f6 (Q.to_float (Q.pow ratio t)) ])
         ps)
    |> List.filteri (fun i _ -> i < 5 || (i + 1) mod 3 = 0)
  in
  Util.print_table
    ~title:"E8b: ergodicity gap of P[t] vs envelope (1-1/n)^t (one run, n=5)"
    ~header:["t"; "measured gap"; "envelope"]
    ~widths:[4; 12; 12]
    rows
