(* Shared helpers for the experiment harness: fixed-width table
   printing and spec construction. Every experiment prints a paper-
   style table; EXPERIMENTS.md records one canonical run of each. *)

module Q = Numeric.Q

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let row widths cells =
  String.concat " | "
    (List.map2
       (fun w c ->
          if String.length c >= w then c
          else c ^ String.make (w - String.length c) ' ')
       widths cells)

let print_table ~title ~header ~widths rows =
  Printf.printf "\n== %s ==\n" title;
  print_endline (row widths header);
  print_endline (hrule widths);
  List.iter (fun r -> print_endline (row widths r)) rows;
  print_newline ()

let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let f6 x = Printf.sprintf "%.6f" x
let qf x = f6 (Q.to_float x)

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%d/%d" num den

(* Fast mode trims seed sweeps so the whole harness stays snappy;
   the full mode is what EXPERIMENTS.md records. *)
let fast = Array.exists (fun a -> a = "--fast") Sys.argv

let sweep_size full = if fast then Stdlib.max 3 (full / 5) else full
