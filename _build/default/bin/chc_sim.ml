(* chc_sim — command-line driver for single executions of Algorithm CC.

   Examples:
     dune exec bin/chc_sim.exe -- run -n 5 -f 1 -d 2 --eps 0.1 --seed 7
     dune exec bin/chc_sim.exe -- run -n 7 -f 2 -d 1 --scheduler lag --verbose
     dune exec bin/chc_sim.exe -- run --inputs "0.1,0.2;0.3,0.4;0.5,0.1;0.9,0.9;0.2,0.8"
     dune exec bin/chc_sim.exe -- bound -n 9 -f 2 -d 2 --eps 0.01 *)

open Cmdliner

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope

(* --- shared arguments ------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 5 & info ["n"] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(value & opt int 1 & info ["f"] ~docv:"F" ~doc:"Max faulty processes.")

let d_arg =
  Arg.(value & opt int 2 & info ["d"] ~docv:"D" ~doc:"Input dimension.")

let eps_arg =
  Arg.(value & opt string "0.1"
       & info ["eps"] ~docv:"EPS"
           ~doc:"Agreement parameter (decimal or rational a/b).")

let lo_arg =
  Arg.(value & opt string "0" & info ["lo"] ~doc:"Input lower bound (mu).")

let hi_arg =
  Arg.(value & opt string "1" & info ["hi"] ~doc:"Input upper bound (U).")

let seed_arg =
  Arg.(value & opt int 1 & info ["seed"] ~doc:"Deterministic seed.")

let scheduler_arg =
  let sched_conv =
    Arg.enum
      [ ("random", `Random); ("round-robin", `Rr); ("lifo", `Lifo);
        ("lag", `Lag) ]
  in
  Arg.(value & opt sched_conv `Random
       & info ["scheduler"] ~doc:"Adversary: $(b,random), $(b,round-robin), \
                                  $(b,lifo) or $(b,lag) (starves the faulty set).")

let naive_arg =
  Arg.(value & flag
       & info ["naive-round0"]
           ~doc:"Ablation: replace stable vector by naive first-(n-f) collection.")

let inputs_arg =
  Arg.(value & opt (some string) None
       & info ["inputs"] ~docv:"P1;P2;..."
           ~doc:"Explicit inputs: points separated by ';', coordinates by ','. \
                 Default: random on the configured box.")

let faulty_arg =
  Arg.(value & opt (some string) None
       & info ["faulty"] ~docv:"I,J,..."
           ~doc:"Faulty process ids (default: 0..f-1).")

let verbose_arg =
  Arg.(value & flag & info ["verbose"; "v"] ~doc:"Print per-round history.")

let svg_arg =
  Arg.(value & opt (some string) None
       & info ["svg"] ~docv:"FILE"
           ~doc:"Write an SVG rendering of the execution (d = 2 only).")

(* --- helpers --------------------------------------------------------- *)

let parse_point d s =
  let coords = String.split_on_char ',' s |> List.map String.trim in
  if List.length coords <> d then
    failwith (Printf.sprintf "point %S has %d coordinates, expected %d" s
                (List.length coords) d)
  else Vec.make (List.map Q.of_string coords)

let parse_ids s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let config_of ~n ~f ~d ~eps ~lo ~hi =
  Chc.Config.make ~n ~f ~d ~eps:(Q.of_string eps) ~lo:(Q.of_string lo)
    ~hi:(Q.of_string hi)

(* --- run command ------------------------------------------------------ *)

let run_cmd n f d eps lo hi seed scheduler naive inputs faulty verbose svg =
  try
    let config = config_of ~n ~f ~d ~eps ~lo ~hi in
    let faulty =
      match faulty with
      | Some s -> parse_ids s
      | None -> List.init f Fun.id
    in
    let scheduler =
      match scheduler with
      | `Random -> Runtime.Scheduler.Random_uniform
      | `Rr -> Runtime.Scheduler.Round_robin
      | `Lifo -> Runtime.Scheduler.Lifo_bias
      | `Lag -> Runtime.Scheduler.Lag_sources faulty
    in
    let round0 = if naive then `Naive else `Stable_vector in
    let spec =
      Chc.Executor.default_spec ~config ~seed ~faulty ~scheduler ~round0 ()
    in
    let spec =
      match inputs with
      | None -> spec
      | Some s ->
        let pts =
          String.split_on_char ';' s |> List.map (parse_point d)
        in
        if List.length pts <> n then
          failwith (Printf.sprintf "expected %d inputs, got %d" n
                      (List.length pts))
        else { spec with Chc.Executor.inputs = Array.of_list pts }
    in
    let r = Chc.Executor.run spec in
    Printf.printf "config: n=%d f=%d d=%d eps=%s  t_end=%d  seed=%d\n"
      n f d eps r.Chc.Executor.result.Chc.Cc.t_end seed;
    Printf.printf "faulty set: {%s}\n"
      (String.concat "," (List.map string_of_int r.Chc.Executor.faulty));
    Array.iteri
      (fun i o ->
         match o with
         | Some h ->
           Printf.printf "process %d decided (%d vertices)%s\n" i
             (List.length (Polytope.vertices h))
             (if verbose then ": " ^ Polytope.to_string h else "")
         | None -> Printf.printf "process %d crashed before deciding\n" i)
      r.Chc.Executor.result.Chc.Cc.outputs;
    if verbose then
      Array.iteri
        (fun i hist ->
           Printf.printf "history of process %d:\n" i;
           List.iter
             (fun (t, h) ->
                Printf.printf "  h[%d] = %s\n" t (Polytope.to_string h))
             hist)
        r.Chc.Executor.result.Chc.Cc.history;
    Printf.printf "\nterminated   %b\nvalidity     %b\nagreement    %b"
      r.Chc.Executor.terminated r.Chc.Executor.valid r.Chc.Executor.agreement_ok;
    (match r.Chc.Executor.agreement2 with
     | Some a -> Printf.printf "  (max dH = %.6f)\n" (sqrt (Q.to_float a))
     | None -> print_newline ());
    Printf.printf "optimality   %b\n" r.Chc.Executor.optimal;
    (match r.Chc.Executor.min_output_volume with
     | Some v -> Printf.printf "min volume   %.6f\n" (Q.to_float v)
     | None -> ());
    let m = r.Chc.Executor.result.Chc.Cc.metrics in
    Printf.printf "messages     sent=%d delivered=%d dropped-by-crash=%d\n"
      m.Runtime.Sim.sent m.Runtime.Sim.delivered m.Runtime.Sim.dropped;
    (match svg with
     | Some path when d = 2 ->
       Viz.Svg.render_to_file ~path ~report:r;
       Printf.printf "svg          written to %s\n" path
     | Some _ -> prerr_endline "warning: --svg only supported for d = 2"
     | None -> ());
    if r.Chc.Executor.terminated && r.Chc.Executor.valid
       && r.Chc.Executor.agreement_ok
    then `Ok ()
    else `Error (false, "a correctness property failed")
  with
  | Failure msg | Invalid_argument msg -> `Error (false, msg)

let run_term =
  Term.(ret
          (const run_cmd $ n_arg $ f_arg $ d_arg $ eps_arg $ lo_arg $ hi_arg
           $ seed_arg $ scheduler_arg $ naive_arg $ inputs_arg $ faulty_arg
           $ verbose_arg $ svg_arg))

let run_cmd_info =
  Cmd.info "run" ~doc:"Execute Algorithm CC once and grade the run."

(* --- bound command ---------------------------------------------------- *)

let bound_cmd n f d eps lo hi =
  try
    let config = config_of ~n ~f ~d ~eps ~lo ~hi in
    Printf.printf "n=%d f=%d d=%d eps=%s range=[%s,%s]\n" n f d eps lo hi;
    Printf.printf "resilience: n >= (d+2)f+1 = %d  (ok)\n" (((d + 2) * f) + 1);
    Printf.printf "t_end (eq. 19) = %d rounds\n" (Chc.Bounds.t_end config);
    `Ok ()
  with Invalid_argument msg -> `Error (false, msg)

let bound_term =
  Term.(ret (const bound_cmd $ n_arg $ f_arg $ d_arg $ eps_arg $ lo_arg $ hi_arg))

let bound_cmd_info =
  Cmd.info "bound" ~doc:"Print the analytic round bound t_end (equation 19)."

(* --- entry ------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "chc_sim" ~version:"1.0"
      ~doc:"Asynchronous convex hull consensus simulator (Tseng-Vaidya, PODC'14)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ Cmd.v run_cmd_info run_term; Cmd.v bound_cmd_info bound_term ]))
