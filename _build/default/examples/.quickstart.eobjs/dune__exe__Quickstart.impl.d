examples/quickstart.ml: Array Chc Geometry Numeric Printf Runtime
