examples/quickstart.mli:
