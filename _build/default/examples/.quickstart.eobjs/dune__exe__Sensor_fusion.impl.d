examples/sensor_fusion.ml: Array Chc Geometry List Numeric Printf Runtime
