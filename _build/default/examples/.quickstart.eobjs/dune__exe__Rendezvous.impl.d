examples/rendezvous.ml: Array Chc Geometry Numeric Printf Runtime
