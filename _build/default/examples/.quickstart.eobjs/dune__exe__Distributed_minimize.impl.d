examples/distributed_minimize.ml: Array Chc Geometry Numeric Printf Runtime
