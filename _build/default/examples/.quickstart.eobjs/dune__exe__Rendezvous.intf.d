examples/rendezvous.mli:
