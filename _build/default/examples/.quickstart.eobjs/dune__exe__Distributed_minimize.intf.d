examples/distributed_minimize.mli:
