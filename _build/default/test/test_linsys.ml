module Q = Numeric.Q
module Vec = Geometry.Vec
module L = Geometry.Linsys

let qt = Alcotest.testable Q.pp Q.equal

let gen_matrix n m =
  QCheck.Gen.(list_size (return n)
                (map Array.of_list (list_size (return m) Gen.gen_small_q)))
  |> QCheck.Gen.map Array.of_list

let arb_matrix n m =
  QCheck.make
    ~print:(fun a ->
        String.concat "\n"
          (Array.to_list (Array.map (fun r -> Gen.print_points [r]) a)))
    (gen_matrix n m)

let test_solve_known () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  let a = [| [| Q.of_int 2; Q.one |]; [| Q.one; Q.minus_one |] |] in
  let b = [| Q.of_int 5; Q.one |] in
  match L.solve a b with
  | Some x ->
    Alcotest.check qt "x" Q.two x.(0);
    Alcotest.check qt "y" Q.one x.(1)
  | None -> Alcotest.fail "expected solution"

let test_singular () =
  let a = [| [| Q.one; Q.one |]; [| Q.two; Q.two |] |] in
  Alcotest.(check bool) "singular" true (L.solve a [| Q.one; Q.one |] = None)

let test_det () =
  let a = [| [| Q.one; Q.two |]; [| Q.of_int 3; Q.of_int 4 |] |] in
  Alcotest.check qt "det" (Q.of_int (-2)) (L.det a);
  let identity =
    Array.init 4 (fun i ->
        Array.init 4 (fun j -> if i = j then Q.one else Q.zero))
  in
  Alcotest.check qt "det id" Q.one (L.det identity)

let test_rank () =
  let a = [| [| Q.one; Q.zero; Q.one |];
             [| Q.zero; Q.one; Q.one |];
             [| Q.one; Q.one; Q.two |] |]
  in
  Alcotest.(check int) "rank deficient" 2 (L.rank a)

let test_nullspace () =
  let a = [| [| Q.one; Q.one; Q.one |] |] in
  let ns = L.nullspace a in
  Alcotest.(check int) "nullity" 2 (List.length ns);
  List.iter
    (fun v -> Alcotest.check qt "a·v = 0" Q.zero (Vec.dot a.(0) v))
    ns

let test_independent_rows () =
  let rows = [ Vec.of_ints [1; 0]; Vec.of_ints [2; 0]; Vec.of_ints [0; 1] ] in
  Alcotest.(check (list int)) "skip dependent" [0; 2] (L.independent_rows rows)

let test_solve_unique_rect () =
  (* Overdetermined but consistent: x = 3 from two copies. *)
  let a = [| [| Q.one |]; [| Q.two |] |] in
  let b = [| Q.of_int 3; Q.of_int 6 |] in
  (match L.solve_unique a b with
   | Some x -> Alcotest.check qt "x" (Q.of_int 3) x.(0)
   | None -> Alcotest.fail "expected unique solution");
  (* Inconsistent. *)
  let b' = [| Q.of_int 3; Q.of_int 7 |] in
  Alcotest.(check bool) "inconsistent" true (L.solve_unique a b' = None);
  (* Underdetermined. *)
  let a2 = [| [| Q.one; Q.one |] |] in
  Alcotest.(check bool) "underdetermined" true
    (L.solve_unique a2 [| Q.one |] = None)

let props =
  [ Gen.prop ~count:100 "solve recovers x0"
      (QCheck.pair (arb_matrix 3 3)
         (QCheck.make ~print:Vec.to_string (Gen.gen_vec 3)))
      (fun (a, x0) ->
         if Q.is_zero (L.det a) then QCheck.assume_fail ()
         else begin
           let b = L.mat_vec a x0 in
           match L.solve a b with
           | Some x -> Vec.equal x x0
           | None -> false
         end);
    Gen.prop ~count:100 "nullspace vectors are in kernel" (arb_matrix 2 4)
      (fun a ->
         List.for_all
           (fun v -> Array.for_all Q.is_zero (L.mat_vec a v))
           (L.nullspace a));
    Gen.prop ~count:100 "rank + nullity = cols" (arb_matrix 3 4)
      (fun a -> L.rank a + List.length (L.nullspace a) = 4);
    Gen.prop ~count:100 "solve_any solves" (QCheck.pair (arb_matrix 2 4)
                                              (QCheck.make ~print:Vec.to_string (Gen.gen_vec 4)))
      (fun (a, x0) ->
         let b = L.mat_vec a x0 in
         match L.solve_any a b with
         | Some x -> Array.for_all2 Q.equal (L.mat_vec a x) b
         | None -> false);
    Gen.prop ~count:50 "det multiplicative"
      (QCheck.pair (arb_matrix 3 3) (arb_matrix 3 3))
      (fun (a, b) ->
         Q.equal (L.det (L.mat_mul a b)) (Q.mul (L.det a) (L.det b)));
  ]

let suite =
  [ ( "linsys",
      [ Alcotest.test_case "solve known" `Quick test_solve_known;
        Alcotest.test_case "singular" `Quick test_singular;
        Alcotest.test_case "det" `Quick test_det;
        Alcotest.test_case "rank" `Quick test_rank;
        Alcotest.test_case "nullspace" `Quick test_nullspace;
        Alcotest.test_case "independent rows" `Quick test_independent_rows;
        Alcotest.test_case "solve_unique rect" `Quick test_solve_unique_rect ]
      @ List.map Gen.qtest props ) ]
