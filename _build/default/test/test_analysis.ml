(* The matrix-form certificates of Section 5: Theorem 1 (exact
   polytope equality between the simulated states and the matrix
   recurrence), row stochasticity, Claim 1 and Lemma 3 on products of
   transition matrices. *)

module Q = Numeric.Q
module Config = Chc.Config
module Executor = Chc.Executor
module Analysis = Chc.Analysis

let run_and_build ~seed ~n ~f ~d =
  let config =
    Config.make ~n ~f ~d ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let r = Executor.run (Executor.default_spec ~config ~seed ()) in
  let a =
    Analysis.build ~config ~faulty:r.Executor.faulty ~result:r.Executor.result
  in
  (a, r)

let test_known_run () =
  let a, r = run_and_build ~seed:31 ~n:5 ~f:1 ~d:2 in
  Alcotest.(check int) "t_end recorded" r.Executor.result.Chc.Cc.t_end a.Analysis.t_end;
  Alcotest.(check bool) "all M row-stochastic" true
    (Array.for_all Analysis.is_row_stochastic a.Analysis.matrices);
  Alcotest.(check bool) "all P row-stochastic" true
    (Array.for_all Analysis.is_row_stochastic (Analysis.products a));
  Alcotest.(check bool) "theorem 1" true
    (Analysis.check_theorem1 a ~result:r.Executor.result);
  Alcotest.(check bool) "claim 1" true (Analysis.check_claim1 a);
  Alcotest.(check bool) "lemma 3" true (Analysis.check_lemma3 a)

let test_f_sets_monotone () =
  let a, _ = run_and_build ~seed:32 ~n:5 ~f:1 ~d:2 in
  let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1 in
  for t = 0 to a.Analysis.t_end do
    Alcotest.(check bool) "F[t] ⊆ F[t+1]" true
      (subset a.Analysis.f_sets.(t) a.Analysis.f_sets.(t + 1));
    Alcotest.(check bool) "F[t] ⊆ faulty" true
      (subset a.Analysis.f_sets.(t) a.Analysis.faulty)
  done

let test_gap_decreases () =
  let a, _ = run_and_build ~seed:33 ~n:5 ~f:1 ~d:1 in
  let ps = Analysis.products a in
  let gaps = Array.map (Analysis.ergodicity_gap a) ps in
  (* The Lemma 3 envelope is monotone; the measured gap need not be
     strictly monotone but must end far below where it started. *)
  let first = Q.to_float gaps.(0) and last = Q.to_float gaps.(Array.length gaps - 1) in
  Alcotest.(check bool) "gap shrinks overall" true
    (last <= first || first = 0.0)

let prop_certificates =
  Gen.prop ~count:12 "matrix certificates hold on random runs"
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       QCheck.Gen.(pair (0 -- 100000) (5 -- 6)))
    (fun (seed, n) ->
       let a, r = run_and_build ~seed ~n ~f:1 ~d:2 in
       Array.for_all Analysis.is_row_stochastic a.Analysis.matrices
       && Analysis.check_theorem1 a ~result:r.Executor.result
       && Analysis.check_claim1 a
       && Analysis.check_lemma3 a)

let prop_certificates_1d =
  Gen.prop ~count:12 "matrix certificates hold in 1d with f=2"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
       let a, r = run_and_build ~seed ~n:7 ~f:2 ~d:1 in
       Analysis.check_theorem1 a ~result:r.Executor.result
       && Analysis.check_claim1 a && Analysis.check_lemma3 a)

let suite =
  [ ( "analysis",
      [ Alcotest.test_case "known run" `Quick test_known_run;
        Alcotest.test_case "F sets monotone" `Quick test_f_sets_monotone;
        Alcotest.test_case "ergodicity gap shrinks" `Quick test_gap_decreases ]
      @ List.map Gen.qtest [ prop_certificates; prop_certificates_1d ] ) ]
