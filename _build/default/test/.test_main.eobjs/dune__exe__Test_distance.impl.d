test/test_distance.ml: Alcotest Array Gen Geometry List Numeric QCheck
