test/test_viz.ml: Alcotest Chc Numeric String Viz
