test/test_codec.ml: Alcotest Buffer Codec Gen Geometry List Numeric QCheck String
