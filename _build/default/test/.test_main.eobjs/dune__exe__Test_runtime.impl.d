test/test_runtime.ml: Alcotest Array Fun List Protocol Runtime
