test/bigint_check.ml: Numeric
