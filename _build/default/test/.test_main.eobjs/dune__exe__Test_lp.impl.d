test/test_lp.ml: Alcotest Array Gen Geometry List Numeric QCheck
