test/test_cc.ml: Alcotest Array Chc Gen Geometry List Numeric Printf QCheck Runtime
