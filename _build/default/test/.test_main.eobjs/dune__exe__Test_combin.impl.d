test/test_combin.ml: Alcotest Fun Gen List Numeric Printf QCheck
