test/gen.ml: Array Geometry List Numeric QCheck QCheck_alcotest String
