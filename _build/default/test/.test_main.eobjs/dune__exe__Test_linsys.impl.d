test/test_linsys.ml: Alcotest Array Gen Geometry List Numeric QCheck String
