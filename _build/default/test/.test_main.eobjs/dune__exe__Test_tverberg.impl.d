test/test_tverberg.ml: Alcotest Gen Geometry List Printf
