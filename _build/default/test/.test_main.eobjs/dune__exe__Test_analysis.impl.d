test/test_analysis.ml: Alcotest Array Chc Gen List Numeric Printf QCheck
