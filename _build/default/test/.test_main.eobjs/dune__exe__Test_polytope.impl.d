test/test_polytope.ml: Alcotest Array Gen Geometry List Numeric QCheck
