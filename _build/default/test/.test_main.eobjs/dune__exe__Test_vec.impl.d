test/test_vec.ml: Alcotest Gen Geometry List Numeric QCheck
