test/test_bigint.ml: Alcotest Float List Numeric QCheck QCheck_alcotest String
