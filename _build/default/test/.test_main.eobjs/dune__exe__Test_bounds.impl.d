test/test_bounds.ml: Alcotest Chc List Numeric
