test/test_hullnd.ml: Alcotest Gen Geometry List Numeric QCheck
