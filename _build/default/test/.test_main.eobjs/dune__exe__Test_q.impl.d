test/test_q.ml: Alcotest Bigint_check List Numeric QCheck QCheck_alcotest
