test/test_hull2d.ml: Alcotest Gen Geometry List Numeric QCheck
