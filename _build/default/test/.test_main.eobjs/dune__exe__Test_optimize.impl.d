test/test_optimize.ml: Alcotest Array Chc Gen Geometry List Numeric QCheck Runtime
