test/test_ablation.ml: Alcotest Array Chc Gen List Numeric Printf QCheck Runtime
