test/test_stable_vector.ml: Alcotest Array Fun Gen List Option Printf Protocol QCheck Runtime String
