test/test_vector_consensus.ml: Alcotest Array Chc Fun Gen Geometry List Numeric QCheck Runtime
